//! Facade crate re-exporting the full Domino workspace API.
pub use abr_sim as abr;
pub use domino_core as core;
pub use domino_live as live;
pub use domino_obs as obs;
pub use domino_sweep as sweep;
pub use netpath;
pub use ran_sim as ran;
pub use rtc_sim as rtc;
pub use scenarios;
pub use simcore;
pub use telemetry;

// One-stop entry points, so binaries and examples don't have to reach into
// submodules for the common run-a-sweep / run-a-session path.
pub use domino_core::Domino;
pub use domino_sweep::{
    run_sweep, run_sweep_with_progress, AnalysisMode, EarlyExit, ExecutionMode, Lateness,
    LiveConfig, ObsConfig, SweepOptions, SweepReport, TapChaosSpec, TapFault, TapStream,
};
pub use scenarios::{SessionGrid, SessionRun, SessionSpec};
