//! Facade crate re-exporting the full Domino workspace API.
pub use domino_core as core;
pub use domino_live as live;
pub use domino_obs as obs;
pub use domino_sweep as sweep;
pub use netpath;
pub use ran_sim as ran;
pub use rtc_sim as rtc;
pub use scenarios;
pub use simcore;
pub use telemetry;
