//! Live ↔ batch equivalence and the constant-memory contract.
//!
//! The `domino-live` pipeline's promise (ISSUE 2): with early exit disabled
//! and a lateness bound that covers the longest in-network delay, verdicts
//! produced *during* the session are bit-identical to a post-hoc
//! [`Domino::analyze`] over the finished bundle — while retaining only
//! O(window + lateness) trace, not O(session).
//!
//! The first half is a fuzz-style property test over randomized sessions
//! (cell, duration, seed, scripted impairment all drawn from the vendored
//! proptest shim's strategies); the second half measures the retained-record
//! high-water mark against session length.

use domino::core::{Analysis, Domino};
use domino::live::{EarlyExit, LiveConfig, LivePipeline};
use domino::scenarios::{all_cells, ScriptAction, SessionConfig, SessionSpec};
use domino::simcore::{SimDuration, SimTime};
use domino::telemetry::{Direction, Lateness};

use proptest::strategy::Strategy;

fn assert_identical(batch: &Analysis, live: &Analysis, label: &str) {
    assert_eq!(
        batch.windows.len(),
        live.windows.len(),
        "{label}: window counts differ"
    );
    assert_eq!(batch.duration, live.duration, "{label}");
    for (b, l) in batch.windows.iter().zip(&live.windows) {
        assert_eq!(b.start, l.start, "{label}");
        assert_eq!(
            b.features,
            l.features,
            "{label}: features diverge at {:?}: batch {:?} vs live {:?}",
            b.start,
            b.features.active_names(),
            l.features.active_names()
        );
        assert_eq!(
            b.chains, l.chains,
            "{label}: chains diverge at {:?}",
            b.start
        );
        assert_eq!(b.unknown_consequences, l.unknown_consequences, "{label}");
    }
}

/// Runs one spec through both paths and asserts bit-identical output.
fn assert_live_matches_batch(spec: &SessionSpec, lateness: SimDuration, label: &str) {
    let domino = Domino::with_defaults();
    let mut pipe = LivePipeline::with_defaults(LiveConfig {
        lateness: Lateness::Static(lateness),
        early_exit: EarlyExit::Never,
    })
    .expect("default config is aligned");
    let bundle = spec.run_with_tap(&mut pipe);
    let live = pipe.take_analysis(bundle.meta.duration);
    let stats = pipe.stats();
    assert_eq!(
        stats.late_records_dropped, 0,
        "{label}: lateness bound too small for test"
    );
    assert_eq!(
        stats.late_deliveries, 0,
        "{label}: lateness bound too small for test"
    );
    let batch = domino.analyze(&bundle);
    assert_identical(&batch, &live, label);
}

#[test]
fn randomized_sessions_are_bit_identical() {
    // Fuzz-style: strategies from the proptest shim, explicit case count
    // (each case simulates a full session twice-analysed, so the shim's
    // default 96 cases would dominate the suite's runtime).
    let mut rng = proptest::test_rng("randomized_sessions_are_bit_identical");
    let cells = all_cells();
    let mut any_chain = false;
    for case in 0..6 {
        let cell = cells[(0..cells.len()).generate(&mut rng)].clone();
        let secs = (10u64..=16).generate(&mut rng);
        let seed = proptest::any::<u64>().generate(&mut rng);
        let cfg = SessionConfig {
            duration: SimDuration::from_secs(secs),
            seed,
            ..Default::default()
        };
        let mut spec = SessionSpec::cell(cell, cfg);
        let script = (0u8..4).generate(&mut rng);
        let from = (4.0f64..6.0).generate(&mut rng);
        let until = from + (1.0f64..4.0).generate(&mut rng);
        let t = |s: f64| SimTime::from_micros((s * 1e6) as u64);
        let dir = if proptest::any::<bool>().generate(&mut rng) {
            Direction::Uplink
        } else {
            Direction::Downlink
        };
        spec = match script {
            0 => spec, // healthy
            1 => spec.with_script(ScriptAction::CrossTraffic {
                dir,
                from: t(from),
                to: t(until),
                prb_fraction: (0.85f64..0.98).generate(&mut rng),
            }),
            2 => spec.with_script(ScriptAction::HarqFailures {
                dir,
                from: t(from),
                to: t(until),
                fail_attempts: 1,
            }),
            _ => spec.with_script(ScriptAction::RrcRelease { at: t(from) }),
        };
        let label = format!(
            "case {case}: {} seed {seed} {secs}s script {script}",
            spec.label
        );
        // Lateness covers the whole session: the contract's precondition
        // holds by construction, so equality must be exact.
        assert_live_matches_batch(&spec, SimDuration::from_secs(30), &label);
        let analysis = Domino::with_defaults().analyze(&spec.run());
        any_chain |= analysis.windows.iter().any(|w| !w.chains.is_empty());
    }
    assert!(
        any_chain,
        "randomized cases never produced a chain; the fuzz is too tame"
    );
}

#[test]
fn retained_trace_is_bounded_by_window_plus_lateness_not_session() {
    // Same cell, same lateness, 3× the session length: the retained-record
    // high-water mark must stay put while the trace triples.
    let lateness = SimDuration::from_secs(2);
    let peak_and_total = |secs: u64| {
        let cfg = SessionConfig {
            duration: SimDuration::from_secs(secs),
            seed: 77,
            ..Default::default()
        };
        let mut pipe = LivePipeline::with_defaults(LiveConfig {
            lateness: Lateness::Static(lateness),
            early_exit: EarlyExit::Never,
        })
        .expect("default config is aligned");
        let bundle = domino::scenarios::SessionRun::cell(domino::scenarios::amarisoft(), &cfg)
            .tap(&mut pipe)
            .run();
        let stats = pipe.stats();
        assert!(stats.windows_emitted > 0);
        assert_eq!(pipe.retained_records(), 0, "everything drained at finish");
        (stats.peak_retained_records, bundle.total_records())
    };
    let (peak_short, total_short) = peak_and_total(30);
    let (peak_long, total_long) = peak_and_total(90);
    assert!(
        total_long > 2 * total_short,
        "the long trace must actually be bigger"
    );
    assert!(
        peak_long < total_long / 4,
        "peak {} should be far below the {}-record session",
        peak_long,
        total_long
    );
    // O(window + lateness): session length must not move the peak by more
    // than noise (record rates vary a little between the two runs).
    assert!(
        (peak_long as f64) < peak_short as f64 * 1.5,
        "peak grew with session length: {peak_short} -> {peak_long}"
    );
}

#[test]
fn arena_reuse_keeps_worker_footprint_flat() {
    // The PR-4 allocation contract: a sweep worker's `SessionArena` (event
    // queue, in-flight map, scratch, recycled bundle buffers) warms up on
    // the first session and then stays byte-for-byte the same size — the
    // second and later sessions in a worker must not grow it. This is the
    // arena flavour of the flat-memory assertion above.
    use domino::sweep::{AnalysisMode, SweepOptions, WorkerScratch};
    let domino = Domino::with_defaults();
    let opts = SweepOptions {
        analysis: AnalysisMode::Streaming,
        ..Default::default()
    };
    let spec = |seed: u64| {
        SessionSpec::cell(
            domino::scenarios::amarisoft(),
            SessionConfig {
                duration: SimDuration::from_secs(15),
                seed,
                ..Default::default()
            },
        )
    };
    let seeds = [61u64, 62, 63, 64];
    let mut scratch = WorkerScratch::new(&domino, &opts);
    let fresh = scratch.footprint();

    // Pass 1 warms the arena: buffer capacities rise to the workload's
    // high-water marks (different seeds have different record counts and
    // in-flight populations, so growth during this pass is expected).
    for (i, &seed) in seeds.iter().enumerate() {
        let outcome = scratch.run_session(&spec(seed), i, &domino, &opts);
        assert!(outcome.stats.is_some());
        assert!(outcome.bundle.is_none(), "bundle recycled into the arena");
    }
    let warm = scratch.footprint();
    assert!(
        warm > fresh,
        "the first pass must warm the arena ({fresh} -> {warm})"
    );

    // Pass 2 replays the exact same workload: every session now fits the
    // warmed buffers, so the arena must not grow by a single element —
    // in particular the second run of each spec is allocation-flat.
    for (i, &seed) in seeds.iter().enumerate() {
        let outcome = scratch.run_session(&spec(seed), i, &domino, &opts);
        assert_eq!(
            scratch.footprint(),
            warm,
            "replaying seed {seed} grew the warm arena"
        );
        assert!(outcome.stats.is_some());
    }

    // And reuse must not change results: a warm-arena session is
    // byte-identical to a fresh-arena one.
    let warm_again = scratch.run_session(&spec(61), 0, &domino, &opts);
    let fresh_run = WorkerScratch::new(&domino, &opts).run_session(&spec(61), 0, &domino, &opts);
    assert_eq!(warm_again.meta.seed, fresh_run.meta.seed);
    assert_eq!(warm_again.stats, fresh_run.stats);
}

#[test]
fn pool_reuse_and_eviction_are_output_invisible() {
    // The PipelinePool contract (ISSUE 5): a call ending and a new call
    // reusing its slot must produce output identical to a fresh pipeline —
    // whatever mix of reuse (warm buffers off the LRU free list) and
    // eviction (pipeline dropped, next checkout builds fresh) the pool's
    // bound produces.
    use domino::live::PipelinePool;
    let lateness = SimDuration::from_secs(30);
    let cfg = LiveConfig {
        lateness: Lateness::Static(lateness),
        early_exit: EarlyExit::Never,
    };
    let specs: Vec<SessionSpec> = (0..4)
        .map(|i| {
            let mut spec = SessionSpec::cell(
                domino::scenarios::all_cells()[i % 4].clone(),
                SessionConfig {
                    duration: SimDuration::from_secs(12),
                    seed: 7_100 + i as u64,
                    ..Default::default()
                },
            );
            if i % 2 == 0 {
                spec = spec.with_script(ScriptAction::CrossTraffic {
                    dir: Direction::Downlink,
                    from: SimTime::from_secs(4),
                    to: SimTime::from_secs(8),
                    prb_fraction: 0.95,
                });
            }
            spec
        })
        .collect();

    // Reference: each spec through its own fresh pipeline.
    let fresh: Vec<Analysis> = specs
        .iter()
        .map(|spec| {
            let mut pipe = LivePipeline::with_defaults(cfg).expect("aligned");
            let bundle = spec.run_with_tap(&mut pipe);
            pipe.take_analysis(bundle.meta.duration)
        })
        .collect();

    // Sequential reuse: every session rides the same pooled pipeline (the
    // pool never holds more than one idle pipeline, so each checkout is a
    // free-list reuse of the previous call's slot).
    let mut pool = PipelinePool::with_defaults(cfg).expect("aligned");
    for (i, spec) in specs.iter().enumerate() {
        let pipe = pool.checkout(i as u64);
        let bundle = spec.run_with_tap(pipe);
        let live = pipe.take_analysis(bundle.meta.duration);
        assert_identical(&fresh[i], &live, &format!("pooled reuse, spec {i}"));
        assert!(pool.release(i as u64).is_some());
    }
    assert_eq!(
        pool.stats().created,
        0,
        "all checkouts reused the free list"
    );
    assert!(pool.stats().reused >= specs.len());

    // Eviction: a zero free-list bound drops every released pipeline, so
    // each checkout constructs from scratch — output must not care.
    let mut pool = PipelinePool::with_defaults(cfg)
        .expect("aligned")
        .max_free(0);
    for (i, spec) in specs.iter().enumerate() {
        let pipe = pool.checkout(i as u64);
        let bundle = spec.run_with_tap(pipe);
        let live = pipe.take_analysis(bundle.meta.duration);
        assert_identical(&fresh[i], &live, &format!("post-eviction, spec {i}"));
        pool.release(i as u64);
    }
    assert_eq!(
        pool.stats().evicted,
        specs.len() + 1,
        "probe + each release"
    );

    // Interleaved width-2 lease pattern (checkout 2, finish one, refill its
    // slot): the reused slot's next session still matches its fresh run.
    let mut pool = PipelinePool::with_defaults(cfg).expect("aligned");
    let run = |pool: &mut PipelinePool, sid: u64, spec: &SessionSpec| -> Analysis {
        let pipe = pool.get_mut(sid).expect("leased");
        let bundle = spec.run_with_tap(pipe);
        let a = pipe.take_analysis(bundle.meta.duration);
        pool.release(sid);
        a
    };
    pool.checkout(0);
    pool.checkout(1);
    let a0 = run(&mut pool, 0, &specs[0]);
    pool.checkout(2); // reuses session 0's pipeline while 1 is still leased
    let a1 = run(&mut pool, 1, &specs[1]);
    let a2 = run(&mut pool, 2, &specs[2]);
    assert_identical(&fresh[0], &a0, "interleaved slot 0");
    assert_identical(&fresh[1], &a1, "interleaved slot 1");
    assert_identical(&fresh[2], &a2, "interleaved slot 2 (reused slot 0)");
}

#[test]
fn live_sweep_mode_matches_batch_sweep() {
    use domino::sweep::{run_sweep, AnalysisMode, SweepOptions};
    let specs: Vec<SessionSpec> = all_cells()
        .into_iter()
        .map(|cell| {
            SessionSpec::cell(
                cell,
                SessionConfig {
                    duration: SimDuration::from_secs(12),
                    seed: 2024,
                    ..Default::default()
                },
            )
        })
        .collect();
    let domino = Domino::with_defaults();
    let live = run_sweep(
        &specs,
        &domino,
        &SweepOptions {
            analysis: AnalysisMode::Live,
            live: LiveConfig {
                lateness: Lateness::Static(SimDuration::from_secs(30)),
                early_exit: EarlyExit::Never,
            },
            keep_analyses: true,
            ..Default::default()
        },
    );
    let batch = run_sweep(
        &specs,
        &domino,
        &SweepOptions {
            analysis: AnalysisMode::Batch,
            keep_analyses: true,
            ..Default::default()
        },
    );
    for (l, b) in live.outcomes.iter().zip(&batch.outcomes) {
        assert_identical(
            b.analysis.as_ref().unwrap(),
            l.analysis.as_ref().unwrap(),
            &l.label,
        );
    }
    assert_eq!(live.aggregate.chain_windows, batch.aggregate.chain_windows);
    assert_eq!(
        live.aggregate.unknown_windows,
        batch.aggregate.unknown_windows
    );
}
