//! DSL ⇄ graph ⇄ generated-code consistency on real session data: the
//! compiled detection program must agree with the graph backward trace on
//! every window of an actual simulated trace.

use domino::core::{compile, default_graph, emit, parse, Domino, DominoConfig};
use domino::scenarios::{SessionConfig, SessionRun};
use domino::simcore::SimDuration;

#[test]
fn program_agrees_with_search_on_real_trace() {
    let cfg = SessionConfig {
        duration: SimDuration::from_secs(20),
        seed: 404,
        ..Default::default()
    };
    let bundle = SessionRun::cell(domino::scenarios::tmobile_fdd_15mhz(), &cfg).run();

    let domino = Domino::with_defaults();
    let program = compile(domino.graph());
    let analysis = domino.analyze(&bundle);
    assert!(!analysis.windows.is_empty());

    for w in &analysis.windows {
        let out = program.run(domino.graph(), &w.features);
        // Same set of (cause, consequence, path) detections.
        let mut from_search: Vec<Vec<usize>> = w.chains.iter().map(|c| c.path.clone()).collect();
        let mut from_program: Vec<Vec<usize>> = out
            .chains
            .iter()
            .map(|&id| program.chains[id].clone())
            .collect();
        from_search.sort();
        from_program.sort();
        assert_eq!(from_search, from_program, "window at {}", w.start);
    }
}

#[test]
fn dsl_round_trip_preserves_detection_behaviour() {
    let g1 = default_graph();
    let g2 = parse(&emit(&g1)).expect("emitted text parses");
    let cfg = SessionConfig {
        duration: SimDuration::from_secs(15),
        seed: 405,
        ..Default::default()
    };
    let bundle = SessionRun::cell(domino::scenarios::amarisoft(), &cfg).run();
    let d1 = Domino::new(g1, DominoConfig::default());
    let d2 = Domino::new(g2, DominoConfig::default());
    let a1 = d1.analyze(&bundle);
    let a2 = d2.analyze(&bundle);
    assert_eq!(a1.windows.len(), a2.windows.len());
    for (w1, w2) in a1.windows.iter().zip(&a2.windows) {
        // Node ids and edge order may differ after a round trip; the *set*
        // of detected (cause, consequence) chains must not.
        let mut n1: Vec<(String, String)> = w1
            .chains
            .iter()
            .map(|c| {
                (
                    d1.graph().name(c.cause).to_string(),
                    d1.graph().name(c.consequence).to_string(),
                )
            })
            .collect();
        let mut n2: Vec<(String, String)> = w2
            .chains
            .iter()
            .map(|c| {
                (
                    d2.graph().name(c.cause).to_string(),
                    d2.graph().name(c.consequence).to_string(),
                )
            })
            .collect();
        n1.sort();
        n2.sort();
        assert_eq!(n1, n2);
    }
}

#[test]
fn generated_python_mentions_every_feature_in_use() {
    let g = default_graph();
    let py = compile(&g).emit_python(&g);
    for node in [
        "jitter_buffer_drain",
        "target_bitrate_down",
        "pushback_rate_down",
        "forward_delay_up",
        "reverse_delay_up",
        "poor_channel",
        "cross_traffic",
        "ul_scheduling",
        "harq_retx",
        "rlc_retx",
        "rrc_state_change",
    ] {
        assert!(py.contains(node), "{node} missing from generated Python");
    }
}
