//! Degraded-telemetry resilience contracts (ISSUE 10).
//!
//! Three promises under telemetry chaos:
//!
//! 1. **Adaptive ≡ static when pinned** — `Lateness::Adaptive` with
//!    `floor == ceil == s` must be byte-identical (report *and* metrics)
//!    to `Lateness::Static(s)`, chaos or no chaos: the estimator may run,
//!    but a pinned clamp must leave no observable trace of adaptivity.
//! 2. **Every injected fault is accounted for** — the `ChaosTap`'s ground
//!    truth log reconciles exactly (no record silently appears or
//!    vanishes), and the sweep's obs counters reproduce the log's totals,
//!    so injected chaos is observable from the metrics artifact alone.
//! 3. **Chaos is part of the determinism contract** — a seeded-chaos grid
//!    produces byte-identical reports and metrics across thread counts,
//!    multiplex widths, and shard counts.
//!
//! Plus the headline robustness claim: on a degraded reference cell the
//! adaptive watermark beats a conservative `Static(5s)` — lower verdict
//! latency p95 at an equal-or-lower late-drop rate.

use domino::core::Domino;
use domino::live::{ChaosState, ChaosTap, EarlyExit, LiveConfig, LivePipeline};
use domino::obs::{Counter, HistId, MetricsSnapshot, ObsConfig};
use domino::scenarios::{
    all_cells, amarisoft, AxisPatch, ScenarioAxis, SessionConfig, SessionGrid, SessionSpec,
};
use domino::simcore::{SimDuration, SimTime};
use domino::sweep::{
    merge_shards, run_shard_with_metrics, AnalysisMode, ExecutionMode, ShardPlan, SweepOptions,
};
use domino::telemetry::{Lateness, TapChaosSpec, TapFault, TapStream};

use proptest::strategy::Strategy;

fn live_opts(lateness: Lateness) -> SweepOptions {
    SweepOptions {
        threads: 1,
        analysis: AnalysisMode::Live,
        live: LiveConfig {
            lateness,
            early_exit: EarlyExit::Never,
        },
        obs: ObsConfig::full(),
        ..Default::default()
    }
}

/// Runs `specs` single-threaded and returns (report bytes, metrics bytes).
fn encode_run(specs: &[SessionSpec], opts: &SweepOptions) -> (String, String) {
    let domino = Domino::with_defaults();
    let plan = ShardPlan::new(specs.len(), 1);
    let (report, metrics) = run_shard_with_metrics(specs, &plan.shard(0), &domino, opts);
    (report.encode(), metrics.expect("obs enabled").encode_sim())
}

/// A fault script touching every fault class, seeded from `seed`.
fn mixed_chaos(seed: u64) -> TapChaosSpec {
    TapChaosSpec::new(seed)
        .fault(TapFault::Drop {
            stream: TapStream::Gnb,
            pct: 15,
        })
        .fault(TapFault::Duplicate {
            stream: TapStream::Dci,
            pct: 10,
        })
        .fault(TapFault::Delay {
            stream: TapStream::AppLocal,
            pct: 20,
            max_delay: SimDuration::from_millis(700),
        })
        .fault(TapFault::SkewBehind {
            stream: TapStream::AppRemote,
            skew: SimDuration::from_millis(250),
        })
        .fault(TapFault::Blackout {
            stream: TapStream::Gnb,
            from: SimTime::from_secs(5),
            to: SimTime::from_secs(7),
        })
}

#[test]
fn pinned_adaptive_is_byte_identical_to_static() {
    // Property: for random bound s, seed, and cell — with a chaos script
    // running, to stress the estimator with faulted delays — Adaptive
    // pinned to [s, s] and Static(s) produce identical bytes.
    let mut rng = proptest::test_rng("pinned_adaptive_is_byte_identical_to_static");
    let cells = all_cells();
    for case in 0..4 {
        let s = SimDuration::from_millis((300u64..=2500).generate(&mut rng));
        let seed = proptest::any::<u64>().generate(&mut rng);
        let cell = cells[(0..cells.len()).generate(&mut rng)].clone();
        let spec = SessionSpec::cell(
            cell,
            SessionConfig {
                duration: SimDuration::from_secs(10),
                seed,
                ..Default::default()
            },
        )
        .with_chaos(mixed_chaos(seed ^ 0x5EED));
        let stat = encode_run(std::slice::from_ref(&spec), &live_opts(Lateness::Static(s)));
        let pinned = encode_run(
            &[spec],
            &live_opts(Lateness::Adaptive {
                target_quantile: 0.9,
                floor: s,
                ceil: s,
            }),
        );
        assert_eq!(
            stat, pinned,
            "case {case}: pinned adaptive diverged from Static({s:?})"
        );
    }
}

#[test]
fn seeded_chaos_fuzz_reconciles_every_fault() {
    // Fuzz random fault scripts over random sessions; for each, (a) the
    // tap's ground-truth log must balance exactly, (b) the wrapped
    // pipeline must have seen exactly the forwarded emissions, and (c) a
    // sweep of the same spec must surface the same totals as obs counters.
    let mut rng = proptest::test_rng("seeded_chaos_fuzz_reconciles_every_fault");
    let cells = all_cells();
    let streams = [
        TapStream::AppLocal,
        TapStream::AppRemote,
        TapStream::Dci,
        TapStream::Gnb,
    ];
    let mut any_fault = false;
    for case in 0..5 {
        let seed = proptest::any::<u64>().generate(&mut rng);
        let mut chaos = TapChaosSpec::new(seed);
        for _ in 0..(1usize..=4).generate(&mut rng) {
            let stream = streams[(0..streams.len()).generate(&mut rng)];
            let pct = (5u8..=40).generate(&mut rng);
            chaos = chaos.fault(match (0u8..5).generate(&mut rng) {
                0 => TapFault::Drop {
                    // Packet drops (and their suppressed deliveries) ride
                    // this arm too, some of the time.
                    stream: if proptest::any::<bool>().generate(&mut rng) {
                        TapStream::Packet
                    } else {
                        stream
                    },
                    pct,
                },
                1 => TapFault::Duplicate { stream, pct },
                2 => TapFault::Delay {
                    stream,
                    pct,
                    max_delay: SimDuration::from_millis((100u64..=1200).generate(&mut rng)),
                },
                3 => TapFault::SkewBehind {
                    stream,
                    skew: SimDuration::from_millis((50u64..=600).generate(&mut rng)),
                },
                _ => {
                    let from = (2u64..=6).generate(&mut rng);
                    TapFault::Blackout {
                        stream,
                        from: SimTime::from_secs(from),
                        to: SimTime::from_secs(from + (1u64..=3).generate(&mut rng)),
                    }
                }
            });
        }
        let cell = cells[(0..cells.len()).generate(&mut rng)].clone();
        let spec = SessionSpec::cell(
            cell,
            SessionConfig {
                duration: SimDuration::from_secs(10),
                seed,
                ..Default::default()
            },
        )
        .with_chaos(chaos.clone());

        // Ground truth: drive the session through an explicit ChaosTap.
        let lateness = Lateness::Static(SimDuration::from_secs(30));
        let mut pipe = LivePipeline::with_defaults(LiveConfig {
            lateness,
            early_exit: EarlyExit::Never,
        })
        .expect("default config is aligned");
        let mut state = ChaosState::new(&chaos);
        {
            let mut tap = ChaosTap::new(&mut state, &mut pipe);
            spec.run_with_tap(&mut tap);
        }
        let log = state.log.clone();
        assert!(log.reconciled(), "case {case}: fault log does not balance");
        any_fault |= log.any_fault();
        assert_eq!(
            log.total_forwarded(),
            pipe.stats().records_seen as u64,
            "case {case}: pipeline saw records the log did not forward"
        );

        // The sweep path replays the same seeded faults and must surface
        // exactly the log's totals in the metrics artifact.
        let domino = Domino::with_defaults();
        let plan = ShardPlan::new(1, 1);
        let (report, metrics) =
            run_shard_with_metrics(&[spec], &plan.shard(0), &domino, &live_opts(lateness));
        let m = metrics.expect("obs enabled");
        assert_eq!(m.counter(Counter::ChaosRecordsDropped), log.total_dropped());
        assert_eq!(
            m.counter(Counter::ChaosBlackoutDrops),
            log.total_blackout_dropped()
        );
        assert_eq!(
            m.counter(Counter::ChaosRecordsDuplicated),
            log.total_duplicated()
        );
        assert_eq!(m.counter(Counter::ChaosRecordsDelayed), log.total_delayed());
        assert_eq!(m.counter(Counter::ChaosRecordsSkewed), log.total_skewed());
        assert_eq!(
            m.counter(Counter::LiveRecordsSeen),
            log.total_forwarded(),
            "case {case}: sweep pipeline record count diverged from the log"
        );
        assert_eq!(
            report.live_totals.records_seen as u64,
            log.total_forwarded()
        );
    }
    assert!(any_fault, "the fuzz never injected a fault; it is too tame");
}

/// The seeded-chaos determinism grid: one cell × (lossy | dark) × (static |
/// adaptive), small enough to sweep repeatedly under every partitioning.
fn chaos_grid() -> Vec<SessionSpec> {
    let lossy = mixed_chaos(0xA11);
    let dark = TapChaosSpec::new(0xB22)
        .fault(TapFault::Blackout {
            stream: TapStream::AppRemote,
            from: SimTime::from_secs(3),
            to: SimTime::from_secs(6),
        })
        .fault(TapFault::SkewBehind {
            stream: TapStream::Gnb,
            skew: SimDuration::from_millis(300),
        });
    SessionGrid::new()
        .cells(vec![amarisoft()])
        .durations([SimDuration::from_secs(10)])
        .axis(
            ScenarioAxis::new("chaos")
                .point("lossy", vec![AxisPatch::TapChaos(Some(lossy))])
                .point("dark", vec![AxisPatch::TapChaos(Some(dark))]),
        )
        .axis(
            ScenarioAxis::new("lateness")
                .point(
                    "static2s",
                    vec![AxisPatch::Lateness(Lateness::Static(
                        SimDuration::from_secs(2),
                    ))],
                )
                .point(
                    "adaptive",
                    vec![AxisPatch::Lateness(Lateness::Adaptive {
                        target_quantile: 0.99,
                        floor: SimDuration::from_millis(250),
                        ceil: SimDuration::from_secs(5),
                    })],
                ),
        )
        .master_seed(616)
        .build()
}

#[test]
fn chaos_bytes_depend_only_on_spec_and_seed() {
    // The tentpole determinism claim: with chaos on, output bytes are a
    // function of (spec, seed) alone — identical across thread counts,
    // multiplex widths, and shard counts.
    let specs = chaos_grid();
    let domino = Domino::with_defaults();
    let base = live_opts(Lateness::Static(SimDuration::from_secs(2)));
    let reference = encode_run(&specs, &base);

    for threads in [2usize, 4] {
        let opts = SweepOptions {
            threads,
            ..base.clone()
        };
        assert_eq!(
            reference,
            encode_run(&specs, &opts),
            "chaos bytes changed with {threads} threads"
        );
    }
    for width in [2usize, 8] {
        let opts = SweepOptions {
            execution: ExecutionMode::Multiplexed { width },
            ..base.clone()
        };
        assert_eq!(
            reference,
            encode_run(&specs, &opts),
            "chaos bytes changed at mux width {width}"
        );
    }

    // Sharded: three shards, merged report and order-folded metrics must
    // both reproduce the single-machine bytes.
    let plan = ShardPlan::new(specs.len(), 3);
    let mut reports = Vec::new();
    let mut metrics: Option<MetricsSnapshot> = None;
    for shard in plan.shards() {
        let (r, m) = run_shard_with_metrics(&specs, &shard, &domino, &base);
        reports.push(r);
        let m = m.expect("obs enabled");
        match metrics.as_mut() {
            Some(acc) => acc.merge(&m),
            None => metrics = Some(m),
        }
    }
    let merged = merge_shards(&reports).expect("shards tile");
    assert_eq!(
        reference.0,
        merged.encode(),
        "sharded chaos report diverged"
    );
    assert_eq!(
        reference.1,
        metrics.expect("3 shards").encode_sim(),
        "sharded chaos metrics diverged"
    );
}

#[test]
fn adaptive_beats_static_5s_on_degraded_cell() {
    // The headline trade-off (same shape `examples/lateness_tradeoff.rs`
    // prints): on a reference cell whose telemetry runs ~300 ms behind and
    // partially dark, the adaptive watermark must deliver verdicts much
    // sooner than a conservative Static(5s) *without* paying for it in
    // late drops.
    let chaos = TapChaosSpec::new(0xDE6)
        .fault(TapFault::SkewBehind {
            stream: TapStream::Gnb,
            skew: SimDuration::from_millis(300),
        })
        .fault(TapFault::Drop {
            stream: TapStream::Dci,
            pct: 10,
        })
        .fault(TapFault::Blackout {
            stream: TapStream::AppRemote,
            from: SimTime::from_secs(8),
            to: SimTime::from_secs(12),
        });
    let spec = SessionSpec::cell(
        amarisoft(),
        SessionConfig {
            duration: SimDuration::from_secs(20),
            seed: 4242,
            ..Default::default()
        },
    )
    .with_chaos(chaos);

    let run = |lateness: Lateness| {
        let domino = Domino::with_defaults();
        let plan = ShardPlan::new(1, 1);
        let (report, metrics) = run_shard_with_metrics(
            std::slice::from_ref(&spec),
            &plan.shard(0),
            &domino,
            &live_opts(lateness),
        );
        let m = metrics.expect("obs enabled");
        let t = report.live_totals;
        assert!(t.windows_emitted > 0);
        (
            m.quantile(HistId::LiveVerdictLatencyMs, 0.95),
            t.late_records_dropped as f64 / t.records_seen as f64,
        )
    };

    let (static_p95, static_drops) = run(Lateness::Static(SimDuration::from_secs(5)));
    let (adaptive_p95, adaptive_drops) = run(Lateness::Adaptive {
        target_quantile: 0.99,
        floor: SimDuration::from_millis(250),
        ceil: SimDuration::from_secs(5),
    });
    assert!(
        adaptive_p95 < static_p95 / 2.0,
        "adaptive verdict-latency p95 ({adaptive_p95:.0} ms) not well below \
         Static(5s)'s ({static_p95:.0} ms)"
    );
    assert!(
        adaptive_drops <= static_drops,
        "adaptive late-drop rate {adaptive_drops:.4} exceeds Static(5s)'s {static_drops:.4}"
    );
}
