//! The coordinator contract: a fault-tolerant distributed sweep must
//! produce a merged report **byte-identical** to single-machine
//! [`run_sweep`] under *any* failure/retry schedule — worker kills
//! mid-range, stragglers hedged to a second worker with duplicate
//! deliveries, corrupted report bytes, and dead-worker work-stealing —
//! at any sub-range granularity, thread count, and mux width.
//!
//! All scenarios run on the virtual-clock [`InProcFleet`], so "wait 400ms
//! for the straggler" costs microseconds and every schedule replays
//! deterministically.

use domino::core::Domino;
use domino::scenarios::{all_cells, SessionGrid, SessionSpec};
use domino::simcore::SimDuration;
use domino::sweep::{
    run_coordinator, run_sweep, CoordinatorConfig, CoordinatorStats, ExecutionMode, Fault,
    FaultPlan, InProcFleet, ShardReport, SweepOptions,
};
use proptest::strategy::Strategy;

/// Table 1 cells × three durations: a 12-spec grid, short enough to sweep
/// many times under chaos.
fn grid() -> Vec<SessionSpec> {
    SessionGrid::new()
        .cells(all_cells())
        .durations([
            SimDuration::from_secs(4),
            SimDuration::from_secs(6),
            SimDuration::from_secs(9),
        ])
        .master_seed(90_210)
        .build()
}

/// Virtual-time coordinator tuning for the chaos matrix: deadlines well
/// above the fleet's synthetic range cost (~4+3/spec ms) but far below
/// the watchdog, tight backoff, generous attempt budget.
fn chaos_config(chunk_specs: usize) -> CoordinatorConfig {
    CoordinatorConfig {
        chunk_specs,
        prefetch: 2,
        min_workers: 0,
        dispatch_timeout_ms: 800,
        backoff_base_ms: 10,
        backoff_max_ms: 80,
        max_attempts: 8,
        straggler_after_ms: 100,
        worker_wait_ms: 5_000,
        drain_grace_ms: 2_000,
    }
}

/// Runs the coordinator over the fleet and checks merged bytes against the
/// single-machine reference.
fn run_chaos(
    specs: &[SessionSpec],
    opts: &SweepOptions,
    plan: &FaultPlan,
    cfg: &CoordinatorConfig,
    workers: usize,
    reference: &str,
    label: &str,
) -> CoordinatorStats {
    let domino = Domino::with_defaults();
    let mut fleet = InProcFleet::new(specs, &domino, opts, workers, plan);
    let run = run_coordinator(specs.len(), &mut fleet, cfg, |_| {})
        .unwrap_or_else(|e| panic!("{label}: coordinator failed: {e}"));
    assert_eq!(
        run.report.encode(),
        reference,
        "{label}: merged bytes diverged from single-machine run_sweep"
    );
    assert_eq!(
        run.stats.ranges_completed as usize,
        specs.len().div_ceil(cfg.chunk_specs.max(1)),
        "{label}: range accounting"
    );
    run.stats
}

/// The four named failure schedules from the acceptance criteria. Each is
/// exercised at 1 and 3 sub-ranges (chunk = grid, chunk = grid/3) below.
fn named_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            // Worker 0 completes its first range (at 3-range chunking) and
            // dies partway through the next; at 1-range chunking it dies
            // partway through the whole-grid range.
            "worker-kill-mid-range",
            FaultPlan {
                seed: 1,
                faults: vec![Fault::KillWorker {
                    worker: 0,
                    after_specs: 5,
                    respawn_after_ms: Some(30),
                }],
            },
        ),
        (
            "straggler-reissue-duplicate-delivery",
            FaultPlan {
                seed: 2,
                faults: vec![
                    Fault::DelayRange {
                        range: 0,
                        delay_ms: 400,
                    },
                    Fault::DuplicateResult { range: 0 },
                ],
            },
        ),
        (
            "corrupted-report-retry",
            FaultPlan {
                seed: 3,
                faults: vec![Fault::CorruptResult { range: 0, times: 2 }],
            },
        ),
        (
            // Worker 0 dies on its very first dispatch, so everything
            // queued on it (two ranges at 3-range chunking, thanks to
            // prefetch) is stolen and rebalanced onto the survivors.
            "dead-worker-work-steal",
            FaultPlan {
                seed: 4,
                faults: vec![Fault::KillWorker {
                    worker: 0,
                    after_specs: 0,
                    respawn_after_ms: Some(25),
                }],
            },
        ),
    ]
}

#[test]
fn chaos_matrix_is_byte_identical_to_single_machine() {
    let specs = grid();
    let domino = Domino::with_defaults();
    let reference = ShardReport::from_sweep(&run_sweep(
        &specs,
        &domino,
        &SweepOptions {
            threads: 2,
            ..Default::default()
        },
    ))
    .encode();
    assert!(reference.contains("chainstats"), "reference carries stats");

    // Failure schedules × {1, 3} sub-ranges × worker thread/mux variation.
    let exec = [
        (1usize, ExecutionMode::PerWorker),
        (2, ExecutionMode::Multiplexed { width: 4 }),
    ];
    for (pi, (name, plan)) in named_plans().into_iter().enumerate() {
        for (chunk, n_ranges) in [(specs.len(), 1usize), (specs.len().div_ceil(3), 3)] {
            let (threads, mode) = exec[(pi + n_ranges) % exec.len()];
            let opts = SweepOptions {
                threads,
                execution: mode,
                ..Default::default()
            };
            let label = format!("{name} @ {n_ranges} range(s)");
            let stats = run_chaos(
                &specs,
                &opts,
                &plan,
                &chaos_config(chunk),
                3,
                &reference,
                &label,
            );
            // Each schedule must actually exercise its failure mode.
            match name {
                "worker-kill-mid-range" | "dead-worker-work-steal" => {
                    assert!(stats.worker_deaths >= 1, "{label}: no death observed");
                    assert!(stats.steals >= 1, "{label}: nothing stolen");
                }
                "straggler-reissue-duplicate-delivery" => {
                    assert!(stats.straggler_reissues >= 1, "{label}: no hedge issued");
                    assert!(
                        stats.duplicates_discarded >= 1,
                        "{label}: no duplicate discarded"
                    );
                }
                "corrupted-report-retry" => {
                    assert_eq!(
                        stats.corrupt_reports, 2,
                        "{label}: corruptions not surfaced"
                    );
                }
                _ => unreachable!(),
            }
        }
    }
}

#[test]
fn clean_fleet_matches_and_counts_nothing() {
    let specs = grid();
    let domino = Domino::with_defaults();
    let opts = SweepOptions {
        threads: 2,
        ..Default::default()
    };
    let reference = ShardReport::from_sweep(&run_sweep(&specs, &domino, &opts)).encode();
    let stats = run_chaos(
        &specs,
        &opts,
        &FaultPlan::none(),
        &chaos_config(2),
        3,
        &reference,
        "clean fleet",
    );
    assert_eq!(stats.worker_deaths, 0);
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.corrupt_reports, 0);
    assert_eq!(stats.duplicates_discarded, 0);
    assert_eq!(stats.steals, 0);
    assert_eq!(stats.workers_peak, 3);
}

/// Random seeded fault schedules: merged bytes must stay identical to the
/// single-machine reference, and every corrupted delivery the fleet
/// injected must surface in `CoordinatorStats::corrupt_reports`. The
/// straggler hedge is disabled here so a corrupted delivery can never race
/// a completed hedge copy — which makes the surfaced-corruption count
/// *exactly* equal to the injected count, not merely bounded below.
#[test]
fn random_fault_plans_fuzz() {
    let specs = grid();
    let domino = Domino::with_defaults();
    let opts = SweepOptions {
        threads: 2,
        ..Default::default()
    };
    let reference = ShardReport::from_sweep(&run_sweep(&specs, &domino, &opts)).encode();

    let mut rng = proptest::test_rng("coordinator_random_fault_plans");
    // Each case is a full chaos sweep; cap below proptest::CASES to keep
    // tier-1 wall time sane.
    let cases = proptest::CASES.min(18);
    for case in 0..cases {
        let seed = (0u64..u64::MAX).generate(&mut rng);
        let chunk = (1usize..=6).generate(&mut rng);
        let workers = (1usize..=4).generate(&mut rng);
        let n_ranges = specs.len().div_ceil(chunk);
        let plan = FaultPlan::random(seed, workers, n_ranges);
        let mut cfg = chaos_config(chunk);
        cfg.straggler_after_ms = 1_000_000;
        let label = format!("case {case} (seed {seed}, chunk {chunk}, workers {workers})");

        let mut fleet = InProcFleet::new(&specs, &domino, &opts, workers, &plan);
        let run = run_coordinator(specs.len(), &mut fleet, &cfg, |_| {})
            .unwrap_or_else(|e| panic!("{label}: coordinator failed: {e} (plan {plan:?})"));
        assert_eq!(
            run.report.encode(),
            reference,
            "{label}: merged bytes diverged (plan {plan:?})"
        );
        assert_eq!(
            run.stats.corrupt_reports, fleet.log.corruptions as u64,
            "{label}: injected corruptions not fully surfaced (log {:?}, stats {:?})",
            fleet.log, run.stats
        );
        assert_eq!(run.stats.worker_deaths, fleet.log.kills as u64, "{label}");
        assert!(
            run.stats.dispatches >= n_ranges as u64,
            "{label}: dispatch accounting"
        );
    }
}

/// Progress streaming: monotone spec counts, final snapshot covers the
/// grid.
#[test]
fn progress_streams_monotonically() {
    let specs = grid();
    let domino = Domino::with_defaults();
    let opts = SweepOptions {
        threads: 1,
        ..Default::default()
    };
    let plan = named_plans().remove(0).1;
    let mut fleet = InProcFleet::new(&specs, &domino, &opts, 3, &plan);
    let mut seen = Vec::new();
    let run = run_coordinator(specs.len(), &mut fleet, &chaos_config(3), |p| {
        seen.push(*p);
    })
    .expect("coordinated sweep");
    assert!(!seen.is_empty());
    let mut last = 0;
    for p in &seen {
        assert!(p.specs_done >= last, "specs_done regressed");
        assert_eq!(p.specs_total, specs.len());
        last = p.specs_done;
    }
    let end = seen.last().unwrap();
    assert_eq!(end.specs_done, specs.len());
    assert_eq!(end.ranges_done, end.ranges_total);
    assert_eq!(
        end.chain_windows,
        run.report
            .outcomes
            .iter()
            .filter_map(|o| o.stats.as_ref())
            .map(|s| s.total_chain_windows as u64)
            .sum::<u64>()
    );
}
