//! Reproducibility: identical (seed, config) must yield byte-identical
//! traces and identical Domino analyses; different seeds must diverge.

use domino::core::{ChainStats, Domino};
use domino::scenarios::{SessionConfig, SessionRun};
use domino::simcore::SimDuration;

fn cfg(seed: u64) -> SessionConfig {
    SessionConfig {
        duration: SimDuration::from_secs(12),
        seed,
        ..Default::default()
    }
}

#[test]
fn identical_seeds_identical_traces_and_analysis() {
    let a = SessionRun::cell(domino::scenarios::amarisoft(), &cfg(123)).run();
    let b = SessionRun::cell(domino::scenarios::amarisoft(), &cfg(123)).run();

    assert_eq!(a.packets.len(), b.packets.len());
    for (x, y) in a.packets.iter().zip(&b.packets) {
        assert_eq!(x.sent, y.sent);
        assert_eq!(x.received, y.received);
        assert_eq!(x.size_bytes, y.size_bytes);
    }
    assert_eq!(a.dci.len(), b.dci.len());
    for (x, y) in a.dci.iter().zip(&b.dci) {
        assert_eq!(x.ts, y.ts);
        assert_eq!(x.tbs_bits, y.tbs_bits);
        assert_eq!(x.mcs, y.mcs);
        assert_eq!(x.decoded_ok, y.decoded_ok);
    }
    assert_eq!(a.gnb.len(), b.gnb.len());
    assert_eq!(a.app_local.len(), b.app_local.len());
    for (x, y) in a.app_local.iter().zip(&b.app_local) {
        assert_eq!(x.target_bitrate_bps, y.target_bitrate_bps);
        assert_eq!(x.outstanding_bytes, y.outstanding_bytes);
    }

    let domino = Domino::with_defaults();
    let sa = ChainStats::compute(domino.graph(), &domino.analyze(&a));
    let sb = ChainStats::compute(domino.graph(), &domino.analyze(&b));
    assert_eq!(sa.total_chain_windows, sb.total_chain_windows);
    assert_eq!(sa.cause_onsets, sb.cause_onsets);
}

/// A capacity-independent fingerprint of everything a bundle records.
fn fingerprint(
    b: &domino::telemetry::TraceBundle,
) -> (usize, u128, usize, usize, u64, usize, usize, usize) {
    (
        b.packets.len(),
        b.packets
            .iter()
            .filter_map(|p| p.received)
            .map(|t| t.as_micros() as u128)
            .sum(),
        b.dci.len(),
        b.dci.iter().filter(|d| d.is_target_ue).count(),
        b.dci.iter().map(|d| d.tbs_bits as u64).sum(),
        b.dci.iter().filter(|d| d.decoded_ok).count(),
        b.gnb.len(),
        b.app_local.len(),
    )
}

/// Golden fingerprints captured on the object-at-a-time cell before the SoA
/// refactor. An N=1 cell (no scripted traffic UEs) must reproduce the
/// legacy two-party session *exactly* — any drift here means the shared
/// slot loop changed single-UE physics.
#[test]
fn n1_cell_reproduces_prerefactor_golden_traces() {
    let a = SessionRun::cell(domino::scenarios::amarisoft(), &cfg(123)).run();
    assert_eq!(
        fingerprint(&a),
        (4629, 29329767038, 5906, 4961, 30911960, 5599, 12002, 240)
    );
    let b = SessionRun::cell(domino::scenarios::amarisoft(), &cfg(9)).run();
    assert_eq!(
        fingerprint(&b),
        (4964, 30633548092, 6676, 5100, 36788384, 6381, 12002, 240)
    );
}

/// Scripted traffic UEs draw from counter-based hashes, not RNG streams, so
/// adding them must (a) stay deterministic across runs and (b) leave the
/// diagnosed pair's packet count untouched only in *stream identity* — the
/// contention itself of course changes timings vs. an empty cell.
#[test]
fn traffic_ue_population_is_deterministic() {
    use domino::ran::traffic_mix;
    let mut cell = domino::scenarios::amarisoft();
    cell.traffic_ues = traffic_mix(16);
    let a = SessionRun::cell(cell.clone(), &cfg(31)).run();
    let b = SessionRun::cell(cell, &cfg(31)).run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
    // The scripted population shows up as foreign RNTIs in the DCI log.
    assert!(
        a.dci
            .iter()
            .any(|d| !d.is_target_ue && d.rnti >= domino::ran::TRAFFIC_RNTI_BASE),
        "scripted UEs must be visible in the control channel"
    );
}

/// One pair on a shared-cell driver is the same simulation as the solo
/// engine — byte-identical bundles, not just matching statistics.
#[test]
fn shared_driver_single_pair_matches_solo_engine() {
    use domino::scenarios::run_shared_cell_sessions;
    let solo = SessionRun::cell(domino::scenarios::amarisoft(), &cfg(123)).run();
    let shared = run_shared_cell_sessions(domino::scenarios::amarisoft(), &cfg(123), 1, |_| {});
    assert_eq!(shared.len(), 1);
    assert_eq!(fingerprint(&solo), fingerprint(&shared[0]));
    for (x, y) in solo.packets.iter().zip(&shared[0].packets) {
        assert_eq!((x.sent, x.received), (y.sent, y.received));
    }
    for (x, y) in solo.dci.iter().zip(&shared[0].dci) {
        assert_eq!(
            (x.ts, x.rnti, x.tbs_bits, x.is_target_ue),
            (y.ts, y.rnti, y.tbs_bits, y.is_target_ue)
        );
    }
}

/// Many-UE cells stay deterministic under arena reuse: a session run in a
/// warm arena (recycled UE table, bundle, pending map) must equal a fresh
/// run.
#[test]
fn warm_arena_matches_fresh_arena_with_traffic_ues() {
    use domino::scenarios::SessionArena;
    use domino::telemetry::NullTap;
    let mut cell = domino::scenarios::amarisoft();
    cell.traffic_ues = domino::ran::traffic_mix(8);
    let mut arena = SessionArena::new();
    let first = SessionRun::cell(cell.clone(), &cfg(55))
        .tap(&mut NullTap)
        .arena(&mut arena)
        .run();
    let warm = SessionRun::cell(cell, &cfg(55))
        .tap(&mut NullTap)
        .arena(&mut arena)
        .run();
    assert_eq!(fingerprint(&first), fingerprint(&warm));
}

#[test]
fn different_seeds_diverge() {
    let a = SessionRun::cell(domino::scenarios::amarisoft(), &cfg(1)).run();
    let b = SessionRun::cell(domino::scenarios::amarisoft(), &cfg(2)).run();
    let same = a
        .packets
        .iter()
        .zip(&b.packets)
        .take(2000)
        .filter(|(x, y)| x.received == y.received)
        .count();
    assert!(
        same < 1900,
        "different seeds should produce different delivery timings ({same}/2000 identical)"
    );
}

#[test]
fn scripted_overrides_do_not_break_determinism() {
    use domino::simcore::SimTime;
    use domino::telemetry::Direction;
    let script = |cell: &mut domino::ran::CellSim| {
        cell.script_sinr(
            Direction::Uplink,
            SimTime::from_secs(5),
            SimTime::from_secs(7),
            0.0,
        );
    };
    let a = SessionRun::cell(domino::scenarios::amarisoft(), &cfg(9))
        .script(script)
        .run();
    let b = SessionRun::cell(domino::scenarios::amarisoft(), &cfg(9))
        .script(script)
        .run();
    assert_eq!(a.packets.len(), b.packets.len());
    let last_a = a.packets.last().expect("packets exist");
    let last_b = b.packets.last().expect("packets exist");
    assert_eq!(last_a.received, last_b.received);
}
