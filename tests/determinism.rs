//! Reproducibility: identical (seed, config) must yield byte-identical
//! traces and identical Domino analyses; different seeds must diverge.

use domino::core::{ChainStats, Domino};
use domino::scenarios::{run_cell_session, SessionConfig};
use domino::simcore::SimDuration;

fn cfg(seed: u64) -> SessionConfig {
    SessionConfig {
        duration: SimDuration::from_secs(12),
        seed,
        ..Default::default()
    }
}

#[test]
fn identical_seeds_identical_traces_and_analysis() {
    let a = run_cell_session(domino::scenarios::amarisoft(), &cfg(123), |_| {});
    let b = run_cell_session(domino::scenarios::amarisoft(), &cfg(123), |_| {});

    assert_eq!(a.packets.len(), b.packets.len());
    for (x, y) in a.packets.iter().zip(&b.packets) {
        assert_eq!(x.sent, y.sent);
        assert_eq!(x.received, y.received);
        assert_eq!(x.size_bytes, y.size_bytes);
    }
    assert_eq!(a.dci.len(), b.dci.len());
    for (x, y) in a.dci.iter().zip(&b.dci) {
        assert_eq!(x.ts, y.ts);
        assert_eq!(x.tbs_bits, y.tbs_bits);
        assert_eq!(x.mcs, y.mcs);
        assert_eq!(x.decoded_ok, y.decoded_ok);
    }
    assert_eq!(a.gnb.len(), b.gnb.len());
    assert_eq!(a.app_local.len(), b.app_local.len());
    for (x, y) in a.app_local.iter().zip(&b.app_local) {
        assert_eq!(x.target_bitrate_bps, y.target_bitrate_bps);
        assert_eq!(x.outstanding_bytes, y.outstanding_bytes);
    }

    let domino = Domino::with_defaults();
    let sa = ChainStats::compute(domino.graph(), &domino.analyze(&a));
    let sb = ChainStats::compute(domino.graph(), &domino.analyze(&b));
    assert_eq!(sa.total_chain_windows, sb.total_chain_windows);
    assert_eq!(sa.cause_onsets, sb.cause_onsets);
}

#[test]
fn different_seeds_diverge() {
    let a = run_cell_session(domino::scenarios::amarisoft(), &cfg(1), |_| {});
    let b = run_cell_session(domino::scenarios::amarisoft(), &cfg(2), |_| {});
    let same = a
        .packets
        .iter()
        .zip(&b.packets)
        .take(2000)
        .filter(|(x, y)| x.received == y.received)
        .count();
    assert!(
        same < 1900,
        "different seeds should produce different delivery timings ({same}/2000 identical)"
    );
}

#[test]
fn scripted_overrides_do_not_break_determinism() {
    use domino::simcore::SimTime;
    use domino::telemetry::Direction;
    let script = |cell: &mut domino::ran::CellSim| {
        cell.script_sinr(
            Direction::Uplink,
            SimTime::from_secs(5),
            SimTime::from_secs(7),
            0.0,
        );
    };
    let a = run_cell_session(domino::scenarios::amarisoft(), &cfg(9), script);
    let b = run_cell_session(domino::scenarios::amarisoft(), &cfg(9), script);
    assert_eq!(a.packets.len(), b.packets.len());
    let last_a = a.packets.last().expect("packets exist");
    let last_b = b.packets.last().expect("packets exist");
    assert_eq!(last_a.received, last_b.received);
}
