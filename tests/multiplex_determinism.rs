//! The multiplexed-execution determinism contract (ISSUE 5).
//!
//! `ExecutionMode::Multiplexed { width }` advances N interleaved sessions
//! through one shared calendar queue, one shared `SessionArena`, and (live
//! mode) one session-keyed `PipelinePool` per worker. The contract: every
//! per-session output — verdicts, `ChainStats`, `LiveStats`, metadata — is
//! **byte-identical** to running each session alone, at any multiplex width
//! and any interleaving of session start offsets. Enforced the same way the
//! PR 3/4 contracts are: through the versioned plain-text
//! `ShardReport::encode` (floats as hex bit patterns), so equality is
//! byte-for-byte, not approximate.
//!
//! Interleavings are varied two ways: (a) the width itself changes which
//! sessions are co-scheduled, and (b) mixed session durations make slots
//! free at different global ticks, so refilled sessions start at staggered
//! offsets (a width-4 run over mixed durations schedules a completely
//! different offset pattern than a width-8 run). Thread count is crossed in
//! as a third axis for the live-mode case.

use domino::core::Domino;
use domino::scenarios::{all_cells, ScriptAction, SessionConfig, SessionGrid, SessionSpec};
use domino::simcore::{SimDuration, SimTime};
use domino::sweep::{
    run_shard, AnalysisMode, EarlyExit, ExecutionMode, LiveConfig, ShardPlan, SweepOptions,
};
use domino::telemetry::{Direction, Lateness};

/// A grid with deliberately mixed durations: sessions end at different
/// global ticks, so multiplexed slot refills start at staggered offsets.
fn mixed_duration_grid() -> Vec<SessionSpec> {
    SessionGrid::new()
        .cells(all_cells())
        .durations([
            SimDuration::from_secs(8),
            SimDuration::from_secs(13),
            SimDuration::from_secs(11),
        ])
        .master_seed(505)
        .build()
}

/// Encodes a whole-grid run as the versioned shard report text.
fn encode_run(specs: &[SessionSpec], opts: &SweepOptions) -> String {
    let domino = Domino::with_defaults();
    let plan = ShardPlan::new(specs.len(), 1);
    run_shard(specs, &plan.shard(0), &domino, opts).encode()
}

#[test]
fn multiplexed_widths_are_byte_identical_to_per_worker() {
    let specs = mixed_duration_grid();
    let reference = encode_run(
        &specs,
        &SweepOptions {
            threads: 1,
            execution: ExecutionMode::PerWorker,
            ..Default::default()
        },
    );
    // Width 1 multiplexed must also equal the per-worker driver (same
    // sessions, degenerate interleaving), then three real widths whose
    // co-scheduling (and therefore refill offsets over the mixed-duration
    // grid) all differ.
    for width in [1usize, 2, 4, 8] {
        let mux = encode_run(
            &specs,
            &SweepOptions {
                threads: 1,
                execution: ExecutionMode::Multiplexed { width },
                ..Default::default()
            },
        );
        assert_eq!(
            reference, mux,
            "width-{width} multiplexed report diverged from per-worker"
        );
    }
}

#[test]
fn multiplexed_live_mode_is_byte_identical_across_widths_and_threads() {
    // Live mode: each interleaved session is fed by a pipeline leased from
    // the worker's pool; reorder buffers, staging bundles, and analyzers
    // are recycled across call starts/ends. A lateness bound beyond any
    // in-network delay keeps the live = batch precondition intact, so any
    // divergence here is the pool's or the scheduler's fault.
    let specs = mixed_duration_grid();
    let live_opts = |execution, threads| SweepOptions {
        threads,
        execution,
        analysis: AnalysisMode::Live,
        live: LiveConfig {
            lateness: Lateness::Static(SimDuration::from_secs(30)),
            early_exit: EarlyExit::Never,
        },
        ..Default::default()
    };
    let reference = encode_run(&specs, &live_opts(ExecutionMode::PerWorker, 1));
    for width in [2usize, 5, 8] {
        for threads in [1usize, 2] {
            let mux = encode_run(
                &specs,
                &live_opts(ExecutionMode::Multiplexed { width }, threads),
            );
            assert_eq!(
                reference, mux,
                "live width-{width}/threads-{threads} report diverged"
            );
        }
    }
}

#[test]
fn mixed_tick_specs_run_solo_without_perturbing_the_lattice() {
    // Specs whose engine tick differs from the group lattice cannot be
    // interleaved; the driver runs them to completion through the arena's
    // PRIVATE queue. Claim order matters here: the first session is short,
    // so its slot frees mid-flight and the mismatched-tick spec is claimed
    // while other sessions still hold future route events in the shared
    // queue — a solo run that drained the shared queue on its own clock
    // would destroy those events and corrupt the in-flight sessions.
    let cells = all_cells();
    let mk = |i: usize, secs: u64, tick_ms: u64| {
        SessionSpec::cell(
            cells[i % cells.len()].clone(),
            SessionConfig {
                duration: SimDuration::from_secs(secs),
                seed: 11_000 + i as u64,
                tick: SimDuration::from_millis(tick_ms),
                ..Default::default()
            },
        )
        .labelled(format!("mixed-{i}"))
    };
    // A degenerate spec whose duration is shorter than its tick: zero
    // engine ticks may run, so the driver must finalise it without ever
    // beginning one (the solo driver's `while !is_done()` guard).
    let micro = SessionSpec::cell(
        cells[0].clone(),
        SessionConfig {
            duration: SimDuration::from_micros(500),
            seed: 11_900,
            ..Default::default()
        },
    )
    .labelled("mixed-micro");
    let specs = vec![
        mk(0, 6, 1), // short: frees its slot first
        mk(1, 14, 1),
        mk(2, 12, 2), // mismatched tick, claimed mid-flight at width 2
        micro,
        mk(3, 10, 1),
        mk(4, 9, 2), // another mismatch
        mk(5, 12, 1),
    ];
    let reference = encode_run(
        &specs,
        &SweepOptions {
            threads: 1,
            ..Default::default()
        },
    );
    for width in [2usize, 4] {
        let mux = encode_run(
            &specs,
            &SweepOptions {
                threads: 1,
                execution: ExecutionMode::Multiplexed { width },
                ..Default::default()
            },
        );
        assert_eq!(reference, mux, "mixed-tick width-{width} report diverged");
    }

    // Atypical tick claimed FIRST: it must not pin the lattice for the
    // whole sweep (the driver re-fixes the group tick when the active set
    // drains), and the output stays byte-identical either way.
    let mut atypical_first = specs;
    atypical_first.swap(0, 2); // the 2 ms-tick spec leads the claim order
    let reference = encode_run(
        &atypical_first,
        &SweepOptions {
            threads: 1,
            ..Default::default()
        },
    );
    let mux = encode_run(
        &atypical_first,
        &SweepOptions {
            threads: 1,
            execution: ExecutionMode::Multiplexed { width: 3 },
            ..Default::default()
        },
    );
    assert_eq!(reference, mux, "atypical-first-tick report diverged");
}

#[test]
fn early_exit_refills_keep_staggered_sessions_identical() {
    // Early-exit triage is the operator configuration: sessions abort as
    // soon as their verdict is in, so multiplexed slots refill at highly
    // irregular offsets (abort ticks differ per session). Each session's
    // truncated output must still match its solo run exactly.
    let mut specs = Vec::new();
    for (i, cell) in all_cells().into_iter().cycle().take(10).enumerate() {
        let mut spec = SessionSpec::cell(
            cell,
            SessionConfig {
                duration: SimDuration::from_secs(20),
                seed: 9_000 + i as u64,
                ..Default::default()
            },
        );
        if i % 3 == 0 {
            spec = spec.with_script(ScriptAction::CrossTraffic {
                dir: Direction::Downlink,
                from: SimTime::from_secs(5),
                to: SimTime::from_secs(9),
                prb_fraction: 0.95,
            });
        }
        specs.push(spec.labelled(format!("triage-{i}")));
    }
    let triage = |execution| SweepOptions {
        threads: 1,
        execution,
        analysis: AnalysisMode::Live,
        live: LiveConfig {
            lateness: Lateness::Static(SimDuration::from_secs(1)),
            early_exit: EarlyExit::StableFor(3),
        },
        ..Default::default()
    };
    let reference = encode_run(&specs, &triage(ExecutionMode::PerWorker));
    for width in [3usize, 7] {
        let mux = encode_run(&specs, &triage(ExecutionMode::Multiplexed { width }));
        assert_eq!(
            reference, mux,
            "early-exit width-{width} report diverged from per-worker"
        );
    }
}
