//! The parallel sweep engine must be schedule-independent: the same grid
//! yields byte-identical aggregates whether it runs on one thread or many,
//! and repeated runs reproduce each other exactly.

use domino::core::Domino;
use domino::scenarios::{SessionGrid, SessionSpec};
use domino::simcore::{derive_seed, SimDuration};
use domino::sweep::{run_sweep, AnalysisMode, SweepOptions};

fn grid() -> Vec<SessionSpec> {
    SessionGrid::new()
        .cells(domino::scenarios::all_cells())
        .durations([SimDuration::from_secs(15)])
        .sessions_per_point(2)
        .master_seed(77)
        .build()
}

#[test]
fn parallel_sweep_matches_sequential_order() {
    let specs = grid();
    let domino = Domino::with_defaults();
    let sequential = run_sweep(
        &specs,
        &domino,
        &SweepOptions {
            threads: 1,
            keep_analyses: true,
            ..Default::default()
        },
    );
    let parallel = run_sweep(
        &specs,
        &domino,
        &SweepOptions {
            threads: 8,
            keep_analyses: true,
            ..Default::default()
        },
    );

    assert_eq!(sequential.outcomes.len(), parallel.outcomes.len());
    for (s, p) in sequential.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(s.index, p.index, "outcomes must come back in spec order");
        assert_eq!(s.label, p.label);
        assert_eq!(s.meta.seed, p.meta.seed);
        let (sa, pa) = (s.analysis.as_ref().unwrap(), p.analysis.as_ref().unwrap());
        assert_eq!(sa.windows.len(), pa.windows.len());
        for (x, y) in sa.windows.iter().zip(&pa.windows) {
            assert_eq!(x.features, y.features);
            assert_eq!(x.chains, y.chains);
        }
    }

    // Aggregates fold in spec order, so they are identical, not just close.
    assert_eq!(
        sequential.aggregate.total_chain_windows,
        parallel.aggregate.total_chain_windows
    );
    assert_eq!(
        sequential.aggregate.cause_onsets,
        parallel.aggregate.cause_onsets
    );
    assert_eq!(
        sequential.aggregate.consequence_onsets,
        parallel.aggregate.consequence_onsets
    );
    assert_eq!(
        sequential.aggregate.chain_windows,
        parallel.aggregate.chain_windows
    );
    assert_eq!(
        sequential.aggregate.unknown_windows,
        parallel.aggregate.unknown_windows
    );
    assert!((sequential.aggregate.minutes - parallel.aggregate.minutes).abs() < 1e-12);
}

#[test]
fn streaming_mode_equals_batch_mode_across_a_sweep() {
    let specs = grid();
    let domino = Domino::with_defaults();
    let streaming = run_sweep(
        &specs,
        &domino,
        &SweepOptions {
            analysis: AnalysisMode::Streaming,
            ..Default::default()
        },
    );
    let batch = run_sweep(
        &specs,
        &domino,
        &SweepOptions {
            analysis: AnalysisMode::Batch,
            ..Default::default()
        },
    );
    assert_eq!(
        streaming.aggregate.total_chain_windows,
        batch.aggregate.total_chain_windows
    );
    assert_eq!(
        streaming.aggregate.chain_windows,
        batch.aggregate.chain_windows
    );
    assert_eq!(
        streaming.aggregate.unknown_windows,
        batch.aggregate.unknown_windows
    );
}

#[test]
fn derived_seeds_make_grid_extension_stable() {
    // Growing the grid must not change the sessions already in it: seeds key
    // off (master, index), not off the grid shape.
    let small = SessionGrid::new()
        .cells(domino::scenarios::all_cells())
        .durations([SimDuration::from_secs(15)])
        .sessions_per_point(1)
        .master_seed(5)
        .build();
    let large = SessionGrid::new()
        .cells(domino::scenarios::all_cells())
        .durations([SimDuration::from_secs(15), SimDuration::from_secs(30)])
        .sessions_per_point(1)
        .master_seed(5)
        .build();
    // The first session of each cell block keeps its derivation function.
    assert_eq!(small[0].cfg.seed, derive_seed(5, 0));
    assert_eq!(large[0].cfg.seed, derive_seed(5, 0));
}
