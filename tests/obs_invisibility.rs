//! The observability contract (ISSUE 7): recording is **invisible** to
//! every deterministic output, and the deterministic section of the
//! metrics themselves is **partition-invariant**.
//!
//! Three properties, each enforced byte-for-byte:
//!
//! 1. *Output invisibility* — `ShardReport::encode` with the recorder at
//!    full sampling equals the recorder-off encoding, at every thread
//!    count, execution mode, multiplex width, and analysis mode. The
//!    recorder may observe the simulation; it may never steer it.
//! 2. *Partition invariance* — the `Sim` section of the merged
//!    [`MetricsSnapshot`] (`encode_sim`) is byte-identical whether the
//!    grid ran as one shard or three, on one thread or four, per-worker
//!    or multiplexed at any width. Runtime metrics (wall spans, pool and
//!    allocator stats) are excluded from that section by construction.
//! 3. *Format round-trip* — encode → parse → re-encode is the identity on
//!    randomly driven recorders, and corrupted snapshots are rejected at
//!    parse time rather than silently mis-merged.

use domino::core::Domino;
use domino::obs::{Counter, FGauge, Gauge, HistId, MetricsSnapshot, ObsConfig, Recorder, SpanId};
use domino::scenarios::{all_cells, SessionGrid, SessionSpec};
use domino::simcore::SimDuration;
use domino::sweep::{
    merge_shards, run_shard_with_metrics, AnalysisMode, EarlyExit, ExecutionMode, Lateness,
    LiveConfig, ShardPlan, SweepOptions,
};
use proptest::strategy::Strategy;

/// The shared grid: Table 1 cells × two durations, small enough that the
/// full threads × widths × modes matrix stays fast in CI.
fn grid() -> Vec<SessionSpec> {
    SessionGrid::new()
        .cells(all_cells())
        .durations([SimDuration::from_secs(8), SimDuration::from_secs(13)])
        .master_seed(1_207)
        .build()
}

/// The ABR streaming grid: `segment × ladder × buffer` over an
/// `AppSpec::Abr` base spec (same shape as `tests/abr_determinism.rs`),
/// with a mid-session cross-traffic squeeze so the playback metric
/// families actually fire.
fn abr_grid() -> Vec<SessionSpec> {
    use domino::abr::{default_ladder, AbrConfig};
    use domino::scenarios::{
        expand_product, AxisPatch, ScenarioAxis, ScriptAction, SeedPolicy, SessionConfig,
    };
    use domino::simcore::SimTime;
    use domino::telemetry::Direction;
    let base = SessionSpec::cell(
        domino::scenarios::amarisoft(),
        SessionConfig {
            duration: SimDuration::from_secs(12),
            seed: 7,
            ..Default::default()
        },
    )
    .abr(AbrConfig::default())
    .with_script(ScriptAction::CrossTraffic {
        dir: Direction::Downlink,
        from: SimTime::from_secs(3),
        to: SimTime::from_secs(9),
        prb_fraction: 0.97,
    });
    let axes = [
        ScenarioAxis::values("segment", [1u64, 2], |&s| {
            vec![AxisPatch::AbrSegmentDuration(SimDuration::from_secs(s))]
        }),
        ScenarioAxis::new("ladder")
            .point("full", vec![AxisPatch::AbrLadder(default_ladder())])
            .point(
                "low3",
                vec![AxisPatch::AbrLadder(default_ladder()[..3].to_vec())],
            ),
        ScenarioAxis::values("buffer", [4u64, 8], |&s| {
            vec![AxisPatch::AbrBufferTarget(SimDuration::from_secs(s))]
        }),
    ];
    expand_product(&base, &axes, SeedPolicy::Derived(1907))
}

fn opts(execution: ExecutionMode, threads: usize, obs: ObsConfig) -> SweepOptions {
    SweepOptions {
        threads,
        execution,
        obs,
        ..Default::default()
    }
}

/// Runs the whole grid as `shards` shards and returns the concatenated
/// shard-report encodings plus the merged metrics snapshot.
fn run_sharded(
    specs: &[SessionSpec],
    shards: usize,
    opts: &SweepOptions,
) -> (String, Option<MetricsSnapshot>) {
    let domino = Domino::with_defaults();
    let plan = ShardPlan::new(specs.len(), shards);
    let mut reports = Vec::new();
    let mut metrics: Option<MetricsSnapshot> = None;
    for s in 0..shards {
        let (report, m) = run_shard_with_metrics(specs, &plan.shard(s), &domino, opts);
        reports.push(report);
        if let Some(m) = m {
            metrics = Some(match metrics.take() {
                Some(mut acc) => {
                    acc.merge(&m);
                    acc
                }
                None => m,
            });
        }
    }
    let encoded = if shards == 1 {
        reports[0].encode()
    } else {
        merge_shards(&reports).expect("same grid").encode()
    };
    (encoded, metrics)
}

#[test]
fn recording_never_changes_report_bytes() {
    let specs = grid();
    for execution in [
        ExecutionMode::PerWorker,
        ExecutionMode::Multiplexed { width: 3 },
        ExecutionMode::Multiplexed { width: 8 },
    ] {
        for threads in [1usize, 4] {
            let (off, none) =
                run_sharded(&specs, 1, &opts(execution, threads, ObsConfig::default()));
            let (on, metrics) =
                run_sharded(&specs, 1, &opts(execution, threads, ObsConfig::full()));
            assert!(none.is_none(), "recorder off must yield no snapshot");
            assert!(metrics.is_some(), "recorder on must yield a snapshot");
            assert_eq!(
                off, on,
                "recorder at full sampling changed report bytes \
                 ({execution:?}, {threads} threads)"
            );
        }
    }
}

#[test]
fn recording_never_changes_live_report_bytes() {
    // Live mode is the recorder's hottest integration: verdict latency
    // histograms, pool counters, and early-exit accounting all ride the
    // same pipeline the report is built from.
    let specs = grid();
    let live = |obs| SweepOptions {
        threads: 2,
        execution: ExecutionMode::Multiplexed { width: 4 },
        analysis: AnalysisMode::Live,
        live: LiveConfig {
            lateness: Lateness::Static(SimDuration::from_secs(1)),
            early_exit: EarlyExit::StableFor(3),
        },
        obs,
        ..Default::default()
    };
    let (off, _) = run_sharded(&specs, 1, &live(ObsConfig::default()));
    let (on, metrics) = run_sharded(&specs, 1, &live(ObsConfig::full()));
    assert_eq!(off, on, "live-mode recorder changed report bytes");
    let m = metrics.expect("snapshot present");
    assert!(
        m.counter(Counter::LiveVerdicts) > 0,
        "live metrics recorded"
    );
}

#[test]
fn recording_never_changes_abr_report_bytes() {
    // The streaming workload inherits the invisibility contract: the
    // playback metric families (stall counters, buffer/stall histograms,
    // ladder-switch counter) may observe the session but never steer it.
    let specs = abr_grid();
    for execution in [
        ExecutionMode::PerWorker,
        ExecutionMode::Multiplexed { width: 8 },
    ] {
        let (off, none) = run_sharded(&specs, 1, &opts(execution, 2, ObsConfig::default()));
        let (on, metrics) = run_sharded(&specs, 1, &opts(execution, 2, ObsConfig::full()));
        assert!(none.is_none());
        let m = metrics.expect("recorder on must yield a snapshot");
        assert_eq!(off, on, "recorder changed ABR report bytes ({execution:?})");
        // The playback families actually recorded.
        assert!(
            m.counter(Counter::PlaybackStalls) > 0,
            "squeezed ABR grid must stall at least once"
        );
        assert!(m.counter(Counter::PlaybackLadderSwitches) > 0);
    }
}

#[test]
fn abr_sim_metrics_are_partition_invariant() {
    let specs = abr_grid();
    let reference = run_sharded(
        &specs,
        1,
        &opts(ExecutionMode::PerWorker, 1, ObsConfig::full()),
    )
    .1
    .expect("snapshot")
    .encode_sim();
    for (shards, execution, threads) in [
        (1, ExecutionMode::Multiplexed { width: 8 }, 4),
        (3, ExecutionMode::PerWorker, 2),
    ] {
        let snap = run_sharded(&specs, shards, &opts(execution, threads, ObsConfig::full()))
            .1
            .expect("snapshot");
        assert_eq!(
            reference,
            snap.encode_sim(),
            "ABR sim metrics diverged at {shards} shard(s), {execution:?}, {threads} thread(s)"
        );
    }
    // The deterministic section carries the playback families.
    assert!(reference.contains("playback/"), "{reference}");
}

#[test]
fn sim_metrics_are_partition_invariant() {
    let specs = grid();
    let reference = run_sharded(
        &specs,
        1,
        &opts(ExecutionMode::PerWorker, 1, ObsConfig::full()),
    )
    .1
    .expect("snapshot")
    .encode_sim();
    // Thread counts, multiplex widths, and shard counts all repartition
    // the same simulated work; the Sim section may not notice.
    for (shards, execution, threads) in [
        (1, ExecutionMode::PerWorker, 4),
        (1, ExecutionMode::Multiplexed { width: 3 }, 1),
        (1, ExecutionMode::Multiplexed { width: 8 }, 4),
        (3, ExecutionMode::PerWorker, 1),
        (3, ExecutionMode::Multiplexed { width: 3 }, 2),
    ] {
        let snap = run_sharded(&specs, shards, &opts(execution, threads, ObsConfig::full()))
            .1
            .expect("snapshot");
        assert_eq!(
            reference,
            snap.encode_sim(),
            "sim metrics diverged at {shards} shard(s), {execution:?}, {threads} thread(s)"
        );
    }
}

#[test]
fn wall_sampling_rate_does_not_touch_sim_metrics() {
    // `ObsConfig::on()` samples the wall clock every 64th span entry,
    // `full()` on every entry — a Runtime-only difference.
    let specs = grid();
    let full = run_sharded(
        &specs,
        1,
        &opts(
            ExecutionMode::Multiplexed { width: 4 },
            2,
            ObsConfig::full(),
        ),
    )
    .1
    .expect("snapshot");
    let sampled = run_sharded(
        &specs,
        1,
        &opts(ExecutionMode::Multiplexed { width: 4 }, 2, ObsConfig::on()),
    )
    .1
    .expect("snapshot");
    assert_eq!(full.encode_sim(), sampled.encode_sim());
}

/// Drives a recorder with a random op sequence and returns its snapshot.
fn random_snapshot(rng: &mut rand::rngs::StdRng, ops: usize) -> MetricsSnapshot {
    let mut rec = Recorder::new(ObsConfig::full());
    for _ in 0..ops {
        match (0u8..5).generate(rng) {
            0 => {
                let c = Counter::ALL[(0..Counter::ALL.len()).generate(rng)];
                rec.add(c, (0u64..1_000_000).generate(rng));
            }
            1 => {
                let g = Gauge::ALL[(0..Gauge::ALL.len()).generate(rng)];
                rec.gauge_max(g, (0u64..1_000_000).generate(rng));
            }
            2 => {
                let g = FGauge::ALL[(0..FGauge::ALL.len()).generate(rng)];
                rec.fgauge_max(g, (0.0f64..1e9).generate(rng));
            }
            3 => {
                let h = HistId::ALL[(0..HistId::ALL.len()).generate(rng)];
                rec.observe(h, (0u64..(1 << 40)).generate(rng));
            }
            _ => {
                let s = SpanId::ALL[(0..SpanId::ALL.len()).generate(rng)];
                let token = rec.span_enter(s);
                rec.span_exit(s, token);
            }
        }
    }
    rec.take_snapshot().expect("recorder is on")
}

#[test]
fn snapshot_round_trips_byte_identically() {
    let mut rng = proptest::test_rng("snapshot_round_trips_byte_identically");
    for case in 0..proptest::CASES {
        let ops = (1usize..400).generate(&mut rng);
        let snap = random_snapshot(&mut rng, ops);
        for encoded in [snap.encode(), snap.encode_sim()] {
            let parsed = MetricsSnapshot::parse(&encoded)
                .unwrap_or_else(|e| panic!("case {case}: parse failed: {e}"));
            assert_eq!(
                encoded,
                if parsed.has_runtime {
                    parsed.encode()
                } else {
                    parsed.encode_sim()
                },
                "case {case}: re-encode diverged"
            );
        }
        // Merge round-trip: parse(a).merge(parse(a)) == doubling, still
        // canonical.
        let mut doubled = MetricsSnapshot::parse(&snap.encode()).unwrap();
        doubled.merge(&snap);
        let re = MetricsSnapshot::parse(&doubled.encode()).unwrap();
        assert_eq!(
            doubled.encode(),
            re.encode(),
            "case {case}: merge broke canon"
        );
    }
}

#[test]
fn corrupted_snapshots_are_rejected() {
    let mut rng = proptest::test_rng("corrupted_snapshots_are_rejected");
    let snap = random_snapshot(&mut rng, 200);
    let good = snap.encode();
    assert!(MetricsSnapshot::parse(&good).is_ok());

    // Flip one digit in a counter value: the checksum trailer must catch it.
    let tampered = good.replacen("engine/early_exits\t", "engine/early_exits\t9", 1);
    assert!(
        MetricsSnapshot::parse(&tampered).is_err(),
        "tampered counter value parsed"
    );
    // Truncation (drop the trailer) is rejected.
    let no_trailer: String = good
        .lines()
        .take(good.lines().count() - 1)
        .map(|l| format!("{l}\n"))
        .collect();
    assert!(
        MetricsSnapshot::parse(&no_trailer).is_err(),
        "truncated snapshot parsed"
    );
    // Wrong version header is rejected.
    let wrong_version = good.replacen("domino-metrics\tv1", "domino-metrics\tv2", 1);
    assert!(
        MetricsSnapshot::parse(&wrong_version).is_err(),
        "wrong-version snapshot parsed"
    );
    // Trailing garbage after a valid trailer is rejected.
    let trailing = format!("{good}junk\n");
    assert!(
        MetricsSnapshot::parse(&trailing).is_err(),
        "trailing garbage accepted"
    );
    // An empty snapshot still parses (all-zero sections are canonical).
    let empty = Recorder::new(ObsConfig::on()).take_snapshot().unwrap();
    assert!(MetricsSnapshot::parse(&empty.encode()).is_ok());
}
