//! Shape assertions for the paper's key quantitative findings, one per
//! reproduced mechanism. These encode the "who wins, by what factor" facts
//! EXPERIMENTS.md reports.

use domino::scenarios::{BaselineAccess, SessionConfig, SessionRun};
use domino::simcore::{SimDuration, SimTime};
use domino::telemetry::{Cdf, Direction, StreamKind, TraceBundle};

fn cfg(seed: u64, secs: u64) -> SessionConfig {
    SessionConfig {
        duration: SimDuration::from_secs(secs),
        seed,
        ..Default::default()
    }
}

fn t(s: f64) -> SimTime {
    SimTime::from_micros((s * 1e6) as u64)
}

fn media_delays(bundle: &TraceBundle, dir: Direction) -> Cdf {
    Cdf::from_samples(
        bundle
            .packets
            .iter()
            .filter(|p| p.direction == dir && p.stream != StreamKind::Rtcp)
            .filter_map(|p| p.one_way_delay())
            .map(|d| d.as_millis_f64())
            .collect(),
    )
}

/// Fig. 2: 5G inflates one-way delay well beyond the wired baseline.
#[test]
fn fig2_shape_cellular_dominates_wired() {
    let cell = SessionRun::cell(domino::scenarios::tmobile_fdd_15mhz(), &cfg(70, 30)).run();
    let wired = SessionRun::baseline(BaselineAccess::Wired, &cfg(70, 30)).run();
    for dir in [Direction::Uplink, Direction::Downlink] {
        let c = media_delays(&cell, dir).median().unwrap();
        let w = media_delays(&wired, dir).median().unwrap();
        assert!(c > 2.0 * w, "{dir:?}: cellular {c} ms vs wired {w} ms");
    }
    // And the tail is far heavier.
    let c99 = media_delays(&cell, Direction::Uplink)
        .quantile(0.99)
        .unwrap();
    let w99 = media_delays(&wired, Direction::Uplink)
        .quantile(0.99)
        .unwrap();
    assert!(c99 > 5.0 * w99, "p99 {c99} vs {w99}");
}

/// Fig. 8a–d: UL delay exceeds DL across cells (UL scheduling overhead).
#[test]
fn fig8_shape_ul_delay_exceeds_dl() {
    for (cell, seed) in [
        (domino::scenarios::tmobile_tdd_100mhz(), 71u64),
        (domino::scenarios::amarisoft(), 72),
    ] {
        let name = cell.name.clone();
        let b = SessionRun::cell(cell, &cfg(seed, 30)).run();
        let ul = media_delays(&b, Direction::Uplink).median().unwrap();
        let dl = media_delays(&b, Direction::Downlink).median().unwrap();
        assert!(ul > dl, "{name}: UL median {ul} must exceed DL {dl}");
    }
}

/// Fig. 8g: the Amarisoft cell's poor UL channel caps the UL bitrate well
/// below the DL bitrate.
#[test]
fn fig8_shape_amarisoft_ul_bitrate_gap() {
    let b = SessionRun::cell(domino::scenarios::amarisoft(), &cfg(73, 45)).run();
    let ul_target: f64 = b
        .app_local
        .iter()
        .map(|s| s.target_bitrate_bps)
        .sum::<f64>()
        / b.app_local.len() as f64;
    let dl_target: f64 = b
        .app_remote
        .iter()
        .map(|s| s.target_bitrate_bps)
        .sum::<f64>()
        / b.app_remote.len() as f64;
    assert!(
        ul_target < 0.8 * dl_target,
        "UL {ul_target} should sit well below DL {dl_target}"
    );
}

/// Fig. 17: one HARQ retransmission inflates delay by ≈ one HARQ RTT.
#[test]
fn fig17_shape_harq_adds_one_rtt() {
    let clean = SessionRun::cell(domino::scenarios::amarisoft_ideal(), &cfg(74, 16)).run();
    let harq = SessionRun::cell(domino::scenarios::amarisoft_ideal(), &cfg(74, 16))
        .script(|cell| {
            cell.script_harq_failures(Direction::Uplink, t(10.0), t(12.0), 1);
        })
        .run();
    let window = |b: &TraceBundle| {
        let d: Vec<f64> = b
            .packets_window(t(10.0), t(12.0))
            .iter()
            .filter(|p| p.direction == Direction::Uplink && p.stream != StreamKind::Rtcp)
            .filter_map(|p| p.one_way_delay())
            .map(|d| d.as_millis_f64())
            .collect();
        d.iter().sum::<f64>() / d.len() as f64
    };
    let inflation = window(&harq) - window(&clean);
    assert!(
        (6.0..=20.0).contains(&inflation),
        "HARQ inflation should be ≈10 ms, got {inflation}"
    );
}

/// Fig. 18: HARQ exhaustion falls back to RLC ARQ, ≈105 ms delay, with an
/// in-order release burst.
#[test]
fn fig18_shape_rlc_retx_delay_and_hol() {
    let b = SessionRun::cell(domino::scenarios::amarisoft_ideal(), &cfg(75, 16))
        .script(|cell| {
            cell.script_harq_failures(Direction::Uplink, t(10.0), t(10.035), 4);
        })
        .run();
    let max_delay = b
        .packets_window(t(9.9), t(10.4))
        .iter()
        .filter(|p| p.direction == Direction::Uplink && p.stream != StreamKind::Rtcp)
        .filter_map(|p| p.one_way_delay())
        .map(|d| d.as_millis_f64())
        .fold(0.0f64, f64::max);
    assert!(
        (80.0..=140.0).contains(&max_delay),
        "RLC recovery should take ≈105 ms, got {max_delay}"
    );
    // The gNB log must carry the RLC retransmission event (private cell).
    let rlc_logged = b
        .gnb
        .iter()
        .any(|g| matches!(g.event, domino::telemetry::GnbEvent::RlcRetx { .. }));
    assert!(rlc_logged, "RLC ReTX must appear in the gNB log");
}

/// Fig. 19: an RRC release halts transmission ≈300 ms and changes the RNTI.
#[test]
fn fig19_shape_rrc_outage() {
    let b = SessionRun::cell(domino::scenarios::tmobile_fdd_15mhz_quiet(), &cfg(76, 16))
        .script(|cell| cell.script_rrc_release(t(10.0)))
        .run();
    let mut rntis: Vec<u32> = b
        .dci
        .iter()
        .filter(|d| d.is_target_ue)
        .map(|d| d.rnti)
        .collect();
    rntis.dedup();
    assert_eq!(rntis.len(), 2, "exactly one RNTI change, got {rntis:?}");
    // Gap in target-UE scheduling around the release.
    let mut last_before = SimTime::ZERO;
    let mut first_after = None;
    for d in b.dci.iter().filter(|d| d.is_target_ue) {
        if d.ts < t(10.0) {
            last_before = last_before.max(d.ts);
        } else if first_after.is_none() {
            first_after = Some(d.ts);
        }
    }
    let gap = first_after
        .expect("transmissions resume")
        .saturating_since(last_before)
        .as_millis_f64();
    assert!((250.0..=400.0).contains(&gap), "outage {gap} ms");
    // Packets that waited out the outage show heavily inflated delay.
    let max_delay = b
        .packets_window(t(9.8), t(10.5))
        .iter()
        .filter(|p| p.direction == Direction::Uplink)
        .filter_map(|p| p.one_way_delay())
        .map(|d| d.as_millis_f64())
        .fold(0.0f64, f64::max);
    assert!(max_delay > 200.0, "delay spike expected, got {max_delay}");
}

/// Fig. 16: proactive grants waste capacity (unused grants exist).
#[test]
fn fig16_shape_proactive_waste() {
    let b = SessionRun::cell(domino::scenarios::mosolabs(), &cfg(77, 15)).run();
    let wasted = b
        .dci
        .iter()
        .filter(|d| d.is_target_ue && d.proactive && d.used_bits == 0)
        .count();
    assert!(wasted > 5, "unused proactive grants expected, got {wasted}");
}

/// Fig. 22: a reverse-path (RTCP) delay episode triggers pushback while the
/// target bitrate holds.
#[test]
fn fig22_shape_pushback_without_target_drop() {
    let mut session = cfg(78, 20);
    session.wired_sender.start_bps = 2_000_000.0;
    let b = SessionRun::cell(domino::scenarios::tmobile_fdd_15mhz_quiet(), &session)
        .script(|cell| {
            cell.script_cross_traffic(Direction::Downlink, t(10.0), t(12.5), 0.99);
        })
        .run();
    // During the episode the local sender's pushback must dip below target.
    let episode = b.app_local_window(t(10.2), t(12.5));
    let pushback_hit = episode
        .iter()
        .any(|s| s.pushback_rate_bps < 0.95 * s.target_bitrate_bps);
    assert!(
        pushback_hit,
        "pushback must dip below target during RTCP starvation"
    );
    // While the UL media path stayed calm.
    let ul_median = media_delays(&b, Direction::Uplink).median().unwrap();
    assert!(
        ul_median < 60.0,
        "UL media path should stay calm, median {ul_median}"
    );
}
