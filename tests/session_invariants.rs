//! Whole-session invariants that must hold for any cell, seed, and script:
//! causality (no packet received before it was sent), RLC in-order release,
//! telemetry sortedness, and stats-stream integrity.

use domino::scenarios::{SessionConfig, SessionRun};
use domino::simcore::SimDuration;
use domino::telemetry::{Direction, StreamKind, TraceBundle};

fn sessions() -> Vec<TraceBundle> {
    let mut out = Vec::new();
    for (i, cell) in domino::scenarios::all_cells().into_iter().enumerate() {
        let cfg = SessionConfig {
            duration: SimDuration::from_secs(15),
            seed: 900 + i as u64,
            ..Default::default()
        };
        out.push(SessionRun::cell(cell, &cfg).run());
    }
    out
}

#[test]
fn causality_no_packet_arrives_before_send() {
    for b in sessions() {
        for p in &b.packets {
            if let Some(r) = p.received {
                assert!(
                    r >= p.sent,
                    "{}: packet seq {} received {:?} before sent {:?}",
                    b.meta.cell_name,
                    p.seq,
                    r,
                    p.sent
                );
            }
        }
    }
}

#[test]
fn media_packets_arrive_in_order_per_direction() {
    // RLC AM in-order delivery + FIFO paths ⇒ per-direction media arrival
    // order matches send order.
    for b in sessions() {
        for dir in [Direction::Uplink, Direction::Downlink] {
            let mut last_arrival = None;
            for p in b
                .packets
                .iter()
                .filter(|p| p.direction == dir && p.stream != StreamKind::Rtcp)
            {
                if let Some(r) = p.received {
                    if let Some(last) = last_arrival {
                        assert!(
                            r >= last,
                            "{}: {dir:?} reordering at seq {}",
                            b.meta.cell_name,
                            p.seq
                        );
                    }
                    last_arrival = Some(r);
                }
            }
        }
    }
}

#[test]
fn bundles_are_sorted_and_counted() {
    for b in sessions() {
        assert!(b.is_sorted(), "{}", b.meta.cell_name);
        // Stats cadence: 50 ms for 15 s → ~300 samples per client.
        assert!(b.app_local.len() >= 295, "{}", b.app_local.len());
        assert_eq!(b.app_local.len(), b.app_remote.len());
        // Cumulative counters never decrease.
        for side in [&b.app_local, &b.app_remote] {
            for w in side.windows(2) {
                assert!(w[1].concealed_samples >= w[0].concealed_samples);
                assert!(w[1].total_audio_samples >= w[0].total_audio_samples);
                assert!(w[1].total_freeze_ms >= w[0].total_freeze_ms);
            }
        }
    }
}

#[test]
fn dci_is_consistent() {
    for b in sessions() {
        for d in &b.dci {
            assert!(d.mcs <= 28, "{}", b.meta.cell_name);
            assert!(d.n_prbs >= 1);
            assert!(d.n_prbs as usize <= 273);
            assert!(d.used_bits <= d.tbs_bits.max(d.used_bits));
            if !d.is_target_ue {
                assert_eq!(d.harq_retx_idx, 0, "cross traffic is aggregate, no retx");
            }
        }
    }
}

#[test]
fn delivery_rate_is_high_on_reliable_rlc() {
    // RLC AM recovers every MAC-layer loss; only the (tiny) path loss and
    // packets still in flight at session end can be missing.
    for b in sessions() {
        let total = b.packets.len() as f64;
        let delivered = b.packets.iter().filter(|p| p.received.is_some()).count() as f64;
        assert!(
            delivered / total > 0.97,
            "{}: only {:.1}% delivered",
            b.meta.cell_name,
            100.0 * delivered / total
        );
    }
}
