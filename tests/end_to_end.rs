//! End-to-end integration: simulate sessions with scripted 5G impairments
//! and assert Domino attributes the resulting QoE degradations to the right
//! root cause — the paper's headline capability.

use domino::core::{ChainStats, Domino};
use domino::scenarios::{BaselineAccess, SessionConfig, SessionRun};
use domino::simcore::{SimDuration, SimTime};
use domino::telemetry::Direction;

fn cfg(seed: u64, secs: u64) -> SessionConfig {
    SessionConfig {
        duration: SimDuration::from_secs(secs),
        seed,
        ..Default::default()
    }
}

fn t(s: f64) -> SimTime {
    SimTime::from_micros((s * 1e6) as u64)
}

/// Which causes Domino names for a session, as (cause, count) pairs.
fn attributed_causes(domino: &Domino, bundle: &domino::telemetry::TraceBundle) -> Vec<String> {
    let analysis = domino.analyze(bundle);
    let mut causes = Vec::new();
    for w in &analysis.windows {
        for c in &w.chains {
            causes.push(domino.graph().name(c.cause).to_string());
        }
    }
    causes
}

#[test]
fn wired_baseline_produces_no_degradation_chains() {
    let domino = Domino::with_defaults();
    let bundle = SessionRun::baseline(BaselineAccess::Wired, &cfg(60, 20)).run();
    let causes = attributed_causes(&domino, &bundle);
    assert!(
        causes.is_empty(),
        "wired call should be clean, got {causes:?}"
    );
}

#[test]
fn scripted_deep_fade_attributed_to_poor_channel() {
    let domino = Domino::with_defaults();
    let mut session = cfg(61, 20);
    session.ue_sender.start_bps = 2_000_000.0;
    let bundle = SessionRun::cell(domino::scenarios::amarisoft(), &session)
        .script(|cell| {
            cell.script_sinr(Direction::Uplink, t(10.0), t(13.0), -2.0);
        })
        .run();
    let causes = attributed_causes(&domino, &bundle);
    assert!(
        causes.iter().any(|c| c == "poor_channel"),
        "deep fade must be attributed to poor_channel, got {causes:?}"
    );
}

#[test]
fn scripted_cross_traffic_attributed() {
    let domino = Domino::with_defaults();
    let mut session = cfg(62, 20);
    session.wired_sender.start_bps = 3_000_000.0;
    let bundle = SessionRun::cell(domino::scenarios::tmobile_fdd_15mhz_quiet(), &session)
        .script(|cell| {
            cell.script_cross_traffic(Direction::Downlink, t(10.0), t(13.0), 0.97);
        })
        .run();
    let causes = attributed_causes(&domino, &bundle);
    assert!(
        causes.iter().any(|c| c == "cross_traffic"),
        "cross-traffic burst must be attributed, got {causes:?}"
    );
}

#[test]
fn scripted_rrc_release_attributed() {
    let domino = Domino::with_defaults();
    let bundle = SessionRun::cell(domino::scenarios::tmobile_fdd_15mhz_quiet(), &cfg(63, 20))
        .script(|cell| {
            cell.script_rrc_release(t(10.0));
        })
        .run();
    let causes = attributed_causes(&domino, &bundle);
    assert!(
        causes.iter().any(|c| c == "rrc_state_change"),
        "RRC release must be attributed, got {causes:?}"
    );
}

#[test]
fn forced_harq_storm_attributed() {
    let domino = Domino::with_defaults();
    let bundle = SessionRun::cell(domino::scenarios::amarisoft_ideal(), &cfg(64, 20))
        .script(|cell| {
            // Enough failures to cross the >10-retx window threshold and
            // inflate delay via serialization.
            cell.script_harq_failures(Direction::Uplink, t(9.0), t(13.0), 1);
        })
        .run();
    let analysis = domino.analyze(&bundle);
    // The HARQ feature itself must fire even if delay stays tame.
    let harq = domino.graph().id("harq_retx").expect("node exists");
    let active = analysis
        .windows
        .iter()
        .any(|w| domino.graph().is_active(harq, &w.features));
    assert!(
        active,
        "forced HARQ failures must activate the harq_retx cause"
    );
}

#[test]
fn consequence_frequencies_are_plausible() {
    // The paper reports ≈5 degradation events/session-minute over
    // commercial 5G; our simulator should land within an order of
    // magnitude, and far above the wired baseline (≈0).
    let domino = Domino::with_defaults();
    let bundle = SessionRun::cell(domino::scenarios::tmobile_fdd_15mhz(), &cfg(65, 60)).run();
    let analysis = domino.analyze(&bundle);
    let stats = ChainStats::compute(domino.graph(), &analysis);
    let total: f64 = [
        "jitter_buffer_drain",
        "target_bitrate_down",
        "pushback_rate_down",
    ]
    .iter()
    .map(|c| stats.consequence_frequency_per_min(c))
    .sum();
    assert!(
        (0.5..=50.0).contains(&total),
        "expected a plausible degradation rate, got {total}/min"
    );
}
