//! The shard-and-merge contract: splitting a grid into contiguous
//! spec-index ranges, running each range independently (any per-shard
//! thread count), serialising the shard reports to plain text, and merging
//! the parsed files must reproduce the single-machine sweep report **byte
//! for byte** — at any shard count.

use domino::core::Domino;
use domino::scenarios::{AxisPatch, ScenarioAxis, SessionGrid, SessionSpec};
use domino::simcore::SimDuration;
use domino::sweep::{
    merge_shards, run_shard, run_sweep, AnalysisMode, EarlyExit, Lateness, LiveConfig, ShardPlan,
    ShardReport, SweepOptions,
};

/// Two cells × a proactive-grant axis × 10 s: four specs, small enough to
/// run the grid many times, with non-empty per-spec statistics.
fn grid() -> Vec<SessionSpec> {
    SessionGrid::new()
        .cells([
            domino::scenarios::tmobile_fdd_15mhz(),
            domino::scenarios::amarisoft(),
        ])
        .durations([SimDuration::from_secs(10)])
        .axis(ScenarioAxis::toggle(
            "grants",
            "on",
            "off",
            vec![],
            vec![AxisPatch::ProactiveGrant(None)],
        ))
        .master_seed(42)
        .build()
}

/// Runs the plan's shards with `threads` each, round-trips every report
/// through its text encoding (as a real multi-machine deployment would),
/// and merges.
fn run_sharded(specs: &[SessionSpec], shards: usize, threads: usize) -> ShardReport {
    let domino = Domino::with_defaults();
    let opts = SweepOptions {
        threads,
        ..Default::default()
    };
    let plan = ShardPlan::new(specs.len(), shards);
    let reports: Vec<ShardReport> = plan
        .shards()
        .iter()
        .map(|s| {
            let r = run_shard(specs, s, &domino, &opts);
            let text = r.encode();
            let parsed = ShardReport::parse(&text).expect("shard report parses");
            assert_eq!(parsed.encode(), text, "canonical round trip");
            parsed
        })
        .collect();
    merge_shards(&reports).expect("shards tile the grid")
}

#[test]
fn merged_shards_byte_identical_to_single_machine() {
    let specs = grid();
    let domino = Domino::with_defaults();
    // Single-machine reference: a plain `run_sweep` over the whole grid.
    let single = ShardReport::from_sweep(&run_sweep(
        &specs,
        &domino,
        &SweepOptions {
            threads: 2,
            ..Default::default()
        },
    ))
    .encode();
    assert!(single.contains("chainstats"), "reference carries stats");

    // ≥3 shard counts × ≥2 per-shard thread counts, all byte-identical.
    for shards in [1usize, 2, 3, 5] {
        for threads in [1usize, 3] {
            let merged = run_sharded(&specs, shards, threads).encode();
            assert_eq!(
                merged, single,
                "merge of {shards} shard(s) at {threads} thread(s) diverged"
            );
        }
    }
}

#[test]
fn more_shards_than_specs_merge_cleanly() {
    let specs = grid();
    let domino = Domino::with_defaults();
    let single =
        ShardReport::from_sweep(&run_sweep(&specs, &domino, &SweepOptions::default())).encode();
    // Empty tail shards must round-trip and merge without perturbing bytes.
    let merged = run_sharded(&specs, specs.len() + 3, 1).encode();
    assert_eq!(merged, single);
}

#[test]
fn live_mode_shards_carry_and_merge_live_stats() {
    let specs = grid();
    let domino = Domino::with_defaults();
    let opts = SweepOptions {
        analysis: AnalysisMode::Live,
        live: LiveConfig {
            lateness: Lateness::Static(SimDuration::from_secs(30)),
            early_exit: EarlyExit::Never,
        },
        ..Default::default()
    };
    let single = ShardReport::from_sweep(&run_sweep(&specs, &domino, &opts));
    assert_eq!(single.live_totals.sessions, specs.len());
    assert!(single.live_totals.windows_emitted > 0);
    assert_eq!(single.live_totals.late_records_dropped, 0);

    let plan = ShardPlan::new(specs.len(), 3);
    let reports: Vec<ShardReport> = plan
        .shards()
        .iter()
        .map(|s| {
            let r = run_shard(specs.as_slice(), s, &domino, &opts);
            ShardReport::parse(&r.encode()).expect("parses")
        })
        .collect();
    let merged = merge_shards(&reports).expect("merges");
    assert_eq!(merged.live_totals, single.live_totals);
    assert_eq!(merged.encode(), single.encode());
}
