//! The ABR streaming workload carries the same determinism contract as the
//! RTC one: golden stall/oscillation verdicts on a scripted degradation,
//! byte-identical sweep reports across thread counts, shard counts, and
//! multiplex widths over a `segment × ladder × buffer` axis grid, and
//! streaming ≡ batch analysis over the ABR causal graph.

use std::collections::BTreeSet;

use domino::abr::{default_ladder, AbrConfig};
use domino::core::{abr_graph, Domino, DominoConfig};
use domino::scenarios::{
    expand_product, AxisPatch, ScenarioAxis, ScriptAction, SeedPolicy, SessionConfig, SessionSpec,
};
use domino::simcore::{SimDuration, SimTime};
use domino::sweep::{
    merge_shards, run_shard, run_sweep, AnalysisMode, ExecutionMode, ShardPlan, ShardReport,
    SweepOptions,
};
use domino::telemetry::Direction;

/// A streaming session squeezed hard enough mid-call that the buffer
/// drains into a stall and the controller hunts the ladder.
fn degraded_spec(seed: u64) -> SessionSpec {
    let mut cell = domino::scenarios::tmobile_fdd_15mhz_quiet();
    cell.traffic_ues = domino::ran::traffic_mix(12);
    SessionSpec::cell(
        cell,
        SessionConfig {
            duration: SimDuration::from_secs(60),
            seed,
            ..Default::default()
        },
    )
    .abr(AbrConfig::default())
    .with_script(ScriptAction::CrossTraffic {
        dir: Direction::Downlink,
        from: SimTime::from_secs(18),
        to: SimTime::from_secs(30),
        prb_fraction: 0.95,
    })
    .with_script(ScriptAction::Sinr {
        dir: Direction::Downlink,
        from: SimTime::from_secs(42),
        to: SimTime::from_secs(48),
        sinr_db: -2.0,
    })
}

/// The `segment duration × ladder × buffer target` grid the CI byte-diff
/// jobs run (same shape as `examples/sharded_sweep.rs --grid abr`).
fn abr_grid() -> Vec<SessionSpec> {
    let base = SessionSpec::cell(
        domino::scenarios::amarisoft(),
        SessionConfig {
            duration: SimDuration::from_secs(12),
            seed: 7,
            ..Default::default()
        },
    )
    .abr(AbrConfig::default())
    .with_script(ScriptAction::CrossTraffic {
        dir: Direction::Downlink,
        from: SimTime::from_secs(3),
        to: SimTime::from_secs(9),
        prb_fraction: 0.97,
    });
    let axes = [
        ScenarioAxis::values("segment", [1u64, 2], |&s| {
            vec![AxisPatch::AbrSegmentDuration(SimDuration::from_secs(s))]
        }),
        ScenarioAxis::new("ladder")
            .point("full", vec![AxisPatch::AbrLadder(default_ladder())])
            .point(
                "low3",
                vec![AxisPatch::AbrLadder(default_ladder()[..3].to_vec())],
            ),
        ScenarioAxis::values("buffer", [4u64, 8], |&s| {
            vec![AxisPatch::AbrBufferTarget(SimDuration::from_secs(s))]
        }),
    ];
    expand_product(&base, &axes, SeedPolicy::Derived(1907))
}

fn abr_domino() -> Domino {
    Domino::new(abr_graph(), DominoConfig::default())
}

/// The golden verdicts: the scripted degradation must be attributed through
/// *both* playback consequences — buffer drain into a stall, and capacity
/// oscillation into ladder hunting — with the scripted cross-traffic among
/// the confirmed roots.
#[test]
fn degraded_stream_yields_stall_and_oscillation_verdicts() {
    let spec = degraded_spec(1907);
    let bundle = spec.run();

    // The playback trace itself records the damage.
    let last = bundle.playback.last().expect("playback stats recorded");
    assert!(last.stall_count >= 1, "the squeeze must stall playback");
    assert!(last.total_stall_ms > 0.0);
    assert!(last.segments_fetched > 20);

    let domino = abr_domino();
    let analysis = domino.analyze(&bundle);
    let mut verdicts: BTreeSet<(String, String)> = BTreeSet::new();
    for w in &analysis.windows {
        for chain in &w.chains {
            let root = domino.graph().name(chain.path[0]).to_string();
            let leaf = domino
                .graph()
                .name(*chain.path.last().expect("non-empty path"))
                .to_string();
            verdicts.insert((root, leaf));
        }
    }
    assert!(
        verdicts
            .iter()
            .any(|(r, l)| r == "cross_traffic" && l == "playback_stall"),
        "cross-traffic -> stall chain missing; got {verdicts:?}"
    );
    assert!(
        verdicts.iter().any(|(_, l)| l == "ladder_oscillation"),
        "ladder-oscillation chain missing; got {verdicts:?}"
    );
}

/// Same spec, same bytes: the whole verdict set (and the trace beneath it)
/// reproduces run over run.
#[test]
fn degraded_stream_verdicts_reproduce_exactly() {
    let a = degraded_spec(1907).run();
    let b = degraded_spec(1907).run();
    assert_eq!(a.playback.len(), b.playback.len());
    for (x, y) in a.playback.iter().zip(&b.playback) {
        assert_eq!(x.ts, y.ts);
        assert_eq!(x.stall_count, y.stall_count);
        assert_eq!(x.rung, y.rung);
        assert_eq!(x.buffer_ms.to_bits(), y.buffer_ms.to_bits());
    }
    let domino = abr_domino();
    let (wa, wb) = (domino.analyze(&a).windows, domino.analyze(&b).windows);
    assert_eq!(wa.len(), wb.len());
    for (x, y) in wa.iter().zip(&wb) {
        assert_eq!(x.features, y.features);
        assert_eq!(x.chains, y.chains);
    }
}

#[test]
fn abr_grid_is_thread_count_invariant() {
    let specs = abr_grid();
    let domino = abr_domino();
    let one = run_sweep(&specs, &domino, &SweepOptions::default().threads(1));
    let four = run_sweep(&specs, &domino, &SweepOptions::default().threads(4));
    assert_eq!(
        ShardReport::from_sweep(&one).encode(),
        ShardReport::from_sweep(&four).encode(),
        "ABR sweep report diverged across thread counts"
    );
}

#[test]
fn abr_grid_shards_merge_byte_identically() {
    let specs = abr_grid();
    let domino = abr_domino();
    let single = ShardReport::from_sweep(&run_sweep(
        &specs,
        &domino,
        &SweepOptions::default().threads(2),
    ));
    let plan = ShardPlan::new(specs.len(), 3);
    let reports: Vec<ShardReport> = plan
        .shards()
        .iter()
        .map(|s| {
            let r = run_shard(&specs, s, &domino, &SweepOptions::default().threads(1));
            ShardReport::parse(&r.encode()).expect("shard report parses")
        })
        .collect();
    let merged = merge_shards(&reports).expect("shards tile the grid");
    assert_eq!(
        single.encode(),
        merged.encode(),
        "3-shard merge diverged from the single-machine ABR sweep"
    );
}

#[test]
fn abr_grid_is_multiplex_width_invariant() {
    let specs = abr_grid();
    let domino = abr_domino();
    let encode = |opts: &SweepOptions| {
        let plan = ShardPlan::new(specs.len(), 1);
        run_shard(&specs, &plan.shard(0), &domino, opts).encode()
    };
    let reference = encode(&SweepOptions::default().threads(1));
    for width in [2usize, 8] {
        let mux = encode(
            &SweepOptions::default()
                .threads(1)
                .mode(ExecutionMode::Multiplexed { width }),
        );
        assert_eq!(
            reference, mux,
            "width-{width} multiplexed ABR report diverged from per-worker"
        );
    }
}

#[test]
fn abr_streaming_analysis_equals_batch() {
    let specs = abr_grid();
    let domino = abr_domino();
    let batch = run_sweep(
        &specs,
        &domino,
        &SweepOptions::default()
            .threads(1)
            .analysis(AnalysisMode::Batch),
    );
    let streaming = run_sweep(
        &specs,
        &domino,
        &SweepOptions::default()
            .threads(1)
            .analysis(AnalysisMode::Streaming),
    );
    assert_eq!(
        ShardReport::from_sweep(&batch).encode(),
        ShardReport::from_sweep(&streaming).encode(),
        "streaming ABR analysis diverged from batch"
    );
}
