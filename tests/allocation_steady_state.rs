//! Allocation budget of the simulate-then-analyze hot path (PR 4).
//!
//! Installs `simcore::alloc_count::CountingAlloc` as this binary's global
//! allocator and meters whole sessions run through a warm
//! [`WorkerScratch`]. The budgets are deliberately loose (×2-ish headroom)
//! so they survive compiler/std drift, while still being far below the
//! pre-arena baseline (~6 allocations per engine tick; the scrubbed path
//! runs at a fraction of one per tick — BTreeMap node churn in the jitter
//! buffers and RLC reorder state is what remains).
//!
//! Counters are process-global, so every test here serializes on one mutex
//! and tolerates nothing else running — keep this binary free of
//! unrelated tests.

use std::sync::Mutex;

use domino::core::Domino;
use domino::obs::{Counter, FGauge};
use domino::scenarios::{SessionConfig, SessionSpec};
use domino::simcore::alloc_count::{self, CountingAlloc};
use domino::simcore::SimDuration;
use domino::sweep::{ObsConfig, SweepOptions, WorkerScratch};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

static SERIAL: Mutex<()> = Mutex::new(());

fn spec(seed: u64, secs: u64) -> SessionSpec {
    SessionSpec::cell(
        domino::scenarios::amarisoft(),
        SessionConfig {
            duration: SimDuration::from_secs(secs),
            seed,
            ..Default::default()
        },
    )
}

fn many_ue_spec(seed: u64, secs: u64, ues: usize) -> SessionSpec {
    let mut cell = domino::scenarios::amarisoft();
    cell.traffic_ues = domino::ran::traffic_mix(ues);
    SessionSpec::cell(
        cell,
        SessionConfig {
            duration: SimDuration::from_secs(secs),
            seed,
            ..Default::default()
        },
    )
}

#[test]
fn warm_worker_sessions_stay_within_allocation_budget() {
    let _guard = SERIAL.lock().unwrap();
    let secs = 15u64;
    let ticks = secs * 1000; // 1 ms engine tick
    let domino = Domino::with_defaults();
    let opts = SweepOptions::default();
    let mut scratch = WorkerScratch::new(&domino, &opts);

    // Session 1 warms the arena (bundle growth, queue buckets, map).
    let (_, cold) =
        alloc_count::measure(|| scratch.run_session(&spec(31, secs), 0, &domino, &opts));

    // Sessions 2+: simulation + streaming analysis in warmed buffers.
    let mut per_session = Vec::new();
    for i in 1..4usize {
        let (outcome, warm) =
            alloc_count::measure(|| scratch.run_session(&spec(31, secs), i, &domino, &opts));
        assert!(outcome.stats.is_some());
        per_session.push(warm.allocations);
    }
    let worst = *per_session.iter().max().unwrap();
    eprintln!(
        "cold session: {} allocs; warm sessions: {per_session:?} ({ticks} ticks)",
        cold.allocations
    );

    // The budget: averaged over the session, well under one heap allocation
    // per engine tick (the seed path performed ~6/tick). This is the
    // regression tripwire for a stray per-tick `collect()`/`Vec::new`.
    assert!(
        worst < ticks,
        "warm session allocates {worst}× for {ticks} ticks — hot path regressed"
    );
    // And warming must not cost more than the cold session (sanity).
    assert!(worst <= cold.allocations);
}

#[test]
fn session_simulation_alone_is_allocation_light() {
    let _guard = SERIAL.lock().unwrap();
    let secs = 12u64;
    let domino = Domino::with_defaults();
    let opts = SweepOptions {
        analysis: domino::sweep::AnalysisMode::None,
        ..Default::default()
    };
    let mut scratch = WorkerScratch::new(&domino, &opts);
    scratch.run_session(&spec(32, secs), 0, &domino, &opts); // warm
    let (outcome, stats) =
        alloc_count::measure(|| scratch.run_session(&spec(32, secs), 1, &domino, &opts));
    assert!(outcome.stats.is_none());
    eprintln!(
        "sim-only warm session: {} allocs / {} ticks",
        stats.allocations,
        secs * 1000
    );
    // Simulation without analysis: the same sub-one-per-tick budget.
    assert!(stats.allocations < secs * 1000);
}

/// The enabled recorder must not reopen the allocation faucet either: its
/// hot path (counter adds, histogram observes, span enter/exit, per-slot
/// RAN accumulation) is arithmetic on preallocated arrays. The only
/// per-session allocation observability may add is the boxed `RanCellObs`
/// handed to the cell at session start.
#[test]
fn enabled_recorder_stays_within_allocation_budget() {
    let _guard = SERIAL.lock().unwrap();
    let secs = 12u64;
    let ticks = secs * 1000;
    let domino = Domino::with_defaults();

    // Baseline: warm session with the recorder off.
    let plain_opts = SweepOptions::default();
    let mut plain = WorkerScratch::new(&domino, &plain_opts);
    plain.run_session(&spec(33, secs), 0, &domino, &plain_opts);
    let (_, base) =
        alloc_count::measure(|| plain.run_session(&spec(33, secs), 1, &domino, &plain_opts));

    // Same session with the recorder at full sampling.
    let obs_opts = SweepOptions {
        obs: ObsConfig::full(),
        ..Default::default()
    };
    let mut scratch = WorkerScratch::new(&domino, &obs_opts);
    scratch.run_session(&spec(33, secs), 0, &domino, &obs_opts);
    let (_, on) =
        alloc_count::measure(|| scratch.run_session(&spec(33, secs), 1, &domino, &obs_opts));

    eprintln!(
        "warm session allocs: {} recorder-off, {} recorder-on ({ticks} ticks)",
        base.allocations, on.allocations
    );
    assert!(
        on.allocations < ticks,
        "obs-on session broke the tick budget"
    );
    assert!(
        on.allocations <= base.allocations + 32,
        "recorder added {} allocations over the {} baseline",
        on.allocations - base.allocations,
        base.allocations
    );

    // And it actually recorded: this binary has `CountingAlloc` installed,
    // so the snapshot carries live per-session allocation accounting.
    let snap = scratch
        .recorder_mut()
        .take_snapshot()
        .expect("recorder was on");
    assert_eq!(snap.counter(Counter::EngineSessions), 2);
    assert_eq!(snap.counter(Counter::EngineTicks), 2 * ticks);
    assert!(snap.counter(Counter::ProcAllocs) > 0);
    let (allocs_per_tick, updates) = snap.fgauge(FGauge::AllocsPerTickPeak);
    assert!(updates == 2 && allocs_per_tick.is_finite() && allocs_per_tick >= 0.0);
}

/// Many-UE cells must not reopen the allocation faucet: once the arena's
/// leased [`domino::ran::CellUeTable`] columns are grown, steady-state
/// allocations per *slot* stay below 0.5 regardless of how many scripted
/// UEs share the cell. (The SoA slot loop touches only flat arrays; the
/// budget is per slot — 2 000 slots/s on this TDD cell — because that is
/// the unit the per-UE sweep multiplies.)
#[test]
fn many_ue_cell_stays_allocation_flat() {
    let _guard = SERIAL.lock().unwrap();
    let secs = 10u64;
    let slots = secs * 2000; // 0.5 ms TDD slots
    let domino = Domino::with_defaults();
    let opts = SweepOptions {
        analysis: domino::sweep::AnalysisMode::None,
        ..Default::default()
    };
    let mut scratch = WorkerScratch::new(&domino, &opts);
    for (i, &ues) in [1usize, 8, 32, 64].iter().enumerate() {
        // First run at this population warms the table columns…
        scratch.run_session(&many_ue_spec(40, secs, ues), 2 * i, &domino, &opts);
        // …then the warm run must be allocation-flat.
        let (_, stats) = alloc_count::measure(|| {
            scratch.run_session(&many_ue_spec(40, secs, ues), 2 * i + 1, &domino, &opts)
        });
        let per_slot = stats.allocations as f64 / slots as f64;
        eprintln!(
            "{ues} traffic UEs: {} allocs / {slots} slots = {per_slot:.4}/slot",
            stats.allocations
        );
        assert!(
            per_slot < 0.5,
            "{ues}-UE warm session allocates {per_slot:.3}/slot — SoA loop regressed"
        );
    }
}

/// The ABR playback endpoint must lease from the [`SessionArena`] like the
/// RTC one: after a cold session grows the client/server buffers and the
/// engine scratch, warm streaming sessions run under the same
/// sub-one-per-tick budget as calls. This is the tripwire for the streaming
/// workload quietly re-opening the allocation faucet the arena closed.
#[test]
fn abr_sessions_stay_within_allocation_budget() {
    let _guard = SERIAL.lock().unwrap();
    let secs = 12u64;
    let ticks = secs * 1000;
    let abr_spec = |seed: u64| {
        SessionSpec::cell(
            domino::scenarios::amarisoft(),
            SessionConfig {
                duration: SimDuration::from_secs(secs),
                seed,
                ..Default::default()
            },
        )
        .abr(domino::abr::AbrConfig::default())
    };
    let domino = Domino::with_defaults();
    let opts = SweepOptions::default();
    let mut scratch = WorkerScratch::new(&domino, &opts);

    // Cold run: arena growth, playback buffer, chunk queue capacity.
    let (_, cold) = alloc_count::measure(|| scratch.run_session(&abr_spec(51), 0, &domino, &opts));

    let mut per_session = Vec::new();
    for i in 1..4usize {
        let (outcome, warm) =
            alloc_count::measure(|| scratch.run_session(&abr_spec(51), i, &domino, &opts));
        assert!(outcome.stats.is_some());
        per_session.push(warm.allocations);
    }
    let worst = *per_session.iter().max().unwrap();
    eprintln!(
        "cold ABR session: {} allocs; warm sessions: {per_session:?} ({ticks} ticks)",
        cold.allocations
    );
    assert!(
        worst < ticks,
        "warm ABR session allocates {worst}× for {ticks} ticks — playback endpoint is not leasing"
    );
    assert!(worst <= cold.allocations);
}
