//! Streaming ↔ batch equivalence over real simulated sessions: the
//! incremental analyzer must reproduce the batch sliding-window pipeline
//! bit-for-bit across a full sweep of a `SessionRun` bundle.

use domino::core::stream::StreamingAnalyzer;
use domino::core::{Analysis, Domino, DominoConfig};
use domino::scenarios::{ScriptAction, SessionConfig, SessionRun, SessionSpec};
use domino::simcore::{SimDuration, SimTime};
use domino::telemetry::{Direction, TraceBundle};

use proptest::strategy::Strategy;

fn cfg(seed: u64, secs: u64) -> SessionConfig {
    SessionConfig {
        duration: SimDuration::from_secs(secs),
        seed,
        ..Default::default()
    }
}

fn assert_identical(batch: &Analysis, streaming: &Analysis) {
    assert_eq!(
        batch.windows.len(),
        streaming.windows.len(),
        "window counts differ"
    );
    assert_eq!(batch.duration, streaming.duration);
    for (b, s) in batch.windows.iter().zip(&streaming.windows) {
        assert_eq!(b.start, s.start);
        assert_eq!(
            b.features,
            s.features,
            "features diverge at {:?}: batch {:?} vs streaming {:?}",
            b.start,
            b.features.active_names(),
            s.features.active_names()
        );
        assert_eq!(b.chains, s.chains, "chains diverge at {:?}", b.start);
        assert_eq!(b.unknown_consequences, s.unknown_consequences);
    }
}

fn assert_equivalent_on(bundle: &TraceBundle, domino: &Domino) {
    let batch = domino.analyze(bundle);
    let mut streaming = StreamingAnalyzer::new(domino.graph().clone(), domino.config().clone())
        .expect("default config is streaming-aligned");
    let incremental = streaming.analyze(bundle);
    assert_identical(&batch, &incremental);
}

#[test]
fn healthy_cell_session_is_bit_identical() {
    let domino = Domino::with_defaults();
    let bundle = SessionRun::cell(domino::scenarios::amarisoft(), &cfg(901, 30)).run();
    assert_equivalent_on(&bundle, &domino);
}

#[test]
fn impaired_sessions_are_bit_identical() {
    // Scripted impairments light up the RAN feature families (cross traffic,
    // HARQ, RRC), so the equivalence claim covers active detections, not just
    // all-false vectors.
    let domino = Domino::with_defaults();
    let t = |s: f64| SimTime::from_micros((s * 1e6) as u64);
    let specs = [
        SessionSpec::cell(domino::scenarios::tmobile_fdd_15mhz_quiet(), cfg(902, 25)).with_script(
            ScriptAction::CrossTraffic {
                dir: Direction::Downlink,
                from: t(8.0),
                to: t(12.0),
                prb_fraction: 0.97,
            },
        ),
        SessionSpec::cell(domino::scenarios::amarisoft_ideal(), cfg(903, 25)).with_script(
            ScriptAction::HarqFailures {
                dir: Direction::Uplink,
                from: t(10.0),
                to: t(12.0),
                fail_attempts: 1,
            },
        ),
        SessionSpec::cell(domino::scenarios::tmobile_fdd_15mhz_quiet(), cfg(904, 25))
            .with_script(ScriptAction::RrcRelease { at: t(10.0) }),
    ];
    let mut any_chain = false;
    for spec in &specs {
        let bundle = spec.run();
        let analysis = domino.analyze(&bundle);
        any_chain |= analysis.windows.iter().any(|w| !w.chains.is_empty());
        assert_equivalent_on(&bundle, &domino);
    }
    assert!(
        any_chain,
        "impaired sessions must produce at least one chain"
    );
}

#[test]
fn one_second_step_window_grid_is_bit_identical() {
    // The perf-comparison configuration from the microbench: 1 s step.
    let config = DominoConfig {
        step: SimDuration::from_secs(1),
        ..Default::default()
    };
    let domino = Domino::new(domino::core::default_graph(), config);
    let bundle = SessionRun::cell(domino::scenarios::mosolabs(), &cfg(905, 30)).run();
    assert_equivalent_on(&bundle, &domino);
}

#[test]
fn busy_window_delay_trends_are_bit_identical() {
    // Fuzz aimed at the amortized delay-trend state (PR 4): dense,
    // irregular packet streams where the number of delay records expiring
    // per step is never a multiple of `trend_subwindow`, so every chunk
    // boundary shifts on every slide. Delays drift up and down across the
    // session to flip the uptrend verdict many times per run.
    use domino::telemetry::{PacketRecord, SessionMeta, StreamKind};
    let mut rng = proptest::test_rng("busy_window_delay_trends_are_bit_identical");
    for case in 0..4u32 {
        let mut bundle = TraceBundle::new(SessionMeta::baseline(
            "busy",
            SimDuration::from_secs(30),
            case as u64,
        ));
        let mut ts_us: u64 = 0;
        let mut seq = 0u64;
        while ts_us < 30_000_000 {
            // Bursty interarrivals: 37 µs to ~20 ms, prime-ish so window
            // populations vary mod trend_subwindow.
            ts_us += (37u64..20_011).generate(&mut rng);
            let phase = (ts_us as f64 / 3.7e6).sin();
            let base = 18.0 + 30.0 * phase.max(0.0);
            let delay_ms = base + (0.0f64..14.0).generate(&mut rng);
            let lost = (0u8..50).generate(&mut rng) == 0;
            let dir = if seq.is_multiple_of(2) {
                Direction::Uplink
            } else {
                Direction::Downlink
            };
            let stream = if seq.is_multiple_of(11) {
                StreamKind::Rtcp
            } else {
                StreamKind::Video
            };
            bundle.packets.push(PacketRecord {
                sent: SimTime::from_micros(ts_us),
                received: (!lost).then(|| SimTime::from_micros(ts_us + (delay_ms * 1000.0) as u64)),
                direction: dir,
                stream,
                seq,
                size_bytes: 200 + (0u32..1200).generate(&mut rng),
            });
            seq += 1;
        }
        bundle.sort();
        let defaults = Domino::with_defaults();
        let batch = defaults.analyze(&bundle);
        let trends: usize = batch
            .windows
            .iter()
            .map(|w| w.features.count_active())
            .sum();
        assert!(
            trends > 0,
            "case {case}: busy fuzz produced no active features — too tame"
        );
        assert_equivalent_on(&bundle, &defaults);
        // Same trace under the 1 s step grid (different expiry cadence).
        let one_sec = Domino::new(
            domino::core::default_graph(),
            DominoConfig {
                step: SimDuration::from_secs(1),
                ..Default::default()
            },
        );
        assert_equivalent_on(&bundle, &one_sec);
    }
}

#[test]
fn push_api_in_irregular_batches_matches_batch() {
    // Drive the push API with awkward 73 ms ingestion batches instead of the
    // per-window schedule `analyze` uses: emission must only depend on what
    // has been pushed, not on the batching.
    let domino = Domino::with_defaults();
    let bundle = SessionRun::cell(domino::scenarios::amarisoft(), &cfg(906, 20)).run();
    let batch = domino.analyze(&bundle);

    let mut streaming =
        StreamingAnalyzer::new(domino.graph().clone(), domino.config().clone()).unwrap();
    let step = domino.config().step;
    let window = domino.config().window;
    let horizon = bundle.horizon();
    let mut cursor = bundle.cursor();
    let mut ingested_to = SimTime::ZERO;
    let mut windows = Vec::new();
    let mut start = SimTime::ZERO + domino.config().warmup;
    while start + window <= horizon {
        let end = start + window;
        while ingested_to < end {
            ingested_to = (ingested_to + SimDuration::from_millis(73)).min(end);
            let slices = bundle.advance_until(&mut cursor, ingested_to);
            streaming.push_slices(&slices);
        }
        windows.push(streaming.emit(start));
        start += step;
    }
    let incremental = Analysis {
        windows,
        duration: bundle.meta.duration,
    };
    assert_identical(&batch, &incremental);
}
