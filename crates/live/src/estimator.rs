//! The online per-stream delay estimator behind
//! [`telemetry::Lateness::Adaptive`].
//!
//! Every record entering the live pipeline carries an observable delay:
//! how far behind the session clock its timestamp was when it arrived
//! (for packets: how long after the send the delivery resolved its fate).
//! This module accumulates those delays into fixed-bin histograms — the
//! same order-free [`HistData`]/[`HistLayout`] machinery the obs crate
//! merges across shards — and answers the two questions the adaptive
//! watermark needs:
//!
//! * [`DelayEstimator::bound_ms`]: the smallest histogram bucket upper
//!   bound covering at least the target quantile of observed delays — a
//!   *conservative* (rounded-up) quantile, integer-only, so the chosen
//!   bound is identical at any partitioning of the same session.
//! * [`DelayEstimator::drop_risk`]: the fraction of observed delays a
//!   given bound would have dropped — what an
//!   [`crate::EarlyExit::Slo`] policy compares against its risk budget.
//!
//! All state is integer accumulation keyed only by the record sequence
//! the session emits, so the estimator — and therefore the adaptive
//! bound and everything downstream of it — is deterministic across
//! threads, shards, and multiplex widths.

use domino_obs::{HistData, HistLayout};
use simcore::SimDuration;
use telemetry::TapStream;

/// Delay histogram layout: must match `domino_obs::HistId::LiveDelayMs`
/// so sweep workers can absorb the per-session histograms directly.
pub const DELAY_LAYOUT: HistLayout = HistLayout::Log2(17);

/// Samples required before an adaptive bound trusts the distribution;
/// below this the bound stays at the policy ceiling (conservative start).
pub const ADAPTIVE_MIN_SAMPLES: u64 = 64;

/// Online per-stream record-delay distribution for one session.
#[derive(Debug, Clone)]
pub struct DelayEstimator {
    per_stream: [HistData; TapStream::COUNT],
    combined: HistData,
}

impl Default for DelayEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl DelayEstimator {
    /// An empty estimator.
    pub fn new() -> Self {
        DelayEstimator {
            per_stream: [HistData::EMPTY; TapStream::COUNT],
            combined: HistData::EMPTY,
        }
    }

    /// Records one observed delay on `stream`.
    #[inline]
    pub fn record(&mut self, stream: TapStream, delay: SimDuration) {
        let ms = delay.as_millis();
        self.per_stream[stream.idx()].record(DELAY_LAYOUT, ms);
        self.combined.record(DELAY_LAYOUT, ms);
    }

    /// Total delay samples observed.
    pub fn samples(&self) -> u64 {
        self.combined.count
    }

    /// One stream's delay distribution.
    pub fn stream_hist(&self, stream: TapStream) -> &HistData {
        &self.per_stream[stream.idx()]
    }

    /// The merged distribution across all streams.
    pub fn combined(&self) -> &HistData {
        &self.combined
    }

    /// Smallest bucket upper bound (ms) covering at least quantile `q` of
    /// the observed delays — integer-only and conservative (the realised
    /// coverage is ≥ `q`). `u64::MAX` when no samples were observed or
    /// the mass sits in the saturating last bucket.
    pub fn bound_ms(&self, q: f64) -> u64 {
        let d = &self.combined;
        if d.count == 0 {
            return u64::MAX;
        }
        // Integer target: ceil(q * count) without going through floats on
        // the comparison side (q itself is config, identical everywhere).
        let target = ((q.clamp(0.0, 1.0) * d.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in d.counts.iter().enumerate().take(DELAY_LAYOUT.buckets()) {
            cum += c;
            if cum >= target {
                let (_, hi) = DELAY_LAYOUT.bounds(i);
                if i + 1 == DELAY_LAYOUT.buckets() {
                    // Saturating bucket: its upper bound is not a real
                    // delay bound.
                    return u64::MAX;
                }
                return hi;
            }
        }
        u64::MAX
    }

    /// Fraction of observed delays that a lateness bound of `bound_ms`
    /// milliseconds would have dropped (0.0 when empty). Exact when
    /// `bound_ms` is a bucket boundary — which every
    /// [`Self::bound_ms`] result is.
    pub fn drop_risk(&self, bound_ms: u64) -> f64 {
        let d = &self.combined;
        if d.count == 0 {
            return 0.0;
        }
        let first = if bound_ms == 0 {
            0
        } else {
            DELAY_LAYOUT.index(bound_ms)
        };
        let at_risk: u64 = d
            .counts
            .iter()
            .take(DELAY_LAYOUT.buckets())
            .skip(first)
            .sum();
        at_risk as f64 / d.count as f64
    }

    /// Drop risk as an integer percentage (for `Pct10` histogram export).
    pub fn drop_risk_pct(&self, bound_ms: u64) -> u64 {
        let d = &self.combined;
        if d.count == 0 {
            return 0;
        }
        let first = if bound_ms == 0 {
            0
        } else {
            DELAY_LAYOUT.index(bound_ms)
        };
        let at_risk: u64 = d
            .counts
            .iter()
            .take(DELAY_LAYOUT.buckets())
            .skip(first)
            .sum();
        at_risk * 100 / d.count
    }

    /// Drops all samples (returning to the post-`new` state).
    pub fn clear(&mut self) {
        self.per_stream = [HistData::EMPTY; TapStream::COUNT];
        self.combined = HistData::EMPTY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn empty_estimator_is_maximally_conservative() {
        let e = DelayEstimator::new();
        assert_eq!(e.samples(), 0);
        assert_eq!(e.bound_ms(0.99), u64::MAX);
        assert_eq!(e.drop_risk(1000), 0.0);
    }

    #[test]
    fn bound_rounds_up_to_a_bucket_boundary() {
        let mut e = DelayEstimator::new();
        for _ in 0..100 {
            e.record(TapStream::Gnb, ms(90)); // bucket [64, 128)
        }
        // Every sample is < 128 ms, so any quantile bound is 128.
        assert_eq!(e.bound_ms(0.5), 128);
        assert_eq!(e.bound_ms(1.0), 128);
        // The chosen bound drops nothing.
        assert_eq!(e.drop_risk(128), 0.0);
        assert_eq!(e.drop_risk_pct(128), 0);
    }

    #[test]
    fn quantile_splits_bimodal_mass() {
        let mut e = DelayEstimator::new();
        for _ in 0..90 {
            e.record(TapStream::Dci, ms(50)); // [32, 64)
        }
        for _ in 0..10 {
            e.record(TapStream::Gnb, ms(6000)); // [4096, 8192)
        }
        // p90 covered by the small mode's bucket upper bound.
        assert_eq!(e.bound_ms(0.90), 64);
        // Cutting at 64 ms drops exactly the slow 10%.
        assert!((e.drop_risk(64) - 0.10).abs() < 1e-12);
        assert_eq!(e.drop_risk_pct(64), 10);
        // Covering everything needs the slow mode's bucket.
        assert_eq!(e.bound_ms(1.0), 8192);
        assert_eq!(e.drop_risk(8192), 0.0);
    }

    #[test]
    fn per_stream_histograms_partition_the_combined() {
        let mut e = DelayEstimator::new();
        e.record(TapStream::AppLocal, ms(10));
        e.record(TapStream::Packet, ms(20));
        e.record(TapStream::Packet, ms(30));
        assert_eq!(e.stream_hist(TapStream::AppLocal).count, 1);
        assert_eq!(e.stream_hist(TapStream::Packet).count, 2);
        assert_eq!(e.combined().count, 3);
        e.clear();
        assert_eq!(e.samples(), 0);
    }
}
