//! The watermark reorder stage: a bounded buffer that turns records arriving
//! in emission order into records released in timestamp order.
//!
//! Records are keyed by `(timestamp, emission sequence)`; the sequence
//! tie-break makes the release order exactly the order a *stable* sort of
//! the emission sequence by timestamp would produce — which is how
//! [`telemetry::TraceBundle::sort`] orders a finished trace, so downstream
//! consumers see the same tie order as a batch analysis would.
//!
//! The buffer is a sorted ring: records arriving in order (the overwhelming
//! majority — only gNB retransmission logs run ahead of their neighbours)
//! append in O(1); an out-of-order record is inserted at its stable sorted
//! position, paying O(displacement). A record whose timestamp is behind the
//! released frontier violated the lateness bound the caller promised; it is
//! dropped and counted rather than inserted out of order (the alternative —
//! rewinding the analysis — would make memory unbounded).

use std::collections::VecDeque;

use simcore::SimTime;

/// Watermark reorder buffer for one telemetry stream.
#[derive(Debug, Clone, Default)]
pub struct Reorder<T> {
    buf: VecDeque<(SimTime, T)>,
    frontier: SimTime,
    late: usize,
    released: usize,
}

impl<T> Reorder<T> {
    /// An empty buffer with the frontier at the epoch.
    pub fn new() -> Self {
        Reorder {
            buf: VecDeque::new(),
            frontier: SimTime::ZERO,
            late: 0,
            released: 0,
        }
    }

    /// Buffers one record keyed by `ts`. Returns `false` — and drops the
    /// record, counting it as late — if `ts` is behind the released
    /// frontier.
    pub fn push(&mut self, ts: SimTime, record: T) -> bool {
        if ts < self.frontier {
            self.late += 1;
            return false;
        }
        if self.buf.back().is_none_or(|&(last, _)| last <= ts) {
            self.buf.push_back((ts, record));
        } else {
            // Out-of-order arrival: stable insert — after every record with
            // an equal or earlier timestamp.
            let at = self.buf.partition_point(|&(t, _)| t <= ts);
            self.buf.insert(at, (ts, record));
        }
        true
    }

    /// Releases every buffered record with `ts < t` to `sink`, in
    /// `(ts, emission sequence)` order, and advances the frontier to `t`.
    pub fn release_below(&mut self, t: SimTime, mut sink: impl FnMut(T)) {
        while let Some(&(ts, _)) = self.buf.front() {
            if ts >= t {
                break;
            }
            let (_, record) = self.buf.pop_front().expect("checked non-empty");
            self.released += 1;
            sink(record);
        }
        self.frontier = self.frontier.max(t);
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records dropped for arriving behind the frontier.
    pub fn late_count(&self) -> usize {
        self.late
    }

    /// Records released to a sink so far — with [`Self::len`] and
    /// [`Self::late_count`], gives the total ever pushed. Window-close
    /// deltas of this counter drive the live pipeline's per-window
    /// coverage (gap/blackout) annotations.
    pub fn released_count(&self) -> usize {
        self.released
    }

    /// The exclusive upper bound of everything released so far.
    pub fn frontier(&self) -> SimTime {
        self.frontier
    }

    /// Drops all state (retaining the allocation), returning the buffer to
    /// its post-`new` state.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.frontier = SimTime::ZERO;
        self.late = 0;
        self.released = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn releases_in_stable_timestamp_order() {
        let mut r = Reorder::new();
        // Emission order: future-stamped record first, then equal-ts pair.
        r.push(t(30), "a");
        r.push(t(10), "b");
        r.push(t(20), "c1");
        r.push(t(20), "c2");
        let mut out = Vec::new();
        r.release_below(t(25), |x| out.push(x));
        assert_eq!(out, ["b", "c1", "c2"]);
        assert_eq!(r.len(), 1);
        let mut rest = Vec::new();
        r.release_below(t(100), |x| rest.push(x));
        assert_eq!(rest, ["a"]);
        assert!(r.is_empty());
    }

    #[test]
    fn stable_insert_lands_after_equal_timestamps() {
        let mut r = Reorder::new();
        r.push(t(10), "x1");
        r.push(t(20), "y");
        r.push(t(10), "x2"); // out of order, ties with x1
        let mut out = Vec::new();
        r.release_below(t(100), |x| out.push(x));
        assert_eq!(out, ["x1", "x2", "y"]);
    }

    #[test]
    fn late_records_are_dropped_and_counted() {
        let mut r = Reorder::new();
        r.push(t(10), 1);
        r.release_below(t(20), |_| {});
        assert!(!r.push(t(15), 2), "behind the frontier");
        assert!(r.push(t(20), 3), "exactly at the frontier is on time");
        assert_eq!(r.late_count(), 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.frontier(), t(20));
    }

    #[test]
    fn frontier_never_regresses() {
        let mut r: Reorder<u8> = Reorder::new();
        r.release_below(t(50), |_| {});
        r.release_below(t(30), |_| {});
        assert_eq!(r.frontier(), t(50));
    }
}
