//! # domino-live — online, in-session root-cause diagnosis
//!
//! The batch and streaming engines in `domino-core` analyse a *completed*
//! [`telemetry::TraceBundle`]. This crate diagnoses the call **while it is
//! running**: the [`LivePipeline`] implements [`telemetry::LiveTap`], plugs
//! into the session engine's emission-time hooks
//! (`scenarios::SessionRun` with `.tap(..)`), and produces incremental
//! [`LiveVerdict`]s with bounded memory — the online spine the ROADMAP's
//! operator-scale diagnoser needs (one pipeline per watched call, millions
//! of concurrent calls).
//!
//! Stages, in record order:
//!
//! 1. **Watermark reordering** ([`reorder::Reorder`]). Telemetry does not
//!    arrive in timestamp order: gNB logs interleave RLC retransmissions
//!    (stamped with scheduled, *future* times) with same-slot buffer
//!    samples, and a packet's fate is only known at delivery. Every stream
//!    is buffered until the watermark — session time minus the configured
//!    [`LiveConfig::lateness`] bound — passes it, then released in exact
//!    `(timestamp, emission sequence)` order, which reproduces the stable
//!    sort order of the finished bundle bit for bit. Records that show up
//!    *behind* the released frontier are dropped and counted
//!    ([`LiveStats::late_records_dropped`]); packet deliveries that arrive
//!    after their record was frozen are counted as
//!    [`LiveStats::late_deliveries`].
//! 2. **Constant-memory staging**. Released records are appended to a small
//!    staging [`telemetry::TraceBundle`], read once through the telemetry
//!    cursor ([`telemetry::TraceBundle::advance_until`]) into the
//!    [`domino_core::StreamingAnalyzer`], and pruned
//!    ([`telemetry::TraceBundle::prune_consumed`]) as soon as the window
//!    closes — so retained trace stays O(window + lateness), never
//!    O(session).
//! 3. **Early-exit verdicts** ([`EarlyExit`]). Each closed window yields a
//!    [`LiveVerdict`]; a policy can stop the session once enough chains are
//!    confirmed or the verdict has been stable long enough, aborting the
//!    simulation itself through [`telemetry::LiveTap::should_stop`].
//!
//! Two resilience layers wrap the healthy-path stages:
//!
//! * **Degraded telemetry** ([`chaos`]). A [`ChaosTap`] sits between the
//!   engine and any [`telemetry::LiveTap`], injecting seeded, scripted
//!   faults — drops, duplicates, delays, clock skew, blackouts — from a
//!   [`telemetry::TapChaosSpec`], and keeps a [`TapFaultLog`] ground truth
//!   so every injected fault is accountable in the downstream stats.
//! * **Adaptive lateness & SLO verdicts** ([`estimator`]). A
//!   [`DelayEstimator`] tracks the observed per-record delay distribution;
//!   [`telemetry::Lateness::Adaptive`] derives the watermark bound from a
//!   target quantile of it, and [`EarlyExit::Slo`] caps verdict latency
//!   while bounding the implied late-drop risk. Every verdict carries a
//!   [`domino_core::detect::VerdictCoverage`] annotation saying how much
//!   telemetry it actually saw.
//!
//! **Equivalence contract:** with [`EarlyExit::Never`] and a static
//! lateness bound that covers the longest in-network packet delay (so no
//! late drops or late deliveries occur), [`LivePipeline::take_analysis`]
//! is bit-identical to [`domino_core::Domino::analyze`] over the same
//! session's bundle — enforced by `tests/live_equivalence.rs` at the
//! workspace root and the unit tests here. Like the streaming analyzer it
//! builds on, the pipeline requires the window grid to align with the
//! detector's bin granule ([`domino_core::StreamingAnalyzer::supports`]);
//! [`LivePipeline::new`] reports [`domino_core::UnsupportedConfig`]
//! otherwise.

pub mod chaos;
pub mod estimator;
pub mod pipeline;
pub mod pool;
pub mod reorder;

pub use chaos::{ChaosState, ChaosTap, TapFaultLog};
pub use estimator::DelayEstimator;
pub use pipeline::{EarlyExit, LiveConfig, LivePipeline, LiveStats, LiveVerdict};
pub use pool::{PipelinePool, PoolStats};
pub use reorder::Reorder;

// Re-exported so callers configuring a pipeline need only this crate.
pub use domino_core::UnsupportedConfig;
