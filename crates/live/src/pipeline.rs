//! The [`LivePipeline`]: an emission-time [`LiveTap`] that runs Domino's
//! incremental window analysis *during* the session and produces
//! [`LiveVerdict`]s with bounded memory. See the crate docs for the stage
//! diagram and the equivalence contract.

use std::collections::{HashMap, VecDeque};

use simcore::{SimDuration, SimTime};
use telemetry::{
    AppStatsRecord, DciRecord, GnbLogRecord, Lateness, LiveTap, PacketRecord, PlaybackStatsRecord,
    SessionMeta, TapStream, TraceBundle, TraceCursor,
};

use domino_core::detect::{Analysis, ChainHit, DominoConfig, VerdictCoverage, WindowAnalysis};
use domino_core::graph::{CausalGraph, NodeId};
use domino_core::stream::{StreamingAnalyzer, UnsupportedConfig};
use domino_obs::{HistData, HistLayout};

use crate::estimator::{DelayEstimator, ADAPTIVE_MIN_SAMPLES, DELAY_LAYOUT};
use crate::reorder::Reorder;

/// When the live pipeline may abort the session it is watching.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum EarlyExit {
    /// Run to the end of the session (required for batch equivalence).
    #[default]
    Never,
    /// Stop once `n` chain hits have been confirmed across all emitted
    /// windows (`n = 0` is treated as 1). Overlapping windows re-confirm a
    /// persisting chain, so small `n` stops at the first incident while
    /// larger `n` waits for either a long-lived or a recurring one.
    AfterChains(usize),
    /// Stop once the verdict — the window's chain set plus unattributed
    /// consequences — has been identical for `k` consecutive windows
    /// (`k = 0` is treated as 1). Note the healthy (empty) verdict counts
    /// as stable too: on a clean call this exits ~`k` windows after warmup,
    /// which is exactly the fleet-scale triage behaviour (don't keep
    /// watching healthy calls).
    StableFor(usize),
    /// SLO-aware graceful degradation: cap the effective lateness bound so
    /// every verdict lands within `verdict_within` of its window's end,
    /// and give up on the session (stop watching, `early_exited` set) once
    /// the delay estimator shows that honouring the cap would drop more
    /// than `max_drop_risk` (a fraction in `[0, 1]`) of the telemetry.
    /// Verdicts emitted up to that point carry their
    /// [`VerdictCoverage`] so consumers know what they were worth.
    Slo {
        /// Maximum verdict latency after a window's end.
        verdict_within: SimDuration,
        /// Tolerated late-drop risk before the session is abandoned.
        max_drop_risk: f64,
    },
}

/// Configuration of the live stages (the analysis itself is configured by
/// the [`DominoConfig`] passed to [`LivePipeline::new`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveConfig {
    /// Watermark lateness policy: a record with timestamp `t` is expected
    /// to reach the tap by session time `t + bound`. Larger bounds
    /// tolerate slower telemetry (packets are only final at delivery, so
    /// the bound must cover the longest one-way delay for exact batch
    /// equivalence) at the cost of diagnosis latency and retained memory,
    /// both O(bound). [`Lateness::Static`] fixes the bound;
    /// [`Lateness::Adaptive`] tracks a quantile of the observed delay
    /// distribution per session.
    pub lateness: Lateness,
    /// Early-exit policy.
    pub early_exit: EarlyExit,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            lateness: Lateness::Static(SimDuration::from_secs(5)),
            early_exit: EarlyExit::Never,
        }
    }
}

/// Callback type for [`LivePipeline::set_verdict_hook`].
type VerdictHook = Box<dyn FnMut(&LiveVerdict)>;

/// One incremental diagnosis event: the verdict of a just-closed window.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveVerdict {
    /// Start of the window this verdict covers.
    pub window_start: SimTime,
    /// Session time at which the verdict was emitted (window end + lateness
    /// during the call; the session end for windows flushed at finish).
    pub emitted_at: SimTime,
    /// Complete causal chains active in the window.
    pub chains: Vec<ChainHit>,
    /// Active consequences with no complete chain to a root cause.
    pub unknown_consequences: Vec<NodeId>,
    /// Whether this verdict differs from the previous window's.
    pub changed: bool,
    /// How much of the telemetry this window was actually analysed with —
    /// full coverage unless records were late-dropped or a stream gapped.
    pub coverage: VerdictCoverage,
}

/// Counters the pipeline maintains while it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LiveStats {
    /// Records that entered the tap (all six streams, packets once).
    pub records_seen: usize,
    /// Records dropped for arriving behind the released watermark frontier
    /// (lateness-bound violations; each one may cost verdict fidelity).
    pub late_records_dropped: usize,
    /// Packet deliveries that arrived after their packet's fate was frozen
    /// as lost — the packet-stream flavour of a lateness violation.
    pub late_deliveries: usize,
    /// Windows emitted so far.
    pub windows_emitted: usize,
    /// High-water mark of retained records (reorder buffers + in-flight
    /// packets + staging bundle). Bounded by O(window + lateness) for any
    /// session length — asserted by `tests/live_equivalence.rs`.
    pub peak_retained_records: usize,
    /// Whether an [`EarlyExit`] policy stopped the session.
    pub early_exited: bool,
    /// [`Self::late_records_dropped`] broken out per telemetry stream,
    /// indexed by [`TapStream::idx`] (the packet slot counts late sends).
    pub late_drops_by_stream: [usize; TapStream::COUNT],
    /// Windows whose verdict carried degraded coverage (late drops or
    /// gapped streams).
    pub degraded_windows: usize,
}

/// Tracks the packet contribution to the bundle horizon: the record with
/// the greatest `(sent, emission id)`, and its receive time once known —
/// reproducing exactly what `TraceBundle::horizon()` reads from the last
/// element of the sorted packet vector.
#[derive(Debug, Clone, Copy, Default)]
struct PacketHorizon {
    sent: SimTime,
    id: u64,
    contrib: SimTime,
    any: bool,
}

impl PacketHorizon {
    fn on_sent(&mut self, id: u64, sent: SimTime) {
        if !self.any || sent >= self.sent {
            *self = PacketHorizon {
                sent,
                id,
                contrib: sent,
                any: true,
            };
        }
    }

    fn on_delivered(&mut self, id: u64, at: SimTime) {
        if self.any && id == self.id {
            self.contrib = self.contrib.max(at);
        }
    }
}

/// In-flight packet staging: a ring sorted by `(sent, id)` — O(1) appends
/// for the common in-emission-order case, stable insert for the small
/// within-tick inversions — plus an `id → sent` index so deliveries can
/// patch their record's fate in O(log n + ties).
#[derive(Debug, Clone, Default)]
struct PendingPackets {
    buf: VecDeque<(SimTime, u64, PacketRecord)>,
    in_flight: HashMap<u64, SimTime>,
    released: usize,
}

impl PendingPackets {
    fn insert(&mut self, id: u64, record: PacketRecord) {
        let sent = record.sent;
        if self
            .buf
            .back()
            .is_none_or(|&(s, i, _)| (s, i) <= (sent, id))
        {
            self.buf.push_back((sent, id, record));
        } else {
            let at = self.buf.partition_point(|&(s, i, _)| (s, i) <= (sent, id));
            self.buf.insert(at, (sent, id, record));
        }
        self.in_flight.insert(id, sent);
    }

    /// Patches the record announced as `id` with its delivery time,
    /// returning its send time; `None` if that record's fate was already
    /// frozen (released).
    fn deliver(&mut self, id: u64, at: SimTime) -> Option<SimTime> {
        let &sent = self.in_flight.get(&id)?;
        let start = self.buf.partition_point(|&(s, _, _)| s < sent);
        for slot in self.buf.range_mut(start..) {
            if slot.0 != sent {
                break;
            }
            if slot.1 == id {
                slot.2.received = Some(at);
                return Some(sent);
            }
        }
        unreachable!("in_flight and buf are updated together")
    }

    /// Releases every packet with `sent < t` to `sink` in `(sent, id)`
    /// order, freezing its fate.
    fn release_below(&mut self, t: SimTime, mut sink: impl FnMut(PacketRecord)) {
        while let Some(&(sent, _, _)) = self.buf.front() {
            if sent >= t {
                break;
            }
            let (_, id, record) = self.buf.pop_front().expect("checked non-empty");
            self.in_flight.remove(&id);
            self.released += 1;
            sink(record);
        }
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn released_count(&self) -> usize {
        self.released
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.in_flight.clear();
        self.released = 0;
    }
}

/// Online diagnosis pipeline for one session; implements [`LiveTap`].
///
/// Drive it through a tapped session run and collect the results:
///
/// ```no_run
/// use domino_live::{LiveConfig, LivePipeline};
/// # let cfg = scenarios::SessionConfig::default();
/// let mut pipe = LivePipeline::with_defaults(LiveConfig::default()).unwrap();
/// let bundle = scenarios::SessionRun::cell(scenarios::amarisoft(), &cfg)
///     .tap(&mut pipe)
///     .run();
/// let analysis = pipe.take_analysis(bundle.meta.duration);
/// ```
pub struct LivePipeline {
    analyzer: StreamingAnalyzer,
    live_cfg: LiveConfig,

    // Reorder stage, one buffer per out-of-band stream; packets are staged
    // in `pending` until their fate resolves or their window closes.
    app_local: Reorder<AppStatsRecord>,
    app_remote: Reorder<AppStatsRecord>,
    dci: Reorder<DciRecord>,
    gnb: Reorder<GnbLogRecord>,
    playback: Reorder<PlaybackStatsRecord>,
    pending: PendingPackets,
    packet_frontier: SimTime,
    late_sends: usize,
    late_deliveries: usize,

    // Adaptive lateness: observed delay distribution and the bound
    // currently in effect (fixed for `Lateness::Static`).
    estimator: DelayEstimator,
    effective_lateness: SimDuration,
    bound_hist: HistData,
    risk_hist: HistData,

    // Per-window coverage bookkeeping: released/late counts at the
    // previous window close, so each close sees only its own delta.
    cov_released_base: [usize; TapStream::COUNT],
    cov_late_base: usize,
    degraded_windows: usize,

    // Constant-memory staging: released records transit this bundle, read
    // once via the cursor and pruned at each window close.
    staging: TraceBundle,
    cursor: TraceCursor,

    // Window schedule and horizon tracking.
    next_start: SimTime,
    now: SimTime,
    horizon_lb: SimTime,
    packet_horizon: PacketHorizon,

    // Outputs.
    windows: Vec<WindowAnalysis>,
    verdicts: Vec<LiveVerdict>,
    hook: Option<VerdictHook>,
    records_seen: usize,
    peak_retained: usize,
    windows_emitted: usize,
    chain_total: usize,
    stable_run: usize,
    stopped: bool,
    finished: bool,
}

impl LivePipeline {
    /// Creates a pipeline over `graph` with the given engine and live
    /// configurations, or reports why the configuration cannot run on the
    /// exact incremental path (same alignment contract as
    /// [`StreamingAnalyzer::new`]).
    pub fn new(
        graph: CausalGraph,
        cfg: DominoConfig,
        live_cfg: LiveConfig,
    ) -> Result<Self, UnsupportedConfig> {
        let warmup = cfg.warmup;
        let analyzer = StreamingAnalyzer::new(graph, cfg)?;
        let effective_lateness = Self::initial_bound(&live_cfg);
        Ok(LivePipeline {
            analyzer,
            live_cfg,
            app_local: Reorder::new(),
            app_remote: Reorder::new(),
            dci: Reorder::new(),
            gnb: Reorder::new(),
            playback: Reorder::new(),
            pending: PendingPackets::default(),
            packet_frontier: SimTime::ZERO,
            late_sends: 0,
            late_deliveries: 0,
            estimator: DelayEstimator::new(),
            effective_lateness,
            bound_hist: HistData::EMPTY,
            risk_hist: HistData::EMPTY,
            cov_released_base: [0; TapStream::COUNT],
            cov_late_base: 0,
            degraded_windows: 0,
            staging: TraceBundle::new(SessionMeta::baseline(
                "domino-live staging",
                SimDuration::ZERO,
                0,
            )),
            cursor: TraceCursor::default(),
            next_start: SimTime::ZERO + warmup,
            now: SimTime::ZERO,
            horizon_lb: SimTime::ZERO,
            packet_horizon: PacketHorizon::default(),
            windows: Vec::new(),
            verdicts: Vec::new(),
            hook: None,
            records_seen: 0,
            peak_retained: 0,
            windows_emitted: 0,
            chain_total: 0,
            stable_run: 0,
            stopped: false,
            finished: false,
        })
    }

    /// A pipeline over the paper's default graph and engine configuration.
    pub fn with_defaults(live_cfg: LiveConfig) -> Result<Self, UnsupportedConfig> {
        Self::new(
            domino_core::dsl::default_graph(),
            DominoConfig::default(),
            live_cfg,
        )
    }

    /// The engine configuration.
    pub fn config(&self) -> &DominoConfig {
        self.analyzer.config()
    }

    /// The live-stage configuration.
    pub fn live_config(&self) -> &LiveConfig {
        &self.live_cfg
    }

    /// Replaces the live-stage configuration. Call right after
    /// [`Self::reset`] when a pooled pipeline is reused for a session with
    /// a different lateness or exit policy; the effective bound restarts
    /// from the new policy's cold-start value.
    pub fn set_live_config(&mut self, cfg: LiveConfig) {
        self.live_cfg = cfg;
        self.effective_lateness = Self::initial_bound(&self.live_cfg);
    }

    /// The lateness bound currently in effect: the configured bound for
    /// [`Lateness::Static`], the estimator-driven one for
    /// [`Lateness::Adaptive`] (the policy ceiling until warm).
    pub fn current_lateness(&self) -> SimDuration {
        self.effective_lateness
    }

    /// The observed per-record delay distribution, combined across
    /// streams (milliseconds; layout [`DELAY_LAYOUT`]).
    pub fn delay_hist(&self) -> &HistData {
        self.estimator.combined()
    }

    /// The effective lateness bound sampled at each window close
    /// (milliseconds; layout [`DELAY_LAYOUT`]).
    pub fn bound_hist(&self) -> &HistData {
        &self.bound_hist
    }

    /// The estimated late-drop risk sampled at each window close
    /// (percent; layout [`HistLayout::Pct10`]).
    pub fn risk_hist(&self) -> &HistData {
        &self.risk_hist
    }

    /// The online delay estimator feeding adaptive lateness and SLO
    /// verdicts.
    pub fn estimator(&self) -> &DelayEstimator {
        &self.estimator
    }

    /// Installs a callback invoked synchronously for every emitted verdict
    /// (in addition to the retained stream drained by
    /// [`Self::drain_verdicts`]).
    pub fn set_verdict_hook(&mut self, hook: impl FnMut(&LiveVerdict) + 'static) {
        self.hook = Some(Box::new(hook));
    }

    /// Counters so far (final after the session's `on_finish`).
    pub fn stats(&self) -> LiveStats {
        let late_drops_by_stream = [
            self.app_local.late_count(),
            self.app_remote.late_count(),
            self.playback.late_count(),
            self.dci.late_count(),
            self.gnb.late_count(),
            self.late_sends,
        ];
        LiveStats {
            records_seen: self.records_seen,
            late_records_dropped: late_drops_by_stream.iter().sum(),
            late_deliveries: self.late_deliveries,
            windows_emitted: self.windows_emitted,
            peak_retained_records: self.peak_retained,
            early_exited: self.stopped,
            late_drops_by_stream,
            degraded_windows: self.degraded_windows,
        }
    }

    /// Takes the verdicts emitted since the last drain.
    pub fn drain_verdicts(&mut self) -> Vec<LiveVerdict> {
        std::mem::take(&mut self.verdicts)
    }

    /// The verdicts retained since the last drain, without taking them —
    /// the allocation-free read path ([`Self::drain_verdicts`] gives up the
    /// vector's capacity; observers that only need to look, e.g. sweep
    /// metric rollups, must not).
    pub fn verdicts(&self) -> &[LiveVerdict] {
        &self.verdicts
    }

    /// Takes the accumulated per-window results as a batch-shaped
    /// [`Analysis`] (`duration` is the session duration, used for
    /// per-minute normalisation — pass `bundle.meta.duration`).
    pub fn take_analysis(&mut self, duration: SimDuration) -> Analysis {
        Analysis {
            windows: std::mem::take(&mut self.windows),
            duration,
        }
    }

    /// Clears all per-session state so the pipeline can watch another
    /// session (allocations and the verdict hook are kept).
    pub fn reset(&mut self) {
        let warmup = self.analyzer.config().warmup;
        self.analyzer.reset();
        self.app_local.clear();
        self.app_remote.clear();
        self.dci.clear();
        self.gnb.clear();
        self.playback.clear();
        self.pending.clear();
        self.packet_frontier = SimTime::ZERO;
        self.late_sends = 0;
        self.late_deliveries = 0;
        self.estimator.clear();
        self.effective_lateness = Self::initial_bound(&self.live_cfg);
        self.bound_hist = HistData::EMPTY;
        self.risk_hist = HistData::EMPTY;
        self.cov_released_base = [0; TapStream::COUNT];
        self.cov_late_base = 0;
        self.degraded_windows = 0;
        self.staging.dci.clear();
        self.staging.gnb.clear();
        self.staging.packets.clear();
        self.staging.app_local.clear();
        self.staging.app_remote.clear();
        self.staging.playback.clear();
        self.cursor = TraceCursor::default();
        self.next_start = SimTime::ZERO + warmup;
        self.now = SimTime::ZERO;
        self.horizon_lb = SimTime::ZERO;
        self.packet_horizon = PacketHorizon::default();
        self.windows.clear();
        self.verdicts.clear();
        self.records_seen = 0;
        self.peak_retained = 0;
        self.windows_emitted = 0;
        self.chain_total = 0;
        self.stable_run = 0;
        self.stopped = false;
        self.finished = false;
    }

    /// Records retained right now across all live stages.
    pub fn retained_records(&self) -> usize {
        self.staging.total_records()
            + self.pending.len()
            + self.app_local.len()
            + self.app_remote.len()
            + self.dci.len()
            + self.gnb.len()
            + self.playback.len()
    }

    fn note_retained(&mut self) {
        self.peak_retained = self.peak_retained.max(self.retained_records());
    }

    /// The cold-start bound for a configuration: the policy's maximum,
    /// capped by the verdict-latency SLO if one is set.
    fn initial_bound(cfg: &LiveConfig) -> SimDuration {
        let mut b = cfg.lateness.max_bound();
        if let EarlyExit::Slo { verdict_within, .. } = cfg.early_exit {
            b = b.min(verdict_within);
        }
        b
    }

    /// Re-derives the effective lateness bound from the policy and the
    /// estimator. Called once per tick; deterministic because the
    /// estimator state is a pure function of the session's event sequence.
    fn refresh_lateness(&mut self) {
        let mut bound = match self.live_cfg.lateness {
            Lateness::Static(s) => s,
            Lateness::Adaptive {
                target_quantile,
                floor,
                ceil,
            } => {
                if self.estimator.samples() < ADAPTIVE_MIN_SAMPLES {
                    ceil
                } else {
                    // Cap in ms space before converting: `bound_ms` is
                    // u64::MAX on an empty/saturated histogram and
                    // `from_millis` would overflow.
                    let ms = self
                        .estimator
                        .bound_ms(target_quantile)
                        .min(ceil.as_millis());
                    SimDuration::from_millis(ms).max(floor).min(ceil)
                }
            }
        };
        if let EarlyExit::Slo { verdict_within, .. } = self.live_cfg.early_exit {
            bound = bound.min(verdict_within);
        }
        self.effective_lateness = bound;
    }

    /// The watermark: session time minus the effective lateness bound.
    fn watermark(&self) -> SimTime {
        SimTime::from_micros(
            self.now
                .as_micros()
                .saturating_sub(self.effective_lateness.as_micros()),
        )
    }

    /// Closes every window whose end the watermark (and the horizon lower
    /// bound — a window must not outrun the records that prove the session
    /// actually extends past its end) has passed.
    fn close_ready(&mut self) {
        let window = self.analyzer.config().window;
        while !self.stopped {
            let end = self.next_start + window;
            if self.watermark() < end || end > self.horizon_lb {
                break;
            }
            self.close_one(end);
        }
    }

    /// The coverage annotation for a window just released: which streams
    /// contributed nothing to the newly released span despite having
    /// produced records, and how many records were late-dropped since the
    /// previous close. Pure integer bookkeeping over per-stream counters,
    /// so byte-identical across partitionings.
    fn window_coverage(&mut self) -> VerdictCoverage {
        let released = [
            self.app_local.released_count(),
            self.app_remote.released_count(),
            self.playback.released_count(),
            self.dci.released_count(),
            self.gnb.released_count(),
            self.pending.released_count(),
        ];
        let buffered = [
            self.app_local.len(),
            self.app_remote.len(),
            self.playback.len(),
            self.dci.len(),
            self.gnb.len(),
            self.pending.len(),
        ];
        let late = [
            self.app_local.late_count(),
            self.app_remote.late_count(),
            self.playback.late_count(),
            self.dci.late_count(),
            self.gnb.late_count(),
            self.late_sends,
        ];
        let mut gapped = 0u8;
        for i in 0..TapStream::COUNT {
            let delta = released[i] - self.cov_released_base[i];
            // A stream that never produced anything (e.g. playback on an
            // RTC session) is absent, not gapped.
            let pushed_ever = released[i] + buffered[i] + late[i];
            if delta == 0 && pushed_ever > 0 {
                gapped |= 1 << i;
            }
        }
        let late_now: usize = late.iter().sum();
        let late_drops = late_now - self.cov_late_base;
        self.cov_released_base = released;
        self.cov_late_base = late_now;
        let confidence =
            (1.0 - 0.2 * f64::from(gapped.count_ones()) - (0.02 * late_drops as f64).min(0.5))
                .max(0.0);
        VerdictCoverage {
            late_drops,
            gapped_streams: gapped,
            confidence,
        }
    }

    /// Releases everything the window `[next_start, end)` still needs into
    /// the staging bundle, feeds it to the analyzer, emits the window, and
    /// prunes the consumed staging prefix.
    fn close_one(&mut self, end: SimTime) {
        let staging = &mut self.staging;
        self.app_local
            .release_below(end, |r| staging.append_app_local(r));
        self.app_remote
            .release_below(end, |r| staging.append_app_remote(r));
        self.dci.release_below(end, |r| staging.append_dci(r));
        self.gnb.release_below(end, |r| {
            staging.append_gnb(r);
        });
        self.playback
            .release_below(end, |r| staging.append_playback(r));
        // Packets sent before the window end: their fate is frozen now —
        // a delivery that arrives later is counted as late.
        self.pending
            .release_below(end, |record| staging.append_packet(record));
        self.packet_frontier = self.packet_frontier.max(end);

        let coverage = self.window_coverage();
        let bound_ms = self.effective_lateness.as_millis();
        self.bound_hist.record(DELAY_LAYOUT, bound_ms);
        self.risk_hist
            .record(HistLayout::Pct10, self.estimator.drop_risk_pct(bound_ms));

        let slices = self.staging.advance_until(&mut self.cursor, end);
        self.analyzer.push_slices(&slices);
        let analysis = self.analyzer.emit(self.next_start);
        self.note_retained();
        self.staging.prune_consumed(&mut self.cursor);
        self.next_start += self.analyzer.config().step;
        self.record_window(analysis, coverage);
    }

    /// Appends one window's verdict to the output streams and applies the
    /// early-exit policy.
    fn record_window(&mut self, w: WindowAnalysis, coverage: VerdictCoverage) {
        let changed = self.windows.last().is_none_or(|prev| {
            prev.chains != w.chains || prev.unknown_consequences != w.unknown_consequences
        });
        self.stable_run = if changed { 1 } else { self.stable_run + 1 };
        self.chain_total += w.chains.len();
        if coverage.is_degraded() {
            self.degraded_windows += 1;
        }
        let verdict = LiveVerdict {
            window_start: w.start,
            emitted_at: self.now,
            chains: w.chains.clone(),
            unknown_consequences: w.unknown_consequences.clone(),
            changed,
            coverage,
        };
        if let Some(hook) = &mut self.hook {
            hook(&verdict);
        }
        self.verdicts.push(verdict);
        self.windows.push(w);
        self.windows_emitted += 1;
        // A bound of 0 would stop unconditionally at the first (possibly
        // empty) window; treat it as 1 so dynamically computed bounds
        // degrade to "first confirmation" instead of "never look".
        match self.live_cfg.early_exit {
            EarlyExit::Never => {}
            EarlyExit::AfterChains(n) => self.stopped = self.chain_total >= n.max(1),
            EarlyExit::StableFor(k) => self.stopped = self.stable_run >= k.max(1),
            EarlyExit::Slo { max_drop_risk, .. } => {
                // Give up once the observed delay distribution shows the
                // SLO-capped bound drops more telemetry than tolerated.
                self.stopped = self.estimator.samples() >= ADAPTIVE_MIN_SAMPLES
                    && self
                        .estimator
                        .drop_risk(self.effective_lateness.as_millis())
                        > max_drop_risk;
            }
        }
    }

    /// The exact batch horizon: max last-record time over all six streams,
    /// with the packet term read from the greatest-`(sent, id)` record just
    /// like `TraceBundle::horizon()` reads the sorted vector's last element.
    fn horizon(&self) -> SimTime {
        let mut h = self.horizon_lb;
        if self.packet_horizon.any {
            h = h.max(self.packet_horizon.contrib);
        }
        h
    }
}

impl LiveTap for LivePipeline {
    fn on_app_local(&mut self, r: &AppStatsRecord) {
        self.records_seen += 1;
        self.estimator
            .record(TapStream::AppLocal, self.now.saturating_since(r.ts));
        self.horizon_lb = self.horizon_lb.max(r.ts);
        self.app_local.push(r.ts, r.clone());
    }

    fn on_app_remote(&mut self, r: &AppStatsRecord) {
        self.records_seen += 1;
        self.estimator
            .record(TapStream::AppRemote, self.now.saturating_since(r.ts));
        self.horizon_lb = self.horizon_lb.max(r.ts);
        self.app_remote.push(r.ts, r.clone());
    }

    fn on_dci(&mut self, r: &DciRecord) {
        self.records_seen += 1;
        self.estimator
            .record(TapStream::Dci, self.now.saturating_since(r.ts));
        self.horizon_lb = self.horizon_lb.max(r.ts);
        self.dci.push(r.ts, r.clone());
    }

    fn on_gnb(&mut self, r: &GnbLogRecord) {
        self.records_seen += 1;
        self.estimator
            .record(TapStream::Gnb, self.now.saturating_since(r.ts));
        self.horizon_lb = self.horizon_lb.max(r.ts);
        self.gnb.push(r.ts, r.clone());
    }

    fn on_playback(&mut self, r: &PlaybackStatsRecord) {
        self.records_seen += 1;
        self.estimator
            .record(TapStream::Playback, self.now.saturating_since(r.ts));
        self.horizon_lb = self.horizon_lb.max(r.ts);
        self.playback.push(r.ts, r.clone());
    }

    fn on_packet_sent(&mut self, id: u64, r: &PacketRecord) {
        self.records_seen += 1;
        self.packet_horizon.on_sent(id, r.sent);
        if r.sent < self.packet_frontier {
            // Can only happen when the lateness bound is violated at the
            // source; the windows covering it have already closed.
            self.late_sends += 1;
            return;
        }
        self.pending.insert(id, r.clone());
    }

    fn on_packet_delivered(&mut self, id: u64, at: SimTime) {
        self.packet_horizon.on_delivered(id, at);
        match self.pending.deliver(id, at) {
            // A packet's observable delay is how long its fate stayed
            // open: delivery time minus send time.
            Some(sent) => self
                .estimator
                .record(TapStream::Packet, at.saturating_since(sent)),
            None => {
                // Fate already frozen as lost when its window closed.
                self.late_deliveries += 1;
            }
        }
    }

    fn on_tick(&mut self, now: SimTime) {
        self.now = now;
        self.refresh_lateness();
        self.close_ready();
        self.note_retained();
    }

    fn on_finish(&mut self, now: SimTime) {
        self.now = now;
        if self.finished {
            return;
        }
        self.finished = true;
        if self.stopped {
            return;
        }
        // Every record is now final, so the watermark no longer gates the
        // closes: close the remaining windows incrementally against the
        // exact batch horizon. Each close releases exactly what its window
        // needs, keeping the retained high-water mark at its in-flight
        // level instead of spiking on a whole-tail flush.
        let horizon = self.horizon();
        let window = self.analyzer.config().window;
        while !self.stopped && self.next_start + window <= horizon {
            self.close_one(self.next_start + window);
        }
        // Discard the tail past the last window — nothing further will be
        // analysed. Late counters survive; they feed the final stats.
        let flush_to = SimTime::from_micros(u64::MAX);
        self.app_local.release_below(flush_to, |_| {});
        self.app_remote.release_below(flush_to, |_| {});
        self.dci.release_below(flush_to, |_| {});
        self.gnb.release_below(flush_to, |_| {});
        self.playback.release_below(flush_to, |_| {});
        self.pending.release_below(flush_to, |_| {});
        self.packet_frontier = flush_to;
        self.staging.dci.clear();
        self.staging.gnb.clear();
        self.staging.packets.clear();
        self.staging.app_local.clear();
        self.staging.app_remote.clear();
        self.staging.playback.clear();
        self.cursor = TraceCursor::default();
    }

    fn should_stop(&self) -> bool {
        self.stopped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_core::Domino;
    use scenarios::{
        amarisoft, tmobile_fdd_15mhz_quiet, ScriptAction, SessionConfig, SessionRun, SessionSpec,
    };
    use telemetry::Direction;

    fn cfg(seed: u64, secs: u64) -> SessionConfig {
        SessionConfig {
            duration: SimDuration::from_secs(secs),
            seed,
            ..Default::default()
        }
    }

    fn static_cfg(lateness: SimDuration, early_exit: EarlyExit) -> LiveConfig {
        LiveConfig {
            lateness: Lateness::Static(lateness),
            early_exit,
        }
    }

    fn generous() -> LiveConfig {
        // Covers any in-network delay these short sessions can produce.
        static_cfg(SimDuration::from_secs(30), EarlyExit::Never)
    }

    fn assert_identical(batch: &Analysis, live: &Analysis) {
        assert_eq!(
            batch.windows.len(),
            live.windows.len(),
            "window counts differ"
        );
        assert_eq!(batch.duration, live.duration);
        for (b, l) in batch.windows.iter().zip(&live.windows) {
            assert_eq!(b.start, l.start);
            assert_eq!(
                b.features,
                l.features,
                "features diverge at {:?}: batch {:?} vs live {:?}",
                b.start,
                b.features.active_names(),
                l.features.active_names()
            );
            assert_eq!(b.chains, l.chains, "chains diverge at {:?}", b.start);
            assert_eq!(b.unknown_consequences, l.unknown_consequences);
        }
    }

    #[test]
    fn live_matches_batch_on_healthy_session() {
        let domino = Domino::with_defaults();
        let mut pipe = LivePipeline::with_defaults(generous()).unwrap();
        let bundle = SessionRun::cell(amarisoft(), &cfg(41, 20))
            .tap(&mut pipe)
            .run();
        let live = pipe.take_analysis(bundle.meta.duration);
        let batch = domino.analyze(&bundle);
        assert_identical(&batch, &live);
        let stats = pipe.stats();
        assert_eq!(stats.late_records_dropped, 0);
        assert_eq!(stats.late_deliveries, 0);
        assert_eq!(stats.degraded_windows, 0);
        assert!(!stats.early_exited);
    }

    #[test]
    fn live_matches_batch_on_impaired_session() {
        let domino = Domino::with_defaults();
        let spec = SessionSpec::cell(tmobile_fdd_15mhz_quiet(), cfg(42, 25))
            .with_script(ScriptAction::CrossTraffic {
                dir: Direction::Downlink,
                from: SimTime::from_secs(8),
                to: SimTime::from_secs(12),
                prb_fraction: 0.97,
            })
            .with_script(ScriptAction::RrcRelease {
                at: SimTime::from_secs(16),
            });
        let mut pipe = LivePipeline::with_defaults(generous()).unwrap();
        let bundle = spec.run_with_tap(&mut pipe);
        let live = pipe.take_analysis(bundle.meta.duration);
        let batch = domino.analyze(&bundle);
        assert!(
            batch.windows.iter().any(|w| !w.chains.is_empty()),
            "impairments must produce chains or the equivalence claim is weak"
        );
        assert_identical(&batch, &live);
    }

    #[test]
    fn verdicts_arrive_during_the_call_not_after() {
        let mut pipe =
            LivePipeline::with_defaults(static_cfg(SimDuration::from_secs(2), EarlyExit::Never))
                .unwrap();
        let bundle = SessionRun::cell(amarisoft(), &cfg(43, 20))
            .tap(&mut pipe)
            .run();
        let verdicts = pipe.drain_verdicts();
        assert!(!verdicts.is_empty());
        // With a 2 s bound, a window's verdict lands ~2 s after its end —
        // not at the session end like a post-hoc pass. Windows whose
        // watermark deadline falls past the session end are flushed at the
        // finish instant instead.
        let window = pipe.config().window;
        let lateness = pipe.current_lateness();
        let session_end = SimTime::ZERO + bundle.meta.duration;
        for v in &verdicts {
            let due = (v.window_start + window + lateness).min(session_end);
            assert!(
                v.emitted_at >= due && v.emitted_at <= due + SimDuration::from_millis(10),
                "verdict for {:?} emitted at {:?}, expected ~{due:?}",
                v.window_start,
                v.emitted_at
            );
        }
        // The first verdicts must predate the session end by a wide margin.
        assert!(verdicts[0].emitted_at < SimTime::from_secs(12));
    }

    #[test]
    fn early_exit_stops_the_simulation() {
        let impaired = |seed| {
            SessionSpec::cell(tmobile_fdd_15mhz_quiet(), cfg(seed, 30)).with_script(
                ScriptAction::CrossTraffic {
                    dir: Direction::Downlink,
                    from: SimTime::from_secs(6),
                    to: SimTime::from_secs(26),
                    prb_fraction: 0.97,
                },
            )
        };
        let mut pipe = LivePipeline::with_defaults(static_cfg(
            SimDuration::from_secs(1),
            EarlyExit::AfterChains(1),
        ))
        .unwrap();
        let truncated = impaired(44).run_with_tap(&mut pipe);
        let full = impaired(44).run();
        assert!(pipe.stats().early_exited);
        assert!(pipe.stats().windows_emitted > 0);
        assert!(
            truncated.packets.len() < full.packets.len(),
            "early exit must abort the simulation itself"
        );
        assert!(pipe
            .take_analysis(truncated.meta.duration)
            .windows
            .iter()
            .any(|w| !w.chains.is_empty()));
    }

    #[test]
    fn stable_verdict_exits_quickly_on_healthy_call() {
        let mut pipe = LivePipeline::with_defaults(static_cfg(
            SimDuration::from_secs(1),
            EarlyExit::StableFor(4),
        ))
        .unwrap();
        let bundle = SessionRun::cell(amarisoft(), &cfg(45, 60))
            .tap(&mut pipe)
            .run();
        let stats = pipe.stats();
        assert!(stats.early_exited);
        assert!(
            stats.windows_emitted >= 4,
            "needs at least the stability run"
        );
        // 60 s were requested; the triage verdict should land in well under
        // a third of that.
        assert!(bundle.horizon() < SimTime::from_secs(20));
    }

    #[test]
    fn reset_reuses_pipeline_across_sessions() {
        let domino = Domino::with_defaults();
        let mut pipe = LivePipeline::with_defaults(generous()).unwrap();
        let b1 = SessionRun::cell(amarisoft(), &cfg(46, 15))
            .tap(&mut pipe)
            .run();
        let first = pipe.take_analysis(b1.meta.duration);
        pipe.reset();
        let b2 = SessionRun::cell(amarisoft(), &cfg(47, 15))
            .tap(&mut pipe)
            .run();
        let second = pipe.take_analysis(b2.meta.duration);
        assert_identical(&domino.analyze(&b1), &first);
        assert_identical(&domino.analyze(&b2), &second);
    }

    #[test]
    fn late_records_are_counted_not_crashing() {
        let mut pipe = LivePipeline::with_defaults(static_cfg(
            SimDuration::from_millis(500),
            EarlyExit::Never,
        ))
        .unwrap();
        // Drive the tap by hand: advance far enough that windows close,
        // then inject a record from the deep past.
        for i in 0..400u64 {
            let mut s = AppStatsRecord::baseline(SimTime::from_millis(i * 50));
            s.inbound_fps = 30.0;
            pipe.on_app_local(&s);
            pipe.on_app_remote(&s);
            pipe.on_tick(SimTime::from_millis(i * 50));
        }
        assert!(pipe.stats().windows_emitted > 0);
        let stale = AppStatsRecord::baseline(SimTime::from_millis(100));
        pipe.on_app_local(&stale);
        let stats = pipe.stats();
        assert_eq!(stats.late_records_dropped, 1);
        // The per-stream breakout attributes the drop to its stream.
        assert_eq!(stats.late_drops_by_stream[TapStream::AppLocal.idx()], 1);
        assert_eq!(stats.late_drops_by_stream[TapStream::AppRemote.idx()], 0);
        // A delivery for an unknown (already-frozen) packet is late too.
        pipe.on_packet_delivered(999, SimTime::from_secs(21));
        assert_eq!(pipe.stats().late_deliveries, 1);
    }

    #[test]
    fn verdict_hook_fires_per_window() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen = Rc::new(RefCell::new(0usize));
        let seen2 = Rc::clone(&seen);
        let mut pipe = LivePipeline::with_defaults(generous()).unwrap();
        pipe.set_verdict_hook(move |_| *seen2.borrow_mut() += 1);
        SessionRun::cell(amarisoft(), &cfg(48, 15))
            .tap(&mut pipe)
            .run();
        assert_eq!(*seen.borrow(), pipe.stats().windows_emitted);
        assert!(*seen.borrow() > 0);
    }

    #[test]
    fn unaligned_config_is_rejected() {
        let odd = DominoConfig {
            step: SimDuration::from_millis(333),
            ..Default::default()
        };
        assert!(LivePipeline::new(
            domino_core::dsl::default_graph(),
            odd,
            LiveConfig::default()
        )
        .is_err());
    }

    #[test]
    fn memory_stays_bounded_while_running() {
        let mut pipe =
            LivePipeline::with_defaults(static_cfg(SimDuration::from_secs(2), EarlyExit::Never))
                .unwrap();
        let bundle = SessionRun::cell(amarisoft(), &cfg(49, 30))
            .tap(&mut pipe)
            .run();
        let stats = pipe.stats();
        assert!(stats.records_seen as f64 >= bundle.total_records() as f64 * 0.99);
        assert!(
            stats.peak_retained_records < bundle.total_records() / 2,
            "peak {} vs total {}",
            stats.peak_retained_records,
            bundle.total_records()
        );
        // Everything was drained by the finish flush.
        assert_eq!(pipe.retained_records(), 0);
    }

    #[test]
    fn verdicts_match_windows() {
        let mut pipe = LivePipeline::with_defaults(generous()).unwrap();
        let bundle = SessionRun::cell(amarisoft(), &cfg(50, 15))
            .tap(&mut pipe)
            .run();
        let verdicts = pipe.drain_verdicts();
        let analysis = pipe.take_analysis(bundle.meta.duration);
        assert_eq!(verdicts.len(), analysis.windows.len());
        for (v, w) in verdicts.iter().zip(&analysis.windows) {
            assert_eq!(v.window_start, w.start);
            assert_eq!(v.chains, w.chains);
            assert_eq!(v.unknown_consequences, w.unknown_consequences);
        }
        // `changed` marks transitions: the first verdict always counts as a
        // change, and consecutive equal verdicts must not.
        assert!(verdicts[0].changed);
        for pair in verdicts.windows(2) {
            let same = pair[0].chains == pair[1].chains
                && pair[0].unknown_consequences == pair[1].unknown_consequences;
            assert_eq!(pair[1].changed, !same);
        }
    }

    #[test]
    fn adaptive_pinned_to_clamp_matches_static() {
        let s = SimDuration::from_secs(2);
        let run = |lateness| {
            let mut pipe = LivePipeline::with_defaults(LiveConfig {
                lateness,
                early_exit: EarlyExit::Never,
            })
            .unwrap();
            let bundle = SessionRun::cell(amarisoft(), &cfg(51, 20))
                .tap(&mut pipe)
                .run();
            let stats = pipe.stats();
            let verdicts = pipe.drain_verdicts();
            (pipe.take_analysis(bundle.meta.duration), stats, verdicts)
        };
        let (a1, s1, v1) = run(Lateness::Static(s));
        let (a2, s2, v2) = run(Lateness::Adaptive {
            target_quantile: 0.5,
            floor: s,
            ceil: s,
        });
        // floor == ceil pins the adaptive bound: everything downstream is
        // identical to the static configuration, bit for bit.
        assert_identical(&a1, &a2);
        assert_eq!(s1, s2);
        assert_eq!(v1, v2);
    }

    #[test]
    fn adaptive_bound_comes_off_the_ceiling() {
        let mut pipe = LivePipeline::with_defaults(LiveConfig {
            lateness: Lateness::Adaptive {
                target_quantile: 0.99,
                floor: SimDuration::from_millis(250),
                ceil: SimDuration::from_secs(10),
            },
            early_exit: EarlyExit::Never,
        })
        .unwrap();
        SessionRun::cell(amarisoft(), &cfg(52, 20))
            .tap(&mut pipe)
            .run();
        assert!(pipe.estimator().samples() >= ADAPTIVE_MIN_SAMPLES);
        let bound = pipe.current_lateness();
        assert!(bound >= SimDuration::from_millis(250));
        assert!(
            bound < SimDuration::from_secs(10),
            "bound stuck at ceiling: {bound:?}"
        );
        assert!(pipe.stats().windows_emitted > 0);
    }

    #[test]
    fn slo_exit_gives_up_when_risk_exceeds_budget() {
        let mut pipe = LivePipeline::with_defaults(LiveConfig {
            lateness: Lateness::Static(SimDuration::from_secs(5)),
            early_exit: EarlyExit::Slo {
                verdict_within: SimDuration::from_millis(100),
                max_drop_risk: 0.25,
            },
        })
        .unwrap();
        // The SLO caps the effective bound below the static setting.
        assert_eq!(pipe.current_lateness(), SimDuration::from_millis(100));
        // Telemetry running 600 ms behind the clock: honouring a 100 ms
        // bound would drop nearly everything, so the pipeline must give up.
        for i in 0..400u64 {
            let now = SimTime::from_millis(i * 50);
            let ts = SimTime::from_micros(now.as_micros().saturating_sub(600_000));
            let mut s = AppStatsRecord::baseline(ts);
            s.inbound_fps = 30.0;
            pipe.on_app_local(&s);
            pipe.on_app_remote(&s);
            pipe.on_tick(now);
            if pipe.should_stop() {
                break;
            }
        }
        let stats = pipe.stats();
        assert!(stats.early_exited, "{stats:?}");
        assert!(stats.windows_emitted >= 1);
    }

    #[test]
    fn coverage_flags_gapped_stream() {
        let mut pipe = LivePipeline::with_defaults(static_cfg(
            SimDuration::from_millis(500),
            EarlyExit::Never,
        ))
        .unwrap();
        // app_remote goes dark for 9 s..15 s of a 20 s hand-driven feed.
        for i in 0..400u64 {
            let ts = SimTime::from_millis(i * 50);
            let mut s = AppStatsRecord::baseline(ts);
            s.inbound_fps = 30.0;
            pipe.on_app_local(&s);
            if !(180..300).contains(&i) {
                pipe.on_app_remote(&s);
            }
            pipe.on_tick(ts);
        }
        pipe.on_finish(SimTime::from_secs(20));
        let verdicts = pipe.drain_verdicts();
        assert!(!verdicts.is_empty());
        assert!(!verdicts[0].coverage.is_degraded(), "gap starts later");
        let bit = 1u8 << TapStream::AppRemote.idx();
        let gapped: Vec<&LiveVerdict> = verdicts
            .iter()
            .filter(|v| v.coverage.gapped_streams & bit != 0)
            .collect();
        assert!(!gapped.is_empty(), "blackout must surface as gap coverage");
        assert!(gapped.iter().all(|v| v.coverage.confidence < 1.0));
        assert_eq!(pipe.stats().degraded_windows, gapped.len());
    }
}
