//! Telemetry chaos injection: a [`ChaosTap`] wrapper that sits between a
//! session engine and any [`LiveTap`], injecting the faults a real capture
//! pipeline suffers — dropped records, duplicates, reorder bursts
//! (delays), capture-clock skew, and whole-stream blackouts — exactly as
//! scripted by a [`telemetry::TapChaosSpec`].
//!
//! The mirror of `sweep::chaos` one layer down: where the coordinator's
//! fleet corrupts *result frames*, this corrupts the *telemetry feed*
//! itself, so the live pipeline's degradation handling (adaptive
//! lateness, verdict coverage, SLO exits) can be exercised and swept.
//!
//! Determinism contract: every fault decision comes from a counter-based
//! hash of `(spec seed, stream, decision kind, per-stream counter)` — no
//! shared RNG state, no wall clock. Given the same spec and the same
//! session event sequence, the injected faults (and therefore every byte
//! downstream) are identical regardless of thread count, shard count, or
//! multiplex width.
//!
//! Every injected fault is tallied in a [`TapFaultLog`] ground truth; the
//! chaos fuzz suite asserts the log reconciles exactly against what the
//! wrapped pipeline observed — nothing injected may vanish unaccounted.

use std::collections::{HashSet, VecDeque};

use simcore::SimTime;
use telemetry::{
    AppStatsRecord, DciRecord, GnbLogRecord, LiveTap, PacketRecord, PlaybackStatsRecord,
    TapChaosSpec, TapFault, TapStream,
};

const N: usize = TapStream::COUNT;

// Decision-kind salts for the per-record rolls.
const SALT_DROP: u64 = 1;
const SALT_DUP: u64 = 2;
const SALT_DELAY: u64 = 3;
const SALT_DELAY_AMOUNT: u64 = 4;

/// splitmix64-style mix of the fault seed, stream, decision kind, and the
/// stream's roll counter. Stateless per decision: the only evolving input
/// is the counter, which advances with the (deterministic) record
/// sequence.
fn mix(seed: u64, stream: u64, salt: u64, counter: u64) -> u64 {
    let mut z = seed
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ salt.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ counter.wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Ground truth of what a [`ChaosTap`] injected, per stream (indexed by
/// [`TapStream::idx`]). After the session finishes (delay stash flushed),
/// the per-stream identity
///
/// `forwarded = records_in − dropped − blackout_dropped + duplicated`
///
/// holds exactly — [`TapFaultLog::reconciled`] checks it — and
/// `Σ forwarded` must equal the wrapped consumer's records-seen count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TapFaultLog {
    /// Records the engine emitted into the tap.
    pub records_in: [u64; N],
    /// Record emissions forwarded to the wrapped tap (duplicates count
    /// each forwarding; delayed records count when released).
    pub forwarded: [u64; N],
    /// Records swallowed by a seeded drop roll.
    pub dropped: [u64; N],
    /// Records swallowed by a blackout span (checked against the record's
    /// *true* timestamp, before any skew).
    pub blackout_dropped: [u64; N],
    /// Extra copies forwarded by duplicate rolls.
    pub duplicated: [u64; N],
    /// Records held back by a delay roll (re-emitted later).
    pub delayed: [u64; N],
    /// Records whose timestamp was shifted behind by clock skew.
    pub skewed: [u64; N],
    /// Packet delivery events the engine emitted.
    pub deliveries_in: u64,
    /// Delivery events suppressed because their send was dropped.
    pub deliveries_suppressed: u64,
}

impl TapFaultLog {
    /// Total records the engine emitted across all streams.
    pub fn total_records_in(&self) -> u64 {
        self.records_in.iter().sum()
    }

    /// Total emissions forwarded to the wrapped tap.
    pub fn total_forwarded(&self) -> u64 {
        self.forwarded.iter().sum()
    }

    /// Total drop-roll swallows.
    pub fn total_dropped(&self) -> u64 {
        self.dropped.iter().sum()
    }

    /// Total blackout swallows.
    pub fn total_blackout_dropped(&self) -> u64 {
        self.blackout_dropped.iter().sum()
    }

    /// Total duplicate copies forwarded.
    pub fn total_duplicated(&self) -> u64 {
        self.duplicated.iter().sum()
    }

    /// Total records delayed.
    pub fn total_delayed(&self) -> u64 {
        self.delayed.iter().sum()
    }

    /// Total records clock-skewed.
    pub fn total_skewed(&self) -> u64 {
        self.skewed.iter().sum()
    }

    /// Whether any fault fired at all.
    pub fn any_fault(&self) -> bool {
        self.total_dropped() > 0
            || self.total_blackout_dropped() > 0
            || self.total_duplicated() > 0
            || self.total_delayed() > 0
            || self.total_skewed() > 0
            || self.deliveries_suppressed > 0
    }

    /// Checks the per-stream conservation identity (valid once the
    /// session has finished and the delay stash is flushed): every record
    /// in is either forwarded, dropped, or blacked out, and every
    /// duplicate adds exactly one forwarding.
    pub fn reconciled(&self) -> bool {
        TapStream::ALL.iter().all(|s| {
            let i = s.idx();
            self.forwarded[i] + self.dropped[i] + self.blackout_dropped[i]
                == self.records_in[i] + self.duplicated[i]
        }) && self.deliveries_suppressed <= self.deliveries_in
    }
}

/// A record held back by a delay fault, owned until release.
#[derive(Debug, Clone)]
enum Stashed {
    AppLocal(AppStatsRecord),
    AppRemote(AppStatsRecord),
    Playback(PlaybackStatsRecord),
    Dci(DciRecord),
    Gnb(GnbLogRecord),
}

/// Compiled per-session chaos state: the fault script flattened into
/// per-stream tables, the roll counters, the delay stash, and the
/// [`TapFaultLog`]. One per session; create fresh from the spec (cheap)
/// rather than reusing across sessions.
#[derive(Debug, Clone)]
pub struct ChaosState {
    seed: u64,
    drop_pct: [u8; N],
    dup_pct: [u8; N],
    delay_pct: [u8; N],
    delay_max_us: [u64; N],
    skew_us: [u64; N],
    blackouts: [Vec<(SimTime, SimTime)>; N],
    /// One roll counter per stream; every seeded decision consumes one.
    rolls: [u64; N],
    /// Delayed records, sorted by `(release time, stash sequence)`.
    stash: VecDeque<(SimTime, u64, Stashed)>,
    seq: u64,
    now: SimTime,
    /// Send ids whose packet was dropped: their delivery events must be
    /// suppressed too (a capture that missed the send missed the fate).
    dropped_packets: HashSet<u64>,
    /// Ground-truth tally of everything injected.
    pub log: TapFaultLog,
}

impl ChaosState {
    /// Compiles a fault script. Percentages accumulate saturating at 100;
    /// duplicate/delay/skew faults aimed at [`TapStream::Packet`] are
    /// ignored (documented non-applicable in [`TapFault`]).
    pub fn new(spec: &TapChaosSpec) -> Self {
        let mut st = ChaosState {
            seed: spec.seed,
            drop_pct: [0; N],
            dup_pct: [0; N],
            delay_pct: [0; N],
            delay_max_us: [0; N],
            skew_us: [0; N],
            blackouts: std::array::from_fn(|_| Vec::new()),
            rolls: [0; N],
            stash: VecDeque::new(),
            seq: 0,
            now: SimTime::ZERO,
            dropped_packets: HashSet::new(),
            log: TapFaultLog::default(),
        };
        for f in &spec.faults {
            let i = f.stream().idx();
            let packet = f.stream() == TapStream::Packet;
            match *f {
                TapFault::Drop { pct, .. } => {
                    st.drop_pct[i] = st.drop_pct[i].saturating_add(pct).min(100);
                }
                TapFault::Duplicate { pct, .. } if !packet => {
                    st.dup_pct[i] = st.dup_pct[i].saturating_add(pct).min(100);
                }
                TapFault::Delay { pct, max_delay, .. } if !packet => {
                    st.delay_pct[i] = st.delay_pct[i].saturating_add(pct).min(100);
                    st.delay_max_us[i] = st.delay_max_us[i].max(max_delay.as_micros());
                }
                TapFault::SkewBehind { skew, .. } if !packet => {
                    st.skew_us[i] = st.skew_us[i].saturating_add(skew.as_micros());
                }
                TapFault::Blackout { from, to, .. } => st.blackouts[i].push((from, to)),
                // Non-applicable packet faults fall through here.
                TapFault::Duplicate { .. }
                | TapFault::Delay { .. }
                | TapFault::SkewBehind { .. } => {}
            }
        }
        st
    }

    /// Whether `spec` would compile to a no-op state (no faults can fire).
    pub fn is_noop(&self) -> bool {
        self.drop_pct == [0; N]
            && self.dup_pct == [0; N]
            && self.delay_pct == [0; N]
            && self.skew_us == [0; N]
            && self.blackouts.iter().all(Vec::is_empty)
    }

    fn roll(&mut self, s: usize, salt: u64) -> u64 {
        let c = self.rolls[s];
        self.rolls[s] += 1;
        mix(self.seed, s as u64, salt, c)
    }

    fn hit(&mut self, s: usize, salt: u64, pct: u8) -> bool {
        if pct == 0 {
            return false;
        }
        self.roll(s, salt) % 100 < pct as u64
    }

    fn in_blackout(&self, s: usize, ts: SimTime) -> bool {
        self.blackouts[s]
            .iter()
            .any(|&(from, to)| ts >= from && ts < to)
    }

    fn stash_push(&mut self, at: SimTime, rec: Stashed) {
        let seq = self.seq;
        self.seq += 1;
        // seq is strictly increasing, so ties on release time already sit
        // in order; only an earlier release time forces an insert.
        if self.stash.back().is_none_or(|e| e.0 <= at) {
            self.stash.push_back((at, seq, rec));
        } else {
            let i = self.stash.partition_point(|e| e.0 <= at);
            self.stash.insert(i, (at, seq, rec));
        }
    }
}

fn forward_stashed<T: LiveTap + ?Sized>(log: &mut TapFaultLog, inner: &mut T, rec: Stashed) {
    match rec {
        Stashed::AppLocal(r) => {
            log.forwarded[TapStream::AppLocal.idx()] += 1;
            inner.on_app_local(&r);
        }
        Stashed::AppRemote(r) => {
            log.forwarded[TapStream::AppRemote.idx()] += 1;
            inner.on_app_remote(&r);
        }
        Stashed::Playback(r) => {
            log.forwarded[TapStream::Playback.idx()] += 1;
            inner.on_playback(&r);
        }
        Stashed::Dci(r) => {
            log.forwarded[TapStream::Dci.idx()] += 1;
            inner.on_dci(&r);
        }
        Stashed::Gnb(r) => {
            log.forwarded[TapStream::Gnb.idx()] += 1;
            inner.on_gnb(&r);
        }
    }
}

/// The fault-injecting tap wrapper. Borrows its [`ChaosState`] so callers
/// (sweep workers, the multiplexer) can keep per-session state across the
/// short-lived wrapper borrows a session phase hands out.
pub struct ChaosTap<'a, T: LiveTap + ?Sized> {
    state: &'a mut ChaosState,
    inner: &'a mut T,
}

impl<'a, T: LiveTap + ?Sized> ChaosTap<'a, T> {
    /// Wraps `inner`, injecting faults from `state`.
    pub fn new(state: &'a mut ChaosState, inner: &'a mut T) -> Self {
        ChaosTap { state, inner }
    }
}

macro_rules! chaos_record {
    ($method:ident, $rec:ty, $stream:expr, $variant:ident) => {
        fn $method(&mut self, r: &$rec) {
            let st = &mut *self.state;
            let s = $stream.idx();
            st.log.records_in[s] += 1;
            // Blackout is checked against the true timestamp: a dead
            // capture process misses the record no matter what its clock
            // would have stamped.
            if st.in_blackout(s, r.ts) {
                st.log.blackout_dropped[s] += 1;
                return;
            }
            if st.hit(s, SALT_DROP, st.drop_pct[s]) {
                st.log.dropped[s] += 1;
                return;
            }
            let dup = st.hit(s, SALT_DUP, st.dup_pct[s]);
            if dup {
                st.log.duplicated[s] += 1;
            }
            let delay_us = if st.hit(s, SALT_DELAY, st.delay_pct[s]) {
                st.log.delayed[s] += 1;
                let max = st.delay_max_us[s].max(1);
                Some(1 + st.roll(s, SALT_DELAY_AMOUNT) % max)
            } else {
                None
            };
            let mut rec = r.clone();
            if st.skew_us[s] > 0 {
                st.log.skewed[s] += 1;
                rec.ts = SimTime::from_micros(rec.ts.as_micros().saturating_sub(st.skew_us[s]));
            }
            match delay_us {
                Some(us) => {
                    let at = SimTime::from_micros(st.now.as_micros().saturating_add(us));
                    if dup {
                        st.stash_push(at, Stashed::$variant(rec.clone()));
                    }
                    st.stash_push(at, Stashed::$variant(rec));
                }
                None => {
                    st.log.forwarded[s] += 1;
                    self.inner.$method(&rec);
                    if dup {
                        st.log.forwarded[s] += 1;
                        self.inner.$method(&rec);
                    }
                }
            }
        }
    };
}

impl<T: LiveTap + ?Sized> LiveTap for ChaosTap<'_, T> {
    chaos_record!(on_app_local, AppStatsRecord, TapStream::AppLocal, AppLocal);
    chaos_record!(
        on_app_remote,
        AppStatsRecord,
        TapStream::AppRemote,
        AppRemote
    );
    chaos_record!(
        on_playback,
        PlaybackStatsRecord,
        TapStream::Playback,
        Playback
    );
    chaos_record!(on_dci, DciRecord, TapStream::Dci, Dci);
    chaos_record!(on_gnb, GnbLogRecord, TapStream::Gnb, Gnb);

    fn on_packet_sent(&mut self, id: u64, r: &PacketRecord) {
        let st = &mut *self.state;
        let s = TapStream::Packet.idx();
        st.log.records_in[s] += 1;
        if st.in_blackout(s, r.sent) {
            st.log.blackout_dropped[s] += 1;
            st.dropped_packets.insert(id);
            return;
        }
        if st.hit(s, SALT_DROP, st.drop_pct[s]) {
            st.log.dropped[s] += 1;
            st.dropped_packets.insert(id);
            return;
        }
        st.log.forwarded[s] += 1;
        self.inner.on_packet_sent(id, r);
    }

    fn on_packet_delivered(&mut self, id: u64, at: SimTime) {
        let st = &mut *self.state;
        st.log.deliveries_in += 1;
        if st.dropped_packets.remove(&id) {
            st.log.deliveries_suppressed += 1;
            return;
        }
        self.inner.on_packet_delivered(id, at);
    }

    fn on_tick(&mut self, now: SimTime) {
        let st = &mut *self.state;
        st.now = now;
        while st.stash.front().is_some_and(|e| e.0 <= now) {
            let (_, _, rec) = st.stash.pop_front().expect("checked non-empty");
            forward_stashed(&mut st.log, self.inner, rec);
        }
        self.inner.on_tick(now);
    }

    fn on_finish(&mut self, now: SimTime) {
        let st = &mut *self.state;
        st.now = st.now.max(now);
        // Flush the whole stash: a finished session's capture pipeline
        // drains its queues, however late.
        while let Some((_, _, rec)) = st.stash.pop_front() {
            forward_stashed(&mut st.log, self.inner, rec);
        }
        self.inner.on_finish(now);
    }

    fn should_stop(&self) -> bool {
        self.inner.should_stop()
    }

    fn is_active(&self) -> bool {
        self.inner.is_active()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    /// A tap that records what it sees, for asserting against the log.
    #[derive(Debug, Default)]
    struct RecTap {
        gnb: Vec<SimTime>,
        dci: Vec<SimTime>,
        packets: Vec<u64>,
        deliveries: Vec<u64>,
        finished: bool,
    }

    impl LiveTap for RecTap {
        fn on_gnb(&mut self, r: &GnbLogRecord) {
            self.gnb.push(r.ts);
        }
        fn on_dci(&mut self, r: &DciRecord) {
            self.dci.push(r.ts);
        }
        fn on_packet_sent(&mut self, id: u64, _r: &PacketRecord) {
            self.packets.push(id);
        }
        fn on_packet_delivered(&mut self, id: u64, _at: SimTime) {
            self.deliveries.push(id);
        }
        fn on_finish(&mut self, _now: SimTime) {
            self.finished = true;
        }
    }

    fn gnb(ms: u64) -> GnbLogRecord {
        GnbLogRecord {
            ts: SimTime::from_millis(ms),
            event: telemetry::GnbEvent::RlcBuffer {
                direction: telemetry::Direction::Uplink,
                bytes: 100,
            },
        }
    }

    fn dci(ms: u64) -> DciRecord {
        DciRecord {
            ts: SimTime::from_millis(ms),
            rnti: 1,
            direction: telemetry::Direction::Downlink,
            is_target_ue: true,
            n_prbs: 10,
            mcs: 10,
            tbs_bits: 1000,
            harq_id: 0,
            harq_retx_idx: 0,
            decoded_ok: true,
            proactive: false,
            used_bits: 900,
        }
    }

    fn pkt(ms: u64) -> PacketRecord {
        PacketRecord {
            sent: SimTime::from_millis(ms),
            received: None,
            direction: telemetry::Direction::Uplink,
            stream: telemetry::StreamKind::Video,
            seq: 0,
            size_bytes: 1200,
        }
    }

    fn drive_gnb(spec: &TapChaosSpec, n: u64) -> (ChaosState, RecTap) {
        let mut st = ChaosState::new(spec);
        let mut tap = RecTap::default();
        {
            let mut chaos = ChaosTap::new(&mut st, &mut tap);
            for i in 0..n {
                chaos.on_gnb(&gnb(i * 10));
                chaos.on_tick(SimTime::from_millis(i * 10));
            }
            chaos.on_finish(SimTime::from_millis(n * 10));
        }
        (st, tap)
    }

    #[test]
    fn same_spec_injects_identical_faults() {
        let spec = TapChaosSpec::new(42)
            .fault(TapFault::Drop {
                stream: TapStream::Gnb,
                pct: 30,
            })
            .fault(TapFault::Duplicate {
                stream: TapStream::Gnb,
                pct: 20,
            });
        let (a, ta) = drive_gnb(&spec, 200);
        let (b, tb) = drive_gnb(&spec, 200);
        assert_eq!(a.log, b.log);
        assert_eq!(ta.gnb, tb.gnb);
        assert!(a.log.total_dropped() > 0, "30% over 200 records must fire");
        assert!(a.log.total_duplicated() > 0);
        assert!(a.log.reconciled(), "{:?}", a.log);
        assert_eq!(ta.gnb.len() as u64, a.log.total_forwarded());
    }

    #[test]
    fn different_seed_changes_the_rolls() {
        let base = TapChaosSpec::new(1).fault(TapFault::Drop {
            stream: TapStream::Gnb,
            pct: 50,
        });
        let other = TapChaosSpec {
            seed: 2,
            ..base.clone()
        };
        let (a, ta) = drive_gnb(&base, 200);
        let (b, tb) = drive_gnb(&other, 200);
        assert!(a.log.reconciled() && b.log.reconciled());
        assert_ne!(ta.gnb, tb.gnb, "different seeds must drop differently");
    }

    #[test]
    fn blackout_swallows_exactly_the_span() {
        let spec = TapChaosSpec::new(0).fault(TapFault::Blackout {
            stream: TapStream::Dci,
            from: SimTime::from_millis(100),
            to: SimTime::from_millis(300),
        });
        let mut st = ChaosState::new(&spec);
        let mut tap = RecTap::default();
        {
            let mut chaos = ChaosTap::new(&mut st, &mut tap);
            for i in 0..50 {
                chaos.on_dci(&dci(i * 10));
            }
            chaos.on_finish(SimTime::from_millis(500));
        }
        // Records at 100..290 ms inclusive are swallowed (20 of 50).
        assert_eq!(st.log.blackout_dropped[TapStream::Dci.idx()], 20);
        assert_eq!(tap.dci.len(), 30);
        assert!(tap
            .dci
            .iter()
            .all(|&t| t < SimTime::from_millis(100) || t >= SimTime::from_millis(300)));
        assert!(st.log.reconciled());
    }

    #[test]
    fn delay_restashes_and_flushes_in_order() {
        let spec = TapChaosSpec::new(9).fault(TapFault::Delay {
            stream: TapStream::Gnb,
            pct: 100,
            max_delay: SimDuration::from_millis(40),
        });
        let mut st = ChaosState::new(&spec);
        let mut tap = RecTap::default();
        {
            let mut chaos = ChaosTap::new(&mut st, &mut tap);
            for i in 0..20 {
                chaos.on_gnb(&gnb(i * 10));
                chaos.on_tick(SimTime::from_millis(i * 10));
            }
            // Not all released yet: the last few are still stashed.
            chaos.on_finish(SimTime::from_millis(200));
        }
        assert_eq!(st.log.total_delayed(), 20);
        assert_eq!(st.log.total_forwarded(), 20, "finish must flush the stash");
        assert_eq!(tap.gnb.len(), 20);
        assert!(tap.finished);
        assert!(st.log.reconciled());
        assert!(st.stash.is_empty());
    }

    #[test]
    fn skew_shifts_timestamps_behind() {
        let spec = TapChaosSpec::new(0).fault(TapFault::SkewBehind {
            stream: TapStream::Gnb,
            skew: SimDuration::from_millis(25),
        });
        let mut st = ChaosState::new(&spec);
        let mut tap = RecTap::default();
        {
            let mut chaos = ChaosTap::new(&mut st, &mut tap);
            chaos.on_gnb(&gnb(100));
            chaos.on_finish(SimTime::from_millis(200));
        }
        assert_eq!(tap.gnb, vec![SimTime::from_millis(75)]);
        assert_eq!(st.log.total_skewed(), 1);
        assert!(st.log.reconciled());
    }

    #[test]
    fn dropped_packet_suppresses_its_delivery() {
        let spec = TapChaosSpec::new(3).fault(TapFault::Drop {
            stream: TapStream::Packet,
            pct: 50,
        });
        let mut st = ChaosState::new(&spec);
        let mut tap = RecTap::default();
        {
            let mut chaos = ChaosTap::new(&mut st, &mut tap);
            for id in 0..100u64 {
                chaos.on_packet_sent(id, &pkt(id * 5));
                chaos.on_packet_delivered(id, SimTime::from_millis(id * 5 + 30));
            }
            chaos.on_finish(SimTime::from_secs(1));
        }
        let dropped = st.log.dropped[TapStream::Packet.idx()];
        assert!(dropped > 0);
        assert_eq!(st.log.deliveries_suppressed, dropped);
        assert_eq!(tap.packets.len() as u64, 100 - dropped);
        // Every delivery the inner tap saw had a matching send.
        assert_eq!(tap.deliveries, tap.packets);
        assert!(st.log.reconciled());
        assert!(st.dropped_packets.is_empty());
    }

    #[test]
    fn packet_only_faults_compile_to_noop_for_non_applicable_kinds() {
        let spec = TapChaosSpec::new(0)
            .fault(TapFault::Duplicate {
                stream: TapStream::Packet,
                pct: 100,
            })
            .fault(TapFault::Delay {
                stream: TapStream::Packet,
                pct: 100,
                max_delay: SimDuration::from_secs(1),
            })
            .fault(TapFault::SkewBehind {
                stream: TapStream::Packet,
                skew: SimDuration::from_secs(1),
            });
        let st = ChaosState::new(&spec);
        assert!(st.is_noop());
    }

    #[test]
    fn empty_spec_forwards_everything_untouched() {
        let (st, tap) = drive_gnb(&TapChaosSpec::new(7), 50);
        assert!(st.is_noop());
        assert!(!st.log.any_fault());
        assert_eq!(tap.gnb.len(), 50);
        assert_eq!(st.log.total_forwarded(), 50);
        assert!(st.log.reconciled());
    }
}
