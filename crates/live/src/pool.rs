//! The [`PipelinePool`]: a session-id-keyed pool of [`LivePipeline`]s for
//! operator-scale concurrent diagnosis.
//!
//! A fleet diagnoser watches many calls at once, and calls start and end
//! continuously. Building a fresh [`LivePipeline`] per call start would
//! re-allocate every reorder buffer, the staging bundle, and the streaming
//! analyzer's rolling state each time; the pool instead keeps finished
//! pipelines on a free list ordered by release recency and hands the most
//! recently used one (its buffers still cache-warm and grown to the
//! workload's high-water marks) to the next call. The free list is
//! LRU-bounded: when more pipelines are idle than [`PipelinePool::max_free`],
//! the *least* recently used are dropped, so a traffic spike does not pin
//! its peak footprint forever.
//!
//! **Reuse-correctness contract:** a pipeline leased from the free list is
//! [`LivePipeline::reset`] on checkout, so the session it watches produces
//! output byte-identical to a fresh pipeline's — enforced by the pool reuse
//! and eviction determinism tests in `tests/live_equivalence.rs`.

use std::collections::HashMap;

use domino_core::detect::DominoConfig;
use domino_core::graph::CausalGraph;
use domino_core::stream::UnsupportedConfig;

use crate::pipeline::{LiveConfig, LivePipeline, LiveStats};

/// Lifetime counters of a [`PipelinePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Pipelines constructed from scratch (free list was empty).
    pub created: usize,
    /// Checkouts served from the free list (allocation-free).
    pub reused: usize,
    /// Idle pipelines dropped because the free list exceeded its bound.
    pub evicted: usize,
}

/// A pool of [`LivePipeline`]s keyed by session id, with an LRU-bounded
/// free list (see the module docs).
///
/// ```no_run
/// use domino_live::{LiveConfig, PipelinePool};
/// let mut pool = PipelinePool::with_defaults(LiveConfig::default()).unwrap();
/// let pipe = pool.checkout(7); // lease for session 7 (reset, ready)
/// // ... drive the session's tap events through `pipe` ...
/// let stats = pool.release(7); // back onto the free list, warm
/// ```
pub struct PipelinePool {
    graph: CausalGraph,
    cfg: DominoConfig,
    live: LiveConfig,
    /// Leased pipelines, keyed by session id. Width is small (one entry
    /// per concurrently watched call on this worker), so a map keeps
    /// `get_mut` O(1) without any ordering bookkeeping.
    active: HashMap<u64, LivePipeline>,
    /// Idle pipelines, least recently used first: [`Self::release`] pushes
    /// to the back, [`Self::checkout`] pops from the back (warmest), and
    /// eviction drops from the front.
    free: Vec<LivePipeline>,
    max_free: usize,
    stats: PoolStats,
}

impl PipelinePool {
    /// Default bound on idle pipelines retained for reuse.
    pub const DEFAULT_MAX_FREE: usize = 32;

    /// Creates a pool over `graph` with the given engine and live
    /// configurations, or reports why the configuration cannot run on the
    /// exact incremental path (same alignment contract as
    /// [`LivePipeline::new`]; validated once here, so checkouts are
    /// infallible).
    pub fn new(
        graph: CausalGraph,
        cfg: DominoConfig,
        live: LiveConfig,
    ) -> Result<Self, UnsupportedConfig> {
        // The probe both validates the configuration and seeds the free
        // list, so the first checkout is already a (cold-buffer) reuse.
        let probe = LivePipeline::new(graph.clone(), cfg.clone(), live)?;
        Ok(PipelinePool {
            graph,
            cfg,
            live,
            active: HashMap::new(),
            free: vec![probe],
            max_free: Self::DEFAULT_MAX_FREE,
            stats: PoolStats::default(),
        })
    }

    /// A pool over the paper's default graph and engine configuration.
    pub fn with_defaults(live: LiveConfig) -> Result<Self, UnsupportedConfig> {
        Self::new(
            domino_core::dsl::default_graph(),
            DominoConfig::default(),
            live,
        )
    }

    /// Sets the free-list bound (builder style). `0` disables reuse
    /// entirely — every checkout constructs, every release drops.
    pub fn max_free(mut self, n: usize) -> Self {
        self.max_free = n;
        self.evict_over_bound();
        self
    }

    /// The live-stage configuration every pooled pipeline runs with.
    pub fn live_config(&self) -> &LiveConfig {
        &self.live
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Currently leased sessions.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Idle pipelines available for reuse.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Leases a pipeline for `session`: the most recently released one
    /// (reset, so its output is byte-identical to a fresh pipeline's) or a
    /// newly built one when the free list is empty.
    ///
    /// # Panics
    ///
    /// If `session` is already leased — session ids must be unique among
    /// concurrently watched calls.
    pub fn checkout(&mut self, session: u64) -> &mut LivePipeline {
        assert!(
            !self.active.contains_key(&session),
            "session {session} already has a leased pipeline"
        );
        let pipe = match self.free.pop() {
            Some(mut p) => {
                p.reset();
                // A previous lease may have overridden the live config
                // (per-spec lateness); restore the pool-wide default so
                // reuse is indistinguishable from a fresh build.
                p.set_live_config(self.live);
                self.stats.reused += 1;
                p
            }
            None => {
                self.stats.created += 1;
                LivePipeline::new(self.graph.clone(), self.cfg.clone(), self.live)
                    .expect("configuration validated at pool construction")
            }
        };
        self.active.entry(session).or_insert(pipe)
    }

    /// The pipeline currently leased for `session`.
    pub fn get_mut(&mut self, session: u64) -> Option<&mut LivePipeline> {
        self.active.get_mut(&session)
    }

    /// Returns `session`'s pipeline to the free list (most-recent end) and
    /// reports its final counters, or `None` if the session holds no lease.
    /// Callers should [`LivePipeline::take_analysis`] /
    /// [`LivePipeline::drain_verdicts`] *before* releasing: the pipeline is
    /// only reset at its next checkout, but may be evicted any time it
    /// sits on the free list.
    pub fn release(&mut self, session: u64) -> Option<LiveStats> {
        let pipe = self.active.remove(&session)?;
        let stats = pipe.stats();
        self.free.push(pipe);
        self.evict_over_bound();
        Some(stats)
    }

    fn evict_over_bound(&mut self) {
        while self.free.len() > self.max_free {
            // Front = least recently used.
            self.free.remove(0);
            self.stats.evicted += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> PipelinePool {
        PipelinePool::with_defaults(LiveConfig::default()).expect("default config is aligned")
    }

    #[test]
    fn checkout_release_cycles_reuse_the_free_list() {
        let mut p = pool();
        assert_eq!(p.free_len(), 1, "probe seeds the free list");
        p.checkout(1);
        assert_eq!((p.active_len(), p.free_len()), (1, 0));
        assert_eq!(p.stats().reused, 1, "probe reused");
        assert!(p.release(1).is_some());
        assert_eq!((p.active_len(), p.free_len()), (0, 1));
        // Second cycle: same storage, no construction.
        p.checkout(2);
        assert_eq!(
            p.stats(),
            PoolStats {
                created: 0,
                reused: 2,
                evicted: 0
            }
        );
    }

    #[test]
    fn concurrent_sessions_get_distinct_pipelines() {
        let mut p = pool();
        for sid in 0..4 {
            p.checkout(sid);
        }
        assert_eq!(p.active_len(), 4);
        assert_eq!(p.stats().created, 3, "one probe + three fresh builds");
        assert!(p.get_mut(3).is_some());
        assert!(p.get_mut(4).is_none());
        for sid in 0..4 {
            assert!(p.release(sid).is_some());
        }
        assert_eq!(p.free_len(), 4);
    }

    #[test]
    fn free_list_is_lru_bounded() {
        let mut p = pool().max_free(2);
        for sid in 0..5 {
            p.checkout(sid);
        }
        for sid in 0..5 {
            p.release(sid);
        }
        assert_eq!(p.free_len(), 2);
        assert_eq!(p.stats().evicted, 3);
        // max_free(0) drops everything on release.
        let mut p = pool().max_free(0);
        assert_eq!(p.free_len(), 0, "probe evicted by the zero bound");
        p.checkout(9);
        p.release(9);
        assert_eq!(p.free_len(), 0);
        assert_eq!(p.stats().evicted, 2);
    }

    #[test]
    fn duplicate_lease_panics() {
        let mut p = pool();
        p.checkout(5);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.checkout(5);
        }));
        assert!(err.is_err());
    }

    #[test]
    fn release_without_lease_is_none() {
        let mut p = pool();
        assert!(p.release(42).is_none());
    }

    #[test]
    fn unaligned_config_is_rejected_once_at_pool_construction() {
        let odd = DominoConfig {
            step: simcore::SimDuration::from_millis(333),
            ..Default::default()
        };
        assert!(PipelinePool::new(
            domino_core::dsl::default_graph(),
            odd,
            LiveConfig::default()
        )
        .is_err());
    }
}
