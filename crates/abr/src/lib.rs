//! # abr-sim — QUIC/ABR video-streaming endpoint simulator
//!
//! The first non-RTC workload on the session engine: a segment-based video
//! stream (DASH/HLS-over-QUIC shape) between a UE-side player and a wired
//! origin server, reusing the `ran`/`netpath` layers unchanged.
//!
//! Three pieces, all deterministic and tick-driven:
//!
//! * [`AbrClient`] — the player: a playback buffer drained in simulated
//!   time, a segment fetcher that keeps exactly one request in flight while
//!   the buffer sits below its target, and an ABR controller
//!   ([`AbrAlgorithm`]) choosing the ladder rung per request from a smoothed
//!   throughput estimate (throughput rule) or the buffer level (buffer
//!   rule). Stalls (buffer underrun after startup) and ladder switches are
//!   tracked and exposed both as 50 ms [`PlaybackStatsRecord`] samples and
//!   as per-tick [`AbrTickEvents`] for metrics.
//! * [`AbrServer`] — the origin: answers a segment request by pacing the
//!   segment out as MTU-sized chunks at the configured egress rate.
//! * [`AbrPayload`] / [`AbrOutgoing`] — the wire units the session engine
//!   routes through the same access + core + peer path models as RTC
//!   packets. Requests ride the uplink as [`StreamKind::Rtcp`]-class
//!   packets, chunks ride the downlink as [`StreamKind::Video`], so the
//!   detector's forward-delay-trend feature applies unchanged.
//!
//! Everything is integer-microsecond arithmetic plus fixed-order f64 for
//! the throughput EWMA: byte-identical output at any thread/shard/mux
//! partitioning, exactly like the RTC endpoint.

use simcore::{SimDuration, SimTime};
use std::collections::VecDeque;
use telemetry::{PlaybackStatsRecord, Resolution, StreamKind};

/// One rung of the encoding ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LadderRung {
    /// Video resolution of this rung.
    pub resolution: Resolution,
    /// Encoded bitrate in bits/s.
    pub bitrate_bps: u64,
}

/// A typical five-rung ladder (180p → 1080p).
pub fn default_ladder() -> Vec<LadderRung> {
    vec![
        LadderRung {
            resolution: Resolution::R180p,
            bitrate_bps: 400_000,
        },
        LadderRung {
            resolution: Resolution::R360p,
            bitrate_bps: 800_000,
        },
        LadderRung {
            resolution: Resolution::R540p,
            bitrate_bps: 1_500_000,
        },
        LadderRung {
            resolution: Resolution::R720p,
            bitrate_bps: 3_000_000,
        },
        LadderRung {
            resolution: Resolution::R1080p,
            bitrate_bps: 6_000_000,
        },
    ]
}

/// The rung-selection rule the controller runs at each request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbrAlgorithm {
    /// Highest rung whose bitrate fits under `safety × estimated
    /// throughput` (the classic throughput rule; rung 0 before the first
    /// estimate).
    ThroughputRule,
    /// Rung proportional to the buffer fill level (a BOLA-shaped buffer
    /// rule): `floor(buffer / target × rungs)`, clamped to the ladder.
    BufferRule,
}

/// Configuration of one streaming session's client + server pair.
#[derive(Debug, Clone)]
pub struct AbrConfig {
    /// Media duration per segment.
    pub segment_duration: SimDuration,
    /// The encoding ladder, ascending bitrate.
    pub ladder: Vec<LadderRung>,
    /// Buffer level the fetcher tries to hold.
    pub buffer_target: SimDuration,
    /// Buffer needed to start playback, and to resume after a stall.
    pub startup_buffer: SimDuration,
    /// Rung-selection rule.
    pub algorithm: AbrAlgorithm,
    /// Chunk size on the wire, bytes.
    pub mtu: u32,
    /// Size of a segment request on the wire, bytes.
    pub request_bytes: u32,
    /// Throughput-rule safety factor (fraction of the estimate a rung may
    /// use).
    pub throughput_safety: f64,
    /// Server egress pacing rate, bits/s (the wired origin's uplink).
    pub server_rate_bps: u64,
    /// EWMA weight of the newest throughput sample.
    pub ewma_alpha: f64,
}

impl Default for AbrConfig {
    fn default() -> Self {
        AbrConfig {
            segment_duration: SimDuration::from_secs(1),
            ladder: default_ladder(),
            buffer_target: SimDuration::from_secs(6),
            startup_buffer: SimDuration::from_secs(1),
            algorithm: AbrAlgorithm::ThroughputRule,
            mtu: 1_200,
            request_bytes: 200,
            throughput_safety: 0.7,
            server_rate_bps: 40_000_000,
            ewma_alpha: 0.7,
        }
    }
}

impl AbrConfig {
    /// Bytes of one segment at `rung` (bitrate × duration).
    pub fn segment_bytes(&self, rung: u8) -> u64 {
        let bits =
            self.ladder[rung as usize].bitrate_bps * self.segment_duration.as_micros() / 1_000_000;
        (bits / 8).max(1)
    }

    /// Chunks one segment at `rung` is shipped as.
    pub fn segment_chunks(&self, rung: u8) -> u32 {
        self.segment_bytes(rung).div_ceil(self.mtu as u64) as u32
    }

    /// Serialization time of one MTU chunk at the server egress rate, µs.
    fn chunk_gap_us(&self) -> u64 {
        (self.mtu as u64 * 8 * 1_000_000 / self.server_rate_bps).max(1)
    }
}

/// Application payload of one streaming-session wire unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbrPayload {
    /// Client → server: fetch `segment` at ladder rung `rung`.
    SegmentRequest {
        /// Segment index (0-based).
        segment: u32,
        /// Requested ladder rung.
        rung: u8,
    },
    /// Server → client: one chunk of a segment.
    SegmentChunk {
        /// Segment index.
        segment: u32,
        /// Chunk index within the segment.
        chunk: u32,
        /// Total chunks of this segment.
        chunks_in_segment: u32,
        /// Ladder rung the segment was encoded at.
        rung: u8,
    },
}

impl AbrPayload {
    /// Stream classification for the packet trace: requests are sparse
    /// control traffic (RTCP class), chunks are the media stream (Video
    /// class) — so packet-level features split exactly as for RTC.
    pub fn stream(&self) -> StreamKind {
        match self {
            AbrPayload::SegmentRequest { .. } => StreamKind::Rtcp,
            AbrPayload::SegmentChunk { .. } => StreamKind::Video,
        }
    }
}

/// One wire unit leaving an ABR endpoint.
#[derive(Debug, Clone, Copy)]
pub struct AbrOutgoing {
    /// Departure time.
    pub at: SimTime,
    /// Per-endpoint transport sequence number (emission order).
    pub transport_seq: u64,
    /// Size on the wire, bytes.
    pub size_bytes: u32,
    /// Application payload.
    pub payload: AbrPayload,
}

/// Playback state changes of one engine tick, for metrics wiring.
///
/// Drained by the session engine after each tick via
/// [`AbrClient::take_events`]; all fields reset on read.
#[derive(Debug, Clone, Copy, Default)]
pub struct AbrTickEvents {
    /// Playback entered a stall this tick.
    pub stall_started: bool,
    /// A stall ended this tick; the value is its duration in ms.
    pub stall_ended_ms: Option<u64>,
    /// The controller moved to a different ladder rung this tick.
    pub ladder_switched: bool,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    segment: u32,
    rung: u8,
    requested_us: u64,
    bytes: u64,
    chunks: u32,
    chunks_received: u32,
}

/// The UE-side player: playback buffer + segment fetcher + ABR controller.
#[derive(Debug, Clone)]
pub struct AbrClient {
    cfg: AbrConfig,
    buffer_us: u64,
    started: bool,
    stalled: bool,
    total_stall_us: u64,
    cur_stall_us: u64,
    stall_count: u32,
    rung: u8,
    target_rung: u8,
    est_bps: f64,
    next_segment: u32,
    in_flight: Option<InFlight>,
    segments_fetched: u32,
    ladder_switches: u32,
    last_tick_us: u64,
    next_seq: u64,
    events: AbrTickEvents,
}

impl AbrClient {
    /// Creates a player at session start (empty buffer, lowest rung).
    pub fn new(cfg: AbrConfig) -> Self {
        assert!(!cfg.ladder.is_empty(), "ladder must have at least one rung");
        AbrClient {
            cfg,
            buffer_us: 0,
            started: false,
            stalled: false,
            total_stall_us: 0,
            cur_stall_us: 0,
            stall_count: 0,
            rung: 0,
            target_rung: 0,
            est_bps: 0.0,
            next_segment: 0,
            in_flight: None,
            segments_fetched: 0,
            ladder_switches: 0,
            last_tick_us: 0,
            next_seq: 0,
            events: AbrTickEvents::default(),
        }
    }

    /// Advances playback to `now` and emits a segment request if the buffer
    /// sits below target with nothing in flight. Called once per engine
    /// tick with strictly increasing `now`.
    pub fn poll_into(&mut self, now: SimTime, out: &mut Vec<AbrOutgoing>) {
        let now_us = now.as_micros();
        let dt = now_us.saturating_sub(self.last_tick_us);
        self.last_tick_us = now_us;

        // Drain the playback buffer in real time while playing; an
        // underrun becomes a stall.
        if self.started && !self.stalled {
            if self.buffer_us >= dt {
                self.buffer_us -= dt;
            } else {
                let shortfall = dt - self.buffer_us;
                self.buffer_us = 0;
                self.stalled = true;
                self.stall_count += 1;
                self.total_stall_us += shortfall;
                self.cur_stall_us = shortfall;
                self.events.stall_started = true;
            }
        } else if self.stalled {
            self.total_stall_us += dt;
            self.cur_stall_us += dt;
        }

        // One request in flight, issued whenever the buffer is below
        // target (startup included: an empty buffer is below target).
        if self.in_flight.is_none() && self.buffer_us < self.cfg.buffer_target.as_micros() {
            let rung = self.choose_rung();
            if rung != self.target_rung {
                self.ladder_switches += 1;
                self.events.ladder_switched = true;
            }
            self.target_rung = rung;
            let segment = self.next_segment;
            self.next_segment += 1;
            self.in_flight = Some(InFlight {
                segment,
                rung,
                requested_us: now_us,
                bytes: self.cfg.segment_bytes(rung),
                chunks: self.cfg.segment_chunks(rung),
                chunks_received: 0,
            });
            out.push(AbrOutgoing {
                at: now,
                transport_seq: self.next_seq,
                size_bytes: self.cfg.request_bytes,
                payload: AbrPayload::SegmentRequest { segment, rung },
            });
            self.next_seq += 1;
        }
    }

    /// A segment chunk arrived at `at`. Completing a segment credits the
    /// buffer, updates the throughput estimate, and may start or resume
    /// playback.
    pub fn on_chunk(&mut self, at: SimTime, payload: &AbrPayload) {
        let AbrPayload::SegmentChunk { segment, .. } = payload else {
            return;
        };
        let Some(f) = self.in_flight.as_mut() else {
            return;
        };
        if f.segment != *segment {
            return;
        }
        f.chunks_received += 1;
        if f.chunks_received < f.chunks {
            return;
        }
        let f = self.in_flight.take().expect("checked above");
        self.buffer_us += self.cfg.segment_duration.as_micros();
        self.segments_fetched += 1;
        self.rung = f.rung;
        let elapsed_us = at.as_micros().saturating_sub(f.requested_us).max(1);
        let sample_bps = f.bytes as f64 * 8.0 * 1_000_000.0 / elapsed_us as f64;
        self.est_bps = if self.est_bps == 0.0 {
            sample_bps
        } else {
            self.cfg.ewma_alpha * sample_bps + (1.0 - self.cfg.ewma_alpha) * self.est_bps
        };
        let resume_us = self.cfg.startup_buffer.as_micros();
        if !self.started {
            if self.buffer_us >= resume_us {
                self.started = true;
            }
        } else if self.stalled && self.buffer_us >= resume_us {
            self.stalled = false;
            self.events.stall_ended_ms = Some(self.cur_stall_us / 1_000);
            self.cur_stall_us = 0;
        }
    }

    fn choose_rung(&self) -> u8 {
        let ladder = &self.cfg.ladder;
        match self.cfg.algorithm {
            AbrAlgorithm::ThroughputRule => {
                if self.est_bps <= 0.0 {
                    return 0;
                }
                let budget = self.cfg.throughput_safety * self.est_bps;
                let mut best = 0u8;
                for (i, r) in ladder.iter().enumerate() {
                    if (r.bitrate_bps as f64) <= budget {
                        best = i as u8;
                    }
                }
                best
            }
            AbrAlgorithm::BufferRule => {
                let target = self.cfg.buffer_target.as_micros().max(1);
                let idx = self.buffer_us * ladder.len() as u64 / target;
                idx.min(ladder.len() as u64 - 1) as u8
            }
        }
    }

    /// 50 ms playback sample at `now`.
    pub fn sample_stats(&self, now: SimTime) -> PlaybackStatsRecord {
        PlaybackStatsRecord {
            ts: now,
            buffer_ms: self.buffer_us as f64 / 1_000.0,
            started: self.started,
            stalled: self.stalled,
            total_stall_ms: self.total_stall_us as f64 / 1_000.0,
            stall_count: self.stall_count,
            rung: self.rung,
            resolution: self.cfg.ladder[self.rung as usize].resolution,
            target_rung: self.target_rung,
            est_throughput_bps: self.est_bps,
            segments_fetched: self.segments_fetched,
        }
    }

    /// Drains the tick's playback state changes (resets on read).
    pub fn take_events(&mut self) -> AbrTickEvents {
        std::mem::take(&mut self.events)
    }

    /// Total distinct stalls so far.
    pub fn stall_count(&self) -> u32 {
        self.stall_count
    }

    /// Total controller rung changes so far.
    pub fn ladder_switches(&self) -> u32 {
        self.ladder_switches
    }

    /// Segments fully downloaded so far.
    pub fn segments_fetched(&self) -> u32 {
        self.segments_fetched
    }
}

/// The wired origin server: answers requests with paced chunk trains.
#[derive(Debug, Clone)]
pub struct AbrServer {
    cfg: AbrConfig,
    queue: VecDeque<AbrOutgoing>,
    next_seq: u64,
    next_free_us: u64,
}

impl AbrServer {
    /// Creates the origin for one session.
    pub fn new(cfg: AbrConfig) -> Self {
        AbrServer {
            cfg,
            queue: VecDeque::new(),
            next_seq: 0,
            next_free_us: 0,
        }
    }

    /// A segment request arrived at `at`: schedule the segment's chunks,
    /// paced at the egress rate, FIFO across requests.
    pub fn on_request(&mut self, at: SimTime, payload: &AbrPayload) {
        let AbrPayload::SegmentRequest { segment, rung } = payload else {
            return;
        };
        let bytes = self.cfg.segment_bytes(*rung);
        let chunks = self.cfg.segment_chunks(*rung);
        let gap = self.cfg.chunk_gap_us();
        let start = at.as_micros().max(self.next_free_us);
        for i in 0..chunks {
            let size = if i + 1 == chunks {
                (bytes - (chunks as u64 - 1) * self.cfg.mtu as u64) as u32
            } else {
                self.cfg.mtu
            };
            self.queue.push_back(AbrOutgoing {
                at: SimTime::from_micros(start + (i as u64 + 1) * gap),
                transport_seq: self.next_seq,
                size_bytes: size,
                payload: AbrPayload::SegmentChunk {
                    segment: *segment,
                    chunk: i,
                    chunks_in_segment: chunks,
                    rung: *rung,
                },
            });
            self.next_seq += 1;
        }
        self.next_free_us = start + chunks as u64 * gap;
    }

    /// Emits every chunk due by `now`.
    pub fn poll_into(&mut self, now: SimTime, out: &mut Vec<AbrOutgoing>) {
        while self.queue.front().is_some_and(|c| c.at <= now) {
            out.push(self.queue.pop_front().expect("non-empty"));
        }
    }

    /// Chunks scheduled but not yet departed.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(client: &mut AbrClient, server: &mut AbrServer, ms: u64, delay_ms: u64) -> u32 {
        // A zero-jitter loopback harness: requests arrive after `delay_ms`,
        // chunks arrive `delay_ms` after departure.
        let now = SimTime::from_millis(ms);
        let mut out = Vec::new();
        client.poll_into(now, &mut out);
        for p in out.drain(..) {
            server.on_request(
                SimTime::from_micros(p.at.as_micros() + delay_ms * 1000),
                &p.payload,
            );
        }
        server.poll_into(now, &mut out);
        let mut delivered = 0;
        for p in out {
            client.on_chunk(
                SimTime::from_micros(p.at.as_micros() + delay_ms * 1000),
                &p.payload,
            );
            delivered += 1;
        }
        delivered
    }

    #[test]
    fn fast_network_reaches_top_rung_without_stalls() {
        let cfg = AbrConfig::default();
        let mut client = AbrClient::new(cfg.clone());
        let mut server = AbrServer::new(cfg);
        for ms in 1..30_000 {
            tick(&mut client, &mut server, ms, 5);
        }
        let s = client.sample_stats(SimTime::from_secs(30));
        assert!(s.started);
        assert_eq!(s.stall_count, 0, "no stalls on a fast clean path");
        assert_eq!(s.rung, 4, "throughput rule climbs to 1080p");
        assert!(s.segments_fetched > 20);
        assert!(s.buffer_ms > 1_000.0);
    }

    #[test]
    fn deterministic_replay_is_identical() {
        let run = || {
            let cfg = AbrConfig::default();
            let mut client = AbrClient::new(cfg.clone());
            let mut server = AbrServer::new(cfg);
            for ms in 1..10_000 {
                tick(&mut client, &mut server, ms, 12);
            }
            let s = client.sample_stats(SimTime::from_secs(10));
            (
                s.segments_fetched,
                s.rung,
                s.stall_count,
                s.buffer_ms.to_bits(),
                s.est_throughput_bps.to_bits(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn starved_path_stalls_and_recovers() {
        // Server egress capped below the lowest rung: every segment takes
        // longer than it plays, so the buffer drains into a stall.
        let cfg = AbrConfig {
            server_rate_bps: 300_000,
            ..AbrConfig::default()
        };
        let mut client = AbrClient::new(cfg.clone());
        let mut server = AbrServer::new(cfg);
        for ms in 1..30_000 {
            tick(&mut client, &mut server, ms, 5);
        }
        let s = client.sample_stats(SimTime::from_secs(30));
        assert!(s.started, "startup eventually completes");
        assert!(s.stall_count > 0, "sub-realtime path must stall");
        assert!(s.total_stall_ms > 0.0);
        assert_eq!(s.rung, 0, "starved controller stays at the bottom");
    }

    #[test]
    fn buffer_rule_switches_with_fill_level() {
        let cfg = AbrConfig {
            algorithm: AbrAlgorithm::BufferRule,
            ..AbrConfig::default()
        };
        let mut client = AbrClient::new(cfg.clone());
        let mut server = AbrServer::new(cfg);
        for ms in 1..30_000 {
            tick(&mut client, &mut server, ms, 5);
        }
        let s = client.sample_stats(SimTime::from_secs(30));
        assert!(s.started);
        assert!(
            client.ladder_switches() > 0,
            "buffer rule moves off the bottom rung as the buffer fills"
        );
        assert!(s.rung > 0);
    }

    #[test]
    fn segment_sizing_is_consistent() {
        let cfg = AbrConfig::default();
        for rung in 0..cfg.ladder.len() as u8 {
            let bytes = cfg.segment_bytes(rung);
            let chunks = cfg.segment_chunks(rung);
            assert!(chunks >= 1);
            assert!((chunks as u64 - 1) * (cfg.mtu as u64) < bytes);
            assert!(bytes <= chunks as u64 * cfg.mtu as u64);
        }
        // 6 Mbps × 1 s = 750 kB.
        assert_eq!(cfg.segment_bytes(4), 750_000);
    }

    #[test]
    fn tick_events_fire_on_transitions() {
        let cfg = AbrConfig {
            server_rate_bps: 300_000,
            ..AbrConfig::default()
        };
        let mut client = AbrClient::new(cfg.clone());
        let mut server = AbrServer::new(cfg);
        let mut starts = 0;
        let mut ends = 0;
        for ms in 1..60_000 {
            tick(&mut client, &mut server, ms, 5);
            let ev = client.take_events();
            starts += ev.stall_started as u32;
            if ev.stall_ended_ms.is_some() {
                ends += 1;
            }
        }
        assert_eq!(starts, client.stall_count());
        assert!(ends > 0, "stalls end when a segment lands");
    }
}
