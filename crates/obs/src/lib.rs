//! `domino-obs`: a no-deps metrics + span-tracing layer for the Domino
//! engines, built around three hard properties:
//!
//! 1. **Zero-cost when disabled.** A [`Recorder`] is a single
//!    `Option<Box<MetricSink>>`; every record method is `#[inline]` and
//!    early-returns on `None`, so a disabled recorder costs one predicted
//!    branch per site and never touches the clock.
//! 2. **Output-invisible when enabled.** Recording only *reads* engine
//!    state; nothing in this crate feeds back into simulation, analysis,
//!    or report encoding. `tests/obs_invisibility.rs` byte-diffs
//!    `ShardReport`s with the recorder off vs on.
//! 3. **Deterministic snapshots.** Metrics are split into two classes:
//!    [`Class::Sim`] metrics are derived purely from simulation state and
//!    accumulate in order-free integer form (u64 counters, fixed-layout
//!    histogram buckets, u128 sums, min/max), so per-worker shards merge
//!    to byte-identical totals at any thread count, shard count, or
//!    multiplex width. [`Class::Runtime`] metrics (wall-clock spans,
//!    allocation counts, pool/arena occupancy) are machine- and
//!    schedule-dependent and are kept out of the deterministic section of
//!    the [`snapshot::MetricsSnapshot`] wire format.
//!
//! Identifiers are fixed enums indexing flat arrays — no string hashing
//! and no heap allocation anywhere on the record path (the sink is one
//! up-front `Box`), which is what keeps the enabled recorder inside the
//! steady-state allocation budgets of `tests/allocation_steady_state.rs`.

pub mod snapshot;

use std::time::Instant;

pub use snapshot::{fnv1a64, MetricsSnapshot, SnapshotParseError};

/// Determinism class of a metric.
///
/// `Sim` metrics depend only on simulation inputs and are byte-identical
/// across partitionings; `Runtime` metrics describe the machine that ran
/// the simulation (wall time, allocator traffic, occupancy) and are
/// excluded from the deterministic section of the snapshot encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    Sim,
    Runtime,
}

macro_rules! metric_enum {
    ($(#[$doc:meta])* $vis:vis enum $name:ident {
        $($variant:ident => ($text:expr, $class:expr)),+ $(,)?
    }) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        $vis enum $name {
            $($variant),+
        }
        impl $name {
            pub const COUNT: usize = [$(Self::$variant),+].len();
            pub const ALL: [Self; Self::COUNT] = [$(Self::$variant),+];
            /// Stable wire name (sorted within each class — see the
            /// `names_are_sorted_per_class` test).
            #[inline]
            pub fn name(self) -> &'static str {
                match self { $(Self::$variant => $text),+ }
            }
            #[inline]
            pub fn class(self) -> Class {
                match self { $(Self::$variant => $class),+ }
            }
            #[inline]
            pub(crate) fn idx(self) -> usize {
                self as usize
            }
        }
    };
}

metric_enum! {
    /// Monotone counters (sum-merged).
    pub enum Counter {
        // -- deterministic (declaration order == sorted wire order) --
        // Telemetry-chaos families: injected faults are seeded per spec, so
        // the counts depend only on (spec, seed) and stay Sim-class.
        ChaosBlackoutDrops => ("chaos/blackout_drops", Class::Sim),
        ChaosRecordsDelayed => ("chaos/records_delayed", Class::Sim),
        ChaosRecordsDropped => ("chaos/records_dropped", Class::Sim),
        ChaosRecordsDuplicated => ("chaos/records_duplicated", Class::Sim),
        ChaosRecordsSkewed => ("chaos/records_skewed", Class::Sim),
        EngineEarlyExits => ("engine/early_exits", Class::Sim),
        EngineRouteEvents => ("engine/route_events", Class::Sim),
        EngineSessions => ("engine/sessions", Class::Sim),
        EngineSimTimeUs => ("engine/sim_time_us", Class::Sim),
        EngineTicks => ("engine/ticks", Class::Sim),
        LiveDegradedWindows => ("live/degraded_windows", Class::Sim),
        LiveLateDeliveries => ("live/late_deliveries", Class::Sim),
        LiveLateDrops => ("live/late_drops", Class::Sim),
        LiveRecordsSeen => ("live/records_seen", Class::Sim),
        LiveVerdicts => ("live/verdicts", Class::Sim),
        LiveWindows => ("live/windows", Class::Sim),
        NetJitterInversions => ("net/jitter_inversions", Class::Sim),
        NetLost => ("net/lost", Class::Sim),
        NetPackets => ("net/packets", Class::Sim),
        PlaybackLadderSwitches => ("playback/ladder_switches", Class::Sim),
        PlaybackStalls => ("playback/stalls", Class::Sim),
        RanDataSlots => ("ran/data_slots", Class::Sim),
        RanHarqRetx => ("ran/harq_retx", Class::Sim),
        RanPrbBudget => ("ran/prb_budget", Class::Sim),
        RanPrbGranted => ("ran/prb_granted", Class::Sim),
        // -- runtime --
        // Coordinator families: retry/steal/straggler traffic depends on
        // real-world failure timing (which workers died when), so the whole
        // family is Runtime — a chaos run and a clean run of the same grid
        // share identical Sim sections and differ only here.
        CoordCorruptReports => ("coord/corrupt_reports", Class::Runtime),
        CoordDispatches => ("coord/dispatches", Class::Runtime),
        CoordDuplicates => ("coord/duplicates_discarded", Class::Runtime),
        CoordRangesCompleted => ("coord/ranges_completed", Class::Runtime),
        CoordRetries => ("coord/retries", Class::Runtime),
        CoordSteals => ("coord/steals", Class::Runtime),
        CoordStragglerReissues => ("coord/straggler_reissues", Class::Runtime),
        CoordWorkerDeaths => ("coord/worker_deaths", Class::Runtime),
        CoordWorkerLiveMs => ("coord/worker_live_ms", Class::Runtime),
        MuxStaleDrops => ("mux/stale_drops", Class::Runtime),
        PoolCreated => ("pool/created", Class::Runtime),
        PoolEvicted => ("pool/evicted", Class::Runtime),
        PoolReused => ("pool/reused", Class::Runtime),
        ProcAllocs => ("proc/allocs", Class::Runtime),
        SweepWallNs => ("sweep/wall_ns", Class::Runtime),
    }
}

metric_enum! {
    /// Integer high-water gauges (max-merged, with an update count).
    pub enum Gauge {
        LivePeakRetained => ("live/peak_retained_records", Class::Sim),
        ArenaFootprint => ("arena/footprint_elems", Class::Runtime),
        CoordWorkersPeak => ("coord/workers_peak", Class::Runtime),
        MuxInFlightPeak => ("mux/in_flight_peak", Class::Runtime),
    }
}

metric_enum! {
    /// Floating-point high-water gauges (max-merged; `f64::NEG_INFINITY`
    /// until first update; encoded as hex IEEE-754 bit patterns).
    pub enum FGauge {
        RanPrbUtilPeak => ("ran/prb_util_peak", Class::Sim),
        AllocsPerTickPeak => ("proc/allocs_per_tick_peak", Class::Runtime),
    }
}

metric_enum! {
    /// Fixed-layout histograms (bucket-wise sum-merged). All `Sim`.
    pub enum HistId {
        LiveAdaptiveBoundMs => ("live/adaptive_bound_ms", Class::Sim),
        LiveDelayMs => ("live/delay_ms", Class::Sim),
        LiveDropRiskPct => ("live/drop_risk_pct", Class::Sim),
        LiveVerdictLatencyMs => ("live/verdict_latency_ms", Class::Sim),
        PlaybackBufferMs => ("playback/buffer_ms", Class::Sim),
        PlaybackStallMs => ("playback/stall_ms", Class::Sim),
        RanPrbUtilPct => ("ran/prb_util_pct", Class::Sim),
        RanRlcQueueBytes => ("ran/rlc_queue_bytes", Class::Sim),
        RtcPacerBacklog => ("rtc/pacer_backlog_pkts", Class::Sim),
    }
}

metric_enum! {
    /// Phase spans: deterministic sim progress is counted separately
    /// (`engine/ticks`, `engine/sim_time_us`, `engine/route_events`);
    /// span call/wall tallies depend on drivers and widths, so the whole
    /// span family is `Runtime`.
    pub enum SpanId {
        BeginTick => ("engine/begin_tick", Class::Runtime),
        EndTick => ("engine/end_tick", Class::Runtime),
        RouteDrain => ("engine/route_drain", Class::Runtime),
    }
}

impl HistId {
    /// The compiled-in bucket layout for this histogram.
    #[inline]
    pub fn layout(self) -> HistLayout {
        match self {
            HistId::LiveAdaptiveBoundMs => HistLayout::Log2(17),
            HistId::LiveDelayMs => HistLayout::Log2(17),
            HistId::LiveDropRiskPct => HistLayout::Pct10,
            HistId::LiveVerdictLatencyMs => HistLayout::Log2(17),
            HistId::PlaybackBufferMs => HistLayout::Log2(17),
            HistId::PlaybackStallMs => HistLayout::Log2(17),
            HistId::RanPrbUtilPct => HistLayout::Pct10,
            HistId::RanRlcQueueBytes => HistLayout::Log2(22),
            HistId::RtcPacerBacklog => HistLayout::Log2(12),
        }
    }
}

/// Histogram bucket layouts. Fixed at compile time so bucket counts merge
/// without negotiation and the snapshot format never carries boundaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistLayout {
    /// Eleven buckets over a percentage: `[0,10) [10,20) … [90,100) [100]`.
    Pct10,
    /// `n` power-of-two buckets: bucket 0 holds zero, bucket `i ≥ 1` holds
    /// `[2^(i-1), 2^i)`, the last bucket saturates.
    Log2(u32),
}

impl HistLayout {
    #[inline]
    pub fn buckets(self) -> usize {
        match self {
            HistLayout::Pct10 => 11,
            HistLayout::Log2(n) => n as usize,
        }
    }

    /// Bucket index for a value — O(1), integer-only.
    #[inline]
    pub fn index(self, v: u64) -> usize {
        match self {
            HistLayout::Pct10 => ((v / 10) as usize).min(10),
            HistLayout::Log2(n) => {
                if v == 0 {
                    0
                } else {
                    ((64 - v.leading_zeros()) as usize).min(n as usize - 1)
                }
            }
        }
    }

    /// Inclusive-lower / exclusive-upper value bounds of bucket `i`,
    /// used for quantile interpolation and dashboard rendering.
    pub fn bounds(self, i: usize) -> (u64, u64) {
        match self {
            HistLayout::Pct10 => {
                if i >= 10 {
                    (100, 101)
                } else {
                    (10 * i as u64, 10 * (i as u64 + 1))
                }
            }
            HistLayout::Log2(_) => {
                if i == 0 {
                    (0, 1)
                } else {
                    (
                        1u64 << (i - 1),
                        1u64.checked_shl(i as u32).unwrap_or(u64::MAX),
                    )
                }
            }
        }
    }
}

/// Widest layout — sizes the flat bucket arrays.
pub const MAX_BUCKETS: usize = 24;

/// One histogram's accumulated state. All fields are order-free integer
/// aggregates, so any partition of the observations merges to identical
/// bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistData {
    pub counts: [u64; MAX_BUCKETS],
    pub count: u64,
    pub sum: u128,
    /// `u64::MAX` until the first observation.
    pub min: u64,
    pub max: u64,
}

impl HistData {
    pub const EMPTY: HistData = HistData {
        counts: [0; MAX_BUCKETS],
        count: 0,
        sum: 0,
        min: u64::MAX,
        max: 0,
    };

    #[inline]
    pub fn record(&mut self, layout: HistLayout, v: u64) {
        self.counts[layout.index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn merge(&mut self, other: &HistData) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl Default for HistData {
    fn default() -> Self {
        Self::EMPTY
    }
}

/// One wall-clock span's accumulated state (`Runtime` class).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanData {
    pub calls: u64,
    /// Calls on which the wall clock was actually read (every
    /// `wall_sample_every`-th call).
    pub sampled: u64,
    pub wall_ns: u64,
    since: u32,
}

/// Opaque token returned by [`Recorder::span_enter`]; `None` inside means
/// either the recorder is off or this call was not wall-sampled.
#[must_use]
pub struct SpanToken(Option<Instant>);

/// Recorder configuration, carried by `SweepOptions`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    pub enabled: bool,
    /// Read the wall clock on every Nth span entry (1 = every entry).
    /// Sampling bounds `Instant::now` traffic on the per-tick hot path;
    /// it never affects `Sim`-class metrics.
    pub wall_sample_every: u32,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: false,
            wall_sample_every: 64,
        }
    }
}

impl ObsConfig {
    /// Enabled, with default wall sampling.
    pub fn on() -> Self {
        ObsConfig {
            enabled: true,
            ..Default::default()
        }
    }

    /// Enabled at full sampling: every span entry reads the wall clock.
    pub fn full() -> Self {
        ObsConfig {
            enabled: true,
            wall_sample_every: 1,
        }
    }
}

/// Flat per-worker metric storage: one slot per compiled metric id.
/// Allocated once (boxed) when a recorder is enabled; never grows.
#[derive(Clone, Debug)]
pub struct MetricSink {
    counters: [u64; Counter::COUNT],
    gauges: [(u64, u64); Gauge::COUNT],
    fgauges: [(f64, u64); FGauge::COUNT],
    hists: [HistData; HistId::COUNT],
    spans: [SpanData; SpanId::COUNT],
    wall_every: u32,
}

impl MetricSink {
    fn new(wall_every: u32) -> Self {
        MetricSink {
            counters: [0; Counter::COUNT],
            gauges: [(0, 0); Gauge::COUNT],
            fgauges: [(f64::NEG_INFINITY, 0); FGauge::COUNT],
            hists: [HistData::EMPTY; HistId::COUNT],
            spans: [SpanData::default(); SpanId::COUNT],
            wall_every: wall_every.max(1),
        }
    }
}

/// The instrumentation handle threaded through engine scratch state.
///
/// Disabled (`Recorder::off`, also `Default`) it is a null pointer-sized
/// option; every method is an inlined early return.
#[derive(Debug, Default)]
pub struct Recorder {
    sink: Option<Box<MetricSink>>,
}

impl Recorder {
    /// A disabled recorder: every record call is a no-op.
    pub fn off() -> Self {
        Recorder { sink: None }
    }

    pub fn new(cfg: ObsConfig) -> Self {
        Recorder {
            sink: cfg
                .enabled
                .then(|| Box::new(MetricSink::new(cfg.wall_sample_every))),
        }
    }

    #[inline]
    pub fn is_on(&self) -> bool {
        self.sink.is_some()
    }

    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        if let Some(s) = &mut self.sink {
            s.counters[c.idx()] += n;
        }
    }

    #[inline]
    pub fn gauge_max(&mut self, g: Gauge, v: u64) {
        if let Some(s) = &mut self.sink {
            let slot = &mut s.gauges[g.idx()];
            slot.0 = slot.0.max(v);
            slot.1 += 1;
        }
    }

    #[inline]
    pub fn fgauge_max(&mut self, g: FGauge, v: f64) {
        if let Some(s) = &mut self.sink {
            let slot = &mut s.fgauges[g.idx()];
            if v > slot.0 {
                slot.0 = v;
            }
            slot.1 += 1;
        }
    }

    #[inline]
    pub fn observe(&mut self, h: HistId, v: u64) {
        if let Some(s) = &mut self.sink {
            s.hists[h.idx()].record(h.layout(), v);
        }
    }

    /// Enters a span: counts the call and — every Nth call — captures the
    /// wall clock. Pair with [`Self::span_exit`].
    #[inline]
    pub fn span_enter(&mut self, id: SpanId) -> SpanToken {
        let Some(s) = &mut self.sink else {
            return SpanToken(None);
        };
        let d = &mut s.spans[id.idx()];
        d.calls += 1;
        d.since += 1;
        if d.since >= s.wall_every {
            d.since = 0;
            d.sampled += 1;
            SpanToken(Some(Instant::now()))
        } else {
            SpanToken(None)
        }
    }

    #[inline]
    pub fn span_exit(&mut self, id: SpanId, token: SpanToken) {
        if let Some(start) = token.0 {
            if let Some(s) = &mut self.sink {
                s.spans[id.idx()].wall_ns += start.elapsed().as_nanos() as u64;
            }
        }
    }

    /// Merges an externally accumulated histogram (e.g. the live delay
    /// estimator's per-session [`HistData`]) into this recorder's slot for
    /// `h`. The caller must have recorded with the same [`HistLayout`] as
    /// `h.layout()` for the bucket counts to be meaningful.
    #[inline]
    pub fn absorb_hist(&mut self, h: HistId, d: &HistData) {
        if let Some(s) = &mut self.sink {
            s.hists[h.idx()].merge(d);
        }
    }

    /// Folds a cell's per-slot accumulator into this recorder.
    pub fn absorb_ran(&mut self, o: &RanCellObs) {
        if let Some(s) = &mut self.sink {
            s.counters[Counter::RanDataSlots.idx()] += o.data_slots;
            s.counters[Counter::RanHarqRetx.idx()] += o.harq_retx;
            s.counters[Counter::RanPrbGranted.idx()] += o.prb_granted;
            s.counters[Counter::RanPrbBudget.idx()] += o.prb_budget;
            s.hists[HistId::RanPrbUtilPct.idx()].merge(&o.prb_util);
            s.hists[HistId::RanRlcQueueBytes.idx()].merge(&o.rlc_queue);
        }
        // The fgauge update must count even distinct workers equally, so
        // route it through the public path (no-op when off).
        if o.prb_util.count > 0 {
            self.fgauge_max(FGauge::RanPrbUtilPeak, o.prb_util_peak);
        }
    }

    // -- read-side accessors (progress reporting, tests) -----------------

    pub fn counter(&self, c: Counter) -> u64 {
        self.sink.as_ref().map_or(0, |s| s.counters[c.idx()])
    }

    pub fn gauge(&self, g: Gauge) -> u64 {
        self.sink.as_ref().map_or(0, |s| s.gauges[g.idx()].0)
    }

    /// A deterministic-plus-runtime snapshot of everything recorded so
    /// far; `None` when the recorder is off.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.sink.as_deref().map(MetricsSnapshot::from_sink)
    }

    /// Takes a snapshot and clears the sink (the recorder stays enabled).
    pub fn take_snapshot(&mut self) -> Option<MetricsSnapshot> {
        let snap = self.snapshot();
        if let Some(s) = &mut self.sink {
            **s = MetricSink::new(s.wall_every);
        }
        snap
    }
}

/// Borrowed views of a sink's metric families, in declaration order.
pub(crate) type SinkParts<'a> = (
    &'a [u64; Counter::COUNT],
    &'a [(u64, u64); Gauge::COUNT],
    &'a [(f64, u64); FGauge::COUNT],
    &'a [HistData; HistId::COUNT],
    &'a [SpanData; SpanId::COUNT],
);

pub(crate) fn sink_parts(s: &MetricSink) -> SinkParts<'_> {
    (&s.counters, &s.gauges, &s.fgauges, &s.hists, &s.spans)
}

/// Per-cell slot-granularity accumulator, owned by `ran::CellSim` while
/// observability is on (the cell's inner loop stays free of recorder
/// plumbing; the session absorbs this into its worker recorder at
/// finish). All integer, all sim-deterministic.
#[derive(Clone, Debug)]
pub struct RanCellObs {
    pub data_slots: u64,
    pub harq_retx: u64,
    pub prb_granted: u64,
    pub prb_budget: u64,
    pub prb_util_peak: f64,
    prb_util: HistData,
    rlc_queue: HistData,
}

impl RanCellObs {
    #[allow(clippy::new_ret_no_self)]
    pub fn boxed() -> Box<Self> {
        Box::new(RanCellObs {
            data_slots: 0,
            harq_retx: 0,
            prb_granted: 0,
            prb_budget: 0,
            prb_util_peak: 0.0,
            prb_util: HistData::EMPTY,
            rlc_queue: HistData::EMPTY,
        })
    }

    /// One data-capable slot processed.
    #[inline]
    pub fn on_slot(&mut self) {
        self.data_slots += 1;
    }

    /// One scheduler direction pass: `used` of `budget` PRBs granted.
    #[inline]
    pub fn on_direction_pass(&mut self, used: u32, budget: u32) {
        self.prb_granted += u64::from(used);
        self.prb_budget += u64::from(budget);
        if budget > 0 {
            let pct = u64::from(used) * 100 / u64::from(budget);
            self.prb_util.record(HistLayout::Pct10, pct);
            let frac = f64::from(used) / f64::from(budget);
            if frac > self.prb_util_peak {
                self.prb_util_peak = frac;
            }
        }
    }

    #[inline]
    pub fn on_harq_retx(&mut self, n: u64) {
        self.harq_retx += n;
    }

    /// Samples one RLC queue depth (bytes) — called per UE per sampled
    /// slot, so the histogram is a per-UE queue-depth distribution.
    #[inline]
    pub fn sample_queue(&mut self, bytes: u64) {
        self.rlc_queue.record(HistLayout::Log2(22), bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_sorted(names: &[&str], what: &str) {
        for w in names.windows(2) {
            assert!(w[0] < w[1], "{what}: {:?} !< {:?}", w[0], w[1]);
        }
    }

    /// The snapshot wire format emits declaration order per class; the
    /// sorted-keys discipline therefore requires sorted declarations.
    #[test]
    fn names_are_sorted_per_class() {
        for class in [Class::Sim, Class::Runtime] {
            let c: Vec<_> = Counter::ALL
                .iter()
                .filter(|c| c.class() == class)
                .map(|c| c.name())
                .collect();
            assert_sorted(&c, "counters");
            let g: Vec<_> = Gauge::ALL
                .iter()
                .filter(|g| g.class() == class)
                .map(|g| g.name())
                .collect();
            assert_sorted(&g, "gauges");
            let f: Vec<_> = FGauge::ALL
                .iter()
                .filter(|f| f.class() == class)
                .map(|f| f.name())
                .collect();
            assert_sorted(&f, "fgauges");
        }
        let h: Vec<_> = HistId::ALL.iter().map(|h| h.name()).collect();
        assert_sorted(&h, "hists");
        let s: Vec<_> = SpanId::ALL.iter().map(|s| s.name()).collect();
        assert_sorted(&s, "spans");
    }

    #[test]
    fn layouts_fit_max_buckets() {
        for h in HistId::ALL {
            assert!(h.layout().buckets() <= MAX_BUCKETS, "{}", h.name());
        }
    }

    #[test]
    fn log2_layout_indexes_boundaries() {
        let l = HistLayout::Log2(12);
        assert_eq!(l.index(0), 0);
        assert_eq!(l.index(1), 1);
        assert_eq!(l.index(2), 2);
        assert_eq!(l.index(3), 2);
        assert_eq!(l.index(4), 3);
        assert_eq!(l.index(u64::MAX), 11);
        for i in 0..l.buckets() {
            let (lo, hi) = l.bounds(i);
            assert_eq!(l.index(lo), i);
            if i + 1 < l.buckets() {
                assert_eq!(l.index(hi - 1), i);
                assert_eq!(l.index(hi), i + 1);
            }
        }
    }

    #[test]
    fn pct10_layout_clamps() {
        let l = HistLayout::Pct10;
        assert_eq!(l.index(0), 0);
        assert_eq!(l.index(9), 0);
        assert_eq!(l.index(10), 1);
        assert_eq!(l.index(99), 9);
        assert_eq!(l.index(100), 10);
        assert_eq!(l.index(400), 10);
    }

    #[test]
    fn disabled_recorder_reads_zero_and_never_allocates_spans() {
        let mut r = Recorder::off();
        r.add(Counter::EngineTicks, 5);
        r.observe(HistId::RanPrbUtilPct, 50);
        let t = r.span_enter(SpanId::BeginTick);
        r.span_exit(SpanId::BeginTick, t);
        assert!(!r.is_on());
        assert_eq!(r.counter(Counter::EngineTicks), 0);
        assert!(r.snapshot().is_none());
    }

    #[test]
    fn merge_is_partition_invariant() {
        let feed = |r: &mut Recorder, vals: &[u64]| {
            for &v in vals {
                r.add(Counter::EngineTicks, 1);
                r.observe(HistId::RanRlcQueueBytes, v);
                r.gauge_max(Gauge::LivePeakRetained, v);
                r.fgauge_max(FGauge::RanPrbUtilPeak, v as f64 / 100.0);
            }
        };
        let vals: Vec<u64> = (0..257u64).map(|i| i * i % 1013).collect();

        let mut whole = Recorder::new(ObsConfig::full());
        feed(&mut whole, &vals);
        let whole = whole.snapshot().unwrap();

        let (a, b) = vals.split_at(71);
        let mut ra = Recorder::new(ObsConfig::full());
        let mut rb = Recorder::new(ObsConfig::full());
        feed(&mut ra, b); // reversed order on purpose
        feed(&mut rb, a);
        let mut merged = rb.snapshot().unwrap();
        merged.merge(&ra.snapshot().unwrap());

        assert_eq!(whole.encode(), merged.encode());
    }
}
