//! The versioned plain-text `MetricsSnapshot` wire format.
//!
//! Follows the `ShardReport` discipline: tab-separated fields, a version
//! header, floats as hex IEEE-754 bit patterns, sorted keys, strict
//! parse-time validation, and one canonical encoding (parse → re-encode
//! is byte-identical). Two sections:
//!
//! ```text
//! domino-metrics\tv1
//! section\tsim                      # deterministic: byte-identical at any
//! counter\t<name>\t<u64>            #   thread/shard/mux partitioning
//! gauge\t<name>\t<max>\t<updates>
//! fgauge\t<name>\t<hex f64 bits>\t<updates>
//! hist\t<name>\t<buckets>\t<count>\t<sum>\t<min>\t<max>\t<c0>\t…
//! section\truntime                  # optional: wall clocks, occupancy —
//! counter\t…                        #   machine-dependent, excluded from
//! span\t<name>\t<calls>\t<sampled>\t<wall_ns>   # byte-compares
//! end\tdomino-metrics\t<fnv1a-64 of everything above>
//! ```
//!
//! Within each section, lines are grouped by kind (counter, gauge,
//! fgauge, hist, span) and sorted by metric name. The trailing checksum
//! makes any single-byte corruption a parse error; structural validation
//! (known names, exact layout widths, `count == Σ buckets`,
//! `min·count ≤ sum ≤ max·count`) rejects semantic tampering even where a
//! forger recomputes the checksum.

use std::fmt;
use std::fmt::Write as _;

use crate::{
    sink_parts, Class, Counter, FGauge, Gauge, HistData, HistId, MetricSink, SpanData, SpanId,
};

/// First line of every encoded snapshot.
pub const FORMAT_HEADER: &str = "domino-metrics\tv1";
const END_TAG: &str = "end\tdomino-metrics";

/// A merged, order-free aggregate of everything one or more [`crate::Recorder`]s
/// observed. Fixed shape: one slot per compiled metric id.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    counters: [u64; Counter::COUNT],
    gauges: [(u64, u64); Gauge::COUNT],
    fgauges: [(f64, u64); FGauge::COUNT],
    hists: [HistData; HistId::COUNT],
    spans: [SpanData; SpanId::COUNT],
    /// Whether the runtime (machine-dependent) section is populated and
    /// should be carried by [`Self::encode`].
    pub has_runtime: bool,
}

/// Why a snapshot failed to parse. Every variant is a hard error: the
/// format has exactly one canonical form and anything else is rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotParseError {
    /// Missing or wrong `domino-metrics\tv1` header.
    Header,
    /// Input ended before the canonical line sequence did.
    Truncated,
    /// A line did not match the expected kind/name/field count.
    Malformed { line: usize, want: &'static str },
    /// A numeric field failed to parse.
    Number { line: usize },
    /// Internally inconsistent values (histogram totals, min/max order).
    Inconsistent { line: usize, what: &'static str },
    /// The trailing FNV-1a checksum did not match the content.
    Checksum,
    /// Bytes after the `end` line.
    Trailing { line: usize },
}

impl fmt::Display for SnapshotParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotParseError::Header => write!(f, "missing `{FORMAT_HEADER}` header"),
            SnapshotParseError::Truncated => write!(f, "input truncated"),
            SnapshotParseError::Malformed { line, want } => {
                write!(f, "line {line}: expected {want}")
            }
            SnapshotParseError::Number { line } => write!(f, "line {line}: bad numeric field"),
            SnapshotParseError::Inconsistent { line, what } => {
                write!(f, "line {line}: inconsistent {what}")
            }
            SnapshotParseError::Checksum => write!(f, "checksum mismatch"),
            SnapshotParseError::Trailing { line } => write!(f, "line {line}: trailing data"),
        }
    }
}

impl std::error::Error for SnapshotParseError {}

/// FNV-1a 64-bit over the raw bytes — the workspace's shared wire-format
/// checksum (used by this snapshot encoding and by `ShardReport`'s
/// trailer, so corrupted-in-transit reports fail parse instead of folding
/// bad numbers into a merge).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl MetricsSnapshot {
    /// An all-zero snapshot (useful as a merge identity).
    pub fn empty() -> Self {
        MetricsSnapshot {
            counters: [0; Counter::COUNT],
            gauges: [(0, 0); Gauge::COUNT],
            fgauges: [(f64::NEG_INFINITY, 0); FGauge::COUNT],
            hists: [HistData::EMPTY; HistId::COUNT],
            spans: [SpanData::default(); SpanId::COUNT],
            has_runtime: false,
        }
    }

    pub(crate) fn from_sink(sink: &MetricSink) -> Self {
        let (counters, gauges, fgauges, hists, spans) = sink_parts(sink);
        let mut spans = *spans;
        for s in &mut spans {
            // The sampling phase is recorder-internal state, not data.
            *s = SpanData {
                calls: s.calls,
                sampled: s.sampled,
                wall_ns: s.wall_ns,
                ..SpanData::default()
            };
        }
        MetricsSnapshot {
            counters: *counters,
            gauges: *gauges,
            fgauges: *fgauges,
            hists: *hists,
            spans,
            has_runtime: true,
        }
    }

    // -- accessors --------------------------------------------------------

    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.idx()]
    }

    /// `(high_water, updates)`.
    pub fn gauge(&self, g: Gauge) -> (u64, u64) {
        self.gauges[g.idx()]
    }

    /// `(high_water, updates)`; the value is `f64::NEG_INFINITY` until
    /// the first update.
    pub fn fgauge(&self, g: FGauge) -> (f64, u64) {
        self.fgauges[g.idx()]
    }

    pub fn hist(&self, h: HistId) -> &HistData {
        &self.hists[h.idx()]
    }

    pub fn span(&self, s: SpanId) -> SpanData {
        self.spans[s.idx()]
    }

    /// Linearly-interpolated quantile (`q` in `[0,1]`) from the fixed
    /// bucket layout — deterministic given a deterministic histogram.
    pub fn quantile(&self, h: HistId, q: f64) -> f64 {
        let d = &self.hists[h.idx()];
        if d.count == 0 {
            return 0.0;
        }
        let layout = h.layout();
        let target = q.clamp(0.0, 1.0) * d.count as f64;
        let mut cum = 0.0f64;
        for (i, &c) in d.counts.iter().enumerate().take(layout.buckets()) {
            let c = c as f64;
            if c > 0.0 && cum + c >= target {
                let (lo, hi) = layout.bounds(i);
                let (lo, hi) = (lo as f64, hi as f64);
                let frac = ((target - cum) / c).clamp(0.0, 1.0);
                return (lo + (hi - lo) * frac).min(d.max as f64);
            }
            cum += c;
        }
        d.max as f64
    }

    // -- merge ------------------------------------------------------------

    /// Element-wise, order-free merge: counters sum, gauges take the max,
    /// histograms add bucket-wise. Merging in any order yields identical
    /// bytes.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += *b;
        }
        for (a, b) in self.gauges.iter_mut().zip(other.gauges.iter()) {
            a.0 = a.0.max(b.0);
            a.1 += b.1;
        }
        for (a, b) in self.fgauges.iter_mut().zip(other.fgauges.iter()) {
            if b.0 > a.0 {
                a.0 = b.0;
            }
            a.1 += b.1;
        }
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
        for (a, b) in self.spans.iter_mut().zip(other.spans.iter()) {
            a.calls += b.calls;
            a.sampled += b.sampled;
            a.wall_ns += b.wall_ns;
        }
        self.has_runtime |= other.has_runtime;
    }

    // -- encode -----------------------------------------------------------

    /// Canonical encoding; includes the runtime section iff
    /// [`Self::has_runtime`]. `parse(encode(x)) == x` and
    /// `encode(parse(t)) == t`.
    pub fn encode(&self) -> String {
        self.encode_with(self.has_runtime)
    }

    /// Deterministic section only — this is what CI byte-compares across
    /// thread counts, shard counts, and multiplex widths.
    pub fn encode_sim(&self) -> String {
        self.encode_with(false)
    }

    fn encode_with(&self, runtime: bool) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(FORMAT_HEADER);
        out.push('\n');
        self.encode_section(&mut out, Class::Sim);
        if runtime {
            self.encode_section(&mut out, Class::Runtime);
        }
        let sum = fnv1a64(out.as_bytes());
        let _ = writeln!(out, "{END_TAG}\t{sum:016x}");
        out
    }

    fn encode_section(&self, out: &mut String, class: Class) {
        let name = match class {
            Class::Sim => "sim",
            Class::Runtime => "runtime",
        };
        let _ = writeln!(out, "section\t{name}");
        for c in Counter::ALL.iter().filter(|c| c.class() == class) {
            let _ = writeln!(out, "counter\t{}\t{}", c.name(), self.counters[c.idx()]);
        }
        for g in Gauge::ALL.iter().filter(|g| g.class() == class) {
            let (v, n) = self.gauges[g.idx()];
            let _ = writeln!(out, "gauge\t{}\t{v}\t{n}", g.name());
        }
        for g in FGauge::ALL.iter().filter(|g| g.class() == class) {
            let (v, n) = self.fgauges[g.idx()];
            let _ = writeln!(out, "fgauge\t{}\t{:016x}\t{n}", g.name(), v.to_bits());
        }
        for h in HistId::ALL.iter().filter(|h| h.class() == class) {
            let d = &self.hists[h.idx()];
            let nb = h.layout().buckets();
            let _ = write!(
                out,
                "hist\t{}\t{nb}\t{}\t{}\t{}\t{}",
                h.name(),
                d.count,
                d.sum,
                d.min,
                d.max
            );
            for &c in &d.counts[..nb] {
                let _ = write!(out, "\t{c}");
            }
            out.push('\n');
        }
        for s in SpanId::ALL.iter().filter(|s| s.class() == class) {
            let d = self.spans[s.idx()];
            let _ = writeln!(
                out,
                "span\t{}\t{}\t{}\t{}",
                s.name(),
                d.calls,
                d.sampled,
                d.wall_ns
            );
        }
    }

    // -- parse ------------------------------------------------------------

    /// Strict parse of the canonical form. Rejects unknown names, wrong
    /// ordering, layout-width mismatches, inconsistent totals, trailing
    /// bytes, and any content whose FNV-1a checksum does not match.
    pub fn parse(text: &str) -> Result<Self, SnapshotParseError> {
        let mut cur = Cursor {
            text,
            pos: 0,
            line: 0,
        };
        let mut snap = Self::empty();

        if cur.next_line()? != FORMAT_HEADER {
            return Err(SnapshotParseError::Header);
        }
        snap.parse_section(&mut cur, Class::Sim)?;

        let before_end = cur.pos;
        let mut line = cur.next_line()?;
        if line == "section\truntime" {
            cur.rewind(before_end);
            snap.parse_section(&mut cur, Class::Runtime)?;
            snap.has_runtime = true;
            line = cur.next_line()?;
        }
        let content = &text[..cur.pos - line.len() - 1];
        let mut f = line.split('\t');
        if (f.next(), f.next()) != (Some("end"), Some("domino-metrics")) {
            return Err(SnapshotParseError::Malformed {
                line: cur.line,
                want: "end trailer",
            });
        }
        let sum_field = f.next().ok_or(SnapshotParseError::Checksum)?;
        if f.next().is_some() {
            return Err(SnapshotParseError::Malformed {
                line: cur.line,
                want: "end trailer",
            });
        }
        // String-compare against the canonical rendering so a re-cased or
        // re-padded checksum field can't sneak through.
        if sum_field != format!("{:016x}", fnv1a64(content.as_bytes())) {
            return Err(SnapshotParseError::Checksum);
        }
        if cur.pos != text.len() {
            return Err(SnapshotParseError::Trailing { line: cur.line + 1 });
        }
        Ok(snap)
    }

    fn parse_section(
        &mut self,
        cur: &mut Cursor<'_>,
        class: Class,
    ) -> Result<(), SnapshotParseError> {
        let want = match class {
            Class::Sim => "section\tsim",
            Class::Runtime => "section\truntime",
        };
        if cur.next_line()? != want {
            return Err(SnapshotParseError::Malformed {
                line: cur.line,
                want: "section header",
            });
        }
        for c in Counter::ALL.iter().filter(|c| c.class() == class) {
            let mut f = Fields::open(cur, "counter", c.name())?;
            self.counters[c.idx()] = f.u64()?;
            f.close()?;
        }
        for g in Gauge::ALL.iter().filter(|g| g.class() == class) {
            let mut f = Fields::open(cur, "gauge", g.name())?;
            self.gauges[g.idx()] = (f.u64()?, f.u64()?);
            f.close()?;
        }
        for g in FGauge::ALL.iter().filter(|g| g.class() == class) {
            let mut f = Fields::open(cur, "fgauge", g.name())?;
            self.fgauges[g.idx()] = (f.f64_bits()?, f.u64()?);
            f.close()?;
        }
        for h in HistId::ALL.iter().filter(|h| h.class() == class) {
            let mut f = Fields::open(cur, "hist", h.name())?;
            let nb = f.u64()? as usize;
            if nb != h.layout().buckets() {
                return Err(SnapshotParseError::Inconsistent {
                    line: f.line,
                    what: "histogram bucket layout",
                });
            }
            let mut d = HistData::EMPTY;
            d.count = f.u64()?;
            d.sum = f.u128()?;
            d.min = f.u64()?;
            d.max = f.u64()?;
            let mut total = 0u64;
            for slot in d.counts.iter_mut().take(nb) {
                *slot = f.u64()?;
                total += *slot;
            }
            let line = f.line;
            f.close()?;
            let ok = if d.count == 0 {
                total == 0 && d.sum == 0 && d.min == u64::MAX && d.max == 0
            } else {
                total == d.count
                    && d.min <= d.max
                    && d.sum >= u128::from(d.min) * u128::from(d.count)
                    && d.sum <= u128::from(d.max) * u128::from(d.count)
            };
            if !ok {
                return Err(SnapshotParseError::Inconsistent {
                    line,
                    what: "histogram totals",
                });
            }
            self.hists[h.idx()] = d;
        }
        for s in SpanId::ALL.iter().filter(|s| s.class() == class) {
            let mut f = Fields::open(cur, "span", s.name())?;
            let d = SpanData {
                calls: f.u64()?,
                sampled: f.u64()?,
                wall_ns: f.u64()?,
                ..SpanData::default()
            };
            let line = f.line;
            f.close()?;
            if d.sampled > d.calls {
                return Err(SnapshotParseError::Inconsistent {
                    line,
                    what: "span sample count",
                });
            }
            self.spans[s.idx()] = d;
        }
        Ok(())
    }
}

/// Newline-terminated line walker that tracks byte offsets (for the
/// checksum span) and 1-based line numbers (for errors).
struct Cursor<'a> {
    text: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn next_line(&mut self) -> Result<&'a str, SnapshotParseError> {
        let rest = &self.text[self.pos..];
        let nl = rest.find('\n').ok_or(SnapshotParseError::Truncated)?;
        self.pos += nl + 1;
        self.line += 1;
        Ok(&rest[..nl])
    }

    fn rewind(&mut self, pos: usize) {
        self.pos = pos;
        self.line -= 1;
    }
}

/// One expected line: validates the kind tag and metric name, then yields
/// the numeric fields in order and requires exhaustion on `close`.
struct Fields<'a> {
    iter: std::str::Split<'a, char>,
    line: usize,
}

impl<'a> Fields<'a> {
    fn open(
        cur: &mut Cursor<'a>,
        kind: &'static str,
        name: &'static str,
    ) -> Result<Self, SnapshotParseError> {
        let line = cur.next_line()?;
        let mut iter = line.split('\t');
        if iter.next() != Some(kind) || iter.next() != Some(name) {
            return Err(SnapshotParseError::Malformed {
                line: cur.line,
                want: kind,
            });
        }
        Ok(Fields {
            iter,
            line: cur.line,
        })
    }

    fn field(&mut self) -> Result<&'a str, SnapshotParseError> {
        self.iter.next().ok_or(SnapshotParseError::Malformed {
            line: self.line,
            want: "more fields",
        })
    }

    fn u64(&mut self) -> Result<u64, SnapshotParseError> {
        let line = self.line;
        self.field()?
            .parse()
            .map_err(|_| SnapshotParseError::Number { line })
    }

    fn u128(&mut self) -> Result<u128, SnapshotParseError> {
        let line = self.line;
        self.field()?
            .parse()
            .map_err(|_| SnapshotParseError::Number { line })
    }

    fn f64_bits(&mut self) -> Result<f64, SnapshotParseError> {
        let line = self.line;
        let s = self.field()?;
        if s.len() != 16 {
            return Err(SnapshotParseError::Number { line });
        }
        u64::from_str_radix(s, 16)
            .map(f64::from_bits)
            .map_err(|_| SnapshotParseError::Number { line })
    }

    fn close(mut self) -> Result<(), SnapshotParseError> {
        if self.iter.next().is_some() {
            return Err(SnapshotParseError::Malformed {
                line: self.line,
                want: "end of line",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObsConfig, Recorder};

    fn sample() -> MetricsSnapshot {
        let mut r = Recorder::new(ObsConfig::full());
        r.add(Counter::EngineTicks, 1000);
        r.add(Counter::PoolReused, 3);
        r.observe(HistId::LiveVerdictLatencyMs, 12);
        r.observe(HistId::LiveVerdictLatencyMs, 250);
        r.gauge_max(Gauge::ArenaFootprint, 4096);
        r.fgauge_max(FGauge::RanPrbUtilPeak, 0.875);
        let t = r.span_enter(SpanId::BeginTick);
        r.span_exit(SpanId::BeginTick, t);
        r.snapshot().unwrap()
    }

    #[test]
    fn round_trip_is_byte_identical() {
        for snap in [MetricsSnapshot::empty(), sample()] {
            let text = snap.encode();
            let back = MetricsSnapshot::parse(&text).expect("parses");
            assert_eq!(back, snap);
            assert_eq!(back.encode(), text);
        }
    }

    #[test]
    fn sim_only_encoding_round_trips_without_runtime() {
        let text = sample().encode_sim();
        let back = MetricsSnapshot::parse(&text).expect("parses");
        assert!(!back.has_runtime);
        assert_eq!(back.encode(), text);
        assert_eq!(back.counter(Counter::EngineTicks), 1000);
        // Runtime values were dropped by the sim-only encoding.
        assert_eq!(back.counter(Counter::PoolReused), 0);
    }

    #[test]
    fn corrupted_bytes_are_rejected() {
        let text = sample().encode();
        // Flip one digit in a counter line.
        let bad = text.replacen(
            "counter\tengine/ticks\t1000",
            "counter\tengine/ticks\t1001",
            1,
        );
        assert_ne!(bad, text);
        assert_eq!(
            MetricsSnapshot::parse(&bad),
            Err(SnapshotParseError::Checksum)
        );
        // Truncation.
        let cut = &text[..text.len() - 10];
        assert_eq!(
            MetricsSnapshot::parse(cut),
            Err(SnapshotParseError::Truncated)
        );
        // Trailing garbage.
        let tail = format!("{text}x\n");
        assert!(matches!(
            MetricsSnapshot::parse(&tail),
            Err(SnapshotParseError::Trailing { .. })
        ));
        // A forged histogram whose checksum was recomputed still fails
        // structural validation.
        let forged_content = text.split_once("end\tdomino-metrics").unwrap().0.replacen(
            "hist\tlive/verdict_latency_ms\t17\t2",
            "hist\tlive/verdict_latency_ms\t17\t3",
            1,
        );
        let sum = super::fnv1a64(forged_content.as_bytes());
        let forged = format!("{forged_content}end\tdomino-metrics\t{sum:016x}\n");
        assert!(matches!(
            MetricsSnapshot::parse(&forged),
            Err(SnapshotParseError::Inconsistent { .. })
        ));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut r = Recorder::new(ObsConfig::on());
        for v in 0..100u64 {
            r.observe(HistId::RanPrbUtilPct, v);
        }
        let snap = r.snapshot().unwrap();
        let p50 = snap.quantile(HistId::RanPrbUtilPct, 0.50);
        let p99 = snap.quantile(HistId::RanPrbUtilPct, 0.99);
        assert!((45.0..=55.0).contains(&p50), "p50 = {p50}");
        assert!(p99 >= 90.0, "p99 = {p99}");
        assert_eq!(snap.quantile(HistId::RtcPacerBacklog, 0.5), 0.0);
    }
}
