//! The two-party session engine: couples two WebRTC endpoints through an
//! access network (5G cell or wired/Wi-Fi baseline) and the non-RAN path
//! segments, collecting the full cross-layer [`TraceBundle`].
//!
//! Mirrors the paper's experimental setup (Fig. 7): the UE-side client "A"
//! reaches the peer through the access network, a core segment, and a
//! transit segment; the peer "B" is a wired host (GCP for commercial cells,
//! a local server for private cells). Both media and RTCP feedback traverse
//! the network in both directions, so feedback-path impairments (Fig. 22)
//! arise naturally.

use std::collections::HashMap;

use domino_obs::{Counter, HistId, RanCellObs, Recorder, SpanId};
use rand::rngs::StdRng;
use simcore::{rng_for, EventQueue, RngStream, SimDuration, SimTime};
use telemetry::{Direction, LiveTap, PacketRecord, SessionMeta, StreamKind, TraceBundle};

use abr_sim::{AbrClient, AbrConfig, AbrOutgoing, AbrPayload, AbrServer};
use netpath::{PathConfig, PathModel};
use ran_sim::{CellConfig, CellSim, CellUeTable, Delivery};
use rtc_sim::{OutgoingPacket, PacketPayload, RtcEndpoint, SenderConfig};

/// Session-level configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Call duration.
    pub duration: SimDuration,
    /// Master seed; all component streams derive from it.
    pub seed: u64,
    /// UE-side sender configuration.
    pub ue_sender: SenderConfig,
    /// Wired-side sender configuration.
    pub wired_sender: SenderConfig,
    /// App-stats sampling interval (the paper's client: 50 ms).
    pub stats_interval: SimDuration,
    /// Engine tick granularity.
    pub tick: SimDuration,
    /// Path between the core/access egress and the peer (WAN for
    /// commercial cells, local subnet for private cells).
    pub peer_path: PathConfig,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            duration: SimDuration::from_secs(60),
            seed: 42,
            ue_sender: SenderConfig::default(),
            wired_sender: SenderConfig::default(),
            stats_interval: SimDuration::from_millis(50),
            tick: SimDuration::from_millis(1),
            peer_path: PathConfig::wired_wan(),
        }
    }
}

/// Which application workload a session runs over the two-party transport.
///
/// The session engine is application-generic: every workload shares the
/// access/core/peer path plumbing, the in-flight packet map, the
/// [`telemetry::LiveTap`] contract, and the [`SessionArena`] leases — only
/// the endpoint pair differs. An [`AppSpec::Rtc`] session is byte-identical
/// to the engine before this abstraction existed.
#[derive(Debug, Clone, Default)]
pub enum AppSpec {
    /// Two-party WebRTC video call (the paper's workload).
    #[default]
    Rtc,
    /// QUIC/ABR video streaming: a UE-side player fetching segments from a
    /// wired origin through the same access + path models (see [`abr_sim`]).
    Abr(AbrConfig),
}

/// The live endpoint pair realising an [`AppSpec`]. `a` always sits behind
/// the access network (the UE side), `b` on the wired side.
///
/// RTC endpoints stay inline (not boxed): the pre-`AppSpec` engine held
/// them by value, and keeping that layout preserves its allocation profile
/// exactly.
#[allow(clippy::large_enum_variant)]
enum AppPair {
    Rtc { a: RtcEndpoint, b: RtcEndpoint },
    Abr(Box<AbrPair>),
}

struct AbrPair {
    client: AbrClient,
    server: AbrServer,
}

/// Baseline (non-cellular) access types for the §2 comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineAccess {
    /// Campus wired Ethernet.
    Wired,
    /// Campus Wi-Fi.
    Wifi,
}

enum AccessSim {
    Cell(Box<CellSim>),
    Direct(Box<DirectAccess>),
    /// This session's UE pair rides a [`CellSim`] owned by an external
    /// driver (see [`crate::shared::SharedCellDriver`]): packets leave
    /// through `outbox` and the driver feeds deliveries/telemetry back
    /// through the inboxes between the emit and collect phases of each
    /// tick.
    Shared(Box<SharedAccess>),
}

struct DirectAccess {
    ul: PathModel,
    dl: PathModel,
    rng_ul: StdRng,
    rng_dl: StdRng,
    out: Vec<Delivery>,
}

/// Mailbox access for a session whose cell lives in a shared-cell driver.
struct SharedAccess {
    /// Experiment-UE index inside the shared cell.
    ue: u32,
    /// Packets handed to the RAN edge this tick, awaiting the driver's
    /// flush into the cell: `(handover time, direction, id, size)`.
    outbox: Vec<(SimTime, Direction, u64, u32)>,
    /// Deliveries the driver fanned out to this UE.
    inbox: Vec<Delivery>,
    /// This UE's view of the cell's DCI stream (whole control channel,
    /// `is_target_ue` stamped for this UE).
    dci_inbox: Vec<telemetry::DciRecord>,
    /// This UE's gNB log records.
    gnb_inbox: Vec<telemetry::GnbLogRecord>,
}

impl AccessSim {
    fn enqueue(&mut self, now: SimTime, dir: Direction, id: u64, size: u32) {
        match self {
            AccessSim::Cell(cell) => cell.enqueue(now, dir, id, size),
            AccessSim::Direct(direct) => {
                let arrival = match dir {
                    Direction::Uplink => direct.ul.traverse(now, size, &mut direct.rng_ul),
                    Direction::Downlink => direct.dl.traverse(now, size, &mut direct.rng_dl),
                };
                if let Some(at) = arrival {
                    direct.out.push(Delivery {
                        id,
                        direction: dir,
                        delivered_at: at,
                    });
                }
                // Lost packets simply never come out.
            }
            AccessSim::Shared(shared) => shared.outbox.push((now, dir, id, size)),
        }
    }

    fn poll(&mut self, now: SimTime) {
        if let AccessSim::Cell(cell) = self {
            cell.poll(now);
        }
        // Shared: the driver polls the cell once for all riding sessions.
    }

    fn drain_deliveries_into(&mut self, out: &mut Vec<Delivery>) {
        match self {
            AccessSim::Cell(cell) => cell.drain_deliveries_into(out),
            AccessSim::Direct(direct) => out.append(&mut direct.out),
            AccessSim::Shared(shared) => out.append(&mut shared.inbox),
        }
    }
}

/// One routing step of an in-flight packet on the non-RAN path. Route
/// events are scheduled on a session's route-event queue and consumed by
/// [`SessionState::route_event`]. Public (but otherwise opaque) so a
/// multiplexing driver can carry tagged events through a
/// [`SharedRouteQueue`] shared by many interleaved sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteEvent {
    /// Reached the wired peer's NIC.
    ArriveAtPeer(u64),
    /// Reached the UE client's stack.
    ArriveAtUe(u64),
    /// Reached the gNB / access ingress for the downlink.
    EnqueueDownlink(u64),
}

/// Where a session schedules its route events. The solo driver passes its
/// arena's private [`EventQueue`]; a multiplexing driver passes a
/// [`TaggedSink`] that stamps every event with the session's id and start
/// offset before it lands in the worker-shared [`SharedRouteQueue`].
pub trait RouteSink {
    /// Schedules `ev` to fire at session-local time `at`.
    fn schedule(&mut self, at: SimTime, ev: RouteEvent);
}

impl RouteSink for EventQueue<RouteEvent> {
    fn schedule(&mut self, at: SimTime, ev: RouteEvent) {
        EventQueue::schedule(self, at, ev);
    }
}

/// One worker-shared route-event queue multiplexing N concurrent sessions:
/// a calendar [`EventQueue`] whose events are tagged with a session id and
/// popped in global `(time, session, seq)` order. Restricted to any one
/// session, that order is exactly the `(time, seq)` order the session
/// would observe from a private queue (the simcore property test
/// `prop_tagged_pop_matches_private_queues` enforces it), which is what
/// makes multiplexed per-session output byte-identical to solo runs.
///
/// Events are stored at *global* (driver) time: a [`TaggedSink`] adds the
/// session's start offset on schedule, and the driver subtracts it again
/// when dispatching a popped event back to the session.
#[derive(Debug, Clone)]
pub struct SharedRouteQueue {
    q: EventQueue<RouteEvent, u64>,
}

impl Default for SharedRouteQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedRouteQueue {
    /// An empty shared queue on the calendar backend.
    pub fn new() -> Self {
        SharedRouteQueue {
            q: EventQueue::calendar_keyed(),
        }
    }

    /// Drops all pending events but keeps allocations; the tie-break
    /// sequence restarts.
    pub fn clear(&mut self) {
        self.q.clear();
    }

    /// Pops the earliest event due at or before the global instant `now`,
    /// as `(global time, session id, event)`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, u64, RouteEvent)> {
        self.q.pop_due(now).map(|s| (s.at, s.key, s.event))
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Total retained storage (events) — capacity, not occupancy.
    pub fn capacity(&self) -> usize {
        self.q.capacity()
    }

    /// A [`RouteSink`] that stamps `session` and shifts session-local times
    /// by `offset` (the global time at which the session's clock started).
    pub fn sink(&mut self, session: u64, offset: SimDuration) -> TaggedSink<'_> {
        TaggedSink {
            q: &mut self.q,
            session,
            offset,
        }
    }
}

/// Borrowed scheduling handle for one session of a [`SharedRouteQueue`].
pub struct TaggedSink<'a> {
    q: &'a mut EventQueue<RouteEvent, u64>,
    session: u64,
    offset: SimDuration,
}

impl RouteSink for TaggedSink<'_> {
    fn schedule(&mut self, at: SimTime, ev: RouteEvent) {
        self.q.schedule_keyed(at + self.offset, self.session, ev);
    }
}

/// In-flight application payload, one variant per [`AppSpec`] workload.
enum AppPayload {
    Rtc(PacketPayload),
    Abr(AbrPayload),
}

struct Pending {
    record_idx: usize,
    payload: AppPayload,
    sent: SimTime,
    size: u32,
}

/// Multiplicative hasher for the sequential packet ids keyed into
/// [`SessionArena`]'s in-flight map. Two reasons over the default SipHash:
/// it is ~4× cheaper on this u64-only key (the map is touched for every
/// packet emission and delivery), and it is *deterministic* — the std
/// `RandomState` seed changes the table's tombstone layout and therefore
/// its resize points, which would make [`SessionArena::footprint`]
/// non-reproducible across runs.
#[derive(Debug, Clone, Copy, Default)]
struct IdHasher(u64);

impl std::hash::Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    fn write_u64(&mut self, i: u64) {
        // Fibonacci-multiply then spread high bits into the low bits the
        // table indexes with.
        let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 29);
    }
}

type IdMap<V> = HashMap<u64, V, std::hash::BuildHasherDefault<IdHasher>>;

/// Per-tick scratch buffers every session a worker drives shares: the
/// endpoint emission buffer, the access-network delivery buffer, and the
/// RAN telemetry drain buffers. Each is cleared before use within a single
/// tick phase, so one scratch serves any number of interleaved sessions —
/// it carries no per-session state between phases.
#[derive(Default)]
pub struct EngineScratch {
    emit: Vec<OutgoingPacket>,
    abr_emit: Vec<AbrOutgoing>,
    deliveries: Vec<Delivery>,
    ran: RanScratch,
    /// The worker's observability recorder. Defaults to off (a no-op);
    /// sweep workers install an enabled recorder via
    /// [`SessionArena::recorder_mut`]. Living in the per-tick scratch puts
    /// it in every engine phase's hands without new parameters.
    pub recorder: Recorder,
}

impl EngineScratch {
    fn footprint(&self) -> (usize, usize, usize) {
        (
            self.emit.capacity() + self.abr_emit.capacity(),
            self.deliveries.capacity(),
            self.ran.dci.capacity() + self.ran.gnb.capacity(),
        )
    }
}

/// Reusable per-worker storage for the session engine: the route-event
/// queue, the per-tick scratch buffers, and free lists of per-session
/// sub-state (in-flight packet maps, recycled [`TraceBundle`]s) that
/// sessions lease at start and return at finish. A sweep worker keeps one
/// arena and threads it through every session it runs — sequentially or
/// multiplexed — so a 1000-session sweep performs O(1) large allocations
/// per worker instead of O(sessions). A multiplexed worker's arena holds
/// one leased map/bundle pair per concurrently active session, then stays
/// flat.
///
/// Arenas carry **no cross-session state** — every leased buffer is
/// cleared (not shrunk) before reuse, and the event queue's tie-break
/// sequence restarts — so a session run in a warm arena is byte-identical
/// to one run in a fresh arena. The determinism suites cover this.
pub struct SessionArena {
    queue: EventQueue<RouteEvent>,
    scratch: EngineScratch,
    free_pending: Vec<IdMap<Pending>>,
    free_bundles: Vec<TraceBundle>,
    free_ue_tables: Vec<CellUeTable>,
}

impl Default for SessionArena {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionArena {
    /// An arena on the calendar event queue — the session engine's default
    /// backend (see [`simcore::CalendarQueue`]).
    pub fn new() -> Self {
        Self::with_queue(EventQueue::calendar())
    }

    /// An arena on the classic binary-heap queue. Pop order is identical;
    /// this exists for A/B benchmarking and as a fallback for workloads the
    /// calendar's bucket geometry does not fit.
    pub fn with_heap_queue() -> Self {
        Self::with_queue(EventQueue::with_capacity(256))
    }

    fn with_queue(queue: EventQueue<RouteEvent>) -> Self {
        SessionArena {
            queue,
            scratch: EngineScratch::default(),
            free_pending: Vec::new(),
            free_bundles: Vec::new(),
            free_ue_tables: Vec::new(),
        }
    }

    /// Hands a finished session's bundle back for buffer reuse. Sweeps that
    /// do not retain bundles call this after analysis; the next session run
    /// through this arena fills the same record vectors.
    pub fn recycle(&mut self, bundle: TraceBundle) {
        self.free_bundles.push(bundle);
    }

    /// The per-tick scratch buffers — multiplexed drivers borrow these per
    /// phase (the solo driver splits them off together with the queue).
    pub fn scratch_mut(&mut self) -> &mut EngineScratch {
        &mut self.scratch
    }

    /// The worker recorder carried by this arena's scratch. Install an
    /// enabled recorder before running sessions to collect metrics; take a
    /// snapshot from it afterwards.
    pub fn recorder_mut(&mut self) -> &mut Recorder {
        &mut self.scratch.recorder
    }

    /// Split borrow for the solo driver: the private route-event queue plus
    /// the per-tick scratch.
    fn solo_parts(&mut self) -> (&mut EventQueue<RouteEvent>, &mut EngineScratch) {
        (&mut self.queue, &mut self.scratch)
    }

    /// Approximate retained storage in *elements* across all arena buffers
    /// (capacities, not occupancy), counting idle free-list entries but not
    /// sub-state currently leased by in-flight sessions. After the first
    /// session (or, multiplexed, the first full-width generation) warms the
    /// arena, this must stay flat across further sessions — asserted by the
    /// heap-peak regression test in `tests/live_equivalence.rs`.
    pub fn footprint(&self) -> usize {
        let (queue, pending, emit, deliveries, ran, bundle, ue_tables) = self.footprint_parts();
        queue + pending + emit + deliveries + ran + bundle + ue_tables
    }

    /// Per-component footprint breakdown (debug aid): `(queue, pending,
    /// emit, deliveries, ran, bundle, ue_tables)`.
    #[doc(hidden)]
    pub fn footprint_parts(&self) -> (usize, usize, usize, usize, usize, usize, usize) {
        let bundle: usize = self
            .free_bundles
            .iter()
            .map(|b| {
                b.dci.capacity()
                    + b.gnb.capacity()
                    + b.packets.capacity()
                    + b.app_local.capacity()
                    + b.app_remote.capacity()
            })
            .sum();
        let pending: usize = self.free_pending.iter().map(HashMap::capacity).sum();
        let ue_tables: usize = self
            .free_ue_tables
            .iter()
            .map(CellUeTable::footprint_elems)
            .sum();
        let (emit, deliveries, ran) = self.scratch.footprint();
        (
            self.queue.capacity(),
            pending,
            emit,
            deliveries,
            ran,
            bundle,
            ue_tables,
        )
    }

    fn take_bundle(&mut self, meta: SessionMeta) -> TraceBundle {
        match self.free_bundles.pop() {
            Some(mut b) => {
                b.reset(meta);
                b
            }
            None => TraceBundle::new(meta),
        }
    }

    fn take_pending(&mut self) -> IdMap<Pending> {
        let mut map = self.free_pending.pop().unwrap_or_default();
        map.clear();
        map
    }

    fn return_pending(&mut self, map: IdMap<Pending>) {
        self.free_pending.push(map);
    }

    /// Leases a scripted-UE table for a new cell; `CellSim::new_in` clears
    /// and refills it, so a recycled table behaves identically to a fresh
    /// one while keeping its column capacities.
    pub(crate) fn take_ue_table(&mut self) -> CellUeTable {
        self.free_ue_tables.pop().unwrap_or_default()
    }

    /// Hands a finished cell's scripted-UE table back for reuse.
    pub(crate) fn return_ue_table(&mut self, table: CellUeTable) {
        self.free_ue_tables.push(table);
    }
}

/// A two-party session extracted into a steppable state machine: the
/// access simulator, both WebRTC endpoints, the non-RAN path models, the
/// in-flight packet map, and the growing [`TraceBundle`].
///
/// The solo entry points ([`run_cell_session`] and friends) drive one
/// state to completion in a tight loop; a multiplexing driver instead
/// *interleaves* many states, advancing each one engine tick at a time:
///
/// 1. [`SessionState::begin_tick`] — endpoints emit, the access network
///    advances, and finished deliveries schedule route events into the
///    provided [`RouteSink`].
/// 2. [`SessionState::route_event`] for every event the driver's queue
///    popped due at (or before) this session's clock, in `(time, seq)`
///    order.
/// 3. [`SessionState::end_tick`] — app-stats sampling, the live tap's
///    per-tick drain/clock/early-exit poll; returns `true` when the
///    session is done (duration reached or tap abort).
/// 4. [`SessionState::finish`] — final telemetry drain, bundle sort, and
///    lease returns to the arena.
///
/// A session stepped this way — parked between ticks, resumed in any
/// interleaving with other sessions — produces a bundle byte-identical to
/// a solo run, provided its route events come back in per-session
/// `(time, seq)` order (which [`SharedRouteQueue`] guarantees).
pub struct SessionState {
    access: AccessSim,
    app: AppPair,
    core_ul: Option<PathModel>,
    core_dl: Option<PathModel>,
    peer_ul: PathModel,
    peer_dl: PathModel,
    rng_fwd: StdRng,
    rng_rev: StdRng,
    pending: IdMap<Pending>,
    bundle: TraceBundle,
    next_id: u64,
    next_stats: SimTime,
    tick_len: SimDuration,
    stats_interval: SimDuration,
    ticks: u64,
    cur: u64,
    now: SimTime,
    end_time: SimTime,
    aborted: bool,
    tapped: bool,
}

impl SessionState {
    fn new(
        access: AccessSim,
        core_path: Option<PathConfig>,
        meta: SessionMeta,
        app: &AppSpec,
        cfg: &SessionConfig,
        tapped: bool,
        arena: &mut SessionArena,
    ) -> Self {
        let bundle = arena.take_bundle(meta);
        let ticks = cfg.duration / cfg.tick;
        let app = match app {
            AppSpec::Rtc => AppPair::Rtc {
                a: RtcEndpoint::new(cfg.ue_sender.clone(), cfg.seed, 11),
                b: RtcEndpoint::new(cfg.wired_sender.clone(), cfg.seed, 12),
            },
            AppSpec::Abr(abr) => AppPair::Abr(Box::new(AbrPair {
                client: AbrClient::new(abr.clone()),
                server: AbrServer::new(abr.clone()),
            })),
        };
        SessionState {
            access,
            app,
            core_ul: core_path.clone().map(PathModel::new),
            core_dl: core_path.map(PathModel::new),
            peer_ul: PathModel::new(cfg.peer_path.clone()), // egress → peer
            peer_dl: PathModel::new(cfg.peer_path.clone()), // peer → ingress
            rng_fwd: rng_for(cfg.seed, RngStream::PathForward),
            rng_rev: rng_for(cfg.seed, RngStream::PathReverse),
            pending: arena.take_pending(),
            bundle,
            next_id: 0,
            next_stats: SimTime::ZERO + cfg.stats_interval,
            tick_len: cfg.tick,
            stats_interval: cfg.stats_interval,
            ticks,
            cur: 0,
            now: SimTime::ZERO,
            end_time: SimTime::ZERO + cfg.tick * ticks,
            aborted: false,
            tapped,
        }
    }

    /// Starts a cell session in steppable form. `script` installs scripted
    /// overrides on the cell before the call starts; `tapped` mirrors
    /// [`telemetry::LiveTap::is_active`] for the tap the driver will pass
    /// to the step methods (pass `false` to skip all tap work).
    pub fn start_cell(
        cell_cfg: CellConfig,
        app: &AppSpec,
        cfg: &SessionConfig,
        script: impl FnOnce(&mut CellSim),
        tapped: bool,
        arena: &mut SessionArena,
    ) -> Self {
        let meta = SessionMeta {
            cell_name: cell_cfg.name.clone(),
            cell_class: cell_cfg.class,
            carrier_mhz: cell_cfg.carrier_mhz,
            bandwidth_mhz: cell_cfg.bandwidth_mhz,
            duplexing: cell_cfg.frame.duplexing,
            duration: cfg.duration,
            seed: cfg.seed,
            has_gnb_log: cell_cfg.has_gnb_log,
        };
        let mut cell = CellSim::new_in(cell_cfg, cfg.seed, arena.take_ue_table());
        script(&mut cell);
        if arena.scratch.recorder.is_on() {
            // Installed after the script so scripted overrides are observed
            // too; the accumulator is absorbed back in `finish`.
            cell.set_obs(Some(RanCellObs::boxed()));
        }
        let access = AccessSim::Cell(Box::new(cell));
        Self::new(
            access,
            Some(PathConfig::core_network()),
            meta,
            app,
            cfg,
            tapped,
            arena,
        )
    }

    /// Starts a session whose UE pair rides a cell owned by an external
    /// [`crate::shared::SharedCellDriver`]. `ue` is the experiment-UE index
    /// this pair occupies inside the shared cell; the meta mirrors the
    /// cell's config, but the cell simulator itself lives in the driver,
    /// which shuttles packets and telemetry through the session's
    /// shared-access mailboxes each tick.
    pub fn start_shared(
        cell_cfg: &CellConfig,
        app: &AppSpec,
        cfg: &SessionConfig,
        ue: u32,
        tapped: bool,
        arena: &mut SessionArena,
    ) -> Self {
        let meta = SessionMeta {
            cell_name: cell_cfg.name.clone(),
            cell_class: cell_cfg.class,
            carrier_mhz: cell_cfg.carrier_mhz,
            bandwidth_mhz: cell_cfg.bandwidth_mhz,
            duplexing: cell_cfg.frame.duplexing,
            duration: cfg.duration,
            seed: cfg.seed,
            has_gnb_log: cell_cfg.has_gnb_log,
        };
        let access = AccessSim::Shared(Box::new(SharedAccess {
            ue,
            outbox: Vec::new(),
            inbox: Vec::new(),
            dci_inbox: Vec::new(),
            gnb_inbox: Vec::new(),
        }));
        Self::new(
            access,
            Some(PathConfig::core_network()),
            meta,
            app,
            cfg,
            tapped,
            arena,
        )
    }

    /// Moves this tick's emitted packets from the shared-access outbox into
    /// the driver-owned cell, addressed to this session's experiment UE.
    pub(crate) fn flush_shared_outbox(&mut self, cell: &mut CellSim) {
        let AccessSim::Shared(s) = &mut self.access else {
            panic!("flush_shared_outbox on a non-shared session");
        };
        for (at, dir, id, size) in s.outbox.drain(..) {
            cell.enqueue_for(s.ue, at, dir, id, size);
        }
    }

    /// The shared-access mailboxes the driver fans cell output into:
    /// `(deliveries, dci, gnb)`.
    pub(crate) fn shared_inboxes(
        &mut self,
    ) -> (
        &mut Vec<Delivery>,
        &mut Vec<telemetry::DciRecord>,
        &mut Vec<telemetry::GnbLogRecord>,
    ) {
        let AccessSim::Shared(s) = &mut self.access else {
            panic!("shared_inboxes on a non-shared session");
        };
        (&mut s.inbox, &mut s.dci_inbox, &mut s.gnb_inbox)
    }

    /// Starts a baseline (wired or Wi-Fi) session in steppable form.
    pub fn start_baseline(
        access: BaselineAccess,
        app: &AppSpec,
        cfg: &SessionConfig,
        tapped: bool,
        arena: &mut SessionArena,
    ) -> Self {
        let (name, path) = match access {
            BaselineAccess::Wired => ("Wired baseline", PathConfig::wired_lan()),
            BaselineAccess::Wifi => ("Wi-Fi baseline", PathConfig::wifi()),
        };
        let meta = SessionMeta::baseline(name, cfg.duration, cfg.seed);
        let sim = AccessSim::Direct(Box::new(DirectAccess {
            ul: PathModel::new(path.clone()),
            dl: PathModel::new(path),
            rng_ul: rng_for(cfg.seed, RngStream::Custom(101)),
            rng_dl: rng_for(cfg.seed, RngStream::Custom(102)),
            out: Vec::new(),
        }));
        Self::new(sim, None, meta, app, cfg, tapped, arena)
    }

    /// The engine tick granularity. A multiplexing driver requires every
    /// co-scheduled session to share it (and steps them all on one global
    /// tick lattice).
    pub fn tick_len(&self) -> SimDuration {
        self.tick_len
    }

    /// Session-local time of the tick currently in progress (the instant
    /// [`Self::begin_tick`] advanced to).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Whether the session has run its full duration or was aborted by the
    /// tap. Once done, only [`Self::finish`] may be called.
    pub fn is_done(&self) -> bool {
        self.aborted || self.cur >= self.ticks
    }

    /// Phases 1–2 of one engine tick: both endpoints emit (media from
    /// senders, RTCP from receivers), new packets enter the access network
    /// or the reverse path, the access network advances, and completed
    /// access deliveries continue along the path as route events scheduled
    /// into `sink` (at session-local times).
    pub fn begin_tick(
        &mut self,
        tap: &mut dyn LiveTap,
        scratch: &mut EngineScratch,
        sink: &mut impl RouteSink,
    ) {
        let span = scratch.recorder.span_enter(SpanId::BeginTick);
        self.emit_tick(tap, scratch, sink);
        self.collect_access(scratch, sink);
        scratch.recorder.span_exit(SpanId::BeginTick, span);
    }

    /// Phase 1 only (endpoint emission). A shared-cell driver calls this for
    /// every riding session, then flushes their outboxes into the one cell,
    /// polls it, fans deliveries back out, and calls
    /// [`Self::collect_access`]; the solo and multiplexing drivers use
    /// [`Self::begin_tick`], which runs both phases back to back.
    pub fn emit_tick(
        &mut self,
        tap: &mut dyn LiveTap,
        scratch: &mut EngineScratch,
        sink: &mut impl RouteSink,
    ) {
        debug_assert!(!self.is_done(), "emit_tick on a finished session");
        self.cur += 1;
        let now = SimTime::ZERO + self.tick_len * self.cur;
        self.now = now;
        scratch.recorder.add(Counter::EngineTicks, 1);
        scratch
            .recorder
            .add(Counter::EngineSimTimeUs, self.tick_len.as_micros());

        // 1. Endpoints emit. The uplink/downlink plumbing is shared by
        // every workload; only the endpoint polling differs per arm.
        match &mut self.app {
            AppPair::Rtc { a, b } => {
                // Media from senders, RTCP from receivers.
                let emit = &mut scratch.emit;
                emit.clear();
                a.sender.poll_into(now, emit);
                a.receiver.poll_into(now, emit);
                for p in emit.drain(..) {
                    let id = self.next_id;
                    self.next_id += 1;
                    let record_idx = self.bundle.packets.len();
                    self.bundle
                        .packets
                        .push(packet_record(&p, Direction::Uplink));
                    if self.tapped {
                        tap.on_packet_sent(id, &self.bundle.packets[record_idx]);
                    }
                    self.pending.insert(
                        id,
                        Pending {
                            record_idx,
                            payload: AppPayload::Rtc(p.payload),
                            sent: p.at,
                            size: p.size_bytes,
                        },
                    );
                    self.access
                        .enqueue(p.at, Direction::Uplink, id, p.size_bytes);
                }
                emit.clear();
                b.sender.poll_into(now, emit);
                b.receiver.poll_into(now, emit);
                for p in emit.drain(..) {
                    let id = self.next_id;
                    self.next_id += 1;
                    let record_idx = self.bundle.packets.len();
                    self.bundle
                        .packets
                        .push(packet_record(&p, Direction::Downlink));
                    if self.tapped {
                        tap.on_packet_sent(id, &self.bundle.packets[record_idx]);
                    }
                    // Peer → (transit, core) → access ingress.
                    let hop1 = self.peer_dl.traverse(p.at, p.size_bytes, &mut self.rng_rev);
                    let arrival = hop1.and_then(|t| match &mut self.core_dl {
                        Some(core) => core.traverse(t, p.size_bytes, &mut self.rng_rev),
                        None => Some(t),
                    });
                    // A `None` arrival is a loss before the access network;
                    // the packet record simply stays unreceived.
                    if let Some(at) = arrival {
                        self.pending.insert(
                            id,
                            Pending {
                                record_idx,
                                payload: AppPayload::Rtc(p.payload),
                                sent: p.at,
                                size: p.size_bytes,
                            },
                        );
                        sink.schedule(at, RouteEvent::EnqueueDownlink(id));
                    }
                }
            }
            AppPair::Abr(pair) => {
                // Segment requests from the player, paced chunks from the
                // origin.
                let emit = &mut scratch.abr_emit;
                emit.clear();
                pair.client.poll_into(now, emit);
                for p in emit.drain(..) {
                    let id = self.next_id;
                    self.next_id += 1;
                    let record_idx = self.bundle.packets.len();
                    self.bundle
                        .packets
                        .push(abr_packet_record(&p, Direction::Uplink));
                    if self.tapped {
                        tap.on_packet_sent(id, &self.bundle.packets[record_idx]);
                    }
                    self.pending.insert(
                        id,
                        Pending {
                            record_idx,
                            payload: AppPayload::Abr(p.payload),
                            sent: p.at,
                            size: p.size_bytes,
                        },
                    );
                    self.access
                        .enqueue(p.at, Direction::Uplink, id, p.size_bytes);
                }
                emit.clear();
                pair.server.poll_into(now, emit);
                for p in emit.drain(..) {
                    let id = self.next_id;
                    self.next_id += 1;
                    let record_idx = self.bundle.packets.len();
                    self.bundle
                        .packets
                        .push(abr_packet_record(&p, Direction::Downlink));
                    if self.tapped {
                        tap.on_packet_sent(id, &self.bundle.packets[record_idx]);
                    }
                    let hop1 = self.peer_dl.traverse(p.at, p.size_bytes, &mut self.rng_rev);
                    let arrival = hop1.and_then(|t| match &mut self.core_dl {
                        Some(core) => core.traverse(t, p.size_bytes, &mut self.rng_rev),
                        None => Some(t),
                    });
                    if let Some(at) = arrival {
                        self.pending.insert(
                            id,
                            Pending {
                                record_idx,
                                payload: AppPayload::Abr(p.payload),
                                sent: p.at,
                                size: p.size_bytes,
                            },
                        );
                        sink.schedule(at, RouteEvent::EnqueueDownlink(id));
                    }
                }
            }
        }
    }

    /// Phase 2 only (access-network advance + delivery collection). For
    /// cell/baseline access this polls the access simulator; for shared
    /// access the driver has already polled the cell and filled the
    /// session's delivery inbox between [`Self::emit_tick`] and this call.
    pub fn collect_access(&mut self, scratch: &mut EngineScratch, sink: &mut impl RouteSink) {
        let now = self.now;

        // 2. Access network advances; deliveries continue along the path.
        self.access.poll(now);
        let deliveries = &mut scratch.deliveries;
        deliveries.clear();
        self.access.drain_deliveries_into(deliveries);
        for d in deliveries.iter() {
            let (id, t_out) = (d.id, d.delivered_at);
            match d.direction {
                Direction::Uplink => {
                    let Some(p) = self.pending.get(&id) else {
                        continue;
                    };
                    let hop1 = match &mut self.core_ul {
                        Some(core) => core.traverse(t_out, p.size, &mut self.rng_fwd),
                        None => Some(t_out),
                    };
                    let arrival =
                        hop1.and_then(|t| self.peer_ul.traverse(t, p.size, &mut self.rng_fwd));
                    match arrival {
                        Some(at) => sink.schedule(at, RouteEvent::ArriveAtPeer(id)),
                        None => {
                            self.pending.remove(&id); // lost in transit
                        }
                    }
                }
                Direction::Downlink => {
                    sink.schedule(t_out, RouteEvent::ArriveAtUe(id));
                }
            }
        }
    }

    /// Phase 3 of one engine tick: consumes one route event popped due at
    /// (or before) this session's clock. The driver must deliver a
    /// session's events in `(time, seq)` schedule order — exactly what
    /// `pop_due` on the private queue or the [`SharedRouteQueue`] yields.
    pub fn route_event(&mut self, at: SimTime, ev: RouteEvent, tap: &mut dyn LiveTap) {
        match ev {
            RouteEvent::EnqueueDownlink(id) => {
                if let Some(p) = self.pending.get(&id) {
                    let size = p.size;
                    self.access.enqueue(at, Direction::Downlink, id, size);
                }
            }
            RouteEvent::ArriveAtPeer(id) => {
                if deliver(
                    &mut self.pending,
                    &mut self.bundle,
                    id,
                    at,
                    &mut self.app,
                    false,
                ) && self.tapped
                {
                    tap.on_packet_delivered(id, at);
                }
            }
            RouteEvent::ArriveAtUe(id) => {
                if deliver(
                    &mut self.pending,
                    &mut self.bundle,
                    id,
                    at,
                    &mut self.app,
                    true,
                ) && self.tapped
                {
                    tap.on_packet_delivered(id, at);
                }
            }
        }
    }

    /// Phases 4–5 of one engine tick: 50 ms app-stats sampling on both
    /// clients, then (when tapped) the RAN telemetry drain, the tap clock,
    /// and the early-exit poll. Returns `true` when the session is done —
    /// either this was its final tick or the tap aborted it.
    pub fn end_tick(&mut self, tap: &mut dyn LiveTap, scratch: &mut EngineScratch) -> bool {
        let span = scratch.recorder.span_enter(SpanId::EndTick);
        let done = self.end_tick_inner(tap, scratch);
        scratch.recorder.span_exit(SpanId::EndTick, span);
        done
    }

    fn end_tick_inner(&mut self, tap: &mut dyn LiveTap, scratch: &mut EngineScratch) -> bool {
        let now = self.now;

        // 4. 50 ms app-stats sampling on both clients. The sorted-append
        // hooks double as a debug-build check that sampling stays monotone.
        if now >= self.next_stats {
            match &mut self.app {
                AppPair::Rtc { a, b } => {
                    // Pacer backlog is sampled on the app-stats cadence, not
                    // every tick, so the histogram tracks the same 50 ms
                    // lattice as the client stats it sits beside.
                    scratch
                        .recorder
                        .observe(HistId::RtcPacerBacklog, a.sender.pacer_backlog() as u64);
                    scratch
                        .recorder
                        .observe(HistId::RtcPacerBacklog, b.sender.pacer_backlog() as u64);
                    let sa = a.sample_stats(now);
                    let sb = b.sample_stats(now);
                    if self.tapped {
                        tap.on_app_local(&sa);
                        tap.on_app_remote(&sb);
                    }
                    self.bundle.append_app_local(sa);
                    self.bundle.append_app_remote(sb);
                }
                AppPair::Abr(pair) => {
                    let s = pair.client.sample_stats(now);
                    scratch
                        .recorder
                        .observe(HistId::PlaybackBufferMs, s.buffer_ms as u64);
                    if self.tapped {
                        tap.on_playback(&s);
                    }
                    self.bundle.append_playback(s);
                }
            }
            self.next_stats += self.stats_interval;
        }

        // Playback transitions count on the tick they happen, not on the
        // 50 ms sampling lattice, so short stalls are never missed.
        if let AppPair::Abr(pair) = &mut self.app {
            let ev = pair.client.take_events();
            if ev.stall_started {
                scratch.recorder.add(Counter::PlaybackStalls, 1);
            }
            if let Some(ms) = ev.stall_ended_ms {
                scratch.recorder.observe(HistId::PlaybackStallMs, ms);
            }
            if ev.ladder_switched {
                scratch.recorder.add(Counter::PlaybackLadderSwitches, 1);
            }
        }

        // 5. Live taps see RAN telemetry and the clock every tick, and may
        // abort the session (early-exit diagnosis).
        if self.tapped {
            drain_ran_telemetry(&mut self.access, &mut self.bundle, tap, &mut scratch.ran);
            tap.on_tick(now);
            if tap.should_stop() {
                self.end_time = now;
                self.aborted = true;
                return true;
            }
        }
        self.cur >= self.ticks
    }

    /// Finalises the session: collects any remaining RAN telemetry (the
    /// tapped path has drained all but the final tick's worth; the untapped
    /// path moves the whole log in one O(1) bulk transfer and lets the
    /// final sort order the gNB records), fires `on_finish`, sorts the
    /// bundle, and returns the leased in-flight map to the arena.
    pub fn finish(self, tap: &mut dyn LiveTap, arena: &mut SessionArena) -> TraceBundle {
        let SessionState {
            mut access,
            mut bundle,
            pending,
            tapped,
            aborted,
            end_time,
            core_ul,
            core_dl,
            peer_ul,
            peer_dl,
            ..
        } = self;
        if arena.scratch.recorder.is_on() {
            let rec = &mut arena.scratch.recorder;
            let mut net = peer_ul.stats();
            net.merge(peer_dl.stats());
            if let Some(p) = &core_ul {
                net.merge(p.stats());
            }
            if let Some(p) = &core_dl {
                net.merge(p.stats());
            }
            if let AccessSim::Direct(d) = &access {
                net.merge(d.ul.stats());
                net.merge(d.dl.stats());
            }
            rec.add(Counter::NetPackets, net.sent);
            rec.add(Counter::NetLost, net.lost);
            rec.add(Counter::NetJitterInversions, net.jitter_inversions);
            if aborted {
                rec.add(Counter::EngineEarlyExits, 1);
            }
            if let AccessSim::Cell(cell) = &mut access {
                if let Some(obs) = cell.take_obs() {
                    rec.absorb_ran(&obs);
                }
            }
        }
        if tapped {
            drain_ran_telemetry(&mut access, &mut bundle, tap, &mut arena.scratch.ran);
            if aborted {
                // An early exit truncates the session: record how much
                // actually ran, so per-minute normalisation (event rates,
                // chain stats) divides by simulated time, not by the
                // configured duration.
                bundle.meta.duration = end_time.saturating_since(SimTime::ZERO);
            }
            tap.on_finish(end_time);
        } else if let AccessSim::Cell(cell) = &mut access {
            for r in cell.drain_dci() {
                bundle.append_dci(r);
            }
            cell.drain_gnb_into(&mut bundle.gnb);
        } else if let AccessSim::Shared(shared) = &mut access {
            for r in shared.dci_inbox.drain(..) {
                bundle.append_dci(r);
            }
            bundle.gnb.append(&mut shared.gnb_inbox);
        }
        if let AccessSim::Cell(cell) = &mut access {
            arena.return_ue_table(cell.take_ue_table());
        }
        bundle.sort();
        // The lease boundary (`take_pending`) owns the no-cross-session
        // clearing; leftovers (packets still in transit at session end) ride
        // along in the free list until then.
        arena.return_pending(pending);
        bundle
    }
}

/// One solo session run, configured fluently: the single entry point that
/// replaced the `run_cell_session*` / `run_baseline_session*` free-function
/// family.
///
/// ```
/// use scenarios::{cells, SessionConfig, SessionRun, SessionSpec};
///
/// let cfg = SessionConfig {
///     duration: simcore::SimDuration::from_secs(2),
///     ..Default::default()
/// };
/// // From a declarative spec:
/// let spec = SessionSpec::cell(cells::amarisoft(), cfg.clone());
/// let bundle = SessionRun::new(&spec).run();
/// // Or directly from a cell config (a `.script(..)` call could install
/// // imperative overrides here):
/// let direct = SessionRun::cell(cells::amarisoft(), &cfg).run();
/// assert_eq!(bundle.packets.len(), direct.packets.len());
/// ```
///
/// Optional pieces compose: [`SessionRun::tap`] streams telemetry at
/// emission time, [`SessionRun::arena`] reuses a caller-owned
/// [`SessionArena`]'s buffers. The defaults (no tap, a fresh arena) produce
/// byte-identical bundles to any other combination — taps and arenas never
/// perturb the simulation.
pub struct SessionRun<'a> {
    source: RunSource<'a>,
    tap: Option<&'a mut dyn LiveTap>,
    arena: Option<&'a mut SessionArena>,
}

/// A one-shot cell-setup closure handed to [`SessionRun::script`].
type ScriptFn<'a> = Box<dyn FnOnce(&mut CellSim) + 'a>;

// A builder that lives on the stack for one call; boxing the inline
// `CellConfig` would buy nothing.
#[allow(clippy::large_enum_variant)]
enum RunSource<'a> {
    Spec(&'a crate::grid::SessionSpec),
    Cell {
        cell: CellConfig,
        app: AppSpec,
        cfg: &'a SessionConfig,
        script: Option<ScriptFn<'a>>,
    },
    Baseline {
        access: BaselineAccess,
        app: AppSpec,
        cfg: &'a SessionConfig,
    },
}

impl<'a> SessionRun<'a> {
    /// A run of a declarative [`SessionSpec`](crate::grid::SessionSpec)
    /// (access, workload, scripts, and config all come from the spec).
    pub fn new(spec: &'a crate::grid::SessionSpec) -> Self {
        SessionRun {
            source: RunSource::Spec(spec),
            tap: None,
            arena: None,
        }
    }

    /// A run over a 5G cell with the default RTC workload.
    pub fn cell(cell: CellConfig, cfg: &'a SessionConfig) -> Self {
        SessionRun {
            source: RunSource::Cell {
                cell,
                app: AppSpec::Rtc,
                cfg,
                script: None,
            },
            tap: None,
            arena: None,
        }
    }

    /// A baseline (wired or Wi-Fi) run with the default RTC workload.
    pub fn baseline(access: BaselineAccess, cfg: &'a SessionConfig) -> Self {
        SessionRun {
            source: RunSource::Baseline {
                access,
                app: AppSpec::Rtc,
                cfg,
            },
            tap: None,
            arena: None,
        }
    }

    /// Installs an imperative cell script (forced fades, cross-traffic
    /// windows, HARQ failures, RRC releases), applied before the call
    /// starts. Only meaningful for [`SessionRun::cell`] sources; ignored
    /// otherwise (spec sources carry their scripts as data).
    pub fn script(mut self, f: impl FnOnce(&mut CellSim) + 'a) -> Self {
        if let RunSource::Cell { script, .. } = &mut self.source {
            *script = Some(Box::new(f));
        }
        self
    }

    /// Selects the application workload for cell/baseline sources (spec
    /// sources carry their own [`AppSpec`]).
    pub fn app(mut self, spec: AppSpec) -> Self {
        match &mut self.source {
            RunSource::Cell { app, .. } | RunSource::Baseline { app, .. } => *app = spec,
            RunSource::Spec(_) => {}
        }
        self
    }

    /// Streams every telemetry record into `tap` at emission time (see
    /// [`telemetry::LiveTap`] for the event contract). The finished bundle
    /// is identical to an untapped run for the same inputs unless the tap
    /// requests an early exit, in which case the bundle is truncated at the
    /// abort tick.
    pub fn tap(mut self, tap: &'a mut dyn LiveTap) -> Self {
        self.tap = Some(tap);
        self
    }

    /// Runs inside a caller-owned [`SessionArena`], reusing its buffers —
    /// the allocation-reusing mode sweep workers use.
    pub fn arena(mut self, arena: &'a mut SessionArena) -> Self {
        self.arena = Some(arena);
        self
    }

    /// Drives the session to completion and returns its trace bundle.
    pub fn run(self) -> TraceBundle {
        let mut local_arena;
        let arena = match self.arena {
            Some(a) => a,
            None => {
                local_arena = SessionArena::new();
                &mut local_arena
            }
        };
        let mut null = telemetry::NullTap;
        let tap: &mut dyn LiveTap = match self.tap {
            Some(t) => t,
            None => &mut null,
        };
        let tapped = tap.is_active();
        let state = match self.source {
            RunSource::Spec(spec) => spec.start_in(tapped, arena),
            RunSource::Cell {
                cell,
                app,
                cfg,
                script,
            } => match script {
                Some(f) => SessionState::start_cell(cell, &app, cfg, f, tapped, arena),
                None => SessionState::start_cell(cell, &app, cfg, |_| {}, tapped, arena),
            },
            RunSource::Baseline { access, app, cfg } => {
                SessionState::start_baseline(access, &app, cfg, tapped, arena)
            }
        };
        drive(state, tap, arena)
    }
}

/// Runs a session over a 5G cell. `script` can install scripted overrides
/// (forced fades, cross-traffic windows, HARQ failures, RRC releases) on
/// the cell before the call starts.
#[deprecated(note = "use `SessionRun::cell(cell_cfg, cfg).script(script).run()`")]
pub fn run_cell_session(
    cell_cfg: CellConfig,
    cfg: &SessionConfig,
    script: impl FnOnce(&mut CellSim),
) -> TraceBundle {
    SessionRun::cell(cell_cfg, cfg).script(script).run()
}

/// Runs a session over a 5G cell while streaming every telemetry record into
/// `tap` at emission time (see [`telemetry::LiveTap`] for the event
/// contract).
#[deprecated(note = "use `SessionRun::cell(cell_cfg, cfg).script(script).tap(tap).run()`")]
pub fn run_cell_session_with_tap(
    cell_cfg: CellConfig,
    cfg: &SessionConfig,
    script: impl FnOnce(&mut CellSim),
    tap: &mut dyn LiveTap,
) -> TraceBundle {
    SessionRun::cell(cell_cfg, cfg)
        .script(script)
        .tap(tap)
        .run()
}

/// Cell session with a tap inside a caller-owned [`SessionArena`].
#[deprecated(
    note = "use `SessionRun::cell(cell_cfg, cfg).script(script).tap(tap).arena(arena).run()`"
)]
pub fn run_cell_session_with_tap_in(
    cell_cfg: CellConfig,
    cfg: &SessionConfig,
    script: impl FnOnce(&mut CellSim),
    tap: &mut dyn LiveTap,
    arena: &mut SessionArena,
) -> TraceBundle {
    SessionRun::cell(cell_cfg, cfg)
        .script(script)
        .tap(tap)
        .arena(arena)
        .run()
}

/// Runs a baseline (wired or Wi-Fi) session for the §2 comparisons.
#[deprecated(note = "use `SessionRun::baseline(access, cfg).run()`")]
pub fn run_baseline_session(access: BaselineAccess, cfg: &SessionConfig) -> TraceBundle {
    SessionRun::baseline(access, cfg).run()
}

/// Runs a baseline session with a live tap.
#[deprecated(note = "use `SessionRun::baseline(access, cfg).tap(tap).run()`")]
pub fn run_baseline_session_with_tap(
    access: BaselineAccess,
    cfg: &SessionConfig,
    tap: &mut dyn LiveTap,
) -> TraceBundle {
    SessionRun::baseline(access, cfg).tap(tap).run()
}

/// Baseline session with a tap inside a caller-owned [`SessionArena`].
#[deprecated(note = "use `SessionRun::baseline(access, cfg).tap(tap).arena(arena).run()`")]
pub fn run_baseline_session_with_tap_in(
    access: BaselineAccess,
    cfg: &SessionConfig,
    tap: &mut dyn LiveTap,
    arena: &mut SessionArena,
) -> TraceBundle {
    SessionRun::baseline(access, cfg)
        .tap(tap)
        .arena(arena)
        .run()
}

/// The solo driver: advances one [`SessionState`] to completion through the
/// arena's private route-event queue. All hot-loop storage comes from the
/// arena (the queue's `clear()` resets the tie-break sequence, so a
/// recycled queue replays identically to a fresh one); at steady state no
/// step of the tick loop allocates.
pub(crate) fn drive(
    mut state: SessionState,
    tap: &mut dyn LiveTap,
    arena: &mut SessionArena,
) -> TraceBundle {
    let (queue, scratch) = arena.solo_parts();
    queue.clear();
    while !state.is_done() {
        state.begin_tick(tap, scratch, queue);
        // 3. Due route events. (Route handlers never schedule new route
        // events, so this drain is closed within the tick.)
        let span = scratch.recorder.span_enter(SpanId::RouteDrain);
        let mut routed = 0u64;
        while let Some(ev) = queue.pop_due(state.now()) {
            state.route_event(ev.at, ev.event, tap);
            routed += 1;
        }
        scratch.recorder.span_exit(SpanId::RouteDrain, span);
        scratch.recorder.add(Counter::EngineRouteEvents, routed);
        if state.end_tick(tap, scratch) {
            break;
        }
    }
    state.finish(tap, arena)
}

/// Per-tick scratch buffers for the tapped telemetry drain, reused across
/// ticks so the hot loop stays allocation-free at steady state.
#[derive(Default)]
struct RanScratch {
    dci: Vec<telemetry::DciRecord>,
    gnb: Vec<telemetry::GnbLogRecord>,
}

/// Moves the cell simulator's accumulated DCI/gNB records into the tap and
/// the bundle. DCI goes through the sorted-append hook, which verifies (in
/// debug builds) that the cell simulator emits in time order; gNB records
/// are emitted out of order — RLC retransmissions are logged with their
/// scheduled (future) timestamps and interleave with same-slot buffer
/// samples — so they go through [`TraceBundle::append_gnb`]'s stable
/// insert-at-sorted-position policy.
fn drain_ran_telemetry(
    access: &mut AccessSim,
    bundle: &mut TraceBundle,
    tap: &mut dyn LiveTap,
    scratch: &mut RanScratch,
) {
    match access {
        AccessSim::Cell(cell) => {
            cell.drain_dci_into(&mut scratch.dci);
            cell.drain_gnb_into(&mut scratch.gnb);
        }
        AccessSim::Shared(shared) => {
            scratch.dci.append(&mut shared.dci_inbox);
            scratch.gnb.append(&mut shared.gnb_inbox);
        }
        AccessSim::Direct(_) => return,
    }
    for r in scratch.dci.drain(..) {
        tap.on_dci(&r);
        bundle.append_dci(r);
    }
    for r in scratch.gnb.drain(..) {
        tap.on_gnb(&r);
        bundle.append_gnb(r);
    }
}

fn deliver(
    pending: &mut IdMap<Pending>,
    bundle: &mut TraceBundle,
    id: u64,
    at: SimTime,
    app: &mut AppPair,
    to_ue: bool,
) -> bool {
    let Some(p) = pending.remove(&id) else {
        return false;
    };
    bundle.packets[p.record_idx].received = Some(at);
    match (&p.payload, app) {
        (AppPayload::Rtc(payload), AppPair::Rtc { a, b }) => {
            let endpoint = if to_ue { a } else { b };
            match payload {
                PacketPayload::Video { .. } | PacketPayload::Audio { .. } => {
                    let seq = bundle.packets[p.record_idx].seq;
                    endpoint.receiver.on_packet(at, seq, p.sent, payload);
                }
                PacketPayload::Feedback(fb) => endpoint.sender.on_transport_feedback(at, fb),
                PacketPayload::Report(rr) => endpoint.sender.on_receiver_report(at, rr),
            }
        }
        (AppPayload::Abr(payload), AppPair::Abr(pair)) => {
            if to_ue {
                pair.client.on_chunk(at, payload);
            } else {
                pair.server.on_request(at, payload);
            }
        }
        _ => debug_assert!(
            false,
            "in-flight payload kind must match the session workload"
        ),
    }
    true
}

fn abr_packet_record(p: &AbrOutgoing, dir: Direction) -> PacketRecord {
    PacketRecord {
        sent: p.at,
        received: None,
        direction: dir,
        stream: p.payload.stream(),
        seq: if p.payload.stream() == StreamKind::Rtcp {
            0
        } else {
            p.transport_seq
        },
        size_bytes: p.size_bytes,
    }
}

fn packet_record(p: &OutgoingPacket, dir: Direction) -> PacketRecord {
    PacketRecord {
        sent: p.at,
        received: None,
        direction: dir,
        stream: p.payload.stream(),
        seq: if p.payload.stream() == StreamKind::Rtcp {
            0
        } else {
            p.transport_seq
        },
        size_bytes: p.size_bytes,
    }
}

/// Cross-module test helpers (also used by the shared-cell driver's suite).
#[cfg(test)]
pub(crate) mod tests_support {
    use telemetry::TraceBundle;

    /// Field-by-field equality over every record type a bundle carries.
    pub(crate) fn assert_bundles_identical(a: &TraceBundle, b: &TraceBundle) {
        assert_eq!(a.packets.len(), b.packets.len());
        for (x, y) in a.packets.iter().zip(&b.packets) {
            assert_eq!(
                (x.sent, x.received, x.seq, x.size_bytes),
                (y.sent, y.received, y.seq, y.size_bytes)
            );
        }
        assert_eq!(a.dci.len(), b.dci.len());
        for (x, y) in a.dci.iter().zip(&b.dci) {
            assert_eq!((x.ts, x.rnti, x.tbs_bits), (y.ts, y.rnti, y.tbs_bits));
        }
        assert_eq!(a.gnb.len(), b.gnb.len());
        for (x, y) in a.gnb.iter().zip(&b.gnb) {
            assert_eq!((x.ts, &x.event), (y.ts, &y.event));
        }
        assert_eq!(a.app_local.len(), b.app_local.len());
        assert_eq!(a.app_remote.len(), b.app_remote.len());
        assert_eq!(a.playback.len(), b.playback.len());
        for (x, y) in a.playback.iter().zip(&b.playback) {
            assert_eq!(
                (x.ts, x.stall_count, x.rung, x.buffer_ms.to_bits()),
                (y.ts, y.stall_count, y.rung, y.buffer_ms.to_bits())
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells;

    fn short_cfg(seed: u64) -> SessionConfig {
        SessionConfig {
            duration: SimDuration::from_secs(15),
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn baseline_wired_session_is_clean() {
        let b = SessionRun::baseline(BaselineAccess::Wired, &short_cfg(1)).run();
        assert!(b.is_sorted());
        assert!(b.packets.len() > 1_000, "packets {}", b.packets.len());
        assert!(b.dci.is_empty());
        // Media should flow with sub-5 ms one-way delay on wired LAN.
        let delays: Vec<f64> = b
            .packets
            .iter()
            .filter(|p| p.direction == Direction::Uplink && p.stream == StreamKind::Video)
            .filter_map(|p| p.one_way_delay())
            .map(|d| d.as_millis_f64())
            .collect();
        assert!(!delays.is_empty());
        // LAN access (~0.4 ms) + WAN transit (~3 ms) + jitter.
        let cdf = telemetry::Cdf::from_samples(delays);
        assert!(cdf.median().unwrap() < 8.0, "median {:?}", cdf.median());
        // Both clients produced stats at 50 ms cadence.
        assert!(b.app_local.len() > 250);
        let last = b.app_local.last().unwrap();
        assert!(last.total_audio_samples > 0);
    }

    #[test]
    fn cell_session_produces_full_bundle() {
        let b = SessionRun::cell(cells::amarisoft(), &short_cfg(2)).run();
        assert!(b.is_sorted());
        assert!(!b.dci.is_empty(), "cell sessions must emit DCI telemetry");
        assert!(!b.gnb.is_empty(), "Amarisoft emits gNB logs");
        assert!(b.meta.has_gnb_log);
        // Media flows in both directions.
        let ul_media = b
            .packets
            .iter()
            .filter(|p| p.direction == Direction::Uplink && p.stream != StreamKind::Rtcp)
            .count();
        let dl_media = b
            .packets
            .iter()
            .filter(|p| p.direction == Direction::Downlink && p.stream != StreamKind::Rtcp)
            .count();
        assert!(ul_media > 500, "ul {ul_media}");
        assert!(dl_media > 500, "dl {dl_media}");
        // Most packets get delivered (RLC is reliable; only path loss drops).
        let delivered = b.packets.iter().filter(|p| p.received.is_some()).count();
        assert!(delivered as f64 > 0.95 * b.packets.len() as f64);
    }

    #[test]
    fn commercial_cell_hides_gnb_log() {
        let b = SessionRun::cell(cells::tmobile_tdd_100mhz(), &short_cfg(3)).run();
        assert!(b.gnb.is_empty());
        assert!(!b.meta.has_gnb_log);
    }

    #[test]
    fn cellular_delay_exceeds_wired() {
        let cfg = short_cfg(4);
        let cell = SessionRun::cell(cells::tmobile_fdd_15mhz(), &cfg).run();
        let wired = SessionRun::baseline(BaselineAccess::Wired, &cfg).run();
        let med = |b: &TraceBundle, dir| {
            let d: Vec<f64> = b
                .packets
                .iter()
                .filter(|p| p.direction == dir && p.stream != StreamKind::Rtcp)
                .filter_map(|p| p.one_way_delay())
                .map(|d| d.as_millis_f64())
                .collect();
            telemetry::Cdf::from_samples(d).median().unwrap()
        };
        let cell_ul = med(&cell, Direction::Uplink);
        let wired_ul = med(&wired, Direction::Uplink);
        assert!(
            cell_ul > 3.0 * wired_ul,
            "5G UL {cell_ul} ms should dominate wired {wired_ul} ms"
        );
    }

    /// Rebuilds a bundle purely from tap events, exercising the documented
    /// [`LiveTap`] contract: packets announced at send time and patched at
    /// delivery, app/DCI in order, gNB out of order through `append_gnb`.
    struct RecordingTap {
        rebuilt: TraceBundle,
        index_of: std::collections::HashMap<u64, usize>,
        ticks: usize,
        finished_at: Option<SimTime>,
        stop_after: Option<SimTime>,
        now: SimTime,
    }

    impl RecordingTap {
        fn new() -> Self {
            RecordingTap {
                rebuilt: TraceBundle::new(SessionMeta::baseline("rebuilt", SimDuration::ZERO, 0)),
                index_of: std::collections::HashMap::new(),
                ticks: 0,
                finished_at: None,
                stop_after: None,
                now: SimTime::ZERO,
            }
        }
    }

    impl telemetry::LiveTap for RecordingTap {
        fn on_app_local(&mut self, r: &telemetry::AppStatsRecord) {
            self.rebuilt.append_app_local(r.clone());
        }
        fn on_playback(&mut self, r: &telemetry::PlaybackStatsRecord) {
            self.rebuilt.append_playback(r.clone());
        }
        fn on_app_remote(&mut self, r: &telemetry::AppStatsRecord) {
            self.rebuilt.append_app_remote(r.clone());
        }
        fn on_dci(&mut self, r: &telemetry::DciRecord) {
            self.rebuilt.append_dci(r.clone());
        }
        fn on_gnb(&mut self, r: &telemetry::GnbLogRecord) {
            self.rebuilt.append_gnb(r.clone());
        }
        fn on_packet_sent(&mut self, id: u64, r: &PacketRecord) {
            assert!(r.received.is_none(), "fate must be unknown at send time");
            self.index_of.insert(id, self.rebuilt.packets.len());
            self.rebuilt.packets.push(r.clone());
        }
        fn on_packet_delivered(&mut self, id: u64, at: SimTime) {
            let idx = self.index_of[&id];
            self.rebuilt.packets[idx].received = Some(at);
        }
        fn on_tick(&mut self, now: SimTime) {
            self.ticks += 1;
            self.now = now;
        }
        fn on_finish(&mut self, now: SimTime) {
            self.finished_at = Some(now);
        }
        fn should_stop(&self) -> bool {
            self.stop_after.is_some_and(|t| self.now >= t)
        }
    }

    use super::tests_support::assert_bundles_identical;

    #[test]
    fn tapped_session_matches_untapped_and_rebuilds_bundle() {
        let cfg = short_cfg(8);
        let untapped = SessionRun::cell(cells::amarisoft(), &cfg).run();
        let mut tap = RecordingTap::new();
        let tapped = SessionRun::cell(cells::amarisoft(), &cfg)
            .tap(&mut tap)
            .run();
        // The tap must not perturb the simulation.
        assert_bundles_identical(&untapped, &tapped);
        // Rebuilding from tap events reproduces the bundle after one sort
        // (packet records are announced in emission order, like the engine's).
        tap.rebuilt.sort();
        assert_bundles_identical(&tapped, &tap.rebuilt);
        assert!(
            tap.ticks > 10_000,
            "one tick per ms expected, got {}",
            tap.ticks
        );
        assert_eq!(tap.finished_at, Some(SimTime::ZERO + cfg.duration));
    }

    #[test]
    fn tap_can_abort_session_early() {
        let cfg = short_cfg(9);
        let mut tap = RecordingTap::new();
        tap.stop_after = Some(SimTime::from_secs(5));
        let truncated = SessionRun::cell(cells::amarisoft(), &cfg)
            .tap(&mut tap)
            .run();
        let full = SessionRun::cell(cells::amarisoft(), &cfg).run();
        assert!(truncated.packets.len() < full.packets.len() / 2);
        assert!(truncated.horizon() < SimTime::from_secs(6));
        // Early exit reports the abort instant, not the configured duration.
        let finished = tap.finished_at.unwrap();
        assert!(finished >= SimTime::from_secs(5) && finished < SimTime::from_secs(6));
        // And the bundle's metadata reflects the time that actually ran, so
        // per-minute normalisation doesn't divide by unsimulated time.
        assert_eq!(
            truncated.meta.duration,
            finished.saturating_since(SimTime::ZERO)
        );
        assert!(full.meta.duration == cfg.duration);
    }

    #[test]
    fn sessions_are_deterministic() {
        let cfg = short_cfg(7);
        let x = SessionRun::cell(cells::mosolabs(), &cfg).run();
        let y = SessionRun::cell(cells::mosolabs(), &cfg).run();
        assert_eq!(x.packets.len(), y.packets.len());
        assert_eq!(x.dci.len(), y.dci.len());
        for (p, q) in x.packets.iter().zip(&y.packets) {
            assert_eq!(p.sent, q.sent);
            assert_eq!(p.received, q.received);
        }
    }

    /// The deprecated free-function wrappers must stay byte-identical to
    /// the builder they delegate to.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_session_run() {
        let cfg = short_cfg(21);
        let via_builder = SessionRun::cell(cells::mosolabs(), &cfg)
            .script(|sim| sim.script_rrc_release(SimTime::from_secs(5)))
            .run();
        let via_wrapper = run_cell_session(cells::mosolabs(), &cfg, |sim| {
            sim.script_rrc_release(SimTime::from_secs(5))
        });
        assert_bundles_identical(&via_builder, &via_wrapper);
        let base_builder = SessionRun::baseline(BaselineAccess::Wifi, &cfg).run();
        let base_wrapper = run_baseline_session(BaselineAccess::Wifi, &cfg);
        assert_bundles_identical(&base_builder, &base_wrapper);
    }

    #[test]
    fn abr_session_streams_over_a_cell() {
        let cfg = short_cfg(31);
        let b = SessionRun::cell(cells::amarisoft(), &cfg)
            .app(AppSpec::Abr(AbrConfig::default()))
            .run();
        assert!(b.is_sorted());
        assert!(!b.dci.is_empty(), "cell telemetry flows for ABR too");
        // Playback samples on the 50 ms lattice; RTC app stats absent.
        assert!(b.playback.len() > 250, "playback {}", b.playback.len());
        assert!(b.app_local.is_empty() && b.app_remote.is_empty());
        let last = b.playback.last().unwrap();
        assert!(last.started, "playback must start on a healthy cell");
        assert!(last.segments_fetched > 5);
        // Segment requests ride the uplink, chunks ride the downlink.
        let ul = b
            .packets
            .iter()
            .filter(|p| p.direction == Direction::Uplink)
            .count();
        let dl = b
            .packets
            .iter()
            .filter(|p| p.direction == Direction::Downlink && p.stream == StreamKind::Video)
            .count();
        assert!(ul > 5, "requests {ul}");
        assert!(dl > 500, "chunks {dl}");
    }

    #[test]
    fn abr_sessions_are_deterministic_and_tap_invisible() {
        let cfg = short_cfg(32);
        let mk = || {
            SessionRun::cell(cells::mosolabs(), &cfg)
                .app(AppSpec::Abr(AbrConfig::default()))
                .run()
        };
        let x = mk();
        let y = mk();
        assert_bundles_identical(&x, &y);
        assert_eq!(x.playback.len(), y.playback.len());
        for (p, q) in x.playback.iter().zip(&y.playback) {
            assert_eq!((p.ts, p.stall_count, p.rung), (q.ts, q.stall_count, q.rung));
            assert_eq!(p.buffer_ms.to_bits(), q.buffer_ms.to_bits());
        }
        // A recording tap neither perturbs the run nor misses records.
        let mut tap = RecordingTap::new();
        let tapped = SessionRun::cell(cells::mosolabs(), &cfg)
            .app(AppSpec::Abr(AbrConfig::default()))
            .tap(&mut tap)
            .run();
        assert_bundles_identical(&x, &tapped);
        assert_eq!(tap.rebuilt.playback.len(), tapped.playback.len());
    }
}
