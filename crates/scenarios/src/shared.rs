//! Shared-cell driver: several diagnosed two-party calls riding *one*
//! [`CellSim`], contending for the same PRB budget alongside the cell's
//! scripted traffic UEs.
//!
//! The solo engine couples one session to one private cell; this driver
//! inverts the ownership. It holds the cell, gives each call pair a
//! shared-access session (mailbox access, see
//! [`SessionState::start_shared`]), and per engine tick runs:
//!
//! 1. [`SessionState::emit_tick`] on every active session — endpoints emit
//!    into their outboxes and the reverse path.
//! 2. Outbox flush — every session's staged packets enter the cell,
//!    addressed to its experiment UE.
//! 3. One `cell.poll` advances all UEs through the shared slot loop.
//! 4. Fan-out — per-UE deliveries and gNB records, plus a per-viewer copy
//!    of the whole control channel (`is_target_ue` stamped per pair), land
//!    in each session's inboxes.
//! 5. [`SessionState::collect_access`] on every session routes the
//!    deliveries onward; due route events dispatch in global
//!    `(time, session, seq)` order from the [`SharedRouteQueue`].
//!
//! With one pair and no traffic UEs this pipeline is byte-identical to
//! [`crate::session::run_cell_session`] — the shared-cell determinism suite
//! asserts it — so sharing a cell is purely additive: existing single-call
//! traces never change.

use ran_sim::{CellConfig, CellSim};
use simcore::{derive_seed, SimDuration, SimTime};
use telemetry::{DciRecord, NullTap, TraceBundle};

use crate::session::{AppSpec, SessionArena, SessionConfig, SessionState, SharedRouteQueue};

/// Drives N diagnosed call pairs over one shared cell to completion.
///
/// Pair 0 keeps the base [`SessionConfig`] verbatim (including its seed —
/// that is what makes the single-pair case reproduce a solo run exactly);
/// pair `i > 0` runs the same config under `derive_seed(seed, i)` so the
/// pairs' endpoint behaviour decorrelates.
pub struct SharedCellDriver {
    cell: CellSim,
    lanes: Vec<Option<SessionState>>,
    queue: SharedRouteQueue,
    arena: SessionArena,
    tick: SimDuration,
    dci_scratch: Vec<(u32, DciRecord)>,
}

impl SharedCellDriver {
    /// Builds the cell (with its configured scripted traffic UEs), camps
    /// `pairs` experiment UEs on it, and prepares one shared-access session
    /// per pair. `script` installs scripted overrides on the cell before
    /// the calls start (cell-level hooks like
    /// [`CellSim::script_cross_traffic`] affect every pair; per-UE hooks
    /// address experiment UE 0).
    pub fn new(
        cell_cfg: CellConfig,
        cfg: &SessionConfig,
        pairs: usize,
        script: impl FnOnce(&mut CellSim),
    ) -> Self {
        Self::new_with_app(cell_cfg, &AppSpec::Rtc, cfg, pairs, script)
    }

    /// [`Self::new`] with an explicit application workload: every pair runs
    /// `app` (an [`AppSpec::Abr`] driver puts N streaming players on one
    /// cell). The session engine is workload-generic, so the tick pipeline
    /// is identical either way.
    pub fn new_with_app(
        cell_cfg: CellConfig,
        app: &AppSpec,
        cfg: &SessionConfig,
        pairs: usize,
        script: impl FnOnce(&mut CellSim),
    ) -> Self {
        assert!(pairs >= 1, "a shared cell needs at least one call pair");
        let mut arena = SessionArena::new();
        let mut cell = CellSim::new_in(cell_cfg, cfg.seed, arena.take_ue_table());
        for _ in 1..pairs {
            cell.add_experiment_ue();
        }
        script(&mut cell);
        let lanes = (0..pairs)
            .map(|i| {
                let lane_cfg = if i == 0 {
                    cfg.clone()
                } else {
                    SessionConfig {
                        seed: derive_seed(cfg.seed, i as u64),
                        ..cfg.clone()
                    }
                };
                Some(SessionState::start_shared(
                    cell.config(),
                    app,
                    &lane_cfg,
                    i as u32,
                    false,
                    &mut arena,
                ))
            })
            .collect();
        SharedCellDriver {
            cell,
            lanes,
            queue: SharedRouteQueue::new(),
            arena,
            tick: cfg.tick,
            dci_scratch: Vec::new(),
        }
    }

    /// Number of diagnosed call pairs.
    pub fn pairs(&self) -> usize {
        self.lanes.len()
    }

    /// Number of scripted traffic UEs sharing the cell.
    pub fn n_traffic_ues(&self) -> usize {
        self.cell.n_traffic_ues()
    }

    /// Runs every pair to completion and returns one [`TraceBundle`] per
    /// pair, in pair order. Each bundle carries that pair's packets, app
    /// stats, per-UE gNB records, and its own viewpoint on the cell's whole
    /// control channel.
    pub fn run(mut self) -> Vec<TraceBundle> {
        let tap = &mut NullTap;
        let n = self.lanes.len();
        let mut bundles: Vec<Option<TraceBundle>> = (0..n).map(|_| None).collect();
        let mut cur: u64 = 0;
        while self.lanes.iter().any(Option::is_some) {
            cur += 1;
            let now = SimTime::ZERO + self.tick * cur;

            // 1. Endpoints emit (into outboxes and the reverse path).
            for (i, lane) in self.lanes.iter_mut().enumerate() {
                if let Some(state) = lane {
                    let mut sink = self.queue.sink(i as u64, SimDuration::ZERO);
                    state.emit_tick(tap, self.arena.scratch_mut(), &mut sink);
                }
            }

            // 2. Staged packets enter the shared cell.
            for lane in self.lanes.iter_mut().flatten() {
                lane.flush_shared_outbox(&mut self.cell);
            }

            // 3. One slot-loop advance covers every UE in the cell.
            self.cell.poll(now);

            // 4. Fan the cell's output out to the riding sessions.
            self.dci_scratch.clear();
            self.cell.drain_dci_tagged_into(&mut self.dci_scratch);
            for (i, lane) in self.lanes.iter_mut().enumerate() {
                let Some(state) = lane else { continue };
                let ue = i as u32;
                let (inbox, dci, gnb) = state.shared_inboxes();
                self.cell.drain_deliveries_for_into(ue, inbox);
                for (tag, rec) in &self.dci_scratch {
                    let mut r = rec.clone();
                    r.is_target_ue = *tag == ue;
                    dci.push(r);
                }
                self.cell.drain_gnb_for_into(ue, gnb);
            }

            // 5. Deliveries continue along the paths; then the shared queue
            // dispatches due route events in (time, session, seq) order.
            for (i, lane) in self.lanes.iter_mut().enumerate() {
                if let Some(state) = lane {
                    let mut sink = self.queue.sink(i as u64, SimDuration::ZERO);
                    state.collect_access(self.arena.scratch_mut(), &mut sink);
                }
            }
            while let Some((at, sid, ev)) = self.queue.pop_due(now) {
                // Events of an already-finished pair are dropped, exactly as
                // a solo run drops its queue leftovers at session end.
                if let Some(state) = &mut self.lanes[sid as usize] {
                    state.route_event(at, ev, tap);
                }
            }

            // 6. Stats sampling + completion check per pair.
            for (i, lane) in self.lanes.iter_mut().enumerate() {
                let finished = match lane {
                    Some(state) => state.end_tick(tap, self.arena.scratch_mut()),
                    None => false,
                };
                if finished {
                    let state = lane.take().expect("finished lane present");
                    bundles[i] = Some(state.finish(tap, &mut self.arena));
                }
            }
        }
        // The cell's scripted-UE table goes back to the arena free list,
        // keeping the run allocation-flat under repeated driver use.
        self.arena.return_ue_table(self.cell.take_ue_table());
        bundles
            .into_iter()
            .map(|b| b.expect("every pair finished"))
            .collect()
    }
}

/// Convenience wrapper: build a [`SharedCellDriver`] and run it.
pub fn run_shared_cell_sessions(
    cell_cfg: CellConfig,
    cfg: &SessionConfig,
    pairs: usize,
    script: impl FnOnce(&mut CellSim),
) -> Vec<TraceBundle> {
    SharedCellDriver::new(cell_cfg, cfg, pairs, script).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells;
    use crate::session::SessionRun;
    use ran_sim::traffic_mix;
    use telemetry::Direction;

    fn cfg(seed: u64, secs: u64) -> SessionConfig {
        SessionConfig {
            duration: SimDuration::from_secs(secs),
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn single_pair_matches_solo_session_exactly() {
        let solo = SessionRun::cell(cells::amarisoft(), &cfg(77, 10)).run();
        let shared = run_shared_cell_sessions(cells::amarisoft(), &cfg(77, 10), 1, |_| {});
        assert_eq!(shared.len(), 1);
        crate::session::tests_support::assert_bundles_identical(&solo, &shared[0]);
    }

    #[test]
    fn pairs_share_the_cell_and_see_each_other_in_dci() {
        let mut cell = cells::amarisoft();
        cell.traffic_ues = traffic_mix(8);
        let bundles = run_shared_cell_sessions(cell, &cfg(5, 8), 2, |_| {});
        assert_eq!(bundles.len(), 2);
        let rnti0: std::collections::BTreeSet<u32> = bundles[0]
            .dci
            .iter()
            .filter(|d| d.is_target_ue)
            .map(|d| d.rnti)
            .collect();
        let rnti1: std::collections::BTreeSet<u32> = bundles[1]
            .dci
            .iter()
            .filter(|d| d.is_target_ue)
            .map(|d| d.rnti)
            .collect();
        assert!(!rnti0.is_empty() && !rnti1.is_empty());
        assert!(rnti0.is_disjoint(&rnti1), "pairs must own distinct RNTIs");
        // Both viewers decode the same control channel.
        assert_eq!(bundles[0].dci.len(), bundles[1].dci.len());
        // Both pairs actually completed their calls.
        for b in &bundles {
            assert!(b.packets.len() > 500);
            let delivered = b.packets.iter().filter(|p| p.received.is_some()).count();
            assert!(delivered * 10 > b.packets.len() * 8, "most packets deliver");
            assert!(b
                .packets
                .iter()
                .any(|p| p.direction == Direction::Uplink && p.received.is_some()));
        }
    }

    #[test]
    fn driver_is_deterministic_across_runs() {
        let mk = || {
            let mut cell = cells::mosolabs();
            cell.traffic_ues = traffic_mix(4);
            run_shared_cell_sessions(cell, &cfg(9, 6), 2, |_| {})
        };
        let a = mk();
        let b = mk();
        for (x, y) in a.iter().zip(&b) {
            crate::session::tests_support::assert_bundles_identical(x, y);
        }
    }
}
