//! # scenarios — testbed configurations and the session engine
//!
//! Reconstructs the paper's experimental setups:
//!
//! * [`cells`] — the four 5G cells of Table 1 as `ran-sim` configurations.
//! * [`session`] — the two-party WebRTC call engine (Fig. 7): UE client ↔
//!   access network ↔ core ↔ transit ↔ wired peer, with full cross-layer
//!   trace collection into a [`telemetry::TraceBundle`].
//! * [`zoom_campus`] — the synthetic stand-in for the proprietary campus
//!   Zoom QSS dataset (§2.2, Figs. 5–6).
//! * [`axis`] — declarative [`ScenarioAxis`] parameter sweeps over
//!   cell/session fields, expanded standalone or by the grid builder.

pub mod axis;
pub mod cells;
pub mod grid;
pub mod session;
pub mod shared;
pub mod zoom_campus;

pub use axis::{apply_patches, expand_product, AxisPatch, AxisPoint, ScenarioAxis, SeedPolicy};
pub use cells::{
    all_cells, amarisoft, amarisoft_ideal, mosolabs, tmobile_fdd_15mhz, tmobile_fdd_15mhz_quiet,
    tmobile_tdd_100mhz,
};
pub use grid::{all_cells_grid, AccessSpec, ScriptAction, SessionGrid, SessionSpec};
#[allow(deprecated)]
pub use session::{
    run_baseline_session, run_baseline_session_with_tap, run_baseline_session_with_tap_in,
    run_cell_session, run_cell_session_with_tap, run_cell_session_with_tap_in,
};
pub use session::{
    AppSpec, BaselineAccess, EngineScratch, RouteEvent, RouteSink, SessionArena, SessionConfig,
    SessionRun, SessionState, SharedRouteQueue, TaggedSink,
};
pub use shared::{run_shared_cell_sessions, SharedCellDriver};
pub use zoom_campus::{
    generate as generate_campus_dataset, AccessType, CampusDatasetSize, ZoomQosRecord,
};
