//! Sweep-grid constructors: declarative session specifications the parallel
//! sweep engine (`domino-sweep`) fans across OS threads.
//!
//! A [`SessionSpec`] is plain data — cell (or baseline access), scripted
//! impairments, and a [`SessionConfig`] — so a grid can be built once,
//! cloned, partitioned across threads in any order, and every session still
//! runs identically. Seeds come from [`simcore::derive_seed`], keyed by
//! `(master, index)` in build order: appending sessions to the end of a grid
//! never perturbs the ones already in it (inserting or reordering earlier
//! axes shifts indices and therefore seeds).

use simcore::{derive_seed, SimDuration, SimTime};
use telemetry::{Direction, Lateness, TapChaosSpec, TraceBundle};

use ran_sim::{CellConfig, CellSim};

use crate::cells::all_cells;
use crate::session::{AppSpec, BaselineAccess, SessionArena, SessionConfig, SessionRun};

/// Which access network a session runs over.
#[derive(Debug, Clone)]
pub enum AccessSpec {
    /// A 5G cell (boxed: `CellConfig` dwarfs the baseline variant).
    Cell(Box<CellConfig>),
    /// A wired/Wi-Fi baseline.
    Baseline(BaselineAccess),
}

/// A scripted impairment, as data (mirrors the `CellSim::script_*` hooks so
/// specs stay `Clone + Send` for the parallel sweep).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScriptAction {
    /// Force the SINR of a direction during a window.
    Sinr {
        /// Affected direction.
        dir: Direction,
        /// Window start.
        from: SimTime,
        /// Window end.
        to: SimTime,
        /// Forced SINR in dB.
        sinr_db: f64,
    },
    /// Force cross-traffic PRB load during a window.
    CrossTraffic {
        /// Affected direction.
        dir: Direction,
        /// Window start.
        from: SimTime,
        /// Window end.
        to: SimTime,
        /// Fraction of PRBs taken by other UEs.
        prb_fraction: f64,
    },
    /// Force HARQ attempts below an index to fail during a window.
    HarqFailures {
        /// Affected direction.
        dir: Direction,
        /// Window start.
        from: SimTime,
        /// Window end.
        to: SimTime,
        /// Attempts with index below this fail.
        fail_attempts: u8,
    },
    /// Force an RRC release.
    RrcRelease {
        /// Release instant.
        at: SimTime,
    },
}

impl ScriptAction {
    /// Applies this action to a cell simulator before the call starts.
    pub fn apply(&self, cell: &mut CellSim) {
        match *self {
            ScriptAction::Sinr {
                dir,
                from,
                to,
                sinr_db,
            } => cell.script_sinr(dir, from, to, sinr_db),
            ScriptAction::CrossTraffic {
                dir,
                from,
                to,
                prb_fraction,
            } => cell.script_cross_traffic(dir, from, to, prb_fraction),
            ScriptAction::HarqFailures {
                dir,
                from,
                to,
                fail_attempts,
            } => cell.script_harq_failures(dir, from, to, fail_attempts),
            ScriptAction::RrcRelease { at } => cell.script_rrc_release(at),
        }
    }
}

/// One fully specified session of a sweep.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Label for reports (defaults to the cell/baseline name).
    pub label: String,
    /// Access network.
    pub access: AccessSpec,
    /// Application workload (RTC call or ABR stream) riding the access.
    pub app: AppSpec,
    /// Scripted impairments (applied to cells; ignored for baselines).
    pub scripts: Vec<ScriptAction>,
    /// Session configuration, including the derived seed.
    pub cfg: SessionConfig,
    /// Telemetry-chaos plan for live-tap consumers (`None` = clean
    /// telemetry). The session engine itself ignores this: it is honoured
    /// by drivers that wrap the tap (the sweep engine, chaos tests).
    pub chaos: Option<TapChaosSpec>,
    /// Per-spec watermark lateness override for live-tap consumers
    /// (`None` = the sweep's configured default).
    pub lateness: Option<Lateness>,
}

impl SessionSpec {
    /// A cell session spec with no scripts.
    pub fn cell(cell: CellConfig, cfg: SessionConfig) -> Self {
        SessionSpec {
            label: cell.name.clone(),
            access: AccessSpec::Cell(Box::new(cell)),
            app: AppSpec::Rtc,
            scripts: Vec::new(),
            cfg,
            chaos: None,
            lateness: None,
        }
    }

    /// A baseline session spec.
    pub fn baseline(access: BaselineAccess, cfg: SessionConfig) -> Self {
        let label = match access {
            BaselineAccess::Wired => "Wired baseline",
            BaselineAccess::Wifi => "Wi-Fi baseline",
        };
        SessionSpec {
            label: label.to_string(),
            access: AccessSpec::Baseline(access),
            app: AppSpec::Rtc,
            scripts: Vec::new(),
            cfg,
            chaos: None,
            lateness: None,
        }
    }

    /// Switches the session to the QUIC/ABR streaming workload.
    pub fn abr(mut self, cfg: abr_sim::AbrConfig) -> Self {
        self.app = AppSpec::Abr(cfg);
        self
    }

    /// Adds a scripted impairment.
    pub fn with_script(mut self, action: ScriptAction) -> Self {
        self.scripts.push(action);
        self
    }

    /// Sets the telemetry-chaos plan for live-tap consumers.
    pub fn with_chaos(mut self, chaos: TapChaosSpec) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Overrides the live watermark lateness policy for this session.
    pub fn with_lateness(mut self, lateness: Lateness) -> Self {
        self.lateness = Some(lateness);
        self
    }

    /// Replaces the label.
    pub fn labelled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Runs the session, producing its trace bundle.
    pub fn run(&self) -> TraceBundle {
        self.run_with_tap(&mut telemetry::NullTap)
    }

    /// Runs the session inside a caller-owned [`SessionArena`], reusing its
    /// buffers (sweep workers thread one arena through every session).
    pub fn run_in(&self, arena: &mut SessionArena) -> TraceBundle {
        self.run_with_tap_in(&mut telemetry::NullTap, arena)
    }

    /// Runs the session while streaming telemetry into `tap` at emission
    /// time (see [`telemetry::LiveTap`]). The returned bundle matches
    /// [`Self::run`] unless the tap aborts the session early.
    pub fn run_with_tap(&self, tap: &mut dyn telemetry::LiveTap) -> TraceBundle {
        self.run_with_tap_in(tap, &mut SessionArena::new())
    }

    /// Starts the session in steppable form (see
    /// [`SessionState`](crate::session::SessionState)): the multiplexing
    /// entry point. `tapped` mirrors `LiveTap::is_active` for the tap the
    /// driver will pass to the step methods; per-session sub-state (the
    /// in-flight map, the bundle) is leased from `arena` and returned at
    /// `finish`.
    pub fn start_in(&self, tapped: bool, arena: &mut SessionArena) -> crate::session::SessionState {
        match &self.access {
            AccessSpec::Cell(cell) => crate::session::SessionState::start_cell(
                (**cell).clone(),
                &self.app,
                &self.cfg,
                |sim| {
                    for a in &self.scripts {
                        a.apply(sim);
                    }
                },
                tapped,
                arena,
            ),
            AccessSpec::Baseline(access) => crate::session::SessionState::start_baseline(
                *access, &self.app, &self.cfg, tapped, arena,
            ),
        }
    }

    /// [`Self::run_with_tap`] inside a caller-owned [`SessionArena`].
    pub fn run_with_tap_in(
        &self,
        tap: &mut dyn telemetry::LiveTap,
        arena: &mut SessionArena,
    ) -> TraceBundle {
        SessionRun::new(self).tap(tap).arena(arena).run()
    }
}

/// Builder for grids of sessions: cells × durations × scenario axes × seeds.
#[derive(Debug, Clone)]
pub struct SessionGrid {
    cells: Vec<CellConfig>,
    durations: Vec<SimDuration>,
    axes: Vec<crate::axis::ScenarioAxis>,
    master_seed: u64,
    sessions_per_point: usize,
    base: SessionConfig,
}

impl Default for SessionGrid {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionGrid {
    /// An empty grid with the default session configuration.
    pub fn new() -> Self {
        SessionGrid {
            cells: Vec::new(),
            durations: vec![SessionConfig::default().duration],
            axes: Vec::new(),
            master_seed: 0,
            sessions_per_point: 1,
            base: SessionConfig::default(),
        }
    }

    /// Sets the cells to sweep.
    pub fn cells(mut self, cells: impl IntoIterator<Item = CellConfig>) -> Self {
        self.cells = cells.into_iter().collect();
        self
    }

    /// Sets the session durations to sweep.
    pub fn durations(mut self, durations: impl IntoIterator<Item = SimDuration>) -> Self {
        self.durations = durations.into_iter().collect();
        self
    }

    /// Appends a [`ScenarioAxis`](crate::axis::ScenarioAxis): the grid
    /// product gains one dimension per axis (the last added varies fastest,
    /// just before repetitions). Each spec gets every active point's patches
    /// applied in axis order and a `name=label` segment in its label.
    pub fn axis(mut self, axis: crate::axis::ScenarioAxis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Sets the master seed; per-session seeds derive from it.
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Number of seed repetitions per (cell, duration) point.
    pub fn sessions_per_point(mut self, n: usize) -> Self {
        self.sessions_per_point = n.max(1);
        self
    }

    /// Base configuration applied to every session (duration/seed overridden).
    pub fn base_config(mut self, cfg: SessionConfig) -> Self {
        self.base = cfg;
        self
    }

    /// Materialises the grid in deterministic order: cell-major, then
    /// duration, then axis points (row-major, last axis fastest), then
    /// repetition. Seeds derive from `(master_seed, build index)`: appending
    /// **cells** (the outermost dimension) extends the spec list without
    /// perturbing existing sessions, but growing an inner dimension
    /// (durations, axes, repetitions) shifts later build indices and
    /// therefore reseeds them.
    pub fn build(&self) -> Vec<SessionSpec> {
        let combos: usize = self.axes.iter().map(|a| a.len().max(1)).product();
        let mut specs = Vec::new();
        for cell in &self.cells {
            for &duration in &self.durations {
                for combo in 0..combos {
                    for rep in 0..self.sessions_per_point {
                        let index = specs.len() as u64;
                        let cfg = SessionConfig {
                            duration,
                            seed: derive_seed(self.master_seed, index),
                            ..self.base.clone()
                        };
                        let mut label = format!("{} / {:.0}s", cell.name, duration.as_secs_f64());
                        let mut spec = SessionSpec::cell(cell.clone(), cfg);
                        // Decompose the combo index right-to-left so the
                        // last axis varies fastest.
                        let mut indices = vec![0usize; self.axes.len()];
                        let mut rem = combo;
                        for (k, axis) in self.axes.iter().enumerate().rev() {
                            let n = axis.len().max(1);
                            indices[k] = rem % n;
                            rem /= n;
                        }
                        for (axis, &idx) in self.axes.iter().zip(&indices) {
                            if axis.is_empty() {
                                continue;
                            }
                            let point = &axis.points[idx];
                            crate::axis::apply_patches(&mut spec, &point.patches);
                            label.push_str(&format!(" / {}={}", axis.name, point.label));
                        }
                        label.push_str(&format!(" / rep{rep}"));
                        specs.push(spec.labelled(label));
                    }
                }
            }
        }
        specs
    }
}

/// The standard four-cell grid of Table 1, one session per cell.
pub fn all_cells_grid(master_seed: u64, duration: SimDuration) -> Vec<SessionSpec> {
    SessionGrid::new()
        .cells(all_cells())
        .durations([duration])
        .master_seed(master_seed)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_deterministic_and_covers_product() {
        let g = SessionGrid::new()
            .cells(all_cells())
            .durations([SimDuration::from_secs(30), SimDuration::from_secs(60)])
            .sessions_per_point(3)
            .master_seed(7);
        let a = g.build();
        let b = g.build();
        assert_eq!(a.len(), 4 * 2 * 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cfg.seed, y.cfg.seed);
            assert_eq!(x.label, y.label);
        }
        // All seeds distinct.
        let mut seeds: Vec<u64> = a.iter().map(|s| s.cfg.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), a.len());
    }

    #[test]
    fn grid_axes_multiply_the_product_with_stable_seeds() {
        use crate::axis::{AxisPatch, ScenarioAxis};
        let plain = SessionGrid::new()
            .cells([crate::cells::mosolabs()])
            .durations([SimDuration::from_secs(20)])
            .master_seed(13);
        let with_axis = plain.clone().axis(ScenarioAxis::toggle(
            "grants",
            "on",
            "off",
            vec![],
            vec![AxisPatch::ProactiveGrant(None)],
        ));
        let a = with_axis.build();
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].label, "Mosolabs / 20s / grants=on / rep0");
        assert_eq!(a[1].label, "Mosolabs / 20s / grants=off / rep0");
        // Seeds key off the build index, exactly like the plain grid.
        let p = plain.build();
        assert_eq!(a[0].cfg.seed, p[0].cfg.seed);
        assert_eq!(a[1].cfg.seed, derive_seed(13, 1));
        // The axis patch landed.
        let cell = |s: &SessionSpec| match &s.access {
            AccessSpec::Cell(c) => c.mac.proactive_grant.is_some(),
            AccessSpec::Baseline(_) => panic!("cell expected"),
        };
        assert!(cell(&a[0]));
        assert!(!cell(&a[1]));
    }

    #[test]
    fn scripted_spec_runs_like_manual_script() {
        let cfg = SessionConfig {
            duration: SimDuration::from_secs(10),
            seed: 5,
            ..Default::default()
        };
        let spec = SessionSpec::cell(crate::cells::tmobile_fdd_15mhz_quiet(), cfg.clone())
            .with_script(ScriptAction::CrossTraffic {
                dir: Direction::Downlink,
                from: SimTime::from_secs(4),
                to: SimTime::from_secs(6),
                prb_fraction: 0.9,
            });
        let from_spec = spec.run();
        let manual = SessionRun::cell(crate::cells::tmobile_fdd_15mhz_quiet(), &cfg)
            .script(|cell| {
                cell.script_cross_traffic(
                    Direction::Downlink,
                    SimTime::from_secs(4),
                    SimTime::from_secs(6),
                    0.9,
                );
            })
            .run();
        assert_eq!(from_spec.packets.len(), manual.packets.len());
        assert_eq!(from_spec.dci.len(), manual.dci.len());
    }

    #[test]
    fn baseline_spec_runs() {
        let cfg = SessionConfig {
            duration: SimDuration::from_secs(5),
            seed: 1,
            ..Default::default()
        };
        let b = SessionSpec::baseline(BaselineAccess::Wired, cfg).run();
        assert!(b.dci.is_empty());
        assert!(!b.packets.is_empty());
    }
}
