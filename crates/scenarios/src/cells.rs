//! The four 5G cells of the paper's testbed (Table 1), as simulator
//! configurations, plus the wired/Wi-Fi baseline paths.
//!
//! | Cell | Type | Carrier | BW | Duplex | Character |
//! |---|---|---|---|---|---|
//! | T-Mobile 1 | public | 622.85 MHz | 15 MHz | FDD | heavily utilised; DL cross traffic; RRC transitions |
//! | T-Mobile 2 | public | 2506.95 MHz | 100 MHz | TDD | wide carrier, moderate load |
//! | Amarisoft | private | 3547.20 MHz | 20 MHz | TDD | persistent poor UL channel, conservative UL MCS; gNB logs |
//! | Mosolabs | private | 3630.72 MHz | 20 MHz | TDD | proactive UL grants |

use ran_sim::{
    CellConfig, ChannelConfig, CrossTrafficConfig, FrameStructure, MacConfig, ProactiveGrantConfig,
    RrcConfig,
};
use simcore::SimDuration;
use telemetry::CellClass;

/// T-Mobile 15 MHz FDD low-band cell (n71, 622.85 MHz).
///
/// The paper's most problematic cell: narrow carrier, heavy asymmetric DL
/// cross traffic (§5.1.2), and intermittent RRC releases during active
/// transfer (§5.3).
pub fn tmobile_fdd_15mhz() -> CellConfig {
    CellConfig {
        name: "T-Mobile 15 MHz FDD".to_string(),
        class: CellClass::Commercial,
        carrier_mhz: 622.85,
        bandwidth_mhz: 15.0,
        frame: FrameStructure::fdd(SimDuration::from_millis(1)),
        mac: MacConfig {
            n_prbs: 79, // 15 MHz @ 15 kHz SCS
            harq_rtt: SimDuration::from_millis(8),
            sr_period: SimDuration::from_millis(5),
            grant_pipeline_slots: 8,
            rlc_status_delay: SimDuration::from_millis(60),
            ..Default::default()
        },
        ul_channel: ChannelConfig {
            base_sinr_db: 16.0,
            shadow_sigma_db: 2.5,
            fade_every: Some(SimDuration::from_secs(15)),
            fade_depth_db: 14.0,
            fade_duration: SimDuration::from_millis(900),
            ..Default::default()
        },
        dl_channel: ChannelConfig {
            base_sinr_db: 19.0,
            shadow_sigma_db: 2.0,
            fade_every: Some(SimDuration::from_secs(20)),
            fade_depth_db: 12.0,
            ..Default::default()
        },
        ul_cross: CrossTrafficConfig::moderate(),
        dl_cross: CrossTrafficConfig::heavy(),
        rrc: RrcConfig {
            // Intermittent; when active, up to 3–4/min (§5.3). A mean of
            // 30 s gives ≈2/min, between the quiet and bursty regimes.
            random_release_every: Some(SimDuration::from_secs(30)),
            ..Default::default()
        },
        traffic_ues: vec![],
        has_gnb_log: false,
        gnb_buffer_sample_every: SimDuration::from_millis(5),
    }
}

/// T-Mobile 100 MHz TDD mid-band cell (n41, 2506.95 MHz).
pub fn tmobile_tdd_100mhz() -> CellConfig {
    CellConfig {
        name: "T-Mobile 100 MHz TDD".to_string(),
        class: CellClass::Commercial,
        carrier_mhz: 2506.95,
        bandwidth_mhz: 100.0,
        frame: FrameStructure::tdd(SimDuration::from_micros(500), "DDDSU"),
        mac: MacConfig {
            n_prbs: 273, // 100 MHz @ 30 kHz SCS
            harq_rtt: SimDuration::from_millis(8),
            sr_period: SimDuration::from_millis(5),
            grant_pipeline_slots: 10,
            rlc_status_delay: SimDuration::from_millis(55),
            ..Default::default()
        },
        ul_channel: ChannelConfig {
            base_sinr_db: 17.0,
            shadow_sigma_db: 2.5,
            fade_every: Some(SimDuration::from_secs(40)),
            fade_depth_db: 12.0,
            ..Default::default()
        },
        dl_channel: ChannelConfig {
            base_sinr_db: 21.0,
            shadow_sigma_db: 2.0,
            fade_every: Some(SimDuration::from_secs(45)),
            fade_depth_db: 10.0,
            ..Default::default()
        },
        ul_cross: CrossTrafficConfig::light(),
        dl_cross: CrossTrafficConfig::moderate(),
        rrc: RrcConfig::default(), // no anomalous releases on this cell
        traffic_ues: vec![],
        has_gnb_log: false,
        gnb_buffer_sample_every: SimDuration::from_millis(5),
    }
}

/// Amarisoft Callbox private CBRS cell (n78, 3547.20 MHz, 20 MHz TDD).
///
/// Persistent poor uplink channel and conservative UL MCS selection
/// (§5.1.1, Fig. 12); gNB logs available, so RLC events are observable.
pub fn amarisoft() -> CellConfig {
    CellConfig {
        name: "Amarisoft".to_string(),
        class: CellClass::Private,
        carrier_mhz: 3547.20,
        bandwidth_mhz: 20.0,
        frame: FrameStructure::tdd(SimDuration::from_micros(500), "DDDSU"),
        mac: MacConfig {
            n_prbs: 51,                             // 20 MHz @ 30 kHz SCS
            harq_rtt: SimDuration::from_millis(10), // Fig. 17: +10 ms per round
            sr_period: SimDuration::from_millis(5),
            grant_pipeline_slots: 8,
            rlc_status_delay: SimDuration::from_millis(60), // Fig. 18: ≈105 ms total
            mcs_cap_ul: 12,                                 // conservative UL MCS strategy
            margin_db_ul: -3.0,                             // extra UL selection margin
            ..Default::default()
        },
        ul_channel: ChannelConfig {
            base_sinr_db: 9.0, // persistently poor UL
            shadow_sigma_db: 3.0,
            fade_every: Some(SimDuration::from_secs(12)),
            fade_depth_db: 10.0,
            fade_duration: SimDuration::from_millis(900),
            ..Default::default()
        },
        dl_channel: ChannelConfig {
            base_sinr_db: 22.0,
            shadow_sigma_db: 1.5,
            fade_every: Some(SimDuration::from_secs(60)),
            fade_depth_db: 8.0,
            ..Default::default()
        },
        ul_cross: CrossTrafficConfig::quiet(),
        dl_cross: CrossTrafficConfig::light(),
        rrc: RrcConfig::default(),
        traffic_ues: vec![],
        has_gnb_log: true,
        gnb_buffer_sample_every: SimDuration::from_millis(2),
    }
}

/// Mosolabs Canopy private CBRS cell (n78, 3630.72 MHz, 20 MHz TDD).
///
/// Uses proactive UL grants (Fig. 16); per Table 1 its gNB log feed was not
/// captured, so RLC events are invisible to the detector here too.
pub fn mosolabs() -> CellConfig {
    CellConfig {
        name: "Mosolabs".to_string(),
        class: CellClass::Private,
        carrier_mhz: 3630.72,
        bandwidth_mhz: 20.0,
        frame: FrameStructure::tdd(SimDuration::from_micros(500), "DDDSU"),
        mac: MacConfig {
            n_prbs: 51,
            harq_rtt: SimDuration::from_millis(10),
            sr_period: SimDuration::from_millis(5),
            grant_pipeline_slots: 8,
            rlc_status_delay: SimDuration::from_millis(55),
            proactive_grant: Some(ProactiveGrantConfig {
                period: SimDuration::from_millis(5),
                bytes: 900,
            }),
            ..Default::default()
        },
        ul_channel: ChannelConfig {
            base_sinr_db: 15.0,
            shadow_sigma_db: 2.5,
            fade_every: Some(SimDuration::from_secs(20)),
            fade_depth_db: 11.0,
            ..Default::default()
        },
        dl_channel: ChannelConfig {
            base_sinr_db: 21.0,
            shadow_sigma_db: 2.0,
            fade_every: Some(SimDuration::from_secs(50)),
            fade_depth_db: 9.0,
            ..Default::default()
        },
        ul_cross: CrossTrafficConfig::quiet(),
        dl_cross: CrossTrafficConfig::light(),
        rrc: RrcConfig::default(),
        traffic_ues: vec![],
        has_gnb_log: false,
        gnb_buffer_sample_every: SimDuration::from_millis(5),
    }
}

/// All four cells in Table 1 order.
pub fn all_cells() -> Vec<CellConfig> {
    vec![
        tmobile_fdd_15mhz(),
        tmobile_tdd_100mhz(),
        amarisoft(),
        mosolabs(),
    ]
}

/// The T-Mobile FDD cell with all ambient randomness (fades, cross-traffic
/// bursts, spontaneous RRC releases) disabled, for scripted trace figures
/// where exactly one mechanism must be visible (Figs. 13, 14b, 19).
pub fn tmobile_fdd_15mhz_quiet() -> CellConfig {
    let mut cfg = tmobile_fdd_15mhz();
    cfg.name = "T-Mobile 15 MHz FDD (quiet)".to_string();
    cfg.ul_channel.fade_every = None;
    cfg.dl_channel.fade_every = None;
    cfg.ul_cross = CrossTrafficConfig::quiet();
    cfg.dl_cross = CrossTrafficConfig::quiet();
    cfg.rrc.random_release_every = None;
    cfg
}

/// The Amarisoft cell with a healthy uplink and no ambient events, so a
/// scripted HARQ/RLC failure is the only impairment in the trace
/// (Figs. 17, 18).
pub fn amarisoft_ideal() -> CellConfig {
    let mut cfg = amarisoft();
    cfg.name = "Amarisoft (ideal channel)".to_string();
    cfg.ul_channel.base_sinr_db = 22.0;
    cfg.ul_channel.fade_every = None;
    cfg.ul_channel.shadow_sigma_db = 0.5;
    cfg.dl_channel.fade_every = None;
    cfg.mac.mcs_cap_ul = 28;
    cfg.mac.margin_db_ul = 0.0;
    cfg.ul_cross = CrossTrafficConfig::quiet();
    cfg.dl_cross = CrossTrafficConfig::quiet();
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::Duplexing;

    #[test]
    fn four_cells_match_table1() {
        let cells = all_cells();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].frame.duplexing, Duplexing::Fdd);
        assert_eq!(cells[1].frame.duplexing, Duplexing::Tdd);
        assert_eq!(cells[1].mac.n_prbs, 273);
        assert!(cells[2].has_gnb_log, "Amarisoft has gNB logs");
        assert!(!cells[3].has_gnb_log, "Mosolabs gNB feed not captured");
        assert!(cells[3].mac.proactive_grant.is_some());
        assert!(cells[2].mac.mcs_cap_ul < 28, "conservative UL MCS");
    }

    #[test]
    fn commercial_cells_hide_gnb_logs() {
        assert!(!tmobile_fdd_15mhz().has_gnb_log);
        assert!(!tmobile_tdd_100mhz().has_gnb_log);
    }

    #[test]
    fn only_fdd_cell_has_rrc_releases() {
        assert!(tmobile_fdd_15mhz().rrc.random_release_every.is_some());
        assert!(tmobile_tdd_100mhz().rrc.random_release_every.is_none());
        assert!(amarisoft().rrc.random_release_every.is_none());
    }
}
