//! Synthetic organisation-wide Zoom QoS dataset (paper §2.2).
//!
//! The paper analyses one week of campus Zoom QSS exports — per-participant,
//! per-minute QoS records tagged with the access-network type (409 days of
//! Wi-Fi, 86 days of wired, 165 hours of cellular data in total). That data
//! is proprietary; this generator produces records whose *marginal
//! distributions* carry the paper's findings: cellular shows consistently
//! higher network jitter (Fig. 5) and packet loss (Fig. 6) than Wi-Fi and
//! wired, with heavy upper tails.

use rand::Rng;
use simcore::dist::log_normal;
use simcore::{rng_for, RngStream};

/// Access-network type reported by the Zoom dashboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessType {
    /// Wired Ethernet.
    Wired,
    /// Wi-Fi.
    Wifi,
    /// Any cellular generation (3G/4G/5G — the dashboard does not say).
    Cellular,
}

impl AccessType {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            AccessType::Wired => "Wired",
            AccessType::Wifi => "Wifi",
            AccessType::Cellular => "Cellular",
        }
    }
}

/// One per-minute QoS record of one meeting participant.
#[derive(Debug, Clone, Copy)]
pub struct ZoomQosRecord {
    /// Access network the participant used.
    pub access: AccessType,
    /// Send-side (outbound) network jitter in ms.
    pub outbound_jitter_ms: f64,
    /// Receive-side (inbound) network jitter in ms.
    pub inbound_jitter_ms: f64,
    /// Send-side average packet loss, percent.
    pub outbound_loss_pct: f64,
    /// Receive-side average packet loss, percent.
    pub inbound_loss_pct: f64,
}

/// Dataset volumes, in minutes of telemetry per access type.
///
/// Defaults follow the paper's proportions (409 d Wi-Fi : 86 d wired :
/// 165 h cellular) scaled down ×1000 for tractable generation.
#[derive(Debug, Clone, Copy)]
pub struct CampusDatasetSize {
    /// Wi-Fi minutes.
    pub wifi_minutes: usize,
    /// Wired minutes.
    pub wired_minutes: usize,
    /// Cellular minutes.
    pub cellular_minutes: usize,
}

impl Default for CampusDatasetSize {
    fn default() -> Self {
        CampusDatasetSize {
            wifi_minutes: 589, // 409 days ≈ 589k min, ×1/1000
            wired_minutes: 124,
            cellular_minutes: 10, // 165 h ≈ 9.9k min
        }
    }
}

impl CampusDatasetSize {
    /// A larger sample for smoother CDFs (≈ ×100 the default).
    pub fn large() -> Self {
        CampusDatasetSize {
            wifi_minutes: 58_900,
            wired_minutes: 12_400,
            cellular_minutes: 990,
        }
    }
}

/// Generates the synthetic campus dataset.
pub fn generate(seed: u64, size: CampusDatasetSize) -> Vec<ZoomQosRecord> {
    let mut rng = rng_for(seed, RngStream::CampusDataset);
    let mut out =
        Vec::with_capacity(size.wifi_minutes + size.wired_minutes + size.cellular_minutes);
    for _ in 0..size.wired_minutes {
        out.push(sample(&mut rng, AccessType::Wired));
    }
    for _ in 0..size.wifi_minutes {
        out.push(sample(&mut rng, AccessType::Wifi));
    }
    for _ in 0..size.cellular_minutes {
        out.push(sample(&mut rng, AccessType::Cellular));
    }
    out
}

fn sample<R: Rng + ?Sized>(rng: &mut R, access: AccessType) -> ZoomQosRecord {
    // Jitter: log-normal; parameters chosen so medians/orderings match the
    // campus CDFs (Fig. 5): wired ≈ 2–3 ms, Wi-Fi ≈ 4–5 ms, cellular ≈ 10+ ms
    // with a long tail. Inbound (downlink) slightly lower than outbound for
    // cellular, per the figure.
    let (mu_out, sigma_out, mu_in, sigma_in) = match access {
        AccessType::Wired => (1.0, 0.45, 0.9, 0.45),
        AccessType::Wifi => (1.5, 0.55, 1.4, 0.55),
        AccessType::Cellular => (2.4, 0.70, 2.1, 0.70),
    };
    // Loss: zero-inflated log-normal percentage; cellular loses far more
    // often and far more heavily (Fig. 6).
    let (p_loss, loss_mu, loss_sigma) = match access {
        AccessType::Wired => (0.08, -1.2, 1.0),
        AccessType::Wifi => (0.15, -0.9, 1.1),
        AccessType::Cellular => (0.55, 0.3, 1.3),
    };
    let loss = |rng: &mut R| {
        if rng.gen::<f64>() < p_loss {
            log_normal(rng, loss_mu, loss_sigma).min(100.0)
        } else {
            0.0
        }
    };
    ZoomQosRecord {
        access,
        outbound_jitter_ms: log_normal(rng, mu_out, sigma_out),
        inbound_jitter_ms: log_normal(rng, mu_in, sigma_in),
        outbound_loss_pct: loss(rng),
        inbound_loss_pct: loss(rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::Cdf;

    fn cdf_of(
        records: &[ZoomQosRecord],
        access: AccessType,
        f: impl Fn(&ZoomQosRecord) -> f64,
    ) -> Cdf {
        Cdf::from_samples(
            records
                .iter()
                .filter(|r| r.access == access)
                .map(f)
                .collect(),
        )
    }

    #[test]
    fn volumes_match_request() {
        let size = CampusDatasetSize {
            wifi_minutes: 100,
            wired_minutes: 50,
            cellular_minutes: 25,
        };
        let data = generate(1, size);
        assert_eq!(data.len(), 175);
        assert_eq!(
            data.iter().filter(|r| r.access == AccessType::Wifi).count(),
            100
        );
    }

    #[test]
    fn jitter_ordering_cellular_worst() {
        let data = generate(2, CampusDatasetSize::large());
        let med = |a| cdf_of(&data, a, |r| r.outbound_jitter_ms).median().unwrap();
        assert!(med(AccessType::Cellular) > med(AccessType::Wifi));
        assert!(med(AccessType::Wifi) > med(AccessType::Wired));
    }

    #[test]
    fn loss_ordering_cellular_worst() {
        let data = generate(3, CampusDatasetSize::large());
        let frac_lossy = |a| {
            let c = cdf_of(&data, a, |r| r.inbound_loss_pct);
            1.0 - c.fraction_at_or_below(0.0)
        };
        assert!(frac_lossy(AccessType::Cellular) > 2.0 * frac_lossy(AccessType::Wifi));
        assert!(frac_lossy(AccessType::Wifi) > frac_lossy(AccessType::Wired));
    }

    #[test]
    fn deterministic() {
        let a = generate(9, CampusDatasetSize::default());
        let b = generate(9, CampusDatasetSize::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.outbound_jitter_ms, y.outbound_jitter_ms);
        }
    }
}
