//! Declarative scenario axes: parameter sweeps over [`CellConfig`] /
//! [`SessionSpec`] fields, as data.
//!
//! The experiment harness used to build ablation variants by hand — clone a
//! cell, flip a field, repeat. A [`ScenarioAxis`] expresses the same sweep
//! declaratively: a named list of [`AxisPoint`]s, each a label plus the
//! [`AxisPatch`]es that turn the base session into that variant. Axes can be
//! expanded against a single base spec ([`ScenarioAxis::expand`]) for paired
//! A/B comparisons, crossed with other axes ([`expand_product`]), or handed
//! to [`SessionGrid::axis`](crate::grid::SessionGrid::axis) so the grid
//! builder multiplies them into the cells × durations × repetitions product
//! with stable derived seeds.
//!
//! Seeds are governed by [`SeedPolicy`]: `Shared` keeps the base seed on
//! every point (ablation A/B runs, where variants must differ *only* in the
//! patched field), `Sequential` numbers points from a base seed (the
//! longitudinal per-cell harness), and `Derived` uses
//! [`simcore::derive_seed`] keyed by expansion index like the grid builder.

use std::fmt::Display;

use abr_sim::LadderRung;
use ran_sim::{CellConfig, CrossTrafficConfig, ProactiveGrantConfig, TrafficUeConfig};
use simcore::{derive_seed, SimDuration};

use crate::grid::{AccessSpec, ScriptAction, SessionSpec};
use crate::session::AppSpec;

/// One field edit applied to a [`SessionSpec`] during axis expansion.
///
/// Cell-level patches (everything except [`AxisPatch::Duration`] and
/// [`AxisPatch::Script`]) apply to [`AccessSpec::Cell`] sessions and are
/// ignored for baseline (wired/Wi-Fi) specs, which have no cell to edit.
#[derive(Debug, Clone)]
pub enum AxisPatch {
    /// Replace the whole access cell (and the spec label with its name).
    Cell(Box<CellConfig>),
    /// Session duration.
    Duration(SimDuration),
    /// `mac.max_harq_attempts`.
    MaxHarqAttempts(u8),
    /// `mac.proactive_grant` (`None` = BSR-only scheduling).
    ProactiveGrant(Option<ProactiveGrantConfig>),
    /// `mac.mcs_cap_ul`.
    McsCapUl(u8),
    /// `mac.margin_db_ul`.
    MarginDbUl(f64),
    /// `mac.olla_step_db`.
    OllaStepDb(f64),
    /// `ul_channel.base_sinr_db`.
    UlSinrDb(f64),
    /// `dl_channel.base_sinr_db`.
    DlSinrDb(f64),
    /// Uplink cross-traffic process.
    UlCross(CrossTrafficConfig),
    /// Downlink cross-traffic process.
    DlCross(CrossTrafficConfig),
    /// `rrc.random_release_every` (`None` = standard-conforming cell).
    RrcReleaseEvery(Option<SimDuration>),
    /// Replace the cell's scripted-UE population (`traffic_ues`) — the UE
    ///-count × traffic-mix axes of shared-cell sweeps.
    TrafficUes(Vec<TrafficUeConfig>),
    /// Append a scripted impairment.
    Script(ScriptAction),
    /// ABR `segment_duration` (applies to [`AppSpec::Abr`] specs only;
    /// ignored for RTC sessions, which have no playback pipeline).
    AbrSegmentDuration(SimDuration),
    /// ABR encoding ladder (ascending bitrate).
    AbrLadder(Vec<LadderRung>),
    /// ABR playback `buffer_target`.
    AbrBufferTarget(SimDuration),
    /// Telemetry-chaos plan for live-tap consumers (`None` = clean
    /// telemetry) — the degraded-telemetry axis of resilience sweeps.
    TapChaos(Option<telemetry::TapChaosSpec>),
    /// Live watermark lateness override (applies to any access).
    Lateness(telemetry::Lateness),
}

impl AxisPatch {
    /// Applies this patch to a spec.
    pub fn apply(&self, spec: &mut SessionSpec) {
        match self {
            AxisPatch::Cell(cell) => {
                spec.label = cell.name.clone();
                spec.access = AccessSpec::Cell(cell.clone());
            }
            AxisPatch::Duration(d) => spec.cfg.duration = *d,
            AxisPatch::Script(a) => spec.scripts.push(*a),
            AxisPatch::AbrSegmentDuration(d) => {
                let AppSpec::Abr(abr) = &mut spec.app else {
                    return; // RTC sessions have no playback pipeline
                };
                abr.segment_duration = *d;
            }
            AxisPatch::AbrLadder(ladder) => {
                let AppSpec::Abr(abr) = &mut spec.app else {
                    return;
                };
                abr.ladder = ladder.clone();
            }
            AxisPatch::AbrBufferTarget(t) => {
                let AppSpec::Abr(abr) = &mut spec.app else {
                    return;
                };
                abr.buffer_target = *t;
            }
            AxisPatch::TapChaos(chaos) => spec.chaos = chaos.clone(),
            AxisPatch::Lateness(l) => spec.lateness = Some(*l),
            _ => {
                let AccessSpec::Cell(cell) = &mut spec.access else {
                    return; // baseline access has no cell to patch
                };
                match self {
                    AxisPatch::MaxHarqAttempts(n) => cell.mac.max_harq_attempts = *n,
                    AxisPatch::ProactiveGrant(g) => cell.mac.proactive_grant = g.clone(),
                    AxisPatch::McsCapUl(m) => cell.mac.mcs_cap_ul = *m,
                    AxisPatch::MarginDbUl(db) => cell.mac.margin_db_ul = *db,
                    AxisPatch::OllaStepDb(db) => cell.mac.olla_step_db = *db,
                    AxisPatch::UlSinrDb(db) => cell.ul_channel.base_sinr_db = *db,
                    AxisPatch::DlSinrDb(db) => cell.dl_channel.base_sinr_db = *db,
                    AxisPatch::UlCross(c) => cell.ul_cross = c.clone(),
                    AxisPatch::DlCross(c) => cell.dl_cross = c.clone(),
                    AxisPatch::RrcReleaseEvery(e) => cell.rrc.random_release_every = *e,
                    AxisPatch::TrafficUes(ues) => cell.traffic_ues = ues.clone(),
                    AxisPatch::Cell(_)
                    | AxisPatch::Duration(_)
                    | AxisPatch::Script(_)
                    | AxisPatch::AbrSegmentDuration(_)
                    | AxisPatch::AbrLadder(_)
                    | AxisPatch::AbrBufferTarget(_)
                    | AxisPatch::TapChaos(_)
                    | AxisPatch::Lateness(_) => {
                        unreachable!("handled above")
                    }
                }
            }
        }
    }
}

/// Applies a patch list to a spec in order.
pub fn apply_patches(spec: &mut SessionSpec, patches: &[AxisPatch]) {
    for p in patches {
        p.apply(spec);
    }
}

/// One point on an axis: a label and the patches that realise it.
#[derive(Debug, Clone)]
pub struct AxisPoint {
    /// Point label (becomes the spec label on [`ScenarioAxis::expand`], or
    /// a `name=label` suffix in grid expansion).
    pub label: String,
    /// Field edits, applied in order.
    pub patches: Vec<AxisPatch>,
}

/// How expanded specs get their seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedPolicy {
    /// Every point keeps the base spec's seed: variants differ only in the
    /// patched fields (paired A/B ablations).
    Shared,
    /// Point `i` gets seed `base + i` (the longitudinal harness numbering).
    Sequential(u64),
    /// Point `i` gets `derive_seed(master, i)` like the grid builder.
    Derived(u64),
}

impl SeedPolicy {
    fn seed(&self, base: u64, index: usize) -> u64 {
        match *self {
            SeedPolicy::Shared => base,
            SeedPolicy::Sequential(start) => start + index as u64,
            SeedPolicy::Derived(master) => derive_seed(master, index as u64),
        }
    }
}

/// A named, ordered set of scenario variants.
#[derive(Debug, Clone)]
pub struct ScenarioAxis {
    /// Axis name, used in grid labels (`name=point`).
    pub name: String,
    /// The points, in sweep order.
    pub points: Vec<AxisPoint>,
}

impl ScenarioAxis {
    /// An empty axis.
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioAxis {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends one point.
    pub fn point(mut self, label: impl Into<String>, patches: Vec<AxisPatch>) -> Self {
        self.points.push(AxisPoint {
            label: label.into(),
            patches,
        });
        self
    }

    /// A value sweep: one point per value, labelled by `Display`, patched by
    /// `patch(value)`.
    pub fn values<T, I, F>(name: impl Into<String>, values: I, patch: F) -> Self
    where
        T: Display,
        I: IntoIterator<Item = T>,
        F: Fn(&T) -> Vec<AxisPatch>,
    {
        let mut axis = ScenarioAxis::new(name);
        for v in values {
            let patches = patch(&v);
            axis.points.push(AxisPoint {
                label: v.to_string(),
                patches,
            });
        }
        axis
    }

    /// A numeric range sweep: `steps` evenly spaced values over
    /// `[from, to]` inclusive (`steps = 1` yields just `from`).
    pub fn range_f64(
        name: impl Into<String>,
        from: f64,
        to: f64,
        steps: usize,
        patch: impl Fn(f64) -> Vec<AxisPatch>,
    ) -> Self {
        let steps = steps.max(1);
        let mut axis = ScenarioAxis::new(name);
        for i in 0..steps {
            let v = if steps == 1 {
                from
            } else {
                from + (to - from) * i as f64 / (steps - 1) as f64
            };
            axis.points.push(AxisPoint {
                label: format!("{v}"),
                patches: patch(v),
            });
        }
        axis
    }

    /// A two-point toggle (on first, matching the hand-built ablations).
    pub fn toggle(
        name: impl Into<String>,
        on_label: impl Into<String>,
        off_label: impl Into<String>,
        on: Vec<AxisPatch>,
        off: Vec<AxisPatch>,
    ) -> Self {
        ScenarioAxis::new(name)
            .point(on_label, on)
            .point(off_label, off)
    }

    /// A cell sweep: one point per cell, labelled by cell name.
    pub fn cells(name: impl Into<String>, cells: impl IntoIterator<Item = CellConfig>) -> Self {
        let mut axis = ScenarioAxis::new(name);
        for cell in cells {
            axis.points.push(AxisPoint {
                label: cell.name.clone(),
                patches: vec![AxisPatch::Cell(Box::new(cell))],
            });
        }
        axis
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the axis has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Expands the axis against a base spec: one spec per point, patched in
    /// point order, labelled with the point label, seeded per `seeds`.
    pub fn expand(&self, base: &SessionSpec, seeds: SeedPolicy) -> Vec<SessionSpec> {
        self.points
            .iter()
            .enumerate()
            .map(|(i, point)| {
                let mut spec = base.clone();
                apply_patches(&mut spec, &point.patches);
                if !point.label.is_empty() {
                    spec.label = point.label.clone();
                }
                spec.cfg.seed = seeds.seed(base.cfg.seed, i);
                spec
            })
            .collect()
    }
}

/// Expands the cross product of several axes against a base spec, row-major
/// (the last axis varies fastest). Labels join the point labels with
/// `" / "`; seeds follow `seeds` over the flattened product index.
pub fn expand_product(
    base: &SessionSpec,
    axes: &[ScenarioAxis],
    seeds: SeedPolicy,
) -> Vec<SessionSpec> {
    let total: usize = axes.iter().map(|a| a.len().max(1)).product();
    let mut specs = Vec::with_capacity(total);
    for flat in 0..total {
        let mut spec = base.clone();
        let mut labels: Vec<&str> = Vec::with_capacity(axes.len());
        let mut rem = flat;
        // Decompose the flat index right-to-left so the last axis is fastest.
        let mut indices = vec![0usize; axes.len()];
        for (k, axis) in axes.iter().enumerate().rev() {
            let n = axis.len().max(1);
            indices[k] = rem % n;
            rem /= n;
        }
        for (axis, &idx) in axes.iter().zip(&indices) {
            if axis.is_empty() {
                continue;
            }
            let point = &axis.points[idx];
            apply_patches(&mut spec, &point.patches);
            if !point.label.is_empty() {
                labels.push(&point.label);
            }
        }
        if !labels.is_empty() {
            spec.label = labels.join(" / ");
        }
        spec.cfg.seed = seeds.seed(base.cfg.seed, flat);
        specs.push(spec);
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{all_cells, amarisoft, mosolabs};
    use crate::session::SessionConfig;

    fn base(seed: u64) -> SessionSpec {
        let cfg = SessionConfig {
            duration: SimDuration::from_secs(10),
            seed,
            ..Default::default()
        };
        SessionSpec::cell(mosolabs(), cfg)
    }

    fn cell_of(spec: &SessionSpec) -> &CellConfig {
        match &spec.access {
            AccessSpec::Cell(c) => c,
            AccessSpec::Baseline(_) => panic!("expected cell access"),
        }
    }

    #[test]
    fn toggle_expands_to_paired_variants() {
        let axis = ScenarioAxis::toggle(
            "grants",
            "proactive",
            "bsr-only",
            vec![],
            vec![AxisPatch::ProactiveGrant(None)],
        );
        let specs = axis.expand(&base(7), SeedPolicy::Shared);
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].label, "proactive");
        assert_eq!(specs[1].label, "bsr-only");
        assert!(cell_of(&specs[0]).mac.proactive_grant.is_some());
        assert!(cell_of(&specs[1]).mac.proactive_grant.is_none());
        // Shared seeds: the variants differ only in the patched field.
        assert_eq!(specs[0].cfg.seed, 7);
        assert_eq!(specs[1].cfg.seed, 7);
    }

    #[test]
    fn values_axis_sweeps_a_field() {
        let axis = ScenarioAxis::values("attempts", [1u8, 2, 4, 6], |&a| {
            vec![AxisPatch::MaxHarqAttempts(a)]
        });
        let specs = axis.expand(&base(3), SeedPolicy::Shared);
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[2].label, "4");
        let attempts: Vec<u8> = specs
            .iter()
            .map(|s| cell_of(s).mac.max_harq_attempts)
            .collect();
        assert_eq!(attempts, vec![1, 2, 4, 6]);
    }

    #[test]
    fn cells_axis_with_sequential_seeds_matches_hand_numbering() {
        let axis = ScenarioAxis::cells("cell", all_cells());
        let specs = axis.expand(&base(0), SeedPolicy::Sequential(3000));
        assert_eq!(specs.len(), 4);
        for (i, (spec, cell)) in specs.iter().zip(all_cells()).enumerate() {
            assert_eq!(spec.label, cell.name);
            assert_eq!(cell_of(spec).name, cell.name);
            assert_eq!(spec.cfg.seed, 3000 + i as u64);
        }
    }

    #[test]
    fn range_axis_covers_endpoints() {
        let axis =
            ScenarioAxis::range_f64("sinr", 5.0, 15.0, 3, |db| vec![AxisPatch::UlSinrDb(db)]);
        let specs = axis.expand(&base(1), SeedPolicy::Derived(9));
        let sinrs: Vec<f64> = specs
            .iter()
            .map(|s| cell_of(s).ul_channel.base_sinr_db)
            .collect();
        assert_eq!(sinrs, vec![5.0, 10.0, 15.0]);
        // Derived seeds are distinct and reproducible.
        assert_eq!(specs[0].cfg.seed, derive_seed(9, 0));
        assert_eq!(specs[2].cfg.seed, derive_seed(9, 2));
    }

    #[test]
    fn product_expansion_is_row_major_and_patches_compose() {
        let cells = ScenarioAxis::cells("cell", vec![mosolabs(), amarisoft()]);
        let harq = ScenarioAxis::values("attempts", [2u8, 4], |&a| {
            vec![AxisPatch::MaxHarqAttempts(a)]
        });
        let specs = expand_product(&base(11), &[cells, harq], SeedPolicy::Derived(11));
        assert_eq!(specs.len(), 4);
        // Last axis fastest: (moso,2), (moso,4), (amari,2), (amari,4).
        assert_eq!(specs[0].label, "Mosolabs / 2");
        assert_eq!(specs[1].label, "Mosolabs / 4");
        assert_eq!(specs[2].label, "Amarisoft / 2");
        assert_eq!(specs[3].label, "Amarisoft / 4");
        assert_eq!(cell_of(&specs[3]).mac.max_harq_attempts, 4);
        assert_eq!(cell_of(&specs[3]).name, "Amarisoft");
        // Cell replacement happens before the field patch, so the patch
        // lands on the replaced cell.
        assert_eq!(cell_of(&specs[2]).mac.max_harq_attempts, 2);
        let mut seeds: Vec<u64> = specs.iter().map(|s| s.cfg.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn cell_patches_ignore_baseline_specs() {
        let cfg = SessionConfig {
            duration: SimDuration::from_secs(5),
            seed: 2,
            ..Default::default()
        };
        let b = SessionSpec::baseline(crate::session::BaselineAccess::Wired, cfg);
        let axis = ScenarioAxis::values("sinr", [5.0f64], |&db| vec![AxisPatch::UlSinrDb(db)]);
        let specs = axis.expand(&b, SeedPolicy::Shared);
        assert_eq!(specs.len(), 1);
        assert!(matches!(specs[0].access, AccessSpec::Baseline(_)));
    }

    #[test]
    fn script_and_duration_patches_apply_to_any_access() {
        let axis = ScenarioAxis::new("scripted").point(
            "burst",
            vec![
                AxisPatch::Duration(SimDuration::from_secs(20)),
                AxisPatch::Script(ScriptAction::RrcRelease {
                    at: simcore::SimTime::from_secs(5),
                }),
            ],
        );
        let specs = axis.expand(&base(4), SeedPolicy::Shared);
        assert_eq!(specs[0].cfg.duration, SimDuration::from_secs(20));
        assert_eq!(specs[0].scripts.len(), 1);
    }
}
