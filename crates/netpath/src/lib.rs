//! # netpath — non-RAN network path models
//!
//! Everything between the RAN and the peer client: the 5G core, the campus
//! or cloud internet transit, and the baseline access networks (wired,
//! Wi-Fi) the paper compares against in §2.
//!
//! Each [`PathModel`] is a one-way pipe with a propagation delay, optional
//! serialization rate, stochastic queueing jitter, and random loss. Packets
//! never reorder (arrival times are clamped monotone per path), matching
//! FIFO queue behaviour.

use rand::Rng;
use simcore::dist::{log_normal, GaussMarkov};
use simcore::{SimDuration, SimTime};

/// Configuration of a one-way network path segment.
#[derive(Debug, Clone)]
pub struct PathConfig {
    /// Fixed propagation + processing delay.
    pub base_delay: SimDuration,
    /// Median of the log-normal queueing jitter; zero disables jitter.
    pub jitter_median: SimDuration,
    /// Shape of the jitter distribution (σ of the underlying normal).
    pub jitter_sigma: f64,
    /// Slowly-varying congestion level multiplying the jitter (AR(1) around
    /// 1.0); 0 disables.
    pub congestion_sigma: f64,
    /// Link rate for serialization delay; `None` = infinitely fast.
    pub rate_bps: Option<f64>,
    /// Independent packet-loss probability.
    pub loss_probability: f64,
}

impl PathConfig {
    /// Campus wired LAN (sub-millisecond, essentially lossless).
    pub fn wired_lan() -> Self {
        PathConfig {
            base_delay: SimDuration::from_micros(400),
            jitter_median: SimDuration::from_micros(60),
            jitter_sigma: 0.4,
            congestion_sigma: 0.0,
            rate_bps: Some(1e9),
            loss_probability: 1e-6,
        }
    }

    /// Wired WAN to a cloud region ≈150 miles away (paper §2.1's GCP peer).
    /// ~1.9 ms propagation plus routing/processing: the paper's wired
    /// baseline sits at a few ms one-way (Fig. 2).
    pub fn wired_wan() -> Self {
        PathConfig {
            base_delay: SimDuration::from_millis(3),
            jitter_median: SimDuration::from_micros(250),
            jitter_sigma: 0.5,
            congestion_sigma: 0.1,
            rate_bps: Some(1e9),
            loss_probability: 1e-5,
        }
    }

    /// Home/campus Wi-Fi access: moderate jitter, occasional loss.
    pub fn wifi() -> Self {
        PathConfig {
            base_delay: SimDuration::from_millis(3),
            jitter_median: SimDuration::from_millis(2),
            jitter_sigma: 0.9,
            congestion_sigma: 0.3,
            rate_bps: Some(120e6),
            loss_probability: 2e-3,
        }
    }

    /// 5G core network segment (UPF + backhaul).
    pub fn core_network() -> Self {
        PathConfig {
            base_delay: SimDuration::from_millis(2),
            jitter_median: SimDuration::from_micros(150),
            jitter_sigma: 0.4,
            congestion_sigma: 0.0,
            rate_bps: Some(10e9),
            loss_probability: 0.0,
        }
    }

    /// Local subnet between a private 5G core and an on-prem server.
    pub fn local_subnet() -> Self {
        PathConfig {
            base_delay: SimDuration::from_micros(300),
            jitter_median: SimDuration::from_micros(40),
            jitter_sigma: 0.3,
            congestion_sigma: 0.0,
            rate_bps: Some(1e9),
            loss_probability: 0.0,
        }
    }
}

/// Cheap always-on per-path counters, read by the observability layer at
/// session teardown. Pure integer accumulation on sim-deterministic
/// events, so totals are identical at any thread/shard/mux partitioning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Packets offered to the path.
    pub sent: u64,
    /// Packets dropped by the loss process.
    pub lost: u64,
    /// Packets whose jittered arrival landed before an earlier packet's —
    /// the FIFO clamp hides the inversion, so this counts reorder
    /// *pressure* the path absorbed rather than delivered reorders.
    pub jitter_inversions: u64,
}

impl PathStats {
    /// Element-wise sum, for folding several paths into one rollup.
    pub fn merge(&mut self, other: PathStats) {
        self.sent += other.sent;
        self.lost += other.lost;
        self.jitter_inversions += other.jitter_inversions;
    }
}

/// A stateful one-way path: FIFO, jittered, lossy.
#[derive(Debug, Clone)]
pub struct PathModel {
    cfg: PathConfig,
    congestion: GaussMarkov,
    last_arrival: SimTime,
    link_free_at: SimTime,
    stats: PathStats,
}

impl PathModel {
    /// Creates a path from its configuration.
    pub fn new(cfg: PathConfig) -> Self {
        PathModel {
            congestion: GaussMarkov::new(1.0, cfg.congestion_sigma, 0.995),
            cfg,
            last_arrival: SimTime::ZERO,
            link_free_at: SimTime::ZERO,
            stats: PathStats::default(),
        }
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> PathStats {
        self.stats
    }

    /// Sends a packet of `size_bytes` at `now`; returns its arrival time at
    /// the far end, or `None` if it was lost.
    pub fn traverse<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        size_bytes: u32,
        rng: &mut R,
    ) -> Option<SimTime> {
        self.stats.sent += 1;
        if self.cfg.loss_probability > 0.0 && rng.gen::<f64>() < self.cfg.loss_probability {
            self.stats.lost += 1;
            return None;
        }
        // Serialization: FIFO on the bottleneck link.
        let start = now.max(self.link_free_at);
        let tx_time = match self.cfg.rate_bps {
            Some(rate) => SimDuration::from_secs_f64(size_bytes as f64 * 8.0 / rate),
            None => SimDuration::ZERO,
        };
        self.link_free_at = start + tx_time;

        let congestion = if self.cfg.congestion_sigma > 0.0 {
            self.congestion.step(rng).max(0.1)
        } else {
            1.0
        };
        let jitter_us = if self.cfg.jitter_median.as_micros() > 0 {
            let mu = (self.cfg.jitter_median.as_micros() as f64).ln();
            log_normal(rng, mu, self.cfg.jitter_sigma) * congestion
        } else {
            0.0
        };
        let arrival = self.link_free_at
            + self.cfg.base_delay
            + SimDuration::from_micros(jitter_us.max(0.0) as u64);
        // FIFO: no reordering within one path.
        if arrival < self.last_arrival {
            self.stats.jitter_inversions += 1;
        }
        let arrival = arrival.max(self.last_arrival);
        self.last_arrival = arrival;
        Some(arrival)
    }

    /// The path's configuration.
    pub fn config(&self) -> &PathConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{rng_for, RngStream};

    fn rng() -> rand::rngs::StdRng {
        rng_for(11, RngStream::PathForward)
    }

    #[test]
    fn wired_lan_is_fast_and_stable() {
        let mut p = PathModel::new(PathConfig::wired_lan());
        let mut r = rng();
        let mut delays = Vec::new();
        for i in 0..1000u64 {
            let sent = SimTime::from_millis(i * 10);
            if let Some(arr) = p.traverse(sent, 1200, &mut r) {
                delays.push(arr.saturating_since(sent).as_millis_f64());
            }
        }
        let cdf = telemetry::Cdf::from_samples(delays);
        assert!(cdf.median().unwrap() < 1.0, "median {:?}", cdf.median());
        assert!(cdf.quantile(0.99).unwrap() < 3.0);
    }

    #[test]
    fn wan_has_base_delay() {
        let mut p = PathModel::new(PathConfig::wired_wan());
        let mut r = rng();
        let sent = SimTime::from_secs(1);
        let arr = p.traverse(sent, 1200, &mut r).unwrap();
        let d = arr.saturating_since(sent).as_millis_f64();
        assert!((2.9..10.0).contains(&d), "delay {d}");
    }

    #[test]
    fn no_reordering() {
        let mut p = PathModel::new(PathConfig::wifi());
        let mut r = rng();
        let mut last = SimTime::ZERO;
        for i in 0..5000u64 {
            let sent = SimTime::from_micros(i * 137);
            if let Some(arr) = p.traverse(sent, 900, &mut r) {
                assert!(arr >= last, "reordered at {i}");
                last = arr;
            }
        }
    }

    #[test]
    fn loss_rate_matches_config() {
        let mut cfg = PathConfig::wifi();
        cfg.loss_probability = 0.05;
        let mut p = PathModel::new(cfg);
        let mut r = rng();
        let n = 20_000u64;
        let lost = (0..n)
            .filter(|i| {
                p.traverse(SimTime::from_millis(i * 5), 500, &mut r)
                    .is_none()
            })
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.01, "loss {rate}");
    }

    #[test]
    fn serialization_backlog_delays_bursts() {
        // 10 Mbit/s link, burst of 10 × 12 kB → each packet ~9.6 ms on the wire.
        let mut p = PathModel::new(PathConfig {
            base_delay: SimDuration::ZERO,
            jitter_median: SimDuration::ZERO,
            jitter_sigma: 0.0,
            congestion_sigma: 0.0,
            rate_bps: Some(10e6),
            loss_probability: 0.0,
        });
        let mut r = rng();
        let sent = SimTime::from_secs(1);
        let mut arrivals = Vec::new();
        for _ in 0..10 {
            arrivals.push(p.traverse(sent, 12_000, &mut r).unwrap());
        }
        let first = arrivals[0].saturating_since(sent).as_millis_f64();
        let last = arrivals[9].saturating_since(sent).as_millis_f64();
        assert!((first - 9.6).abs() < 0.5, "first {first}");
        assert!((last - 96.0).abs() < 2.0, "last {last}");
    }
}
