//! Adaptive jitter buffers: video frame buffer and audio (NetEq-like)
//! buffer, with freeze and concealment accounting.
//!
//! "VCAs use an adaptive jitter buffer to mitigate delay variance ... it
//! expands during poor network conditions and contracts when latency is
//! stable" (paper §6.1). The playout delay target tracks a high percentile
//! of observed delay variation; when network delay outruns the buffer the
//! video freezes (Fig. 20) and audio is concealed (Fig. 4).

use std::collections::BTreeMap;
use std::collections::VecDeque;

use simcore::{SimDuration, SimTime};

/// Samples kept for the delay-variation percentile.
const JITTER_WINDOW: usize = 200;
/// Multiplier on the p95 delay variation when setting the target.
const JITTER_MULTIPLIER: f64 = 2.2;
/// Lower bound of the adaptive playout delay (ms).
const MIN_TARGET_MS: f64 = 40.0;
/// Upper bound of the adaptive playout delay (ms).
const MAX_TARGET_MS: f64 = 1_000.0;
/// Per-second downward drift of the playout delay when the network is calm.
const DECAY_MS_PER_S: f64 = 15.0;
/// Extra margin added when a late frame forces the buffer to grow (ms).
const LATE_MARGIN_MS: f64 = 20.0;

/// Tracks delay variation and produces the adaptive playout-delay target.
#[derive(Debug, Clone, Default)]
pub struct PlayoutDelayEstimator {
    variations_ms: VecDeque<f64>,
    min_delay_ms: f64,
    target_ms: f64,
    last_decay_at: Option<SimTime>,
}

impl PlayoutDelayEstimator {
    /// Creates an estimator at the minimum target.
    pub fn new() -> Self {
        PlayoutDelayEstimator {
            variations_ms: VecDeque::new(),
            min_delay_ms: f64::INFINITY,
            target_ms: MIN_TARGET_MS,
            last_decay_at: None,
        }
    }

    /// Feeds one observed network delay (transit time) sample.
    pub fn on_delay(&mut self, now: SimTime, delay_ms: f64) {
        self.min_delay_ms = self.min_delay_ms.min(delay_ms);
        let variation = (delay_ms - self.min_delay_ms).max(0.0);
        self.variations_ms.push_back(variation);
        if self.variations_ms.len() > JITTER_WINDOW {
            self.variations_ms.pop_front();
        }
        let mut sorted: Vec<f64> = self.variations_ms.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let p95 = sorted[((sorted.len() - 1) as f64 * 0.95) as usize];
        let desired = (p95 * JITTER_MULTIPLIER).clamp(MIN_TARGET_MS, MAX_TARGET_MS);

        if desired > self.target_ms {
            self.target_ms = desired; // grow fast
        } else {
            // shrink slowly
            let dt = self
                .last_decay_at
                .map(|t| now.saturating_since(t).as_secs_f64())
                .unwrap_or(0.0);
            self.target_ms = (self.target_ms - DECAY_MS_PER_S * dt)
                .max(desired)
                .max(MIN_TARGET_MS);
        }
        self.last_decay_at = Some(now);
    }

    /// A late media unit arrived `lateness_ms` after its playout deadline:
    /// grow the buffer immediately.
    pub fn on_late(&mut self, lateness_ms: f64) {
        self.target_ms =
            (self.target_ms + lateness_ms + LATE_MARGIN_MS).clamp(MIN_TARGET_MS, MAX_TARGET_MS);
    }

    /// Current playout-delay target (ms).
    pub fn target_ms(&self) -> f64 {
        self.target_ms
    }
}

// --------------------------------------------------------------------------
// Video
// --------------------------------------------------------------------------

/// A rendered-frame event.
#[derive(Debug, Clone, Copy)]
pub struct RenderedFrame {
    /// When the frame was rendered.
    pub at: SimTime,
    /// The frame's capture timestamp.
    pub capture_ts: SimTime,
    /// Time the complete frame waited in the buffer before rendering (ms).
    pub buffer_hold_ms: f64,
    /// Frame index.
    pub frame_idx: u64,
}

#[derive(Debug, Clone)]
struct FrameAssembly {
    capture_ts: SimTime,
    packets_expected: u32,
    packets_received: u32,
    complete_at: Option<SimTime>,
}

/// Receiver-side adaptive video jitter buffer with freeze accounting.
#[derive(Debug, Clone)]
pub struct VideoJitterBuffer {
    frames: BTreeMap<u64, FrameAssembly>,
    delay: PlayoutDelayEstimator,
    next_render_idx: u64,
    last_render_at: Option<SimTime>,
    avg_frame_interval_ms: f64,
    /// EWMA of buffer hold times — the "jitter buffer delay" stat; 0 while
    /// the buffer is drained.
    hold_ewma_ms: f64,
    freeze_active: bool,
    total_freeze_ms: f64,
    freeze_count: u64,
    frames_rendered_window: VecDeque<SimTime>,
}

impl Default for VideoJitterBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl VideoJitterBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        VideoJitterBuffer {
            frames: BTreeMap::new(),
            delay: PlayoutDelayEstimator::new(),
            next_render_idx: 0,
            last_render_at: None,
            avg_frame_interval_ms: 33.3,
            hold_ewma_ms: 0.0,
            freeze_active: false,
            total_freeze_ms: 0.0,
            freeze_count: 0,
            frames_rendered_window: VecDeque::new(),
        }
    }

    /// Registers arrival of one packet of a video frame.
    pub fn on_packet(
        &mut self,
        now: SimTime,
        frame_idx: u64,
        packets_in_frame: u32,
        capture_ts: SimTime,
    ) {
        if frame_idx < self.next_render_idx {
            return; // too late; frame already skipped
        }
        let entry = self.frames.entry(frame_idx).or_insert(FrameAssembly {
            capture_ts,
            packets_expected: packets_in_frame,
            packets_received: 0,
            complete_at: None,
        });
        entry.packets_received += 1;
        if entry.packets_received >= entry.packets_expected && entry.complete_at.is_none() {
            entry.complete_at = Some(now);
            let delay_ms = now.saturating_since(capture_ts).as_millis_f64();
            self.delay.on_delay(now, delay_ms);
        }
    }

    /// Advances playout to `now`, returning frames rendered.
    ///
    /// A frame renders at `capture_ts + playout_target`, or immediately on
    /// completion if that deadline has passed (that lateness is a stall).
    pub fn poll(&mut self, now: SimTime) -> Vec<RenderedFrame> {
        let mut rendered = Vec::new();
        self.render_due(now, |f| rendered.push(f));
        rendered
    }

    /// Advances playout to `now`, discarding rendered frames — the
    /// allocation-free form endpoints use on the per-tick path (all rendering
    /// side effects — freeze accounting, fps window, delay tracking — happen
    /// identically).
    pub fn advance(&mut self, now: SimTime) {
        self.render_due(now, |_| {});
    }

    fn render_due(&mut self, now: SimTime, mut sink: impl FnMut(RenderedFrame)) {
        loop {
            let Some(assembly) = self.frames.get(&self.next_render_idx) else {
                // Next frame has no packets yet. Skip-ahead policy: if a
                // *later* complete frame exists and the missing frame's
                // deadline passed long ago, skip to it (decoder resync).
                let deadline_passed = self
                    .frames
                    .iter()
                    .find(|(_, a)| a.complete_at.is_some())
                    .map(|(&idx, a)| {
                        let overdue = now.saturating_since(
                            a.capture_ts + SimDuration::from_secs_f64(self.delay.target_ms() / 1e3),
                        );
                        (idx, overdue > SimDuration::from_millis(120))
                    });
                match deadline_passed {
                    Some((idx, true)) if idx > self.next_render_idx => {
                        // Drop everything before idx.
                        let stale: Vec<u64> = self.frames.range(..idx).map(|(&i, _)| i).collect();
                        for i in stale {
                            self.frames.remove(&i);
                        }
                        self.next_render_idx = idx;
                        continue;
                    }
                    _ => break,
                }
            };
            let Some(complete_at) = assembly.complete_at else {
                break; // head frame still assembling
            };
            let capture_ts = assembly.capture_ts;
            let target = SimDuration::from_secs_f64(self.delay.target_ms() / 1e3);
            let scheduled = capture_ts + target;
            let render_at = scheduled.max(complete_at);
            if render_at > now {
                break;
            }
            // Late completion = the buffer ran dry for this frame.
            if complete_at > scheduled {
                let lateness = complete_at.saturating_since(scheduled).as_millis_f64();
                self.delay.on_late(lateness);
                self.hold_ewma_ms = 0.0; // drained
            } else {
                let hold = render_at.saturating_since(complete_at).as_millis_f64();
                self.hold_ewma_ms = 0.9 * self.hold_ewma_ms + 0.1 * hold;
            }
            self.account_freeze(render_at);
            sink(RenderedFrame {
                at: render_at,
                capture_ts,
                buffer_hold_ms: render_at.saturating_since(complete_at).as_millis_f64(),
                frame_idx: self.next_render_idx,
            });
            self.frames.remove(&self.next_render_idx);
            self.next_render_idx += 1;
        }
        // Freeze state between polls: if the next frame is overdue past the
        // freeze threshold, we are frozen right now.
        if let Some(last) = self.last_render_at {
            let gap = now.saturating_since(last).as_millis_f64();
            self.freeze_active = gap >= self.freeze_threshold_ms();
        }
    }

    fn freeze_threshold_ms(&self) -> f64 {
        // webrtc-stats freeze definition.
        (3.0 * self.avg_frame_interval_ms).max(self.avg_frame_interval_ms + 150.0)
    }

    fn account_freeze(&mut self, render_at: SimTime) {
        if let Some(last) = self.last_render_at {
            let gap = render_at.saturating_since(last).as_millis_f64();
            let thresh = self.freeze_threshold_ms();
            if gap >= thresh {
                self.freeze_count += 1;
                self.total_freeze_ms += gap - self.avg_frame_interval_ms;
            }
            self.avg_frame_interval_ms = 0.95 * self.avg_frame_interval_ms + 0.05 * gap.min(200.0);
        }
        self.last_render_at = Some(render_at);
        self.frames_rendered_window.push_back(render_at);
        while let Some(&front) = self.frames_rendered_window.front() {
            if render_at.saturating_since(front) > SimDuration::from_secs(1) {
                self.frames_rendered_window.pop_front();
            } else {
                break;
            }
        }
    }

    /// Rendered frame rate over the trailing second.
    pub fn rendered_fps(&self) -> f64 {
        self.frames_rendered_window.len() as f64
    }

    /// Current jitter-buffer delay stat (ms); 0 indicates a drained buffer.
    pub fn current_delay_ms(&self) -> f64 {
        self.hold_ewma_ms
    }

    /// The adaptive playout-delay target (the "minimum jitter buffer delay"
    /// the buffer will honour).
    pub fn target_delay_ms(&self) -> f64 {
        self.delay.target_ms()
    }

    /// Whether video is currently frozen.
    pub fn freeze_active(&self) -> bool {
        self.freeze_active
    }

    /// Cumulative freeze time (ms).
    pub fn total_freeze_ms(&self) -> f64 {
        self.total_freeze_ms
    }

    /// Number of distinct freezes.
    pub fn freeze_count(&self) -> u64 {
        self.freeze_count
    }
}

// --------------------------------------------------------------------------
// Audio
// --------------------------------------------------------------------------

/// Samples per 20 ms audio frame at 48 kHz.
const SAMPLES_PER_PACKET: u64 = 960;

/// NetEq-like adaptive audio buffer with concealment accounting.
#[derive(Debug, Clone)]
pub struct AudioJitterBuffer {
    packets: BTreeMap<u64, SimTime>, // seq → arrival
    capture_of: BTreeMap<u64, SimTime>,
    delay: PlayoutDelayEstimator,
    next_play_seq: u64,
    next_tick_at: Option<SimTime>,
    ptime: SimDuration,
    concealed_samples: u64,
    total_samples: u64,
    hold_ewma_ms: f64,
    started: bool,
}

impl Default for AudioJitterBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl AudioJitterBuffer {
    /// Creates an empty buffer with 20 ms ptime.
    pub fn new() -> Self {
        AudioJitterBuffer {
            packets: BTreeMap::new(),
            capture_of: BTreeMap::new(),
            delay: PlayoutDelayEstimator::new(),
            next_play_seq: 0,
            next_tick_at: None,
            ptime: SimDuration::from_millis(20),
            concealed_samples: 0,
            total_samples: 0,
            hold_ewma_ms: 0.0,
            started: false,
        }
    }

    /// Registers an arrived audio packet.
    pub fn on_packet(&mut self, now: SimTime, seq: u64, capture_ts: SimTime) {
        let delay_ms = now.saturating_since(capture_ts).as_millis_f64();
        self.delay.on_delay(now, delay_ms);
        if seq >= self.next_play_seq {
            self.packets.insert(seq, now);
            self.capture_of.insert(seq, capture_ts);
        }
        if !self.started {
            self.started = true;
            self.next_play_seq = seq;
            self.next_tick_at =
                Some(now + SimDuration::from_secs_f64(self.delay.target_ms() / 1e3));
        }
    }

    /// Advances playout ticks to `now`. Each tick plays the next packet or
    /// conceals.
    pub fn poll(&mut self, now: SimTime) {
        let Some(mut tick) = self.next_tick_at else {
            return;
        };
        while tick <= now {
            self.total_samples += SAMPLES_PER_PACKET;
            match self.packets.remove(&self.next_play_seq) {
                Some(arrival) => {
                    self.capture_of.remove(&self.next_play_seq);
                    let hold = tick.saturating_since(arrival).as_millis_f64();
                    self.hold_ewma_ms = 0.9 * self.hold_ewma_ms + 0.1 * hold;
                }
                None => {
                    self.concealed_samples += SAMPLES_PER_PACKET;
                    self.hold_ewma_ms = 0.0; // drained
                    self.delay.on_late(self.ptime.as_millis_f64());
                }
            }
            self.next_play_seq += 1;
            tick += self.ptime;
        }
        self.next_tick_at = Some(tick);
    }

    /// Cumulative concealed samples.
    pub fn concealed_samples(&self) -> u64 {
        self.concealed_samples
    }

    /// Cumulative played samples (concealed + normal).
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Current buffer-hold stat (ms); 0 indicates concealment/drain.
    pub fn current_delay_ms(&self) -> f64 {
        self.hold_ewma_ms
    }

    /// Adaptive playout-delay target (ms).
    pub fn target_delay_ms(&self) -> f64 {
        self.delay.target_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn steady_video_renders_at_source_rate_without_freezes() {
        let mut jb = VideoJitterBuffer::new();
        let mut rendered = 0;
        for i in 0..150u64 {
            let cap = t(i * 33);
            jb.on_packet(t(i * 33 + 40), i, 1, cap);
            rendered += jb.poll(t(i * 33 + 41)).len();
        }
        rendered += jb.poll(t(6000)).len();
        assert!(rendered >= 145, "rendered {rendered}");
        assert_eq!(jb.freeze_count(), 0);
        assert!(jb.total_freeze_ms() == 0.0);
        // ~30 fps over the trailing window while streaming.
        assert!(jb.rendered_fps() >= 1.0);
    }

    #[test]
    fn delay_surge_drains_buffer_and_freezes() {
        let mut jb = VideoJitterBuffer::new();
        // 3 s of healthy delivery with mild (≤12 ms) delay variation, so the
        // adaptive target settles slightly above the delay and frames are
        // held briefly.
        for i in 0..90u64 {
            jb.on_packet(t(i * 33 + 40 + (i % 5) * 3), i, 1, t(i * 33));
            jb.poll(t(i * 33 + 60));
        }
        assert!(jb.current_delay_ms() > 0.0);
        // Delay surge: frames 90..105 arrive 400 ms late.
        for i in 90..105u64 {
            jb.on_packet(t(i * 33 + 400), i, 1, t(i * 33));
            jb.poll(t(i * 33 + 401));
        }
        jb.poll(t(105 * 33 + 500));
        assert!(jb.freeze_count() > 0, "surge must freeze video");
        assert!(jb.total_freeze_ms() > 100.0);
        // Buffer target grew to absorb the new delay level.
        assert!(jb.target_delay_ms() > 100.0);
    }

    #[test]
    fn multi_packet_frames_need_all_packets() {
        let mut jb = VideoJitterBuffer::new();
        jb.on_packet(t(40), 0, 3, t(0));
        jb.on_packet(t(42), 0, 3, t(0));
        assert!(
            jb.poll(t(200)).is_empty(),
            "incomplete frame must not render"
        );
        jb.on_packet(t(250), 0, 3, t(0));
        let r = jb.poll(t(260));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn skips_missing_frame_after_timeout() {
        let mut jb = VideoJitterBuffer::new();
        // Frame 0 never arrives; frame 1 complete.
        jb.on_packet(t(40), 1, 1, t(33));
        let r = jb.poll(t(400));
        assert_eq!(r.len(), 1, "must eventually skip ahead");
        assert_eq!(r[0].frame_idx, 1);
    }

    #[test]
    fn audio_conceals_gaps() {
        let mut ab = AudioJitterBuffer::new();
        // Deliver 50 packets, drop seq 20..25.
        for seq in 0..50u64 {
            if !(20..25).contains(&seq) {
                ab.on_packet(t(seq * 20 + 30), seq, t(seq * 20));
            }
        }
        ab.poll(t(2_000));
        assert!(
            ab.concealed_samples() >= 5 * 960,
            "{}",
            ab.concealed_samples()
        );
        assert!(ab.total_samples() > ab.concealed_samples());
    }

    #[test]
    fn audio_target_grows_under_jitter() {
        let mut ab = AudioJitterBuffer::new();
        let calm_target = {
            let mut calm = AudioJitterBuffer::new();
            for seq in 0..200u64 {
                calm.on_packet(t(seq * 20 + 10), seq, t(seq * 20));
                calm.poll(t(seq * 20 + 11));
            }
            calm.target_delay_ms()
        };
        for seq in 0..200u64 {
            let jitter = (seq % 7) * 25; // up to 150 ms swing
            ab.on_packet(t(seq * 20 + 10 + jitter), seq, t(seq * 20));
            ab.poll(t(seq * 20 + 11 + jitter));
        }
        assert!(
            ab.target_delay_ms() > calm_target + 30.0,
            "jittery {} vs calm {}",
            ab.target_delay_ms(),
            calm_target
        );
    }

    #[test]
    fn playout_estimator_decays_slowly() {
        let mut est = PlayoutDelayEstimator::new();
        // A burst of high-variation samples, then calm.
        est.on_delay(t(0), 20.0);
        for i in 0..20 {
            est.on_delay(t(10 + i * 10), 200.0);
        }
        let high = est.target_ms();
        assert!(high > 100.0, "high {high}");
        // Enough calm samples to expire the spike from the percentile
        // window; the target then drifts down at the slow decay rate.
        for i in 0..400u64 {
            est.on_delay(t(1000 + i * 20), 20.0);
        }
        let later = est.target_ms();
        assert!(later < high, "target should decay: {later} < {high}");
        assert!(later >= MIN_TARGET_MS);
    }
}
