//! # rtc-sim — a WebRTC-faithful endpoint model
//!
//! Implements the application-layer half of the paper's measurement stack:
//! the media pipeline and Google Congestion Control, instrumented to the
//! depth of the paper's custom libwebrtc client (50 ms stats including GCC
//! internals — §3: "the first work to instrument WebRTC to this level").
//!
//! | Paper mechanism | Module |
//! |---|---|
//! | GCC delay-based estimator, trendline, adaptive threshold (§6.2) | [`gcc::trendline`] |
//! | AIMD target-rate control, slow/fast recovery (§6.2)             | [`gcc::aimd`] |
//! | Loss-based estimator (§6.2)                                     | [`gcc::loss`] |
//! | Acknowledged-bitrate estimator (§6.2)                           | [`gcc::ack_bitrate`] |
//! | Congestion-window pushback (§6.3, Fig. 23)                      | [`gcc::pushback`] |
//! | Adaptive jitter buffer, freezes, concealment (§6.1)             | [`jitter`] |
//! | Encoder ladder: resolution/frame-rate adaptation                | [`encoder`] |
//! | Pacer (burst shaping that meets UL scheduling in Fig. 14)       | [`pacer`] |
//! | RTCP transport feedback + receiver reports (§6.3)               | [`feedback`] |
//! | Endpoint composition + 50 ms stats                              | [`endpoint`] |

pub mod encoder;
pub mod endpoint;
pub mod feedback;
pub mod gcc;
pub mod jitter;
pub mod pacer;

pub use encoder::{resolution_floor_bps, AudioSource, EncoderConfig, VideoEncoder, VideoFrame};
pub use endpoint::{
    MediaReceiver, MediaSender, OutgoingPacket, PacketPayload, RtcEndpoint, SenderConfig,
};
pub use feedback::{ArrivalEntry, FeedbackBuilder, ReceiverReport, TransportFeedback};
pub use gcc::{FeedbackEntry, SenderCc};
pub use jitter::{AudioJitterBuffer, PlayoutDelayEstimator, RenderedFrame, VideoJitterBuffer};
pub use pacer::{PacedPacket, Pacer, SentPacket};
