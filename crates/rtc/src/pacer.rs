//! Packet pacer: spreads each video frame's packet burst onto the wire at a
//! multiple of the target rate, as libwebrtc's `PacingController` does.
//!
//! The burstiness that survives pacing is exactly what interacts with 5G
//! uplink scheduling in Fig. 14: a frame becomes a cluster of packets whose
//! transmission the RAN then serialises into multiple transport blocks.

use std::collections::VecDeque;

use simcore::{SimDuration, SimTime};
use telemetry::StreamKind;

/// Pacing-rate multiplier over the pushback rate (libwebrtc default 2.5).
const PACING_FACTOR: f64 = 2.5;
/// Lower bound on the pacing rate so audio never stalls.
const MIN_PACING_BPS: f64 = 300_000.0;

/// A packet waiting in (or leaving) the pacer.
#[derive(Debug, Clone, Copy)]
pub struct PacedPacket {
    /// Media stream this packet belongs to.
    pub stream: StreamKind,
    /// Wire size in bytes.
    pub size_bytes: u32,
    /// Capture timestamp of the carried media.
    pub capture_ts: SimTime,
    /// Video frame index (0 for audio).
    pub frame_idx: u64,
    /// Index of this packet within its frame.
    pub packet_idx: u32,
    /// Total packets in the frame.
    pub packets_in_frame: u32,
    /// Audio sequence number (0 for video).
    pub audio_seq: u64,
}

/// A packet released by the pacer with its send time.
#[derive(Debug, Clone, Copy)]
pub struct SentPacket {
    /// When the packet leaves the host.
    pub at: SimTime,
    /// The packet.
    pub packet: PacedPacket,
}

/// Budget-based pacer.
#[derive(Debug, Clone, Default)]
pub struct Pacer {
    queue: VecDeque<PacedPacket>,
    next_release_at: SimTime,
}

impl Pacer {
    /// Creates an empty pacer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a packet for transmission.
    pub fn enqueue(&mut self, packet: PacedPacket) {
        self.queue.push_back(packet);
    }

    /// Packets currently queued.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Releases all packets whose paced send time is at or before `now`,
    /// given the current pushback rate.
    pub fn poll(&mut self, now: SimTime, pushback_rate_bps: f64) -> Vec<SentPacket> {
        let mut out = Vec::new();
        while let Some(sent) = self.pop_due(now, pushback_rate_bps) {
            out.push(sent);
        }
        out
    }

    /// Releases the next packet whose paced send time is at or before `now`,
    /// or `None` — the allocation-free single-step form of [`Self::poll`].
    pub fn pop_due(&mut self, now: SimTime, pushback_rate_bps: f64) -> Option<SentPacket> {
        let pacing_bps = (pushback_rate_bps * PACING_FACTOR).max(MIN_PACING_BPS);
        let front = self.queue.front()?;
        let release = self.next_release_at.max(
            // Never release media before it was captured.
            front.capture_ts,
        );
        if release > now {
            return None;
        }
        let pkt = self.queue.pop_front().expect("checked front");
        let tx = SimDuration::from_secs_f64(pkt.size_bytes as f64 * 8.0 / pacing_bps);
        self.next_release_at = release + tx;
        Some(SentPacket {
            at: release,
            packet: pkt,
        })
    }

    /// Time of the next pending release, if any packets are queued.
    pub fn next_release_time(&self) -> Option<SimTime> {
        self.queue
            .front()
            .map(|p| self.next_release_at.max(p.capture_ts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(bytes: u32, capture_ms: u64) -> PacedPacket {
        PacedPacket {
            stream: StreamKind::Video,
            size_bytes: bytes,
            capture_ts: SimTime::from_millis(capture_ms),
            frame_idx: 0,
            packet_idx: 0,
            packets_in_frame: 1,
            audio_seq: 0,
        }
    }

    #[test]
    fn spreads_burst_at_pacing_rate() {
        let mut p = Pacer::new();
        for _ in 0..10 {
            p.enqueue(pkt(1250, 0)); // 10 kbit each
        }
        // Pushback 1 Mbit/s → pacing 2.5 Mbit/s → 4 ms per packet.
        let sent = p.poll(SimTime::from_millis(100), 1_000_000.0);
        assert_eq!(sent.len(), 10);
        let gap = sent[1].at.saturating_since(sent[0].at).as_millis_f64();
        assert!((gap - 4.0).abs() < 0.1, "gap {gap}");
    }

    #[test]
    fn respects_now() {
        let mut p = Pacer::new();
        for _ in 0..100 {
            p.enqueue(pkt(12_500, 0)); // 100 kbit each → 40 ms at 2.5 M
        }
        let sent = p.poll(SimTime::from_millis(100), 1_000_000.0);
        assert!(sent.len() < 100, "only a prefix should be released");
        assert!(p.queue_len() > 0);
        assert!(sent.iter().all(|s| s.at <= SimTime::from_millis(100)));
    }

    #[test]
    fn never_sends_before_capture() {
        let mut p = Pacer::new();
        p.enqueue(pkt(100, 500));
        let sent = p.poll(SimTime::from_millis(400), 1_000_000.0);
        assert!(sent.is_empty());
        let sent = p.poll(SimTime::from_millis(600), 1_000_000.0);
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].at, SimTime::from_millis(500));
    }

    #[test]
    fn next_release_time_tracks_queue() {
        let mut p = Pacer::new();
        assert!(p.next_release_time().is_none());
        p.enqueue(pkt(100, 7));
        assert_eq!(p.next_release_time(), Some(SimTime::from_millis(7)));
    }
}
