//! RTCP feedback: transport-wide arrival reports and receiver reports.
//!
//! The efficacy of GCC "depends on the timely flow of ... RTCP feedback
//! from receiver to sender" (paper §6.3) — feedback packets here are real
//! packets that traverse the reverse network path, which is exactly how the
//! Fig. 22 pushback chain (reverse-path delay → outstanding bytes → rate
//! drop) can happen with a perfectly healthy forward path.

use simcore::{SimDuration, SimTime};

/// Transport-wide feedback interval (libwebrtc sends every ~50–100 ms).
const FEEDBACK_INTERVAL: SimDuration = SimDuration::from_millis(50);
/// Receiver-report interval.
const RR_INTERVAL: SimDuration = SimDuration::from_secs(1);
/// RTCP header/base size.
const RTCP_BASE_BYTES: u32 = 60;
/// Per-entry encoding cost in a transport feedback packet.
const PER_ENTRY_BYTES: u32 = 3;

/// One (transport seq, arrival) pair in a feedback packet.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalEntry {
    /// Transport-wide sequence number of the received packet.
    pub transport_seq: u64,
    /// Arrival time at the receiver.
    pub arrival: SimTime,
}

/// A transport-wide feedback packet (contents + wire size).
#[derive(Debug, Clone)]
pub struct TransportFeedback {
    /// Build/send time at the receiver.
    pub built_at: SimTime,
    /// Arrival entries since the previous feedback.
    pub entries: Vec<ArrivalEntry>,
    /// Wire size.
    pub size_bytes: u32,
}

/// An RTCP receiver report (loss statistics).
#[derive(Debug, Clone, Copy)]
pub struct ReceiverReport {
    /// Build/send time at the receiver.
    pub built_at: SimTime,
    /// Fraction of packets lost since the previous report (0..=1).
    pub loss_fraction: f64,
    /// Interarrival jitter estimate (ms), RFC 3550 style.
    pub jitter_ms: f64,
    /// Wire size.
    pub size_bytes: u32,
}

/// Receiver-side feedback generator.
#[derive(Debug, Clone)]
pub struct FeedbackBuilder {
    pending: Vec<ArrivalEntry>,
    next_feedback_at: SimTime,
    next_rr_at: SimTime,
    // Receiver-report state.
    highest_seq: Option<u64>,
    received_in_interval: u64,
    expected_base_seq: Option<u64>,
    jitter_ms: f64,
    last_transit_ms: Option<f64>,
}

impl Default for FeedbackBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl FeedbackBuilder {
    /// Creates a builder; first feedback is due one interval in.
    pub fn new() -> Self {
        FeedbackBuilder {
            pending: Vec::new(),
            next_feedback_at: SimTime::ZERO + FEEDBACK_INTERVAL,
            next_rr_at: SimTime::ZERO + RR_INTERVAL,
            highest_seq: None,
            received_in_interval: 0,
            expected_base_seq: None,
            jitter_ms: 0.0,
            last_transit_ms: None,
        }
    }

    /// Registers a received media packet.
    pub fn on_packet(&mut self, now: SimTime, transport_seq: u64, sent: SimTime) {
        self.pending.push(ArrivalEntry {
            transport_seq,
            arrival: now,
        });
        self.received_in_interval += 1;
        self.highest_seq = Some(
            self.highest_seq
                .map_or(transport_seq, |h| h.max(transport_seq)),
        );
        if self.expected_base_seq.is_none() {
            self.expected_base_seq = Some(transport_seq);
        }
        // RFC 3550 interarrival jitter.
        let transit_ms = now.saturating_since(sent).as_millis_f64();
        if let Some(last) = self.last_transit_ms {
            let d = (transit_ms - last).abs();
            self.jitter_ms += (d - self.jitter_ms) / 16.0;
        }
        self.last_transit_ms = Some(transit_ms);
    }

    /// Produces the feedback packets due at or before `now`.
    pub fn poll(&mut self, now: SimTime) -> (Option<TransportFeedback>, Option<ReceiverReport>) {
        let fb = if now >= self.next_feedback_at && !self.pending.is_empty() {
            let entries = std::mem::take(&mut self.pending);
            let size = RTCP_BASE_BYTES + PER_ENTRY_BYTES * entries.len() as u32;
            self.next_feedback_at = now + FEEDBACK_INTERVAL;
            Some(TransportFeedback {
                built_at: now,
                entries,
                size_bytes: size,
            })
        } else {
            None
        };
        let rr = if now >= self.next_rr_at {
            self.next_rr_at = now + RR_INTERVAL;
            let report = self.build_rr(now);
            Some(report)
        } else {
            None
        };
        (fb, rr)
    }

    fn build_rr(&mut self, now: SimTime) -> ReceiverReport {
        let loss = match (self.expected_base_seq, self.highest_seq) {
            (Some(base), Some(high)) => {
                let expected = high - base + 1;
                if expected == 0 {
                    0.0
                } else {
                    1.0 - (self.received_in_interval as f64 / expected as f64).min(1.0)
                }
            }
            _ => 0.0,
        };
        // Reset interval counters; next interval's base starts after the
        // highest seen seq.
        self.expected_base_seq = self.highest_seq.map(|h| h + 1);
        self.received_in_interval = 0;
        ReceiverReport {
            built_at: now,
            loss_fraction: loss,
            jitter_ms: self.jitter_ms,
            size_bytes: RTCP_BASE_BYTES,
        }
    }

    /// Time of the next scheduled feedback emission.
    pub fn next_action_at(&self) -> SimTime {
        self.next_feedback_at.min(self.next_rr_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn feedback_batches_arrivals() {
        let mut b = FeedbackBuilder::new();
        for i in 0..10u64 {
            b.on_packet(t(i * 5), i, t(i * 5));
        }
        let (fb, _) = b.poll(t(60));
        let fb = fb.expect("feedback due");
        assert_eq!(fb.entries.len(), 10);
        assert!(fb.size_bytes >= RTCP_BASE_BYTES);
        // Nothing pending afterwards.
        let (fb2, _) = b.poll(t(61));
        assert!(fb2.is_none());
    }

    #[test]
    fn no_feedback_without_packets() {
        let mut b = FeedbackBuilder::new();
        let (fb, _) = b.poll(t(500));
        assert!(fb.is_none());
    }

    #[test]
    fn rr_reports_loss_fraction() {
        let mut b = FeedbackBuilder::new();
        // Receive seqs 0..10 except 3,4,5 → 30% loss.
        for seq in (0..10u64).filter(|s| !(3..6).contains(s)) {
            b.on_packet(t(seq * 10), seq, t(seq * 10));
        }
        let (_, rr) = b.poll(t(1_000));
        let rr = rr.expect("rr due");
        assert!(
            (rr.loss_fraction - 0.3).abs() < 0.01,
            "loss {}",
            rr.loss_fraction
        );
    }

    #[test]
    fn jitter_tracks_variation() {
        let mut stable = FeedbackBuilder::new();
        for seq in 0..100u64 {
            stable.on_packet(t(seq * 20 + 30), seq, t(seq * 20));
        }
        let mut jittery = FeedbackBuilder::new();
        for seq in 0..100u64 {
            jittery.on_packet(t(seq * 20 + 30 + (seq % 5) * 12), seq, t(seq * 20));
        }
        let (_, rs) = stable.poll(t(5_000));
        let (_, rj) = jittery.poll(t(5_000));
        assert!(rj.unwrap().jitter_ms > rs.unwrap().jitter_ms + 1.0);
    }
}
