//! Video encoder model: resolution/frame-rate ladder and frame production.
//!
//! Produces frames whose sizes track the pushback rate handed down by GCC
//! (Fig. 23), with periodic keyframes, and adapts resolution and frame rate
//! the way libwebrtc's balanced degradation does: frame rate sags first when
//! the rate undershoots the current rung's floor, then the resolution steps
//! down (Fig. 21 subplot 5: "Frame rate/Res. drops"); upswitches are
//! hysteresis-delayed.

use rand::Rng;
use simcore::{SimDuration, SimTime};
use telemetry::Resolution;

/// Encoder configuration.
#[derive(Debug, Clone)]
pub struct EncoderConfig {
    /// Nominal frame rate (fps).
    pub max_fps: f64,
    /// Top rung the source/negotiation allows.
    pub max_resolution: Resolution,
    /// Keyframe period.
    pub keyframe_interval: SimDuration,
    /// Keyframe size multiplier over a delta frame.
    pub keyframe_factor: f64,
    /// RTP payload size for packetization.
    pub mtu_bytes: u32,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            max_fps: 30.0,
            max_resolution: Resolution::R1080p,
            keyframe_interval: SimDuration::from_secs(3),
            keyframe_factor: 3.5,
            mtu_bytes: 1200,
        }
    }
}

/// Bitrate floor (bits/s) at which a rung is sustainable at full frame rate.
pub fn resolution_floor_bps(res: Resolution) -> f64 {
    match res {
        Resolution::R180p => 150_000.0,
        Resolution::R360p => 400_000.0,
        Resolution::R540p => 1_100_000.0,
        Resolution::R720p => 3_000_000.0,
        Resolution::R1080p => 5_000_000.0,
    }
}

fn rung_below(res: Resolution) -> Option<Resolution> {
    let all = Resolution::ALL;
    let idx = all.iter().position(|&r| r == res).expect("valid rung");
    idx.checked_sub(1).map(|i| all[i])
}

fn rung_above(res: Resolution) -> Option<Resolution> {
    let all = Resolution::ALL;
    let idx = all.iter().position(|&r| r == res).expect("valid rung");
    all.get(idx + 1).copied()
}

/// One encoded video frame.
#[derive(Debug, Clone, Copy)]
pub struct VideoFrame {
    /// Capture/encode timestamp.
    pub capture_ts: SimTime,
    /// Total encoded size in bytes.
    pub size_bytes: u32,
    /// Whether this is a keyframe.
    pub keyframe: bool,
    /// Resolution at encode time.
    pub resolution: Resolution,
    /// Instantaneous encoder frame rate (fps).
    pub fps: f64,
    /// Monotone frame index.
    pub frame_idx: u64,
}

/// The adaptive video encoder.
#[derive(Debug, Clone)]
pub struct VideoEncoder {
    cfg: EncoderConfig,
    resolution: Resolution,
    fps: f64,
    next_frame_at: SimTime,
    next_keyframe_at: SimTime,
    frame_idx: u64,
    undershoot_since: Option<SimTime>,
    overshoot_since: Option<SimTime>,
}

impl VideoEncoder {
    /// Creates the encoder starting at 360p (libwebrtc starts low and
    /// upgrades as the estimate grows).
    pub fn new(cfg: EncoderConfig) -> Self {
        let start = Resolution::R360p.min(cfg.max_resolution);
        VideoEncoder {
            fps: cfg.max_fps,
            resolution: start,
            next_frame_at: SimTime::ZERO,
            next_keyframe_at: SimTime::ZERO,
            frame_idx: 0,
            undershoot_since: None,
            overshoot_since: None,
            cfg,
        }
    }

    /// Current resolution rung.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Current encoder frame rate.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// Time the next frame is due.
    pub fn next_frame_at(&self) -> SimTime {
        self.next_frame_at
    }

    /// Produces all frames due at or before `now`, sized for `rate_bps`.
    pub fn poll<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        rate_bps: f64,
        rng: &mut R,
    ) -> Vec<VideoFrame> {
        let mut frames = Vec::new();
        self.poll_into(now, rate_bps, rng, &mut frames);
        frames
    }

    /// [`Self::poll`] appending into a caller-owned buffer (allocation-free
    /// when the buffer's capacity is warm).
    pub fn poll_into<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        rate_bps: f64,
        rng: &mut R,
        frames: &mut Vec<VideoFrame>,
    ) {
        while self.next_frame_at <= now {
            let ts = self.next_frame_at;
            self.adapt(ts, rate_bps);
            let keyframe = ts >= self.next_keyframe_at;
            if keyframe {
                self.next_keyframe_at = ts + self.cfg.keyframe_interval;
            }
            let mean_bytes = rate_bps / self.fps / 8.0;
            // Content variation: ±15% around the rate-derived mean.
            let variation = 0.85 + 0.3 * rng.gen::<f64>();
            let factor = if keyframe {
                self.cfg.keyframe_factor
            } else {
                1.0
            };
            let size = (mean_bytes * variation * factor).max(120.0) as u32;
            frames.push(VideoFrame {
                capture_ts: ts,
                size_bytes: size,
                keyframe,
                resolution: self.resolution,
                fps: self.fps,
                frame_idx: self.frame_idx,
            });
            self.frame_idx += 1;
            self.next_frame_at = ts + SimDuration::from_secs_f64(1.0 / self.fps);
        }
    }

    fn adapt(&mut self, now: SimTime, rate_bps: f64) {
        let floor = resolution_floor_bps(self.resolution);
        // Frame rate sags proportionally once the rate is below the rung floor.
        let fps_scale = (rate_bps / floor).clamp(0.34, 1.0);
        self.fps = (self.cfg.max_fps * fps_scale).max(10.0);

        if rate_bps < 0.75 * floor {
            let since = *self.undershoot_since.get_or_insert(now);
            if now.saturating_since(since) >= SimDuration::from_millis(300) {
                if let Some(lower) = rung_below(self.resolution) {
                    self.resolution = lower;
                    self.undershoot_since = None;
                }
            }
        } else {
            self.undershoot_since = None;
        }

        if let Some(higher) = rung_above(self.resolution) {
            if higher <= self.cfg.max_resolution && rate_bps > 1.15 * resolution_floor_bps(higher) {
                let since = *self.overshoot_since.get_or_insert(now);
                if now.saturating_since(since) >= SimDuration::from_secs(2) {
                    self.resolution = higher;
                    self.overshoot_since = None;
                }
            } else {
                self.overshoot_since = None;
            }
        } else {
            self.overshoot_since = None;
        }
    }
}

/// Audio source: fixed-cadence Opus-like packets.
#[derive(Debug, Clone)]
pub struct AudioSource {
    /// Packet interval (20 ms).
    pub ptime: SimDuration,
    /// Payload size per packet (bytes).
    pub packet_bytes: u32,
    next_at: SimTime,
    seq: u64,
}

impl Default for AudioSource {
    fn default() -> Self {
        AudioSource {
            ptime: SimDuration::from_millis(20),
            packet_bytes: 100, // ≈40 kbit/s including overhead
            next_at: SimTime::ZERO,
            seq: 0,
        }
    }
}

/// One audio packet's metadata.
#[derive(Debug, Clone, Copy)]
pub struct AudioPacket {
    /// Capture timestamp.
    pub capture_ts: SimTime,
    /// Audio sequence number.
    pub seq: u64,
    /// Payload size.
    pub size_bytes: u32,
}

impl AudioSource {
    /// Creates the default 20 ms source.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time the next packet is due.
    pub fn next_at(&self) -> SimTime {
        self.next_at
    }

    /// Produces all audio packets due at or before `now`.
    pub fn poll(&mut self, now: SimTime) -> Vec<AudioPacket> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    /// [`Self::poll`] appending into a caller-owned buffer.
    pub fn poll_into(&mut self, now: SimTime, out: &mut Vec<AudioPacket>) {
        while self.next_at <= now {
            out.push(AudioPacket {
                capture_ts: self.next_at,
                seq: self.seq,
                size_bytes: self.packet_bytes,
            });
            self.seq += 1;
            self.next_at += self.ptime;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{rng_for, RngStream};

    fn rng() -> rand::rngs::StdRng {
        rng_for(21, RngStream::MediaSource)
    }

    #[test]
    fn produces_frames_at_nominal_rate() {
        let mut enc = VideoEncoder::new(EncoderConfig::default());
        let mut r = rng();
        let frames = enc.poll(SimTime::from_secs(1), 2_000_000.0, &mut r);
        // ~30 fps over 1 s (inclusive of t=0).
        assert!((28..=32).contains(&frames.len()), "{}", frames.len());
    }

    #[test]
    fn frame_sizes_track_rate() {
        let mut enc = VideoEncoder::new(EncoderConfig::default());
        let mut r = rng();
        let frames = enc.poll(SimTime::from_secs(10), 2_400_000.0, &mut r);
        let delta_bytes: Vec<f64> = frames
            .iter()
            .filter(|f| !f.keyframe)
            .map(|f| f.size_bytes as f64)
            .collect();
        let mean = delta_bytes.iter().sum::<f64>() / delta_bytes.len() as f64;
        // 2.4 Mbit/s at 30 fps = 10 kB/frame.
        assert!((mean - 10_000.0).abs() < 1_500.0, "mean {mean}");
    }

    #[test]
    fn keyframes_are_periodic_and_big() {
        let mut enc = VideoEncoder::new(EncoderConfig::default());
        let mut r = rng();
        let frames = enc.poll(SimTime::from_secs(10), 1_500_000.0, &mut r);
        let kf: Vec<&VideoFrame> = frames.iter().filter(|f| f.keyframe).collect();
        assert!((3..=5).contains(&kf.len()), "{} keyframes", kf.len());
        let df_mean = frames
            .iter()
            .filter(|f| !f.keyframe)
            .map(|f| f.size_bytes as f64)
            .sum::<f64>()
            / frames.iter().filter(|f| !f.keyframe).count() as f64;
        assert!(kf[0].size_bytes as f64 > 2.0 * df_mean);
    }

    #[test]
    fn low_rate_drops_fps_then_resolution() {
        let mut enc = VideoEncoder::new(EncoderConfig::default());
        let mut r = rng();
        // Start healthy at 540p-capable rate.
        enc.poll(SimTime::from_secs(5), 1_500_000.0, &mut r);
        let res_before = enc.resolution();
        // Starve: 300 kbit/s.
        enc.poll(SimTime::from_secs(8), 300_000.0, &mut r);
        assert!(enc.fps() < 29.0, "fps should sag: {}", enc.fps());
        assert!(enc.resolution() < res_before, "resolution should step down");
    }

    #[test]
    fn recovers_resolution_with_hysteresis() {
        let mut enc = VideoEncoder::new(EncoderConfig::default());
        let mut r = rng();
        enc.poll(SimTime::from_secs(3), 250_000.0, &mut r);
        let low = enc.resolution();
        assert_eq!(low, Resolution::R180p);
        // Rich rate for 5 s: should climb back up at least one rung.
        enc.poll(SimTime::from_secs(8), 3_500_000.0, &mut r);
        assert!(enc.resolution() > low);
        assert!((enc.fps() - 30.0).abs() < 1.0);
    }

    #[test]
    fn respects_max_resolution() {
        let cfg = EncoderConfig {
            max_resolution: Resolution::R540p,
            ..Default::default()
        };
        let mut enc = VideoEncoder::new(cfg);
        let mut r = rng();
        enc.poll(SimTime::from_secs(30), 10_000_000.0, &mut r);
        assert_eq!(enc.resolution(), Resolution::R540p);
    }

    #[test]
    fn audio_cadence() {
        let mut a = AudioSource::new();
        let pkts = a.poll(SimTime::from_secs(1));
        assert_eq!(pkts.len(), 51); // t=0..=1000ms inclusive at 20 ms
        assert_eq!(pkts[1].capture_ts, SimTime::from_millis(20));
        assert_eq!(pkts[50].seq, 50);
    }
}
