//! Congestion-window pushback controller (paper §6.3, Appendix E, Fig. 23).
//!
//! GCC maintains a congestion window sized to the bandwidth-delay product
//! plus a queueing budget, and tracks outstanding (sent-but-unacked) bytes.
//! When outstanding bytes exceed the window — which happens when *either*
//! the media path *or* the RTCP feedback path delays inflate (Fig. 22) —
//! the pushback controller scales the encoder rate below the target rate
//! until acknowledgments catch up.

use simcore::{SimDuration, SimTime};

/// Queueing budget added to the RTT when sizing the window (libwebrtc's
/// `queue_time_limit`, default 250 ms in the congestion-window experiment).
const QUEUE_BUDGET: SimDuration = SimDuration::from_millis(250);
/// Floor of the pushback scaling factor.
const MIN_PUSHBACK_FRACTION: f64 = 0.25;
/// Minimum congestion window.
const MIN_CWND_BYTES: u64 = 6_000;

/// Tracks outstanding bytes against the congestion window and computes the
/// pushback rate.
#[derive(Debug, Clone)]
pub struct PushbackController {
    outstanding_bytes: u64,
    cwnd_bytes: u64,
    rtt: SimDuration,
}

impl Default for PushbackController {
    fn default() -> Self {
        Self::new()
    }
}

impl PushbackController {
    /// Creates the controller with a nominal RTT.
    pub fn new() -> Self {
        PushbackController {
            outstanding_bytes: 0,
            cwnd_bytes: MIN_CWND_BYTES,
            rtt: SimDuration::from_millis(100),
        }
    }

    /// Bytes currently in flight.
    pub fn outstanding_bytes(&self) -> u64 {
        self.outstanding_bytes
    }

    /// Current congestion-window size in bytes.
    pub fn cwnd_bytes(&self) -> u64 {
        self.cwnd_bytes
    }

    /// Records a sent media packet.
    pub fn on_sent(&mut self, size_bytes: u32) {
        self.outstanding_bytes += size_bytes as u64;
    }

    /// Records acknowledged bytes (from transport feedback).
    pub fn on_acked(&mut self, size_bytes: u32) {
        self.outstanding_bytes = self.outstanding_bytes.saturating_sub(size_bytes as u64);
    }

    /// Records bytes declared lost (feedback gap timeout) so they stop
    /// counting against the window.
    pub fn on_lost(&mut self, size_bytes: u32) {
        self.outstanding_bytes = self.outstanding_bytes.saturating_sub(size_bytes as u64);
    }

    /// Updates the RTT estimate used to size the window.
    pub fn set_rtt(&mut self, rtt: SimDuration) {
        self.rtt = rtt;
    }

    /// Recomputes the window for the current target rate and returns the
    /// pushback rate: equal to `target_bps` while the window has room,
    /// scaled down proportionally once outstanding bytes exceed it.
    pub fn pushback_rate_bps(&mut self, _now: SimTime, target_bps: f64) -> f64 {
        let horizon = self.rtt + QUEUE_BUDGET;
        self.cwnd_bytes = ((target_bps * horizon.as_secs_f64() / 8.0) as u64).max(MIN_CWND_BYTES);
        if self.outstanding_bytes <= self.cwnd_bytes {
            return target_bps;
        }
        let fill = self.outstanding_bytes as f64 / self.cwnd_bytes as f64;
        let scale = (1.0 / fill).max(MIN_PUSHBACK_FRACTION);
        target_bps * scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn no_pushback_under_normal_operation() {
        let mut p = PushbackController::new();
        p.set_rtt(SimDuration::from_millis(50));
        // 2 Mbit/s target, small amount outstanding.
        p.on_sent(10_000);
        let rate = p.pushback_rate_bps(t(0), 2_000_000.0);
        assert_eq!(rate, 2_000_000.0);
    }

    #[test]
    fn pushback_when_outstanding_exceeds_window() {
        let mut p = PushbackController::new();
        p.set_rtt(SimDuration::from_millis(50));
        // Window at 2 Mbit/s, 300 ms horizon = 75 kB. Put 150 kB in flight.
        for _ in 0..15 {
            p.on_sent(10_000);
        }
        let rate = p.pushback_rate_bps(t(0), 2_000_000.0);
        assert!(rate < 2_000_000.0, "expected pushback, got {rate}");
        assert!((rate - 1_000_000.0).abs() < 50_000.0, "≈half: {rate}");
    }

    #[test]
    fn acks_release_pushback() {
        let mut p = PushbackController::new();
        p.set_rtt(SimDuration::from_millis(50));
        for _ in 0..15 {
            p.on_sent(10_000);
        }
        assert!(p.pushback_rate_bps(t(0), 2_000_000.0) < 2_000_000.0);
        for _ in 0..15 {
            p.on_acked(10_000);
        }
        assert_eq!(p.outstanding_bytes(), 0);
        assert_eq!(p.pushback_rate_bps(t(1), 2_000_000.0), 2_000_000.0);
    }

    #[test]
    fn pushback_floor() {
        let mut p = PushbackController::new();
        p.set_rtt(SimDuration::from_millis(10));
        for _ in 0..1000 {
            p.on_sent(60_000);
        }
        let rate = p.pushback_rate_bps(t(0), 1_000_000.0);
        assert!((rate - 250_000.0).abs() < 1.0, "floor at 25%: {rate}");
    }

    #[test]
    fn lost_bytes_drain_outstanding() {
        let mut p = PushbackController::new();
        p.on_sent(5_000);
        p.on_lost(5_000);
        assert_eq!(p.outstanding_bytes(), 0);
    }
}
