//! Google Congestion Control, assembled.
//!
//! [`SenderCc`] is the send-side controller the paper instruments: the
//! delay-based estimator ([`trendline`]) and loss-based bound ([`loss`])
//! produce the *target bitrate*; the congestion-window [`pushback`]
//! controller produces the final *pushback rate* handed to the encoder and
//! pacer (Fig. 23). The [`ack_bitrate`] estimator feeds both the AIMD
//! decrease step and the fast-recovery cap.

pub mod ack_bitrate;
pub mod aimd;
pub mod loss;
pub mod pushback;
pub mod trendline;

pub use ack_bitrate::AckedBitrateEstimator;
pub use aimd::{AimdRateControl, RateControlState};
pub use loss::LossBasedControl;
pub use pushback::PushbackController;
pub use trendline::{PacketTiming, TrendlineEstimator};

use simcore::{SimDuration, SimTime};
use telemetry::GccNetworkState;

/// One packet's fate as reported by transport-wide feedback.
#[derive(Debug, Clone, Copy)]
pub struct FeedbackEntry {
    /// Transport-wide sequence number.
    pub transport_seq: u64,
    /// When the sender put it on the wire.
    pub sent: SimTime,
    /// Arrival time at the receiver, or `None` if reported lost.
    pub arrival: Option<SimTime>,
    /// Size on the wire.
    pub size_bytes: u32,
}

/// The complete send-side congestion controller.
#[derive(Debug, Clone)]
pub struct SenderCc {
    trendline: TrendlineEstimator,
    aimd: AimdRateControl,
    loss: LossBasedControl,
    acked: AckedBitrateEstimator,
    pushback: PushbackController,
    rtt: SimDuration,
    target_bps: f64,
}

impl SenderCc {
    /// Creates a controller with a start rate and a cap.
    pub fn new(start_bps: f64, max_bps: f64) -> Self {
        SenderCc {
            trendline: TrendlineEstimator::new(),
            aimd: AimdRateControl::new(start_bps, max_bps),
            loss: LossBasedControl::new(max_bps, max_bps),
            acked: AckedBitrateEstimator::new(),
            pushback: PushbackController::new(),
            rtt: SimDuration::from_millis(100),
            target_bps: start_bps,
        }
    }

    /// Notifies the controller that a media/RTCP packet left the pacer.
    pub fn on_packet_sent(&mut self, _now: SimTime, size_bytes: u32) {
        self.pushback.on_sent(size_bytes);
    }

    /// Processes one transport-wide feedback report. `now` is the feedback's
    /// arrival time at the sender.
    pub fn on_transport_feedback(&mut self, now: SimTime, entries: &[FeedbackEntry]) {
        let mut newest_sent: Option<SimTime> = None;
        for e in entries {
            match e.arrival {
                Some(arrival) => {
                    self.trendline.on_packet(PacketTiming {
                        sent: e.sent,
                        arrival,
                    });
                    self.acked.on_acked(arrival, e.size_bytes);
                    self.pushback.on_acked(e.size_bytes);
                    newest_sent = Some(newest_sent.map_or(e.sent, |t| t.max(e.sent)));
                }
                None => self.pushback.on_lost(e.size_bytes),
            }
        }
        if let Some(sent) = newest_sent {
            // Round trip ≈ send → receiver → feedback back to sender.
            let sample = now.saturating_since(sent);
            let alpha = 0.2;
            self.rtt = SimDuration::from_micros(
                ((1.0 - alpha) * self.rtt.as_micros() as f64 + alpha * sample.as_micros() as f64)
                    as u64,
            );
            self.aimd.set_rtt(self.rtt);
            self.pushback.set_rtt(self.rtt);
        }
        let delay_based = self
            .aimd
            .update(now, self.trendline.state(), self.acked.bitrate_bps());
        self.target_bps = delay_based.min(self.loss.rate_bps());
    }

    /// Processes an RTCP receiver-report loss fraction.
    pub fn on_loss_report(&mut self, loss_fraction: f64) {
        self.loss
            .on_loss_report(loss_fraction, self.aimd.target_bps());
        self.target_bps = self.aimd.target_bps().min(self.loss.rate_bps());
    }

    /// The bandwidth estimator's target bitrate (bits/s).
    pub fn target_bps(&self) -> f64 {
        self.target_bps
    }

    /// The final rate after congestion-window pushback (bits/s).
    pub fn pushback_rate_bps(&mut self, now: SimTime) -> f64 {
        let target = self.target_bps;
        self.pushback.pushback_rate_bps(now, target)
    }

    /// Delay-based detector state (Fig. 21 subplot 3).
    pub fn network_state(&self) -> GccNetworkState {
        self.trendline.state()
    }

    /// Trendline modified slope (ms).
    pub fn trend(&self) -> f64 {
        self.trendline.modified_trend()
    }

    /// Adaptive overuse threshold (ms).
    pub fn trend_threshold(&self) -> f64 {
        self.trendline.threshold()
    }

    /// Bytes in flight.
    pub fn outstanding_bytes(&self) -> u64 {
        self.pushback.outstanding_bytes()
    }

    /// Congestion-window size (bytes).
    pub fn cwnd_bytes(&self) -> u64 {
        self.pushback.cwnd_bytes()
    }

    /// Smoothed RTT estimate.
    pub fn rtt(&self) -> SimDuration {
        self.rtt
    }

    /// Acknowledged bitrate, if estimable.
    pub fn acked_bitrate_bps(&self) -> Option<f64> {
        self.acked.bitrate_bps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Simulates a steady path, then a delay ramp; the controller must
    /// detect overuse and cut the target (the Fig. 21 causal chain).
    #[test]
    fn delay_ramp_cuts_target() {
        let mut cc = SenderCc::new(2_000_000.0, 15e6);
        let mut seq = 0u64;
        let mut feed = |cc: &mut SenderCc, base_ms: u64, n: u64, delay_of: &dyn Fn(u64) -> u64| {
            for i in 0..n {
                let sent = t(base_ms + i * 20);
                let arrival = t(base_ms + i * 20 + delay_of(i));
                cc.on_packet_sent(sent, 1200);
                cc.on_transport_feedback(
                    arrival + SimDuration::from_millis(20),
                    &[FeedbackEntry {
                        transport_seq: seq,
                        sent,
                        arrival: Some(arrival),
                        size_bytes: 1200,
                    }],
                );
                seq += 1;
            }
        };
        feed(&mut cc, 0, 100, &|_| 40);
        let before = cc.target_bps();
        assert_eq!(cc.network_state(), GccNetworkState::Normal);
        feed(&mut cc, 2000, 60, &|i| 40 + i * 6);
        assert!(
            cc.target_bps() < before,
            "{} -> {}",
            before,
            cc.target_bps()
        );
    }

    #[test]
    fn pushback_reacts_to_missing_acks() {
        let mut cc = SenderCc::new(2_000_000.0, 15e6);
        // Send 200 kB without any feedback: outstanding balloons.
        for i in 0..100 {
            cc.on_packet_sent(t(i * 5), 2_000);
        }
        let pb = cc.pushback_rate_bps(t(600));
        assert!(
            pb < cc.target_bps(),
            "pushback {pb} < target {}",
            cc.target_bps()
        );
    }

    #[test]
    fn loss_report_caps_target() {
        let mut cc = SenderCc::new(5_000_000.0, 15e6);
        cc.on_loss_report(0.5); // 50% loss
        assert!(cc.target_bps() < 5_000_000.0);
    }
}
