//! Loss-based rate controller: GCC's second estimator (paper §6.2
//! "Mechanism"), driven by the loss fraction in RTCP receiver reports.
//!
//! Classic GCC thresholds: above 10 % loss the rate is cut proportionally;
//! below 2 % it grows by 5 % per report; in between it holds.

/// Loss-based bitrate tracker.
#[derive(Debug, Clone)]
pub struct LossBasedControl {
    rate_bps: f64,
    max_bps: f64,
}

impl LossBasedControl {
    /// Creates the controller at `start_bps`.
    pub fn new(start_bps: f64, max_bps: f64) -> Self {
        LossBasedControl {
            rate_bps: start_bps,
            max_bps,
        }
    }

    /// Current loss-based rate bound (bits/s).
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// Feeds one receiver report's loss fraction (0..=1); the delay-based
    /// target is supplied because the loss controller operates on the
    /// current end-to-end estimate, cutting below it under heavy loss and
    /// releasing back to it when the path is clean.
    pub fn on_loss_report(&mut self, loss_fraction: f64, delay_based_bps: f64) -> f64 {
        let loss = loss_fraction.clamp(0.0, 1.0);
        // Operate on the current working estimate.
        self.rate_bps = self.rate_bps.min(delay_based_bps);
        if loss > 0.10 {
            self.rate_bps *= 1.0 - 0.5 * loss;
        } else if loss < 0.02 {
            self.rate_bps = (self.rate_bps * 1.05).min(self.max_bps);
            // Don't lag behind the delay-based estimate when the path is clean.
            self.rate_bps = self.rate_bps.max(delay_based_bps);
        }
        self.rate_bps = self.rate_bps.clamp(30_000.0, self.max_bps);
        self.rate_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_loss_cuts_rate() {
        let mut c = LossBasedControl::new(2_000_000.0, 15e6);
        c.on_loss_report(0.2, 2_000_000.0);
        assert!((c.rate_bps() - 2_000_000.0 * 0.9).abs() < 1.0);
    }

    #[test]
    fn low_loss_grows_and_tracks_delay_estimate() {
        let mut c = LossBasedControl::new(1_000_000.0, 15e6);
        c.on_loss_report(0.0, 3_000_000.0);
        assert!(c.rate_bps() >= 3_000_000.0);
    }

    #[test]
    fn moderate_loss_holds() {
        let mut c = LossBasedControl::new(1_000_000.0, 15e6);
        c.on_loss_report(0.05, 5_000_000.0);
        assert_eq!(c.rate_bps(), 1_000_000.0);
    }

    #[test]
    fn bounded() {
        let mut c = LossBasedControl::new(100_000.0, 15e6);
        for _ in 0..100 {
            c.on_loss_report(0.9, 100_000.0);
        }
        assert!(c.rate_bps() >= 30_000.0);
    }
}
