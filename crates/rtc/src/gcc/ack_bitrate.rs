//! Acknowledged-bitrate estimator: the throughput the receiver demonstrably
//! got, measured from transport feedback (paper §6.2).

use std::collections::VecDeque;

use simcore::{SimDuration, SimTime};

/// Sliding window over acknowledged bytes.
const WINDOW: SimDuration = SimDuration::from_millis(500);
/// Minimum window fill before producing an estimate.
const MIN_SAMPLES: usize = 4;

/// Estimates the delivered bitrate from (arrival time, size) samples.
#[derive(Debug, Clone, Default)]
pub struct AckedBitrateEstimator {
    samples: VecDeque<(SimTime, u32)>,
    total_bytes: u64,
}

impl AckedBitrateEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one acknowledged packet.
    pub fn on_acked(&mut self, arrival: SimTime, size_bytes: u32) {
        self.samples.push_back((arrival, size_bytes));
        self.total_bytes += size_bytes as u64;
        let horizon = if arrival.saturating_since(SimTime::ZERO) > WINDOW {
            arrival - WINDOW
        } else {
            SimTime::ZERO
        };
        while let Some(&(t, sz)) = self.samples.front() {
            if t < horizon {
                self.samples.pop_front();
                self.total_bytes -= sz as u64;
            } else {
                break;
            }
        }
    }

    /// Current estimate in bits/s, or `None` before enough samples.
    pub fn bitrate_bps(&self) -> Option<f64> {
        if self.samples.len() < MIN_SAMPLES {
            return None;
        }
        let first = self.samples.front().expect("non-empty").0;
        let last = self.samples.back().expect("non-empty").0;
        let span = last.saturating_since(first).as_secs_f64().max(0.05);
        Some(self.total_bytes as f64 * 8.0 / span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_stream_estimates_rate() {
        let mut e = AckedBitrateEstimator::new();
        // 1200 bytes every 10 ms = 960 kbit/s.
        for i in 0..100u64 {
            e.on_acked(SimTime::from_millis(1000 + i * 10), 1200);
        }
        let r = e.bitrate_bps().unwrap();
        assert!((r - 960_000.0).abs() < 100_000.0, "rate {r}");
    }

    #[test]
    fn needs_minimum_samples() {
        let mut e = AckedBitrateEstimator::new();
        e.on_acked(SimTime::from_millis(1), 1000);
        e.on_acked(SimTime::from_millis(2), 1000);
        assert!(e.bitrate_bps().is_none());
    }

    #[test]
    fn window_expires_old_samples() {
        let mut e = AckedBitrateEstimator::new();
        for i in 0..50u64 {
            e.on_acked(SimTime::from_millis(i * 10), 5000); // 4 Mbit/s
        }
        // A quiet second, then a slow trickle.
        for i in 0..50u64 {
            e.on_acked(SimTime::from_millis(2000 + i * 10), 250); // 200 kbit/s
        }
        let r = e.bitrate_bps().unwrap();
        assert!(r < 400_000.0, "old fast samples must have expired: {r}");
    }
}
