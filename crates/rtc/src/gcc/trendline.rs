//! GCC delay-based congestion signal: packet grouping, the trendline filter,
//! and the adaptive-threshold overuse detector.
//!
//! Follows the design of Carlucci et al. ("Analysis and design of the Google
//! congestion control for WebRTC") and the libwebrtc implementation the
//! paper instruments: feedback-reported one-way delay *variations* between
//! packet groups are accumulated, exponentially smoothed, and fit with a
//! linear regression whose slope — scaled and compared against an adaptive
//! threshold — classifies the network as underused / normal / overused
//! (paper Fig. 21, subplots 2–3).

use simcore::{SimDuration, SimTime};
use telemetry::GccNetworkState;

/// Burst window for grouping packets by send time (libwebrtc: 5 ms).
const GROUP_WINDOW: SimDuration = SimDuration::from_millis(5);
/// Trendline regression window size in packet groups.
const WINDOW_SIZE: usize = 20;
/// Exponential smoothing coefficient for the accumulated delay.
const SMOOTHING: f64 = 0.9;
/// Gain applied to the regression slope before thresholding.
const THRESHOLD_GAIN: f64 = 4.0;
/// Adaptive threshold: upward adaptation rate (|trend| above threshold).
const K_UP: f64 = 0.0087;
/// Adaptive threshold: downward adaptation rate.
const K_DOWN: f64 = 0.039;
/// Minimum time in overuse before signalling (libwebrtc: 10 ms).
const OVERUSE_TIME_THRESHOLD_MS: f64 = 10.0;
/// Threshold clamp range (ms).
const THRESHOLD_RANGE: (f64, f64) = (6.0, 600.0);

/// One packet's send/arrival observation from transport feedback.
#[derive(Debug, Clone, Copy)]
pub struct PacketTiming {
    /// Send time at the local client.
    pub sent: SimTime,
    /// Arrival time at the remote client (reported via feedback).
    pub arrival: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct Group {
    first_sent: SimTime,
    last_sent: SimTime,
    last_arrival: SimTime,
}

/// Delay-variation trendline estimator with adaptive-threshold detection.
#[derive(Debug, Clone)]
pub struct TrendlineEstimator {
    current: Option<Group>,
    previous: Option<Group>,
    accumulated_delay_ms: f64,
    smoothed_delay_ms: f64,
    history: Vec<(f64, f64)>, // (arrival time ms, smoothed delay ms)
    num_deltas: u32,
    slope: f64,
    threshold: f64,
    last_threshold_update: Option<SimTime>,
    state: GccNetworkState,
    overusing_since: Option<SimTime>,
    overuse_count: u32,
}

impl Default for TrendlineEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl TrendlineEstimator {
    /// Creates an estimator in the `Normal` state.
    pub fn new() -> Self {
        TrendlineEstimator {
            current: None,
            previous: None,
            accumulated_delay_ms: 0.0,
            smoothed_delay_ms: 0.0,
            history: Vec::with_capacity(WINDOW_SIZE),
            num_deltas: 0,
            slope: 0.0,
            threshold: 12.5,
            last_threshold_update: None,
            state: GccNetworkState::Normal,
            overusing_since: None,
            overuse_count: 0,
        }
    }

    /// Current classified network state.
    pub fn state(&self) -> GccNetworkState {
        self.state
    }

    /// Current modified trend value (slope × gain × deltas), in ms —
    /// the signal plotted in Fig. 21 subplot 2.
    pub fn modified_trend(&self) -> f64 {
        self.slope * THRESHOLD_GAIN * (self.num_deltas.min(60) as f64)
    }

    /// Current adaptive threshold (ms).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Raw regression slope (ms per group).
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// Feeds one packet timing observation (in feedback order).
    pub fn on_packet(&mut self, timing: PacketTiming) {
        match &mut self.current {
            Some(g) => {
                let burst = timing.sent.saturating_since(g.first_sent) <= GROUP_WINDOW;
                if burst {
                    g.last_sent = g.last_sent.max(timing.sent);
                    g.last_arrival = g.last_arrival.max(timing.arrival);
                } else {
                    // Group complete: compute inter-group delay variation.
                    let completed = *g;
                    if let Some(prev) = self.previous {
                        let send_delta = completed
                            .last_sent
                            .saturating_since(prev.last_sent)
                            .as_millis_f64();
                        let arrival_delta = completed
                            .last_arrival
                            .saturating_since(prev.last_arrival)
                            .as_millis_f64();
                        let delay_variation = arrival_delta - send_delta;
                        self.update_trend(completed.last_arrival, delay_variation);
                    }
                    self.previous = Some(completed);
                    self.current = Some(Group {
                        first_sent: timing.sent,
                        last_sent: timing.sent,
                        last_arrival: timing.arrival,
                    });
                }
            }
            None => {
                self.current = Some(Group {
                    first_sent: timing.sent,
                    last_sent: timing.sent,
                    last_arrival: timing.arrival,
                });
            }
        }
    }

    fn update_trend(&mut self, arrival: SimTime, delay_variation_ms: f64) {
        self.num_deltas += 1;
        self.accumulated_delay_ms += delay_variation_ms;
        self.smoothed_delay_ms =
            SMOOTHING * self.smoothed_delay_ms + (1.0 - SMOOTHING) * self.accumulated_delay_ms;

        self.history
            .push((arrival.as_millis_f64(), self.smoothed_delay_ms));
        if self.history.len() > WINDOW_SIZE {
            self.history.remove(0);
        }
        if self.history.len() >= 2 {
            self.slope = linear_fit_slope(&self.history);
        }
        self.detect(arrival);
    }

    fn detect(&mut self, now: SimTime) {
        let trend = self.modified_trend();
        if trend > self.threshold {
            let over_for = match self.overusing_since {
                Some(t0) => now.saturating_since(t0).as_millis_f64(),
                None => {
                    self.overusing_since = Some(now);
                    self.overuse_count = 0;
                    0.0
                }
            };
            self.overuse_count += 1;
            if over_for >= OVERUSE_TIME_THRESHOLD_MS && self.overuse_count > 1 {
                self.state = GccNetworkState::Overuse;
            }
        } else if trend < -self.threshold {
            self.overusing_since = None;
            self.state = GccNetworkState::Underuse;
        } else {
            self.overusing_since = None;
            self.state = GccNetworkState::Normal;
        }
        self.adapt_threshold(now, trend);
    }

    fn adapt_threshold(&mut self, now: SimTime, trend: f64) {
        // libwebrtc skips adaptation for extreme outliers.
        if trend.abs() > self.threshold + 15.0 {
            self.last_threshold_update = Some(now);
            return;
        }
        let k = if trend.abs() < self.threshold {
            K_DOWN
        } else {
            K_UP
        };
        let dt_ms = self
            .last_threshold_update
            .map(|t| now.saturating_since(t).as_millis_f64().min(100.0))
            .unwrap_or(16.0);
        self.threshold += k * (trend.abs() - self.threshold) * dt_ms;
        self.threshold = self.threshold.clamp(THRESHOLD_RANGE.0, THRESHOLD_RANGE.1);
        self.last_threshold_update = Some(now);
    }
}

/// Ordinary least-squares slope of (x, y) points.
fn linear_fit_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let mx = sx / n;
    let my = sy / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in points {
        num += (x - mx) * (y - my);
        den += (x - mx) * (x - mx);
    }
    if den.abs() < 1e-12 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(est: &mut TrendlineEstimator, pairs: &[(u64, u64)]) {
        for &(s, a) in pairs {
            est.on_packet(PacketTiming {
                sent: SimTime::from_millis(s),
                arrival: SimTime::from_millis(a),
            });
        }
    }

    #[test]
    fn stable_delay_stays_normal() {
        let mut est = TrendlineEstimator::new();
        // Packets every 20 ms, constant 30 ms delay.
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i * 20, i * 20 + 30)).collect();
        feed(&mut est, &pairs);
        assert_eq!(est.state(), GccNetworkState::Normal);
        assert!(est.modified_trend().abs() < est.threshold());
    }

    #[test]
    fn growing_delay_triggers_overuse() {
        let mut est = TrendlineEstimator::new();
        // Warm up stable, then delay grows 4 ms per group.
        let mut pairs: Vec<(u64, u64)> = (0..30).map(|i| (i * 20, i * 20 + 30)).collect();
        for i in 30..90u64 {
            pairs.push((i * 20, i * 20 + 30 + (i - 30) * 4));
        }
        feed(&mut est, &pairs);
        assert_eq!(est.state(), GccNetworkState::Overuse);
        assert!(est.modified_trend() > est.threshold());
    }

    #[test]
    fn shrinking_delay_triggers_underuse() {
        let mut est = TrendlineEstimator::new();
        // Warm up with a stable delay, then drain steadily; Underuse must
        // be observed at some point during the drain.
        for i in 0..30u64 {
            est.on_packet(PacketTiming {
                sent: SimTime::from_millis(i * 20),
                arrival: SimTime::from_millis(i * 20 + 300),
            });
        }
        let mut saw_underuse = false;
        for i in 30..90u64 {
            let drain = ((i - 30) * 8).min(240);
            est.on_packet(PacketTiming {
                sent: SimTime::from_millis(i * 20),
                arrival: SimTime::from_millis(i * 20 + 300 - drain),
            });
            saw_underuse |= est.state() == GccNetworkState::Underuse;
        }
        assert!(saw_underuse, "drain phase must classify as underuse");
    }

    #[test]
    fn bursts_group_together() {
        let mut est = TrendlineEstimator::new();
        // 5 packets within 5 ms are one group; constant per-group delay.
        let mut pairs = Vec::new();
        for g in 0..50u64 {
            for p in 0..5u64 {
                pairs.push((g * 33 + p, g * 33 + p + 40));
            }
        }
        feed(&mut est, &pairs);
        assert_eq!(est.state(), GccNetworkState::Normal);
    }

    #[test]
    fn threshold_adapts_upward_under_sustained_trend() {
        let mut est = TrendlineEstimator::new();
        let initial = est.threshold();
        // A steady mild ramp (+1.5 ms per 20 ms group) puts the modified
        // trend moderately above the initial threshold without tripping the
        // outlier clause, so the gamma adaptation walks the threshold up.
        let mut pairs: Vec<(u64, u64)> = (0..20).map(|i| (i * 20, i * 20 + 30)).collect();
        for i in 20..200u64 {
            pairs.push((i * 20, i * 20 + 30 + (i - 20) * 3 / 2));
        }
        feed(&mut est, &pairs);
        assert!(
            est.threshold() > initial,
            "threshold {} vs {initial}",
            est.threshold()
        );
    }

    #[test]
    fn slope_fit_on_known_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        assert!((linear_fit_slope(&pts) - 3.0).abs() < 1e-9);
        assert_eq!(linear_fit_slope(&[(1.0, 5.0)]), 0.0);
    }
}
