//! AIMD rate control: GCC's sender-side bandwidth estimator.
//!
//! Implements the state machine the paper traces in §6.2: *overuse* ⇒
//! multiplicative decrease to β × acknowledged bitrate; *underuse* ⇒ hold
//! while queues drain; *normal* ⇒ probe upward — multiplicatively when far
//! from the estimated link capacity, additively (slowly — the ≈30 s
//! recovery the paper measures) when near it. The increase is capped at
//! 1.5 × acknowledged bitrate + 10 kbit/s, which is the "fast recovery"
//! path: if the acknowledged bitrate stays high through a short overuse
//! episode, the cap lets the rate jump right back (§6.2, "GCC Acknowledged
//! Bit Rate Estimator").

use simcore::{SimDuration, SimTime};
use telemetry::GccNetworkState;

/// Multiplicative-decrease factor on overuse.
const BETA: f64 = 0.85;
/// Multiplicative-increase factor per second when far from capacity.
const ETA: f64 = 1.08;
/// Floor for the target rate (libwebrtc min bitrate).
const MIN_RATE_BPS: f64 = 30_000.0;
/// Assumed response time floor added to the RTT for additive increase.
const RESPONSE_TIME_EXTRA: SimDuration = SimDuration::from_millis(100);
/// Nominal packet size used to size the additive increase step.
const AVG_PACKET_BITS: f64 = 1200.0 * 8.0;

/// Rate-control state (libwebrtc `RateControlState`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateControlState {
    /// Keep the rate; let queues drain.
    Hold,
    /// Probe for more bandwidth.
    Increase,
    /// Back off.
    Decrease,
}

#[derive(Debug, Clone, Copy)]
struct LinkCapacity {
    mean_bps: f64,
    deviation_bps: f64,
}

/// The AIMD controller.
#[derive(Debug, Clone)]
pub struct AimdRateControl {
    state: RateControlState,
    target_bps: f64,
    max_bps: f64,
    link_capacity: Option<LinkCapacity>,
    last_change: Option<SimTime>,
    rtt: SimDuration,
}

impl AimdRateControl {
    /// Creates the controller with a starting and maximum bitrate.
    pub fn new(start_bps: f64, max_bps: f64) -> Self {
        AimdRateControl {
            state: RateControlState::Hold,
            target_bps: start_bps,
            max_bps,
            link_capacity: None,
            last_change: None,
            rtt: SimDuration::from_millis(100),
        }
    }

    /// Current target bitrate (bits/s).
    pub fn target_bps(&self) -> f64 {
        self.target_bps
    }

    /// Current controller state.
    pub fn state(&self) -> RateControlState {
        self.state
    }

    /// Feeds a smoothed RTT estimate (for additive-increase sizing).
    pub fn set_rtt(&mut self, rtt: SimDuration) {
        self.rtt = rtt;
    }

    /// Whether the controller is in the slow additive-increase regime.
    pub fn near_capacity(&self) -> bool {
        self.link_capacity.is_some()
    }

    /// Updates the target rate from the detector state and the acknowledged
    /// bitrate. Call on every feedback arrival.
    pub fn update(
        &mut self,
        now: SimTime,
        signal: GccNetworkState,
        acked_bitrate_bps: Option<f64>,
    ) -> f64 {
        // State transition (libwebrtc ChangeState).
        self.state = match signal {
            GccNetworkState::Normal => match self.state {
                RateControlState::Hold => RateControlState::Increase,
                s => s,
            },
            GccNetworkState::Overuse => RateControlState::Decrease,
            GccNetworkState::Underuse => RateControlState::Hold,
        };

        let dt = self
            .last_change
            .map(|t| now.saturating_since(t).as_secs_f64().min(1.0))
            .unwrap_or(0.05);
        self.last_change = Some(now);

        match self.state {
            RateControlState::Hold => {}
            RateControlState::Increase => {
                // An acked bitrate well above the remembered capacity means
                // the congestion episode did not reflect true capacity:
                // forget it and resume multiplicative probing (the fast
                // recovery path of §6.2).
                if let (Some(cap), Some(acked)) = (self.link_capacity, acked_bitrate_bps) {
                    if acked > cap.mean_bps + 3.0 * cap.deviation_bps {
                        self.link_capacity = None;
                    }
                }
                let near = match (self.link_capacity, acked_bitrate_bps) {
                    (Some(cap), Some(acked)) => {
                        (acked - cap.mean_bps).abs() <= 3.0 * cap.deviation_bps
                    }
                    (Some(_), None) => true,
                    (None, _) => false,
                };
                if near {
                    // Additive: roughly one packet per response time.
                    let response = self.rtt + RESPONSE_TIME_EXTRA;
                    let per_second =
                        (AVG_PACKET_BITS / response.as_secs_f64().max(1e-3)).max(4_000.0);
                    self.target_bps += per_second * dt;
                } else {
                    self.target_bps *= ETA.powf(dt);
                }
                // Cap relative to what the path demonstrably delivers.
                if let Some(acked) = acked_bitrate_bps {
                    self.target_bps = self.target_bps.min(1.5 * acked + 10_000.0);
                }
            }
            RateControlState::Decrease => {
                let basis = acked_bitrate_bps.unwrap_or(self.target_bps);
                self.target_bps = self.target_bps.min(BETA * basis);
                // Remember the capacity at the congestion point.
                if let Some(acked) = acked_bitrate_bps {
                    self.update_link_capacity(acked);
                }
                self.state = RateControlState::Hold;
            }
        }
        self.target_bps = self.target_bps.clamp(MIN_RATE_BPS, self.max_bps);
        self.target_bps
    }

    fn update_link_capacity(&mut self, acked_bps: f64) {
        match &mut self.link_capacity {
            Some(cap) => {
                let alpha = 0.05;
                cap.mean_bps = (1.0 - alpha) * cap.mean_bps + alpha * acked_bps;
                let dev = (acked_bps - cap.mean_bps).abs();
                cap.deviation_bps = (1.0 - alpha) * cap.deviation_bps + alpha * dev;
                cap.deviation_bps = cap
                    .deviation_bps
                    .clamp(0.02 * cap.mean_bps, 0.2 * cap.mean_bps);
                // An acked rate far from the estimate invalidates it
                // (enables fast multiplicative recovery — §6.2).
                if (acked_bps - cap.mean_bps).abs() > 3.0 * cap.deviation_bps {
                    self.link_capacity = None;
                }
            }
            None => {
                self.link_capacity = Some(LinkCapacity {
                    mean_bps: acked_bps,
                    deviation_bps: 0.15 * acked_bps,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn overuse_causes_multiplicative_decrease() {
        let mut c = AimdRateControl::new(2_000_000.0, 15_000_000.0);
        c.update(t(0), GccNetworkState::Normal, Some(2_000_000.0));
        let before = c.target_bps();
        c.update(t(100), GccNetworkState::Overuse, Some(2_000_000.0));
        let after = c.target_bps();
        assert!((after - 0.85 * 2_000_000.0).abs() < 1e-6, "after {after}");
        assert!(after < before);
        assert_eq!(c.state(), RateControlState::Hold);
    }

    #[test]
    fn normal_after_hold_probes_up() {
        let mut c = AimdRateControl::new(1_000_000.0, 15_000_000.0);
        let mut now = 0;
        for _ in 0..20 {
            now += 100;
            c.update(t(now), GccNetworkState::Normal, Some(5_000_000.0));
        }
        assert!(c.target_bps() > 1_000_000.0);
        assert_eq!(c.state(), RateControlState::Increase);
    }

    #[test]
    fn underuse_holds() {
        let mut c = AimdRateControl::new(1_000_000.0, 15_000_000.0);
        c.update(t(0), GccNetworkState::Normal, Some(1_000_000.0));
        let r = c.target_bps();
        for i in 1..10 {
            c.update(t(i * 100), GccNetworkState::Underuse, Some(1_000_000.0));
        }
        assert_eq!(c.target_bps(), r);
        assert_eq!(c.state(), RateControlState::Hold);
    }

    #[test]
    fn additive_recovery_is_slow_after_decrease() {
        // Post-overuse recovery at a stable acked bitrate should take tens
        // of seconds to regain a 1 Mbit/s cut (paper: "over 30 seconds").
        let mut c = AimdRateControl::new(3_000_000.0, 15_000_000.0);
        c.set_rtt(SimDuration::from_millis(100));
        c.update(t(0), GccNetworkState::Overuse, Some(3_000_000.0));
        let floor = c.target_bps(); // 2.55 M
                                    // Acked tracks the (reduced) send rate → stays near capacity estimate.
        let mut now = 0;
        let mut reached_at = None;
        for step in 0..1200 {
            now += 50;
            let acked = c.target_bps().min(3_000_000.0);
            c.update(t(now), GccNetworkState::Normal, Some(acked));
            if c.target_bps() >= 3_000_000.0 {
                reached_at = Some(step * 50);
                break;
            }
        }
        let ms = reached_at.expect("should eventually recover");
        assert!(ms > 5_000, "recovery too fast: {ms} ms from {floor}");
    }

    #[test]
    fn fast_recovery_when_acked_stays_high() {
        // Short-lived overuse, after which the acknowledged bitrate comes in
        // well above the remembered link capacity: the capacity estimate is
        // invalidated and multiplicative increase restores the rate within
        // seconds (§6.2 fast recovery, observed in ≈1 % of anomalies).
        let mut c = AimdRateControl::new(3_000_000.0, 15_000_000.0);
        c.update(t(0), GccNetworkState::Overuse, Some(3_000_000.0));
        assert!(c.target_bps() < 2_600_000.0);
        let mut now = 0;
        let mut reached_at = None;
        for step in 0..200 {
            now += 50;
            c.update(t(now), GccNetworkState::Normal, Some(4_500_000.0));
            if c.target_bps() >= 3_000_000.0 {
                reached_at = Some(step * 50);
                break;
            }
        }
        let ms = reached_at.expect("fast recovery should complete");
        assert!(ms <= 4_000, "fast recovery too slow: {ms} ms");
    }

    #[test]
    fn respects_min_and_max() {
        let mut c = AimdRateControl::new(100_000.0, 500_000.0);
        for i in 0..50 {
            c.update(t(i * 20), GccNetworkState::Overuse, Some(10_000.0));
        }
        assert!(c.target_bps() >= 30_000.0);
        let mut c = AimdRateControl::new(400_000.0, 500_000.0);
        for i in 0..500 {
            c.update(t(i * 100), GccNetworkState::Normal, Some(10_000_000.0));
        }
        assert!(c.target_bps() <= 500_000.0);
    }
}
