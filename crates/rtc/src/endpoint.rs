//! The WebRTC endpoint: media sender (encoder → pacer → congestion
//! controller) and media receiver (jitter buffers → feedback), plus the
//! 50 ms statistics sampler that mirrors the paper's instrumented client.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use simcore::{rng_for, RngStream, SimDuration, SimTime};
use telemetry::{AppStatsRecord, Resolution, StreamKind};

use crate::encoder::{AudioSource, EncoderConfig, VideoEncoder};
use crate::feedback::{FeedbackBuilder, ReceiverReport, TransportFeedback};
use crate::gcc::{FeedbackEntry, SenderCc};
use crate::jitter::{AudioJitterBuffer, VideoJitterBuffer};
use crate::pacer::{PacedPacket, Pacer};

/// How long an unacked packet may outlive the newest acked packet's send
/// time before the sender declares it lost.
const LOSS_TIMEOUT: SimDuration = SimDuration::from_millis(500);

/// Content of a packet on the wire.
#[derive(Debug, Clone)]
pub enum PacketPayload {
    /// RTP video.
    Video {
        /// Frame this packet belongs to.
        frame_idx: u64,
        /// Position within the frame.
        packet_idx: u32,
        /// Total packets in the frame.
        packets_in_frame: u32,
        /// Capture timestamp.
        capture_ts: SimTime,
        /// Encoded resolution.
        resolution: Resolution,
    },
    /// RTP audio.
    Audio {
        /// Audio sequence number.
        seq: u64,
        /// Capture timestamp.
        capture_ts: SimTime,
    },
    /// RTCP transport-wide feedback.
    Feedback(TransportFeedback),
    /// RTCP receiver report.
    Report(ReceiverReport),
}

impl PacketPayload {
    /// The stream classification for packet traces.
    pub fn stream(&self) -> StreamKind {
        match self {
            PacketPayload::Video { .. } => StreamKind::Video,
            PacketPayload::Audio { .. } => StreamKind::Audio,
            PacketPayload::Feedback(_) | PacketPayload::Report(_) => StreamKind::Rtcp,
        }
    }
}

/// A packet leaving an endpoint.
#[derive(Debug, Clone)]
pub struct OutgoingPacket {
    /// Exact send time (paced).
    pub at: SimTime,
    /// Transport-wide sequence number (media only; RTCP uses `u64::MAX`).
    pub transport_seq: u64,
    /// Wire size.
    pub size_bytes: u32,
    /// Contents.
    pub payload: PacketPayload,
}

/// Sender configuration.
#[derive(Debug, Clone)]
pub struct SenderConfig {
    /// Initial GCC bitrate.
    pub start_bps: f64,
    /// Maximum bitrate (codec/application cap).
    pub max_bps: f64,
    /// Encoder settings.
    pub encoder: EncoderConfig,
}

impl Default for SenderConfig {
    fn default() -> Self {
        SenderConfig {
            start_bps: 1_000_000.0,
            max_bps: 15_000_000.0,
            encoder: EncoderConfig::default(),
        }
    }
}

/// The sending half of an endpoint.
pub struct MediaSender {
    /// Congestion controller (public for telemetry sampling).
    pub cc: SenderCc,
    encoder: VideoEncoder,
    audio: AudioSource,
    pacer: Pacer,
    transport_seq: u64,
    unacked: BTreeMap<u64, (SimTime, u32)>,
    rng: StdRng,
    mtu: u32,
    // Reused scratch so the per-tick poll path and the per-feedback path
    // stay allocation-free at steady state.
    frame_scratch: Vec<crate::encoder::VideoFrame>,
    audio_scratch: Vec<crate::encoder::AudioPacket>,
    fb_scratch: Vec<FeedbackEntry>,
    lost_scratch: Vec<u64>,
}

impl MediaSender {
    /// Creates a sender; `seed`/`stream_tag` derive its RNG stream.
    pub fn new(cfg: SenderConfig, seed: u64, stream_tag: u16) -> Self {
        MediaSender {
            cc: SenderCc::new(cfg.start_bps, cfg.max_bps),
            encoder: VideoEncoder::new(cfg.encoder.clone()),
            audio: AudioSource::new(),
            pacer: Pacer::new(),
            transport_seq: 0,
            unacked: BTreeMap::new(),
            rng: rng_for(seed, RngStream::Custom(stream_tag)),
            mtu: cfg.encoder.mtu_bytes,
            frame_scratch: Vec::new(),
            audio_scratch: Vec::new(),
            fb_scratch: Vec::new(),
            lost_scratch: Vec::new(),
        }
    }

    /// Packets sitting in the pacer queue — the send-side backlog the
    /// observability layer samples per tick.
    pub fn pacer_backlog(&self) -> usize {
        self.pacer.queue_len()
    }

    /// Produces all packets due at or before `now`.
    pub fn poll(&mut self, now: SimTime) -> Vec<OutgoingPacket> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    /// [`Self::poll`] appending into a caller-owned buffer — the
    /// allocation-free form the session engine drives every tick.
    pub fn poll_into(&mut self, now: SimTime, out: &mut Vec<OutgoingPacket>) {
        let pushback = self.cc.pushback_rate_bps(now);
        // Encode due frames and packetize into the pacer.
        self.frame_scratch.clear();
        self.encoder
            .poll_into(now, pushback, &mut self.rng, &mut self.frame_scratch);
        for frame in self.frame_scratch.drain(..) {
            let n = frame.size_bytes.div_ceil(self.mtu).max(1);
            for i in 0..n {
                let size = if i + 1 == n {
                    frame.size_bytes - self.mtu * (n - 1)
                } else {
                    self.mtu
                };
                self.pacer.enqueue(PacedPacket {
                    stream: StreamKind::Video,
                    size_bytes: size.max(1),
                    capture_ts: frame.capture_ts,
                    frame_idx: frame.frame_idx,
                    packet_idx: i,
                    packets_in_frame: n,
                    audio_seq: 0,
                });
            }
        }
        self.audio_scratch.clear();
        self.audio.poll_into(now, &mut self.audio_scratch);
        for pkt in self.audio_scratch.drain(..) {
            self.pacer.enqueue(PacedPacket {
                stream: StreamKind::Audio,
                size_bytes: pkt.size_bytes,
                capture_ts: pkt.capture_ts,
                frame_idx: 0,
                packet_idx: 0,
                packets_in_frame: 1,
                audio_seq: pkt.seq,
            });
        }
        // Release paced packets.
        while let Some(sent) = self.pacer.pop_due(now, pushback) {
            let seq = self.transport_seq;
            self.transport_seq += 1;
            self.cc.on_packet_sent(sent.at, sent.packet.size_bytes);
            self.unacked.insert(seq, (sent.at, sent.packet.size_bytes));
            let payload = match sent.packet.stream {
                StreamKind::Video => PacketPayload::Video {
                    frame_idx: sent.packet.frame_idx,
                    packet_idx: sent.packet.packet_idx,
                    packets_in_frame: sent.packet.packets_in_frame,
                    capture_ts: sent.packet.capture_ts,
                    resolution: self.encoder.resolution(),
                },
                StreamKind::Audio => PacketPayload::Audio {
                    seq: sent.packet.audio_seq,
                    capture_ts: sent.packet.capture_ts,
                },
                StreamKind::Rtcp => unreachable!("pacer never carries RTCP"),
            };
            out.push(OutgoingPacket {
                at: sent.at,
                transport_seq: seq,
                size_bytes: sent.packet.size_bytes,
                payload,
            });
        }
    }

    /// Processes arrived transport feedback.
    pub fn on_transport_feedback(&mut self, now: SimTime, fb: &TransportFeedback) {
        self.fb_scratch.clear();
        let mut newest_acked_sent: Option<SimTime> = None;
        for e in &fb.entries {
            if let Some((sent, size)) = self.unacked.remove(&e.transport_seq) {
                self.fb_scratch.push(FeedbackEntry {
                    transport_seq: e.transport_seq,
                    sent,
                    arrival: Some(e.arrival),
                    size_bytes: size,
                });
                newest_acked_sent = Some(newest_acked_sent.map_or(sent, |t| t.max(sent)));
            }
        }
        // Loss detection: unacked packets sent long before the newest acked
        // one are gone.
        if let Some(newest) = newest_acked_sent {
            self.lost_scratch.clear();
            self.lost_scratch.extend(
                self.unacked
                    .iter()
                    .filter(|(_, (sent, _))| *sent + LOSS_TIMEOUT < newest)
                    .map(|(&seq, _)| seq),
            );
            for i in 0..self.lost_scratch.len() {
                let seq = self.lost_scratch[i];
                let (sent, size) = self.unacked.remove(&seq).expect("present");
                self.fb_scratch.push(FeedbackEntry {
                    transport_seq: seq,
                    sent,
                    arrival: None,
                    size_bytes: size,
                });
            }
        }
        self.cc.on_transport_feedback(now, &self.fb_scratch);
    }

    /// Processes an arrived receiver report.
    pub fn on_receiver_report(&mut self, _now: SimTime, rr: &ReceiverReport) {
        self.cc.on_loss_report(rr.loss_fraction);
    }

    /// Earliest time the sender next has work to do.
    pub fn next_action_at(&self) -> SimTime {
        let mut t = self.encoder.next_frame_at().min(self.audio.next_at());
        if let Some(p) = self.pacer.next_release_time() {
            t = t.min(p);
        }
        t
    }

    /// Encoder's current resolution.
    pub fn resolution(&self) -> Resolution {
        self.encoder.resolution()
    }

    /// Encoder's current frame rate.
    pub fn fps(&self) -> f64 {
        self.encoder.fps()
    }
}

/// The receiving half of an endpoint.
pub struct MediaReceiver {
    /// Video jitter buffer (public for telemetry sampling).
    pub video: VideoJitterBuffer,
    /// Audio jitter buffer.
    pub audio: AudioJitterBuffer,
    feedback: FeedbackBuilder,
    last_resolution: Resolution,
}

impl Default for MediaReceiver {
    fn default() -> Self {
        Self::new()
    }
}

impl MediaReceiver {
    /// Creates an empty receiver.
    pub fn new() -> Self {
        MediaReceiver {
            video: VideoJitterBuffer::new(),
            audio: AudioJitterBuffer::new(),
            feedback: FeedbackBuilder::new(),
            last_resolution: Resolution::R360p,
        }
    }

    /// Processes an arrived media packet. `sent` is the sender timestamp
    /// (transport-wide feedback echoes it for delay-gradient estimation).
    pub fn on_packet(
        &mut self,
        now: SimTime,
        transport_seq: u64,
        sent: SimTime,
        payload: &PacketPayload,
    ) {
        match payload {
            PacketPayload::Video {
                frame_idx,
                packets_in_frame,
                capture_ts,
                resolution,
                ..
            } => {
                self.feedback.on_packet(now, transport_seq, sent);
                self.video
                    .on_packet(now, *frame_idx, *packets_in_frame, *capture_ts);
                self.last_resolution = *resolution;
            }
            PacketPayload::Audio { seq, capture_ts } => {
                self.feedback.on_packet(now, transport_seq, sent);
                self.audio.on_packet(now, *seq, *capture_ts);
            }
            PacketPayload::Feedback(_) | PacketPayload::Report(_) => {
                unreachable!("RTCP is routed to the sender half")
            }
        }
    }

    /// Advances playout and builds due feedback packets.
    pub fn poll(&mut self, now: SimTime) -> Vec<OutgoingPacket> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    /// [`Self::poll`] appending into a caller-owned buffer — the
    /// allocation-free form the session engine drives every tick.
    pub fn poll_into(&mut self, now: SimTime, out: &mut Vec<OutgoingPacket>) {
        self.video.advance(now);
        self.audio.poll(now);
        let (fb, rr) = self.feedback.poll(now);
        if let Some(fb) = fb {
            out.push(OutgoingPacket {
                at: now,
                transport_seq: u64::MAX,
                size_bytes: fb.size_bytes,
                payload: PacketPayload::Feedback(fb),
            });
        }
        if let Some(rr) = rr {
            out.push(OutgoingPacket {
                at: now,
                transport_seq: u64::MAX,
                size_bytes: rr.size_bytes,
                payload: PacketPayload::Report(rr),
            });
        }
    }

    /// Earliest time the receiver next has scheduled work.
    pub fn next_action_at(&self) -> SimTime {
        self.feedback.next_action_at()
    }

    /// Resolution of the most recently received video packet.
    pub fn inbound_resolution(&self) -> Resolution {
        self.last_resolution
    }
}

/// A full two-way endpoint: one sender, one receiver, one stats stream.
pub struct RtcEndpoint {
    /// Sending half.
    pub sender: MediaSender,
    /// Receiving half.
    pub receiver: MediaReceiver,
}

impl RtcEndpoint {
    /// Creates an endpoint.
    pub fn new(cfg: SenderConfig, seed: u64, stream_tag: u16) -> Self {
        RtcEndpoint {
            sender: MediaSender::new(cfg, seed, stream_tag),
            receiver: MediaReceiver::new(),
        }
    }

    /// Samples the 50 ms statistics record the paper's instrumented client
    /// exports (standard webrtc-stats + GCC internals).
    pub fn sample_stats(&mut self, now: SimTime) -> AppStatsRecord {
        let pushback = self.sender.cc.pushback_rate_bps(now);
        AppStatsRecord {
            ts: now,
            inbound_fps: self.receiver.video.rendered_fps(),
            inbound_resolution: self.receiver.inbound_resolution(),
            video_jitter_buffer_ms: self.receiver.video.current_delay_ms(),
            audio_jitter_buffer_ms: self.receiver.audio.current_delay_ms(),
            min_jitter_buffer_ms: self.receiver.video.target_delay_ms(),
            freeze_active: self.receiver.video.freeze_active(),
            total_freeze_ms: self.receiver.video.total_freeze_ms(),
            concealed_samples: self.receiver.audio.concealed_samples(),
            total_audio_samples: self.receiver.audio.total_samples(),
            outbound_fps: self.sender.fps(),
            outbound_resolution: self.sender.resolution(),
            target_bitrate_bps: self.sender.cc.target_bps(),
            pushback_rate_bps: pushback,
            outstanding_bytes: self.sender.cc.outstanding_bytes(),
            cwnd_bytes: self.sender.cc.cwnd_bytes(),
            gcc_state: self.sender.cc.network_state(),
            trendline_slope: self.sender.cc.trend(),
            trendline_threshold: self.sender.cc.trend_threshold(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Loopback harness: A sends to B over a constant-delay pipe, feedback
    /// returns over the same pipe; everything should be healthy.
    fn run_loopback(delay_ms: u64, duration_ms: u64) -> (RtcEndpoint, RtcEndpoint) {
        let mut a = RtcEndpoint::new(SenderConfig::default(), 1, 1);
        let mut b = RtcEndpoint::new(SenderConfig::default(), 1, 2);
        let mut now_ms = 0u64;
        // In-flight queues: (deliver_at_ms, seq, sent, payload).
        let mut to_b: Vec<(u64, u64, SimTime, PacketPayload)> = Vec::new();
        let mut to_a: Vec<(u64, u64, SimTime, PacketPayload)> = Vec::new();
        while now_ms < duration_ms {
            now_ms += 5;
            let now = t(now_ms);
            for p in a.sender.poll(now) {
                to_b.push((
                    p.at.as_millis() + delay_ms,
                    p.transport_seq,
                    p.at,
                    p.payload,
                ));
            }
            for p in b.receiver.poll(now) {
                to_a.push((now_ms + delay_ms, p.transport_seq, p.at, p.payload));
            }
            to_b.retain(|(at, seq, sent, payload)| {
                if *at <= now_ms {
                    b.receiver.on_packet(t(*at), *seq, *sent, payload);
                    false
                } else {
                    true
                }
            });
            to_a.retain(|(at, _seq, _sent, payload)| {
                if *at <= now_ms {
                    match payload {
                        PacketPayload::Feedback(fb) => a.sender.on_transport_feedback(t(*at), fb),
                        PacketPayload::Report(rr) => a.sender.on_receiver_report(t(*at), rr),
                        _ => unreachable!(),
                    }
                    false
                } else {
                    true
                }
            });
        }
        (a, b)
    }

    #[test]
    fn loopback_session_is_healthy() {
        let (mut a, mut b) = run_loopback(20, 10_000);
        let stats_a = a.sample_stats(t(10_000));
        let stats_b = b.sample_stats(t(10_000));
        // Sender ramped up from the 1 Mbit/s start.
        assert!(
            stats_a.target_bitrate_bps > 1_200_000.0,
            "{}",
            stats_a.target_bitrate_bps
        );
        // No pushback under healthy conditions.
        assert!(stats_a.pushback_rate_bps >= 0.95 * stats_a.target_bitrate_bps);
        // Receiver rendered ~30 fps with no freezes and no concealment.
        assert!(stats_b.inbound_fps > 20.0, "fps {}", stats_b.inbound_fps);
        assert_eq!(stats_b.concealed_samples, 0);
        assert!(
            stats_b.total_freeze_ms < 200.0,
            "{}",
            stats_b.total_freeze_ms
        );
        assert!(stats_b.total_audio_samples > 100_000);
    }

    #[test]
    fn sender_ramps_up_over_time() {
        let (mut a, _) = run_loopback(15, 20_000);
        let s = a.sample_stats(t(20_000));
        assert!(
            s.target_bitrate_bps > 2_000_000.0,
            "{}",
            s.target_bitrate_bps
        );
    }

    #[test]
    fn feedback_starvation_triggers_pushback() {
        let mut a = RtcEndpoint::new(SenderConfig::default(), 3, 1);
        // Send for 2 s without ever delivering feedback.
        let mut now_ms = 0;
        while now_ms < 2_000 {
            now_ms += 5;
            a.sender.poll(t(now_ms));
        }
        let s = a.sample_stats(t(2_000));
        assert!(
            s.outstanding_bytes > s.cwnd_bytes,
            "{} vs {}",
            s.outstanding_bytes,
            s.cwnd_bytes
        );
        assert!(s.pushback_rate_bps < s.target_bitrate_bps);
    }

    #[test]
    fn stats_record_is_complete() {
        let (mut a, _) = run_loopback(20, 3_000);
        let s = a.sample_stats(t(3_000));
        assert!(s.trendline_threshold > 0.0);
        assert!(s.cwnd_bytes > 0);
        assert_eq!(s.ts, t(3_000));
    }
}
