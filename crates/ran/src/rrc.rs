//! Radio Resource Control state machine.
//!
//! The paper observes (§5.3) that the T-Mobile 15 MHz FDD cell sometimes
//! releases the RRC connection *during* active transfer — "aggressive network
//! inactivity timers, specific connection management policies, or transient
//! Radio Link Failures" — producing a ≈300 ms interruption with an RNTI
//! change, during which the UE can neither send nor receive and its buffers
//! grow (Fig. 19). Releases here can be random (rate-configured) or scripted
//! at exact times for the figure-regeneration harness.

use rand::Rng;
use simcore::{SimDuration, SimTime};
use telemetry::RrcState;

/// RRC behaviour configuration.
#[derive(Debug, Clone)]
pub struct RrcConfig {
    /// Mean interval between spontaneous releases while connected;
    /// `None` disables random releases (standard-conforming behaviour).
    pub random_release_every: Option<SimDuration>,
    /// Idle time before re-establishment begins.
    pub idle_duration: SimDuration,
    /// Duration of connection re-establishment.
    pub connecting_duration: SimDuration,
}

impl Default for RrcConfig {
    fn default() -> Self {
        RrcConfig {
            random_release_every: None,
            // ≈300 ms total interruption as measured in the paper.
            idle_duration: SimDuration::from_millis(240),
            connecting_duration: SimDuration::from_millis(60),
        }
    }
}

/// A state change the cell should log / react to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RrcTransition {
    /// When the transition occurred.
    pub at: SimTime,
    /// New state.
    pub state: RrcState,
    /// RNTI valid after the transition (new value on re-establishment).
    pub rnti: u32,
}

/// The UE's RRC state machine as seen from the gNB.
#[derive(Debug, Clone)]
pub struct RrcMachine {
    cfg: RrcConfig,
    state: RrcState,
    state_until: SimTime,
    rnti: u32,
    next_rnti: u32,
    scripted_releases: Vec<SimTime>,
    transitions: Vec<RrcTransition>,
}

impl RrcMachine {
    /// Creates the machine in the Connected state with an initial RNTI.
    pub fn new(cfg: RrcConfig, initial_rnti: u32) -> Self {
        RrcMachine {
            cfg,
            state: RrcState::Connected,
            state_until: SimTime::ZERO,
            rnti: initial_rnti,
            next_rnti: initial_rnti.wrapping_add(7919),
            scripted_releases: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> RrcState {
        self.state
    }

    /// Whether data transfer is possible right now.
    pub fn is_connected(&self) -> bool {
        self.state == RrcState::Connected
    }

    /// RNTI currently assigned (changes across re-establishments).
    pub fn rnti(&self) -> u32 {
        self.rnti
    }

    /// Schedules a release at an exact time (scripted scenarios).
    pub fn script_release(&mut self, at: SimTime) {
        self.scripted_releases.push(at);
        self.scripted_releases.sort();
    }

    /// Drains the transitions that occurred since the last call.
    pub fn drain_transitions(&mut self) -> Vec<RrcTransition> {
        std::mem::take(&mut self.transitions)
    }

    /// Advances the machine to `now` (called once per slot). `dt` is the
    /// step length used for the random-release hazard.
    pub fn step<R: Rng + ?Sized>(&mut self, now: SimTime, dt: SimDuration, rng: &mut R) {
        match self.state {
            RrcState::Connected => {
                let scripted_due = self.scripted_releases.first().is_some_and(|&t| t <= now);
                let random_due = self.cfg.random_release_every.is_some_and(|every| {
                    rng.gen::<f64>() < dt.as_secs_f64() / every.as_secs_f64().max(1e-9)
                });
                if scripted_due {
                    self.scripted_releases.remove(0);
                }
                if scripted_due || random_due {
                    self.state = RrcState::Idle;
                    self.state_until = now + self.cfg.idle_duration;
                    self.transitions.push(RrcTransition {
                        at: now,
                        state: RrcState::Idle,
                        rnti: self.rnti,
                    });
                }
            }
            RrcState::Idle => {
                if now >= self.state_until {
                    self.state = RrcState::Connecting;
                    self.state_until = now + self.cfg.connecting_duration;
                    self.transitions.push(RrcTransition {
                        at: now,
                        state: RrcState::Connecting,
                        rnti: self.rnti,
                    });
                }
            }
            RrcState::Connecting => {
                if now >= self.state_until {
                    self.state = RrcState::Connected;
                    self.rnti = self.next_rnti;
                    self.next_rnti = self.next_rnti.wrapping_mul(31).wrapping_add(17) % 60_000;
                    if self.next_rnti < 1000 {
                        self.next_rnti += 1000;
                    }
                    self.transitions.push(RrcTransition {
                        at: now,
                        state: RrcState::Connected,
                        rnti: self.rnti,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{rng_for, RngStream};

    const DT: SimDuration = SimDuration::from_micros(500);

    fn run_until(m: &mut RrcMachine, from_ms: u64, to_ms: u64) {
        let mut rng = rng_for(1, RngStream::Rrc);
        let mut t = from_ms * 2; // half-ms steps
        while t < to_ms * 2 {
            m.step(SimTime::from_micros(t * 500), DT, &mut rng);
            t += 1;
        }
    }

    #[test]
    fn stays_connected_without_triggers() {
        let mut m = RrcMachine::new(RrcConfig::default(), 17_017);
        run_until(&mut m, 0, 5_000);
        assert!(m.is_connected());
        assert_eq!(m.rnti(), 17_017);
        assert!(m.drain_transitions().is_empty());
    }

    #[test]
    fn scripted_release_cycles_and_changes_rnti() {
        let mut m = RrcMachine::new(RrcConfig::default(), 17_017);
        m.script_release(SimTime::from_millis(100));
        run_until(&mut m, 0, 1_000);
        assert!(m.is_connected());
        assert_ne!(m.rnti(), 17_017, "RNTI must change across re-establishment");
        let tr = m.drain_transitions();
        assert_eq!(tr.len(), 3); // Idle, Connecting, Connected
        assert_eq!(tr[0].state, RrcState::Idle);
        assert_eq!(tr[2].state, RrcState::Connected);
        // Total interruption ≈ idle + connecting ≈ 300 ms.
        let outage = tr[2].at.saturating_since(tr[0].at);
        assert!((250..=350).contains(&outage.as_millis()), "outage {outage}");
    }

    #[test]
    fn not_connected_during_outage() {
        let mut m = RrcMachine::new(RrcConfig::default(), 1);
        m.script_release(SimTime::from_millis(10));
        run_until(&mut m, 0, 100);
        assert!(!m.is_connected(), "should still be in outage at 100 ms");
    }

    #[test]
    fn random_releases_happen_at_configured_rate() {
        let cfg = RrcConfig {
            random_release_every: Some(SimDuration::from_secs(20)),
            ..Default::default()
        };
        let mut m = RrcMachine::new(cfg, 1);
        run_until(&mut m, 0, 120_000); // 2 minutes
        let releases = m
            .drain_transitions()
            .iter()
            .filter(|t| t.state == RrcState::Idle)
            .count();
        // Expect ~6 releases in 120 s at 1/20 s; allow wide slack.
        assert!((2..=14).contains(&releases), "releases {releases}");
    }
}
