//! 5G NR frame structure: slot timing and TDD/FDD slot patterns.
//!
//! TDD shares time slots between downlink and uplink; FDD uses separate
//! bands so every slot serves both directions (paper §5.2.1, Fig. 15).
//! Uplink latency depends directly on this structure: in TDD a UE must wait
//! for the next U slot, in FDD only for the grant pipeline.

use simcore::{SimDuration, SimTime};
use telemetry::{Direction, Duplexing};

/// Role of one slot in the TDD pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// Downlink-only slot.
    Downlink,
    /// Uplink-only slot.
    Uplink,
    /// Special slot (DL symbols + guard + few UL symbols); treated as
    /// downlink-capable here.
    Special,
}

/// Slot-level frame structure of a cell.
#[derive(Debug, Clone)]
pub struct FrameStructure {
    /// FDD or TDD.
    pub duplexing: Duplexing,
    /// Slot duration (1 ms at 15 kHz SCS, 0.5 ms at 30 kHz).
    pub slot_duration: SimDuration,
    /// TDD pattern, e.g. "DDDSU"; ignored for FDD.
    pattern: Vec<SlotKind>,
}

impl FrameStructure {
    /// FDD structure with the given slot duration.
    pub fn fdd(slot_duration: SimDuration) -> Self {
        FrameStructure {
            duplexing: Duplexing::Fdd,
            slot_duration,
            pattern: Vec::new(),
        }
    }

    /// TDD structure from a pattern string of `D`/`S`/`U` characters.
    ///
    /// # Panics
    /// On an empty pattern or unknown characters.
    pub fn tdd(slot_duration: SimDuration, pattern: &str) -> Self {
        let pattern: Vec<SlotKind> = pattern
            .chars()
            .map(|c| match c {
                'D' => SlotKind::Downlink,
                'U' => SlotKind::Uplink,
                'S' => SlotKind::Special,
                other => panic!("unknown TDD pattern character {other:?}"),
            })
            .collect();
        assert!(!pattern.is_empty(), "empty TDD pattern");
        assert!(
            pattern.contains(&SlotKind::Uplink),
            "TDD pattern must contain at least one U slot"
        );
        FrameStructure {
            duplexing: Duplexing::Tdd,
            slot_duration,
            pattern,
        }
    }

    /// Start time of slot `idx`.
    pub fn slot_start(&self, idx: u64) -> SimTime {
        SimTime::ZERO + self.slot_duration * idx
    }

    /// Slot index containing time `t`.
    pub fn slot_at(&self, t: SimTime) -> u64 {
        t.saturating_since(SimTime::ZERO) / self.slot_duration
    }

    /// Whether slot `idx` can carry traffic in `dir`.
    pub fn serves(&self, idx: u64, dir: Direction) -> bool {
        match self.duplexing {
            Duplexing::Fdd => true,
            Duplexing::Tdd => {
                let kind = self.pattern[(idx % self.pattern.len() as u64) as usize];
                match dir {
                    Direction::Uplink => kind == SlotKind::Uplink,
                    Direction::Downlink => kind == SlotKind::Downlink || kind == SlotKind::Special,
                }
            }
        }
    }

    /// First slot index ≥ `from` that serves `dir`.
    pub fn next_serving_slot(&self, from: u64, dir: Direction) -> u64 {
        match self.duplexing {
            Duplexing::Fdd => from,
            Duplexing::Tdd => {
                let len = self.pattern.len() as u64;
                (from..from + len)
                    .find(|&s| self.serves(s, dir))
                    .expect("pattern contains both D and U slots")
            }
        }
    }

    /// Slots per second (for rate conversions).
    pub fn slots_per_second(&self) -> f64 {
        1e6 / self.slot_duration.as_micros() as f64
    }

    /// Fraction of slots serving `dir` (1.0 for FDD).
    pub fn duty_cycle(&self, dir: Direction) -> f64 {
        match self.duplexing {
            Duplexing::Fdd => 1.0,
            Duplexing::Tdd => {
                let n = self.pattern.len() as f64;
                let k = (0..self.pattern.len() as u64)
                    .filter(|&s| self.serves(s, dir))
                    .count();
                k as f64 / n
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fdd_serves_everything() {
        let f = FrameStructure::fdd(SimDuration::from_millis(1));
        assert!(f.serves(0, Direction::Uplink));
        assert!(f.serves(0, Direction::Downlink));
        assert_eq!(f.next_serving_slot(7, Direction::Uplink), 7);
        assert_eq!(f.duty_cycle(Direction::Uplink), 1.0);
        assert_eq!(f.slots_per_second(), 1000.0);
    }

    #[test]
    fn tdd_dddsu_pattern() {
        let f = FrameStructure::tdd(SimDuration::from_micros(500), "DDDSU");
        // Slots 0,1,2 D; 3 S; 4 U; repeating.
        assert!(f.serves(0, Direction::Downlink));
        assert!(!f.serves(0, Direction::Uplink));
        assert!(f.serves(3, Direction::Downlink)); // special counts as DL
        assert!(f.serves(4, Direction::Uplink));
        assert!(f.serves(9, Direction::Uplink));
        assert_eq!(f.next_serving_slot(0, Direction::Uplink), 4);
        assert_eq!(f.next_serving_slot(5, Direction::Uplink), 9);
        assert_eq!(f.next_serving_slot(4, Direction::Uplink), 4);
        assert_eq!(f.duty_cycle(Direction::Uplink), 0.2);
        assert_eq!(f.slots_per_second(), 2000.0);
    }

    #[test]
    fn slot_timing() {
        let f = FrameStructure::tdd(SimDuration::from_micros(500), "DDDSU");
        assert_eq!(f.slot_start(4), SimTime::from_millis(2));
        assert_eq!(f.slot_at(SimTime::from_micros(2300)), 4);
        assert_eq!(f.slot_at(SimTime::ZERO), 0);
    }

    #[test]
    #[should_panic(expected = "must contain at least one U slot")]
    fn all_dl_pattern_rejected() {
        let _ = FrameStructure::tdd(SimDuration::from_micros(500), "DDDD");
    }
}
