//! The cell frontend: composes channel, MAC, RLC, RRC and cross traffic into
//! a single pollable simulator with a packet-in / packet-out interface plus
//! telemetry taps (DCI stream, gNB log).
//!
//! The session engine drives a [`CellSim`] smoltcp-style: `enqueue` packets
//! as they reach the RAN edge (UE modem for UL, gNB for DL), call
//! [`CellSim::poll`] to advance slot processing up to the current instant,
//! and drain deliveries/telemetry.
//!
//! One `CellSim` carries N *experiment* UEs (diagnosed RTC endpoints with
//! full per-packet RLC/HARQ state) plus M *scripted traffic* UEs whose
//! state lives in the flat [`CellUeTable`] arrays — all contending for the
//! same PRB budget. Each slot runs one arrivals pass and one link-adaptation
//! sweep over the table, then a rotated round-robin allocation pass across
//! every UE; the scalar cross-traffic aggregate remains as a best-effort
//! background load underneath. A cell with one experiment UE and no
//! scripted UEs is byte-identical to the pre-table simulator (pinned by
//! `tests/determinism.rs`).

use domino_obs::RanCellObs;
use rand::rngs::StdRng;
use simcore::{rng_for, RngStream, SimDuration, SimTime};
use telemetry::{CellClass, DciRecord, Direction, GnbEvent, GnbLogRecord, RrcState};

use crate::channel::{Channel, ChannelConfig, SinrOverride};
use crate::crosstraffic::{CrossTraffic, CrossTrafficConfig, CrossTrafficOverride};
use crate::frame::FrameStructure;
use crate::mac::{self, HarqOverride, LinkDir, MacConfig, SlotOutputs};
use crate::phy;
use crate::rlc::Sdu;
use crate::rrc::{RrcConfig, RrcMachine};
use crate::ue::{CellUeTable, TrafficUeConfig, UE_NONE};

/// Full configuration of a simulated 5G cell.
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// Human-readable name (Table 1 row).
    pub name: String,
    /// Commercial carrier or private CBRS.
    pub class: CellClass,
    /// Carrier frequency in MHz (metadata only).
    pub carrier_mhz: f64,
    /// Bandwidth in MHz (metadata only; capacity comes from `mac.n_prbs`).
    pub bandwidth_mhz: f64,
    /// Slot/duplexing structure.
    pub frame: FrameStructure,
    /// MAC/scheduler parameters.
    pub mac: MacConfig,
    /// Uplink channel process.
    pub ul_channel: ChannelConfig,
    /// Downlink channel process.
    pub dl_channel: ChannelConfig,
    /// Uplink cross-traffic process.
    pub ul_cross: CrossTrafficConfig,
    /// Downlink cross-traffic process.
    pub dl_cross: CrossTrafficConfig,
    /// RRC behaviour.
    pub rrc: RrcConfig,
    /// Whether gNB-internal logs (RLC/RRC events, buffer samples) are
    /// emitted — true only for private cells with log access.
    pub has_gnb_log: bool,
    /// Interval between RLC buffer samples in the gNB log.
    pub gnb_buffer_sample_every: SimDuration,
    /// Scripted traffic UEs sharing the cell with the experiment UEs.
    /// Their per-UE state lives in the SoA [`CellUeTable`]; empty means a
    /// private cell exactly as before this field existed.
    pub traffic_ues: Vec<TrafficUeConfig>,
}

/// A packet delivered through the RAN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Caller-assigned packet id (from [`CellSim::enqueue`]).
    pub id: u64,
    /// Direction it traversed.
    pub direction: Direction,
    /// Time the packet left the RAN (in-order RLC release).
    pub delivered_at: SimTime,
}

/// One diagnosed (experiment) UE: full per-packet RLC state, its own RRC
/// machine and RNG streams, and per-UE telemetry outboxes.
struct ExperimentUe {
    ul: LinkDir,
    dl: LinkDir,
    rrc: RrcMachine,
    rng_ch_ul: StdRng,
    rng_ch_dl: StdRng,
    rng_harq: StdRng,
    rng_rrc: StdRng,
    next_buffer_sample_at: SimTime,
    deliveries: Vec<Delivery>,
    gnb_log: Vec<GnbLogRecord>,
}

/// First `RngStream::Custom` id used for extra experiment UEs' streams. UE 0
/// keeps the four legacy streams, so adding UEs never perturbs existing
/// draws (the determinism contract for N=1 cells).
const EXTRA_UE_STREAM_BASE: u16 = 2000;
/// Streams consumed per extra experiment UE (channel ×2, HARQ, RRC).
const EXTRA_UE_STREAMS: u16 = 4;

impl ExperimentUe {
    fn new(cfg: &CellConfig, seed: u64, index: u32) -> Self {
        let streams = if index == 0 {
            [
                RngStream::ChannelUl,
                RngStream::ChannelDl,
                RngStream::HarqDecode,
                RngStream::Rrc,
            ]
        } else {
            let base = EXTRA_UE_STREAM_BASE + (index as u16 - 1) * EXTRA_UE_STREAMS;
            [
                RngStream::Custom(base),
                RngStream::Custom(base + 1),
                RngStream::Custom(base + 2),
                RngStream::Custom(base + 3),
            ]
        };
        ExperimentUe {
            ul: LinkDir::new(
                Direction::Uplink,
                Channel::new(cfg.ul_channel.clone()),
                &cfg.mac,
            ),
            dl: LinkDir::new(
                Direction::Downlink,
                Channel::new(cfg.dl_channel.clone()),
                &cfg.mac,
            ),
            rrc: RrcMachine::new(cfg.rrc.clone(), 17_435 + 977 * index),
            rng_ch_ul: rng_for(seed, streams[0]),
            rng_ch_dl: rng_for(seed, streams[1]),
            rng_harq: rng_for(seed, streams[2]),
            rng_rrc: rng_for(seed, streams[3]),
            next_buffer_sample_at: SimTime::ZERO,
            deliveries: Vec::new(),
            gnb_log: Vec::new(),
        }
    }

    fn link(&self, dir: Direction) -> &LinkDir {
        match dir {
            Direction::Uplink => &self.ul,
            Direction::Downlink => &self.dl,
        }
    }

    fn link_mut(&mut self, dir: Direction) -> &mut LinkDir {
        match dir {
            Direction::Uplink => &mut self.ul,
            Direction::Downlink => &mut self.dl,
        }
    }
}

/// A slot-accurate simulation of one 5G cell carrying N experiment UEs, M
/// scripted traffic UEs (SoA table), and aggregate cross traffic.
pub struct CellSim {
    cfg: CellConfig,
    seed: u64,
    ues: Vec<ExperimentUe>,
    table: CellUeTable,
    cross_ul: CrossTraffic,
    cross_dl: CrossTraffic,
    next_slot: u64,
    rng_cross_ul: StdRng,
    rng_cross_dl: StdRng,
    /// Shared DCI log of the whole cell, with a parallel owner tag per
    /// record: the experiment-UE index, or [`UE_NONE`] for scripted traffic
    /// UEs and the cross-traffic aggregate. `is_target_ue` is stamped per
    /// viewer at drain time.
    dci_log: Vec<DciRecord>,
    dci_tag: Vec<u32>,
    /// Packets handed over but not yet visible to RLC: `poll` may process
    /// slots that started before the hand-over instant, and a packet must
    /// never ride a transport block older than itself. The `u32` after the
    /// time is the experiment-UE index.
    staged: Vec<(SimTime, u32, Direction, u64, u32)>,
    /// Per-slot output scratch, cleared and reused every slot × UE ×
    /// direction so the slot loop performs no steady-state allocation.
    slot_out: SlotOutputs,
    /// Observability accumulator (PRB utilization, HARQ retx, RLC queue
    /// depths), installed by the session layer when a recorder is on.
    /// `None` costs one predicted branch per direction pass; the
    /// accumulator only *reads* scheduler outputs, so enabling it never
    /// changes simulation behaviour.
    obs: Option<Box<RanCellObs>>,
}

impl CellSim {
    /// Creates a cell simulator with all randomness derived from `seed`,
    /// carrying one experiment UE plus the configured scripted traffic UEs.
    pub fn new(cfg: CellConfig, seed: u64) -> Self {
        Self::new_in(cfg, seed, CellUeTable::new())
    }

    /// Like [`CellSim::new`], but leasing `table` (typically from a session
    /// arena free list) as the scripted-UE storage instead of allocating a
    /// fresh one. The table is reconfigured from scratch, so warm and fresh
    /// tables produce byte-identical cells.
    pub fn new_in(cfg: CellConfig, seed: u64, mut table: CellUeTable) -> Self {
        table.configure(&cfg.traffic_ues, seed);
        let cross_ul = CrossTraffic::new(cfg.ul_cross.clone());
        let cross_dl = CrossTraffic::new(cfg.dl_cross.clone());
        let ue0 = ExperimentUe::new(&cfg, seed, 0);
        CellSim {
            seed,
            ues: vec![ue0],
            table,
            cross_ul,
            cross_dl,
            next_slot: 0,
            rng_cross_ul: rng_for(seed, RngStream::CrossTrafficUl),
            rng_cross_dl: rng_for(seed, RngStream::CrossTrafficDl),
            dci_log: Vec::new(),
            dci_tag: Vec::new(),
            staged: Vec::new(),
            slot_out: SlotOutputs::default(),
            obs: None,
            cfg,
        }
    }

    /// Installs (or removes) the per-slot observability accumulator.
    pub fn set_obs(&mut self, obs: Option<Box<RanCellObs>>) {
        self.obs = obs;
    }

    /// Takes the accumulator so a worker recorder can absorb it.
    pub fn take_obs(&mut self) -> Option<Box<RanCellObs>> {
        self.obs.take()
    }

    /// Adds another experiment UE to the cell and returns its index. Each
    /// extra UE draws from its own `RngStream::Custom` block, so UE 0's
    /// streams — and therefore every existing single-UE trace — are
    /// unchanged.
    ///
    /// # Panics
    /// If slot processing has already started (UEs must camp before t=0).
    pub fn add_experiment_ue(&mut self) -> u32 {
        assert_eq!(
            self.next_slot, 0,
            "experiment UEs must be added before the first poll"
        );
        let index = self.ues.len() as u32;
        let ue = ExperimentUe::new(&self.cfg, self.seed, index);
        self.ues.push(ue);
        index
    }

    /// Reclaims the scripted-UE table for an arena free list. The cell must
    /// not be polled afterwards.
    pub fn take_ue_table(&mut self) -> CellUeTable {
        let mut t = std::mem::take(&mut self.table);
        t.clear();
        t
    }

    /// The cell's configuration.
    pub fn config(&self) -> &CellConfig {
        &self.cfg
    }

    /// Number of experiment (diagnosed) UEs.
    pub fn n_experiment_ues(&self) -> usize {
        self.ues.len()
    }

    /// Number of scripted traffic UEs in the SoA table.
    pub fn n_traffic_ues(&self) -> usize {
        self.table.len()
    }

    /// Current RNTI of experiment UE 0.
    pub fn rnti(&self) -> u32 {
        self.ues[0].rrc.rnti()
    }

    /// Current RNTI of experiment UE `ue`.
    pub fn rnti_of(&self, ue: u32) -> u32 {
        self.ues[ue as usize].rrc.rnti()
    }

    /// Current RRC state of experiment UE 0.
    pub fn rrc_state(&self) -> RrcState {
        self.ues[0].rrc.state()
    }

    /// RLC transmit-buffer occupancy of experiment UE 0 (bytes).
    pub fn rlc_buffer_bytes(&self, dir: Direction) -> u64 {
        self.ues[0].link(dir).rlc_tx.buffer_bytes()
    }

    /// Most recent SINR sample of experiment UE 0 (dB).
    pub fn last_sinr_db(&self, dir: Direction) -> f64 {
        self.ues[0].link(dir).last_sinr_db
    }

    /// Most recent MCS used for a new transmission of experiment UE 0.
    pub fn last_mcs(&self, dir: Direction) -> u8 {
        self.ues[0].link(dir).last_mcs
    }

    /// Instantaneous PHY rate estimate for a direction (bits/s), assuming
    /// experiment UE 0 got the whole carrier at the current MCS — used for
    /// rate-gap telemetry in the figure harness.
    pub fn phy_rate_estimate_bps(&self, dir: Direction) -> f64 {
        let link = self.ues[0].link(dir);
        let full = phy::phy_rate_bps(
            phy::select_mcs(link.last_sinr_db, 0.0, 0.0, phy::MAX_MCS),
            self.cfg.mac.n_prbs,
            self.cfg.frame.slot_duration.as_micros(),
        );
        full * self.cfg.frame.duty_cycle(dir)
    }

    /// Hands a packet for experiment UE 0 to the RAN edge (UE modem for UL,
    /// gNB for DL) at time `now`.
    ///
    /// The packet is identified by `id`; its delivery shows up in
    /// [`CellSim::drain_deliveries`] once RLC releases it in order on the
    /// far side. It becomes visible to the scheduler only from the first
    /// slot starting at or after `now` (causality).
    pub fn enqueue(&mut self, now: SimTime, dir: Direction, id: u64, size_bytes: u32) {
        self.enqueue_for(0, now, dir, id, size_bytes);
    }

    /// [`CellSim::enqueue`] addressed to experiment UE `ue`.
    pub fn enqueue_for(&mut self, ue: u32, now: SimTime, dir: Direction, id: u64, size_bytes: u32) {
        debug_assert!((ue as usize) < self.ues.len());
        self.staged.push((now, ue, dir, id, size_bytes));
    }

    /// Start time of the next unprocessed slot.
    pub fn next_slot_time(&self) -> SimTime {
        self.cfg.frame.slot_start(self.next_slot)
    }

    /// Advances slot processing through all slots starting at or before
    /// `now`.
    pub fn poll(&mut self, now: SimTime) {
        while self.cfg.frame.slot_start(self.next_slot) <= now {
            let slot = self.next_slot;
            self.next_slot += 1;
            self.process_slot(slot);
        }
    }

    fn process_slot(&mut self, slot: u64) {
        let now = self.cfg.frame.slot_start(slot);
        let dt = self.cfg.frame.slot_duration;

        // Admit staged packets that arrived before this slot started.
        let mut i = 0;
        while i < self.staged.len() {
            if self.staged[i].0 <= now {
                let (_, ue, dir, id, size) = self.staged.remove(i);
                self.ues[ue as usize].link_mut(dir).rlc_tx.enqueue(Sdu {
                    id,
                    size_bytes: size,
                });
            } else {
                i += 1;
            }
        }

        // RRC first: transitions gate everything else, per experiment UE.
        for ue in self.ues.iter_mut() {
            ue.rrc.step(now, dt, &mut ue.rng_rrc);
            for tr in ue.rrc.drain_transitions() {
                if tr.state != RrcState::Connected {
                    // Entering an outage: abandon in-flight HARQ, keep data.
                    if tr.state == RrcState::Idle {
                        ue.ul.reset_for_rrc(tr.at);
                        ue.dl.reset_for_rrc(tr.at);
                    }
                }
                if self.cfg.has_gnb_log {
                    ue.gnb_log.push(GnbLogRecord {
                        ts: tr.at,
                        event: GnbEvent::RrcTransition {
                            state: tr.state,
                            rnti: tr.rnti,
                        },
                    });
                }
            }
        }
        let any_connected = self.ues.iter().any(|u| u.rrc.is_connected());
        if !any_connected && self.table.is_empty() {
            return; // No PHY-layer transmissions during the outage (Fig. 19).
        }

        if let Some(o) = &mut self.obs {
            o.on_slot();
            // Per-UE RLC queue-depth samples, every 16th slot: experiment
            // UEs' RLC tx buffers plus every scripted UE's table column.
            if slot.is_multiple_of(16) {
                for ue in &self.ues {
                    o.sample_queue(ue.ul.rlc_tx.buffer_bytes());
                    o.sample_queue(ue.dl.rlc_tx.buffer_bytes());
                }
                for u in 0..self.table.len() {
                    o.sample_queue(self.table.queue_bytes(u, Direction::Uplink));
                    o.sample_queue(self.table.queue_bytes(u, Direction::Downlink));
                }
            }
        }

        // Uplink control plane: SR check and grant issuance (PDCCH slots).
        let dl_serving = self.cfg.frame.serves(slot, Direction::Downlink);
        for ue in self.ues.iter_mut() {
            if !ue.rrc.is_connected() {
                continue;
            }
            mac::check_sr(&mut ue.ul, now, &self.cfg.mac);
            if dl_serving {
                mac::issue_ul_grants(&mut ue.ul, &self.cfg.frame, &self.cfg.mac, slot, now);
            }
        }

        // Scripted-UE pass 1: accrue every traffic UE's offered load.
        if !self.table.is_empty() {
            self.table.pass_arrivals(now, dt);
        }

        // Data plane, per serving direction.
        if dl_serving {
            self.direction_pass(slot, now, dt, Direction::Downlink);
        }
        if self.cfg.frame.serves(slot, Direction::Uplink) {
            self.direction_pass(slot, now, dt, Direction::Uplink);
        }

        // Periodic RLC buffer samples for the gNB log (private cells).
        if self.cfg.has_gnb_log {
            let every = self.cfg.gnb_buffer_sample_every;
            for ue in self.ues.iter_mut() {
                if !ue.rrc.is_connected() || now < ue.next_buffer_sample_at {
                    continue;
                }
                ue.gnb_log.push(GnbLogRecord {
                    ts: now,
                    event: GnbEvent::RlcBuffer {
                        direction: Direction::Uplink,
                        bytes: ue.ul.rlc_tx.buffer_bytes(),
                    },
                });
                ue.gnb_log.push(GnbLogRecord {
                    ts: now,
                    event: GnbEvent::RlcBuffer {
                        direction: Direction::Downlink,
                        bytes: ue.dl.rlc_tx.buffer_bytes(),
                    },
                });
                ue.next_buffer_sample_at = now + every;
            }
        }
    }

    /// One direction's data plane for one slot: cross-traffic demand, the
    /// scripted-UE link-adaptation sweep, then a rotated round-robin
    /// allocation pass over every UE contending for the carrier.
    fn direction_pass(&mut self, slot: u64, now: SimTime, dt: SimDuration, dir: Direction) {
        let (cross, rng_cross) = match dir {
            Direction::Uplink => (&mut self.cross_ul, &mut self.rng_cross_ul),
            Direction::Downlink => (&mut self.cross_dl, &mut self.rng_cross_dl),
        };
        let demand = cross.demand(now, dt, rng_cross);
        let total = self.cfg.mac.n_prbs as u32;
        let cross_prbs = ((demand.prb_fraction * total as f64).round() as u32).min(total);
        let dci_before = self.dci_log.len();

        // Scripted-UE pass 2: one SINR + CQI→MCS sweep over the table.
        if !self.table.is_empty() {
            let ch = match dir {
                Direction::Uplink => &self.cfg.ul_channel,
                Direction::Downlink => &self.cfg.dl_channel,
            };
            self.table.pass_link_adaptation(
                now,
                dir,
                ch.base_sinr_db,
                ch.shadow_sigma_db,
                &self.cfg.mac,
            );
        }

        // Pass 3: rotated round-robin grant allocation over all UEs. The
        // rotation start advances every slot so no UE is structurally
        // favoured; `hard_used` carries the PRBs already granted this slot.
        let n_exp = self.ues.len();
        let parts = n_exp + self.table.len();
        let start = (slot % parts as u64) as usize;
        let mut hard_used = 0u32;
        for k in 0..parts {
            let p = (start + k) % parts;
            if p < n_exp {
                let ue = &mut self.ues[p];
                if !ue.rrc.is_connected() {
                    continue;
                }
                let rnti = ue.rrc.rnti();
                let (link, rng_ch) = match dir {
                    Direction::Uplink => (&mut ue.ul, &mut ue.rng_ch_ul),
                    Direction::Downlink => (&mut ue.dl, &mut ue.rng_ch_dl),
                };
                self.slot_out.clear();
                hard_used += mac::process_slot(
                    link,
                    &self.cfg.frame,
                    &self.cfg.mac,
                    slot,
                    rnti,
                    hard_used,
                    cross_prbs,
                    rng_ch,
                    &mut ue.rng_harq,
                    &mut self.slot_out,
                );
                self.collect_for(p, dir);
            } else {
                hard_used += self.table.allocate(
                    p - n_exp,
                    dir,
                    slot,
                    &self.cfg.frame,
                    &self.cfg.mac,
                    hard_used,
                    cross_prbs,
                    &mut self.dci_log,
                );
                self.dci_tag.resize(self.dci_log.len(), UE_NONE);
            }
        }

        if let Some(o) = &mut self.obs {
            o.on_direction_pass((hard_used + cross_prbs).min(total), total);
            let retx = self.dci_log[dci_before..]
                .iter()
                .filter(|d| d.harq_retx_idx > 0)
                .count();
            o.on_harq_retx(retx as u64);
        }

        self.emit_cross_dci(now, dir, demand.prb_fraction, demand.rnti);
    }

    /// Moves the reused `slot_out` scratch into the per-UE and cell logs.
    fn collect_for(&mut self, ue: usize, dir: Direction) {
        let u = &mut self.ues[ue];
        for d in self.slot_out.deliveries.drain(..) {
            u.deliveries.push(Delivery {
                id: d.sdu_id,
                direction: dir,
                delivered_at: d.released_at,
            });
        }
        self.dci_log.append(&mut self.slot_out.dci);
        self.dci_tag.resize(self.dci_log.len(), ue as u32);
        if self.cfg.has_gnb_log {
            for (at, sn) in self.slot_out.rlc_retx.drain(..) {
                u.gnb_log.push(GnbLogRecord {
                    ts: at,
                    event: GnbEvent::RlcRetx { direction: dir, sn },
                });
            }
        }
    }

    fn emit_cross_dci(&mut self, now: SimTime, dir: Direction, fraction: f64, rnti: u32) {
        if fraction <= 0.0 {
            return;
        }
        let n_prbs = ((self.cfg.mac.n_prbs as f64 * fraction).round() as u16).max(1);
        // Cross traffic runs at a nominal mid-range MCS; its exact rate is
        // irrelevant, only its PRB footprint matters to the detector.
        let mcs = 16;
        self.dci_log.push(DciRecord {
            ts: now,
            rnti,
            direction: dir,
            is_target_ue: false,
            n_prbs,
            mcs,
            tbs_bits: phy::tbs_bits(mcs, n_prbs),
            harq_id: 0,
            harq_retx_idx: 0,
            decoded_ok: true,
            proactive: false,
            used_bits: phy::tbs_bits(mcs, n_prbs),
        });
        self.dci_tag.push(UE_NONE);
    }

    /// Drains packets delivered to experiment UE 0 since the last call.
    pub fn drain_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.ues[0].deliveries)
    }

    /// Drains UE 0's deliveries into `out`, keeping both buffers' capacity —
    /// the allocation-free variant for callers that poll every tick.
    pub fn drain_deliveries_into(&mut self, out: &mut Vec<Delivery>) {
        out.append(&mut self.ues[0].deliveries);
    }

    /// Drains experiment UE `ue`'s deliveries into `out`.
    pub fn drain_deliveries_for_into(&mut self, ue: u32, out: &mut Vec<Delivery>) {
        out.append(&mut self.ues[ue as usize].deliveries);
    }

    /// Drains DCI records emitted since the last call, from experiment
    /// UE 0's viewpoint (`is_target_ue` = "is mine").
    pub fn drain_dci(&mut self) -> Vec<DciRecord> {
        let mut out = Vec::with_capacity(self.dci_log.len());
        self.drain_dci_for_into(0, &mut out);
        out
    }

    /// Drains DCI records into `out` from UE 0's viewpoint, keeping both the
    /// internal log's and `out`'s capacity — the allocation-free variant for
    /// callers that poll every tick (the live-tapped session engine).
    pub fn drain_dci_into(&mut self, out: &mut Vec<DciRecord>) {
        self.drain_dci_for_into(0, out);
    }

    /// Drains DCI records into `out` from experiment UE `ue`'s viewpoint:
    /// the whole cell's control channel with `is_target_ue` true exactly on
    /// `ue`'s own records — what a sniffer camping on that UE would decode.
    pub fn drain_dci_for_into(&mut self, ue: u32, out: &mut Vec<DciRecord>) {
        for (rec, &tag) in self.dci_log.iter().zip(&self.dci_tag) {
            let mut r = rec.clone();
            r.is_target_ue = tag == ue;
            out.push(r);
        }
        self.dci_log.clear();
        self.dci_tag.clear();
    }

    /// Drains DCI records with their owner tags (the experiment-UE index,
    /// or [`UE_NONE`]) — for drivers that fan one cell's control channel out
    /// to several diagnosed sessions.
    pub fn drain_dci_tagged_into(&mut self, out: &mut Vec<(u32, DciRecord)>) {
        for (rec, &tag) in self.dci_log.iter().zip(&self.dci_tag) {
            out.push((tag, rec.clone()));
        }
        self.dci_log.clear();
        self.dci_tag.clear();
    }

    /// Drains gNB log records for experiment UE 0 emitted since the last
    /// call (always empty for commercial cells).
    pub fn drain_gnb(&mut self) -> Vec<GnbLogRecord> {
        std::mem::take(&mut self.ues[0].gnb_log)
    }

    /// Drains UE 0's gNB log records into `out` (see
    /// [`Self::drain_dci_into`]).
    pub fn drain_gnb_into(&mut self, out: &mut Vec<GnbLogRecord>) {
        out.append(&mut self.ues[0].gnb_log);
    }

    /// Drains experiment UE `ue`'s gNB log records into `out`.
    pub fn drain_gnb_for_into(&mut self, ue: u32, out: &mut Vec<GnbLogRecord>) {
        out.append(&mut self.ues[ue as usize].gnb_log);
    }

    // ---- Scripted scenario hooks (figure-regeneration harness) ----
    // All hooks address experiment UE 0, the original single diagnosed UE.

    /// Forces the SINR of `dir` to `sinr_db` during `[from, to)`.
    pub fn script_sinr(&mut self, dir: Direction, from: SimTime, to: SimTime, sinr_db: f64) {
        self.ues[0]
            .link_mut(dir)
            .channel
            .add_override(SinrOverride { from, to, sinr_db });
    }

    /// Forces cross traffic in `dir` to `prb_fraction` during `[from, to)`.
    pub fn script_cross_traffic(
        &mut self,
        dir: Direction,
        from: SimTime,
        to: SimTime,
        prb_fraction: f64,
    ) {
        let ov = CrossTrafficOverride {
            from,
            to,
            prb_fraction,
        };
        match dir {
            Direction::Uplink => self.cross_ul.add_override(ov),
            Direction::Downlink => self.cross_dl.add_override(ov),
        }
    }

    /// Forces HARQ attempts with index < `fail_attempts` to fail in `dir`
    /// during `[from, to)`.
    pub fn script_harq_failures(
        &mut self,
        dir: Direction,
        from: SimTime,
        to: SimTime,
        fail_attempts: u8,
    ) {
        self.ues[0].link_mut(dir).add_harq_override(HarqOverride {
            from,
            to,
            fail_attempts,
        });
    }

    /// Forces an RRC release at `at`.
    pub fn script_rrc_release(&mut self, at: SimTime) {
        self.ues[0].rrc.script_release(at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crosstraffic::CrossTrafficConfig;
    use crate::frame::FrameStructure;
    use crate::mac::MacConfig;
    use crate::rrc::RrcConfig;
    use crate::ue::TRAFFIC_RNTI_BASE;

    fn quiet_cell() -> CellConfig {
        CellConfig {
            name: "test cell".to_string(),
            class: CellClass::Private,
            carrier_mhz: 3500.0,
            bandwidth_mhz: 20.0,
            frame: FrameStructure::tdd(SimDuration::from_micros(500), "DDDSU"),
            mac: MacConfig {
                n_prbs: 51,
                ..Default::default()
            },
            ul_channel: ChannelConfig {
                base_sinr_db: 25.0,
                shadow_sigma_db: 0.2,
                ..Default::default()
            },
            dl_channel: ChannelConfig {
                base_sinr_db: 25.0,
                shadow_sigma_db: 0.2,
                ..Default::default()
            },
            ul_cross: CrossTrafficConfig::quiet(),
            dl_cross: CrossTrafficConfig::quiet(),
            rrc: RrcConfig::default(),
            has_gnb_log: true,
            gnb_buffer_sample_every: SimDuration::from_millis(5),
            traffic_ues: vec![],
        }
    }

    fn run_until(cell: &mut CellSim, ms: u64) -> Vec<Delivery> {
        cell.poll(SimTime::from_millis(ms));
        cell.drain_deliveries()
    }

    #[test]
    fn dl_packet_traverses_cell() {
        let mut cell = CellSim::new(quiet_cell(), 1);
        cell.enqueue(SimTime::ZERO, Direction::Downlink, 7, 1200);
        let out = run_until(&mut cell, 50);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 7);
        assert_eq!(out[0].direction, Direction::Downlink);
        // DL needs no grant: one or two slots plus decode latency.
        assert!(
            out[0].delivered_at.as_millis() <= 5,
            "{:?}",
            out[0].delivered_at
        );
    }

    #[test]
    fn ul_packet_pays_scheduling_delay() {
        let mut cell = CellSim::new(quiet_cell(), 2);
        cell.enqueue(SimTime::from_millis(10), Direction::Uplink, 9, 1200);
        let out = run_until(&mut cell, 100);
        assert_eq!(out.len(), 1);
        let delay = out[0]
            .delivered_at
            .saturating_since(SimTime::from_millis(10));
        // SR wait + grant pipeline + U-slot wait: 5–25 ms per the paper.
        assert!(
            (4..=30).contains(&delay.as_millis()),
            "UL scheduling delay {delay}"
        );
    }

    #[test]
    fn deliveries_preserve_per_direction_order() {
        let mut cell = CellSim::new(quiet_cell(), 3);
        for id in 0..50u64 {
            cell.enqueue(SimTime::from_millis(id), Direction::Uplink, id, 900);
            cell.poll(SimTime::from_millis(id));
        }
        let out = run_until(&mut cell, 400);
        assert_eq!(out.len(), 50);
        let ids: Vec<u64> = out.iter().map(|d| d.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "RLC AM must deliver in order");
        // Delivery timestamps are non-decreasing.
        assert!(out
            .windows(2)
            .all(|w| w[0].delivered_at <= w[1].delivered_at));
    }

    #[test]
    fn dci_log_records_target_ue_activity() {
        let mut cell = CellSim::new(quiet_cell(), 4);
        for id in 0..10u64 {
            cell.enqueue(SimTime::from_millis(id * 5), Direction::Downlink, id, 1500);
        }
        cell.poll(SimTime::from_millis(200));
        let dci = cell.drain_dci();
        assert!(dci.iter().any(|d| d.is_target_ue));
        assert!(dci.iter().all(|d| d.rnti != 0));
        // Second drain is empty.
        assert!(cell.drain_dci().is_empty());
    }

    #[test]
    fn gnb_log_gated_by_config() {
        let mut cfg = quiet_cell();
        cfg.has_gnb_log = false;
        let mut cell = CellSim::new(cfg, 5);
        cell.enqueue(SimTime::ZERO, Direction::Uplink, 1, 800);
        cell.poll(SimTime::from_millis(500));
        assert!(
            cell.drain_gnb().is_empty(),
            "commercial-style cell must not leak gNB logs"
        );

        let mut cell = CellSim::new(quiet_cell(), 5);
        cell.enqueue(SimTime::ZERO, Direction::Uplink, 1, 800);
        cell.poll(SimTime::from_millis(500));
        assert!(
            !cell.drain_gnb().is_empty(),
            "private cell emits buffer samples"
        );
    }

    #[test]
    fn scripted_rrc_release_blocks_delivery_during_outage() {
        let mut cell = CellSim::new(quiet_cell(), 6);
        cell.script_rrc_release(SimTime::from_millis(20));
        cell.poll(SimTime::from_millis(30));
        let rnti_before = cell.rnti();
        assert_ne!(cell.rrc_state(), RrcState::Connected);
        // Data enqueued mid-outage waits it out (≈300 ms total interruption).
        cell.enqueue(SimTime::from_millis(30), Direction::Downlink, 42, 500);
        cell.poll(SimTime::from_millis(200));
        assert!(
            cell.drain_deliveries().is_empty(),
            "still in outage at 200 ms"
        );
        cell.poll(SimTime::from_millis(500));
        let out = cell.drain_deliveries();
        assert!(!out.is_empty(), "delivery after re-establishment");
        assert!(
            out[0].delivered_at.as_millis() >= 300,
            "{:?}",
            out[0].delivered_at
        );
        assert_ne!(
            cell.rnti(),
            rnti_before,
            "re-establishment assigns a new RNTI"
        );
    }

    #[test]
    fn no_delivery_before_enqueue_time() {
        let mut cell = CellSim::new(quiet_cell(), 7);
        for id in 0..20u64 {
            let at = SimTime::from_millis(100 + id * 7);
            cell.enqueue(at, Direction::Downlink, id, 700);
            cell.poll(at);
        }
        cell.poll(SimTime::from_secs(2));
        for d in cell.drain_deliveries() {
            let enq = SimTime::from_millis(100 + d.id * 7);
            assert!(d.delivered_at >= enq, "causality violated for {}", d.id);
        }
    }

    #[test]
    fn traffic_ues_emit_dci_and_contend_for_prbs() {
        let mut cfg = quiet_cell();
        cfg.traffic_ues = (0..24)
            .map(|_| TrafficUeConfig::dl_streaming(6_000_000))
            .collect();
        let mut cell = CellSim::new(cfg, 11);
        for id in 0..40u64 {
            cell.enqueue(SimTime::from_millis(id * 5), Direction::Downlink, id, 1200);
        }
        cell.poll(SimTime::from_millis(400));
        let dci = cell.drain_dci();
        let scripted: Vec<_> = dci
            .iter()
            .filter(|d| d.rnti >= TRAFFIC_RNTI_BASE && d.rnti < TRAFFIC_RNTI_BASE + 24)
            .collect();
        assert!(
            scripted.len() > 100,
            "24 streaming UEs should saturate DL slots ({} DCIs)",
            scripted.len()
        );
        assert!(scripted.iter().all(|d| !d.is_target_ue));
        assert!(dci.iter().any(|d| d.is_target_ue), "target still scheduled");
        // Per-slot PRB conservation: all grants in one DL slot fit the carrier.
        use std::collections::BTreeMap;
        let mut per_slot: BTreeMap<u64, u32> = BTreeMap::new();
        for d in dci.iter().filter(|d| d.direction == Direction::Downlink) {
            *per_slot.entry(d.ts.as_micros()).or_default() += d.n_prbs as u32;
        }
        // The scalar cross aggregate is quiet here, so UEs alone must fit.
        assert!(per_slot.values().all(|&p| p <= 51), "PRB overcommit");
    }

    #[test]
    fn second_experiment_ue_keeps_separate_telemetry() {
        let mut cell = CellSim::new(quiet_cell(), 12);
        let ue1 = cell.add_experiment_ue();
        assert_eq!(ue1, 1);
        assert_ne!(cell.rnti_of(0), cell.rnti_of(1));
        cell.enqueue_for(0, SimTime::ZERO, Direction::Downlink, 100, 900);
        cell.enqueue_for(1, SimTime::ZERO, Direction::Downlink, 200, 900);
        cell.poll(SimTime::from_millis(100));
        let mut d0 = Vec::new();
        let mut d1 = Vec::new();
        cell.drain_deliveries_for_into(0, &mut d0);
        cell.drain_deliveries_for_into(1, &mut d1);
        assert_eq!(d0.len(), 1);
        assert_eq!(d1.len(), 1);
        assert_eq!(d0[0].id, 100);
        assert_eq!(d1[0].id, 200);
        // The shared DCI log tags each UE's records; viewed from UE 1, only
        // its own records are "target".
        let mut dci = Vec::new();
        cell.drain_dci_for_into(1, &mut dci);
        let rnti1 = cell.rnti_of(1);
        assert!(dci
            .iter()
            .filter(|d| d.is_target_ue)
            .all(|d| d.rnti == rnti1));
        assert!(dci.iter().any(|d| d.is_target_ue));
        assert!(dci
            .iter()
            .any(|d| !d.is_target_ue && d.rnti == cell.rnti_of(0)));
    }
}
