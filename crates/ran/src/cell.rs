//! The cell frontend: composes channel, MAC, RLC, RRC and cross traffic into
//! a single pollable simulator with a packet-in / packet-out interface plus
//! telemetry taps (DCI stream, gNB log).
//!
//! The session engine drives a [`CellSim`] smoltcp-style: `enqueue` packets
//! as they reach the RAN edge (UE modem for UL, gNB for DL), call
//! [`CellSim::poll`] to advance slot processing up to the current instant,
//! and drain deliveries/telemetry.

use rand::rngs::StdRng;
use simcore::{rng_for, RngStream, SimDuration, SimTime};
use telemetry::{CellClass, DciRecord, Direction, GnbEvent, GnbLogRecord, RrcState};

use crate::channel::{Channel, ChannelConfig, SinrOverride};
use crate::crosstraffic::{CrossTraffic, CrossTrafficConfig, CrossTrafficOverride};
use crate::frame::FrameStructure;
use crate::mac::{self, HarqOverride, LinkDir, MacConfig, SlotOutputs};
use crate::phy;
use crate::rlc::Sdu;
use crate::rrc::{RrcConfig, RrcMachine};

/// Full configuration of a simulated 5G cell.
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// Human-readable name (Table 1 row).
    pub name: String,
    /// Commercial carrier or private CBRS.
    pub class: CellClass,
    /// Carrier frequency in MHz (metadata only).
    pub carrier_mhz: f64,
    /// Bandwidth in MHz (metadata only; capacity comes from `mac.n_prbs`).
    pub bandwidth_mhz: f64,
    /// Slot/duplexing structure.
    pub frame: FrameStructure,
    /// MAC/scheduler parameters.
    pub mac: MacConfig,
    /// Uplink channel process.
    pub ul_channel: ChannelConfig,
    /// Downlink channel process.
    pub dl_channel: ChannelConfig,
    /// Uplink cross-traffic process.
    pub ul_cross: CrossTrafficConfig,
    /// Downlink cross-traffic process.
    pub dl_cross: CrossTrafficConfig,
    /// RRC behaviour.
    pub rrc: RrcConfig,
    /// Whether gNB-internal logs (RLC/RRC events, buffer samples) are
    /// emitted — true only for private cells with log access.
    pub has_gnb_log: bool,
    /// Interval between RLC buffer samples in the gNB log.
    pub gnb_buffer_sample_every: SimDuration,
}

/// A packet delivered through the RAN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Caller-assigned packet id (from [`CellSim::enqueue`]).
    pub id: u64,
    /// Direction it traversed.
    pub direction: Direction,
    /// Time the packet left the RAN (in-order RLC release).
    pub delivered_at: SimTime,
}

/// A slot-accurate simulation of one 5G cell carrying one experiment UE
/// plus aggregate cross traffic.
pub struct CellSim {
    cfg: CellConfig,
    ul: LinkDir,
    dl: LinkDir,
    rrc: RrcMachine,
    cross_ul: CrossTraffic,
    cross_dl: CrossTraffic,
    next_slot: u64,
    rng_ch_ul: StdRng,
    rng_ch_dl: StdRng,
    rng_harq: StdRng,
    rng_cross_ul: StdRng,
    rng_cross_dl: StdRng,
    rng_rrc: StdRng,
    dci_log: Vec<DciRecord>,
    gnb_log: Vec<GnbLogRecord>,
    deliveries: Vec<Delivery>,
    next_buffer_sample_at: SimTime,
    /// Packets handed over but not yet visible to RLC: `poll` may process
    /// slots that started before the hand-over instant, and a packet must
    /// never ride a transport block older than itself.
    staged: Vec<(SimTime, Direction, u64, u32)>,
    /// Per-slot output scratch, cleared and reused every slot × direction so
    /// the slot loop performs no steady-state allocation.
    slot_out: SlotOutputs,
}

impl CellSim {
    /// Creates a cell simulator with all randomness derived from `seed`.
    pub fn new(cfg: CellConfig, seed: u64) -> Self {
        let ul_channel = Channel::new(cfg.ul_channel.clone());
        let dl_channel = Channel::new(cfg.dl_channel.clone());
        let ul = LinkDir::new(Direction::Uplink, ul_channel, &cfg.mac);
        let dl = LinkDir::new(Direction::Downlink, dl_channel, &cfg.mac);
        let rrc = RrcMachine::new(cfg.rrc.clone(), 17_435);
        let cross_ul = CrossTraffic::new(cfg.ul_cross.clone());
        let cross_dl = CrossTraffic::new(cfg.dl_cross.clone());
        CellSim {
            ul,
            dl,
            rrc,
            cross_ul,
            cross_dl,
            next_slot: 0,
            rng_ch_ul: rng_for(seed, RngStream::ChannelUl),
            rng_ch_dl: rng_for(seed, RngStream::ChannelDl),
            rng_harq: rng_for(seed, RngStream::HarqDecode),
            rng_cross_ul: rng_for(seed, RngStream::CrossTrafficUl),
            rng_cross_dl: rng_for(seed, RngStream::CrossTrafficDl),
            rng_rrc: rng_for(seed, RngStream::Rrc),
            dci_log: Vec::new(),
            gnb_log: Vec::new(),
            deliveries: Vec::new(),
            next_buffer_sample_at: SimTime::ZERO,
            staged: Vec::new(),
            slot_out: SlotOutputs::default(),
            cfg,
        }
    }

    /// The cell's configuration.
    pub fn config(&self) -> &CellConfig {
        &self.cfg
    }

    /// Current RNTI of the experiment UE.
    pub fn rnti(&self) -> u32 {
        self.rrc.rnti()
    }

    /// Current RRC state.
    pub fn rrc_state(&self) -> RrcState {
        self.rrc.state()
    }

    /// RLC transmit-buffer occupancy for a direction (bytes).
    pub fn rlc_buffer_bytes(&self, dir: Direction) -> u64 {
        self.link(dir).rlc_tx.buffer_bytes()
    }

    /// Most recent SINR sample for a direction (dB).
    pub fn last_sinr_db(&self, dir: Direction) -> f64 {
        self.link(dir).last_sinr_db
    }

    /// Most recent MCS used for a new transmission in a direction.
    pub fn last_mcs(&self, dir: Direction) -> u8 {
        self.link(dir).last_mcs
    }

    /// Instantaneous PHY rate estimate for a direction (bits/s), assuming
    /// the UE got the whole carrier at the current MCS — used for rate-gap
    /// telemetry in the figure harness.
    pub fn phy_rate_estimate_bps(&self, dir: Direction) -> f64 {
        let link = self.link(dir);
        let full = phy::phy_rate_bps(
            phy::select_mcs(link.last_sinr_db, 0.0, 0.0, phy::MAX_MCS),
            self.cfg.mac.n_prbs,
            self.cfg.frame.slot_duration.as_micros(),
        );
        full * self.cfg.frame.duty_cycle(dir)
    }

    fn link(&self, dir: Direction) -> &LinkDir {
        match dir {
            Direction::Uplink => &self.ul,
            Direction::Downlink => &self.dl,
        }
    }

    fn link_mut(&mut self, dir: Direction) -> &mut LinkDir {
        match dir {
            Direction::Uplink => &mut self.ul,
            Direction::Downlink => &mut self.dl,
        }
    }

    /// Hands a packet to the RAN edge (UE modem for UL, gNB for DL) at
    /// time `now`.
    ///
    /// The packet is identified by `id`; its delivery shows up in
    /// [`CellSim::drain_deliveries`] once RLC releases it in order on the
    /// far side. It becomes visible to the scheduler only from the first
    /// slot starting at or after `now` (causality).
    pub fn enqueue(&mut self, now: SimTime, dir: Direction, id: u64, size_bytes: u32) {
        self.staged.push((now, dir, id, size_bytes));
    }

    /// Start time of the next unprocessed slot.
    pub fn next_slot_time(&self) -> SimTime {
        self.cfg.frame.slot_start(self.next_slot)
    }

    /// Advances slot processing through all slots starting at or before
    /// `now`.
    pub fn poll(&mut self, now: SimTime) {
        while self.cfg.frame.slot_start(self.next_slot) <= now {
            let slot = self.next_slot;
            self.next_slot += 1;
            self.process_slot(slot);
        }
    }

    fn process_slot(&mut self, slot: u64) {
        let now = self.cfg.frame.slot_start(slot);
        let dt = self.cfg.frame.slot_duration;

        // Admit staged packets that arrived before this slot started.
        let mut i = 0;
        while i < self.staged.len() {
            if self.staged[i].0 <= now {
                let (_, dir, id, size) = self.staged.remove(i);
                self.link_mut(dir).rlc_tx.enqueue(Sdu {
                    id,
                    size_bytes: size,
                });
            } else {
                i += 1;
            }
        }

        // RRC first: transitions gate everything else.
        self.rrc.step(now, dt, &mut self.rng_rrc);
        for tr in self.rrc.drain_transitions() {
            if tr.state != RrcState::Connected {
                // Entering an outage: abandon in-flight HARQ, keep data.
                if tr.state == RrcState::Idle {
                    self.ul.reset_for_rrc(tr.at);
                    self.dl.reset_for_rrc(tr.at);
                }
            }
            if self.cfg.has_gnb_log {
                self.gnb_log.push(GnbLogRecord {
                    ts: tr.at,
                    event: GnbEvent::RrcTransition {
                        state: tr.state,
                        rnti: tr.rnti,
                    },
                });
            }
        }
        if !self.rrc.is_connected() {
            return; // No PHY-layer transmissions during the outage (Fig. 19).
        }
        let rnti = self.rrc.rnti();

        // Uplink control plane: SR check and grant issuance (PDCCH slots).
        mac::check_sr(&mut self.ul, now, &self.cfg.mac);
        if self.cfg.frame.serves(slot, Direction::Downlink) {
            mac::issue_ul_grants(&mut self.ul, &self.cfg.frame, &self.cfg.mac, slot, now);
        }

        // Data plane. One reused `SlotOutputs` per direction pass (cleared
        // between passes) so deliveries keep their direction attribution
        // without a per-slot allocation.
        if self.cfg.frame.serves(slot, Direction::Downlink) {
            let cross = self.cross_dl.demand(now, dt, &mut self.rng_cross_dl);
            self.slot_out.clear();
            mac::process_slot(
                &mut self.dl,
                &self.cfg.frame,
                &self.cfg.mac,
                slot,
                rnti,
                cross.prb_fraction,
                &mut self.rng_ch_dl,
                &mut self.rng_harq,
                &mut self.slot_out,
            );
            self.collect(Direction::Downlink);
            self.emit_cross_dci(now, Direction::Downlink, cross.prb_fraction, cross.rnti);
        }
        if self.cfg.frame.serves(slot, Direction::Uplink) {
            let cross = self.cross_ul.demand(now, dt, &mut self.rng_cross_ul);
            self.slot_out.clear();
            mac::process_slot(
                &mut self.ul,
                &self.cfg.frame,
                &self.cfg.mac,
                slot,
                rnti,
                cross.prb_fraction,
                &mut self.rng_ch_ul,
                &mut self.rng_harq,
                &mut self.slot_out,
            );
            self.collect(Direction::Uplink);
            self.emit_cross_dci(now, Direction::Uplink, cross.prb_fraction, cross.rnti);
        }

        // Periodic RLC buffer samples for the gNB log (private cells).
        if self.cfg.has_gnb_log && now >= self.next_buffer_sample_at {
            self.gnb_log.push(GnbLogRecord {
                ts: now,
                event: GnbEvent::RlcBuffer {
                    direction: Direction::Uplink,
                    bytes: self.ul.rlc_tx.buffer_bytes(),
                },
            });
            self.gnb_log.push(GnbLogRecord {
                ts: now,
                event: GnbEvent::RlcBuffer {
                    direction: Direction::Downlink,
                    bytes: self.dl.rlc_tx.buffer_bytes(),
                },
            });
            self.next_buffer_sample_at = now + self.cfg.gnb_buffer_sample_every;
        }
    }

    /// Moves the reused `slot_out` scratch into the session-lifetime logs.
    fn collect(&mut self, dir: Direction) {
        for d in self.slot_out.deliveries.drain(..) {
            self.deliveries.push(Delivery {
                id: d.sdu_id,
                direction: dir,
                delivered_at: d.released_at,
            });
        }
        self.dci_log.append(&mut self.slot_out.dci);
        if self.cfg.has_gnb_log {
            for (at, sn) in self.slot_out.rlc_retx.drain(..) {
                self.gnb_log.push(GnbLogRecord {
                    ts: at,
                    event: GnbEvent::RlcRetx { direction: dir, sn },
                });
            }
        }
    }

    fn emit_cross_dci(&mut self, now: SimTime, dir: Direction, fraction: f64, rnti: u32) {
        if fraction <= 0.0 {
            return;
        }
        let n_prbs = ((self.cfg.mac.n_prbs as f64 * fraction).round() as u16).max(1);
        // Cross traffic runs at a nominal mid-range MCS; its exact rate is
        // irrelevant, only its PRB footprint matters to the detector.
        let mcs = 16;
        self.dci_log.push(DciRecord {
            ts: now,
            rnti,
            direction: dir,
            is_target_ue: false,
            n_prbs,
            mcs,
            tbs_bits: phy::tbs_bits(mcs, n_prbs),
            harq_id: 0,
            harq_retx_idx: 0,
            decoded_ok: true,
            proactive: false,
            used_bits: phy::tbs_bits(mcs, n_prbs),
        });
    }

    /// Drains packets delivered since the last call.
    pub fn drain_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.deliveries)
    }

    /// Drains deliveries into `out`, keeping both buffers' capacity — the
    /// allocation-free variant for callers that poll every tick.
    pub fn drain_deliveries_into(&mut self, out: &mut Vec<Delivery>) {
        out.append(&mut self.deliveries);
    }

    /// Drains DCI records emitted since the last call.
    pub fn drain_dci(&mut self) -> Vec<DciRecord> {
        std::mem::take(&mut self.dci_log)
    }

    /// Drains DCI records into `out`, keeping both the internal log's and
    /// `out`'s capacity — the allocation-free variant for callers that poll
    /// every tick (the live-tapped session engine).
    pub fn drain_dci_into(&mut self, out: &mut Vec<DciRecord>) {
        out.append(&mut self.dci_log);
    }

    /// Drains gNB log records emitted since the last call (always empty for
    /// commercial cells).
    pub fn drain_gnb(&mut self) -> Vec<GnbLogRecord> {
        std::mem::take(&mut self.gnb_log)
    }

    /// Drains gNB log records into `out` (see [`Self::drain_dci_into`]).
    pub fn drain_gnb_into(&mut self, out: &mut Vec<GnbLogRecord>) {
        out.append(&mut self.gnb_log);
    }

    // ---- Scripted scenario hooks (figure-regeneration harness) ----

    /// Forces the SINR of `dir` to `sinr_db` during `[from, to)`.
    pub fn script_sinr(&mut self, dir: Direction, from: SimTime, to: SimTime, sinr_db: f64) {
        self.link_mut(dir)
            .channel
            .add_override(SinrOverride { from, to, sinr_db });
    }

    /// Forces cross traffic in `dir` to `prb_fraction` during `[from, to)`.
    pub fn script_cross_traffic(
        &mut self,
        dir: Direction,
        from: SimTime,
        to: SimTime,
        prb_fraction: f64,
    ) {
        let ov = CrossTrafficOverride {
            from,
            to,
            prb_fraction,
        };
        match dir {
            Direction::Uplink => self.cross_ul.add_override(ov),
            Direction::Downlink => self.cross_dl.add_override(ov),
        }
    }

    /// Forces HARQ attempts with index < `fail_attempts` to fail in `dir`
    /// during `[from, to)`.
    pub fn script_harq_failures(
        &mut self,
        dir: Direction,
        from: SimTime,
        to: SimTime,
        fail_attempts: u8,
    ) {
        self.link_mut(dir).add_harq_override(HarqOverride {
            from,
            to,
            fail_attempts,
        });
    }

    /// Forces an RRC release at `at`.
    pub fn script_rrc_release(&mut self, at: SimTime) {
        self.rrc.script_release(at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crosstraffic::CrossTrafficConfig;
    use crate::frame::FrameStructure;
    use crate::mac::MacConfig;
    use crate::rrc::RrcConfig;

    fn quiet_cell() -> CellConfig {
        CellConfig {
            name: "test cell".to_string(),
            class: CellClass::Private,
            carrier_mhz: 3500.0,
            bandwidth_mhz: 20.0,
            frame: FrameStructure::tdd(SimDuration::from_micros(500), "DDDSU"),
            mac: MacConfig {
                n_prbs: 51,
                ..Default::default()
            },
            ul_channel: ChannelConfig {
                base_sinr_db: 25.0,
                shadow_sigma_db: 0.2,
                ..Default::default()
            },
            dl_channel: ChannelConfig {
                base_sinr_db: 25.0,
                shadow_sigma_db: 0.2,
                ..Default::default()
            },
            ul_cross: CrossTrafficConfig::quiet(),
            dl_cross: CrossTrafficConfig::quiet(),
            rrc: RrcConfig::default(),
            has_gnb_log: true,
            gnb_buffer_sample_every: SimDuration::from_millis(5),
        }
    }

    fn run_until(cell: &mut CellSim, ms: u64) -> Vec<Delivery> {
        cell.poll(SimTime::from_millis(ms));
        cell.drain_deliveries()
    }

    #[test]
    fn dl_packet_traverses_cell() {
        let mut cell = CellSim::new(quiet_cell(), 1);
        cell.enqueue(SimTime::ZERO, Direction::Downlink, 7, 1200);
        let out = run_until(&mut cell, 50);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 7);
        assert_eq!(out[0].direction, Direction::Downlink);
        // DL needs no grant: one or two slots plus decode latency.
        assert!(
            out[0].delivered_at.as_millis() <= 5,
            "{:?}",
            out[0].delivered_at
        );
    }

    #[test]
    fn ul_packet_pays_scheduling_delay() {
        let mut cell = CellSim::new(quiet_cell(), 2);
        cell.enqueue(SimTime::from_millis(10), Direction::Uplink, 9, 1200);
        let out = run_until(&mut cell, 100);
        assert_eq!(out.len(), 1);
        let delay = out[0]
            .delivered_at
            .saturating_since(SimTime::from_millis(10));
        // SR wait + grant pipeline + U-slot wait: 5–25 ms per the paper.
        assert!(
            (4..=30).contains(&delay.as_millis()),
            "UL scheduling delay {delay}"
        );
    }

    #[test]
    fn deliveries_preserve_per_direction_order() {
        let mut cell = CellSim::new(quiet_cell(), 3);
        for id in 0..50u64 {
            cell.enqueue(SimTime::from_millis(id), Direction::Uplink, id, 900);
            cell.poll(SimTime::from_millis(id));
        }
        let out = run_until(&mut cell, 400);
        assert_eq!(out.len(), 50);
        let ids: Vec<u64> = out.iter().map(|d| d.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "RLC AM must deliver in order");
        // Delivery timestamps are non-decreasing.
        assert!(out
            .windows(2)
            .all(|w| w[0].delivered_at <= w[1].delivered_at));
    }

    #[test]
    fn dci_log_records_target_ue_activity() {
        let mut cell = CellSim::new(quiet_cell(), 4);
        for id in 0..10u64 {
            cell.enqueue(SimTime::from_millis(id * 5), Direction::Downlink, id, 1500);
        }
        cell.poll(SimTime::from_millis(200));
        let dci = cell.drain_dci();
        assert!(dci.iter().any(|d| d.is_target_ue));
        assert!(dci.iter().all(|d| d.rnti != 0));
        // Second drain is empty.
        assert!(cell.drain_dci().is_empty());
    }

    #[test]
    fn gnb_log_gated_by_config() {
        let mut cfg = quiet_cell();
        cfg.has_gnb_log = false;
        let mut cell = CellSim::new(cfg, 5);
        cell.enqueue(SimTime::ZERO, Direction::Uplink, 1, 800);
        cell.poll(SimTime::from_millis(500));
        assert!(
            cell.drain_gnb().is_empty(),
            "commercial-style cell must not leak gNB logs"
        );

        let mut cell = CellSim::new(quiet_cell(), 5);
        cell.enqueue(SimTime::ZERO, Direction::Uplink, 1, 800);
        cell.poll(SimTime::from_millis(500));
        assert!(
            !cell.drain_gnb().is_empty(),
            "private cell emits buffer samples"
        );
    }

    #[test]
    fn scripted_rrc_release_blocks_delivery_during_outage() {
        let mut cell = CellSim::new(quiet_cell(), 6);
        cell.script_rrc_release(SimTime::from_millis(20));
        cell.poll(SimTime::from_millis(30));
        let rnti_before = cell.rnti();
        assert_ne!(cell.rrc_state(), RrcState::Connected);
        // Data enqueued mid-outage waits it out (≈300 ms total interruption).
        cell.enqueue(SimTime::from_millis(30), Direction::Downlink, 42, 500);
        cell.poll(SimTime::from_millis(200));
        assert!(
            cell.drain_deliveries().is_empty(),
            "still in outage at 200 ms"
        );
        cell.poll(SimTime::from_millis(500));
        let out = cell.drain_deliveries();
        assert!(!out.is_empty(), "delivery after re-establishment");
        assert!(
            out[0].delivered_at.as_millis() >= 300,
            "{:?}",
            out[0].delivered_at
        );
        assert_ne!(
            cell.rnti(),
            rnti_before,
            "re-establishment assigns a new RNTI"
        );
    }

    #[test]
    fn no_delivery_before_enqueue_time() {
        let mut cell = CellSim::new(quiet_cell(), 7);
        for id in 0..20u64 {
            let at = SimTime::from_millis(100 + id * 7);
            cell.enqueue(at, Direction::Downlink, id, 700);
            cell.poll(at);
        }
        cell.poll(SimTime::from_secs(2));
        for d in cell.drain_deliveries() {
            let enq = SimTime::from_millis(100 + d.id * 7);
            assert!(d.delivered_at >= enq, "causality violated for {}", d.id);
        }
    }
}
