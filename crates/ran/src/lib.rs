//! # ran-sim — a slot-accurate 5G RAN simulator
//!
//! Implements every Radio Access Network mechanism the paper traces VCA
//! quality degradation to:
//!
//! | Paper cause (§4.1, Fig. 9)   | Module |
//! |------------------------------|--------|
//! | Poor channel (§5.1.1)        | [`channel`] (SINR process) + [`phy`] (MCS/TBS) |
//! | Cross traffic (§5.1.2)       | [`crosstraffic`] + scheduler in [`mac`] |
//! | UL scheduling delay (§5.2.1) | SR/BSR/grant pipeline in [`mac`], [`frame`] |
//! | HARQ ReTX (§5.2.2)           | HARQ processes in [`mac`], BLER in [`phy`] |
//! | RLC ReTX + HoL (§5.2.3)      | [`rlc`] acknowledged mode |
//! | RRC state transitions (§5.3) | [`rrc`] |
//!
//! The public entry point is [`CellSim`]: enqueue packets at the RAN edge,
//! `poll` the slot clock forward, drain in-order deliveries plus the two
//! telemetry taps the paper's measurement setup has (NR-Scope-style DCI
//! records for all cells; gNB-internal logs for private cells only).

pub mod cell;
pub mod channel;
pub mod crosstraffic;
pub mod frame;
pub mod mac;
pub mod phy;
pub mod rlc;
pub mod rrc;
pub mod ue;

pub use cell::{CellConfig, CellSim, Delivery};
pub use channel::{Channel, ChannelConfig, SinrOverride};
pub use crosstraffic::{CrossTraffic, CrossTrafficConfig, CrossTrafficOverride};
pub use frame::{FrameStructure, SlotKind};
pub use mac::{Grant, HarqOverride, LinkDir, MacConfig, ProactiveGrantConfig};
pub use rlc::{Pdu, RlcRx, RlcTx, Sdu, SduDelivery, Segment};
pub use rrc::{RrcConfig, RrcMachine, RrcTransition};
pub use ue::{
    traffic_mix, CellUeTable, TrafficPattern, TrafficUeConfig, TRAFFIC_RNTI_BASE, UE_NONE,
};
