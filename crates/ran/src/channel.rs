//! Wireless channel model: per-direction SINR evolution.
//!
//! The paper attributes physical-layer capacity drops to "channel condition
//! dynamics (due to mobility, fading, or interference)" (§5.1.1). We model
//! the post-equalization SINR as
//!
//! * a configured base level (cell geometry / UE placement),
//! * slow log-normal shadowing — a first-order Gauss–Markov process,
//! * an occasional two-state (Good/Fade) Markov chain that imposes deep
//!   fades of configurable depth, producing the minute-scale events of
//!   Fig. 12, and
//! * scripted overrides used by the figure-regeneration harness to place a
//!   fade at an exact time.

use rand::Rng;
use simcore::dist::GaussMarkov;
use simcore::{SimDuration, SimTime};

/// Configuration of one direction's channel process.
#[derive(Debug, Clone)]
pub struct ChannelConfig {
    /// Long-run mean SINR in dB.
    pub base_sinr_db: f64,
    /// Shadowing standard deviation in dB.
    pub shadow_sigma_db: f64,
    /// Shadowing correlation per update step (close to 1 = slow wander).
    pub shadow_rho: f64,
    /// Mean time between deep-fade onsets; `None` disables random fades.
    pub fade_every: Option<SimDuration>,
    /// Mean fade duration.
    pub fade_duration: SimDuration,
    /// Fade depth in dB (subtracted from SINR while fading).
    pub fade_depth_db: f64,
    /// Interval between process updates (SINR is held between updates).
    pub update_interval: SimDuration,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            base_sinr_db: 20.0,
            shadow_sigma_db: 2.5,
            shadow_rho: 0.97,
            fade_every: None,
            fade_duration: SimDuration::from_millis(800),
            fade_depth_db: 15.0,
            update_interval: SimDuration::from_millis(10),
        }
    }
}

/// A time window during which the SINR is forced to an absolute value,
/// used by scripted scenarios (e.g. Fig. 12's channel-degradation episode).
#[derive(Debug, Clone, Copy)]
pub struct SinrOverride {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub to: SimTime,
    /// Forced SINR in dB.
    pub sinr_db: f64,
}

/// Evolving SINR process for one link direction.
#[derive(Debug, Clone)]
pub struct Channel {
    cfg: ChannelConfig,
    shadow: GaussMarkov,
    fading_until: Option<SimTime>,
    next_update: SimTime,
    current_db: f64,
    overrides: Vec<SinrOverride>,
}

impl Channel {
    /// Creates a channel in its mean state.
    pub fn new(cfg: ChannelConfig) -> Self {
        let shadow = GaussMarkov::new(0.0, cfg.shadow_sigma_db, cfg.shadow_rho);
        Channel {
            current_db: cfg.base_sinr_db,
            shadow,
            fading_until: None,
            next_update: SimTime::ZERO,
            overrides: Vec::new(),
            cfg,
        }
    }

    /// Registers a scripted override window.
    pub fn add_override(&mut self, ov: SinrOverride) {
        self.overrides.push(ov);
    }

    /// Advances the process to `now` and returns the SINR in dB.
    pub fn sinr_db<R: Rng + ?Sized>(&mut self, now: SimTime, rng: &mut R) -> f64 {
        while now >= self.next_update {
            self.step(self.next_update, rng);
            self.next_update += self.cfg.update_interval;
        }
        // Scripted overrides take precedence over everything.
        for ov in &self.overrides {
            if now >= ov.from && now < ov.to {
                return ov.sinr_db;
            }
        }
        self.current_db
    }

    fn step<R: Rng + ?Sized>(&mut self, at: SimTime, rng: &mut R) {
        self.shadow.step(rng);
        // Fade state machine.
        if let Some(until) = self.fading_until {
            if at >= until {
                self.fading_until = None;
            }
        } else if let Some(every) = self.cfg.fade_every {
            let p_onset = self.cfg.update_interval.as_secs_f64() / every.as_secs_f64().max(1e-9);
            if rng.gen::<f64>() < p_onset {
                // Exponential-ish duration: 0.5–1.5× the configured mean.
                let dur = self.cfg.fade_duration.mul_f64(0.5 + rng.gen::<f64>());
                self.fading_until = Some(at + dur);
            }
        }
        let fade = if self.fading_until.is_some() {
            self.cfg.fade_depth_db
        } else {
            0.0
        };
        self.current_db = self.cfg.base_sinr_db + self.shadow.value() - fade;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{rng_for, RngStream};

    fn at_ms(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn stays_near_base_without_fades() {
        let mut ch = Channel::new(ChannelConfig {
            base_sinr_db: 18.0,
            shadow_sigma_db: 2.0,
            ..Default::default()
        });
        let mut rng = rng_for(1, RngStream::ChannelUl);
        let mut sum = 0.0;
        let n = 2000;
        for i in 0..n {
            sum += ch.sinr_db(at_ms(i * 10), &mut rng);
        }
        let mean = sum / n as f64;
        assert!((mean - 18.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn fades_reduce_sinr() {
        let mut ch = Channel::new(ChannelConfig {
            base_sinr_db: 20.0,
            shadow_sigma_db: 0.5,
            fade_every: Some(SimDuration::from_secs(2)),
            fade_duration: SimDuration::from_millis(500),
            fade_depth_db: 18.0,
            ..Default::default()
        });
        let mut rng = rng_for(2, RngStream::ChannelDl);
        let mut min = f64::INFINITY;
        for i in 0..6000 {
            min = min.min(ch.sinr_db(at_ms(i * 10), &mut rng));
        }
        assert!(min < 6.0, "never saw a deep fade; min {min}");
    }

    #[test]
    fn override_wins() {
        let mut ch = Channel::new(ChannelConfig::default());
        ch.add_override(SinrOverride {
            from: at_ms(100),
            to: at_ms(200),
            sinr_db: -3.0,
        });
        let mut rng = rng_for(3, RngStream::ChannelUl);
        assert!(ch.sinr_db(at_ms(50), &mut rng) > 10.0);
        assert_eq!(ch.sinr_db(at_ms(150), &mut rng), -3.0);
        assert!(ch.sinr_db(at_ms(250), &mut rng) > 10.0);
    }

    #[test]
    fn deterministic_for_same_stream() {
        let mk = || {
            let mut ch = Channel::new(ChannelConfig::default());
            let mut rng = rng_for(9, RngStream::ChannelUl);
            (0..100)
                .map(|i| ch.sinr_db(at_ms(i * 10), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }
}
