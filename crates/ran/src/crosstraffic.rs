//! Cross-traffic demand from other UEs sharing the cell.
//!
//! "The number of PRBs allocated to a specific UE is dependent on the demand
//! from both itself and other UEs" (paper §5.1.2). We model the *aggregate*
//! PRB demand of all other UEs as a two-state Markov burst process (idle /
//! burst) plus a low-level background chatter, which is what a busy
//! commercial cell's DCI stream looks like from NR-Scope's vantage point:
//! long quiet stretches interrupted by heavy bursts (Fig. 13's yellow bars).
//!
//! This scalar aggregate coexists with the first-class scripted UEs of
//! [`crate::ue::CellUeTable`]: scripted UEs contend for PRBs individually
//! (each with its own queue, MCS, and HARQ lane, visible as distinct RNTIs
//! in the DCI log), while this process stands in for the unmodelled rest of
//! the cell. In the scheduler, scripted/experiment grants are *hard*
//! reservations and this aggregate is a *soft* one — it yields to HARQ
//! retransmissions, like best-effort background traffic would.

use rand::Rng;
use simcore::{SimDuration, SimTime};

/// Configuration of the cross-traffic process for one direction.
#[derive(Debug, Clone)]
pub struct CrossTrafficConfig {
    /// Mean time between burst onsets; `None` disables bursts entirely.
    pub burst_every: Option<SimDuration>,
    /// Mean burst duration.
    pub burst_duration: SimDuration,
    /// PRB fraction demanded during a burst, sampled per burst in this range.
    pub burst_prb_fraction: (f64, f64),
    /// Probability that a given slot carries background chatter.
    pub background_slot_probability: f64,
    /// PRB fraction of background chatter.
    pub background_prb_fraction: f64,
}

impl CrossTrafficConfig {
    /// No other UEs at all (quiet private cell).
    pub fn quiet() -> Self {
        CrossTrafficConfig {
            burst_every: None,
            burst_duration: SimDuration::from_millis(500),
            burst_prb_fraction: (0.0, 0.0),
            background_slot_probability: 0.0,
            background_prb_fraction: 0.0,
        }
    }

    /// Light background load (private cell with a couple of idle phones).
    pub fn light() -> Self {
        CrossTrafficConfig {
            burst_every: Some(SimDuration::from_secs(30)),
            burst_duration: SimDuration::from_millis(300),
            burst_prb_fraction: (0.1, 0.3),
            background_slot_probability: 0.05,
            background_prb_fraction: 0.05,
        }
    }

    /// Heavily utilised commercial cell (the T-Mobile 15 MHz FDD downlink:
    /// "prevalent asymmetric traffic patterns, where users generate
    /// significantly more DL cross traffic").
    pub fn heavy() -> Self {
        CrossTrafficConfig {
            burst_every: Some(SimDuration::from_secs(6)),
            burst_duration: SimDuration::from_millis(900),
            burst_prb_fraction: (0.5, 0.9),
            background_slot_probability: 0.35,
            background_prb_fraction: 0.15,
        }
    }

    /// Moderate load (commercial cell off-peak / wide TDD carrier).
    pub fn moderate() -> Self {
        CrossTrafficConfig {
            burst_every: Some(SimDuration::from_secs(15)),
            burst_duration: SimDuration::from_millis(600),
            burst_prb_fraction: (0.3, 0.6),
            background_slot_probability: 0.2,
            background_prb_fraction: 0.1,
        }
    }
}

/// A forced cross-traffic window for scripted scenarios.
#[derive(Debug, Clone, Copy)]
pub struct CrossTrafficOverride {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub to: SimTime,
    /// Forced PRB fraction demanded by other UEs.
    pub prb_fraction: f64,
}

/// Evolving cross-traffic demand for one direction.
#[derive(Debug, Clone)]
pub struct CrossTraffic {
    cfg: CrossTrafficConfig,
    burst_until: Option<SimTime>,
    burst_fraction: f64,
    /// RNTI attributed to the current burst (so the DCI log shows a
    /// plausible distinct user per burst).
    burst_rnti: u32,
    overrides: Vec<CrossTrafficOverride>,
}

/// Demand outcome for one slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossDemand {
    /// Fraction of the cell's PRBs demanded by other UEs in this slot.
    pub prb_fraction: f64,
    /// RNTI to attribute the allocation to in the DCI log.
    pub rnti: u32,
}

impl CrossTraffic {
    /// Creates the process in the idle state.
    pub fn new(cfg: CrossTrafficConfig) -> Self {
        CrossTraffic {
            cfg,
            burst_until: None,
            burst_fraction: 0.0,
            burst_rnti: 40_000,
            overrides: Vec::new(),
        }
    }

    /// Registers a scripted override window.
    pub fn add_override(&mut self, ov: CrossTrafficOverride) {
        self.overrides.push(ov);
    }

    /// Demand for the slot starting at `now` of duration `slot`.
    pub fn demand<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        slot: SimDuration,
        rng: &mut R,
    ) -> CrossDemand {
        for ov in &self.overrides {
            if now >= ov.from && now < ov.to {
                return CrossDemand {
                    prb_fraction: ov.prb_fraction,
                    rnti: 50_001,
                };
            }
        }
        // Burst state machine.
        if let Some(until) = self.burst_until {
            if now >= until {
                self.burst_until = None;
            }
        } else if let Some(every) = self.cfg.burst_every {
            let p = slot.as_secs_f64() / every.as_secs_f64().max(1e-9);
            if rng.gen::<f64>() < p {
                let (lo, hi) = self.cfg.burst_prb_fraction;
                self.burst_fraction = lo + (hi - lo) * rng.gen::<f64>();
                self.burst_until =
                    Some(now + self.cfg.burst_duration.mul_f64(0.5 + rng.gen::<f64>()));
                self.burst_rnti = 40_000 + rng.gen_range(0..10_000);
            }
        }
        if self.burst_until.is_some() {
            return CrossDemand {
                prb_fraction: self.burst_fraction,
                rnti: self.burst_rnti,
            };
        }
        if self.cfg.background_slot_probability > 0.0
            && rng.gen::<f64>() < self.cfg.background_slot_probability
        {
            return CrossDemand {
                prb_fraction: self.cfg.background_prb_fraction,
                rnti: 30_000 + rng.gen_range(0..10_000),
            };
        }
        CrossDemand {
            prb_fraction: 0.0,
            rnti: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{rng_for, RngStream};

    const SLOT: SimDuration = SimDuration::from_micros(500);

    #[test]
    fn quiet_is_quiet() {
        let mut ct = CrossTraffic::new(CrossTrafficConfig::quiet());
        let mut rng = rng_for(1, RngStream::CrossTrafficUl);
        for i in 0..10_000 {
            let d = ct.demand(SimTime::from_micros(i * 500), SLOT, &mut rng);
            assert_eq!(d.prb_fraction, 0.0);
        }
    }

    #[test]
    fn heavy_produces_bursts() {
        let mut ct = CrossTraffic::new(CrossTrafficConfig::heavy());
        let mut rng = rng_for(2, RngStream::CrossTrafficDl);
        let mut burst_slots = 0;
        let n = 120_000; // 60 s of 0.5 ms slots
        for i in 0..n {
            let d = ct.demand(SimTime::from_micros(i * 500), SLOT, &mut rng);
            if d.prb_fraction >= 0.5 {
                burst_slots += 1;
            }
        }
        // ~10 bursts of ~900 ms in 60 s → thousands of heavy slots.
        assert!(burst_slots > 2_000, "only {burst_slots} heavy slots");
    }

    #[test]
    fn override_takes_precedence() {
        let mut ct = CrossTraffic::new(CrossTrafficConfig::quiet());
        ct.add_override(CrossTrafficOverride {
            from: SimTime::from_millis(10),
            to: SimTime::from_millis(20),
            prb_fraction: 0.8,
        });
        let mut rng = rng_for(3, RngStream::CrossTrafficUl);
        let d = ct.demand(SimTime::from_millis(15), SLOT, &mut rng);
        assert_eq!(d.prb_fraction, 0.8);
        let d = ct.demand(SimTime::from_millis(25), SLOT, &mut rng);
        assert_eq!(d.prb_fraction, 0.0);
    }

    #[test]
    fn burst_rnti_is_stable_within_burst() {
        let mut ct = CrossTraffic::new(CrossTrafficConfig::heavy());
        let mut rng = rng_for(4, RngStream::CrossTrafficDl);
        let mut current: Option<(u32, usize)> = None;
        let mut longest = 0;
        for i in 0..200_000u64 {
            let d = ct.demand(SimTime::from_micros(i * 500), SLOT, &mut rng);
            if d.prb_fraction >= 0.5 {
                match current {
                    Some((rnti, count)) if rnti == d.rnti => current = Some((rnti, count + 1)),
                    _ => current = Some((d.rnti, 1)),
                }
                longest = longest.max(current.unwrap().1);
            } else {
                current = None;
            }
        }
        assert!(
            longest > 500,
            "bursts should hold one RNTI for many slots: {longest}"
        );
    }
}
