//! Radio Link Control, Acknowledged Mode.
//!
//! Models the three RLC behaviours the paper traces (§5.2.3, Fig. 15c):
//!
//! 1. **Buffering** — IP packets (RLC SDUs) queue at the transmitter while
//!    the physical layer is the bottleneck; buffer growth is what turns a
//!    capacity drop into one-way delay (Fig. 12).
//! 2. **ARQ retransmission** — when MAC-layer HARQ exhausts its attempts,
//!    recovery falls to RLC, which retransmits after a status-report delay
//!    an order of magnitude larger than a HARQ round (≈105 ms vs ≈10 ms).
//! 3. **In-order delivery** — RLC AM releases SDUs to upper layers strictly
//!    in sequence, so one missing PDU holds back everything behind it
//!    (head-of-line blocking) and its eventual arrival releases a burst of
//!    packets with nearly identical delivery times (Fig. 18).
//!
//! Granularity: one RLC PDU = one transport block payload, identified by a
//! sequence number. SDUs are segmented across PDUs as grants allow;
//! a retransmitted PDU carries its original payload (RLC resegmentation is
//! not modelled — grants are sized to fit, which the paper's cells also do).

use std::collections::{BTreeMap, VecDeque};

use simcore::SimTime;

/// An upper-layer packet handed to RLC (an RLC SDU).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sdu {
    /// Opaque packet identity assigned by the caller.
    pub id: u64,
    /// Size in bytes.
    pub size_bytes: u32,
}

/// A contiguous piece of one SDU carried inside a PDU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// SDU this segment belongs to.
    pub sdu_id: u64,
    /// Bytes of the SDU carried here.
    pub bytes: u32,
    /// Whether this is the final segment of the SDU.
    pub last_of_sdu: bool,
}

/// One RLC PDU: the payload of one transport block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pdu {
    /// RLC sequence number (strictly increasing per direction).
    pub sn: u32,
    /// Carried SDU segments, in order.
    pub segments: Vec<Segment>,
    /// Total payload bytes.
    pub bytes: u32,
    /// Whether this PDU is an RLC ARQ retransmission.
    pub is_retx: bool,
}

/// A free list of spent `Vec<Segment>` buffers, recycled between the PDU
/// builder ([`RlcTx::build_pdu_pooled`]) and the in-order release path
/// ([`RlcRx::receive_into`]) so steady-state PDU traffic performs no heap
/// allocation. One pool per link direction lives in the MAC's `LinkDir`.
#[derive(Debug, Clone, Default)]
pub struct SegmentPool {
    free: Vec<Vec<Segment>>,
}

impl SegmentPool {
    /// Takes an empty segment buffer from the pool (or a fresh one).
    pub fn get(&mut self) -> Vec<Segment> {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a spent buffer to the pool.
    pub fn put(&mut self, mut v: Vec<Segment>) {
        v.clear();
        self.free.push(v);
    }
}

/// Transmitter-side RLC AM entity.
#[derive(Debug, Clone, Default)]
pub struct RlcTx {
    queue: VecDeque<SduProgress>,
    retx: VecDeque<(SimTime, Pdu)>,
    next_sn: u32,
    new_data_bytes: u64,
}

#[derive(Debug, Clone, Copy)]
struct SduProgress {
    sdu: Sdu,
    sent_bytes: u32,
}

impl RlcTx {
    /// Creates an empty entity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues an SDU for transmission.
    pub fn enqueue(&mut self, sdu: Sdu) {
        self.new_data_bytes += sdu.size_bytes as u64;
        self.queue.push_back(SduProgress { sdu, sent_bytes: 0 });
    }

    /// Bytes awaiting transmission, including pending ARQ retransmissions —
    /// the quantity a Buffer Status Report carries.
    pub fn buffer_bytes(&self) -> u64 {
        self.new_data_bytes + self.retx.iter().map(|(_, p)| p.bytes as u64).sum::<u64>()
    }

    /// Bytes of *new* data only (excludes ARQ retransmissions).
    pub fn new_data_bytes(&self) -> u64 {
        self.new_data_bytes
    }

    /// Whether an ARQ retransmission is ready to go at `now`.
    pub fn retx_due(&self, now: SimTime) -> bool {
        self.retx.front().is_some_and(|(at, _)| *at <= now)
    }

    /// Schedules an ARQ retransmission of `pdu` once the status report has
    /// made it back, i.e. not before `available_at`.
    pub fn schedule_retx(&mut self, available_at: SimTime, mut pdu: Pdu) {
        pdu.is_retx = true;
        // Keep the retx queue sorted by availability (insertions are nearly
        // ordered already; linear scan from the back is cheap).
        let at = available_at;
        let pos = self
            .retx
            .iter()
            .rposition(|(t, _)| *t <= at)
            .map_or(0, |p| p + 1);
        self.retx.insert(pos, (at, pdu));
    }

    /// Builds the next PDU of at most `max_bytes`, or `None` if there is
    /// nothing to send at `now`.
    ///
    /// ARQ retransmissions take absolute priority, as RLC control/retx PDUs
    /// do; a retransmitted PDU keeps its original sequence number and is
    /// *not* truncated to `max_bytes` (the grant is assumed sized for it).
    pub fn build_pdu(&mut self, now: SimTime, max_bytes: u32) -> Option<Pdu> {
        let mut pool = SegmentPool::default();
        self.build_pdu_pooled(now, max_bytes, &mut pool)
    }

    /// [`Self::build_pdu`] drawing its segment buffer from `pool` — the
    /// allocation-free variant the per-slot scheduler uses.
    pub fn build_pdu_pooled(
        &mut self,
        now: SimTime,
        max_bytes: u32,
        pool: &mut SegmentPool,
    ) -> Option<Pdu> {
        if self.retx_due(now) {
            let (_, pdu) = self.retx.pop_front().expect("checked retx_due");
            return Some(pdu);
        }
        if max_bytes == 0 || self.new_data_bytes == 0 {
            return None;
        }
        let mut segments = pool.get();
        let mut remaining = max_bytes;
        while remaining > 0 {
            let Some(front) = self.queue.front_mut() else {
                break;
            };
            let left = front.sdu.size_bytes - front.sent_bytes;
            let take = left.min(remaining);
            let last = take == left;
            segments.push(Segment {
                sdu_id: front.sdu.id,
                bytes: take,
                last_of_sdu: last,
            });
            front.sent_bytes += take;
            remaining -= take;
            self.new_data_bytes -= take as u64;
            if last {
                self.queue.pop_front();
            }
        }
        if segments.is_empty() {
            pool.put(segments);
            return None;
        }
        let bytes = max_bytes - remaining;
        let sn = self.next_sn;
        self.next_sn += 1;
        Some(Pdu {
            sn,
            segments,
            bytes,
            is_retx: false,
        })
    }

    /// Re-inserts the payload of an abandoned PDU at the *front* of the new-
    /// data queue (used on RRC re-establishment, when HARQ state is reset
    /// and RLC re-transmits unacknowledged data immediately).
    pub fn requeue_front(&mut self, pdu: Pdu) {
        for seg in pdu.segments.into_iter().rev() {
            self.new_data_bytes += seg.bytes as u64;
            self.queue.push_front(SduProgress {
                sdu: Sdu {
                    id: seg.sdu_id,
                    size_bytes: seg.bytes,
                },
                sent_bytes: 0,
            });
        }
    }
}

/// A completed SDU released to upper layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SduDelivery {
    /// Identity of the delivered packet.
    pub sdu_id: u64,
    /// Release time (equals the in-order release of its last segment).
    pub released_at: SimTime,
}

/// Receiver-side RLC AM entity: reorders PDUs and releases SDUs in order.
#[derive(Debug, Clone, Default)]
pub struct RlcRx {
    next_expected_sn: u32,
    held: BTreeMap<u32, Pdu>,
}

impl RlcRx {
    /// Creates an empty entity expecting SN 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of PDUs held back by head-of-line blocking.
    pub fn held_pdus(&self) -> usize {
        self.held.len()
    }

    /// Next sequence number the in-order release pointer is waiting for.
    pub fn next_expected_sn(&self) -> u32 {
        self.next_expected_sn
    }

    /// Accepts a successfully decoded PDU at `now`; returns SDUs completed
    /// by in-order release (possibly many at once after a gap fills — the
    /// HoL release burst of Fig. 18).
    pub fn receive(&mut self, now: SimTime, pdu: Pdu) -> Vec<SduDelivery> {
        let mut out = Vec::new();
        let mut pool = SegmentPool::default();
        self.receive_into(now, pdu, &mut out, &mut pool);
        out
    }

    /// [`Self::receive`] appending completed SDUs to `out` and recycling the
    /// released PDUs' segment buffers into `pool` — the allocation-free
    /// variant the per-slot scheduler uses.
    pub fn receive_into(
        &mut self,
        now: SimTime,
        pdu: Pdu,
        out: &mut Vec<SduDelivery>,
        pool: &mut SegmentPool,
    ) {
        if pdu.sn < self.next_expected_sn {
            pool.put(pdu.segments); // duplicate of something already released
            return;
        }
        self.held.insert(pdu.sn, pdu);
        while let Some(pdu) = self.held.remove(&self.next_expected_sn) {
            self.next_expected_sn += 1;
            for seg in &pdu.segments {
                if seg.last_of_sdu {
                    out.push(SduDelivery {
                        sdu_id: seg.sdu_id,
                        released_at: now,
                    });
                }
            }
            pool.put(pdu.segments);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn segmentation_across_pdus() {
        let mut tx = RlcTx::new();
        tx.enqueue(Sdu {
            id: 1,
            size_bytes: 2500,
        });
        assert_eq!(tx.buffer_bytes(), 2500);
        let p1 = tx.build_pdu(t(0), 1000).unwrap();
        let p2 = tx.build_pdu(t(0), 1000).unwrap();
        let p3 = tx.build_pdu(t(0), 1000).unwrap();
        assert_eq!(p1.bytes, 1000);
        assert!(!p1.segments[0].last_of_sdu);
        assert_eq!(p3.bytes, 500);
        assert!(p3.segments[0].last_of_sdu);
        assert_eq!(tx.buffer_bytes(), 0);
        assert!(tx.build_pdu(t(0), 1000).is_none());
        assert_eq!((p1.sn, p2.sn, p3.sn), (0, 1, 2));
    }

    #[test]
    fn multiple_sdus_share_a_pdu() {
        let mut tx = RlcTx::new();
        tx.enqueue(Sdu {
            id: 1,
            size_bytes: 300,
        });
        tx.enqueue(Sdu {
            id: 2,
            size_bytes: 300,
        });
        let p = tx.build_pdu(t(0), 1000).unwrap();
        assert_eq!(p.segments.len(), 2);
        assert_eq!(p.bytes, 600);
        assert!(p.segments.iter().all(|s| s.last_of_sdu));
    }

    #[test]
    fn in_order_release() {
        let mut tx = RlcTx::new();
        for id in 0..3 {
            tx.enqueue(Sdu {
                id,
                size_bytes: 100,
            });
        }
        let p0 = tx.build_pdu(t(0), 100).unwrap();
        let p1 = tx.build_pdu(t(0), 100).unwrap();
        let p2 = tx.build_pdu(t(0), 100).unwrap();
        let mut rx = RlcRx::new();
        // Deliver out of order: 1, 2 held; 0 releases everything.
        assert!(rx.receive(t(10), p1).is_empty());
        assert!(rx.receive(t(12), p2).is_empty());
        assert_eq!(rx.held_pdus(), 2);
        let released = rx.receive(t(50), p0);
        assert_eq!(released.len(), 3);
        // HoL burst: all three released at the same instant.
        assert!(released.iter().all(|d| d.released_at == t(50)));
        assert_eq!(rx.held_pdus(), 0);
    }

    #[test]
    fn retx_has_priority_and_keeps_sn() {
        let mut tx = RlcTx::new();
        tx.enqueue(Sdu {
            id: 1,
            size_bytes: 100,
        });
        let lost = tx.build_pdu(t(0), 100).unwrap();
        tx.enqueue(Sdu {
            id: 2,
            size_bytes: 100,
        });
        tx.schedule_retx(t(60), lost.clone());
        // Before the status delay elapses the retx is not eligible.
        let p = tx.build_pdu(t(10), 100).unwrap();
        assert!(!p.is_retx);
        assert_eq!(p.segments[0].sdu_id, 2);
        // After: retx goes first, original SN preserved, flag set.
        tx.enqueue(Sdu {
            id: 3,
            size_bytes: 100,
        });
        let r = tx.build_pdu(t(70), 100).unwrap();
        assert!(r.is_retx);
        assert_eq!(r.sn, lost.sn);
    }

    #[test]
    fn buffer_accounts_retx() {
        let mut tx = RlcTx::new();
        tx.enqueue(Sdu {
            id: 1,
            size_bytes: 500,
        });
        let pdu = tx.build_pdu(t(0), 500).unwrap();
        assert_eq!(tx.buffer_bytes(), 0);
        tx.schedule_retx(t(50), pdu);
        assert_eq!(tx.buffer_bytes(), 500);
        assert_eq!(tx.new_data_bytes(), 0);
    }

    #[test]
    fn duplicate_pdu_ignored() {
        let mut tx = RlcTx::new();
        tx.enqueue(Sdu {
            id: 7,
            size_bytes: 100,
        });
        let p = tx.build_pdu(t(0), 100).unwrap();
        let mut rx = RlcRx::new();
        assert_eq!(rx.receive(t(1), p.clone()).len(), 1);
        assert!(rx.receive(t(2), p).is_empty());
    }

    #[test]
    fn requeue_front_preserves_order() {
        let mut tx = RlcTx::new();
        tx.enqueue(Sdu {
            id: 1,
            size_bytes: 100,
        });
        tx.enqueue(Sdu {
            id: 2,
            size_bytes: 100,
        });
        let p = tx.build_pdu(t(0), 100).unwrap();
        tx.requeue_front(p);
        let again = tx.build_pdu(t(1), 200).unwrap();
        assert_eq!(again.segments[0].sdu_id, 1);
        assert_eq!(again.segments[1].sdu_id, 2);
    }

    proptest! {
        /// Under arbitrary PDU sizes, losses and retransmission delays,
        /// the receiver releases every SDU exactly once, in order.
        #[test]
        fn prop_in_order_exactly_once(
            sizes in proptest::collection::vec(1u32..3000, 1..40),
            grant in 50u32..2000,
            lose_mask in proptest::collection::vec(any::<bool>(), 0..200),
        ) {
            let mut tx = RlcTx::new();
            for (i, &s) in sizes.iter().enumerate() {
                tx.enqueue(Sdu { id: i as u64, size_bytes: s });
            }
            let mut rx = RlcRx::new();
            let mut delivered: Vec<u64> = Vec::new();
            let mut now_ms = 0u64;
            let mut loses = lose_mask.iter().copied().chain(std::iter::repeat(false));
            // Drain: lost PDUs are re-scheduled 100 ms later; time advances 1 ms per PDU.
            let mut guard = 0;
            loop {
                guard += 1;
                prop_assert!(guard < 100_000, "drain did not terminate");
                now_ms += 1;
                match tx.build_pdu(t(now_ms), grant) {
                    Some(pdu) => {
                        if loses.next().unwrap() && !pdu.is_retx {
                            tx.schedule_retx(t(now_ms + 100), pdu);
                        } else {
                            for d in rx.receive(t(now_ms), pdu) {
                                delivered.push(d.sdu_id);
                            }
                        }
                    }
                    None => {
                        if tx.buffer_bytes() == 0 { break; }
                        // Otherwise a retx is pending but not yet due; jump ahead.
                        now_ms += 100;
                    }
                }
            }
            let expected: Vec<u64> = (0..sizes.len() as u64).collect();
            prop_assert_eq!(delivered, expected);
        }
    }
}
