//! Modulation and Coding Scheme table (3GPP TS 38.214 Table 5.1.3.1-1,
//! 64-QAM table) and MCS selection with outer-loop link adaptation.
//!
//! The achievable physical-layer bit rate of a UE is primarily determined by
//! the MCS, "selected based on the UE's wireless channel conditions" (paper
//! §5.1). We model the gNB's inner-loop selection as a SINR-threshold rule
//! derived from the Shannon capacity with an implementation-efficiency gap,
//! plus an outer loop that trims an offset to hold the block-error-rate
//! target, as production schedulers do.

/// One row of the MCS table: modulation order and code rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McsEntry {
    /// Bits per modulation symbol (2 = QPSK, 4 = 16QAM, 6 = 64QAM).
    pub qm: u8,
    /// Code rate × 1024, as specified.
    pub rate_x1024: u16,
}

impl McsEntry {
    /// Code rate as a fraction.
    pub fn code_rate(&self) -> f64 {
        self.rate_x1024 as f64 / 1024.0
    }

    /// Spectral efficiency in information bits per resource element.
    pub fn spectral_efficiency(&self) -> f64 {
        self.qm as f64 * self.code_rate()
    }
}

/// TS 38.214 Table 5.1.3.1-1 (MCS index table 1 for PDSCH), indices 0–28.
pub const MCS_TABLE: [McsEntry; 29] = [
    McsEntry {
        qm: 2,
        rate_x1024: 120,
    },
    McsEntry {
        qm: 2,
        rate_x1024: 157,
    },
    McsEntry {
        qm: 2,
        rate_x1024: 193,
    },
    McsEntry {
        qm: 2,
        rate_x1024: 251,
    },
    McsEntry {
        qm: 2,
        rate_x1024: 308,
    },
    McsEntry {
        qm: 2,
        rate_x1024: 379,
    },
    McsEntry {
        qm: 2,
        rate_x1024: 449,
    },
    McsEntry {
        qm: 2,
        rate_x1024: 526,
    },
    McsEntry {
        qm: 2,
        rate_x1024: 602,
    },
    McsEntry {
        qm: 2,
        rate_x1024: 679,
    },
    McsEntry {
        qm: 4,
        rate_x1024: 340,
    },
    McsEntry {
        qm: 4,
        rate_x1024: 378,
    },
    McsEntry {
        qm: 4,
        rate_x1024: 434,
    },
    McsEntry {
        qm: 4,
        rate_x1024: 490,
    },
    McsEntry {
        qm: 4,
        rate_x1024: 553,
    },
    McsEntry {
        qm: 4,
        rate_x1024: 616,
    },
    McsEntry {
        qm: 4,
        rate_x1024: 658,
    },
    McsEntry {
        qm: 6,
        rate_x1024: 438,
    },
    McsEntry {
        qm: 6,
        rate_x1024: 466,
    },
    McsEntry {
        qm: 6,
        rate_x1024: 517,
    },
    McsEntry {
        qm: 6,
        rate_x1024: 567,
    },
    McsEntry {
        qm: 6,
        rate_x1024: 616,
    },
    McsEntry {
        qm: 6,
        rate_x1024: 666,
    },
    McsEntry {
        qm: 6,
        rate_x1024: 719,
    },
    McsEntry {
        qm: 6,
        rate_x1024: 772,
    },
    McsEntry {
        qm: 6,
        rate_x1024: 822,
    },
    McsEntry {
        qm: 6,
        rate_x1024: 873,
    },
    McsEntry {
        qm: 6,
        rate_x1024: 910,
    },
    McsEntry {
        qm: 6,
        rate_x1024: 948,
    },
];

/// Highest valid MCS index.
pub const MAX_MCS: u8 = 28;

/// Implementation efficiency relative to Shannon capacity used to derive the
/// per-MCS SINR requirement; 0.75 is a common link-level abstraction value.
const SHANNON_EFFICIENCY: f64 = 0.75;

/// SINR (dB) at which MCS `mcs` achieves roughly the 10 % BLER target.
///
/// Derived by inverting `SE = η · log2(1 + SINR)`. The per-index values are
/// computed once and memoized: this sits on the per-slot scheduling path
/// (MCS selection and the BLER abstraction both read it), and the
/// `powf`/`log10` pair dominated the whole slot loop before memoization
/// (~380 ns per `select_mcs` call, ~2000 calls per simulated second).
pub fn sinr_required_db(mcs: u8) -> f64 {
    sinr_required_table()[mcs as usize]
}

fn sinr_required_table() -> &'static [f64; 29] {
    static TABLE: std::sync::OnceLock<[f64; 29]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        std::array::from_fn(|mcs| {
            let se = MCS_TABLE[mcs].spectral_efficiency();
            let snr_linear = 2f64.powf(se / SHANNON_EFFICIENCY) - 1.0;
            10.0 * snr_linear.log10()
        })
    })
}

/// Inner-loop MCS selection: the highest MCS whose SINR requirement is met by
/// `sinr_db + olla_offset_db + margin_db`, clamped to `cap`.
///
/// `margin_db` < 0 models the conservative UL selection strategy the paper
/// observes on the Amarisoft cell (§5.1.1: "the cell's conservative UL MCS
/// selection strategy").
pub fn select_mcs(sinr_db: f64, olla_offset_db: f64, margin_db: f64, cap: u8) -> u8 {
    let effective = sinr_db + olla_offset_db + margin_db;
    let cap = cap.min(MAX_MCS);
    let table = sinr_required_table();
    let mut best = 0u8;
    for mcs in 0..=cap {
        if table[mcs as usize] <= effective {
            best = mcs;
        } else {
            break;
        }
    }
    best
}

/// Outer-loop link adaptation: walks an SINR offset so that the realised
/// BLER converges to `bler_target`.
#[derive(Debug, Clone)]
pub struct OuterLoop {
    offset_db: f64,
    step_down_db: f64,
    step_up_db: f64,
    min_db: f64,
    max_db: f64,
}

impl OuterLoop {
    /// Creates an outer loop for the given BLER target with the conventional
    /// asymmetric steps (`up = down · target/(1-target)`).
    pub fn new(bler_target: f64, step_down_db: f64) -> Self {
        assert!((0.0..1.0).contains(&bler_target) && bler_target > 0.0);
        OuterLoop {
            offset_db: 0.0,
            step_down_db,
            step_up_db: step_down_db * bler_target / (1.0 - bler_target),
            min_db: -10.0,
            max_db: 3.0,
        }
    }

    /// Current offset applied to the measured SINR.
    pub fn offset_db(&self) -> f64 {
        self.offset_db
    }

    /// Feeds the outcome of an *initial* HARQ transmission.
    pub fn observe(&mut self, decoded_ok: bool) {
        if decoded_ok {
            self.offset_db = (self.offset_db + self.step_up_db).min(self.max_db);
        } else {
            self.offset_db = (self.offset_db - self.step_down_db).max(self.min_db);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table_spot_values() {
        // Spot-check against TS 38.214 Table 5.1.3.1-1.
        assert_eq!(
            MCS_TABLE[0],
            McsEntry {
                qm: 2,
                rate_x1024: 120
            }
        );
        assert_eq!(
            MCS_TABLE[9],
            McsEntry {
                qm: 2,
                rate_x1024: 679
            }
        );
        assert_eq!(
            MCS_TABLE[10],
            McsEntry {
                qm: 4,
                rate_x1024: 340
            }
        );
        assert_eq!(
            MCS_TABLE[16],
            McsEntry {
                qm: 4,
                rate_x1024: 658
            }
        );
        assert_eq!(
            MCS_TABLE[17],
            McsEntry {
                qm: 6,
                rate_x1024: 438
            }
        );
        assert_eq!(
            MCS_TABLE[28],
            McsEntry {
                qm: 6,
                rate_x1024: 948
            }
        );
    }

    #[test]
    fn spectral_efficiency_monotone() {
        // The real table has one known dip at the 16QAM→64QAM boundary
        // (index 16→17: 2.5703 vs 2.5664); everywhere else SE increases.
        for (i, w) in MCS_TABLE.windows(2).enumerate() {
            if i == 16 {
                assert!((w[1].spectral_efficiency() - w[0].spectral_efficiency()).abs() < 0.01);
            } else {
                assert!(
                    w[1].spectral_efficiency() > w[0].spectral_efficiency(),
                    "at {i}"
                );
            }
        }
        assert!((MCS_TABLE[28].spectral_efficiency() - 5.5547).abs() < 0.001);
    }

    #[test]
    fn sinr_requirement_range() {
        // QPSK rate-0.117 decodes well below 0 dB; MCS 28 needs ~20+ dB.
        assert!(sinr_required_db(0) < -4.0);
        assert!(sinr_required_db(28) > 18.0);
        for mcs in 1..=MAX_MCS {
            // Same known non-monotonicity at 16→17 as spectral efficiency.
            if mcs == 17 {
                assert!((sinr_required_db(17) - sinr_required_db(16)).abs() < 0.1);
            } else {
                assert!(
                    sinr_required_db(mcs) > sinr_required_db(mcs - 1),
                    "at {mcs}"
                );
            }
        }
    }

    #[test]
    fn selection_monotone_in_sinr() {
        let mut last = 0;
        for s in -10..30 {
            let m = select_mcs(s as f64, 0.0, 0.0, MAX_MCS);
            assert!(m >= last);
            last = m;
        }
        assert_eq!(select_mcs(100.0, 0.0, 0.0, MAX_MCS), MAX_MCS);
        assert_eq!(select_mcs(-100.0, 0.0, 0.0, MAX_MCS), 0);
    }

    #[test]
    fn selection_respects_cap_and_margin() {
        assert_eq!(select_mcs(40.0, 0.0, 0.0, 12), 12);
        let unmargined = select_mcs(12.0, 0.0, 0.0, MAX_MCS);
        let margined = select_mcs(12.0, 0.0, -4.0, MAX_MCS);
        assert!(margined < unmargined);
    }

    #[test]
    fn outer_loop_tracks_target() {
        let mut ol = OuterLoop::new(0.1, 0.5);
        // 50% NACKs: way above target, offset must fall.
        for i in 0..100 {
            ol.observe(i % 2 == 0);
        }
        assert!(ol.offset_db() < -5.0);
        // All ACKs: offset recovers toward max.
        for _ in 0..2000 {
            ol.observe(true);
        }
        assert!(ol.offset_db() > 2.0);
    }

    proptest! {
        /// The selected MCS never requires more SINR than available.
        #[test]
        fn prop_selection_feasible(sinr in -20.0f64..40.0, margin in -6.0f64..0.0) {
            let m = select_mcs(sinr, 0.0, margin, MAX_MCS);
            if m > 0 {
                prop_assert!(sinr_required_db(m) <= sinr + margin);
            }
        }
    }
}
