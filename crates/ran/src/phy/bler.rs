//! Block-error-rate abstraction: probability that a transport block fails to
//! decode, as a function of SINR, MCS, and HARQ retransmission index.
//!
//! A logistic curve in SINR around the per-MCS decoding threshold is the
//! standard link-level abstraction. HARQ retransmissions benefit from chase
//! combining, modelled as an effective-SINR gain per accumulated copy — this
//! is what makes a first retransmission succeed with high probability and
//! produces the "+10 ms per HARQ round" delay signature of Fig. 17.

use super::mcs::sinr_required_db;

/// Decode threshold offset: at the selection point (SINR = requirement) the
/// failure probability is ≈ the 10 % BLER target.
const THRESHOLD_BACKOFF_DB: f64 = 1.8;
/// Logistic slope (dB); smaller = sharper waterfall.
const WATERFALL_SCALE_DB: f64 = 0.8;
/// Effective SINR gain per accumulated HARQ copy (chase combining).
const COMBINING_GAIN_DB: f64 = 3.0;

/// Probability that a TB at `mcs` fails decoding at `sinr_db` on HARQ
/// attempt `retx_idx` (0 = initial transmission).
pub fn fail_probability(sinr_db: f64, mcs: u8, retx_idx: u8) -> f64 {
    let effective = sinr_db + COMBINING_GAIN_DB * retx_idx as f64;
    let threshold = sinr_required_db(mcs) - THRESHOLD_BACKOFF_DB;
    1.0 / (1.0 + ((effective - threshold) / WATERFALL_SCALE_DB).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bler_near_target_at_selection_point() {
        for mcs in [0u8, 9, 16, 28] {
            let p = fail_probability(sinr_required_db(mcs), mcs, 0);
            assert!((0.05..0.20).contains(&p), "mcs {mcs}: {p}");
        }
    }

    #[test]
    fn bler_waterfall() {
        let mcs = 10;
        let req = sinr_required_db(mcs);
        assert!(fail_probability(req + 5.0, mcs, 0) < 0.01);
        assert!(fail_probability(req - 5.0, mcs, 0) > 0.95);
    }

    #[test]
    fn retransmissions_help() {
        let mcs = 15;
        let sinr = sinr_required_db(mcs) - 2.0; // marginal channel
        let p0 = fail_probability(sinr, mcs, 0);
        let p1 = fail_probability(sinr, mcs, 1);
        let p2 = fail_probability(sinr, mcs, 2);
        assert!(p1 < p0 && p2 < p1);
        assert!(p2 < 0.1, "two combines should almost always decode: {p2}");
    }

    proptest! {
        /// Failure probability is a valid probability, decreasing in SINR
        /// and in retransmission index.
        #[test]
        fn prop_fail_probability_sane(sinr in -30.0f64..50.0, mcs in 0u8..=28, retx in 0u8..4) {
            let p = fail_probability(sinr, mcs, retx);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(fail_probability(sinr + 1.0, mcs, retx) <= p);
            prop_assert!(fail_probability(sinr, mcs, retx + 1) <= p);
        }
    }
}
