//! Physical-layer abstractions: MCS table, TBS determination, BLER model.

pub mod bler;
pub mod mcs;
pub mod tbs;

pub use bler::fail_probability;
pub use mcs::{select_mcs, sinr_required_db, McsEntry, OuterLoop, MAX_MCS, MCS_TABLE};
pub use tbs::{phy_rate_bps, prbs_needed, resource_elements, tbs_bits};
