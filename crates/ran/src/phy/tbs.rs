//! Transport Block Size determination per 3GPP TS 38.214 §5.1.3.2.
//!
//! "The Transport Block Size depends on the number of allocated PRBs and the
//! wireless physical-layer bit rate" (paper §5.1). This module implements the
//! standard's four-step procedure: resource-element counting, the
//! intermediate information payload `Ninfo`, quantization, and the TBS table
//! lookup for payloads ≤ 3824 bits (Table 5.1.3.2-1) or the formula above it.

use super::mcs::MCS_TABLE;

/// TS 38.214 Table 5.1.3.2-1: valid TBS values (bits) for Ninfo ≤ 3824.
const TBS_TABLE: [u32; 93] = [
    24, 32, 40, 48, 56, 64, 72, 80, 88, 96, 104, 112, 120, 128, 136, 144, 152, 160, 168, 176, 184,
    192, 208, 224, 240, 256, 272, 288, 304, 320, 336, 352, 368, 384, 408, 432, 456, 480, 504, 528,
    552, 576, 608, 640, 672, 704, 736, 768, 808, 848, 888, 928, 984, 1032, 1064, 1128, 1160, 1192,
    1224, 1256, 1288, 1320, 1352, 1416, 1480, 1544, 1608, 1672, 1736, 1800, 1864, 1928, 2024, 2088,
    2152, 2216, 2280, 2408, 2472, 2536, 2600, 2664, 2728, 2792, 2856, 2976, 3104, 3240, 3368, 3496,
    3624, 3752, 3824,
];

/// Subcarriers per PRB.
const N_SC_RB: u32 = 12;
/// OFDM symbols per slot available for the shared channel.
const N_SYMB: u32 = 14;
/// DMRS resource elements per PRB (one full DMRS symbol, type 1).
const N_DMRS: u32 = 12;
/// Per-PRB RE cap applied by the spec after overhead subtraction.
const N_RE_CAP: u32 = 156;

/// Resource elements available in an allocation of `n_prbs`.
pub fn resource_elements(n_prbs: u16) -> u32 {
    let per_prb = (N_SC_RB * N_SYMB - N_DMRS).min(N_RE_CAP);
    per_prb * n_prbs as u32
}

/// Largest PRB allocation covered by the memoized TBS table (273 PRBs =
/// 100 MHz at 30 kHz SCS, the widest carrier modelled).
const TBS_CACHE_PRBS: usize = 273;

/// Transport block size in bits for `mcs` over `n_prbs` PRBs, single layer.
///
/// Returns 0 for an empty allocation. The full `(mcs, n_prbs)` grid up to
/// [`TBS_CACHE_PRBS`] is computed once and memoized — the scheduler reads
/// this several times per slot, and the four-step quantization procedure is
/// all float math.
pub fn tbs_bits(mcs: u8, n_prbs: u16) -> u32 {
    if (n_prbs as usize) <= TBS_CACHE_PRBS {
        static TABLE: std::sync::OnceLock<Vec<u32>> = std::sync::OnceLock::new();
        let table = TABLE.get_or_init(|| {
            let mut t = Vec::with_capacity(MCS_TABLE.len() * (TBS_CACHE_PRBS + 1));
            for mcs in 0..MCS_TABLE.len() as u8 {
                for prbs in 0..=TBS_CACHE_PRBS as u16 {
                    t.push(tbs_bits_uncached(mcs, prbs));
                }
            }
            t
        });
        return table[mcs as usize * (TBS_CACHE_PRBS + 1) + n_prbs as usize];
    }
    tbs_bits_uncached(mcs, n_prbs)
}

fn tbs_bits_uncached(mcs: u8, n_prbs: u16) -> u32 {
    if n_prbs == 0 {
        return 0;
    }
    let entry = MCS_TABLE[mcs as usize];
    let n_re = resource_elements(n_prbs) as f64;
    let n_info = n_re * entry.code_rate() * entry.qm as f64;

    if n_info <= 3824.0 {
        // Step 3: quantize and look up the table.
        let n = ((n_info.log2().floor() as i32) - 6).max(3) as u32;
        let pow = 2u32.pow(n) as f64;
        let n_info_q = (pow * (n_info / pow).floor()).max(24.0) as u32;
        // Smallest table entry ≥ quantized payload.
        *TBS_TABLE
            .iter()
            .find(|&&t| t >= n_info_q)
            .expect("quantized Ninfo ≤ 3824 is covered by the table")
    } else {
        // Step 4: formula-based sizing with code-block segmentation.
        let n = ((n_info - 24.0).log2().floor() as i32 - 5).max(0) as u32;
        let pow = 2u64.pow(n) as f64;
        let n_info_q = (pow * ((n_info - 24.0) / pow).round()).max(3840.0);
        let r = entry.code_rate();
        let c = if r <= 0.25 {
            ((n_info_q + 24.0) / 3816.0).ceil()
        } else if n_info_q > 8424.0 {
            ((n_info_q + 24.0) / 8424.0).ceil()
        } else {
            1.0
        };
        (8.0 * c * ((n_info_q + 24.0) / (8.0 * c)).ceil() - 24.0) as u32
    }
}

/// Number of PRBs needed to carry `bits` at `mcs` (rough inverse of
/// [`tbs_bits`], used by the scheduler to size grants).
pub fn prbs_needed(mcs: u8, bits: u32) -> u16 {
    if bits == 0 {
        return 0;
    }
    let entry = MCS_TABLE[mcs as usize];
    let per_prb = (resource_elements(1) as f64 * entry.code_rate() * entry.qm as f64).max(1.0);
    let est = (bits as f64 / per_prb).ceil() as u16;
    // The quantization can undershoot slightly; fix up by search.
    let mut n = est.max(1);
    while tbs_bits(mcs, n) < bits && n < u16::MAX {
        n += 1;
        if n > est + 8 {
            break; // bits exceed what quantization rounding explains
        }
    }
    n
}

/// Physical-layer bit rate (bits/s) of a sustained allocation, given the slot
/// duration in microseconds.
pub fn phy_rate_bps(mcs: u8, n_prbs: u16, slot_us: u64) -> f64 {
    tbs_bits(mcs, n_prbs) as f64 * 1e6 / slot_us as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table_is_sorted_and_byte_aligned() {
        for w in TBS_TABLE.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(TBS_TABLE.iter().all(|t| t % 8 == 0));
    }

    #[test]
    fn resource_element_counting() {
        // 12*14 - 12 = 156, exactly at the cap.
        assert_eq!(resource_elements(1), 156);
        assert_eq!(resource_elements(10), 1560);
    }

    #[test]
    fn small_allocations_use_table() {
        // MCS 0, 1 PRB: Ninfo = 156 * 0.1172 * 2 ≈ 36.6 → quantized 32 → table 32.
        let t = tbs_bits(0, 1);
        assert!(TBS_TABLE.contains(&t), "got {t}");
        assert!((24..=48).contains(&t));
    }

    #[test]
    fn large_allocation_formula() {
        // MCS 28, 273 PRBs (100 MHz @ 30 kHz): ≈ 236k bits per slot,
        // i.e. ≈ 472 Mbit/s at 0.5 ms slots — the right order for NR.
        let t = tbs_bits(28, 273);
        assert!(t > 200_000 && t < 260_000, "got {t}");
        let rate = phy_rate_bps(28, 273, 500);
        assert!(rate > 4.0e8 && rate < 5.5e8, "rate {rate}");
    }

    #[test]
    fn zero_prbs_zero_bits() {
        assert_eq!(tbs_bits(15, 0), 0);
        assert_eq!(prbs_needed(15, 0), 0);
    }

    #[test]
    fn prbs_needed_is_sufficient() {
        for &bits in &[100u32, 1000, 12_000, 100_000] {
            for &mcs in &[0u8, 5, 10, 20, 28] {
                let n = prbs_needed(mcs, bits);
                assert!(
                    tbs_bits(mcs, n) >= bits || n > 270,
                    "mcs {mcs} bits {bits} → {n} prbs → {} bits",
                    tbs_bits(mcs, n)
                );
            }
        }
    }

    proptest! {
        /// TBS is monotone non-decreasing in PRBs, and in MCS except at the
        /// 16QAM→64QAM table boundary (index 16→17), where the real spec's
        /// spectral efficiency dips slightly.
        #[test]
        fn prop_tbs_monotone(mcs in 0u8..28, prbs in 1u16..270) {
            if mcs != 16 {
                prop_assert!(tbs_bits(mcs + 1, prbs) >= tbs_bits(mcs, prbs));
            } else {
                // Quantization amplifies the SE dip to a few percent.
                let lo = tbs_bits(17, prbs) as f64;
                let hi = tbs_bits(16, prbs) as f64;
                prop_assert!(lo >= hi * 0.95, "16→17 dip larger than spec: {hi} → {lo}");
            }
            prop_assert!(tbs_bits(mcs, prbs + 1) >= tbs_bits(mcs, prbs));
        }

        /// TBS grows roughly linearly with PRBs (within quantization slack).
        #[test]
        fn prop_tbs_roughly_linear(mcs in 0u8..=28, prbs in 4u16..130) {
            let one = tbs_bits(mcs, prbs) as f64;
            let two = tbs_bits(mcs, prbs * 2) as f64;
            prop_assert!(two > one * 1.6, "doubling PRBs should near-double TBS");
            prop_assert!(two < one * 2.4);
        }
    }
}
