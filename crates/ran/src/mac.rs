//! MAC layer: per-slot scheduling, the uplink request–grant procedure,
//! proactive grants, and HARQ.
//!
//! This module implements the mechanisms of paper §5.2 and Fig. 15:
//!
//! * **Downlink**: the gNB sees its own RLC buffer and schedules directly,
//!   subject to PRB contention with cross traffic.
//! * **Uplink**: the request–grant loop — Scheduling Request at the next SR
//!   opportunity, Buffer Status Report piggybacked on every uplink TB, a
//!   grant pipeline delay of `k` slots, and (TDD) waiting for the next U
//!   slot. Together these produce the 5–25 ms uplink scheduling delay and
//!   the intra-frame *delay spread* of Fig. 14.
//! * **Proactive grants** (Mosolabs mode, Fig. 16): small periodic grants
//!   issued before any BSR, which cut first-packet latency but waste
//!   capacity when they go unused and cause over-granting because the BSR
//!   is stale by the time its requested grant arrives.
//! * **HARQ** (Fig. 17): per-process retransmission with a fixed RTT; after
//!   `max_harq_attempts` failures the TB is abandoned to RLC ARQ (Fig. 18).

use rand::Rng;
use simcore::{SimDuration, SimTime};
use telemetry::{DciRecord, Direction};

use crate::channel::Channel;
use crate::frame::FrameStructure;
use crate::phy::{self, OuterLoop};
use crate::rlc::{Pdu, RlcRx, RlcTx, SduDelivery, SegmentPool};

/// Proactive-grant configuration (Mosolabs-style).
#[derive(Debug, Clone)]
pub struct ProactiveGrantConfig {
    /// Interval between proactive grants.
    pub period: SimDuration,
    /// Bytes pre-allocated per proactive grant.
    pub bytes: u32,
}

/// MAC/scheduler configuration of a cell.
#[derive(Debug, Clone)]
pub struct MacConfig {
    /// Cell bandwidth in PRBs.
    pub n_prbs: u16,
    /// Maximum HARQ transmission attempts per TB (including the initial).
    pub max_harq_attempts: u8,
    /// Time from a NACKed attempt to its retransmission.
    pub harq_rtt: SimDuration,
    /// Number of parallel HARQ processes per direction.
    pub n_harq_processes: usize,
    /// Latency from slot start to decoded data being available upstream.
    pub decode_latency: SimDuration,
    /// Period of uplink Scheduling Request opportunities.
    pub sr_period: SimDuration,
    /// Slots between a grant decision (PDCCH) and the granted UL slot (k2
    /// plus gNB processing).
    pub grant_pipeline_slots: u64,
    /// Delay from HARQ abandonment to the RLC retransmission becoming
    /// eligible (status-report round trip). Fig. 18: ≈105 ms total delay.
    pub rlc_status_delay: SimDuration,
    /// MCS cap for the uplink (conservative selection on some cells).
    pub mcs_cap_ul: u8,
    /// MCS cap for the downlink.
    pub mcs_cap_dl: u8,
    /// Extra SINR margin (dB, ≤ 0 conservative) for UL MCS selection.
    pub margin_db_ul: f64,
    /// Extra SINR margin for DL MCS selection.
    pub margin_db_dl: f64,
    /// Below this MCS the scheduler also caps the UE's PRB share
    /// ("the scheduler assigns fewer PRBs to a UE with poor channel
    /// conditions", §5.1.1).
    pub poor_channel_mcs_threshold: u8,
    /// PRB fraction cap applied in poor-channel conditions.
    pub poor_channel_prb_cap: f64,
    /// Proactive grants, if the cell uses them.
    pub proactive_grant: Option<ProactiveGrantConfig>,
    /// Outer-loop link adaptation BLER target.
    pub bler_target: f64,
    /// OLLA down-step in dB.
    pub olla_step_db: f64,
}

impl Default for MacConfig {
    fn default() -> Self {
        MacConfig {
            n_prbs: 51,
            max_harq_attempts: 4,
            harq_rtt: SimDuration::from_millis(10),
            n_harq_processes: 16,
            decode_latency: SimDuration::from_millis(1),
            sr_period: SimDuration::from_millis(5),
            grant_pipeline_slots: 8,
            rlc_status_delay: SimDuration::from_millis(55),
            mcs_cap_ul: phy::MAX_MCS,
            mcs_cap_dl: phy::MAX_MCS,
            margin_db_ul: 0.0,
            margin_db_dl: 0.0,
            poor_channel_mcs_threshold: 6,
            poor_channel_prb_cap: 0.5,
            proactive_grant: None,
            bler_target: 0.1,
            olla_step_db: 0.3,
        }
    }
}

/// An uplink grant pending for a future slot.
///
/// BSR-driven and proactive bytes are tracked separately because only the
/// former count against the gNB's in-flight covered-buffer estimate.
#[derive(Debug, Clone, Copy, Default)]
pub struct Grant {
    /// Bytes granted in response to a Buffer Status Report.
    pub bsr_bytes: u32,
    /// Bytes granted proactively (before/without a BSR).
    pub proactive_bytes: u32,
}

impl Grant {
    /// Total bytes the UE may transmit on this grant.
    pub fn total_bytes(&self) -> u32 {
        self.bsr_bytes + self.proactive_bytes
    }

    /// Whether any part was issued proactively.
    pub fn is_proactive(&self) -> bool {
        self.proactive_bytes > 0
    }
}

/// A scripted window during which HARQ attempts with index below
/// `fail_attempts` are forced to fail (figure-regeneration harness).
#[derive(Debug, Clone, Copy)]
pub struct HarqOverride {
    /// Window start.
    pub from: SimTime,
    /// Window end.
    pub to: SimTime,
    /// Attempts `< fail_attempts` fail deterministically; e.g. 1 forces one
    /// retransmission (Fig. 17), `max_harq_attempts` forces RLC ARQ (Fig. 18).
    pub fail_attempts: u8,
}

#[derive(Debug, Clone)]
struct HarqProcess {
    pdu: Pdu,
    mcs: u8,
    n_prbs: u16,
    tbs_bits: u32,
    /// Transmissions performed so far (1 after the initial attempt).
    attempts_done: u8,
    next_tx_at: SimTime,
}

/// Everything a direction's slot processing produced.
#[derive(Debug, Default)]
pub struct SlotOutputs {
    /// Completed SDUs released by RLC (in order), with release times.
    pub deliveries: Vec<SduDelivery>,
    /// DCI records emitted this slot.
    pub dci: Vec<DciRecord>,
    /// RLC ARQ retransmissions initiated this slot: `(eligible_at, sn)`.
    pub rlc_retx: Vec<(SimTime, u32)>,
}

impl SlotOutputs {
    /// Empties all three output vectors, keeping their capacity — the cell
    /// frontend reuses one `SlotOutputs` across every slot it processes.
    pub fn clear(&mut self) {
        self.deliveries.clear();
        self.dci.clear();
        self.rlc_retx.clear();
    }
}

/// Per-direction link state: RLC entities, channel, HARQ, grant machinery.
#[derive(Debug)]
pub struct LinkDir {
    /// Which direction this link carries.
    pub dir: Direction,
    /// Transmit-side RLC entity (UE for UL, gNB for DL).
    pub rlc_tx: RlcTx,
    /// Receive-side RLC entity.
    pub rlc_rx: RlcRx,
    /// SINR process for this direction.
    pub channel: Channel,
    olla: OuterLoop,
    harq: Vec<Option<HarqProcess>>,
    harq_overrides: Vec<HarqOverride>,
    /// Recycled segment buffers shared by this direction's RLC tx/rx pair.
    seg_pool: SegmentPool,
    // --- Uplink grant machinery (unused for DL) ---
    /// Pending grants as a slot-sorted vec: a handful of near-future entries
    /// at most, so binary search + memmove beat a node-allocating map.
    pending_grants: Vec<(u64, Grant)>,
    gnb_known_buffer: u64,
    granted_inflight: u64,
    next_sr_at: SimTime,
    next_proactive_at: SimTime,
    next_grantable_slot: u64,
    /// Most recent SINR sample (telemetry for the rate-gap plots).
    pub last_sinr_db: f64,
    /// Most recent MCS used for a new transmission.
    pub last_mcs: u8,
}

impl LinkDir {
    /// Creates link state for one direction.
    pub fn new(dir: Direction, channel: Channel, mac: &MacConfig) -> Self {
        LinkDir {
            dir,
            rlc_tx: RlcTx::new(),
            rlc_rx: RlcRx::new(),
            channel,
            olla: OuterLoop::new(mac.bler_target, mac.olla_step_db),
            harq: vec![None; mac.n_harq_processes],
            harq_overrides: Vec::new(),
            seg_pool: SegmentPool::default(),
            pending_grants: Vec::new(),
            gnb_known_buffer: 0,
            granted_inflight: 0,
            next_sr_at: SimTime::ZERO,
            next_proactive_at: SimTime::ZERO,
            next_grantable_slot: 0,
            last_sinr_db: 0.0,
            last_mcs: 0,
        }
    }

    /// Registers a scripted HARQ-failure window.
    pub fn add_harq_override(&mut self, ov: HarqOverride) {
        self.harq_overrides.push(ov);
    }

    fn forced_fail(&self, now: SimTime, attempt_idx: u8) -> bool {
        self.harq_overrides
            .iter()
            .any(|ov| now >= ov.from && now < ov.to && attempt_idx < ov.fail_attempts)
    }

    fn free_harq_slot(&self) -> Option<usize> {
        self.harq.iter().position(Option::is_none)
    }

    /// Abandons all in-flight HARQ processes, rescheduling their payloads as
    /// immediately-eligible RLC retransmissions (RRC re-establishment path;
    /// sequence numbers are preserved so the receiver's reorder state stays
    /// consistent).
    pub fn reset_for_rrc(&mut self, now: SimTime) {
        for slot in &mut self.harq {
            if let Some(p) = slot.take() {
                self.rlc_tx.schedule_retx(now, p.pdu);
            }
        }
        self.pending_grants.clear();
        self.gnb_known_buffer = 0;
        self.granted_inflight = 0;
        self.next_sr_at = now;
        self.next_grantable_slot = 0;
    }

    /// Whether any HARQ process is active (used by drain logic in tests).
    pub fn harq_active(&self) -> bool {
        self.harq.iter().any(Option::is_some)
    }

    /// Mutable access to the grant pending for `slot`, inserting a default
    /// entry at its sorted position if absent.
    fn grant_entry(&mut self, slot: u64) -> &mut Grant {
        let pos = self.pending_grants.partition_point(|&(s, _)| s < slot);
        if self.pending_grants.get(pos).is_none_or(|&(s, _)| s != slot) {
            self.pending_grants.insert(pos, (slot, Grant::default()));
        }
        &mut self.pending_grants[pos].1
    }

    /// Removes and returns the grant pending for exactly `slot`.
    fn take_grant(&mut self, slot: u64) -> Option<Grant> {
        let pos = self.pending_grants.partition_point(|&(s, _)| s < slot);
        if self
            .pending_grants
            .get(pos)
            .is_some_and(|&(s, _)| s == slot)
        {
            Some(self.pending_grants.remove(pos).1)
        } else {
            None
        }
    }

    /// Pending grant bytes not yet used (uplink).
    pub fn granted_inflight_bytes(&self) -> u64 {
        self.granted_inflight
    }
}

/// Uplink Scheduling Request check — run every slot on the UE side.
///
/// If the UE holds data the gNB does not know about and an SR opportunity
/// has arrived, the gNB learns the buffer status (SR + first BSR).
pub fn check_sr(link: &mut LinkDir, now: SimTime, mac: &MacConfig) {
    debug_assert_eq!(link.dir, Direction::Uplink);
    let buffered = link.rlc_tx.buffer_bytes();
    if buffered > 0
        && link.gnb_known_buffer == 0
        && link.granted_inflight == 0
        && now >= link.next_sr_at
    {
        link.gnb_known_buffer = buffered;
        // Next opportunity on the SR grid.
        let period = mac.sr_period.as_micros();
        let next = (now.as_micros() / period + 1) * period;
        link.next_sr_at = SimTime::from_micros(next);
    }
}

/// Uplink grant issuance — run in every PDCCH-capable (DL-serving) slot.
pub fn issue_ul_grants(
    link: &mut LinkDir,
    frame: &FrameStructure,
    mac: &MacConfig,
    slot: u64,
    now: SimTime,
) {
    debug_assert_eq!(link.dir, Direction::Uplink);

    // Proactive grants: periodic, independent of BSR state.
    if let Some(pg) = &mac.proactive_grant {
        if now >= link.next_proactive_at {
            let target =
                frame.next_serving_slot(slot + mac.grant_pipeline_slots, Direction::Uplink);
            link.grant_entry(target).proactive_bytes += pg.bytes;
            link.next_proactive_at = now + pg.period;
        }
    }

    // BSR-driven grants: cover buffer the gNB knows about and has not yet
    // granted; one grant (TB) per uplink slot.
    let uncovered = link.gnb_known_buffer.saturating_sub(link.granted_inflight);
    if uncovered == 0 {
        return;
    }
    let earliest = frame.next_serving_slot(slot + mac.grant_pipeline_slots, Direction::Uplink);
    let target = if link.next_grantable_slot > earliest {
        frame.next_serving_slot(link.next_grantable_slot, Direction::Uplink)
    } else {
        earliest
    };
    // Grant at most one max-size TB based on the gNB's channel estimate.
    let mcs_est = phy::select_mcs(
        link.last_sinr_db,
        link.olla.offset_db(),
        mac.margin_db_ul,
        mac.mcs_cap_ul,
    );
    let max_tb_bytes = (phy::tbs_bits(mcs_est, mac.n_prbs) / 8).max(64);
    let bytes = uncovered.min(max_tb_bytes as u64) as u32;
    link.grant_entry(target).bsr_bytes += bytes;
    link.granted_inflight += bytes as u64;
    link.next_grantable_slot = target + 1;
}

/// Processes one serving slot for a direction: HARQ retransmissions first,
/// then (capacity permitting) one new transport block.
///
/// `hard_reserved_prbs` are PRBs already granted to other UEs this slot by
/// earlier positions in the cell's allocation rotation — they shrink both
/// the retransmission room and the new-TX budget. `cross_prbs` is the
/// scalar cross-traffic aggregate's share (pre-rounded by the caller); like
/// a real scheduler's best-effort background, it yields to retransmissions
/// and only constrains new data. `rnti` is this UE's current identifier.
///
/// Returns the PRBs this UE consumed, so the caller can accumulate the
/// rotation's running `hard_reserved_prbs`.
#[allow(clippy::too_many_arguments)]
pub fn process_slot<R: Rng + ?Sized>(
    link: &mut LinkDir,
    frame: &FrameStructure,
    mac: &MacConfig,
    slot: u64,
    rnti: u32,
    hard_reserved_prbs: u32,
    cross_prbs: u32,
    rng_channel: &mut R,
    rng_harq: &mut R,
    out: &mut SlotOutputs,
) -> u32 {
    let now = frame.slot_start(slot);
    let sinr = link.channel.sinr_db(now, rng_channel);
    link.last_sinr_db = sinr;
    let total = mac.n_prbs as u32;
    let mut used_prbs = 0u32;

    // ---- 1. HARQ retransmissions due in this slot ----
    for i in 0..link.harq.len() {
        let due = link.harq[i].as_ref().is_some_and(|p| p.next_tx_at <= now);
        if !due {
            continue;
        }
        let p = link.harq[i].as_mut().expect("checked above");
        if hard_reserved_prbs + used_prbs + p.n_prbs as u32 > total {
            // No room this slot; retry next serving slot.
            p.next_tx_at = frame.slot_start(frame.next_serving_slot(slot + 1, link.dir));
            continue;
        }
        used_prbs += p.n_prbs as u32;
        let retx_idx = p.attempts_done;
        let fail = link
            .harq_overrides
            .iter()
            .any(|ov| now >= ov.from && now < ov.to && retx_idx < ov.fail_attempts)
            || rng_harq.gen::<f64>() < phy::fail_probability(sinr, p.mcs, retx_idx);
        out.dci.push(DciRecord {
            ts: now,
            rnti,
            direction: link.dir,
            is_target_ue: true,
            n_prbs: p.n_prbs,
            mcs: p.mcs,
            tbs_bits: p.tbs_bits,
            harq_id: i as u8,
            harq_retx_idx: retx_idx,
            decoded_ok: !fail,
            proactive: false,
            used_bits: p.pdu.bytes * 8,
        });
        if !fail {
            let p = link.harq[i].take().expect("process present");
            link.rlc_rx.receive_into(
                now + mac.decode_latency,
                p.pdu,
                &mut out.deliveries,
                &mut link.seg_pool,
            );
        } else {
            p.attempts_done += 1;
            if p.attempts_done >= mac.max_harq_attempts {
                let p = link.harq[i].take().expect("process present");
                let eligible = now + mac.rlc_status_delay;
                out.rlc_retx.push((eligible, p.pdu.sn));
                link.rlc_tx.schedule_retx(eligible, p.pdu);
            } else {
                p.next_tx_at = now + mac.harq_rtt;
            }
        }
    }

    // ---- 2. One new transmission, if capacity and data allow ----
    let grant = match link.dir {
        Direction::Uplink => {
            let g = link.take_grant(slot);
            if let Some(g) = &g {
                // Only BSR-driven bytes were counted as covering the buffer.
                link.granted_inflight = link.granted_inflight.saturating_sub(g.bsr_bytes as u64);
            }
            g
        }
        Direction::Downlink => None,
    };
    let may_send_new = match link.dir {
        Direction::Uplink => grant.is_some(),
        Direction::Downlink => true,
    };
    if !may_send_new {
        return used_prbs;
    }

    let mut budget = total
        .saturating_sub(cross_prbs)
        .saturating_sub(hard_reserved_prbs)
        .saturating_sub(used_prbs);
    let (cap, margin) = match link.dir {
        Direction::Uplink => (mac.mcs_cap_ul, mac.margin_db_ul),
        Direction::Downlink => (mac.mcs_cap_dl, mac.margin_db_dl),
    };
    let mcs = phy::select_mcs(sinr, link.olla.offset_db(), margin, cap);
    link.last_mcs = mcs;
    if mcs < mac.poor_channel_mcs_threshold {
        budget = budget.min((total as f64 * mac.poor_channel_prb_cap) as u32);
    }

    let buffered = link.rlc_tx.buffer_bytes();
    let allowance_bytes = match (&grant, link.dir) {
        (Some(g), _) => g.total_bytes(),
        (None, Direction::Downlink) => buffered.min(u32::MAX as u64) as u32,
        (None, Direction::Uplink) => 0,
    };

    if budget == 0 {
        // Grant existed but no PRBs left (cross traffic ate them); the data
        // stays buffered — this *is* the delay mechanism of Fig. 13.
        if link.dir == Direction::Uplink {
            refresh_bsr(link);
        }
        return used_prbs;
    }

    // Size the allocation: enough PRBs for min(data, grant), capped by budget.
    let want_bytes = allowance_bytes.min(buffered.min(u32::MAX as u64) as u32);
    let max_tb_bytes = phy::tbs_bits(mcs, budget as u16) / 8;
    let retx_pending = link.rlc_tx.retx_due(now);
    if want_bytes == 0 && !retx_pending {
        // Nothing to send. An unused proactive grant is still logged — the
        // wasted-bandwidth bars of Fig. 16.
        if let Some(g) = grant {
            if g.is_proactive() {
                let prbs = phy::prbs_needed(mcs, g.total_bytes() * 8)
                    .min(budget as u16)
                    .max(1);
                out.dci.push(DciRecord {
                    ts: now,
                    rnti,
                    direction: link.dir,
                    is_target_ue: true,
                    n_prbs: prbs,
                    mcs,
                    tbs_bits: phy::tbs_bits(mcs, prbs),
                    harq_id: u8::MAX,
                    harq_retx_idx: 0,
                    decoded_ok: true,
                    proactive: true,
                    used_bits: 0,
                });
                // The wasted grant still occupies spectrum.
                used_prbs += prbs as u32;
            }
        }
        if link.dir == Direction::Uplink {
            refresh_bsr(link);
        }
        return used_prbs;
    }

    let Some(hp) = link.free_harq_slot() else {
        return used_prbs; // all HARQ processes busy; retry next slot
    };

    let tb_limit_bytes = want_bytes
        .min(max_tb_bytes)
        .max(if retx_pending { 1 } else { 0 });
    let Some(pdu) = link
        .rlc_tx
        .build_pdu_pooled(now, tb_limit_bytes, &mut link.seg_pool)
    else {
        if link.dir == Direction::Uplink {
            refresh_bsr(link);
        }
        return used_prbs;
    };

    // PRBs actually needed for the payload (retx PDUs keep their size).
    let payload_bits = pdu.bytes * 8;
    let n_prbs = phy::prbs_needed(mcs, payload_bits).min(mac.n_prbs).max(1);
    // Grant nominal size may exceed payload: that gap is over-granting waste
    // (the unfilled green bars of Fig. 16).
    let nominal_bits = match &grant {
        Some(g) => phy::tbs_bits(
            mcs,
            phy::prbs_needed(mcs, g.total_bytes() * 8)
                .min(mac.n_prbs)
                .max(n_prbs),
        ),
        None => phy::tbs_bits(mcs, n_prbs),
    };
    let tbs = phy::tbs_bits(mcs, n_prbs).max(payload_bits);

    let fail =
        link.forced_fail(now, 0) || rng_harq.gen::<f64>() < phy::fail_probability(sinr, mcs, 0);
    link.olla.observe(!fail);
    used_prbs += n_prbs as u32;
    out.dci.push(DciRecord {
        ts: now,
        rnti,
        direction: link.dir,
        is_target_ue: true,
        n_prbs,
        mcs,
        tbs_bits: nominal_bits.max(tbs),
        harq_id: hp as u8,
        harq_retx_idx: 0,
        decoded_ok: !fail,
        proactive: grant.as_ref().is_some_and(|g| g.is_proactive()),
        used_bits: payload_bits,
    });

    if !fail {
        link.rlc_rx.receive_into(
            now + mac.decode_latency,
            pdu,
            &mut out.deliveries,
            &mut link.seg_pool,
        );
    } else if mac.max_harq_attempts <= 1 {
        // HARQ budget exhausted by the initial attempt: straight to RLC ARQ.
        let eligible = now + mac.rlc_status_delay;
        out.rlc_retx.push((eligible, pdu.sn));
        link.rlc_tx.schedule_retx(eligible, pdu);
    } else {
        link.harq[hp] = Some(HarqProcess {
            pdu,
            mcs,
            n_prbs,
            tbs_bits: tbs,
            attempts_done: 1,
            next_tx_at: now + mac.harq_rtt,
        });
    }

    if link.dir == Direction::Uplink {
        refresh_bsr(link);
    }
    used_prbs
}

/// BSR piggyback: after an uplink transmission opportunity the gNB's view of
/// the UE buffer is refreshed to its true current value.
fn refresh_bsr(link: &mut LinkDir) {
    link.gnb_known_buffer = link.rlc_tx.buffer_bytes();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Channel, ChannelConfig};
    use crate::rlc::Sdu;
    use simcore::{rng_for, RngStream};

    fn good_channel() -> Channel {
        Channel::new(ChannelConfig {
            base_sinr_db: 25.0,
            shadow_sigma_db: 0.1,
            ..Default::default()
        })
    }

    fn fdd() -> FrameStructure {
        FrameStructure::fdd(SimDuration::from_millis(1))
    }

    /// Drives DL slots until the queue drains; returns (deliveries, dci).
    fn drain_dl(
        link: &mut LinkDir,
        frame: &FrameStructure,
        mac: &MacConfig,
        max_slots: u64,
    ) -> SlotOutputs {
        let mut rng_ch = rng_for(1, RngStream::ChannelDl);
        let mut rng_harq = rng_for(1, RngStream::HarqDecode);
        let mut out = SlotOutputs::default();
        for slot in 0..max_slots {
            process_slot(
                link,
                frame,
                mac,
                slot,
                4242,
                0,
                0,
                &mut rng_ch,
                &mut rng_harq,
                &mut out,
            );
            // buffer_bytes includes pending RLC retransmissions.
            if link.rlc_tx.buffer_bytes() == 0 && !link.harq_active() {
                break;
            }
        }
        out
    }

    #[test]
    fn dl_delivers_packet_quickly_on_good_channel() {
        let mac = MacConfig {
            n_prbs: 100,
            ..Default::default()
        };
        let frame = fdd();
        let mut link = LinkDir::new(Direction::Downlink, good_channel(), &mac);
        link.rlc_tx.enqueue(Sdu {
            id: 1,
            size_bytes: 1200,
        });
        let out = drain_dl(&mut link, &frame, &mac, 100);
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(out.deliveries[0].sdu_id, 1);
        // One slot + decode latency.
        assert!(out.deliveries[0].released_at.as_millis() <= 3);
        assert!(out.dci.iter().all(|d| d.decoded_ok));
    }

    #[test]
    fn ul_requires_grant_pipeline() {
        let mac = MacConfig {
            n_prbs: 100,
            grant_pipeline_slots: 8,
            ..Default::default()
        };
        let frame = fdd();
        let mut link = LinkDir::new(Direction::Uplink, good_channel(), &mac);
        link.rlc_tx.enqueue(Sdu {
            id: 7,
            size_bytes: 1200,
        });
        let mut rng_ch = rng_for(2, RngStream::ChannelUl);
        let mut rng_harq = rng_for(2, RngStream::HarqDecode);
        let mut out = SlotOutputs::default();
        for slot in 0..100 {
            let now = frame.slot_start(slot);
            check_sr(&mut link, now, &mac);
            issue_ul_grants(&mut link, &frame, &mac, slot, now);
            process_slot(
                &mut link,
                &frame,
                &mac,
                slot,
                1,
                0,
                0,
                &mut rng_ch,
                &mut rng_harq,
                &mut out,
            );
            if !out.deliveries.is_empty() {
                break;
            }
        }
        assert_eq!(out.deliveries.len(), 1);
        let d = out.deliveries[0].released_at;
        // Must reflect the request-grant latency: > pipeline slots, well under 50 ms.
        assert!(d.as_millis() >= mac.grant_pipeline_slots, "{d:?}");
        assert!(d.as_millis() < 50, "{d:?}");
    }

    #[test]
    fn forced_harq_failure_adds_one_rtt() {
        let mac = MacConfig {
            n_prbs: 100,
            harq_rtt: SimDuration::from_millis(10),
            ..Default::default()
        };
        let frame = fdd();

        // Baseline: no failure.
        let mut link = LinkDir::new(Direction::Downlink, good_channel(), &mac);
        link.rlc_tx.enqueue(Sdu {
            id: 1,
            size_bytes: 800,
        });
        let base = drain_dl(&mut link, &frame, &mac, 200).deliveries[0].released_at;

        // One forced initial failure.
        let mut link = LinkDir::new(Direction::Downlink, good_channel(), &mac);
        link.add_harq_override(HarqOverride {
            from: SimTime::ZERO,
            to: SimTime::from_millis(5),
            fail_attempts: 1,
        });
        link.rlc_tx.enqueue(Sdu {
            id: 1,
            size_bytes: 800,
        });
        let delayed = drain_dl(&mut link, &frame, &mac, 200).deliveries[0].released_at;

        let inflation = delayed.saturating_since(base).as_millis();
        assert!(
            (9..=12).contains(&inflation),
            "HARQ should add ≈ one RTT, got {inflation} ms"
        );
    }

    #[test]
    fn harq_exhaustion_falls_to_rlc_with_status_delay() {
        let mac = MacConfig {
            n_prbs: 100,
            harq_rtt: SimDuration::from_millis(10),
            rlc_status_delay: SimDuration::from_millis(55),
            ..Default::default()
        };
        let frame = fdd();
        let mut link = LinkDir::new(Direction::Downlink, good_channel(), &mac);
        // Fail the initial + all HARQ retx (4 attempts) within the window.
        link.add_harq_override(HarqOverride {
            from: SimTime::ZERO,
            to: SimTime::from_millis(45),
            fail_attempts: 4,
        });
        link.rlc_tx.enqueue(Sdu {
            id: 1,
            size_bytes: 800,
        });
        let out = drain_dl(&mut link, &frame, &mac, 500);
        assert_eq!(out.rlc_retx.len(), 1, "exactly one RLC ARQ event");
        assert_eq!(out.deliveries.len(), 1);
        let d = out.deliveries[0].released_at.as_millis();
        // initial(0) + 3 retx (10,20,30) + status 55 ≈ 85+ ms, ≈105 with slack.
        assert!((80..=130).contains(&d), "RLC recovery delay {d} ms");
    }

    #[test]
    fn hol_blocking_releases_burst_together() {
        let mac = MacConfig {
            n_prbs: 20, // small TBs → several PDUs
            harq_rtt: SimDuration::from_millis(10),
            rlc_status_delay: SimDuration::from_millis(55),
            ..Default::default()
        };
        let frame = fdd();
        let mut link = LinkDir::new(Direction::Downlink, good_channel(), &mac);
        // The first PDU dies through all four HARQ attempts (the window must
        // cover its retransmissions at +10/+20/+30 ms); later PDUs decode
        // fine but must wait behind it.
        link.add_harq_override(HarqOverride {
            from: SimTime::ZERO,
            to: SimTime::from_millis(31),
            fail_attempts: 4,
        });
        for id in 0..20 {
            link.rlc_tx.enqueue(Sdu {
                id,
                size_bytes: 1000,
            });
        }
        let out = drain_dl(&mut link, &frame, &mac, 2000);
        assert_eq!(out.deliveries.len(), 20);
        // Packet 0 blocked until RLC retx; a burst of packets releases at the
        // same instant as packet 0 (identical reception times, Fig. 18).
        let t0 = out
            .deliveries
            .iter()
            .find(|d| d.sdu_id == 0)
            .unwrap()
            .released_at;
        let same = out
            .deliveries
            .iter()
            .filter(|d| d.released_at == t0)
            .count();
        assert!(same >= 5, "HoL release burst too small: {same}");
        assert!(t0.as_millis() >= 80);
    }

    #[test]
    fn cross_traffic_starves_target_ue() {
        let mac = MacConfig {
            n_prbs: 50,
            ..Default::default()
        };
        let frame = fdd();
        let mut link = LinkDir::new(Direction::Downlink, good_channel(), &mac);
        let mut rng_ch = rng_for(3, RngStream::ChannelDl);
        let mut rng_harq = rng_for(3, RngStream::HarqDecode);
        // Enqueue a steady 5 Mbit/s for 200 ms; cross traffic takes 96 % of PRBs.
        let mut out = SlotOutputs::default();
        for slot in 0..200u64 {
            if slot % 10 == 0 {
                link.rlc_tx.enqueue(Sdu {
                    id: slot,
                    size_bytes: 6250,
                });
            }
            process_slot(
                &mut link,
                &frame,
                &mac,
                slot,
                1,
                0,
                48, // 96 % of the 50-PRB carrier
                &mut rng_ch,
                &mut rng_harq,
                &mut out,
            );
        }
        // Severely constrained: buffer must have built up.
        assert!(
            link.rlc_tx.buffer_bytes() > 20_000,
            "buffer {} should grow under cross traffic",
            link.rlc_tx.buffer_bytes()
        );
    }

    #[test]
    fn proactive_grants_emit_waste_when_unused() {
        let mac = MacConfig {
            n_prbs: 50,
            proactive_grant: Some(ProactiveGrantConfig {
                period: SimDuration::from_millis(5),
                bytes: 1000,
            }),
            ..Default::default()
        };
        let frame = fdd();
        let mut link = LinkDir::new(Direction::Uplink, good_channel(), &mac);
        let mut rng_ch = rng_for(4, RngStream::ChannelUl);
        let mut rng_harq = rng_for(4, RngStream::HarqDecode);
        let mut out = SlotOutputs::default();
        for slot in 0..100 {
            let now = frame.slot_start(slot);
            check_sr(&mut link, now, &mac);
            issue_ul_grants(&mut link, &frame, &mac, slot, now);
            process_slot(
                &mut link,
                &frame,
                &mac,
                slot,
                1,
                0,
                0,
                &mut rng_ch,
                &mut rng_harq,
                &mut out,
            );
        }
        // UE had nothing to send: proactive grants logged with used_bits = 0.
        let wasted: Vec<_> = out
            .dci
            .iter()
            .filter(|d| d.proactive && d.used_bits == 0)
            .collect();
        assert!(
            wasted.len() >= 10,
            "wasted proactive grants: {}",
            wasted.len()
        );
    }

    #[test]
    fn rrc_reset_preserves_data() {
        let mac = MacConfig {
            n_prbs: 100,
            ..Default::default()
        };
        let frame = fdd();
        let mut link = LinkDir::new(Direction::Downlink, good_channel(), &mac);
        // Force a failure so a HARQ process is in flight, then reset.
        link.add_harq_override(HarqOverride {
            from: SimTime::ZERO,
            to: SimTime::from_millis(1),
            fail_attempts: 1,
        });
        link.rlc_tx.enqueue(Sdu {
            id: 1,
            size_bytes: 500,
        });
        let mut rng_ch = rng_for(5, RngStream::ChannelDl);
        let mut rng_harq = rng_for(5, RngStream::HarqDecode);
        let mut out = SlotOutputs::default();
        process_slot(
            &mut link,
            &frame,
            &mac,
            0,
            1,
            0,
            0,
            &mut rng_ch,
            &mut rng_harq,
            &mut out,
        );
        assert!(link.harq_active());
        link.reset_for_rrc(SimTime::from_millis(5));
        assert!(!link.harq_active());
        // Data recoverable: drain delivers the packet.
        let out = drain_dl(&mut link, &frame, &mac, 300);
        assert_eq!(out.deliveries.len(), 1);
    }
}
