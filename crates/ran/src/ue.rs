//! Scripted traffic UEs and the structure-of-arrays per-UE state table.
//!
//! The paper's operator traces come from cells where dozens of UEs contend
//! for one PRB budget: neighbor-load spikes and scheduler starvation are
//! *cross-UE* phenomena. [`CellUeTable`] holds the per-UE PHY/MAC state of
//! every scripted (cross-traffic) UE in flat parallel arrays, and the cell's
//! slot loop sweeps them in three passes per slot — arrivals, CQI→MCS link
//! adaptation over the memoized PHY tables, and grant allocation against the
//! shared PRB budget — instead of ticking one object per UE.
//!
//! Scripted UEs are deliberately lighter than the diagnosed (experiment)
//! UEs: their payloads are synthetic byte counts, so the table tracks RLC
//! *queue depth* rather than segmented SDUs, and one stop-and-wait HARQ lane
//! per direction rather than a full process pool. What the detector sees of
//! them — their DCI footprint (PRBs, MCS, retransmissions) — is exact; what
//! nobody observes (their payload contents) is elided. All of their
//! randomness is counter-based (hashed from `(seed, ue, slot)`), so the
//! table's draws never perturb the diagnosed UEs' RNG streams and any slot
//! can be evaluated independently of evaluation order.

use simcore::{SimDuration, SimTime};
use telemetry::{DciRecord, Direction};

use crate::frame::FrameStructure;
use crate::mac::MacConfig;
use crate::phy;

/// RNTI of scripted traffic UE `i` is `TRAFFIC_RNTI_BASE + i`: distinct from
/// the diagnosed UEs (17 435 + re-establishment chain, always < 60 000 but
/// seeded far away) and from the scalar cross-traffic processes (30 000+).
pub const TRAFFIC_RNTI_BASE: u32 = 20_000;

/// Tag for telemetry not attributable to any diagnosed UE (scripted traffic
/// UEs and the scalar cross-traffic aggregate).
pub const UE_NONE: u32 = u32::MAX;

/// Offered-load shape of one scripted UE in one direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficPattern {
    /// No traffic in this direction.
    Idle,
    /// Constant bitrate: `bitrate_bps` delivered as `packet_bytes` packets.
    Cbr {
        /// Offered load in bits per second.
        bitrate_bps: u64,
        /// Arrival granularity (bytes enqueued at a time).
        packet_bytes: u32,
    },
    /// On/off (bursty) source: CBR at `bitrate_bps` during the on-phase of
    /// each `period`, silent otherwise.
    OnOff {
        /// Cycle length.
        period: SimDuration,
        /// Fraction of the period the source is on (0–1).
        duty: f64,
        /// Offered load while on, in bits per second.
        bitrate_bps: u64,
        /// Arrival granularity (bytes enqueued at a time).
        packet_bytes: u32,
    },
}

impl TrafficPattern {
    /// Bits offered during a slot starting at `now` (phase-shifted per UE so
    /// a fleet of identical OnOff sources does not beat in lockstep).
    fn offered_bits(&self, now: SimTime, dt: SimDuration, phase: SimDuration) -> f64 {
        match *self {
            TrafficPattern::Idle => 0.0,
            TrafficPattern::Cbr { bitrate_bps, .. } => {
                bitrate_bps as f64 * dt.as_micros() as f64 / 1e6
            }
            TrafficPattern::OnOff {
                period,
                duty,
                bitrate_bps,
                ..
            } => {
                let p = period.as_micros().max(1);
                let pos = (now.as_micros() + phase.as_micros()) % p;
                if (pos as f64) < duty * p as f64 {
                    bitrate_bps as f64 * dt.as_micros() as f64 / 1e6
                } else {
                    0.0
                }
            }
        }
    }

    /// Arrival granularity in bytes (0 when idle).
    fn packet_bytes(&self) -> u32 {
        match *self {
            TrafficPattern::Idle => 0,
            TrafficPattern::Cbr { packet_bytes, .. }
            | TrafficPattern::OnOff { packet_bytes, .. } => packet_bytes,
        }
    }
}

/// Configuration of one scripted traffic UE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficUeConfig {
    /// Uplink offered load.
    pub ul: TrafficPattern,
    /// Downlink offered load.
    pub dl: TrafficPattern,
    /// SINR offset relative to the cell's per-direction base (places the UE
    /// nearer or farther than the diagnosed UEs).
    pub sinr_offset_db: f64,
}

impl TrafficUeConfig {
    /// A downlink-heavy streaming-style UE.
    pub fn dl_streaming(bitrate_bps: u64) -> Self {
        TrafficUeConfig {
            ul: TrafficPattern::Cbr {
                bitrate_bps: bitrate_bps / 20,
                packet_bytes: 200,
            },
            dl: TrafficPattern::Cbr {
                bitrate_bps,
                packet_bytes: 1300,
            },
            sinr_offset_db: 0.0,
        }
    }

    /// A symmetric bursty UE (web-browsing-like).
    pub fn bursty(bitrate_bps: u64, period: SimDuration, duty: f64) -> Self {
        let on_off = |rate: u64| TrafficPattern::OnOff {
            period,
            duty,
            bitrate_bps: rate,
            packet_bytes: 1200,
        };
        TrafficUeConfig {
            ul: on_off(bitrate_bps / 4),
            dl: on_off(bitrate_bps),
            sinr_offset_db: 0.0,
        }
    }

    /// Moves the UE's channel by `db` relative to the cell base.
    pub fn with_sinr_offset(mut self, db: f64) -> Self {
        self.sinr_offset_db = db;
        self
    }
}

/// A deterministic mixed pool of `n` scripted UEs: a blend of DL streaming,
/// bursty, and uplink-heavy sources at varied SINR offsets, keyed only by
/// the UE index so the same `n` always yields the same pool.
pub fn traffic_mix(n: usize) -> Vec<TrafficUeConfig> {
    (0..n)
        .map(|i| {
            let offset = ((i % 7) as f64) - 3.0; // −3 … +3 dB ring positions
            match i % 4 {
                0 => TrafficUeConfig::dl_streaming(2_000_000 + 250_000 * (i % 5) as u64)
                    .with_sinr_offset(offset),
                1 => TrafficUeConfig::bursty(
                    3_000_000,
                    SimDuration::from_millis(400 + 100 * (i % 3) as u64),
                    0.4,
                )
                .with_sinr_offset(offset),
                2 => TrafficUeConfig {
                    ul: TrafficPattern::Cbr {
                        bitrate_bps: 1_200_000,
                        packet_bytes: 1000,
                    },
                    dl: TrafficPattern::Cbr {
                        bitrate_bps: 400_000,
                        packet_bytes: 600,
                    },
                    sinr_offset_db: offset,
                },
                _ => TrafficUeConfig::dl_streaming(800_000).with_sinr_offset(offset),
            }
        })
        .collect()
}

/// Counter-based uniform draw in `[0, 1)`: SplitMix64 over a combined key.
/// Scripted-UE randomness is hashed, not streamed, so evaluation order and
/// UE count never shift anyone else's draws.
fn hash01(seed: u64, ue: u32, dir: Direction, counter: u64, salt: u64) -> f64 {
    let dir_bit = match dir {
        Direction::Uplink => 0u64,
        Direction::Downlink => 1u64,
    };
    let mut z = seed
        ^ (ue as u64).wrapping_mul(0xA076_1D64_78BD_642F)
        ^ dir_bit.wrapping_mul(0xE703_7ED1_A0B4_28DB)
        ^ counter.wrapping_mul(0x8EBC_6AF0_9C88_C6E3)
        ^ salt.wrapping_mul(0x5899_65CC_7537_4CC3);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

const SALT_SHADOW: u64 = 1;
const SALT_HARQ: u64 = 2;

/// Shadow-fading bucket length for scripted UEs (mirrors
/// `ChannelConfig::update_interval`'s default).
const SHADOW_BUCKET_US: u64 = 10_000;

/// Per-direction column plane index.
fn dix(dir: Direction) -> usize {
    match dir {
        Direction::Uplink => 0,
        Direction::Downlink => 1,
    }
}

/// Structure-of-arrays state for every scripted traffic UE of a cell.
///
/// All columns are parallel: index `i` across every array is UE `i`. Both
/// directions' dynamic state live in two planes (`[Vec; 2]`, UL = 0).
/// The table is leased from the session arena's free list and reconfigured
/// per session, so steady-state sweeps allocate nothing for it.
#[derive(Debug, Default)]
pub struct CellUeTable {
    seed: u64,
    // ---- static columns (from TrafficUeConfig) ----
    pattern: [Vec<TrafficPattern>; 2],
    sinr_offset_db: Vec<f64>,
    phase: Vec<SimDuration>,
    // ---- dynamic columns ----
    /// RLC transmit-queue depth in bytes.
    queue_bytes: [Vec<u64>; 2],
    /// Fractional-bit arrival accumulator.
    credit_bits: [Vec<f64>; 2],
    /// Latest per-UE SINR estimate (link-adaptation pass output).
    sinr_db: [Vec<f64>; 2],
    /// Latest per-UE MCS selection (link-adaptation pass output).
    mcs: [Vec<u8>; 2],
    // ---- one stop-and-wait HARQ lane per UE per direction ----
    harq_active: [Vec<bool>; 2],
    harq_bits: [Vec<u32>; 2],
    harq_mcs: [Vec<u8>; 2],
    harq_prbs: [Vec<u16>; 2],
    harq_attempts: [Vec<u8>; 2],
    harq_next_at: [Vec<SimTime>; 2],
}

impl CellUeTable {
    /// An empty table (lease target).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconfigures the table for a session: clears every column (keeping
    /// capacity) and fills them from `ues`. Warm and fresh tables are
    /// byte-identical afterwards.
    pub fn configure(&mut self, ues: &[TrafficUeConfig], seed: u64) {
        self.clear();
        self.seed = seed ^ 0x7AB1_E5EE_D5EE_D000;
        self.sinr_offset_db
            .extend(ues.iter().map(|u| u.sinr_offset_db));
        self.phase
            .extend((0..ues.len()).map(|i| SimDuration::from_micros(1 + 37_777 * i as u64)));
        for (plane, pick) in [(0usize, 0usize), (1, 1)] {
            self.pattern[plane].extend(ues.iter().map(|u| match pick {
                0 => u.ul,
                _ => u.dl,
            }));
            let n = ues.len();
            self.queue_bytes[plane].resize(n, 0);
            self.credit_bits[plane].resize(n, 0.0);
            self.sinr_db[plane].resize(n, 0.0);
            self.mcs[plane].resize(n, 0);
            self.harq_active[plane].resize(n, false);
            self.harq_bits[plane].resize(n, 0);
            self.harq_mcs[plane].resize(n, 0);
            self.harq_prbs[plane].resize(n, 0);
            self.harq_attempts[plane].resize(n, 0);
            self.harq_next_at[plane].resize(n, SimTime::ZERO);
        }
    }

    /// Empties every column, keeping capacity for reuse.
    pub fn clear(&mut self) {
        self.sinr_offset_db.clear();
        self.phase.clear();
        for plane in 0..2 {
            self.pattern[plane].clear();
            self.queue_bytes[plane].clear();
            self.credit_bits[plane].clear();
            self.sinr_db[plane].clear();
            self.mcs[plane].clear();
            self.harq_active[plane].clear();
            self.harq_bits[plane].clear();
            self.harq_mcs[plane].clear();
            self.harq_prbs[plane].clear();
            self.harq_attempts[plane].clear();
            self.harq_next_at[plane].clear();
        }
    }

    /// Number of scripted UEs.
    pub fn len(&self) -> usize {
        self.sinr_offset_db.len()
    }

    /// Whether the table carries no scripted UEs.
    pub fn is_empty(&self) -> bool {
        self.sinr_offset_db.is_empty()
    }

    /// Total reserved capacity across all columns, in elements — the unit
    /// `SessionArena::footprint` accounts leased tables in.
    pub fn footprint_elems(&self) -> usize {
        let mut elems = self.sinr_offset_db.capacity() + self.phase.capacity();
        for plane in 0..2 {
            elems += self.pattern[plane].capacity()
                + self.queue_bytes[plane].capacity()
                + self.credit_bits[plane].capacity()
                + self.sinr_db[plane].capacity()
                + self.mcs[plane].capacity()
                + self.harq_active[plane].capacity()
                + self.harq_bits[plane].capacity()
                + self.harq_prbs[plane].capacity()
                + self.harq_mcs[plane].capacity()
                + self.harq_attempts[plane].capacity()
                + self.harq_next_at[plane].capacity();
        }
        elems
    }

    /// Scripted UE `ue`'s RNTI.
    pub fn rnti(&self, ue: usize) -> u32 {
        TRAFFIC_RNTI_BASE + ue as u32
    }

    /// Current queue depth of UE `ue` in `dir` (bytes).
    pub fn queue_bytes(&self, ue: usize, dir: Direction) -> u64 {
        self.queue_bytes[dix(dir)][ue]
    }

    /// Sum of all scripted-UE queue depths in `dir` (bytes).
    pub fn total_queue_bytes(&self, dir: Direction) -> u64 {
        self.queue_bytes[dix(dir)].iter().sum()
    }

    /// **Pass 1 — arrivals.** Accrues each UE's offered load over one slot
    /// into its queue, both directions (a TDD DL-only slot still accrues UL
    /// credit; the data just waits for a U slot).
    pub fn pass_arrivals(&mut self, now: SimTime, dt: SimDuration) {
        for plane in 0..2 {
            for i in 0..self.pattern[plane].len() {
                let pat = self.pattern[plane][i];
                let pkt = pat.packet_bytes();
                if pkt == 0 {
                    continue;
                }
                let credit = &mut self.credit_bits[plane][i];
                *credit += pat.offered_bits(now, dt, self.phase[i]);
                let pkt_bits = pkt as f64 * 8.0;
                while *credit >= pkt_bits {
                    *credit -= pkt_bits;
                    self.queue_bytes[plane][i] += pkt as u64;
                }
            }
        }
    }

    /// **Pass 2 — link adaptation.** One sweep computing every UE's SINR
    /// (cell base + per-UE offset + hashed shadow term, re-drawn each 10 ms
    /// bucket) and its MCS through the memoized `phy::select_mcs` table.
    pub fn pass_link_adaptation(
        &mut self,
        now: SimTime,
        dir: Direction,
        base_sinr_db: f64,
        shadow_sigma_db: f64,
        mac: &MacConfig,
    ) {
        let plane = dix(dir);
        let (cap, margin) = match dir {
            Direction::Uplink => (mac.mcs_cap_ul, mac.margin_db_ul),
            Direction::Downlink => (mac.mcs_cap_dl, mac.margin_db_dl),
        };
        let bucket = now.as_micros() / SHADOW_BUCKET_US;
        let seed = self.seed;
        for i in 0..self.sinr_offset_db.len() {
            let u = hash01(seed, i as u32, dir, bucket, SALT_SHADOW);
            // Triangular-ish shadow term in ±2σ: cheap, bounded, zero-mean.
            let shadow = (u * 2.0 - 1.0) * 2.0 * shadow_sigma_db;
            let sinr = base_sinr_db + self.sinr_offset_db[i] + shadow;
            self.sinr_db[plane][i] = sinr;
            self.mcs[plane][i] = phy::select_mcs(sinr, 0.0, margin, cap);
        }
    }

    /// **Pass 3 (per rotation position) — allocation.** Gives UE `ue` its
    /// slot share: a due HARQ retransmission first (contending for carrier
    /// PRBs like any UE), then one new transport block from the remaining
    /// budget after `hard_used` PRBs already granted to earlier UEs and
    /// `cross_prbs` taken by the scalar cross-traffic aggregate. Emits the
    /// UE's DCI into `dci` and returns the PRBs it consumed.
    #[allow(clippy::too_many_arguments)]
    pub fn allocate(
        &mut self,
        ue: usize,
        dir: Direction,
        slot: u64,
        frame: &FrameStructure,
        mac: &MacConfig,
        hard_used: u32,
        cross_prbs: u32,
        dci: &mut Vec<DciRecord>,
    ) -> u32 {
        let plane = dix(dir);
        let now = frame.slot_start(slot);
        let total = mac.n_prbs as u32;
        let sinr = self.sinr_db[plane][ue];
        let mut used = 0u32;

        // HARQ retransmission due: occupies real PRBs ahead of new data.
        if self.harq_active[plane][ue] && self.harq_next_at[plane][ue] <= now {
            let prbs = self.harq_prbs[plane][ue] as u32;
            if hard_used + prbs > total {
                // No room this slot; retry at the next serving slot.
                self.harq_next_at[plane][ue] =
                    frame.slot_start(frame.next_serving_slot(slot + 1, dir));
            } else {
                used += prbs;
                let retx_idx = self.harq_attempts[plane][ue];
                let mcs = self.harq_mcs[plane][ue];
                let fail = hash01(self.seed, ue as u32, dir, slot, SALT_HARQ)
                    < phy::fail_probability(sinr, mcs, retx_idx);
                dci.push(DciRecord {
                    ts: now,
                    rnti: self.rnti(ue),
                    direction: dir,
                    is_target_ue: false,
                    n_prbs: self.harq_prbs[plane][ue],
                    mcs,
                    tbs_bits: self.harq_bits[plane][ue],
                    harq_id: 0,
                    harq_retx_idx: retx_idx,
                    decoded_ok: !fail,
                    proactive: false,
                    used_bits: self.harq_bits[plane][ue],
                });
                if !fail {
                    self.harq_active[plane][ue] = false;
                } else {
                    self.harq_attempts[plane][ue] += 1;
                    if self.harq_attempts[plane][ue] >= mac.max_harq_attempts {
                        // Abandoned to (invisible) RLC ARQ: scripted payloads
                        // are synthetic, so the bytes are simply dropped.
                        self.harq_active[plane][ue] = false;
                    } else {
                        self.harq_next_at[plane][ue] = now + mac.harq_rtt;
                    }
                }
            }
        }

        // New transmission: stop-and-wait — only with the lane free.
        if self.harq_active[plane][ue] {
            return used;
        }
        let queued = self.queue_bytes[plane][ue];
        if queued == 0 {
            return used;
        }
        let mut budget = total
            .saturating_sub(cross_prbs)
            .saturating_sub(hard_used)
            .saturating_sub(used);
        let mcs = self.mcs[plane][ue];
        if mcs < mac.poor_channel_mcs_threshold {
            budget = budget.min((total as f64 * mac.poor_channel_prb_cap) as u32);
        }
        if budget == 0 {
            return used;
        }
        let max_tb_bytes = phy::tbs_bits(mcs, budget as u16) / 8;
        if max_tb_bytes == 0 {
            return used;
        }
        let tb_bytes = (queued.min(max_tb_bytes as u64)) as u32;
        let payload_bits = tb_bytes * 8;
        let n_prbs = phy::prbs_needed(mcs, payload_bits)
            .min(budget as u16)
            .max(1);
        let tbs = phy::tbs_bits(mcs, n_prbs).max(payload_bits);
        let fail = hash01(self.seed, ue as u32, dir, slot, SALT_HARQ)
            < phy::fail_probability(sinr, mcs, 0);
        dci.push(DciRecord {
            ts: now,
            rnti: self.rnti(ue),
            direction: dir,
            is_target_ue: false,
            n_prbs,
            mcs,
            tbs_bits: tbs,
            harq_id: 0,
            harq_retx_idx: 0,
            decoded_ok: !fail,
            proactive: false,
            used_bits: payload_bits,
        });
        used += n_prbs as u32;
        if !fail {
            self.queue_bytes[plane][ue] -= tb_bytes as u64;
        } else if mac.max_harq_attempts <= 1 {
            self.queue_bytes[plane][ue] -= tb_bytes as u64; // dropped
        } else {
            self.queue_bytes[plane][ue] -= tb_bytes as u64;
            self.harq_active[plane][ue] = true;
            self.harq_bits[plane][ue] = tbs;
            self.harq_mcs[plane][ue] = mcs;
            self.harq_prbs[plane][ue] = n_prbs;
            self.harq_attempts[plane][ue] = 1;
            self.harq_next_at[plane][ue] = now + mac.harq_rtt;
        }
        used
    }
}

#[cfg(test)]
mod oracle {
    //! Object-at-a-time reference tick: one plain struct per UE, stepped
    //! with per-object calls through the same slot algorithm the SoA table
    //! sweeps. Property: the SoA loop is byte-identical to the reference
    //! across UE counts and traffic mixes.

    use super::*;
    use crate::frame::FrameStructure;

    /// Per-UE object mirror of one [`CellUeTable`] row.
    struct RefUe {
        cfg: TrafficUeConfig,
        phase: SimDuration,
        queue_bytes: [u64; 2],
        credit_bits: [f64; 2],
        sinr_db: [f64; 2],
        mcs: [u8; 2],
        harq_active: [bool; 2],
        harq_bits: [u32; 2],
        harq_mcs: [u8; 2],
        harq_prbs: [u16; 2],
        harq_attempts: [u8; 2],
        harq_next_at: [SimTime; 2],
    }

    impl RefUe {
        fn new(index: usize, cfg: TrafficUeConfig) -> Self {
            RefUe {
                cfg,
                phase: SimDuration::from_micros(1 + 37_777 * index as u64),
                queue_bytes: [0; 2],
                credit_bits: [0.0; 2],
                sinr_db: [0.0; 2],
                mcs: [0; 2],
                harq_active: [false; 2],
                harq_bits: [0; 2],
                harq_mcs: [0; 2],
                harq_prbs: [0; 2],
                harq_attempts: [0; 2],
                harq_next_at: [SimTime::ZERO; 2],
            }
        }

        fn arrivals(&mut self, now: SimTime, dt: SimDuration) {
            for (plane, pat) in [(0usize, self.cfg.ul), (1, self.cfg.dl)] {
                let pkt = pat.packet_bytes();
                if pkt == 0 {
                    continue;
                }
                self.credit_bits[plane] += pat.offered_bits(now, dt, self.phase);
                let pkt_bits = pkt as f64 * 8.0;
                while self.credit_bits[plane] >= pkt_bits {
                    self.credit_bits[plane] -= pkt_bits;
                    self.queue_bytes[plane] += pkt as u64;
                }
            }
        }

        #[allow(clippy::too_many_arguments)]
        fn link_adaptation(
            &mut self,
            index: usize,
            seed: u64,
            now: SimTime,
            dir: Direction,
            base: f64,
            sigma: f64,
            mac: &MacConfig,
        ) {
            let plane = dix(dir);
            let (cap, margin) = match dir {
                Direction::Uplink => (mac.mcs_cap_ul, mac.margin_db_ul),
                Direction::Downlink => (mac.mcs_cap_dl, mac.margin_db_dl),
            };
            let bucket = now.as_micros() / SHADOW_BUCKET_US;
            let u = hash01(seed, index as u32, dir, bucket, SALT_SHADOW);
            let sinr = base + self.cfg.sinr_offset_db + (u * 2.0 - 1.0) * 2.0 * sigma;
            self.sinr_db[plane] = sinr;
            self.mcs[plane] = phy::select_mcs(sinr, 0.0, margin, cap);
        }

        #[allow(clippy::too_many_arguments)]
        fn allocate(
            &mut self,
            index: usize,
            seed: u64,
            dir: Direction,
            slot: u64,
            frame: &FrameStructure,
            mac: &MacConfig,
            hard_used: u32,
            cross_prbs: u32,
            dci: &mut Vec<DciRecord>,
        ) -> u32 {
            let plane = dix(dir);
            let now = frame.slot_start(slot);
            let total = mac.n_prbs as u32;
            let sinr = self.sinr_db[plane];
            let mut used = 0u32;
            if self.harq_active[plane] && self.harq_next_at[plane] <= now {
                let prbs = self.harq_prbs[plane] as u32;
                if hard_used + prbs > total {
                    self.harq_next_at[plane] =
                        frame.slot_start(frame.next_serving_slot(slot + 1, dir));
                } else {
                    used += prbs;
                    let retx_idx = self.harq_attempts[plane];
                    let mcs = self.harq_mcs[plane];
                    let fail = hash01(seed, index as u32, dir, slot, SALT_HARQ)
                        < phy::fail_probability(sinr, mcs, retx_idx);
                    dci.push(DciRecord {
                        ts: now,
                        rnti: TRAFFIC_RNTI_BASE + index as u32,
                        direction: dir,
                        is_target_ue: false,
                        n_prbs: self.harq_prbs[plane],
                        mcs,
                        tbs_bits: self.harq_bits[plane],
                        harq_id: 0,
                        harq_retx_idx: retx_idx,
                        decoded_ok: !fail,
                        proactive: false,
                        used_bits: self.harq_bits[plane],
                    });
                    if !fail {
                        self.harq_active[plane] = false;
                    } else {
                        self.harq_attempts[plane] += 1;
                        if self.harq_attempts[plane] >= mac.max_harq_attempts {
                            self.harq_active[plane] = false;
                        } else {
                            self.harq_next_at[plane] = now + mac.harq_rtt;
                        }
                    }
                }
            }
            if self.harq_active[plane] || self.queue_bytes[plane] == 0 {
                return used;
            }
            let mut budget = total
                .saturating_sub(cross_prbs)
                .saturating_sub(hard_used)
                .saturating_sub(used);
            let mcs = self.mcs[plane];
            if mcs < mac.poor_channel_mcs_threshold {
                budget = budget.min((total as f64 * mac.poor_channel_prb_cap) as u32);
            }
            if budget == 0 {
                return used;
            }
            let max_tb_bytes = phy::tbs_bits(mcs, budget as u16) / 8;
            if max_tb_bytes == 0 {
                return used;
            }
            let tb_bytes = (self.queue_bytes[plane].min(max_tb_bytes as u64)) as u32;
            let payload_bits = tb_bytes * 8;
            let n_prbs = phy::prbs_needed(mcs, payload_bits)
                .min(budget as u16)
                .max(1);
            let tbs = phy::tbs_bits(mcs, n_prbs).max(payload_bits);
            let fail = hash01(seed, index as u32, dir, slot, SALT_HARQ)
                < phy::fail_probability(sinr, mcs, 0);
            dci.push(DciRecord {
                ts: now,
                rnti: TRAFFIC_RNTI_BASE + index as u32,
                direction: dir,
                is_target_ue: false,
                n_prbs,
                mcs,
                tbs_bits: tbs,
                harq_id: 0,
                harq_retx_idx: 0,
                decoded_ok: !fail,
                proactive: false,
                used_bits: payload_bits,
            });
            used += n_prbs as u32;
            self.queue_bytes[plane] -= tb_bytes as u64;
            if fail && mac.max_harq_attempts > 1 {
                self.harq_active[plane] = true;
                self.harq_bits[plane] = tbs;
                self.harq_mcs[plane] = mcs;
                self.harq_prbs[plane] = n_prbs;
                self.harq_attempts[plane] = 1;
                self.harq_next_at[plane] = now + mac.harq_rtt;
            }
            used
        }
    }

    /// Drives both implementations through the identical slot schedule
    /// (rotated round-robin, a scalar cross-traffic square wave) and
    /// returns their DCI streams as comparable tuples.
    #[allow(clippy::type_complexity)]
    fn drive_both(
        ues: &[TrafficUeConfig],
        seed: u64,
        slots: u64,
        mac: &MacConfig,
        frame: &FrameStructure,
    ) -> (
        Vec<(u64, u32, u8, u16, u32, bool, u8)>,
        Vec<(u64, u32, u8, u16, u32, bool, u8)>,
    ) {
        let base = (9.0, 21.0); // (UL, DL) base SINR
        let sigma = 2.5;
        let key = |d: &DciRecord| {
            (
                d.ts.as_micros(),
                d.rnti,
                d.mcs,
                d.n_prbs,
                d.tbs_bits,
                d.decoded_ok,
                d.harq_retx_idx,
            )
        };

        let mut table = CellUeTable::new();
        table.configure(ues, seed);
        let mut soa_dci: Vec<DciRecord> = Vec::new();
        let mut refs: Vec<RefUe> = ues
            .iter()
            .enumerate()
            .map(|(i, &c)| RefUe::new(i, c))
            .collect();
        let ref_seed = seed ^ 0x7AB1_E5EE_D5EE_D000;
        let mut ref_dci: Vec<DciRecord> = Vec::new();

        let n = ues.len();
        for slot in 0..slots {
            let now = frame.slot_start(slot);
            let dt = frame.slot_duration;
            // Scalar cross load: a square wave taking half the carrier.
            let cross_prbs = if (slot / 40) % 2 == 0 {
                (mac.n_prbs as u32) / 2
            } else {
                0
            };
            table.pass_arrivals(now, dt);
            for r in refs.iter_mut() {
                r.arrivals(now, dt);
            }
            for dir in [Direction::Downlink, Direction::Uplink] {
                if !frame.serves(slot, dir) {
                    continue;
                }
                let b = if dir == Direction::Uplink {
                    base.0
                } else {
                    base.1
                };
                table.pass_link_adaptation(now, dir, b, sigma, mac);
                for (i, r) in refs.iter_mut().enumerate() {
                    r.link_adaptation(i, ref_seed, now, dir, b, sigma, mac);
                }
                let start = (slot % n as u64) as usize;
                let mut hard_soa = 0u32;
                let mut hard_ref = 0u32;
                for k in 0..n {
                    let i = (start + k) % n;
                    hard_soa += table.allocate(
                        i,
                        dir,
                        slot,
                        frame,
                        mac,
                        hard_soa,
                        cross_prbs,
                        &mut soa_dci,
                    );
                    hard_ref += refs[i].allocate(
                        i,
                        ref_seed,
                        dir,
                        slot,
                        frame,
                        mac,
                        hard_ref,
                        cross_prbs,
                        &mut ref_dci,
                    );
                }
                assert_eq!(hard_soa, hard_ref, "slot {slot} {dir:?} PRB usage");
            }
        }
        (
            soa_dci.iter().map(key).collect(),
            ref_dci.iter().map(key).collect(),
        )
    }

    use proptest::prelude::*;

    proptest! {
        #[test]
        fn soa_loop_matches_object_reference(
            seed in 0u64..1_000_000,
            count_pick in 0usize..4,
            rate in 200_000u64..6_000_000,
            duty in 0.1f64..0.9,
            offset in -4.0f64..4.0,
        ) {
            let n = [1usize, 2, 8, 32][count_pick];
            let mut ues = traffic_mix(n);
            // Perturb the mix with the drawn parameters so the property
            // covers traffic shapes beyond the canned pool.
            ues[0] = TrafficUeConfig::bursty(rate, SimDuration::from_millis(300), duty)
                .with_sinr_offset(offset);
            if n > 1 {
                ues[n - 1] = TrafficUeConfig::dl_streaming(rate).with_sinr_offset(-offset);
            }
            let mac = MacConfig { n_prbs: 51, ..Default::default() };
            let frame = FrameStructure::tdd(SimDuration::from_micros(500), "DDDSU");
            let (soa, reference) = drive_both(&ues, seed, 1200, &mac, &frame);
            prop_assert_eq!(soa, reference);
        }
    }

    #[test]
    fn fdd_frame_also_matches() {
        let ues = traffic_mix(8);
        let mac = MacConfig {
            n_prbs: 79,
            ..Default::default()
        };
        let frame = FrameStructure::fdd(SimDuration::from_millis(1));
        let (soa, reference) = drive_both(&ues, 42, 2000, &mac, &frame);
        assert_eq!(soa, reference);
        assert!(!soa.is_empty(), "scripted UEs must transmit");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_mix_is_deterministic_and_sized() {
        let a = traffic_mix(46);
        let b = traffic_mix(46);
        assert_eq!(a.len(), 46);
        assert_eq!(a, b);
        // The pool actually mixes shapes.
        assert!(a
            .iter()
            .any(|u| matches!(u.dl, TrafficPattern::OnOff { .. })));
        assert!(a.iter().any(|u| matches!(u.dl, TrafficPattern::Cbr { .. })));
    }

    #[test]
    fn arrivals_accumulate_offered_load() {
        let mut t = CellUeTable::new();
        t.configure(&[TrafficUeConfig::dl_streaming(1_000_000)], 7);
        let dt = SimDuration::from_millis(1);
        for ms in 0..1000u64 {
            t.pass_arrivals(SimTime::from_millis(ms), dt);
        }
        // 1 Mbit/s for 1 s ≈ 125 kB offered downlink (packetized).
        let q = t.queue_bytes(0, Direction::Downlink);
        assert!((100_000..=125_000).contains(&q), "queued {q}");
    }

    #[test]
    fn allocation_drains_queue_and_respects_budget() {
        let mac = MacConfig {
            n_prbs: 51,
            ..Default::default()
        };
        let frame = FrameStructure::fdd(SimDuration::from_millis(1));
        let mut t = CellUeTable::new();
        t.configure(&[TrafficUeConfig::dl_streaming(2_000_000)], 3);
        let mut dci = Vec::new();
        for slot in 0..500u64 {
            let now = frame.slot_start(slot);
            t.pass_arrivals(now, frame.slot_duration);
            t.pass_link_adaptation(now, Direction::Downlink, 22.0, 1.5, &mac);
            let used = t.allocate(0, Direction::Downlink, slot, &frame, &mac, 0, 0, &mut dci);
            assert!(used <= mac.n_prbs as u32);
        }
        assert!(!dci.is_empty());
        assert!(dci.iter().all(|d| !d.is_target_ue));
        assert!(dci.iter().all(|d| d.rnti == TRAFFIC_RNTI_BASE));
        // Queue stays bounded: capacity exceeds 2 Mbit/s on a healthy cell.
        assert!(t.queue_bytes(0, Direction::Downlink) < 50_000);
    }

    #[test]
    fn configure_resets_warm_table_byte_identically() {
        let ues = traffic_mix(16);
        let mut fresh = CellUeTable::new();
        fresh.configure(&ues, 11);
        let mut warm = CellUeTable::new();
        warm.configure(&traffic_mix(32), 99);
        // Dirty the warm table, then reconfigure to the same session.
        let mac = MacConfig::default();
        let frame = FrameStructure::fdd(SimDuration::from_millis(1));
        let mut dci = Vec::new();
        for slot in 0..200 {
            let now = frame.slot_start(slot);
            warm.pass_arrivals(now, frame.slot_duration);
            warm.pass_link_adaptation(now, Direction::Downlink, 20.0, 2.0, &mac);
            warm.allocate(0, Direction::Downlink, slot, &frame, &mac, 0, 0, &mut dci);
        }
        warm.configure(&ues, 11);
        let mut out_fresh = Vec::new();
        let mut out_warm = Vec::new();
        for slot in 0..300u64 {
            let now = frame.slot_start(slot);
            for t in [&mut fresh, &mut warm] {
                t.pass_arrivals(now, frame.slot_duration);
                t.pass_link_adaptation(now, Direction::Downlink, 20.0, 2.0, &mac);
            }
            for i in 0..ues.len() {
                fresh.allocate(
                    i,
                    Direction::Downlink,
                    slot,
                    &frame,
                    &mac,
                    0,
                    0,
                    &mut out_fresh,
                );
                warm.allocate(
                    i,
                    Direction::Downlink,
                    slot,
                    &frame,
                    &mac,
                    0,
                    0,
                    &mut out_warm,
                );
            }
        }
        assert_eq!(out_fresh.len(), out_warm.len());
        for (a, b) in out_fresh.iter().zip(&out_warm) {
            assert_eq!(
                (a.ts, a.rnti, a.tbs_bits, a.decoded_ok),
                (b.ts, b.rnti, b.tbs_bits, b.decoded_ok)
            );
        }
    }
}
