//! Minimal distribution samplers.
//!
//! `rand` 0.8 ships only uniform sampling; rather than pulling in
//! `rand_distr`, the three distributions the simulators need are implemented
//! here (Box–Muller normal, log-normal, inverse-CDF exponential) together
//! with a first-order Gauss–Markov (AR(1)) process used by the channel and
//! path-jitter models.

use rand::Rng;

/// Samples a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard the log: u1 in (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples N(mean, sd²).
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// Samples a log-normal with the given parameters of the underlying normal.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Samples Exp(rate) via inverse CDF; mean = 1/rate.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

/// First-order Gauss–Markov (AR(1)) process:
/// `x' = mean + rho*(x - mean) + sigma*sqrt(1-rho^2)*N(0,1)`.
///
/// With `rho` close to 1 this produces the slowly-wandering shadowing the
/// paper's channel traces show; the stationary distribution is
/// N(mean, sigma²) independent of `rho`.
#[derive(Debug, Clone)]
pub struct GaussMarkov {
    /// Long-run mean the process reverts to.
    pub mean: f64,
    /// Stationary standard deviation.
    pub sigma: f64,
    /// Per-step correlation in [0, 1).
    pub rho: f64,
    state: f64,
}

impl GaussMarkov {
    /// Creates the process started at its mean.
    pub fn new(mean: f64, sigma: f64, rho: f64) -> Self {
        assert!((0.0..1.0).contains(&rho), "rho must be in [0,1)");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        GaussMarkov {
            mean,
            sigma,
            rho,
            state: mean,
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.state
    }

    /// Advances one step and returns the new value.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let innovation = self.sigma * (1.0 - self.rho * self.rho).sqrt();
        self.state =
            self.mean + self.rho * (self.state - self.mean) + innovation * standard_normal(rng);
        self.state
    }

    /// Forces the state (used by scripted scenarios to impose a deep fade).
    pub fn set(&mut self, value: f64) {
        self.state = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD0_31_10)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut r, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn log_normal_positive() {
        let mut r = rng();
        assert!((0..1000).all(|_| log_normal(&mut r, 0.0, 1.0) > 0.0));
    }

    #[test]
    fn gauss_markov_reverts_to_mean() {
        let mut r = rng();
        let mut p = GaussMarkov::new(10.0, 1.0, 0.95);
        p.set(100.0);
        for _ in 0..2000 {
            p.step(&mut r);
        }
        assert!(
            (p.value() - 10.0).abs() < 5.0,
            "did not revert: {}",
            p.value()
        );
    }

    #[test]
    fn gauss_markov_stationary_sd() {
        let mut r = rng();
        let mut p = GaussMarkov::new(0.0, 3.0, 0.9);
        // Burn in, then measure.
        for _ in 0..500 {
            p.step(&mut r);
        }
        let n = 50_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let v = p.step(&mut r);
            sum += v;
            sum2 += v * v;
        }
        let mean = sum / n as f64;
        let sd = (sum2 / n as f64 - mean * mean).sqrt();
        assert!((sd - 3.0).abs() < 0.5, "sd {sd}");
    }

    #[test]
    #[should_panic(expected = "rho must be in [0,1)")]
    fn gauss_markov_rejects_bad_rho() {
        let _ = GaussMarkov::new(0.0, 1.0, 1.5);
    }
}
