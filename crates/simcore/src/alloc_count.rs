//! A counting global allocator for allocation-budget tests.
//!
//! The simulation hot path is supposed to be allocation-free at steady
//! state (reserve-and-clear scratch buffers, arena-recycled bundles, pooled
//! PDU segment vectors). That property regresses silently — a stray
//! `collect()` in a per-tick loop costs a few percent of throughput and no
//! test notices. This harness makes it checkable: install [`CountingAlloc`]
//! as the `#[global_allocator]` of a test binary and wrap the code under
//! test in [`measure`].
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: simcore::alloc_count::CountingAlloc = simcore::alloc_count::CountingAlloc;
//!
//! let (bundle, stats) = simcore::alloc_count::measure(|| run_session(...));
//! assert!(stats.allocations < BUDGET);
//! ```
//!
//! The counters are process-global atomics: measurements are only meaningful
//! single-threaded (integration tests run one `#[test]` per thread — use
//! `--test-threads=1` or a dedicated test binary for exact numbers).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A `GlobalAlloc` that forwards to [`System`] while counting every
/// allocation and reallocation (deallocations are free and not counted).
pub struct CountingAlloc;

// SAFETY: pure pass-through to `System`; the counters have no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Counters captured by [`measure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Heap allocations (including reallocations) performed.
    pub allocations: u64,
    /// Bytes requested across those allocations.
    pub bytes: u64,
}

/// Allocations counted so far in this process (0 unless [`CountingAlloc`]
/// is installed as the global allocator).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `f` and reports the allocations it performed. Only exact when
/// [`CountingAlloc`] is the global allocator and nothing else runs
/// concurrently.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, AllocStats) {
    let a0 = ALLOCATIONS.load(Ordering::Relaxed);
    let b0 = BYTES.load(Ordering::Relaxed);
    let r = f();
    let stats = AllocStats {
        allocations: ALLOCATIONS.load(Ordering::Relaxed) - a0,
        bytes: BYTES.load(Ordering::Relaxed) - b0,
    };
    (r, stats)
}
