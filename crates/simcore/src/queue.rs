//! Deterministic event queues.
//!
//! Two implementations share one ordering contract — events pop in strict
//! `(time, key, sequence)` order, where the sequence is assigned at
//! scheduling time, so same-instant events pop in insertion order. This is
//! the property that makes whole-session simulations replay byte-identically
//! from a seed: a bare [`BinaryHeap`] gives no stable order for ties.
//!
//! The `key` is an optional secondary order component between the timestamp
//! and the tie-break sequence, defaulting to `()` (in which case the
//! contract degenerates to the classic `(time, sequence)` order). A
//! multiplexing driver uses it to tag events with a session id
//! ([`EventQueue::schedule_keyed`]): N interleaved sessions share one queue,
//! and the global pop order `(time, session, seq)` restricted to any one
//! session is exactly the `(time, seq)` order that session would observe
//! from a private queue — the contract `prop_tagged_pop_matches_private_queues`
//! below enforces.
//!
//! * [`EventQueue::new`] — the classic binary-heap backend: `O(log n)`
//!   schedule/pop, no assumptions about the workload.
//! * [`EventQueue::calendar`] / [`CalendarQueue`] — a calendar (bucket)
//!   queue in the ns-3 tradition: time is tiled into fixed-width buckets
//!   arranged in a ring, events land in their bucket in `O(1)`, and the pop
//!   cursor sweeps the ring in time order, sorting one small bucket at a
//!   time. Far-future events sit in a sorted overflow tier until the ring
//!   window reaches them. For the near-monotonic slot-tick workload of the
//!   session engine (schedule a few milliseconds ahead, pop every tick) this
//!   trades the heap's `O(log n)` pointer-chasing for cache-friendly bucket
//!   pushes, while producing the **exact same pop sequence** — enforced by a
//!   property test below and by every determinism suite in the workspace.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// An event of type `E` scheduled for a particular instant, optionally
/// tagged with a secondary order key `K` (session id for multiplexed
/// queues; `()` for plain single-session queues).
#[derive(Debug, Clone)]
pub struct Scheduled<E, K = ()> {
    /// When the event fires.
    pub at: SimTime,
    /// Secondary order key, compared between `at` and the tie-break
    /// sequence. `()` for untagged queues.
    pub key: K,
    seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E, K: Ord> PartialEq for Scheduled<E, K> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key && self.seq == other.seq
    }
}
impl<E, K: Ord> Eq for Scheduled<E, K> {}

impl<E, K: Ord> PartialOrd for Scheduled<E, K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E, K: Ord> Ord for Scheduled<E, K> {
    // Reversed: BinaryHeap is a max-heap, we want earliest-first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Log2 of the default calendar bucket width in µs (1024 µs ≈ one engine
/// tick / one 15 kHz slot).
const DEFAULT_BUCKET_SHIFT: u32 = 10;
/// Default ring size (buckets); must be a power of two. With the default
/// width the ring covers ≈ 262 ms — comfortably past the in-flight horizon
/// of a two-party call, so overflow migration is rare.
const DEFAULT_RING_BUCKETS: usize = 256;

/// A calendar (bucket) event queue with the same deterministic
/// `(time, key, sequence)` pop order as the binary-heap [`EventQueue`].
///
/// Geometry: bucket width `1 << shift` µs, a power-of-two ring of buckets
/// covering `[base, base + ring)` in absolute bucket indices, and a binary
/// heap holding everything beyond the ring window. The pop cursor drains the
/// `base` bucket (sorted on first touch, descending so pops come off the
/// tail) and advances; events scheduled behind the cursor are clamped into
/// the base bucket, which preserves the heap contract — pop returns the
/// minimum `(time, key, seq)` among *currently pending* events, not a
/// globally sorted sequence.
#[derive(Debug, Clone)]
pub struct CalendarQueue<E, K = ()> {
    buckets: Vec<Vec<Scheduled<E, K>>>,
    /// Absolute index of the bucket the cursor currently drains.
    base: u64,
    shift: u32,
    mask: u64,
    /// Events stored in the ring (excludes overflow).
    ring_len: usize,
    /// Whether the base bucket is sorted (descending) and pop-ready.
    base_sorted: bool,
    overflow: BinaryHeap<Scheduled<E, K>>,
    next_seq: u64,
    len: usize,
}

impl<E, K: Ord + Copy> Default for CalendarQueue<E, K> {
    fn default() -> Self {
        Self::keyed()
    }
}

impl<E> CalendarQueue<E> {
    /// Creates an empty untagged queue with the default geometry (1 ms
    /// buckets, 256-bucket ring).
    pub fn new() -> Self {
        Self::keyed()
    }

    /// Schedules `event` to fire at `at`. Untagged queues only — keyed
    /// queues must say which session an event belongs to
    /// ([`CalendarQueue::schedule_keyed`]).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.schedule_keyed(at, (), event);
    }

    /// Creates an empty untagged queue with `1 << shift` µs buckets and a
    /// ring of `ring_buckets` (rounded up to a power of two, minimum 2).
    pub fn with_geometry(shift: u32, ring_buckets: usize) -> Self {
        Self::keyed_with_geometry(shift, ring_buckets)
    }
}

impl<E, K: Ord + Copy> CalendarQueue<E, K> {
    /// Creates an empty keyed queue with the default geometry. (Separate
    /// from [`CalendarQueue::new`] so `K` stays inferable for the untagged
    /// common case.)
    pub fn keyed() -> Self {
        Self::keyed_with_geometry(DEFAULT_BUCKET_SHIFT, DEFAULT_RING_BUCKETS)
    }

    /// Creates an empty keyed queue with `1 << shift` µs buckets and a ring
    /// of `ring_buckets` (rounded up to a power of two, minimum 2).
    pub fn keyed_with_geometry(shift: u32, ring_buckets: usize) -> Self {
        let n = ring_buckets.next_power_of_two().max(2);
        let mut buckets = Vec::with_capacity(n);
        buckets.resize_with(n, Vec::new);
        CalendarQueue {
            buckets,
            base: 0,
            shift,
            mask: n as u64 - 1,
            ring_len: 0,
            base_sorted: false,
            overflow: BinaryHeap::new(),
            next_seq: 0,
            len: 0,
        }
    }

    fn abs_bucket(&self, at: SimTime) -> u64 {
        at.as_micros() >> self.shift
    }

    fn ring_size(&self) -> u64 {
        self.mask + 1
    }

    /// Drops all pending events but keeps every allocation; the tie-break
    /// sequence restarts, so a cleared queue replays identically to a fresh
    /// one.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.base = 0;
        self.ring_len = 0;
        self.base_sorted = false;
        self.overflow.clear();
        self.next_seq = 0;
        self.len = 0;
    }

    /// Schedules `event` to fire at `at`, tagged with the secondary order
    /// key `key` (e.g. a session id in a multiplexed queue).
    pub fn schedule_keyed(&mut self, at: SimTime, key: K, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_scheduled(Scheduled {
            at,
            key,
            seq,
            event,
        });
    }

    fn push_scheduled(&mut self, s: Scheduled<E, K>) {
        self.len += 1;
        let ab = self.abs_bucket(s.at);
        if ab >= self.base + self.ring_size() {
            self.overflow.push(s);
            return;
        }
        // Late events (behind the cursor) clamp into the base bucket: they
        // must pop before anything still pending, and the within-bucket sort
        // key is the full `(at, seq)`, so ordering stays exact.
        let ab = ab.max(self.base);
        let idx = (ab & self.mask) as usize;
        if ab == self.base && self.base_sorted {
            // The base bucket is mid-drain: keep it descending-sorted.
            let b = &mut self.buckets[idx];
            let key = (s.at, s.key, s.seq);
            let pos = b.partition_point(|x| (x.at, x.key, x.seq) > key);
            b.insert(pos, s);
        } else {
            self.buckets[idx].push(s);
        }
        self.ring_len += 1;
    }

    /// Advances the cursor to the bucket holding the earliest pending event
    /// and sorts it. After this, if `len > 0`, the base bucket is non-empty,
    /// sorted descending, and its tail is the global minimum.
    fn settle(&mut self) {
        if self.len == 0 {
            return;
        }
        if self.ring_len == 0 {
            // Ring empty: jump the window to the overflow head.
            let head_at = self.overflow.peek().expect("len > 0").at;
            self.base = self.abs_bucket(head_at);
            self.base_sorted = false;
            self.migrate_overflow();
        }
        while self.buckets[(self.base & self.mask) as usize].is_empty() {
            self.base += 1;
            self.base_sorted = false;
            self.migrate_overflow();
            if self.ring_len == 0 {
                // Everything between here and the overflow head is empty.
                let head_at = self.overflow.peek().expect("ring empty, len > 0").at;
                self.base = self.abs_bucket(head_at);
                self.migrate_overflow();
            }
        }
        if !self.base_sorted {
            let b = &mut self.buckets[(self.base & self.mask) as usize];
            // Keys are unique (seq strictly increases), so unstable is safe.
            b.sort_unstable_by_key(|s| std::cmp::Reverse((s.at, s.key, s.seq)));
            self.base_sorted = true;
        }
    }

    /// Moves overflow events that now fall inside the ring window into it.
    fn migrate_overflow(&mut self) {
        let horizon = self.base + self.ring_size();
        while self
            .overflow
            .peek()
            .is_some_and(|s| self.abs_bucket(s.at) < horizon)
        {
            let s = self.overflow.pop().expect("peeked");
            let ab = self.abs_bucket(s.at);
            debug_assert!(ab >= self.base);
            self.buckets[(ab & self.mask) as usize].push(s);
            self.ring_len += 1;
            if ab == self.base {
                self.base_sorted = false;
            }
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<Scheduled<E, K>> {
        if self.len == 0 {
            return None;
        }
        self.settle();
        let b = &mut self.buckets[(self.base & self.mask) as usize];
        let s = b.pop().expect("settle leaves base bucket non-empty");
        self.ring_len -= 1;
        self.len -= 1;
        Some(s)
    }

    /// Pops the earliest event only if it fires at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<Scheduled<E, K>> {
        if self.len == 0 {
            return None;
        }
        self.settle();
        let b = &mut self.buckets[(self.base & self.mask) as usize];
        if b.last().expect("non-empty after settle").at <= now {
            self.ring_len -= 1;
            self.len -= 1;
            b.pop()
        } else {
            None
        }
    }

    /// Time of the earliest pending event.
    ///
    /// Takes `&self`, so it cannot advance the cursor: the ring is scanned
    /// from the cursor position (`O(ring + bucket)` worst case). Hot loops
    /// should prefer [`Self::pop_due`], which settles first and then reads
    /// the sorted bucket tail in `O(1)`.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if self.ring_len == 0 {
            return self.overflow.peek().map(|s| s.at);
        }
        let mut ab = self.base;
        loop {
            let b = &self.buckets[(ab & self.mask) as usize];
            if !b.is_empty() {
                return b.iter().map(|s| s.at).min();
            }
            ab += 1;
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total retained storage (events) across buckets and overflow —
    /// capacity, not occupancy. Arena-reuse regression tests watch this.
    pub fn capacity(&self) -> usize {
        self.buckets.iter().map(Vec::capacity).sum::<usize>() + self.overflow.capacity()
    }
}

#[derive(Debug, Clone)]
enum Inner<E, K> {
    Heap {
        heap: BinaryHeap<Scheduled<E, K>>,
        next_seq: u64,
    },
    Calendar(CalendarQueue<E, K>),
}

/// A deterministic min-queue of timestamped events, with a choice of
/// backend: binary heap ([`EventQueue::new`]) or calendar buckets
/// ([`EventQueue::calendar`]). Both produce the identical pop sequence.
///
/// The second type parameter is the secondary order key (see the module
/// docs); it defaults to `()`, in which case [`EventQueue::schedule`] and
/// the classic `(time, seq)` contract apply unchanged. Multiplexed drivers
/// instantiate e.g. `EventQueue<RouteEvent, u64>` and tag every event with
/// its session via [`EventQueue::schedule_keyed`].
///
/// ```
/// use simcore::{EventQueue, SimTime};
///
/// for mut q in [EventQueue::new(), EventQueue::calendar()] {
///     q.schedule(SimTime::from_millis(2), "b");
///     q.schedule(SimTime::from_millis(1), "a");
///     q.schedule(SimTime::from_millis(2), "c");
///     let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
///     assert_eq!(order, vec!["a", "b", "c"]); // FIFO among equal times
/// }
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E, K = ()> {
    inner: Inner<E, K>,
}

impl<E, K: Ord + Copy> Default for EventQueue<E, K> {
    fn default() -> Self {
        Self::keyed()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty untagged heap-backed queue.
    pub fn new() -> Self {
        Self::keyed()
    }

    /// Creates an empty untagged heap-backed queue with room for `cap`
    /// events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Self::keyed_with_capacity(cap)
    }

    /// Creates an empty untagged calendar-backed queue with the default
    /// geometry (the session engine's default — see [`CalendarQueue`]).
    pub fn calendar() -> Self {
        Self::calendar_keyed()
    }

    /// Creates an empty untagged calendar-backed queue with explicit
    /// geometry (see [`CalendarQueue::keyed_with_geometry`]).
    pub fn calendar_with_geometry(shift: u32, ring_buckets: usize) -> Self {
        Self::calendar_keyed_with_geometry(shift, ring_buckets)
    }

    /// Schedules `event` to fire at `at`. Untagged queues only — keyed
    /// queues must say which session an event belongs to
    /// ([`EventQueue::schedule_keyed`]), so a shared multiplexed queue
    /// cannot silently tag an event with a default session id.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.schedule_keyed(at, (), event);
    }

    /// Schedules `event` to fire `delay` after `now` (untagged queues).
    pub fn schedule_in(&mut self, now: SimTime, delay: SimDuration, event: E) {
        self.schedule(now + delay, event);
    }
}

impl<E, K: Ord + Copy> EventQueue<E, K> {
    /// Creates an empty keyed heap-backed queue. (Separate from
    /// [`EventQueue::new`] so `K` stays inferable for the untagged common
    /// case.)
    pub fn keyed() -> Self {
        Self::keyed_with_capacity(0)
    }

    /// Creates an empty keyed heap-backed queue with room for `cap` events
    /// before reallocating.
    pub fn keyed_with_capacity(cap: usize) -> Self {
        EventQueue {
            inner: Inner::Heap {
                heap: BinaryHeap::with_capacity(cap),
                next_seq: 0,
            },
        }
    }

    /// Creates an empty keyed calendar-backed queue with the default
    /// geometry — the backend a multiplexed session driver shares across
    /// its interleaved sessions.
    pub fn calendar_keyed() -> Self {
        EventQueue {
            inner: Inner::Calendar(CalendarQueue::keyed()),
        }
    }

    /// Creates an empty keyed calendar-backed queue with explicit geometry.
    pub fn calendar_keyed_with_geometry(shift: u32, ring_buckets: usize) -> Self {
        EventQueue {
            inner: Inner::Calendar(CalendarQueue::keyed_with_geometry(shift, ring_buckets)),
        }
    }

    /// Whether this queue runs on the calendar backend.
    pub fn is_calendar(&self) -> bool {
        matches!(self.inner, Inner::Calendar(_))
    }

    /// Drops all pending events but keeps the allocation, so a session
    /// engine or sweep runner can reuse one queue across many sessions.
    /// The tie-break sequence restarts too: a cleared queue replays
    /// identically to a fresh one.
    pub fn clear(&mut self) {
        match &mut self.inner {
            Inner::Heap { heap, next_seq } => {
                heap.clear();
                *next_seq = 0;
            }
            Inner::Calendar(c) => c.clear(),
        }
    }

    /// Schedules `event` to fire at `at`, tagged with the secondary order
    /// key `key` (e.g. a session id in a multiplexed queue).
    pub fn schedule_keyed(&mut self, at: SimTime, key: K, event: E) {
        match &mut self.inner {
            Inner::Heap { heap, next_seq } => {
                let seq = *next_seq;
                *next_seq += 1;
                heap.push(Scheduled {
                    at,
                    key,
                    seq,
                    event,
                });
            }
            Inner::Calendar(c) => c.schedule_keyed(at, key, event),
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<Scheduled<E, K>> {
        match &mut self.inner {
            Inner::Heap { heap, .. } => heap.pop(),
            Inner::Calendar(c) => c.pop(),
        }
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.inner {
            Inner::Heap { heap, .. } => heap.peek().map(|s| s.at),
            Inner::Calendar(c) => c.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Heap { heap, .. } => heap.len(),
            Inner::Calendar(c) => c.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pops the earliest event only if it fires at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<Scheduled<E, K>> {
        match &mut self.inner {
            Inner::Heap { heap, .. } => {
                if heap.peek().is_some_and(|s| s.at <= now) {
                    heap.pop()
                } else {
                    None
                }
            }
            Inner::Calendar(c) => c.pop_due(now),
        }
    }

    /// Total retained storage (events) — capacity, not occupancy.
    pub fn capacity(&self) -> usize {
        match &self.inner {
            Inner::Heap { heap, .. } => heap.capacity(),
            Inner::Calendar(c) => c.capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn both() -> [EventQueue<usize>; 2] {
        [EventQueue::new(), EventQueue::calendar()]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in [EventQueue::new(), EventQueue::calendar()] {
            q.schedule(SimTime::from_millis(30), 3);
            q.schedule(SimTime::from_millis(10), 1);
            q.schedule(SimTime::from_millis(20), 2);
            assert_eq!(q.len(), 3);
            assert_eq!(q.pop().unwrap().event, 1);
            assert_eq!(q.pop().unwrap().event, 2);
            assert_eq!(q.pop().unwrap().event, 3);
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn fifo_among_ties() {
        for mut q in both() {
            for i in 0..100 {
                q.schedule(SimTime::from_millis(7), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop().unwrap().event, i);
            }
        }
    }

    #[test]
    fn pop_due_respects_now() {
        for mut q in [EventQueue::new(), EventQueue::calendar()] {
            q.schedule(SimTime::from_millis(5), "early");
            q.schedule(SimTime::from_millis(15), "late");
            assert_eq!(q.pop_due(SimTime::from_millis(10)).unwrap().event, "early");
            assert!(q.pop_due(SimTime::from_millis(10)).is_none());
            assert_eq!(q.pop_due(SimTime::from_millis(20)).unwrap().event, "late");
        }
    }

    #[test]
    fn schedule_in_offsets_from_now() {
        for mut q in [EventQueue::new(), EventQueue::calendar()] {
            q.schedule_in(SimTime::from_millis(10), SimDuration::from_millis(5), "x");
            assert_eq!(q.peek_time(), Some(SimTime::from_millis(15)));
        }
    }

    #[test]
    fn clear_keeps_capacity_and_resets_ties() {
        for mut q in both() {
            for i in 0..10 {
                q.schedule(SimTime::from_millis(1), i);
            }
            q.clear();
            assert!(q.is_empty());
            // After clear, tie order restarts from scratch like a fresh queue.
            q.schedule(SimTime::from_millis(2), 100);
            q.schedule(SimTime::from_millis(2), 200);
            assert_eq!(q.pop().unwrap().event, 100);
            assert_eq!(q.pop().unwrap().event, 200);
        }
    }

    #[test]
    fn peek_time_matches_pop() {
        for mut q in [EventQueue::<()>::new(), EventQueue::calendar()] {
            assert!(q.peek_time().is_none());
            q.schedule(SimTime::from_millis(9), ());
            assert_eq!(q.peek_time(), Some(SimTime::from_millis(9)));
        }
    }

    #[test]
    fn calendar_handles_far_future_overflow_and_late_inserts() {
        // Tiny ring (4 buckets × 1.024 ms) to force overflow migration.
        let mut q = EventQueue::calendar_with_geometry(10, 4);
        q.schedule(SimTime::from_millis(500), 500); // deep overflow
        q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(100), 100); // overflow
        assert_eq!(q.pop().unwrap().event, 1);
        // Behind-the-cursor insert after draining t=1: must pop immediately.
        q.schedule(SimTime::from_micros(500), 0);
        assert_eq!(q.pop().unwrap().event, 0);
        assert_eq!(q.pop().unwrap().event, 100);
        assert_eq!(q.pop().unwrap().event, 500);
        assert!(q.pop().is_none());
    }

    proptest! {
        /// Popping everything always yields a non-decreasing time sequence, and
        /// among equal times the original insertion order — on both backends.
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
            for mut q in [EventQueue::new(), EventQueue::calendar_with_geometry(6, 8)] {
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(SimTime::from_micros(t), i);
                }
                let mut last: Option<(SimTime, usize)> = None;
                while let Some(s) = q.pop() {
                    if let Some((lt, li)) = last {
                        prop_assert!(s.at >= lt);
                        if s.at == lt {
                            prop_assert!(s.event > li, "FIFO violated among ties");
                        }
                    }
                    last = Some((s.at, s.event));
                }
            }
        }

        /// Tie-order equivalence: an arbitrary interleaving of schedules and
        /// pops drained from both backends produces identical `(time, seq,
        /// payload)` sequences — the contract every determinism suite rests
        /// on. Times include far-future outliers (overflow tier) and
        /// behind-the-cursor values (clamped inserts).
        #[test]
        fn prop_heap_calendar_equivalence(
            ops in proptest::collection::vec((0u64..50_000, proptest::any::<bool>()), 1..300),
        ) {
            let mut heap = EventQueue::new();
            let mut cal = EventQueue::calendar_with_geometry(8, 8);
            for (payload, &(t, pop_after)) in ops.iter().enumerate() {
                heap.schedule(SimTime::from_micros(t), payload);
                cal.schedule(SimTime::from_micros(t), payload);
                if pop_after {
                    let a = heap.pop();
                    let b = cal.pop();
                    match (a, b) {
                        (Some(x), Some(y)) => {
                            prop_assert_eq!(x.at, y.at);
                            prop_assert_eq!(x.event, y.event);
                        }
                        (None, None) => {}
                        _ => prop_assert!(false, "one backend emptied early"),
                    }
                }
            }
            prop_assert_eq!(heap.len(), cal.len());
            loop {
                match (heap.pop(), cal.pop()) {
                    (Some(x), Some(y)) => {
                        prop_assert_eq!(x.at, y.at);
                        prop_assert_eq!(x.event, y.event);
                    }
                    (None, None) => break,
                    _ => prop_assert!(false, "length mismatch while draining"),
                }
            }
        }

        /// The multiplexing contract: N sessions interleave schedules into
        /// ONE tagged calendar queue (key = session id) while each session
        /// mirrors its schedules into a private untagged queue. Drained by
        /// increasing `pop_due` deadlines (the multiplexed driver's global
        /// tick loop), the shared stream demultiplexed by tag must observe
        /// exactly the `(time, payload)` sequence each private queue pops —
        /// and the global stream itself must be sorted by `(time, session)`
        /// within a deadline batch. Times include far-future outliers
        /// (overflow tier) and a tiny ring to force bucket churn.
        #[test]
        fn prop_tagged_pop_matches_private_queues(
            ops in proptest::collection::vec((0u64..4, 0u64..50_000), 1..300),
        ) {
            const SESSIONS: usize = 4;
            let mut shared: EventQueue<usize, u64> =
                EventQueue::calendar_keyed_with_geometry(8, 8);
            let mut private: Vec<EventQueue<usize>> =
                (0..SESSIONS).map(|_| EventQueue::calendar_with_geometry(8, 8)).collect();
            for (payload, &(session, t)) in ops.iter().enumerate() {
                shared.schedule_keyed(SimTime::from_micros(t), session, payload);
                private[session as usize].schedule(SimTime::from_micros(t), payload);
            }
            // Drain through the same pop_due cadence the mux driver uses.
            let mut demuxed: Vec<Vec<(SimTime, usize)>> = vec![Vec::new(); SESSIONS];
            let mut deadline = 0u64;
            while !shared.is_empty() {
                deadline += 1_000;
                let now = SimTime::from_micros(deadline);
                let mut prev: Option<(SimTime, u64)> = None;
                while let Some(s) = shared.pop_due(now) {
                    if let Some((pt, pk)) = prev {
                        prop_assert!(
                            (pt, pk) <= (s.at, s.key),
                            "global order violated: ({pt:?},{pk}) then ({:?},{})",
                            s.at, s.key
                        );
                    }
                    prev = Some((s.at, s.key));
                    demuxed[s.key as usize].push((s.at, s.event));
                }
            }
            for (k, q) in private.iter_mut().enumerate() {
                let solo: Vec<(SimTime, usize)> =
                    std::iter::from_fn(|| q.pop()).map(|s| (s.at, s.event)).collect();
                prop_assert_eq!(&demuxed[k], &solo, "session {} order diverged", k);
            }
        }
    }
}
