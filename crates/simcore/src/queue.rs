//! Deterministic event queue.
//!
//! A thin wrapper over [`BinaryHeap`] that orders events by `(time, sequence)`
//! so that events scheduled for the same instant pop in insertion order. This
//! is the property that makes whole-session simulations replay byte-identically
//! from a seed: `BinaryHeap` alone gives no stable order for ties.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// An event of type `E` scheduled for a particular instant.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub at: SimTime,
    seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    // Reversed: BinaryHeap is a max-heap, we want earliest-first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-heap of timestamped events.
///
/// ```
/// use simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "b");
/// q.schedule(SimTime::from_millis(1), "a");
/// q.schedule(SimTime::from_millis(2), "c");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
/// assert_eq!(order, vec!["a", "b", "c"]); // FIFO among equal times
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Drops all pending events but keeps the allocation, so a session
    /// engine or sweep runner can reuse one queue across many sessions.
    /// The tie-break sequence restarts too: a cleared queue replays
    /// identically to a fresh one.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` to fire `delay` after `now`.
    pub fn schedule_in(&mut self, now: SimTime, delay: SimDuration, event: E) {
        self.schedule(now + delay, event);
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pops the earliest event only if it fires at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<Scheduled<E>> {
        if self.peek_time().is_some_and(|t| t <= now) {
            self.heap.pop()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().event, 1);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_among_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_millis(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().event, i);
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), "early");
        q.schedule(SimTime::from_millis(15), "late");
        assert_eq!(q.pop_due(SimTime::from_millis(10)).unwrap().event, "early");
        assert!(q.pop_due(SimTime::from_millis(10)).is_none());
        assert_eq!(q.pop_due(SimTime::from_millis(20)).unwrap().event, "late");
    }

    #[test]
    fn schedule_in_offsets_from_now() {
        let mut q = EventQueue::new();
        q.schedule_in(SimTime::from_millis(10), SimDuration::from_millis(5), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(15)));
    }

    #[test]
    fn clear_keeps_capacity_and_resets_ties() {
        let mut q = EventQueue::with_capacity(64);
        for i in 0..10 {
            q.schedule(SimTime::from_millis(1), i);
        }
        q.clear();
        assert!(q.is_empty());
        // After clear, tie order restarts from scratch like a fresh queue.
        q.schedule(SimTime::from_millis(2), 100);
        q.schedule(SimTime::from_millis(2), 200);
        assert_eq!(q.pop().unwrap().event, 100);
        assert_eq!(q.pop().unwrap().event, 200);
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.schedule(SimTime::from_millis(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(9)));
    }

    proptest! {
        /// Popping everything always yields a non-decreasing time sequence, and
        /// among equal times the original insertion order.
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some(s) = q.pop() {
                if let Some((lt, li)) = last {
                    prop_assert!(s.at >= lt);
                    if s.at == lt {
                        prop_assert!(s.event > li, "FIFO violated among ties");
                    }
                }
                last = Some((s.at, s.event));
            }
        }
    }
}
