//! Reproducible RNG stream derivation.
//!
//! A whole experiment is keyed by a single `u64` seed. Each component
//! (channel model, cross-traffic generator, HARQ decoder, path jitter, ...)
//! gets its own *stream* derived from `(seed, stream id)`, so adding a new
//! consumer of randomness never perturbs the draws other components see —
//! a property the regression tests in the workspace rely on.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Well-known stream identifiers used across the workspace.
///
/// Keeping them in one registry documents every consumer of randomness and
/// prevents accidental stream collisions between crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RngStream {
    /// Wireless channel evolution (shadowing, fades) — uplink.
    ChannelUl,
    /// Wireless channel evolution — downlink.
    ChannelDl,
    /// Cross-traffic arrival process — uplink.
    CrossTrafficUl,
    /// Cross-traffic arrival process — downlink.
    CrossTrafficDl,
    /// HARQ transport-block decode outcomes.
    HarqDecode,
    /// RRC state-transition timing.
    Rrc,
    /// Non-RAN network path jitter/loss (forward direction).
    PathForward,
    /// Non-RAN network path jitter/loss (reverse direction).
    PathReverse,
    /// Media source (frame size variation, keyframes).
    MediaSource,
    /// Synthetic campus-dataset generation.
    CampusDataset,
    /// Free-form stream for tests and tools.
    Custom(u16),
}

impl RngStream {
    fn id(self) -> u64 {
        match self {
            RngStream::ChannelUl => 1,
            RngStream::ChannelDl => 2,
            RngStream::CrossTrafficUl => 3,
            RngStream::CrossTrafficDl => 4,
            RngStream::HarqDecode => 5,
            RngStream::Rrc => 6,
            RngStream::PathForward => 7,
            RngStream::PathReverse => 8,
            RngStream::MediaSource => 9,
            RngStream::CampusDataset => 10,
            RngStream::Custom(n) => 1000 + n as u64,
        }
    }
}

/// Derives an independent, reproducible RNG for (`seed`, `stream`).
///
/// Uses SplitMix64 over the combined key to whiten the seed material before
/// feeding `StdRng`; nearby seeds yield unrelated streams.
pub fn rng_for(seed: u64, stream: RngStream) -> StdRng {
    let mut z = seed ^ stream.id().wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut material = [0u8; 32];
    for chunk in material.chunks_mut(8) {
        z = splitmix64(&mut z);
        chunk.copy_from_slice(&z.to_le_bytes());
    }
    StdRng::from_seed(material)
}

/// Derives the `index`-th session seed from a sweep's master seed.
///
/// Sweep grids use this instead of `master + index` so that neighbouring
/// sessions get unrelated RNG streams: a SplitMix64 step over the combined
/// key whitens the material exactly like [`rng_for`] does for streams. The
/// derivation is pure, so a sweep can be partitioned across threads (or
/// machines) in any order and every session still sees the same seed.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
    splitmix64(&mut z)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_key_same_stream() {
        let a: Vec<u64> = rng_for(42, RngStream::HarqDecode)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u64> = rng_for(42, RngStream::HarqDecode)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_streams_diverge() {
        let a: u64 = rng_for(42, RngStream::ChannelUl).gen();
        let b: u64 = rng_for(42, RngStream::ChannelDl).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let a: u64 = rng_for(1, RngStream::Rrc).gen();
        let b: u64 = rng_for(2, RngStream::Rrc).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let a = derive_seed(42, 0);
        assert_eq!(a, derive_seed(42, 0), "derivation must be pure");
        let seeds: Vec<u64> = (0..100).map(|i| derive_seed(42, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "collisions in derived seeds");
        assert_ne!(derive_seed(42, 1), derive_seed(43, 1));
    }

    #[test]
    fn custom_streams_do_not_collide_with_builtin() {
        let builtin: u64 = rng_for(7, RngStream::CampusDataset).gen();
        let custom: u64 = rng_for(7, RngStream::Custom(0)).gen();
        assert_ne!(builtin, custom);
    }
}
