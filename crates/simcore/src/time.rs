//! Virtual time for the simulation: microsecond-resolution instants and
//! durations with saturating/checked arithmetic.
//!
//! All simulators in the workspace share this clock. Microseconds are fine
//! enough to place 5G NR slot boundaries exactly (a 30 kHz-SCS slot is 500 µs,
//! a 15 kHz-SCS slot 1000 µs) while keeping arithmetic in plain `u64`.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual clock, in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs an instant from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Constructs an instant from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Constructs an instant from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float (for plotting/report output).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Milliseconds since the epoch as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// `self - earlier`, or `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Constructs a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Constructs a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Constructs a duration from fractional seconds (rounding to µs).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "negative duration");
        SimDuration((s * 1_000_000.0).round() as u64)
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Length in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by a float factor (rounding), for jitter scaling.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k >= 0.0, "negative scale");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics on underflow; use [`SimTime::saturating_since`] when the order
    /// of the operands is not statically known.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// How many whole `rhs` fit in `self` (slot counting).
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.0005).as_micros(), 500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!((t - SimTime::from_millis(10)).as_millis(), 5);
        assert_eq!(
            SimTime::from_millis(3).saturating_since(SimTime::from_millis(9)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::from_millis(9).checked_since(SimTime::from_millis(3)),
            Some(SimDuration::from_millis(6))
        );
        assert_eq!(
            SimTime::from_millis(3).checked_since(SimTime::from_millis(9)),
            None
        );
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(SimDuration::from_millis(10).mul_f64(1.5).as_millis(), 15);
        assert_eq!(
            SimDuration::from_millis(10) * 3,
            SimDuration::from_millis(30)
        );
        assert_eq!(
            SimDuration::from_millis(10) / 2,
            SimDuration::from_millis(5)
        );
        assert_eq!(
            SimDuration::from_millis(10) / SimDuration::from_millis(3),
            3
        );
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(format!("{}", SimTime::from_secs(3)), "3.000s");
        assert_eq!(format!("{}", SimDuration::from_micros(1500)), "1.500ms");
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn negative_secs_f64_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
