//! # simcore — deterministic discrete-event simulation core
//!
//! The substrate every simulator crate in this workspace builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual clock types.
//! * [`EventQueue`] — a deterministic priority queue of timestamped events
//!   (FIFO among equal timestamps, so identical inputs replay identically).
//! * [`rng_for`] — derivation of independent, reproducible RNG streams from a
//!   single session seed.
//! * [`dist`] — the handful of distributions the simulators need (normal,
//!   log-normal, exponential), implemented directly so the workspace carries no
//!   extra dependency.
//!
//! The design follows the smoltcp idiom: event-driven, poll-based, simple and
//! robust, no macro or type tricks. There is deliberately no async runtime —
//! the workload is CPU-bound deterministic simulation, which async executors
//! are explicitly not meant for.

pub mod alloc_count;
pub mod dist;
pub mod queue;
pub mod rng;
pub mod time;

pub use queue::{CalendarQueue, EventQueue, Scheduled};
pub use rng::{derive_seed, rng_for, RngStream};
pub use time::{SimDuration, SimTime};
