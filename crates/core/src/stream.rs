//! Streaming incremental window analysis.
//!
//! The batch path ([`crate::events::extract_features`]) re-scans every record
//! of all five telemetry streams for each sliding-window position, so a
//! longitudinal sweep with step Δt over windows of length W redoes ≈ W/Δt
//! times the necessary work. The [`StreamingAnalyzer`] instead ingests
//! records once, in timestamp order, and maintains rolling window state —
//! monotonic min/max deques for the peak-then-drop conditions, rolling
//! counters and adjacent-pair counts for the existence conditions, rolling
//! 100 ms rate bins and 50 ms MCS groups for the binned conditions — so each
//! step costs O(records entering/leaving the window) plus a small
//! evaluation pass over pre-filtered per-feature series, with **bit-identical
//! output to the batch path** (the equivalence tests in this module and in
//! `tests/streaming_equivalence.rs` enforce it window by window).
//!
//! Exactness contract: the binned conditions (Table 5 rows 14 and 16) bin
//! time relative to the window start, so rolling bins reproduce them exactly
//! only when every window start falls on a bin boundary. [`StreamingAnalyzer::supports`]
//! checks that `warmup`, `step`, and `window` are multiples of the bin
//! granule (the LCM of the 100 ms rate bin and the configured MCS group);
//! [`Domino::analyze_streaming`] falls back to the batch path for
//! non-conforming configurations. The paper's configuration (W = 5 s,
//! Δt = 0.5 s, warmup 3 s, 50 ms MCS groups) conforms.

use std::collections::VecDeque;

use simcore::{SimDuration, SimTime};
use telemetry::{
    AppStatsRecord, DciRecord, Direction, GccNetworkState, GnbEvent, GnbLogRecord, PacketRecord,
    PlaybackStatsRecord, Resolution, StreamKind, TraceBundle,
};

use crate::detect::{trace_chains_in, Analysis, Domino, DominoConfig, WindowAnalysis};
use crate::events::Thresholds;
use crate::features::RanEvent;
use crate::features::{AppEvent, ClientSide, Feature, FeatureVector, PlaybackEvent};
use crate::graph::CausalGraph;

/// Width of the rate-comparison bins of Table 5 row 14, µs.
const BIN_US: u64 = 100_000;

/// Why a configuration cannot run on the streaming fast path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedConfig {
    /// The bin granule (µs) the window positions must align to.
    pub granule_us: u64,
}

impl std::fmt::Display for UnsupportedConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "streaming analysis requires warmup/step/window to be multiples of {} µs",
            self.granule_us
        )
    }
}

impl std::error::Error for UnsupportedConfig {}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

fn granule_us(th: &Thresholds) -> u64 {
    // Clamp before scaling, matching the group size the analyzer itself
    // uses for a degenerate `mcs_group_ms: 0`.
    let group_us = th.mcs_group_ms.max(1) * 1000;
    BIN_US / gcd(BIN_US, group_us) * group_us
}

// ---------------------------------------------------------------------------
// Rolling building blocks
// ---------------------------------------------------------------------------

/// Sliding min/max with first-occurrence order, via monotonic deques.
///
/// `push` keeps the max deque non-increasing and the min deque
/// non-decreasing while preserving the earliest occurrence of each extreme,
/// which is exactly the "first index attaining the extreme" the batch
/// peak-then-drop conditions (Table 5 rows 1–2 and 13) compute.
#[derive(Debug, Clone, Default)]
struct MinMaxWindow {
    max: VecDeque<(u64, SimTime, f64)>,
    min: VecDeque<(u64, SimTime, f64)>,
    next_seq: u64,
}

impl MinMaxWindow {
    fn push(&mut self, ts: SimTime, v: f64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        while self.max.back().is_some_and(|&(_, _, b)| b < v) {
            self.max.pop_back();
        }
        self.max.push_back((seq, ts, v));
        while self.min.back().is_some_and(|&(_, _, b)| b > v) {
            self.min.pop_back();
        }
        self.min.push_back((seq, ts, v));
    }

    fn expire(&mut self, from: SimTime) {
        while self.max.front().is_some_and(|&(_, ts, _)| ts < from) {
            self.max.pop_front();
        }
        while self.min.front().is_some_and(|&(_, ts, _)| ts < from) {
            self.min.pop_front();
        }
    }

    /// `(first_max_seq, max, first_min_seq, min)` of the live window.
    fn extrema(&self) -> Option<(u64, f64, u64, f64)> {
        let &(max_seq, _, max_v) = self.max.front()?;
        let &(min_seq, _, min_v) = self.min.front()?;
        Some((max_seq, max_v, min_seq, min_v))
    }

    fn clear(&mut self) {
        self.max.clear();
        self.min.clear();
        self.next_seq = 0;
    }
}

/// Rolling per-bin `f64` sums keyed by absolute bin index.
#[derive(Debug, Clone, Default)]
struct RollingBins {
    base: u64,
    bins: VecDeque<f64>,
}

impl RollingBins {
    fn add(&mut self, bin: u64, v: f64) {
        if self.bins.is_empty() {
            self.base = bin;
        }
        debug_assert!(bin >= self.base, "bins must fill in time order");
        while self.base + self.bins.len() as u64 <= bin {
            self.bins.push_back(0.0);
        }
        self.bins[(bin - self.base) as usize] += v;
    }

    fn expire(&mut self, first_kept: u64) {
        while self.base < first_kept && !self.bins.is_empty() {
            self.bins.pop_front();
            self.base += 1;
        }
        if self.bins.is_empty() && self.base < first_kept {
            self.base = first_kept;
        }
    }

    fn get(&self, bin: u64) -> f64 {
        if bin < self.base {
            return 0.0;
        }
        self.bins
            .get((bin - self.base) as usize)
            .copied()
            .unwrap_or(0.0)
    }

    fn clear(&mut self) {
        self.base = 0;
        self.bins.clear();
    }
}

/// One 50 ms MCS group: values in arrival order plus a lazily cached median.
#[derive(Debug, Clone, Default)]
struct McsGroup {
    values: Vec<f64>,
    median: Option<f64>,
}

/// Rolling MCS groups keyed by absolute group index.
#[derive(Debug, Clone, Default)]
struct RollingGroups {
    base: u64,
    groups: VecDeque<McsGroup>,
}

impl RollingGroups {
    fn add(&mut self, group: u64, mcs: f64) {
        if self.groups.is_empty() {
            self.base = group;
        }
        debug_assert!(group >= self.base, "groups must fill in time order");
        while self.base + self.groups.len() as u64 <= group {
            self.groups.push_back(McsGroup::default());
        }
        let g = &mut self.groups[(group - self.base) as usize];
        g.values.push(mcs);
        g.median = None;
    }

    fn expire(&mut self, first_kept: u64) {
        while self.base < first_kept && !self.groups.is_empty() {
            self.groups.pop_front();
            self.base += 1;
        }
        if self.groups.is_empty() && self.base < first_kept {
            self.base = first_kept;
        }
    }

    /// Pushes the medians of all non-empty groups in `[from_g, to_g)` onto
    /// `out`, in group order — the exact sequence the batch condition sorts.
    fn medians_into(&mut self, from_g: u64, to_g: u64, out: &mut Vec<f64>) {
        for g in from_g.max(self.base)..to_g.min(self.base + self.groups.len() as u64) {
            let slot = &mut self.groups[(g - self.base) as usize];
            if slot.values.is_empty() {
                continue;
            }
            let m = *slot.median.get_or_insert_with(|| {
                let mut s = slot.values.clone();
                s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                s[s.len() / 2]
            });
            out.push(m);
        }
    }

    fn clear(&mut self) {
        self.base = 0;
        self.groups.clear();
    }
}

/// The per-sample facts the app-event conditions need, precomputed at ingest.
#[derive(Debug, Clone, Copy)]
struct AppEntry {
    ts: SimTime,
    drain: bool,
    overuse: bool,
    cwnd_full: bool,
    pushback_neq_target: bool,
    resolution: Resolution,
    target_bitrate_bps: f64,
    pushback_rate_bps: f64,
    outstanding: f64,
}

/// Rolling state for one client's app-stats stream.
#[derive(Debug, Clone, Default)]
struct AppWindow {
    entries: VecDeque<AppEntry>,
    drain_count: usize,
    overuse_count: usize,
    cwnd_full_count: usize,
    neq_count: usize,
    res_down_pairs: usize,
    target_down_pairs: usize,
    pushback_down_pairs: usize,
    inbound_fps: MinMaxWindow,
    outbound_fps: MinMaxWindow,
}

fn target_drops(prev: &AppEntry, next: &AppEntry, eps: f64) -> bool {
    next.target_bitrate_bps < prev.target_bitrate_bps * (1.0 - eps)
}

fn pushback_drops(prev: &AppEntry, next: &AppEntry, eps: f64) -> bool {
    next.pushback_rate_bps < prev.pushback_rate_bps * (1.0 - eps)
}

impl AppWindow {
    fn push(&mut self, s: &AppStatsRecord, th: &Thresholds) {
        let e = AppEntry {
            ts: s.ts,
            drain: s.video_jitter_buffer_ms <= th.drain_level_ms && s.inbound_fps > 0.0,
            overuse: s.gcc_state == GccNetworkState::Overuse,
            cwnd_full: s.outstanding_bytes > s.cwnd_bytes,
            pushback_neq_target: (s.pushback_rate_bps - s.target_bitrate_bps).abs()
                > th.rate_drop_epsilon * s.target_bitrate_bps,
            resolution: s.outbound_resolution,
            target_bitrate_bps: s.target_bitrate_bps,
            pushback_rate_bps: s.pushback_rate_bps,
            outstanding: s.outstanding_bytes as f64,
        };
        self.drain_count += e.drain as usize;
        self.overuse_count += e.overuse as usize;
        self.cwnd_full_count += e.cwnd_full as usize;
        self.neq_count += e.pushback_neq_target as usize;
        if let Some(prev) = self.entries.back() {
            self.res_down_pairs += (e.resolution < prev.resolution) as usize;
            self.target_down_pairs += target_drops(prev, &e, th.rate_drop_epsilon) as usize;
            self.pushback_down_pairs += pushback_drops(prev, &e, th.rate_drop_epsilon) as usize;
        }
        self.inbound_fps.push(s.ts, s.inbound_fps);
        self.outbound_fps.push(s.ts, s.outbound_fps);
        self.entries.push_back(e);
    }

    fn expire(&mut self, from: SimTime, th: &Thresholds) {
        while self.entries.front().is_some_and(|e| e.ts < from) {
            let e = self.entries.pop_front().expect("non-empty");
            self.drain_count -= e.drain as usize;
            self.overuse_count -= e.overuse as usize;
            self.cwnd_full_count -= e.cwnd_full as usize;
            self.neq_count -= e.pushback_neq_target as usize;
            if let Some(next) = self.entries.front() {
                self.res_down_pairs -= (next.resolution < e.resolution) as usize;
                self.target_down_pairs -= target_drops(&e, next, th.rate_drop_epsilon) as usize;
                self.pushback_down_pairs -= pushback_drops(&e, next, th.rate_drop_epsilon) as usize;
            }
        }
        self.inbound_fps.expire(from);
        self.outbound_fps.expire(from);
    }

    /// Evaluates one app event exactly as the batch `app_event` does.
    fn event(&self, e: AppEvent, th: &Thresholds) -> bool {
        if self.entries.len() < 2 {
            return false;
        }
        match e {
            AppEvent::InboundFramerateDown => framerate_down(&self.inbound_fps, th),
            AppEvent::OutboundFramerateDown => framerate_down(&self.outbound_fps, th),
            AppEvent::OutboundResolutionDown => self.res_down_pairs > 0,
            AppEvent::JitterBufferDrain => self.drain_count > 0,
            AppEvent::TargetBitrateDown => self.target_down_pairs > 0,
            AppEvent::GccOveruse => self.overuse_count > 0,
            AppEvent::PushbackRateDown => self.pushback_down_pairs > 0,
            AppEvent::CwndFull => self.cwnd_full_count > 0,
            AppEvent::OutstandingBytesUp => rising_windowed_means(
                self.entries.iter().map(|e| e.outstanding),
                th.trend_subwindow,
                |prev, mean| mean > prev * 1.05 && mean > 1000.0,
            ),
            AppEvent::PushbackNeqTarget => self.neq_count > 0,
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.drain_count = 0;
        self.overuse_count = 0;
        self.cwnd_full_count = 0;
        self.neq_count = 0;
        self.res_down_pairs = 0;
        self.target_down_pairs = 0;
        self.pushback_down_pairs = 0;
        self.inbound_fps.clear();
        self.outbound_fps.clear();
    }
}

/// The per-sample facts the playback conditions need, precomputed at ingest.
#[derive(Debug, Clone, Copy)]
struct PlaybackEntry {
    ts: SimTime,
    buffer_low: bool,
    stalled: bool,
    target_rung: u8,
}

/// Rolling state for the ABR playback stream (rows 21–24), mirroring
/// [`AppWindow`]'s counter/pair-count discipline so the streaming path stays
/// bit-identical to the batch `playback_event` conditions.
#[derive(Debug, Clone, Default)]
struct PlaybackWindow {
    entries: VecDeque<PlaybackEntry>,
    buffer_low_count: usize,
    stall_count: usize,
    rung_down_pairs: usize,
    rung_change_pairs: usize,
}

impl PlaybackWindow {
    fn push(&mut self, s: &PlaybackStatsRecord, th: &Thresholds) {
        let e = PlaybackEntry {
            ts: s.ts,
            buffer_low: s.started && s.buffer_ms < th.playback_buffer_low_ms,
            stalled: s.stalled,
            target_rung: s.target_rung,
        };
        self.buffer_low_count += e.buffer_low as usize;
        self.stall_count += e.stalled as usize;
        if let Some(prev) = self.entries.back() {
            self.rung_down_pairs += (e.target_rung < prev.target_rung) as usize;
            self.rung_change_pairs += (e.target_rung != prev.target_rung) as usize;
        }
        self.entries.push_back(e);
    }

    fn expire(&mut self, from: SimTime) {
        while self.entries.front().is_some_and(|e| e.ts < from) {
            let e = self.entries.pop_front().expect("non-empty");
            self.buffer_low_count -= e.buffer_low as usize;
            self.stall_count -= e.stalled as usize;
            if let Some(next) = self.entries.front() {
                self.rung_down_pairs -= (next.target_rung < e.target_rung) as usize;
                self.rung_change_pairs -= (next.target_rung != e.target_rung) as usize;
            }
        }
    }

    /// Evaluates one playback event exactly as the batch `playback_event`
    /// does.
    fn event(&self, e: PlaybackEvent, th: &Thresholds) -> bool {
        if self.entries.len() < 2 {
            return false;
        }
        match e {
            PlaybackEvent::BufferLow => self.buffer_low_count > 0,
            PlaybackEvent::Stall => self.stall_count > 0,
            PlaybackEvent::LadderSwitchDown => self.rung_down_pairs > 0,
            PlaybackEvent::LadderOscillation => self.rung_change_pairs > th.ladder_switch_count,
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.buffer_low_count = 0;
        self.stall_count = 0;
        self.rung_down_pairs = 0;
        self.rung_change_pairs = 0;
    }
}

/// Rows 1–2 on rolling extrema: max > high, min < low, max strictly first.
fn framerate_down(w: &MinMaxWindow, th: &Thresholds) -> bool {
    match w.extrema() {
        Some((max_seq, max_v, min_seq, min_v)) => {
            max_v > th.framerate_high && min_v < th.framerate_low && max_seq < min_seq
        }
        None => false,
    }
}

/// Streaming equivalent of `windowed_means(values, sub).windows(2).any(pred)`:
/// one pass, no allocation, identical f64 accumulation order.
fn rising_windowed_means(
    values: impl Iterator<Item = f64>,
    sub: usize,
    pred: impl Fn(f64, f64) -> bool,
) -> bool {
    let sub = sub.max(1);
    let mut prev: Option<f64> = None;
    let mut acc = 0.0;
    let mut n = 0usize;
    for v in values {
        acc += v;
        n += 1;
        if n == sub {
            let mean = acc / sub as f64;
            if let Some(p) = prev {
                if pred(p, mean) {
                    return true;
                }
            }
            prev = Some(mean);
            acc = 0.0;
            n = 0;
        }
    }
    false
}

/// The chunk predicate of the batch `delay_uptrend` (rows 11–12): a later
/// sub-window mean exceeding the previous one by 5 %.
fn delay_pair_rises(prev: f64, mean: f64) -> bool {
    mean > prev * 1.05
}

/// One chunk-phase of a [`DelaySeries`]: the rolling means of the partition
/// whose chunk starts are ≡ `p` (mod `sub`) in global record index.
#[derive(Debug, Clone, Default)]
struct DelayPhase {
    /// Completed chunk means in partition order: `(start_index, mean)`.
    /// Consecutive entries' starts differ by exactly `sub`.
    means: VecDeque<(u64, f64)>,
    /// Adjacent pairs in `means` satisfying [`delay_pair_rises`].
    rising_pairs: usize,
}

impl DelayPhase {
    fn push_mean(&mut self, start: u64, mean: f64) {
        if let Some(&(_, prev)) = self.means.back() {
            self.rising_pairs += delay_pair_rises(prev, mean) as usize;
        }
        self.means.push_back((start, mean));
    }

    fn expire(&mut self, first_kept: u64) {
        while self.means.front().is_some_and(|&(s, _)| s < first_kept) {
            let (_, old) = self.means.pop_front().expect("non-empty");
            if let Some(&(_, next)) = self.means.front() {
                self.rising_pairs -= delay_pair_rises(old, next) as usize;
            }
        }
    }

    fn clear(&mut self) {
        self.means.clear();
        self.rising_pairs = 0;
    }
}

/// Rolling state for one of the four delay series (direction × RTCP-or-media).
///
/// The uptrend condition partitions the window's delays into chunks of
/// `trend_subwindow` **records** anchored at the window's first record, so
/// the chunk boundaries shift with every expiry — a naive incremental cache
/// keyed on one anchor is useless. Instead the series maintains all `sub`
/// possible partitions ("phases") at once: each pushed delay feeds every
/// phase's open-chunk accumulator (O(sub) per record, amortized constant),
/// completed chunk means land in per-phase deques with a rolling count of
/// rising adjacent pairs, and evaluating a window is O(1) — pick the phase
/// the current front index selects and read its pair count. Chunk means are
/// accumulated in exactly the batch order (sequential adds from 0.0, one
/// division by `sub`), so the equivalence with `delay_uptrend` is
/// bit-exact; `tests/streaming_equivalence.rs` fuzzes precisely the
/// boundary-shift cases.
#[derive(Debug, Clone, Default)]
struct DelaySeries {
    /// `(sent, delay_ms)` of delivered packets, in send order.
    delays: VecDeque<(SimTime, f64)>,
    above_floor: usize,
    /// Chunk length (`trend_subwindow.max(1)`), fixed at analyzer creation.
    sub: usize,
    /// Global index of `delays.front()`.
    base_idx: u64,
    /// One partition per chunk-start residue (`sub` entries).
    phases: Vec<DelayPhase>,
}

impl DelaySeries {
    /// Sets the chunk length and allocates the phase partitions.
    fn configure(&mut self, sub: usize) {
        self.sub = sub.max(1);
        self.phases = vec![DelayPhase::default(); self.sub];
    }

    fn push(&mut self, sent: SimTime, delay_ms: f64, th: &Thresholds) {
        self.above_floor += (delay_ms > th.delay_floor_ms) as usize;
        let g = self.base_idx + self.delays.len() as u64;
        self.delays.push_back((sent, delay_ms));
        // This record completes exactly one chunk across all `sub`
        // partitions: the one ending at g, belonging to the phase
        // `(g+1) mod sub`. Sum its values off the deque tail in push order
        // (sequential f64 adds from 0.0, matching the batch
        // `Iterator::sum` bit for bit). If the chunk would reach behind
        // the current window front, its early values are expired — and a
        // chunk starting before the front can never be evaluated, so it is
        // simply not materialised.
        if self.delays.len() >= self.sub {
            let sub = self.sub as u64;
            let start = g + 1 - sub;
            // Sum the last `sub` values via the deque's raw slices — this
            // runs for every delivered packet, and the slice loops compile
            // tighter than a `range()` iterator.
            let (head, tail) = self.delays.as_slices();
            let mut acc = 0.0;
            if tail.len() >= self.sub {
                for &(_, d) in &tail[tail.len() - self.sub..] {
                    acc += d;
                }
            } else {
                for &(_, d) in &head[head.len() - (self.sub - tail.len())..] {
                    acc += d;
                }
                for &(_, d) in tail {
                    acc += d;
                }
            }
            let mean = acc / self.sub as f64;
            self.phases[((g + 1) % sub) as usize].push_mean(start, mean);
        }
    }

    fn expire(&mut self, from: SimTime, th: &Thresholds) {
        while self.delays.front().is_some_and(|&(ts, _)| ts < from) {
            let (_, d) = self.delays.pop_front().expect("non-empty");
            self.above_floor -= (d > th.delay_floor_ms) as usize;
            self.base_idx += 1;
        }
        for phase in &mut self.phases {
            phase.expire(self.base_idx);
        }
    }

    /// Rows 11–12, exactly as the batch `delay_uptrend`, in O(1): the
    /// partition anchored at the window front is the phase whose residue
    /// the front index selects, and its rising-pair count is maintained
    /// incrementally.
    fn uptrend(&self, th: &Thresholds) -> bool {
        if self.delays.len() < 2 * th.trend_subwindow || self.above_floor == 0 {
            return false;
        }
        let p = (self.base_idx % self.sub as u64) as usize;
        self.phases[p].rising_pairs > 0
    }

    fn clear(&mut self) {
        self.delays.clear();
        self.above_floor = 0;
        self.base_idx = 0;
        for phase in &mut self.phases {
            phase.clear();
        }
    }
}

/// The compact DCI facts needed to reverse counters on expiry.
#[derive(Debug, Clone, Copy)]
struct DciEntry {
    ts: SimTime,
    direction: Direction,
    target: bool,
    first_tx: bool,
    retx: bool,
    prbs: u64,
}

fn dir_idx(d: Direction) -> usize {
    match d {
        Direction::Uplink => 0,
        Direction::Downlink => 1,
    }
}

/// Rolling state for the DCI stream, per direction where applicable.
#[derive(Debug, Clone, Default)]
struct DciWindow {
    entries: VecDeque<DciEntry>,
    prbs_ours: [u64; 2],
    prbs_others: [u64; 2],
    harq_retx: [usize; 2],
    first_tx_count: [usize; 2],
    ul_sched_count: usize,
    tbs: [MinMaxWindow; 2],
    tbs_bins: [RollingBins; 2],
    mcs_groups: [RollingGroups; 2],
    /// Target-UE RNTI sequence with rolling adjacent-difference count.
    rntis: VecDeque<(SimTime, u32)>,
    rnti_change_pairs: usize,
}

impl DciWindow {
    fn expire(&mut self, from: SimTime) {
        while self.entries.front().is_some_and(|e| e.ts < from) {
            let e = self.entries.pop_front().expect("non-empty");
            let i = dir_idx(e.direction);
            if e.target {
                self.prbs_ours[i] -= e.prbs;
                if e.direction == Direction::Uplink {
                    self.ul_sched_count -= 1;
                }
            } else {
                self.prbs_others[i] -= e.prbs;
            }
            if e.retx {
                self.harq_retx[i] -= 1;
            }
            if e.first_tx {
                self.first_tx_count[i] -= 1;
            }
        }
        while self.rntis.front().is_some_and(|&(ts, _)| ts < from) {
            let (_, old) = self.rntis.pop_front().expect("non-empty");
            if let Some(&(_, next)) = self.rntis.front() {
                self.rnti_change_pairs -= (next != old) as usize;
            }
        }
        for i in 0..2 {
            self.tbs[i].expire(from);
            self.tbs_bins[i].expire(from.as_micros() / BIN_US);
        }
    }

    /// Row 13 on rolling extrema: peak-then-drop with ≥ 4 first transmissions.
    fn tbs_down(&self, dir: Direction, th: &Thresholds) -> bool {
        let i = dir_idx(dir);
        if self.first_tx_count[i] < 4 {
            return false;
        }
        match self.tbs[i].extrema() {
            Some((max_seq, max_v, min_seq, min_v)) => {
                min_v < th.tbs_drop_fraction * max_v && max_seq < min_seq
            }
            None => false,
        }
    }

    /// Row 15 on rolling PRB sums.
    fn cross_traffic(&self, dir: Direction, th: &Thresholds) -> bool {
        let i = dir_idx(dir);
        self.prbs_ours[i] > 0
            && self.prbs_others[i] as f64 > th.cross_traffic_fraction * self.prbs_ours[i] as f64
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.prbs_ours = [0; 2];
        self.prbs_others = [0; 2];
        self.harq_retx = [0; 2];
        self.first_tx_count = [0; 2];
        self.ul_sched_count = 0;
        for i in 0..2 {
            self.tbs[i].clear();
            self.tbs_bins[i].clear();
            self.mcs_groups[i].clear();
        }
        self.rntis.clear();
        self.rnti_change_pairs = 0;
    }
}

// ---------------------------------------------------------------------------
// The analyzer
// ---------------------------------------------------------------------------

/// Incremental drop-in for the sliding-window pipeline: same configuration,
/// same [`WindowAnalysis`] output, O(records entering/leaving) per step.
///
/// Records are pushed in per-stream timestamp order (any interleaving across
/// streams); [`Self::emit`] then produces the analysis for one window. The
/// caller must have pushed every record with timestamp below the window end
/// before emitting — [`Self::analyze`] drives exactly that schedule over a
/// recorded [`TraceBundle`] via the telemetry crate's incremental cursor.
#[derive(Debug, Clone)]
pub struct StreamingAnalyzer {
    graph: CausalGraph,
    cfg: DominoConfig,
    group_us: u64,
    app: [AppWindow; 2],
    playback: PlaybackWindow,
    /// Indexed `[dir][rtcp]`.
    delays: [[DelaySeries; 2]; 2],
    app_bins: [RollingBins; 2],
    dci: DciWindow,
    rlc: VecDeque<(SimTime, Direction)>,
    rlc_count: [usize; 2],
    median_scratch: Vec<f64>,
    /// Highest record timestamp ingested; [`Self::emit`] checks it against
    /// the window end so live callers can't silently evaluate a window with
    /// future records already folded into the rolling counters.
    watermark: SimTime,
}

impl StreamingAnalyzer {
    /// Creates a streaming analyzer, or reports why the configuration cannot
    /// run on the exact incremental path.
    pub fn new(graph: CausalGraph, cfg: DominoConfig) -> Result<Self, UnsupportedConfig> {
        if !Self::supports(&cfg) {
            return Err(UnsupportedConfig {
                granule_us: granule_us(&cfg.thresholds),
            });
        }
        let group_us = cfg.thresholds.mcs_group_ms.max(1) * 1000;
        let mut delays: [[DelaySeries; 2]; 2] = Default::default();
        for row in &mut delays {
            for s in row {
                s.configure(cfg.thresholds.trend_subwindow);
            }
        }
        Ok(StreamingAnalyzer {
            graph,
            cfg,
            group_us,
            app: Default::default(),
            playback: Default::default(),
            delays,
            app_bins: Default::default(),
            dci: Default::default(),
            rlc: VecDeque::new(),
            rlc_count: [0; 2],
            median_scratch: Vec::new(),
            watermark: SimTime::ZERO,
        })
    }

    /// The paper's default configuration (always supported).
    pub fn with_defaults() -> Self {
        Self::new(crate::dsl::default_graph(), DominoConfig::default())
            .expect("default config is aligned")
    }

    /// Whether `cfg` aligns every window edge with the bin/group granule, the
    /// condition for bit-identical equivalence with the batch path.
    pub fn supports(cfg: &DominoConfig) -> bool {
        let g = granule_us(&cfg.thresholds);
        cfg.warmup.as_micros().is_multiple_of(g)
            && cfg.step.as_micros().is_multiple_of(g)
            && cfg.window.as_micros().is_multiple_of(g)
            && cfg.step > SimDuration::ZERO
    }

    /// The engine configuration.
    pub fn config(&self) -> &DominoConfig {
        &self.cfg
    }

    /// The underlying causal graph.
    pub fn graph(&self) -> &CausalGraph {
        &self.graph
    }

    /// Drops all window state (allocations are kept for reuse).
    pub fn reset(&mut self) {
        for a in &mut self.app {
            a.clear();
        }
        self.playback.clear();
        for row in &mut self.delays {
            for s in row {
                s.clear();
            }
        }
        for b in &mut self.app_bins {
            b.clear();
        }
        self.dci.clear();
        self.rlc.clear();
        self.rlc_count = [0; 2];
        self.watermark = SimTime::ZERO;
    }

    /// Ingests one app-stats sample for one client.
    pub fn push_app(&mut self, side: ClientSide, s: &AppStatsRecord) {
        self.watermark = self.watermark.max(s.ts);
        let i = match side {
            ClientSide::Local => 0,
            ClientSide::Remote => 1,
        };
        self.app[i].push(s, &self.cfg.thresholds);
    }

    /// Ingests one ABR playback sample.
    pub fn push_playback(&mut self, s: &PlaybackStatsRecord) {
        self.watermark = self.watermark.max(s.ts);
        self.playback.push(s, &self.cfg.thresholds);
    }

    /// Ingests one packet record. The record's `received` field must be
    /// final (this is a trace-analysis API, not an in-flight packet hook).
    pub fn push_packet(&mut self, p: &PacketRecord) {
        self.watermark = self.watermark.max(p.sent);
        let di = dir_idx(p.direction);
        self.app_bins[di].add(p.sent.as_micros() / BIN_US, p.size_bytes as f64 * 8.0);
        if let Some(d) = p.one_way_delay() {
            let rtcp = (p.stream == StreamKind::Rtcp) as usize;
            self.delays[di][rtcp].push(p.sent, d.as_millis_f64(), &self.cfg.thresholds);
        }
    }

    /// Ingests one DCI record.
    pub fn push_dci(&mut self, d: &DciRecord) {
        self.watermark = self.watermark.max(d.ts);
        // The per-direction group index uses the configured MCS granule.
        let group = d.ts.as_micros() / self.group_us;
        let i = dir_idx(d.direction);
        if d.is_target_ue {
            self.dci.mcs_groups[i].add(group, d.mcs as f64);
        }
        self.push_dci_inner(d);
    }

    fn push_dci_inner(&mut self, d: &DciRecord) {
        let i = dir_idx(d.direction);
        let e = DciEntry {
            ts: d.ts,
            direction: d.direction,
            target: d.is_target_ue,
            first_tx: d.is_target_ue && d.harq_retx_idx == 0,
            retx: d.is_target_ue && d.harq_retx_idx > 0,
            prbs: d.n_prbs as u64,
        };
        if e.target {
            self.dci.prbs_ours[i] += e.prbs;
            if d.direction == Direction::Uplink {
                self.dci.ul_sched_count += 1;
            }
            if let Some(&(_, last)) = self.dci.rntis.back() {
                self.dci.rnti_change_pairs += (last != d.rnti) as usize;
            }
            self.dci.rntis.push_back((d.ts, d.rnti));
        } else {
            self.dci.prbs_others[i] += e.prbs;
        }
        if e.retx {
            self.dci.harq_retx[i] += 1;
        }
        if e.first_tx {
            self.dci.first_tx_count[i] += 1;
            self.dci.tbs[i].push(d.ts, d.tbs_bits as f64);
            self.dci.tbs_bins[i].add(d.ts.as_micros() / BIN_US, d.tbs_bits as f64);
        }
        self.dci.entries.push_back(e);
    }

    /// Ingests one gNB log record.
    pub fn push_gnb(&mut self, g: &GnbLogRecord) {
        self.watermark = self.watermark.max(g.ts);
        if let GnbEvent::RlcRetx { direction, .. } = g.event {
            self.rlc_count[dir_idx(direction)] += 1;
            self.rlc.push_back((g.ts, direction));
        }
    }

    /// Ingests one batch of records surfaced by the telemetry cursor.
    pub fn push_slices(&mut self, s: &telemetry::StreamSlices<'_>) {
        for r in s.app_local {
            self.push_app(ClientSide::Local, r);
        }
        for r in s.app_remote {
            self.push_app(ClientSide::Remote, r);
        }
        for r in s.packets {
            self.push_packet(r);
        }
        for r in s.dci {
            self.push_dci(r);
        }
        for r in s.gnb {
            self.push_gnb(r);
        }
        for r in s.playback {
            self.push_playback(r);
        }
    }

    fn expire(&mut self, from: SimTime) {
        let th = self.cfg.thresholds.clone();
        for a in &mut self.app {
            a.expire(from, &th);
        }
        self.playback.expire(from);
        for row in &mut self.delays {
            for s in row {
                s.expire(from, &th);
            }
        }
        let from_bin = from.as_micros() / BIN_US;
        for b in &mut self.app_bins {
            b.expire(from_bin);
        }
        self.dci.expire(from);
        let from_group = from.as_micros() / self.group_us;
        for i in 0..2 {
            self.dci.mcs_groups[i].expire(from_group);
        }
        while self.rlc.front().is_some_and(|&(ts, _)| ts < from) {
            let (_, dir) = self.rlc.pop_front().expect("non-empty");
            self.rlc_count[dir_idx(dir)] -= 1;
        }
    }

    /// Emits the analysis for the window starting at `start`, expiring all
    /// state older than the window.
    ///
    /// Ingestion must sit exactly at the window end: every record with
    /// timestamp below `start + window` pushed, and none at or beyond it
    /// (the rolling counters have no upper clamp, so a future record would
    /// silently leak into this window). Checked in debug builds. Live
    /// consumers that receive records ahead of the analysis frontier must
    /// buffer them and release per window — which is exactly what
    /// [`TraceBundle::advance_until`] does for recorded traces.
    pub fn emit(&mut self, start: SimTime) -> WindowAnalysis {
        self.expire(start);
        let end = start + self.cfg.window;
        debug_assert!(
            self.watermark < end,
            "emit({start:?}): records up to {:?} already ingested past the window end {end:?}",
            self.watermark
        );
        let features = self.features(start, end);
        let (chains, unknown_consequences) = trace_chains_in(&self.graph, &features);
        WindowAnalysis {
            start,
            features,
            chains,
            unknown_consequences,
        }
    }

    /// Assembles the 40-dim feature vector from the rolling state.
    fn features(&mut self, from: SimTime, to: SimTime) -> FeatureVector {
        // All-scalar struct; cloning sidesteps a borrow conflict with the
        // `&mut self` median cache below.
        let th = self.cfg.thresholds.clone();
        let th = &th;
        let mut v = FeatureVector::new();

        // Application events (rows 1–10), both clients.
        for (i, side) in [(0usize, ClientSide::Local), (1, ClientSide::Remote)] {
            for e in AppEvent::ALL {
                v.set(Feature::App(side, e), self.app[i].event(e, th));
            }
        }

        // Packet-delay trends (rows 11–12).
        let media_up = self.delays[0][0].uptrend(th) || self.delays[1][0].uptrend(th);
        let rtcp_up = self.delays[0][1].uptrend(th) || self.delays[1][1].uptrend(th);
        v.set(Feature::ForwardDelayUp, media_up);
        v.set(Feature::ReverseDelayUp, rtcp_up);

        // 5G events per direction (rows 13–18).
        for dir in [Direction::Uplink, Direction::Downlink] {
            let i = dir_idx(dir);
            v.set(
                Feature::Ran(dir, RanEvent::AllocatedTbsDown),
                self.dci.tbs_down(dir, th),
            );
            v.set(
                Feature::Ran(dir, RanEvent::AppExceedsTbs),
                self.app_exceeds_tbs(dir, from, to, th),
            );
            v.set(
                Feature::Ran(dir, RanEvent::CrossTraffic),
                self.dci.cross_traffic(dir, th),
            );
            v.set(
                Feature::Ran(dir, RanEvent::ChannelDegrades),
                self.channel_degrades(i, from, to),
            );
            v.set(
                Feature::Ran(dir, RanEvent::HarqRetx),
                self.dci.harq_retx[i] > th.harq_retx_count,
            );
            v.set(Feature::Ran(dir, RanEvent::RlcRetx), self.rlc_count[i] > 0);
        }

        // Rows 19–20.
        v.set(Feature::UlScheduling, self.dci.ul_sched_count > 0);
        v.set(Feature::RrcStateChange, self.dci.rnti_change_pairs > 0);

        // Rows 21–24: ABR playback events.
        for e in PlaybackEvent::ALL {
            v.set(Feature::Playback(e), self.playback.event(e, th));
        }
        v
    }

    /// Row 14 over the rolling absolute-index bins.
    fn app_exceeds_tbs(&self, dir: Direction, from: SimTime, to: SimTime, th: &Thresholds) -> bool {
        let i = dir_idx(dir);
        let n_bins = ((to.as_micros() - from.as_micros()) / BIN_US).max(1);
        let from_bin = from.as_micros() / BIN_US;
        let mut exceeding = 0u64;
        for b in from_bin..from_bin + n_bins {
            let a = self.app_bins[i].get(b);
            let t = self.dci.tbs_bins[i].get(b);
            if a > 0.0 && a > t {
                exceeding += 1;
            }
        }
        exceeding as f64 > th.rate_exceed_fraction * n_bins as f64
    }

    /// Row 16 over the rolling MCS groups (medians cached once per group).
    fn channel_degrades(&mut self, i: usize, from: SimTime, to: SimTime) -> bool {
        let th = &self.cfg.thresholds;
        let from_g = from.as_micros() / self.group_us;
        let to_g = to.as_micros() / self.group_us;
        self.median_scratch.clear();
        let mut scratch = std::mem::take(&mut self.median_scratch);
        self.dci.mcs_groups[i].medians_into(from_g, to_g, &mut scratch);
        let result = if scratch.len() < 4 {
            false
        } else {
            scratch.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let p90 = scratch[((scratch.len() - 1) as f64 * 0.9) as usize];
            let low = scratch.iter().filter(|&&m| m < th.mcs_low_value).count();
            p90 < th.mcs_p90_below && low > th.mcs_low_count
        };
        self.median_scratch = scratch;
        result
    }

    /// Runs the full sliding-window sweep over a recorded bundle, producing
    /// the same [`Analysis`] as [`Domino::analyze`] in one incremental pass.
    pub fn analyze(&mut self, bundle: &TraceBundle) -> Analysis {
        self.reset();
        let horizon = bundle.horizon();
        let mut cur = bundle.cursor();
        let mut windows = Vec::new();
        let mut start = SimTime::ZERO + self.cfg.warmup;
        while start + self.cfg.window <= horizon {
            let end = start + self.cfg.window;
            let slices = bundle.advance_until(&mut cur, end);
            self.push_slices(&slices);
            windows.push(self.emit(start));
            start += self.cfg.step;
        }
        Analysis {
            windows,
            duration: bundle.meta.duration,
        }
    }
}

impl Domino {
    /// Analyzes a bundle on the streaming fast path when the configuration
    /// supports it, falling back to the batch path otherwise. Output is
    /// identical either way.
    pub fn analyze_streaming(&self, bundle: &TraceBundle) -> Analysis {
        match StreamingAnalyzer::new(self.graph().clone(), self.config().clone()) {
            Ok(mut s) => s.analyze(bundle),
            Err(_) => self.analyze(bundle),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::SessionMeta;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn assert_equivalent(bundle: &TraceBundle) {
        let domino = Domino::with_defaults();
        let batch = domino.analyze(bundle);
        let mut streaming =
            StreamingAnalyzer::new(domino.graph().clone(), domino.config().clone()).unwrap();
        let inc = streaming.analyze(bundle);
        assert_eq!(batch.windows.len(), inc.windows.len());
        for (b, s) in batch.windows.iter().zip(&inc.windows) {
            assert_eq!(b.start, s.start);
            assert_eq!(
                b.features,
                s.features,
                "window at {:?}: batch {:?} vs streaming {:?}",
                b.start,
                b.features.active_names(),
                s.features.active_names()
            );
            assert_eq!(b.chains, s.chains, "window at {:?}", b.start);
            assert_eq!(b.unknown_consequences, s.unknown_consequences);
        }
    }

    /// A deterministic pseudo-random bundle touching every feature family.
    fn synthetic_bundle(seed: u64, secs: u64) -> TraceBundle {
        use rand_like::Lcg;
        let mut b = TraceBundle::new(SessionMeta::baseline(
            "synthetic",
            SimDuration::from_secs(secs),
            seed,
        ));
        let mut rng = Lcg::new(seed);
        // App samples at 50 ms on both sides with occasional anomalies.
        for i in 0..(secs * 20) {
            let ts = t(i * 50);
            for side in 0..2 {
                let mut s = AppStatsRecord::baseline(ts);
                s.inbound_fps = 30.0
                    - (rng.next_f64() * 12.0) * ((rng.next_u64().is_multiple_of(7)) as u64 as f64);
                s.outbound_fps = 28.0 + rng.next_f64() * 4.0
                    - ((rng.next_u64().is_multiple_of(11)) as u64 as f64) * 8.0;
                s.video_jitter_buffer_ms = if rng.next_u64().is_multiple_of(37) {
                    0.0
                } else {
                    40.0 + rng.next_f64() * 80.0
                };
                s.target_bitrate_bps = 1.0e6 + rng.next_f64() * 2.0e6;
                s.pushback_rate_bps = s.target_bitrate_bps * (0.9 + rng.next_f64() * 0.2);
                s.outstanding_bytes = (rng.next_f64() * 40_000.0) as u64;
                s.cwnd_bytes = 30_000;
                s.outbound_resolution = match rng.next_u64() % 3 {
                    0 => Resolution::R360p,
                    1 => Resolution::R540p,
                    _ => Resolution::R720p,
                };
                if rng.next_u64().is_multiple_of(13) {
                    s.gcc_state = GccNetworkState::Overuse;
                }
                if side == 0 {
                    b.app_local.push(s);
                } else {
                    b.app_remote.push(s);
                }
            }
        }
        // Packets: media + RTCP, both directions, drifting delay, some loss.
        for i in 0..(secs * 100) {
            let sent = t(i * 10);
            let dir = if i.is_multiple_of(2) {
                Direction::Uplink
            } else {
                Direction::Downlink
            };
            let stream = if i.is_multiple_of(9) {
                StreamKind::Rtcp
            } else {
                StreamKind::Video
            };
            let lost = rng.next_u64().is_multiple_of(41);
            let base = 20.0 + (i as f64 / (secs * 100) as f64) * 90.0;
            let delay_ms = base + rng.next_f64() * 15.0;
            b.packets.push(PacketRecord {
                sent,
                received: if lost {
                    None
                } else {
                    Some(sent + SimDuration::from_micros((delay_ms * 1000.0) as u64))
                },
                direction: dir,
                stream,
                seq: i,
                size_bytes: 400 + (rng.next_u64() % 900) as u32,
            });
        }
        // DCI: target + cross-traffic, occasional retx and RNTI churn.
        for i in 0..(secs * 50) {
            let ts = t(i * 20);
            let dir = if i.is_multiple_of(2) {
                Direction::Uplink
            } else {
                Direction::Downlink
            };
            let ours = !rng.next_u64().is_multiple_of(4);
            let retx = (rng.next_u64().is_multiple_of(17)) as u8;
            b.dci.push(DciRecord {
                ts,
                rnti: if ours {
                    if i > secs * 25 && rng.next_u64().is_multiple_of(211) {
                        101
                    } else {
                        100
                    }
                } else {
                    900 + (rng.next_u64() % 50) as u32
                },
                direction: dir,
                is_target_ue: ours,
                n_prbs: 5 + (rng.next_u64() % 40) as u16,
                mcs: (3 + rng.next_u64() % 25) as u8,
                tbs_bits: 10_000 + (rng.next_u64() % 90_000) as u32,
                harq_id: 0,
                harq_retx_idx: retx,
                decoded_ok: true,
                proactive: false,
                used_bits: 0,
            });
            if ours && rng.next_u64().is_multiple_of(97) {
                b.gnb.push(GnbLogRecord {
                    ts,
                    event: GnbEvent::RlcRetx {
                        direction: dir,
                        sn: i as u32,
                    },
                });
            }
        }
        b.sort();
        b
    }

    /// Tiny deterministic generator for the synthetic bundles (keeps the
    /// test independent of the workspace RNG crate).
    mod rand_like {
        pub struct Lcg(u64);
        impl Lcg {
            pub fn new(seed: u64) -> Self {
                Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
            }
            pub fn next_u64(&mut self) -> u64 {
                self.0 = self
                    .0
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                self.0 >> 11
            }
            pub fn next_f64(&mut self) -> f64 {
                (self.next_u64() & ((1 << 53) - 1)) as f64 / (1u64 << 53) as f64
            }
        }
    }

    /// The amortized delay-trend state must agree with a literal
    /// re-implementation of the batch condition for every window position —
    /// especially when the expiry count per slide is *not* a multiple of
    /// `trend_subwindow`, which shifts every chunk boundary.
    #[test]
    fn delay_series_matches_batch_oracle_under_arbitrary_slides() {
        use rand_like::Lcg;
        let th = Thresholds::default();
        let oracle = |win: &[(SimTime, f64)]| -> bool {
            let delays: Vec<f64> = win.iter().map(|&(_, d)| d).collect();
            if delays.len() < 2 * th.trend_subwindow {
                return false;
            }
            if !delays.iter().any(|&d| d > th.delay_floor_ms) {
                return false;
            }
            let sub = th.trend_subwindow.max(1);
            let means: Vec<f64> = delays
                .chunks(sub)
                .filter(|c| c.len() == sub)
                .map(|c| c.iter().sum::<f64>() / c.len() as f64)
                .collect();
            means.windows(2).any(|w| w[1] > w[0] * 1.05)
        };
        for seed in [1u64, 5, 23] {
            let mut rng = Lcg::new(seed);
            let mut series = DelaySeries::default();
            series.configure(th.trend_subwindow);
            let mut shadow: Vec<(SimTime, f64)> = Vec::new();
            let mut ts = 0u64;
            let mut front = 0usize;
            for _ in 0..300 {
                // Push a burst of 0..12 delays with drifting magnitudes so
                // uptrends appear and disappear.
                for _ in 0..rng.next_u64() % 12 {
                    ts += 1 + rng.next_u64() % 40;
                    let d = 3.0 + rng.next_f64() * 40.0 + (ts as f64 / 200.0) % 35.0;
                    let t = SimTime::from_millis(ts);
                    series.push(t, d, &th);
                    shadow.push((t, d));
                }
                // Slide the window forward by an arbitrary number of records
                // (hits every chunk-boundary phase).
                let keep_from = if shadow.len() > front {
                    let max_expire = (shadow.len() - front) as u64;
                    front + (rng.next_u64() % (max_expire + 1)) as usize
                } else {
                    front
                };
                if keep_from > front {
                    let from = SimTime::from_micros(shadow[keep_from - 1].0.as_micros() + 1);
                    series.expire(from, &th);
                    front = keep_from;
                }
                assert_eq!(
                    series.uptrend(&th),
                    oracle(&shadow[front..]),
                    "seed {seed}: divergence with {} records in window",
                    shadow.len() - front
                );
            }
        }
    }

    #[test]
    fn supports_checks_alignment() {
        assert!(StreamingAnalyzer::supports(&DominoConfig::default()));
        let odd = DominoConfig {
            step: SimDuration::from_millis(333),
            ..Default::default()
        };
        assert!(!StreamingAnalyzer::supports(&odd));
        let odd_warmup = DominoConfig {
            warmup: SimDuration::from_millis(150),
            ..Default::default()
        };
        assert!(!StreamingAnalyzer::supports(&odd_warmup));
    }

    #[test]
    fn empty_bundle_matches_batch() {
        let b = TraceBundle::new(SessionMeta::baseline(
            "empty",
            SimDuration::from_secs(10),
            0,
        ));
        assert_equivalent(&b);
    }

    #[test]
    fn synthetic_bundles_match_batch_bit_for_bit() {
        for seed in [1u64, 7, 42] {
            let b = synthetic_bundle(seed, 25);
            // The synthetic trace must actually exercise detections, or the
            // equivalence claim is vacuous.
            let domino = Domino::with_defaults();
            let analysis = domino.analyze(&b);
            if seed == 1 {
                let active: usize = analysis
                    .windows
                    .iter()
                    .map(|w| w.features.count_active())
                    .sum();
                assert!(active > 0, "synthetic trace produced no active features");
            }
            assert_equivalent(&b);
        }
    }

    #[test]
    fn analyzer_reset_reuses_cleanly() {
        let b1 = synthetic_bundle(3, 15);
        let b2 = synthetic_bundle(4, 15);
        let domino = Domino::with_defaults();
        let mut s = StreamingAnalyzer::with_defaults();
        // Same analyzer across bundles: reset must drop all carryover.
        let first = s.analyze(&b1);
        let second = s.analyze(&b2);
        let batch2 = domino.analyze(&b2);
        assert_eq!(second.windows.len(), batch2.windows.len());
        for (a, e) in second.windows.iter().zip(&batch2.windows) {
            assert_eq!(a.features, e.features);
        }
        // And re-analyzing the first bundle reproduces the original result.
        let again = s.analyze(&b1);
        for (a, e) in again.windows.iter().zip(&first.windows) {
            assert_eq!(a.features, e.features);
        }
    }

    #[test]
    fn fallback_handles_unaligned_config() {
        let cfg = DominoConfig {
            step: SimDuration::from_millis(333),
            ..Default::default()
        };
        let domino = Domino::new(crate::dsl::default_graph(), cfg);
        let b = synthetic_bundle(9, 12);
        let batch = domino.analyze(&b);
        let via_streaming_entry = domino.analyze_streaming(&b);
        assert_eq!(batch.windows.len(), via_streaming_entry.windows.len());
        for (a, e) in via_streaming_entry.windows.iter().zip(&batch.windows) {
            assert_eq!(a.features, e.features);
        }
    }
}
