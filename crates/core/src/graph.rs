//! The user-reconfigurable causal DAG (paper §4, Fig. 9).
//!
//! Nodes are named events whose *predicate* is a disjunction of features
//! from the 36-dim vector (so a mechanism-level node like `harq_retx` can
//! cover both the UL and DL features). Edges point from cause toward
//! consequence. Roots of the DAG are root causes, leaves are user-visible
//! consequences; every root→leaf path is a candidate causal chain — the
//! default Fig. 9 graph yields exactly 24.

use std::collections::HashMap;
use std::fmt;

use crate::features::{Feature, FeatureVector};

/// Index of a node in the graph.
pub type NodeId = usize;

/// Graph construction / validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references an unknown node and the name is not a feature.
    UnknownNode(String),
    /// The graph contains a directed cycle through the named node.
    Cycle(String),
    /// A node has an empty predicate.
    EmptyPredicate(String),
    /// Duplicate alias definition.
    DuplicateAlias(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(n) => {
                write!(f, "node {n:?} is neither an alias nor a feature name")
            }
            GraphError::Cycle(n) => write!(f, "causal graph has a cycle through {n:?}"),
            GraphError::EmptyPredicate(n) => write!(f, "node {n:?} has no features"),
            GraphError::DuplicateAlias(n) => write!(f, "alias {n:?} defined twice"),
        }
    }
}

impl std::error::Error for GraphError {}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    predicate: Vec<Feature>,
}

/// The causal DAG.
#[derive(Debug, Clone)]
pub struct CausalGraph {
    nodes: Vec<Node>,
    name_to_id: HashMap<String, NodeId>,
    children: Vec<Vec<NodeId>>,
    parents: Vec<Vec<NodeId>>,
}

/// Incremental builder for [`CausalGraph`].
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
    name_to_id: HashMap<String, NodeId>,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Defines a named node with an explicit feature disjunction (an alias).
    pub fn define(&mut self, name: &str, features: Vec<Feature>) -> Result<NodeId, GraphError> {
        if let Some(&id) = self.name_to_id.get(name) {
            if !self.nodes[id].predicate.is_empty() {
                return Err(GraphError::DuplicateAlias(name.to_string()));
            }
            self.nodes[id].predicate = features;
            return Ok(id);
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            name: name.to_string(),
            predicate: features,
        });
        self.name_to_id.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks a node up by name, creating it implicitly if the name is a
    /// canonical feature name.
    pub fn node(&mut self, name: &str) -> Result<NodeId, GraphError> {
        if let Some(&id) = self.name_to_id.get(name) {
            return Ok(id);
        }
        match Feature::parse(name) {
            Some(f) => {
                let id = self.nodes.len();
                self.nodes.push(Node {
                    name: name.to_string(),
                    predicate: vec![f],
                });
                self.name_to_id.insert(name.to_string(), id);
                Ok(id)
            }
            None => Err(GraphError::UnknownNode(name.to_string())),
        }
    }

    /// Adds a directed edge `from → to` (idempotent).
    pub fn edge(&mut self, from: NodeId, to: NodeId) {
        if !self.edges.contains(&(from, to)) {
            self.edges.push((from, to));
        }
    }

    /// Validates (DAG, non-empty predicates) and produces the graph.
    pub fn build(self) -> Result<CausalGraph, GraphError> {
        for n in &self.nodes {
            if n.predicate.is_empty() {
                return Err(GraphError::EmptyPredicate(n.name.clone()));
            }
        }
        let n = self.nodes.len();
        let mut children = vec![Vec::new(); n];
        let mut parents = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            children[a].push(b);
            parents[b].push(a);
        }
        // Cycle check: Kahn's algorithm.
        let mut indeg: Vec<usize> = parents.iter().map(Vec::len).collect();
        let mut queue: Vec<NodeId> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &v in &children[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if seen != n {
            let cyclic = (0..n).find(|&i| indeg[i] > 0).expect("cycle member exists");
            return Err(GraphError::Cycle(self.nodes[cyclic].name.clone()));
        }
        Ok(CausalGraph {
            nodes: self.nodes,
            name_to_id: self.name_to_id,
            children,
            parents,
        })
    }
}

impl CausalGraph {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Node name.
    pub fn name(&self, id: NodeId) -> &str {
        &self.nodes[id].name
    }

    /// Node id by name.
    pub fn id(&self, name: &str) -> Option<NodeId> {
        self.name_to_id.get(name).copied()
    }

    /// The node's feature disjunction.
    pub fn predicate(&self, id: NodeId) -> &[Feature] {
        &self.nodes[id].predicate
    }

    /// Direct causes of `id`.
    pub fn parents(&self, id: NodeId) -> &[NodeId] {
        &self.parents[id]
    }

    /// Direct effects of `id`.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.children[id]
    }

    /// All edges.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut v = Vec::new();
        for (a, ch) in self.children.iter().enumerate() {
            for &b in ch {
                v.push((a, b));
            }
        }
        v
    }

    /// Root causes: nodes with no parents.
    pub fn roots(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.parents[i].is_empty())
            .collect()
    }

    /// Consequences: nodes with no children.
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.children[i].is_empty())
            .collect()
    }

    /// Whether the node's predicate holds under a feature vector.
    pub fn is_active(&self, id: NodeId, fv: &FeatureVector) -> bool {
        self.nodes[id].predicate.iter().any(|&f| fv.get(f))
    }

    /// Enumerates every root→leaf path (the candidate causal chains).
    pub fn enumerate_chains(&self) -> Vec<Vec<NodeId>> {
        let mut chains = Vec::new();
        for root in self.roots() {
            let mut path = vec![root];
            self.dfs_chains(root, &mut path, &mut chains);
        }
        chains
    }

    fn dfs_chains(&self, at: NodeId, path: &mut Vec<NodeId>, out: &mut Vec<Vec<NodeId>>) {
        if self.children[at].is_empty() {
            out.push(path.clone());
            return;
        }
        for &c in &self.children[at] {
            path.push(c);
            self.dfs_chains(c, path, out);
            path.pop();
        }
    }

    /// Backward trace (paper §4.2): starting from an *active* consequence,
    /// walk edges backward through active nodes; returns every complete
    /// active path root→…→consequence, as paths in forward order.
    pub fn backward_trace(&self, consequence: NodeId, fv: &FeatureVector) -> Vec<Vec<NodeId>> {
        let mut results = Vec::new();
        if !self.is_active(consequence, fv) {
            return results;
        }
        let mut path = vec![consequence];
        self.backward_dfs(consequence, fv, &mut path, &mut results);
        results
    }

    fn backward_dfs(
        &self,
        at: NodeId,
        fv: &FeatureVector,
        path: &mut Vec<NodeId>,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        let active_parents: Vec<NodeId> = self.parents[at]
            .iter()
            .copied()
            .filter(|&p| self.is_active(p, fv))
            .collect();
        if active_parents.is_empty() {
            if self.parents[at].is_empty() {
                // Reached a root: a complete chain.
                let mut chain = path.clone();
                chain.reverse();
                out.push(chain);
            }
            return;
        }
        for p in active_parents {
            path.push(p);
            self.backward_dfs(p, fv, path, out);
            path.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{AppEvent, ClientSide};

    fn diamond() -> CausalGraph {
        // a → m → c1 ; a → m → c2 ; b → m → c1/c2
        let mut g = GraphBuilder::new();
        let a = g.node("ul_harq_retx").unwrap();
        let b = g.node("dl_harq_retx").unwrap();
        let m = g.node("forward_delay_up").unwrap();
        let c1 = g.node("local_jitter_buffer_drain").unwrap();
        let c2 = g.node("local_target_bitrate_down").unwrap();
        g.edge(a, m);
        g.edge(b, m);
        g.edge(m, c1);
        g.edge(m, c2);
        g.build().unwrap()
    }

    #[test]
    fn roots_leaves_chains() {
        let g = diamond();
        assert_eq!(g.roots().len(), 2);
        assert_eq!(g.leaves().len(), 2);
        let chains = g.enumerate_chains();
        assert_eq!(chains.len(), 4);
        for c in &chains {
            assert_eq!(c.len(), 3);
        }
    }

    #[test]
    fn cycle_detection() {
        let mut g = GraphBuilder::new();
        let a = g.node("forward_delay_up").unwrap();
        let b = g.node("reverse_delay_up").unwrap();
        g.edge(a, b);
        g.edge(b, a);
        assert!(matches!(g.build(), Err(GraphError::Cycle(_))));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut g = GraphBuilder::new();
        assert!(matches!(
            g.node("not_a_feature"),
            Err(GraphError::UnknownNode(_))
        ));
    }

    #[test]
    fn alias_predicate_is_disjunction() {
        let mut g = GraphBuilder::new();
        let jb = g
            .define(
                "jitter_buffer_drain",
                vec![
                    Feature::App(ClientSide::Local, AppEvent::JitterBufferDrain),
                    Feature::App(ClientSide::Remote, AppEvent::JitterBufferDrain),
                ],
            )
            .unwrap();
        let m = g.node("forward_delay_up").unwrap();
        g.edge(m, jb);
        let g = g.build().unwrap();
        let mut fv = FeatureVector::new();
        assert!(!g.is_active(jb, &fv));
        fv.set(
            Feature::App(ClientSide::Remote, AppEvent::JitterBufferDrain),
            true,
        );
        assert!(g.is_active(jb, &fv));
    }

    #[test]
    fn backward_trace_finds_only_active_paths() {
        let g = diamond();
        let c1 = g.id("local_jitter_buffer_drain").unwrap();
        let mut fv = FeatureVector::new();
        // Nothing active: no chains.
        assert!(g.backward_trace(c1, &fv).is_empty());
        // Consequence + intermediate + one cause: one chain.
        fv.set(Feature::parse("local_jitter_buffer_drain").unwrap(), true);
        fv.set(Feature::parse("forward_delay_up").unwrap(), true);
        fv.set(Feature::parse("ul_harq_retx").unwrap(), true);
        let chains = g.backward_trace(c1, &fv);
        assert_eq!(chains.len(), 1);
        assert_eq!(g.name(chains[0][0]), "ul_harq_retx");
        assert_eq!(g.name(chains[0][2]), "local_jitter_buffer_drain");
        // Both causes active: two chains.
        fv.set(Feature::parse("dl_harq_retx").unwrap(), true);
        assert_eq!(g.backward_trace(c1, &fv).len(), 2);
        // Consequence active but intermediate not: no *complete* chain.
        let mut fv2 = FeatureVector::new();
        fv2.set(Feature::parse("local_jitter_buffer_drain").unwrap(), true);
        fv2.set(Feature::parse("ul_harq_retx").unwrap(), true);
        assert!(g.backward_trace(c1, &fv2).is_empty());
    }

    #[test]
    fn duplicate_alias_rejected() {
        let mut g = GraphBuilder::new();
        g.define("x", vec![Feature::parse("forward_delay_up").unwrap()])
            .unwrap();
        assert!(matches!(
            g.define("x", vec![Feature::parse("reverse_delay_up").unwrap()]),
            Err(GraphError::DuplicateAlias(_))
        ));
    }
}
