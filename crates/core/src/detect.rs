//! The sliding-window analysis engine (paper §4.2).
//!
//! Domino maintains a window of length W = 5 s, extracts the 36-dim feature
//! vector, finds active causal chains by backward trace through the graph,
//! then slides the window forward by Δt = 0.5 s.

use simcore::{SimDuration, SimTime};
use telemetry::TraceBundle;

use crate::events::{extract_features, Thresholds};
use crate::features::FeatureVector;
use crate::graph::{CausalGraph, NodeId};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct DominoConfig {
    /// Sliding-window length (paper: 5 s).
    pub window: SimDuration,
    /// Step between windows (paper: 0.5 s).
    pub step: SimDuration,
    /// Leading portion of the trace to skip (session ramp-up).
    pub warmup: SimDuration,
    /// Detection thresholds (Table 5 constants).
    pub thresholds: Thresholds,
}

impl Default for DominoConfig {
    fn default() -> Self {
        DominoConfig {
            window: SimDuration::from_secs(5),
            step: SimDuration::from_millis(500),
            warmup: SimDuration::from_secs(3),
            thresholds: Thresholds::default(),
        }
    }
}

/// One detected causal chain inside one window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainHit {
    /// Root cause node.
    pub cause: NodeId,
    /// Full path, cause first, consequence last.
    pub path: Vec<NodeId>,
    /// Consequence node.
    pub consequence: NodeId,
}

/// How much of the telemetry a verdict's window was actually analysed
/// with — the live pipeline's honesty annotation for degraded feeds.
///
/// A window analysed over gapped or late-dropped telemetry can report a
/// silently wrong cause; instead of hiding that, the live pipeline stamps
/// each verdict with what was missing. Derived purely from simulation
/// state, so it is byte-identical across partitionings like every other
/// live output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerdictCoverage {
    /// Records dropped for lateness since the previous window closed.
    pub late_drops: usize,
    /// Bitmask of telemetry streams (bit = `telemetry::TapStream::idx()`)
    /// that had produced records before but contributed none to this
    /// window's span — a gap or blackout, not a stream that never existed.
    pub gapped_streams: u8,
    /// `1.0` for a fully covered window, reduced per gapped stream and per
    /// late drop; floor 0.0.
    pub confidence: f64,
}

impl VerdictCoverage {
    /// Full coverage: nothing dropped, nothing gapped.
    pub fn full() -> Self {
        VerdictCoverage {
            late_drops: 0,
            gapped_streams: 0,
            confidence: 1.0,
        }
    }

    /// Whether anything was missing from this window's telemetry.
    pub fn is_degraded(&self) -> bool {
        self.late_drops > 0 || self.gapped_streams != 0
    }

    /// Number of gapped streams.
    pub fn gapped_count(&self) -> u32 {
        self.gapped_streams.count_ones()
    }
}

impl Default for VerdictCoverage {
    fn default() -> Self {
        Self::full()
    }
}

/// Analysis result for one window position.
#[derive(Debug, Clone)]
pub struct WindowAnalysis {
    /// Window start time.
    pub start: SimTime,
    /// Extracted features.
    pub features: FeatureVector,
    /// Complete chains found by backward trace.
    pub chains: Vec<ChainHit>,
    /// Active consequences with no complete chain to any root cause.
    pub unknown_consequences: Vec<NodeId>,
}

/// A full trace analysis: one entry per window position.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-window results, in time order.
    pub windows: Vec<WindowAnalysis>,
    /// Trace duration analysed (for per-minute normalisation).
    pub duration: SimDuration,
}

/// The Domino detector: a causal graph plus the window engine.
#[derive(Debug, Clone)]
pub struct Domino {
    graph: CausalGraph,
    cfg: DominoConfig,
}

impl Domino {
    /// Creates a detector over a custom graph.
    pub fn new(graph: CausalGraph, cfg: DominoConfig) -> Self {
        Domino { graph, cfg }
    }

    /// The paper's default configuration: Fig. 9 graph, W = 5 s, Δt = 0.5 s.
    pub fn with_defaults() -> Self {
        Domino::new(crate::dsl::default_graph(), DominoConfig::default())
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CausalGraph {
        &self.graph
    }

    /// The engine configuration.
    pub fn config(&self) -> &DominoConfig {
        &self.cfg
    }

    /// Runs the sliding-window analysis over a trace bundle.
    pub fn analyze(&self, bundle: &TraceBundle) -> Analysis {
        let horizon = bundle.horizon();
        let mut windows = Vec::new();
        let mut start = SimTime::ZERO + self.cfg.warmup;
        while start + self.cfg.window <= horizon {
            windows.push(self.analyze_window(bundle, start));
            start += self.cfg.step;
        }
        Analysis {
            windows,
            duration: bundle.meta.duration,
        }
    }

    /// Analyses a single window position.
    pub fn analyze_window(&self, bundle: &TraceBundle, start: SimTime) -> WindowAnalysis {
        let end = start + self.cfg.window;
        let features = extract_features(bundle, start, end, &self.cfg.thresholds);
        let (chains, unknown_consequences) = self.trace_chains(&features);
        WindowAnalysis {
            start,
            features,
            chains,
            unknown_consequences,
        }
    }

    /// Backward-traces every active consequence in a feature vector.
    pub fn trace_chains(&self, features: &FeatureVector) -> (Vec<ChainHit>, Vec<NodeId>) {
        trace_chains_in(&self.graph, features)
    }
}

/// Backward-traces every active consequence of `features` in `graph`.
///
/// Shared by the batch [`Domino`] engine and the incremental
/// [`crate::stream::StreamingAnalyzer`] so both produce chains from a
/// feature vector in exactly the same way.
pub fn trace_chains_in(
    graph: &CausalGraph,
    features: &FeatureVector,
) -> (Vec<ChainHit>, Vec<NodeId>) {
    let mut chains = Vec::new();
    let mut unknown = Vec::new();
    for leaf in graph.leaves() {
        if !graph.is_active(leaf, features) {
            continue;
        }
        let paths = graph.backward_trace(leaf, features);
        if paths.is_empty() {
            unknown.push(leaf);
        } else {
            for path in paths {
                chains.push(ChainHit {
                    cause: path[0],
                    consequence: *path.last().expect("non-empty path"),
                    path,
                });
            }
        }
    }
    (chains, unknown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::Feature;
    use telemetry::{AppStatsRecord, SessionMeta};

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn bundle_seconds(secs: u64) -> TraceBundle {
        let mut b = TraceBundle::new(SessionMeta::baseline("t", SimDuration::from_secs(secs), 0));
        // 50 ms cadence healthy samples so windows exist.
        for i in 0..(secs * 20) {
            let mut s = AppStatsRecord::baseline(t(i * 50));
            s.inbound_fps = 30.0;
            s.video_jitter_buffer_ms = 100.0;
            b.app_local.push(s.clone());
            b.app_remote.push(s);
        }
        b
    }

    #[test]
    fn window_count_matches_step() {
        let d = Domino::with_defaults();
        let b = bundle_seconds(20);
        let a = d.analyze(&b);
        // Horizon ≈ 20 s; warmup 3 s, window 5 s, step 0.5 s:
        // starts at 3.0 .. 15.0 → ≈ 24 windows.
        assert!((20..=26).contains(&a.windows.len()), "{}", a.windows.len());
        // Healthy trace: no chains anywhere.
        assert!(a.windows.iter().all(|w| w.chains.is_empty()));
    }

    #[test]
    fn drain_without_cause_is_unknown() {
        let d = Domino::with_defaults();
        let mut b = bundle_seconds(20);
        // Inject a jitter-buffer drain at 10 s with no 5G events at all.
        let idx = 200;
        b.app_local[idx].video_jitter_buffer_ms = 0.0;
        b.app_local[idx].inbound_fps = 10.0;
        let a = d.analyze(&b);
        let jb = d.graph().id("jitter_buffer_drain").unwrap();
        let affected: Vec<&WindowAnalysis> = a
            .windows
            .iter()
            .filter(|w| w.unknown_consequences.contains(&jb))
            .collect();
        assert!(
            !affected.is_empty(),
            "drain must be detected and unattributed"
        );
    }

    #[test]
    fn full_chain_detected_from_features() {
        let d = Domino::with_defaults();
        let mut fv = FeatureVector::new();
        fv.set(Feature::parse("dl_harq_retx").unwrap(), true);
        fv.set(Feature::parse("forward_delay_up").unwrap(), true);
        fv.set(Feature::parse("local_jitter_buffer_drain").unwrap(), true);
        let (chains, unknown) = d.trace_chains(&fv);
        assert!(unknown.is_empty());
        assert_eq!(chains.len(), 1);
        let g = d.graph();
        assert_eq!(g.name(chains[0].cause), "harq_retx");
        assert_eq!(g.name(chains[0].consequence), "jitter_buffer_drain");
        assert_eq!(chains[0].path.len(), 3);
    }

    #[test]
    fn pushback_reachable_via_both_paths() {
        let d = Domino::with_defaults();
        let mut fv = FeatureVector::new();
        fv.set(Feature::parse("ul_cross_traffic").unwrap(), true);
        fv.set(Feature::parse("forward_delay_up").unwrap(), true);
        fv.set(Feature::parse("reverse_delay_up").unwrap(), true);
        fv.set(Feature::parse("local_pushback_rate_down").unwrap(), true);
        let (chains, _) = d.trace_chains(&fv);
        // cross_traffic → fwd → pushback AND cross_traffic → rev → pushback.
        assert_eq!(chains.len(), 2);
        let mut mids: Vec<&str> = chains.iter().map(|c| d.graph().name(c.path[1])).collect();
        mids.sort();
        assert_eq!(mids, vec!["forward_delay_up", "reverse_delay_up"]);
    }
}
