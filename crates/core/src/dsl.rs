//! The text configuration language for causal chains (paper Fig. 11).
//!
//! Two statement forms, one per line:
//!
//! ```text
//! # comments and blank lines are ignored
//! alias harq_retx = ul_harq_retx | dl_harq_retx
//! dl_rlc_retx --> forward_delay_up --> local_jitter_buffer_drain
//! ```
//!
//! `alias` binds a mechanism-level name to a disjunction of feature names;
//! a chain line adds edges between consecutive elements. Elements that are
//! not aliases must be canonical feature names. [`DEFAULT_CONFIG`] encodes
//! the paper's Fig. 9 graph, whose root→leaf paths are the 24 default
//! chains (§4.2).

use crate::features::Feature;
use crate::graph::{CausalGraph, GraphBuilder, GraphError};

/// The paper's default causal graph (Fig. 9) in DSL form.
pub const DEFAULT_CONFIG: &str = r#"
# ---- Domino default causal graph (paper Fig. 9) ----
# Six root causes in the 5G stack, two delay intermediates, three WebRTC
# consequences; 24 root-to-leaf chains in total.

# Mechanism-level causes cover both link directions.
alias poor_channel = ul_channel_degrades | dl_channel_degrades
alias cross_traffic = ul_cross_traffic | dl_cross_traffic
alias harq_retx = ul_harq_retx | dl_harq_retx
alias rlc_retx = ul_rlc_retx | dl_rlc_retx

# Consequences can appear at either client.
alias jitter_buffer_drain = local_jitter_buffer_drain | remote_jitter_buffer_drain
alias target_bitrate_down = local_target_bitrate_down | remote_target_bitrate_down
alias pushback_rate_down = local_pushback_rate_down | remote_pushback_rate_down

# Causes inflate the forward (media) path delay...
poor_channel --> forward_delay_up
cross_traffic --> forward_delay_up
ul_scheduling --> forward_delay_up
harq_retx --> forward_delay_up
rlc_retx --> forward_delay_up
rrc_state_change --> forward_delay_up

# ...and the reverse (RTCP feedback) path delay.
poor_channel --> reverse_delay_up
cross_traffic --> reverse_delay_up
ul_scheduling --> reverse_delay_up
harq_retx --> reverse_delay_up
rlc_retx --> reverse_delay_up
rrc_state_change --> reverse_delay_up

# Forward-path delay reaches all three consequences (§6.1, §6.2, §6.3).
forward_delay_up --> jitter_buffer_drain
forward_delay_up --> target_bitrate_down
forward_delay_up --> pushback_rate_down

# Reverse-path delay only starves acknowledgments: pushback (Fig. 22).
reverse_delay_up --> pushback_rate_down
"#;

/// The causal graph for the ABR streaming workload in DSL form.
///
/// Same six 5G root causes as [`DEFAULT_CONFIG`], but the consequences are
/// playback-side: RAN starvation inflates the forward (segment) path delay,
/// which drains the playback buffer into a stall, and capacity oscillation
/// makes the ABR controller hunt the ladder. 12 root-to-leaf chains.
pub const ABR_CONFIG: &str = r#"
# ---- Domino ABR streaming causal graph ----
# Six root causes in the 5G stack, one delay intermediate, two playback
# consequences; 12 root-to-leaf chains in total.

alias poor_channel = ul_channel_degrades | dl_channel_degrades
alias cross_traffic = ul_cross_traffic | dl_cross_traffic
alias harq_retx = ul_harq_retx | dl_harq_retx
alias rlc_retx = ul_rlc_retx | dl_rlc_retx

# Causes inflate the forward (segment download) path delay.
poor_channel --> forward_delay_up
cross_traffic --> forward_delay_up
ul_scheduling --> forward_delay_up
harq_retx --> forward_delay_up
rlc_retx --> forward_delay_up
rrc_state_change --> forward_delay_up

# RAN starvation drains the playback buffer into a stall...
forward_delay_up --> playback_buffer_low --> playback_stall

# ...and capacity oscillation makes the controller hunt the ladder.
forward_delay_up --> ladder_switch_down --> ladder_oscillation
"#;

/// A parse failure with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn graph_err(line: usize, e: GraphError) -> ParseError {
    ParseError {
        line,
        message: e.to_string(),
    }
}

/// Parses DSL text into a validated causal graph.
pub fn parse(text: &str) -> Result<CausalGraph, ParseError> {
    let mut b = GraphBuilder::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("alias ") {
            let (name, def) = rest.split_once('=').ok_or(ParseError {
                line: lineno,
                message: "alias must be `alias name = f1 | f2 | ...`".to_string(),
            })?;
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(ParseError {
                    line: lineno,
                    message: format!("invalid alias name {name:?}"),
                });
            }
            let mut features = Vec::new();
            for part in def.split('|') {
                let part = part.trim();
                let f = Feature::parse(part).ok_or(ParseError {
                    line: lineno,
                    message: format!("unknown feature {part:?} in alias {name:?}"),
                })?;
                features.push(f);
            }
            if features.is_empty() {
                return Err(ParseError {
                    line: lineno,
                    message: format!("alias {name:?} has no features"),
                });
            }
            b.define(name, features).map_err(|e| graph_err(lineno, e))?;
            continue;
        }
        if line.contains("-->") {
            let parts: Vec<&str> = line.split("-->").map(str::trim).collect();
            if parts.iter().any(|p| p.is_empty()) || parts.len() < 2 {
                return Err(ParseError {
                    line: lineno,
                    message: "chain must be `a --> b [--> c ...]`".to_string(),
                });
            }
            let mut prev = b.node(parts[0]).map_err(|e| graph_err(lineno, e))?;
            for part in &parts[1..] {
                let next = b.node(part).map_err(|e| graph_err(lineno, e))?;
                b.edge(prev, next);
                prev = next;
            }
            continue;
        }
        return Err(ParseError {
            line: lineno,
            message: format!("unrecognised statement {line:?}"),
        });
    }
    b.build().map_err(|e| graph_err(0, e))
}

/// Emits a graph back as DSL text (aliases first, then one edge per line).
/// `parse(emit(g))` reproduces the same nodes and edges.
pub fn emit(g: &CausalGraph) -> String {
    let mut out = String::new();
    for id in 0..g.node_count() {
        let name = g.name(id);
        let pred = g.predicate(id);
        // Nodes whose name is just their single feature need no alias.
        let trivial = pred.len() == 1 && pred[0].name() == name;
        if !trivial {
            let feats: Vec<String> = pred.iter().map(|f| f.name()).collect();
            out.push_str(&format!("alias {} = {}\n", name, feats.join(" | ")));
        }
    }
    for (a, b) in g.edges() {
        out.push_str(&format!("{} --> {}\n", g.name(a), g.name(b)));
    }
    out
}

/// Parses the paper's default Fig. 9 configuration.
pub fn default_graph() -> CausalGraph {
    parse(DEFAULT_CONFIG).expect("default config is valid")
}

/// Parses the ABR streaming configuration ([`ABR_CONFIG`]).
pub fn abr_graph() -> CausalGraph {
    parse(ABR_CONFIG).expect("abr config is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_graph_has_24_chains() {
        let g = default_graph();
        assert_eq!(g.roots().len(), 6, "six root causes");
        assert_eq!(g.leaves().len(), 3, "three consequences");
        assert_eq!(g.enumerate_chains().len(), 24, "Fig. 9 yields 24 chains");
    }

    #[test]
    fn abr_graph_has_12_chains() {
        let g = abr_graph();
        assert_eq!(g.roots().len(), 6, "same six root causes");
        assert_eq!(g.leaves().len(), 2, "stall and oscillation");
        assert_eq!(g.enumerate_chains().len(), 12, "6 roots x 2 leaves");
        for chain in g.enumerate_chains() {
            assert_eq!(chain.len(), 4, "root -> delay -> precursor -> leaf");
        }
    }

    #[test]
    fn fig11_example_parses() {
        let g = parse(
            "dl_rlc_retx --> forward_delay_up --> local_jitter_buffer_drain\n\
             dl_harq_retx --> forward_delay_up --> local_jitter_buffer_drain\n",
        )
        .unwrap();
        assert_eq!(g.enumerate_chains().len(), 2);
        assert_eq!(g.roots().len(), 2);
        assert_eq!(g.leaves().len(), 1);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let g =
            parse("# hello\n\n  # indented comment\nul_harq_retx --> forward_delay_up # tail\n")
                .unwrap();
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("ul_harq_retx --> forward_delay_up\nbogus_feature --> forward_delay_up\n")
            .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus_feature"));

        let err = parse("alias x = \n").unwrap_err();
        assert_eq!(err.line, 1);

        let err = parse("this is not a statement\n").unwrap_err();
        assert!(err.message.contains("unrecognised"));
    }

    #[test]
    fn round_trip() {
        let g = default_graph();
        let text = emit(&g);
        let g2 = parse(&text).unwrap();
        assert_eq!(g.node_count(), g2.node_count());
        let names = |g: &CausalGraph| {
            let mut v: Vec<(String, String)> = g
                .edges()
                .into_iter()
                .map(|(a, b)| (g.name(a).to_string(), g.name(b).to_string()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(names(&g), names(&g2));
        assert_eq!(g2.enumerate_chains().len(), 24);
    }

    #[test]
    fn multi_hop_chain_line() {
        let g = parse("ul_harq_retx --> reverse_delay_up --> local_pushback_rate_down").unwrap();
        let chains = g.enumerate_chains();
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].len(), 3);
    }
}
