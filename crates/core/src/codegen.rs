//! Code generation from causal-chain definitions (paper Fig. 11).
//!
//! The paper's Domino "generates Python detection code directly from a
//! user's textual causal chain definition". Here the parsed graph compiles
//! into a [`DetectionProgram`] — a decision-trie IR mirroring Fig. 11's
//! nested conditionals — which can be (a) executed natively against a
//! feature vector and (b) emitted as Python or Rust source text identical
//! in structure to the paper's example. Tests assert the interpreter
//! agrees with the graph's backward trace.

use std::fmt::Write as _;

use crate::features::FeatureVector;
use crate::graph::{CausalGraph, NodeId};

/// One decision node of the compiled trie.
#[derive(Debug, Clone)]
pub struct IfNode {
    /// Graph node to test.
    pub node: NodeId,
    /// Nested tests, evaluated only when this node is active.
    pub then: Vec<IfNode>,
    /// Chain id emitted when this node (a root cause) is reached.
    pub emit: Option<usize>,
}

/// A compiled detection program: one trie per consequence, plus the chain
/// table mapping ids back to full paths.
#[derive(Debug, Clone)]
pub struct DetectionProgram {
    /// Top-level consequence tests.
    pub roots: Vec<IfNode>,
    /// Chain id → full path (cause first).
    pub chains: Vec<Vec<NodeId>>,
}

/// Result of executing a program on one feature vector.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProgramOutput {
    /// Consequence nodes found active.
    pub consequences: Vec<NodeId>,
    /// Root causes found active on complete chains.
    pub causes: Vec<NodeId>,
    /// Chain ids detected.
    pub chains: Vec<usize>,
}

/// Compiles a causal graph into a detection program.
///
/// The trie is keyed from consequence backward: consequence → intermediate
/// chain elements → root cause, matching Fig. 11's generated code shape.
pub fn compile(graph: &CausalGraph) -> DetectionProgram {
    let chains = graph.enumerate_chains();
    let mut roots: Vec<IfNode> = Vec::new();
    for (chain_id, chain) in chains.iter().enumerate() {
        // Insert the reversed chain into the trie.
        let mut level = &mut roots;
        let rev: Vec<NodeId> = chain.iter().rev().copied().collect();
        for (depth, &node) in rev.iter().enumerate() {
            let pos = match level.iter().position(|n| n.node == node) {
                Some(p) => p,
                None => {
                    level.push(IfNode {
                        node,
                        then: Vec::new(),
                        emit: None,
                    });
                    level.len() - 1
                }
            };
            if depth + 1 == rev.len() {
                level[pos].emit = Some(chain_id);
            }
            level = &mut level[pos].then;
        }
    }
    DetectionProgram { roots, chains }
}

impl DetectionProgram {
    /// Executes the program natively (the "backward_trace" of Fig. 11).
    pub fn run(&self, graph: &CausalGraph, fv: &FeatureVector) -> ProgramOutput {
        let mut out = ProgramOutput::default();
        for cons in &self.roots {
            if !graph.is_active(cons.node, fv) {
                continue;
            }
            if !out.consequences.contains(&cons.node) {
                out.consequences.push(cons.node);
            }
            Self::walk(&cons.then, graph, fv, &mut out);
            // The consequence itself may be a root (degenerate chain).
            if let Some(id) = cons.emit {
                out.chains.push(id);
            }
        }
        out.chains.sort_unstable();
        out
    }

    fn walk(level: &[IfNode], graph: &CausalGraph, fv: &FeatureVector, out: &mut ProgramOutput) {
        for n in level {
            if !graph.is_active(n.node, fv) {
                continue;
            }
            if let Some(id) = n.emit {
                out.chains.push(id);
                if !out.causes.contains(&n.node) {
                    out.causes.push(n.node);
                }
            }
            Self::walk(&n.then, graph, fv, out);
        }
    }

    /// Emits Python source in the shape of the paper's Fig. 11 listing.
    pub fn emit_python(&self, graph: &CausalGraph) -> String {
        let mut src = String::from("def backward_trace(features):\n");
        src.push_str("    chains = []; causes = set(); consequences = set()\n");
        for cons in &self.roots {
            let name = graph.name(cons.node);
            let _ = writeln!(src, "    if features[{name:?}]:");
            let _ = writeln!(src, "        consequences.add({name:?})  # consequence");
            Self::emit_python_level(&cons.then, graph, 2, &mut src);
        }
        src.push_str("    return [consequences, causes, chains]\n");
        src
    }

    fn emit_python_level(level: &[IfNode], graph: &CausalGraph, indent: usize, src: &mut String) {
        let pad = "    ".repeat(indent);
        for n in level {
            let name = graph.name(n.node);
            let _ = writeln!(src, "{pad}if features[{name:?}]:");
            if let Some(id) = n.emit {
                let _ = writeln!(src, "{pad}    chains.append({id})  # Chain {id}");
                let _ = writeln!(src, "{pad}    causes.add({name:?})  # cause");
            }
            Self::emit_python_level(&n.then, graph, indent + 1, src);
            if n.then.is_empty() && n.emit.is_none() {
                let _ = writeln!(src, "{pad}    pass");
            }
        }
    }

    /// Emits equivalent Rust source (for embedding in downstream tools).
    pub fn emit_rust(&self, graph: &CausalGraph) -> String {
        let mut src = String::from(
            "pub fn backward_trace(active: impl Fn(&str) -> bool) -> (Vec<&'static str>, Vec<&'static str>, Vec<usize>) {\n",
        );
        src.push_str("    let mut chains = Vec::new();\n");
        src.push_str("    let mut causes: Vec<&'static str> = Vec::new();\n");
        src.push_str("    let mut consequences: Vec<&'static str> = Vec::new();\n");
        for cons in &self.roots {
            let name = graph.name(cons.node);
            let _ = writeln!(src, "    if active({name:?}) {{");
            let _ = writeln!(src, "        consequences.push({name:?});");
            Self::emit_rust_level(&cons.then, graph, 2, &mut src);
            src.push_str("    }\n");
        }
        src.push_str("    (consequences, causes, chains)\n}\n");
        src
    }

    fn emit_rust_level(level: &[IfNode], graph: &CausalGraph, indent: usize, src: &mut String) {
        let pad = "    ".repeat(indent);
        for n in level {
            let name = graph.name(n.node);
            let _ = writeln!(src, "{pad}if active({name:?}) {{");
            if let Some(id) = n.emit {
                let _ = writeln!(src, "{pad}    chains.push({id});");
                let _ = writeln!(
                    src,
                    "{pad}    if !causes.contains(&{name:?}) {{ causes.push({name:?}); }}"
                );
            }
            Self::emit_rust_level(&n.then, graph, indent + 1, src);
            let _ = writeln!(src, "{pad}}}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{default_graph, parse};
    use crate::features::Feature;
    use proptest::prelude::*;

    #[test]
    fn fig11_example_compiles_and_runs() {
        let g = parse(
            "dl_rlc_retx --> forward_delay_up --> local_jitter_buffer_drain\n\
             dl_harq_retx --> forward_delay_up --> local_jitter_buffer_drain\n",
        )
        .unwrap();
        let prog = compile(&g);
        assert_eq!(prog.chains.len(), 2);

        let mut fv = FeatureVector::new();
        fv.set(Feature::parse("local_jitter_buffer_drain").unwrap(), true);
        fv.set(Feature::parse("forward_delay_up").unwrap(), true);
        fv.set(Feature::parse("dl_rlc_retx").unwrap(), true);
        let out = prog.run(&g, &fv);
        assert_eq!(out.consequences.len(), 1);
        assert_eq!(out.causes.len(), 1);
        assert_eq!(out.chains.len(), 1);
        assert_eq!(g.name(out.causes[0]), "dl_rlc_retx");

        // Both causes active → both chains, one consequence.
        fv.set(Feature::parse("dl_harq_retx").unwrap(), true);
        let out = prog.run(&g, &fv);
        assert_eq!(out.chains.len(), 2);
        assert_eq!(out.consequences.len(), 1);
    }

    #[test]
    fn python_emission_matches_fig11_shape() {
        let g = parse(
            "dl_rlc_retx --> forward_delay_up --> local_jitter_buffer_drain\n\
             dl_harq_retx --> forward_delay_up --> local_jitter_buffer_drain\n",
        )
        .unwrap();
        let py = compile(&g).emit_python(&g);
        assert!(py.starts_with("def backward_trace(features):"));
        assert!(py.contains("if features[\"local_jitter_buffer_drain\"]:"));
        assert!(py.contains("consequences.add(\"local_jitter_buffer_drain\")"));
        assert!(py.contains("if features[\"forward_delay_up\"]:"));
        assert!(py.contains("chains.append(0)"));
        assert!(py.contains("chains.append(1)"));
        assert!(py.contains("causes.add(\"dl_rlc_retx\")"));
        assert!(py.contains("return [consequences, causes, chains]"));
        // Valid indentation-based nesting: harq test nested under fwd test.
        let fwd_pos = py.find("forward_delay_up").unwrap();
        let harq_pos = py.find("dl_harq_retx").unwrap();
        assert!(harq_pos > fwd_pos);
    }

    #[test]
    fn rust_emission_compilable_shape() {
        let g = default_graph();
        let rs = compile(&g).emit_rust(&g);
        assert!(rs.contains("pub fn backward_trace"));
        assert!(rs.contains("active(\"jitter_buffer_drain\")"));
        // Balanced braces.
        let open = rs.matches('{').count();
        let close = rs.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn default_graph_program_has_24_chains() {
        let g = default_graph();
        let prog = compile(&g);
        assert_eq!(prog.chains.len(), 24);
    }

    proptest! {
        /// The compiled program agrees with the graph's backward trace on
        /// arbitrary feature vectors.
        #[test]
        fn prop_program_matches_backward_trace(bits in proptest::collection::vec(any::<bool>(), 36)) {
            let g = default_graph();
            let prog = compile(&g);
            let mut fv = FeatureVector::new();
            for (f, &b) in Feature::all().into_iter().zip(&bits) {
                fv.set(f, b);
            }
            let out = prog.run(&g, &fv);
            // Reference: chains from backward trace per leaf.
            let mut expected: Vec<Vec<NodeId>> = Vec::new();
            for leaf in g.leaves() {
                expected.extend(g.backward_trace(leaf, &fv));
            }
            let mut got: Vec<Vec<NodeId>> =
                out.chains.iter().map(|&id| prog.chains[id].clone()).collect();
            expected.sort();
            got.sort();
            prop_assert_eq!(got, expected);
        }
    }
}
