//! # domino-core — automated, cross-layer causal-chain detection
//!
//! The paper's primary contribution: given cross-layer trace data
//! (a [`telemetry::TraceBundle`]), Domino detects WebRTC quality
//! degradations and traces each back to its 5G root cause.
//!
//! Pipeline (paper §4):
//!
//! 1. [`features`] — the 40-dimension event space (2×10 app events +
//!    6×2 directional 5G events + 4 singletons + 4 ABR playback events).
//! 2. [`events`] — the 20 detection conditions of Table 5 / Appendix D,
//!    evaluated over a sliding window (W = 5 s, Δt = 0.5 s).
//! 3. [`graph`] — the user-reconfigurable causal DAG of Fig. 9
//!    (6 causes → delay intermediates → 3 consequences, 24 chains).
//! 4. [`dsl`] — the text configuration language (`a --> b --> c`,
//!    Fig. 11) with parse/emit round-tripping.
//! 5. [`detect`] — the sliding-window engine and backward-trace search.
//! 6. [`codegen`] — compilation of chain definitions into an executable
//!    decision program, with Python and Rust source emission (Fig. 11).
//! 7. [`stats`] — occurrence frequencies (Fig. 10), conditional
//!    probabilities (Table 2), and chain ratios (Table 4).
//!
//! ```
//! use domino_core::{Domino, ChainStats};
//! # use telemetry::{TraceBundle, SessionMeta};
//! # use simcore::SimDuration;
//! let domino = Domino::with_defaults();
//! # let bundle = TraceBundle::new(SessionMeta::baseline("x", SimDuration::from_secs(10), 0));
//! let analysis = domino.analyze(&bundle);
//! let stats = ChainStats::compute(domino.graph(), &analysis);
//! println!("{}", domino_core::stats::render_conditional_table(domino.graph(), &stats));
//! ```

pub mod codegen;
pub mod detect;
pub mod dsl;
pub mod events;
pub mod features;
pub mod graph;
pub mod stats;
pub mod stream;

pub use codegen::{compile, DetectionProgram, ProgramOutput};
pub use detect::{Analysis, ChainHit, Domino, DominoConfig, VerdictCoverage, WindowAnalysis};
pub use dsl::{abr_graph, default_graph, emit, parse, ParseError, ABR_CONFIG, DEFAULT_CONFIG};
pub use events::{extract_features, Thresholds};
pub use features::{
    AppEvent, ClientSide, Feature, FeatureVector, PlaybackEvent, RanEvent, FEATURE_COUNT,
};
pub use graph::{CausalGraph, GraphBuilder, GraphError, NodeId};
pub use stats::{
    render_chain_ratio_table, render_conditional_table, render_frequency_table, ChainStats,
};
pub use stream::{StreamingAnalyzer, UnsupportedConfig};
