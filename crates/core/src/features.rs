//! The 40-dimensional feature space of Domino's sliding-window detector.
//!
//! Per paper §4.2 / Appendix D: 10 application events extracted from both
//! clients (20 dims), 6 bidirectional 5G events extracted for UL and DL
//! (12 dims), plus forward/reverse packet-delay trends, uplink scheduling,
//! and RRC state change (4 dims) — 2×10 + 6×2 + 4 = 36 — plus 4 ABR
//! playback events for the streaming workload (dims 36–39). RTC bundles
//! carry no playback stream, so the playback dims are identically false
//! there and the original 36-dim semantics are unchanged.

use telemetry::Direction;

/// The ten per-client application events (Table 5, rows 1–10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppEvent {
    /// 1. Inbound frame rate dropped.
    InboundFramerateDown,
    /// 2. Outbound frame rate dropped.
    OutboundFramerateDown,
    /// 3. Outbound resolution stepped down.
    OutboundResolutionDown,
    /// 4. Jitter buffer drained to 0 ms.
    JitterBufferDrain,
    /// 5. Target bitrate decreased.
    TargetBitrateDown,
    /// 6. GCC detected overuse.
    GccOveruse,
    /// 7. Pushback rate decreased.
    PushbackRateDown,
    /// 8. Outstanding bytes exceeded the congestion window.
    CwndFull,
    /// 9. Windowed outstanding bytes trended up.
    OutstandingBytesUp,
    /// 10. Pushback rate diverged from the target bitrate.
    PushbackNeqTarget,
}

impl AppEvent {
    /// All ten, in Table 5 order.
    pub const ALL: [AppEvent; 10] = [
        AppEvent::InboundFramerateDown,
        AppEvent::OutboundFramerateDown,
        AppEvent::OutboundResolutionDown,
        AppEvent::JitterBufferDrain,
        AppEvent::TargetBitrateDown,
        AppEvent::GccOveruse,
        AppEvent::PushbackRateDown,
        AppEvent::CwndFull,
        AppEvent::OutstandingBytesUp,
        AppEvent::PushbackNeqTarget,
    ];

    fn ordinal(self) -> usize {
        Self::ALL.iter().position(|&e| e == self).expect("in ALL")
    }

    /// Canonical snake_case name fragment.
    pub fn name(self) -> &'static str {
        match self {
            AppEvent::InboundFramerateDown => "inbound_framerate_down",
            AppEvent::OutboundFramerateDown => "outbound_framerate_down",
            AppEvent::OutboundResolutionDown => "outbound_resolution_down",
            AppEvent::JitterBufferDrain => "jitter_buffer_drain",
            AppEvent::TargetBitrateDown => "target_bitrate_down",
            AppEvent::GccOveruse => "gcc_overuse",
            AppEvent::PushbackRateDown => "pushback_rate_down",
            AppEvent::CwndFull => "cwnd_full",
            AppEvent::OutstandingBytesUp => "outstanding_bytes_up",
            AppEvent::PushbackNeqTarget => "pushback_neq_target",
        }
    }
}

/// The six bidirectional 5G events (Table 5, rows 13–18).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RanEvent {
    /// 13. Allocated TBS dropped.
    AllocatedTbsDown,
    /// 14. App bitrate exceeded the allocated TBS.
    AppExceedsTbs,
    /// 15. Cross traffic took PRBs.
    CrossTraffic,
    /// 16. Channel degraded (low MCS).
    ChannelDegrades,
    /// 17. HARQ retransmissions above threshold.
    HarqRetx,
    /// 18. RLC retransmission logged by the gNB.
    RlcRetx,
}

impl RanEvent {
    /// All six, in Table 5 order.
    pub const ALL: [RanEvent; 6] = [
        RanEvent::AllocatedTbsDown,
        RanEvent::AppExceedsTbs,
        RanEvent::CrossTraffic,
        RanEvent::ChannelDegrades,
        RanEvent::HarqRetx,
        RanEvent::RlcRetx,
    ];

    fn ordinal(self) -> usize {
        Self::ALL.iter().position(|&e| e == self).expect("in ALL")
    }

    /// Canonical snake_case name fragment.
    pub fn name(self) -> &'static str {
        match self {
            RanEvent::AllocatedTbsDown => "tbs_down",
            RanEvent::AppExceedsTbs => "app_exceeds_tbs",
            RanEvent::CrossTraffic => "cross_traffic",
            RanEvent::ChannelDegrades => "channel_degrades",
            RanEvent::HarqRetx => "harq_retx",
            RanEvent::RlcRetx => "rlc_retx",
        }
    }
}

/// The four ABR playback events of the streaming workload (dims 36–39).
///
/// Extracted from the bundle's `playback` stream; always false for RTC
/// sessions, whose playback stream is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlaybackEvent {
    /// 21. Playback buffer fell below the low-water mark after startup.
    BufferLow,
    /// 22. Playback stalled (rebuffering) within the window.
    Stall,
    /// 23. The ABR controller switched down the bitrate ladder.
    LadderSwitchDown,
    /// 24. The controller hunted up and down the ladder (oscillation).
    LadderOscillation,
}

impl PlaybackEvent {
    /// All four, in index order.
    pub const ALL: [PlaybackEvent; 4] = [
        PlaybackEvent::BufferLow,
        PlaybackEvent::Stall,
        PlaybackEvent::LadderSwitchDown,
        PlaybackEvent::LadderOscillation,
    ];

    fn ordinal(self) -> usize {
        Self::ALL.iter().position(|&e| e == self).expect("in ALL")
    }

    /// Canonical snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            PlaybackEvent::BufferLow => "playback_buffer_low",
            PlaybackEvent::Stall => "playback_stall",
            PlaybackEvent::LadderSwitchDown => "ladder_switch_down",
            PlaybackEvent::LadderOscillation => "ladder_oscillation",
        }
    }
}

/// Which client an application event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientSide {
    /// The UE-side (cellular) client.
    Local,
    /// The wired peer.
    Remote,
}

impl ClientSide {
    /// Prefix used in feature names.
    pub fn prefix(self) -> &'static str {
        match self {
            ClientSide::Local => "local",
            ClientSide::Remote => "remote",
        }
    }
}

/// One of the 40 features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Feature {
    /// Application event at one client.
    App(ClientSide, AppEvent),
    /// 5G event in one direction.
    Ran(Direction, RanEvent),
    /// 11. Forward-path (media packets, either direction) delay uptrend.
    ///
    /// §6.3 defines forward as "the forward (media) path" and reverse as
    /// "the reverse (RTCP feedback) path".
    ForwardDelayUp,
    /// 12. Reverse-path (RTCP feedback packets) delay uptrend.
    ReverseDelayUp,
    /// 19. Transmission uses the 5G uplink channel.
    UlScheduling,
    /// 20. The UE's RNTI changed within the window.
    RrcStateChange,
    /// 21–24. ABR playback event (streaming workload).
    Playback(PlaybackEvent),
}

/// Total number of features.
pub const FEATURE_COUNT: usize = 40;

impl Feature {
    /// Fixed index of this feature in the vector.
    pub fn index(self) -> usize {
        match self {
            Feature::App(ClientSide::Local, e) => e.ordinal(),
            Feature::App(ClientSide::Remote, e) => 10 + e.ordinal(),
            Feature::ForwardDelayUp => 20,
            Feature::ReverseDelayUp => 21,
            Feature::Ran(Direction::Uplink, e) => 22 + e.ordinal(),
            Feature::Ran(Direction::Downlink, e) => 28 + e.ordinal(),
            Feature::UlScheduling => 34,
            Feature::RrcStateChange => 35,
            Feature::Playback(e) => 36 + e.ordinal(),
        }
    }

    /// All 40 features in index order.
    pub fn all() -> Vec<Feature> {
        let mut v = Vec::with_capacity(FEATURE_COUNT);
        for e in AppEvent::ALL {
            v.push(Feature::App(ClientSide::Local, e));
        }
        for e in AppEvent::ALL {
            v.push(Feature::App(ClientSide::Remote, e));
        }
        v.push(Feature::ForwardDelayUp);
        v.push(Feature::ReverseDelayUp);
        for e in RanEvent::ALL {
            v.push(Feature::Ran(Direction::Uplink, e));
        }
        for e in RanEvent::ALL {
            v.push(Feature::Ran(Direction::Downlink, e));
        }
        v.push(Feature::UlScheduling);
        v.push(Feature::RrcStateChange);
        for e in PlaybackEvent::ALL {
            v.push(Feature::Playback(e));
        }
        v
    }

    /// Canonical name, e.g. `local_jitter_buffer_drain`, `dl_rlc_retx`.
    pub fn name(self) -> String {
        match self {
            Feature::App(side, e) => format!("{}_{}", side.prefix(), e.name()),
            Feature::Ran(dir, e) => {
                let d = match dir {
                    Direction::Uplink => "ul",
                    Direction::Downlink => "dl",
                };
                format!("{}_{}", d, e.name())
            }
            Feature::ForwardDelayUp => "forward_delay_up".to_string(),
            Feature::ReverseDelayUp => "reverse_delay_up".to_string(),
            Feature::UlScheduling => "ul_scheduling".to_string(),
            Feature::RrcStateChange => "rrc_state_change".to_string(),
            Feature::Playback(e) => e.name().to_string(),
        }
    }

    /// Parses a canonical feature name.
    pub fn parse(name: &str) -> Option<Feature> {
        Feature::all().into_iter().find(|f| f.name() == name)
    }
}

/// A boolean vector over the 40 features for one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureVector {
    bits: [bool; FEATURE_COUNT],
}

impl Default for FeatureVector {
    fn default() -> Self {
        Self::new()
    }
}

impl FeatureVector {
    /// All-false vector.
    pub fn new() -> Self {
        FeatureVector {
            bits: [false; FEATURE_COUNT],
        }
    }

    /// Sets a feature.
    pub fn set(&mut self, f: Feature, v: bool) {
        self.bits[f.index()] = v;
    }

    /// Reads a feature.
    pub fn get(&self, f: Feature) -> bool {
        self.bits[f.index()]
    }

    /// Number of active features.
    pub fn count_active(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Active feature names (for reports/debugging).
    pub fn active_names(&self) -> Vec<String> {
        Feature::all()
            .into_iter()
            .filter(|f| self.get(*f))
            .map(|f| f.name())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_40_features_with_unique_indices() {
        let all = Feature::all();
        assert_eq!(all.len(), FEATURE_COUNT);
        let mut seen = [false; FEATURE_COUNT];
        for f in &all {
            assert!(!seen[f.index()], "duplicate index {}", f.index());
            seen[f.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn names_roundtrip() {
        for f in Feature::all() {
            assert_eq!(Feature::parse(&f.name()), Some(f), "{}", f.name());
        }
        assert_eq!(Feature::parse("nonsense"), None);
    }

    #[test]
    fn paper_fig11_names_exist() {
        // The names used in the paper's Fig. 11 example must parse.
        assert!(Feature::parse("dl_rlc_retx").is_some());
        assert!(Feature::parse("dl_harq_retx").is_some());
        assert!(Feature::parse("forward_delay_up").is_some());
        assert!(Feature::parse("local_jitter_buffer_drain").is_some());
    }

    #[test]
    fn playback_features_occupy_the_tail() {
        assert_eq!(Feature::Playback(PlaybackEvent::BufferLow).index(), 36);
        assert_eq!(
            Feature::Playback(PlaybackEvent::LadderOscillation).index(),
            39
        );
        assert!(Feature::parse("playback_stall").is_some());
        assert!(Feature::parse("ladder_oscillation").is_some());
    }

    #[test]
    fn vector_set_get() {
        let mut v = FeatureVector::new();
        assert_eq!(v.count_active(), 0);
        v.set(Feature::RrcStateChange, true);
        v.set(Feature::App(ClientSide::Local, AppEvent::GccOveruse), true);
        assert!(v.get(Feature::RrcStateChange));
        assert_eq!(v.count_active(), 2);
        assert!(v.active_names().contains(&"local_gcc_overuse".to_string()));
    }
}
