//! Chain and event statistics over an analysis: the numbers behind Fig. 10
//! (occurrence frequency per minute), Table 2 (conditional probability of
//! cause given consequence, with an Unknown column), and Table 4 (each
//! chain's share of all detected chains).
//!
//! Occurrence counting uses *onset* semantics: with a 5 s window sliding in
//! 0.5 s steps, one physical event is visible in ~10 consecutive windows;
//! an event is counted when its node is active in a window but was not in
//! the previous one.

use std::collections::HashMap;

use crate::detect::Analysis;
use crate::graph::{CausalGraph, NodeId};

/// Aggregated statistics over one analysed trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChainStats {
    /// Trace length in minutes.
    pub minutes: f64,
    /// Onset counts per root cause.
    pub cause_onsets: HashMap<String, usize>,
    /// Onset counts per consequence.
    pub consequence_onsets: HashMap<String, usize>,
    /// Windows in which each consequence was active.
    pub consequence_windows: HashMap<String, usize>,
    /// Windows in which each (cause, consequence) chain was found.
    pub chain_windows: HashMap<(String, String), usize>,
    /// Windows in which a consequence was active with no complete chain.
    pub unknown_windows: HashMap<String, usize>,
    /// Total chain-window observations.
    pub total_chain_windows: usize,
}

impl ChainStats {
    /// Computes statistics from an analysis.
    pub fn compute(graph: &CausalGraph, analysis: &Analysis) -> ChainStats {
        let minutes = (analysis.duration.as_secs_f64() / 60.0).max(1e-9);
        let mut s = ChainStats {
            minutes,
            ..Default::default()
        };
        let roots = graph.roots();
        let leaves = graph.leaves();

        let mut prev_active: HashMap<NodeId, bool> = HashMap::new();
        for w in &analysis.windows {
            for &node in roots.iter().chain(leaves.iter()) {
                let active = graph.is_active(node, &w.features);
                let was = prev_active.insert(node, active).unwrap_or(false);
                if active && !was {
                    let name = graph.name(node).to_string();
                    if roots.contains(&node) {
                        *s.cause_onsets.entry(name).or_default() += 1;
                    } else {
                        *s.consequence_onsets.entry(name).or_default() += 1;
                    }
                }
                if active && leaves.contains(&node) {
                    *s.consequence_windows
                        .entry(graph.name(node).to_string())
                        .or_default() += 1;
                }
            }
            // Chains: count each (cause, consequence) pair once per window.
            let mut seen: Vec<(NodeId, NodeId)> = Vec::new();
            for c in &w.chains {
                if !seen.contains(&(c.cause, c.consequence)) {
                    seen.push((c.cause, c.consequence));
                    let key = (
                        graph.name(c.cause).to_string(),
                        graph.name(c.consequence).to_string(),
                    );
                    *s.chain_windows.entry(key).or_default() += 1;
                    s.total_chain_windows += 1;
                }
            }
            for &u in &w.unknown_consequences {
                *s.unknown_windows
                    .entry(graph.name(u).to_string())
                    .or_default() += 1;
            }
        }
        s
    }

    /// Merges another trace's statistics into this one (used to aggregate
    /// the commercial or private cells, as Fig. 10/Tables 2 and 4 do).
    pub fn merge(&mut self, other: &ChainStats) {
        self.minutes += other.minutes;
        for (k, v) in &other.cause_onsets {
            *self.cause_onsets.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.consequence_onsets {
            *self.consequence_onsets.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.consequence_windows {
            *self.consequence_windows.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.chain_windows {
            *self.chain_windows.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.unknown_windows {
            *self.unknown_windows.entry(k.clone()).or_default() += v;
        }
        self.total_chain_windows += other.total_chain_windows;
    }

    /// Serialises the statistics as a versioned plain-text block (the
    /// shard-report wire format of `domino-sweep`): tab-separated lines,
    /// map keys escaped with [`escape_field`] and sorted, so equal stats
    /// encode to identical bytes. `minutes` is written as the hex of its
    /// IEEE-754 bits for an exact round trip.
    pub fn encode_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "chainstats\tv1");
        let _ = writeln!(out, "minutes\t{:016x}", self.minutes.to_bits());
        for (tag, map) in [
            ("cause_onsets", &self.cause_onsets),
            ("consequence_onsets", &self.consequence_onsets),
            ("consequence_windows", &self.consequence_windows),
            ("unknown_windows", &self.unknown_windows),
        ] {
            let mut entries: Vec<(&String, &usize)> = map.iter().collect();
            entries.sort_by(|a, b| a.0.cmp(b.0));
            let _ = writeln!(out, "map\t{tag}\t{}", entries.len());
            for (k, v) in entries {
                let _ = writeln!(out, "kv\t{}\t{v}", escape_field(k));
            }
        }
        let mut chains: Vec<(&(String, String), &usize)> = self.chain_windows.iter().collect();
        chains.sort_by(|a, b| a.0.cmp(b.0));
        let _ = writeln!(out, "map\tchain_windows\t{}", chains.len());
        for ((cause, cons), v) in chains {
            let _ = writeln!(
                out,
                "kv2\t{}\t{}\t{v}",
                escape_field(cause),
                escape_field(cons)
            );
        }
        let _ = writeln!(out, "total_chain_windows\t{}", self.total_chain_windows);
        let _ = writeln!(out, "end\tchainstats");
    }

    /// Parses one block written by [`Self::encode_into`] from a line
    /// iterator, consuming up to and including the `end chainstats` line.
    pub fn parse_from<'a>(
        lines: &mut impl Iterator<Item = &'a str>,
    ) -> Result<ChainStats, StatsParseError> {
        let err = |msg: &str| StatsParseError(msg.to_string());
        let mut next = || lines.next().ok_or_else(|| err("unexpected end of input"));

        let header = next()?;
        if header != "chainstats\tv1" {
            return Err(StatsParseError(format!(
                "bad chainstats header: {header:?}"
            )));
        }
        let minutes_line = next()?;
        let bits = minutes_line
            .strip_prefix("minutes\t")
            .ok_or_else(|| err("expected minutes line"))?;
        let minutes =
            f64::from_bits(u64::from_str_radix(bits, 16).map_err(|_| err("bad minutes bits"))?);
        let mut s = ChainStats {
            minutes,
            ..Default::default()
        };

        for tag in [
            "cause_onsets",
            "consequence_onsets",
            "consequence_windows",
            "unknown_windows",
            "chain_windows",
        ] {
            let head = next()?;
            let count: usize = head
                .strip_prefix("map\t")
                .and_then(|rest| rest.strip_prefix(tag))
                .and_then(|rest| rest.strip_prefix('\t'))
                .ok_or_else(|| StatsParseError(format!("expected map {tag}, got {head:?}")))?
                .parse()
                .map_err(|_| err("bad map count"))?;
            for _ in 0..count {
                let line = next()?;
                if tag == "chain_windows" {
                    let rest = line
                        .strip_prefix("kv2\t")
                        .ok_or_else(|| err("expected kv2 line"))?;
                    let mut parts = rest.split('\t');
                    let cause = unescape_field(parts.next().ok_or_else(|| err("kv2 cause"))?)?;
                    let cons = unescape_field(parts.next().ok_or_else(|| err("kv2 consequence"))?)?;
                    let v: usize = parts
                        .next()
                        .ok_or_else(|| err("kv2 count"))?
                        .parse()
                        .map_err(|_| err("bad kv2 count"))?;
                    s.chain_windows.insert((cause, cons), v);
                } else {
                    let rest = line
                        .strip_prefix("kv\t")
                        .ok_or_else(|| err("expected kv line"))?;
                    let (k, v) = rest
                        .rsplit_once('\t')
                        .ok_or_else(|| err("kv missing value"))?;
                    let k = unescape_field(k)?;
                    let v: usize = v.parse().map_err(|_| err("bad kv count"))?;
                    match tag {
                        "cause_onsets" => s.cause_onsets.insert(k, v),
                        "consequence_onsets" => s.consequence_onsets.insert(k, v),
                        "consequence_windows" => s.consequence_windows.insert(k, v),
                        _ => s.unknown_windows.insert(k, v),
                    };
                }
            }
        }
        let total = next()?;
        s.total_chain_windows = total
            .strip_prefix("total_chain_windows\t")
            .ok_or_else(|| err("expected total_chain_windows"))?
            .parse()
            .map_err(|_| err("bad total_chain_windows"))?;
        if next()? != "end\tchainstats" {
            return Err(err("expected end chainstats"));
        }
        Ok(s)
    }

    /// Fig. 10 numbers: cause onsets per minute.
    pub fn cause_frequency_per_min(&self, cause: &str) -> f64 {
        *self.cause_onsets.get(cause).unwrap_or(&0) as f64 / self.minutes
    }

    /// Fig. 10 numbers: consequence onsets per minute.
    pub fn consequence_frequency_per_min(&self, consequence: &str) -> f64 {
        *self.consequence_onsets.get(consequence).unwrap_or(&0) as f64 / self.minutes
    }

    /// Table 2: P(cause | consequence) over consequence-active windows.
    pub fn conditional_probability(&self, cause: &str, consequence: &str) -> f64 {
        let denom = *self.consequence_windows.get(consequence).unwrap_or(&0);
        if denom == 0 {
            return 0.0;
        }
        let num = *self
            .chain_windows
            .get(&(cause.to_string(), consequence.to_string()))
            .unwrap_or(&0);
        num as f64 / denom as f64
    }

    /// Table 2 "Unknown" column: consequence windows with no chain.
    pub fn unknown_probability(&self, consequence: &str) -> f64 {
        let denom = *self.consequence_windows.get(consequence).unwrap_or(&0);
        if denom == 0 {
            return 0.0;
        }
        *self.unknown_windows.get(consequence).unwrap_or(&0) as f64 / denom as f64
    }

    /// Table 4: this chain's share of all detected chains.
    pub fn chain_ratio(&self, cause: &str, consequence: &str) -> f64 {
        if self.total_chain_windows == 0 {
            return 0.0;
        }
        *self
            .chain_windows
            .get(&(cause.to_string(), consequence.to_string()))
            .unwrap_or(&0) as f64
            / self.total_chain_windows as f64
    }
}

/// Error from [`ChainStats::parse_from`] (and the shard-report parsers
/// built on it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsParseError(pub String);

impl std::fmt::Display for StatsParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chainstats parse error: {}", self.0)
    }
}

impl std::error::Error for StatsParseError {}

/// Escapes a string field for the tab-separated plain-text wire format:
/// backslash, tab, newline, and carriage return become two-character
/// escapes, so fields never collide with the format's separators.
pub fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverses [`escape_field`].
pub fn unescape_field(s: &str) -> Result<String, StatsParseError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                return Err(StatsParseError(format!("bad escape \\{other:?} in {s:?}")));
            }
        }
    }
    Ok(out)
}

/// Renders a Fig. 10-style frequency report.
pub fn render_frequency_table(graph: &CausalGraph, stats: &ChainStats) -> String {
    let mut out = String::from("Causes in 5G (per minute)\n");
    for root in graph.roots() {
        let name = graph.name(root);
        out.push_str(&format!(
            "  {:<22} {:>6.2}\n",
            name,
            stats.cause_frequency_per_min(name)
        ));
    }
    out.push_str("Consequences in APP (per minute)\n");
    for leaf in graph.leaves() {
        let name = graph.name(leaf);
        out.push_str(&format!(
            "  {:<22} {:>6.2}\n",
            name,
            stats.consequence_frequency_per_min(name)
        ));
    }
    out
}

/// Renders a Table 2-style conditional-probability matrix.
pub fn render_conditional_table(graph: &CausalGraph, stats: &ChainStats) -> String {
    let causes: Vec<&str> = graph.roots().into_iter().map(|r| graph.name(r)).collect();
    let mut out = format!("{:<22}", "consequence \\ cause");
    for c in &causes {
        out.push_str(&format!(" {:>14}", c));
    }
    out.push_str(&format!(" {:>9}\n", "unknown"));
    for leaf in graph.leaves() {
        let cons = graph.name(leaf);
        out.push_str(&format!("{cons:<22}"));
        for c in &causes {
            out.push_str(&format!(
                " {:>13.1}%",
                100.0 * stats.conditional_probability(c, cons)
            ));
        }
        out.push_str(&format!(
            " {:>8.1}%\n",
            100.0 * stats.unknown_probability(cons)
        ));
    }
    out
}

/// Renders a Table 4-style chain-ratio matrix.
pub fn render_chain_ratio_table(graph: &CausalGraph, stats: &ChainStats) -> String {
    let causes: Vec<&str> = graph.roots().into_iter().map(|r| graph.name(r)).collect();
    let mut out = format!("{:<22}", "consequence \\ cause");
    for c in &causes {
        out.push_str(&format!(" {:>14}", c));
    }
    out.push('\n');
    for leaf in graph.leaves() {
        let cons = graph.name(leaf);
        out.push_str(&format!("{cons:<22}"));
        for c in &causes {
            out.push_str(&format!(" {:>13.1}%", 100.0 * stats.chain_ratio(c, cons)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    use crate::detect::{ChainHit, WindowAnalysis};
    use crate::dsl::default_graph;
    use crate::features::{Feature, FeatureVector};
    use simcore::{SimDuration, SimTime};

    /// Builds a synthetic analysis: `pattern[i]` says whether the harq →
    /// fwd → jitter-drain chain is active in window i.
    fn synthetic(pattern: &[bool]) -> (crate::graph::CausalGraph, Analysis) {
        let g = default_graph();
        let harq = g.id("harq_retx").unwrap();
        let fwd = g.id("forward_delay_up").unwrap();
        let jb = g.id("jitter_buffer_drain").unwrap();
        let windows = pattern
            .iter()
            .enumerate()
            .map(|(i, &on)| {
                let mut fv = FeatureVector::new();
                let mut chains = Vec::new();
                if on {
                    fv.set(Feature::parse("ul_harq_retx").unwrap(), true);
                    fv.set(Feature::parse("forward_delay_up").unwrap(), true);
                    fv.set(Feature::parse("local_jitter_buffer_drain").unwrap(), true);
                    chains.push(ChainHit {
                        cause: harq,
                        path: vec![harq, fwd, jb],
                        consequence: jb,
                    });
                }
                WindowAnalysis {
                    start: SimTime::from_millis(i as u64 * 500),
                    features: fv,
                    chains,
                    unknown_consequences: vec![],
                }
            })
            .collect();
        (
            g,
            Analysis {
                windows,
                duration: SimDuration::from_secs(60),
            },
        )
    }

    #[test]
    fn onset_counting_dedups_overlapping_windows() {
        // Two distinct episodes: windows 2-5 and 10-12 → 2 onsets.
        let mut pattern = vec![false; 20];
        for w in &mut pattern[2..=5] {
            *w = true;
        }
        for w in &mut pattern[10..=12] {
            *w = true;
        }
        let (g, a) = synthetic(&pattern);
        let s = ChainStats::compute(&g, &a);
        assert_eq!(s.cause_onsets["harq_retx"], 2);
        assert_eq!(s.consequence_onsets["jitter_buffer_drain"], 2);
        assert_eq!(s.cause_frequency_per_min("harq_retx"), 2.0);
    }

    #[test]
    fn conditional_probability_is_one_when_always_attributed() {
        let pattern = vec![true; 10];
        let (g, a) = synthetic(&pattern);
        let s = ChainStats::compute(&g, &a);
        assert_eq!(
            s.conditional_probability("harq_retx", "jitter_buffer_drain"),
            1.0
        );
        assert_eq!(
            s.conditional_probability("rlc_retx", "jitter_buffer_drain"),
            0.0
        );
        assert_eq!(s.unknown_probability("jitter_buffer_drain"), 0.0);
        assert_eq!(s.chain_ratio("harq_retx", "jitter_buffer_drain"), 1.0);
    }

    #[test]
    fn rendering_contains_all_nodes() {
        let (g, a) = synthetic(&[true, false, true]);
        let s = ChainStats::compute(&g, &a);
        let freq = render_frequency_table(&g, &s);
        for name in [
            "poor_channel",
            "cross_traffic",
            "ul_scheduling",
            "harq_retx",
            "rlc_retx",
            "rrc_state_change",
            "jitter_buffer_drain",
            "target_bitrate_down",
            "pushback_rate_down",
        ] {
            assert!(freq.contains(name), "{name} missing from frequency table");
        }
        let cond = render_conditional_table(&g, &s);
        assert!(cond.contains("unknown"));
        let ratio = render_chain_ratio_table(&g, &s);
        assert!(ratio.contains("harq_retx"));
    }

    #[test]
    fn empty_analysis_is_all_zero() {
        let (g, a) = synthetic(&[false; 5]);
        let s = ChainStats::compute(&g, &a);
        assert_eq!(s.total_chain_windows, 0);
        assert_eq!(s.cause_frequency_per_min("harq_retx"), 0.0);
        assert_eq!(
            s.conditional_probability("harq_retx", "jitter_buffer_drain"),
            0.0
        );
    }

    // ---- merge contract (the shard-merge layer in `domino-sweep` relies
    // ---- on these properties) -----------------------------------------

    /// A synthetic stats value keyed off `tag`, with every field populated.
    fn sample_stats(tag: u64) -> ChainStats {
        let causes = ["harq_retx", "rlc_retx", "cross_traffic"];
        let conses = ["jitter_buffer_drain", "target_bitrate_down"];
        let mut s = ChainStats {
            // Multiples of 1/8 are exactly representable, so f64 sums over
            // them never round: grouping order cannot perturb `minutes`.
            minutes: (tag % 64) as f64 * 0.125,
            ..Default::default()
        };
        for (i, c) in causes.iter().enumerate() {
            if tag >> i & 1 == 1 {
                s.cause_onsets.insert(c.to_string(), (tag % 7 + 1) as usize);
            }
        }
        for (i, c) in conses.iter().enumerate() {
            if tag >> (i + 3) & 1 == 1 {
                s.consequence_onsets
                    .insert(c.to_string(), (tag % 5 + 1) as usize);
                s.consequence_windows
                    .insert(c.to_string(), (tag % 11 + 2) as usize);
                s.unknown_windows.insert(c.to_string(), (tag % 3) as usize);
            }
        }
        for cause in causes {
            for cons in conses {
                if (tag ^ cause.len() as u64 ^ cons.len() as u64).is_multiple_of(3) {
                    let n = (tag % 9 + 1) as usize;
                    s.chain_windows
                        .insert((cause.to_string(), cons.to_string()), n);
                    s.total_chain_windows += n;
                }
            }
        }
        s
    }

    fn fold(stats: &[ChainStats]) -> ChainStats {
        let mut agg = ChainStats::default();
        for s in stats {
            agg.merge(s);
        }
        agg
    }

    fn assert_counters_eq(a: &ChainStats, b: &ChainStats) {
        assert_eq!(a.cause_onsets, b.cause_onsets);
        assert_eq!(a.consequence_onsets, b.consequence_onsets);
        assert_eq!(a.consequence_windows, b.consequence_windows);
        assert_eq!(a.chain_windows, b.chain_windows);
        assert_eq!(a.unknown_windows, b.unknown_windows);
        assert_eq!(a.total_chain_windows, b.total_chain_windows);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let s = sample_stats(29);
        // Empty into s.
        let mut left = s.clone();
        left.merge(&ChainStats::default());
        assert_counters_eq(&left, &s);
        assert_eq!(left.minutes, s.minutes);
        // s into empty.
        let mut right = ChainStats::default();
        right.merge(&s);
        assert_counters_eq(&right, &s);
        assert_eq!(right.minutes, s.minutes);
    }

    #[test]
    fn grouped_merge_matches_whole_fold_for_equal_order() {
        // Shard-style grouping: fold [0..2], [2..5], [5..8] separately, then
        // fold the group aggregates in the same order. Every counter must
        // match the whole fold exactly; so does `minutes` here because the
        // samples are exact binary fractions.
        let stats: Vec<ChainStats> = (0..8).map(sample_stats).collect();
        let whole = fold(&stats);
        let grouped = fold(&[fold(&stats[0..2]), fold(&stats[2..5]), fold(&stats[5..8])]);
        assert_counters_eq(&grouped, &whole);
        assert_eq!(grouped.minutes, whole.minutes);
    }

    #[test]
    fn encode_parse_round_trips_exactly() {
        let mut s = sample_stats(13);
        // Keys with wire-format separators must survive the trip.
        s.cause_onsets
            .insert("weird\tname\\with\nescapes".to_string(), 4);
        s.minutes = 0.1 + 0.2; // not exactly representable; bits must survive
        let mut text = String::new();
        s.encode_into(&mut text);
        let parsed = ChainStats::parse_from(&mut text.lines()).expect("parses");
        assert_counters_eq(&parsed, &s);
        assert_eq!(parsed.minutes.to_bits(), s.minutes.to_bits());
        let mut again = String::new();
        parsed.encode_into(&mut again);
        assert_eq!(text, again, "encode must be canonical");
    }

    #[test]
    fn parse_rejects_corrupt_input() {
        let mut text = String::new();
        sample_stats(3).encode_into(&mut text);
        let bad_version = text.replace("chainstats\tv1", "chainstats\tv9");
        assert!(ChainStats::parse_from(&mut bad_version.lines()).is_err());
        let truncated: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
        assert!(ChainStats::parse_from(&mut truncated.lines()).is_err());
    }

    proptest! {
        /// Split-vs-whole: folding any contiguous split's per-item stats
        /// across chunk boundaries reproduces the whole fold exactly — the
        /// merge-shards refold contract. Grouped chunk aggregates agree on
        /// every integer counter too.
        #[test]
        fn fuzz_split_vs_whole_equality(
            tags in proptest::collection::vec(proptest::any::<u64>(), 1..12),
            cut_a in 0usize..12,
            cut_b in 0usize..12,
        ) {
            let stats: Vec<ChainStats> = tags.iter().map(|&t| sample_stats(t)).collect();
            let (mut a, mut b) = (cut_a % (stats.len() + 1), cut_b % (stats.len() + 1));
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            let whole = fold(&stats);
            // Refold per-item across the chunk boundaries: identical
            // operation sequence, bit-identical result.
            let mut refold = ChainStats::default();
            for chunk in [&stats[..a], &stats[a..b], &stats[b..]] {
                for s in chunk {
                    refold.merge(s);
                }
            }
            assert_counters_eq(&refold, &whole);
            prop_assert_eq!(refold.minutes.to_bits(), whole.minutes.to_bits());
            // Grouped chunk aggregates: integer counters exact; minutes
            // exact here because samples are 1/8-grained.
            let grouped = fold(&[fold(&stats[..a]), fold(&stats[a..b]), fold(&stats[b..])]);
            assert_counters_eq(&grouped, &whole);
            prop_assert_eq!(grouped.minutes.to_bits(), whole.minutes.to_bits());
        }
    }
}
