//! Chain and event statistics over an analysis: the numbers behind Fig. 10
//! (occurrence frequency per minute), Table 2 (conditional probability of
//! cause given consequence, with an Unknown column), and Table 4 (each
//! chain's share of all detected chains).
//!
//! Occurrence counting uses *onset* semantics: with a 5 s window sliding in
//! 0.5 s steps, one physical event is visible in ~10 consecutive windows;
//! an event is counted when its node is active in a window but was not in
//! the previous one.

use std::collections::HashMap;

use crate::detect::Analysis;
use crate::graph::{CausalGraph, NodeId};

/// Aggregated statistics over one analysed trace.
#[derive(Debug, Clone, Default)]
pub struct ChainStats {
    /// Trace length in minutes.
    pub minutes: f64,
    /// Onset counts per root cause.
    pub cause_onsets: HashMap<String, usize>,
    /// Onset counts per consequence.
    pub consequence_onsets: HashMap<String, usize>,
    /// Windows in which each consequence was active.
    pub consequence_windows: HashMap<String, usize>,
    /// Windows in which each (cause, consequence) chain was found.
    pub chain_windows: HashMap<(String, String), usize>,
    /// Windows in which a consequence was active with no complete chain.
    pub unknown_windows: HashMap<String, usize>,
    /// Total chain-window observations.
    pub total_chain_windows: usize,
}

impl ChainStats {
    /// Computes statistics from an analysis.
    pub fn compute(graph: &CausalGraph, analysis: &Analysis) -> ChainStats {
        let minutes = (analysis.duration.as_secs_f64() / 60.0).max(1e-9);
        let mut s = ChainStats { minutes, ..Default::default() };
        let roots = graph.roots();
        let leaves = graph.leaves();

        let mut prev_active: HashMap<NodeId, bool> = HashMap::new();
        for w in &analysis.windows {
            for &node in roots.iter().chain(leaves.iter()) {
                let active = graph.is_active(node, &w.features);
                let was = prev_active.insert(node, active).unwrap_or(false);
                if active && !was {
                    let name = graph.name(node).to_string();
                    if roots.contains(&node) {
                        *s.cause_onsets.entry(name).or_default() += 1;
                    } else {
                        *s.consequence_onsets.entry(name).or_default() += 1;
                    }
                }
                if active && leaves.contains(&node) {
                    *s.consequence_windows
                        .entry(graph.name(node).to_string())
                        .or_default() += 1;
                }
            }
            // Chains: count each (cause, consequence) pair once per window.
            let mut seen: Vec<(NodeId, NodeId)> = Vec::new();
            for c in &w.chains {
                if !seen.contains(&(c.cause, c.consequence)) {
                    seen.push((c.cause, c.consequence));
                    let key = (
                        graph.name(c.cause).to_string(),
                        graph.name(c.consequence).to_string(),
                    );
                    *s.chain_windows.entry(key).or_default() += 1;
                    s.total_chain_windows += 1;
                }
            }
            for &u in &w.unknown_consequences {
                *s.unknown_windows.entry(graph.name(u).to_string()).or_default() += 1;
            }
        }
        s
    }

    /// Merges another trace's statistics into this one (used to aggregate
    /// the commercial or private cells, as Fig. 10/Tables 2 and 4 do).
    pub fn merge(&mut self, other: &ChainStats) {
        self.minutes += other.minutes;
        for (k, v) in &other.cause_onsets {
            *self.cause_onsets.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.consequence_onsets {
            *self.consequence_onsets.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.consequence_windows {
            *self.consequence_windows.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.chain_windows {
            *self.chain_windows.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.unknown_windows {
            *self.unknown_windows.entry(k.clone()).or_default() += v;
        }
        self.total_chain_windows += other.total_chain_windows;
    }

    /// Fig. 10 numbers: cause onsets per minute.
    pub fn cause_frequency_per_min(&self, cause: &str) -> f64 {
        *self.cause_onsets.get(cause).unwrap_or(&0) as f64 / self.minutes
    }

    /// Fig. 10 numbers: consequence onsets per minute.
    pub fn consequence_frequency_per_min(&self, consequence: &str) -> f64 {
        *self.consequence_onsets.get(consequence).unwrap_or(&0) as f64 / self.minutes
    }

    /// Table 2: P(cause | consequence) over consequence-active windows.
    pub fn conditional_probability(&self, cause: &str, consequence: &str) -> f64 {
        let denom = *self.consequence_windows.get(consequence).unwrap_or(&0);
        if denom == 0 {
            return 0.0;
        }
        let num = *self
            .chain_windows
            .get(&(cause.to_string(), consequence.to_string()))
            .unwrap_or(&0);
        num as f64 / denom as f64
    }

    /// Table 2 "Unknown" column: consequence windows with no chain.
    pub fn unknown_probability(&self, consequence: &str) -> f64 {
        let denom = *self.consequence_windows.get(consequence).unwrap_or(&0);
        if denom == 0 {
            return 0.0;
        }
        *self.unknown_windows.get(consequence).unwrap_or(&0) as f64 / denom as f64
    }

    /// Table 4: this chain's share of all detected chains.
    pub fn chain_ratio(&self, cause: &str, consequence: &str) -> f64 {
        if self.total_chain_windows == 0 {
            return 0.0;
        }
        *self
            .chain_windows
            .get(&(cause.to_string(), consequence.to_string()))
            .unwrap_or(&0) as f64
            / self.total_chain_windows as f64
    }
}

/// Renders a Fig. 10-style frequency report.
pub fn render_frequency_table(graph: &CausalGraph, stats: &ChainStats) -> String {
    let mut out = String::from("Causes in 5G (per minute)\n");
    for root in graph.roots() {
        let name = graph.name(root);
        out.push_str(&format!(
            "  {:<22} {:>6.2}\n",
            name,
            stats.cause_frequency_per_min(name)
        ));
    }
    out.push_str("Consequences in APP (per minute)\n");
    for leaf in graph.leaves() {
        let name = graph.name(leaf);
        out.push_str(&format!(
            "  {:<22} {:>6.2}\n",
            name,
            stats.consequence_frequency_per_min(name)
        ));
    }
    out
}

/// Renders a Table 2-style conditional-probability matrix.
pub fn render_conditional_table(graph: &CausalGraph, stats: &ChainStats) -> String {
    let causes: Vec<&str> = graph.roots().into_iter().map(|r| graph.name(r)).collect();
    let mut out = format!("{:<22}", "consequence \\ cause");
    for c in &causes {
        out.push_str(&format!(" {:>14}", c));
    }
    out.push_str(&format!(" {:>9}\n", "unknown"));
    for leaf in graph.leaves() {
        let cons = graph.name(leaf);
        out.push_str(&format!("{cons:<22}"));
        for c in &causes {
            out.push_str(&format!(" {:>13.1}%", 100.0 * stats.conditional_probability(c, cons)));
        }
        out.push_str(&format!(" {:>8.1}%\n", 100.0 * stats.unknown_probability(cons)));
    }
    out
}

/// Renders a Table 4-style chain-ratio matrix.
pub fn render_chain_ratio_table(graph: &CausalGraph, stats: &ChainStats) -> String {
    let causes: Vec<&str> = graph.roots().into_iter().map(|r| graph.name(r)).collect();
    let mut out = format!("{:<22}", "consequence \\ cause");
    for c in &causes {
        out.push_str(&format!(" {:>14}", c));
    }
    out.push('\n');
    for leaf in graph.leaves() {
        let cons = graph.name(leaf);
        out.push_str(&format!("{cons:<22}"));
        for c in &causes {
            out.push_str(&format!(" {:>13.1}%", 100.0 * stats.chain_ratio(c, cons)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{ChainHit, WindowAnalysis};
    use crate::dsl::default_graph;
    use crate::features::{Feature, FeatureVector};
    use simcore::{SimDuration, SimTime};

    /// Builds a synthetic analysis: `pattern[i]` says whether the harq →
    /// fwd → jitter-drain chain is active in window i.
    fn synthetic(pattern: &[bool]) -> (crate::graph::CausalGraph, Analysis) {
        let g = default_graph();
        let harq = g.id("harq_retx").unwrap();
        let fwd = g.id("forward_delay_up").unwrap();
        let jb = g.id("jitter_buffer_drain").unwrap();
        let windows = pattern
            .iter()
            .enumerate()
            .map(|(i, &on)| {
                let mut fv = FeatureVector::new();
                let mut chains = Vec::new();
                if on {
                    fv.set(Feature::parse("ul_harq_retx").unwrap(), true);
                    fv.set(Feature::parse("forward_delay_up").unwrap(), true);
                    fv.set(Feature::parse("local_jitter_buffer_drain").unwrap(), true);
                    chains.push(ChainHit {
                        cause: harq,
                        path: vec![harq, fwd, jb],
                        consequence: jb,
                    });
                }
                WindowAnalysis {
                    start: SimTime::from_millis(i as u64 * 500),
                    features: fv,
                    chains,
                    unknown_consequences: vec![],
                }
            })
            .collect();
        (g, Analysis { windows, duration: SimDuration::from_secs(60) })
    }

    #[test]
    fn onset_counting_dedups_overlapping_windows() {
        // Two distinct episodes: windows 2-5 and 10-12 → 2 onsets.
        let mut pattern = vec![false; 20];
        for w in &mut pattern[2..=5] {
            *w = true;
        }
        for w in &mut pattern[10..=12] {
            *w = true;
        }
        let (g, a) = synthetic(&pattern);
        let s = ChainStats::compute(&g, &a);
        assert_eq!(s.cause_onsets["harq_retx"], 2);
        assert_eq!(s.consequence_onsets["jitter_buffer_drain"], 2);
        assert_eq!(s.cause_frequency_per_min("harq_retx"), 2.0);
    }

    #[test]
    fn conditional_probability_is_one_when_always_attributed() {
        let pattern = vec![true; 10];
        let (g, a) = synthetic(&pattern);
        let s = ChainStats::compute(&g, &a);
        assert_eq!(s.conditional_probability("harq_retx", "jitter_buffer_drain"), 1.0);
        assert_eq!(s.conditional_probability("rlc_retx", "jitter_buffer_drain"), 0.0);
        assert_eq!(s.unknown_probability("jitter_buffer_drain"), 0.0);
        assert_eq!(s.chain_ratio("harq_retx", "jitter_buffer_drain"), 1.0);
    }

    #[test]
    fn rendering_contains_all_nodes() {
        let (g, a) = synthetic(&[true, false, true]);
        let s = ChainStats::compute(&g, &a);
        let freq = render_frequency_table(&g, &s);
        for name in ["poor_channel", "cross_traffic", "ul_scheduling", "harq_retx", "rlc_retx", "rrc_state_change", "jitter_buffer_drain", "target_bitrate_down", "pushback_rate_down"] {
            assert!(freq.contains(name), "{name} missing from frequency table");
        }
        let cond = render_conditional_table(&g, &s);
        assert!(cond.contains("unknown"));
        let ratio = render_chain_ratio_table(&g, &s);
        assert!(ratio.contains("harq_retx"));
    }

    #[test]
    fn empty_analysis_is_all_zero() {
        let (g, a) = synthetic(&[false; 5]);
        let s = ChainStats::compute(&g, &a);
        assert_eq!(s.total_chain_windows, 0);
        assert_eq!(s.cause_frequency_per_min("harq_retx"), 0.0);
        assert_eq!(s.conditional_probability("harq_retx", "jitter_buffer_drain"), 0.0);
    }
}
