//! The twenty event-detection conditions of Table 5 (Appendix D), plus the
//! four ABR playback conditions of the streaming workload, applied to one
//! sliding window of cross-layer telemetry to produce the 40-dimension
//! [`FeatureVector`].

use simcore::SimTime;
use telemetry::{
    AppStatsRecord, DciRecord, Direction, GccNetworkState, GnbEvent, PacketRecord,
    PlaybackStatsRecord, StreamKind, TraceBundle,
};

use crate::features::{AppEvent, ClientSide, Feature, FeatureVector, PlaybackEvent, RanEvent};

/// All tunable constants of the Table 5 conditions. Defaults are the
/// paper's values.
#[derive(Debug, Clone)]
pub struct Thresholds {
    /// Frame-rate drop: max must exceed this (rows 1–2).
    pub framerate_high: f64,
    /// Frame-rate drop: min must fall below this.
    pub framerate_low: f64,
    /// Packet-delay uptrend requires a sample above this (rows 11–12), ms.
    pub delay_floor_ms: f64,
    /// Sub-window length for windowed means (rows 9, 11, 12), samples.
    pub trend_subwindow: usize,
    /// TBS drop: min below this fraction of max (row 13).
    pub tbs_drop_fraction: f64,
    /// App-exceeds-TBS: fraction of bins required (row 14).
    pub rate_exceed_fraction: f64,
    /// Cross traffic: other-UE PRB sum over ours (row 15).
    pub cross_traffic_fraction: f64,
    /// Channel degraded: p90 of grouped MCS below this (row 16).
    pub mcs_p90_below: f64,
    /// Channel degraded: groups with median MCS below this...
    pub mcs_low_value: f64,
    /// ...must appear more than this many times.
    pub mcs_low_count: usize,
    /// MCS grouping window (row 16), ms.
    pub mcs_group_ms: u64,
    /// HARQ retransmissions needed in the window (row 17).
    pub harq_retx_count: usize,
    /// Relative tolerance for "decrease" comparisons on rates.
    pub rate_drop_epsilon: f64,
    /// Jitter-buffer drain level (ms at or below counts as drained).
    pub drain_level_ms: f64,
    /// Playback buffer low-water mark (ms; below counts as buffer-low).
    pub playback_buffer_low_ms: f64,
    /// Ladder oscillation: rung changes in the window must exceed this.
    pub ladder_switch_count: usize,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            framerate_high: 27.0,
            framerate_low: 25.0,
            delay_floor_ms: 80.0,
            trend_subwindow: 10,
            tbs_drop_fraction: 0.8,
            rate_exceed_fraction: 0.1,
            cross_traffic_fraction: 0.2,
            mcs_p90_below: 20.0,
            mcs_low_value: 10.0,
            mcs_low_count: 10,
            mcs_group_ms: 50,
            harq_retx_count: 10,
            rate_drop_epsilon: 0.01,
            drain_level_ms: 0.5,
            playback_buffer_low_ms: 2_000.0,
            ladder_switch_count: 3,
        }
    }
}

/// Extracts the full 40-dim feature vector for the window `[from, to)`.
pub fn extract_features(
    bundle: &TraceBundle,
    from: SimTime,
    to: SimTime,
    th: &Thresholds,
) -> FeatureVector {
    let mut v = FeatureVector::new();

    // Application events, both clients (rows 1–10).
    for (side, samples) in [
        (ClientSide::Local, bundle.app_local_window(from, to)),
        (ClientSide::Remote, bundle.app_remote_window(from, to)),
    ] {
        for e in AppEvent::ALL {
            v.set(Feature::App(side, e), app_event(samples, e, th));
        }
    }

    // Packet-delay trends (rows 11–12). Forward = media packets, reverse =
    // RTCP feedback packets (§6.3's forward/reverse path terminology);
    // either direction's trend raises the flag.
    let packets = bundle.packets_window(from, to);
    let media_up = delay_uptrend(packets, Direction::Uplink, false, th)
        || delay_uptrend(packets, Direction::Downlink, false, th);
    let rtcp_up = delay_uptrend(packets, Direction::Uplink, true, th)
        || delay_uptrend(packets, Direction::Downlink, true, th);
    v.set(Feature::ForwardDelayUp, media_up);
    v.set(Feature::ReverseDelayUp, rtcp_up);

    // 5G events per direction (rows 13–18).
    let dci = bundle.dci_window(from, to);
    let gnb = bundle.gnb_window(from, to);
    for dir in [Direction::Uplink, Direction::Downlink] {
        v.set(
            Feature::Ran(dir, RanEvent::AllocatedTbsDown),
            tbs_down(dci, dir, th),
        );
        v.set(
            Feature::Ran(dir, RanEvent::AppExceedsTbs),
            app_exceeds_tbs(packets, dci, dir, from, to, th),
        );
        v.set(
            Feature::Ran(dir, RanEvent::CrossTraffic),
            cross_traffic(dci, dir, th),
        );
        v.set(
            Feature::Ran(dir, RanEvent::ChannelDegrades),
            channel_degrades(dci, dir, from, th),
        );
        v.set(
            Feature::Ran(dir, RanEvent::HarqRetx),
            harq_retx(dci, dir, th),
        );
        v.set(
            Feature::Ran(dir, RanEvent::RlcRetx),
            gnb.iter().any(
                |g| matches!(g.event, GnbEvent::RlcRetx { direction, .. } if direction == dir),
            ),
        );
    }

    // Row 19: transmission uses the 5G uplink channel.
    v.set(
        Feature::UlScheduling,
        dci.iter()
            .any(|d| d.is_target_ue && d.direction == Direction::Uplink),
    );
    // Row 20: RNTI change within the window.
    v.set(Feature::RrcStateChange, rnti_changed(dci));

    // Rows 21–24: ABR playback events (streaming sessions only; the
    // playback stream is empty for RTC bundles).
    let playback = bundle.playback_window(from, to);
    for e in PlaybackEvent::ALL {
        v.set(Feature::Playback(e), playback_event(playback, e, th));
    }

    v
}

/// Rows 21–24: playback conditions over one window of 50 ms samples.
fn playback_event(samples: &[PlaybackStatsRecord], e: PlaybackEvent, th: &Thresholds) -> bool {
    if samples.len() < 2 {
        return false;
    }
    match e {
        PlaybackEvent::BufferLow => samples
            .iter()
            .any(|s| s.started && s.buffer_ms < th.playback_buffer_low_ms),
        PlaybackEvent::Stall => samples.iter().any(|s| s.stalled),
        PlaybackEvent::LadderSwitchDown => samples
            .windows(2)
            .any(|w| w[1].target_rung < w[0].target_rung),
        PlaybackEvent::LadderOscillation => {
            samples
                .windows(2)
                .filter(|w| w[1].target_rung != w[0].target_rung)
                .count()
                > th.ladder_switch_count
        }
    }
}

fn app_event(samples: &[AppStatsRecord], e: AppEvent, th: &Thresholds) -> bool {
    if samples.len() < 2 {
        return false;
    }
    match e {
        AppEvent::InboundFramerateDown => framerate_down(samples.iter().map(|s| s.inbound_fps), th),
        AppEvent::OutboundFramerateDown => {
            framerate_down(samples.iter().map(|s| s.outbound_fps), th)
        }
        AppEvent::OutboundResolutionDown => samples
            .windows(2)
            .any(|w| w[1].outbound_resolution < w[0].outbound_resolution),
        AppEvent::JitterBufferDrain => samples
            .iter()
            .any(|s| s.video_jitter_buffer_ms <= th.drain_level_ms && s.inbound_fps > 0.0),
        AppEvent::TargetBitrateDown => samples.windows(2).any(|w| {
            w[1].target_bitrate_bps < w[0].target_bitrate_bps * (1.0 - th.rate_drop_epsilon)
        }),
        AppEvent::GccOveruse => samples
            .iter()
            .any(|s| s.gcc_state == GccNetworkState::Overuse),
        AppEvent::PushbackRateDown => samples.windows(2).any(|w| {
            w[1].pushback_rate_bps < w[0].pushback_rate_bps * (1.0 - th.rate_drop_epsilon)
        }),
        AppEvent::CwndFull => samples.iter().any(|s| s.outstanding_bytes > s.cwnd_bytes),
        AppEvent::OutstandingBytesUp => {
            let means = windowed_means(
                samples.iter().map(|s| s.outstanding_bytes as f64),
                th.trend_subwindow,
            );
            means
                .windows(2)
                .any(|w| w[1] > w[0] * 1.05 && w[1] > 1000.0)
        }
        AppEvent::PushbackNeqTarget => samples.iter().any(|s| {
            (s.pushback_rate_bps - s.target_bitrate_bps).abs()
                > th.rate_drop_epsilon * s.target_bitrate_bps
        }),
    }
}

/// Rows 1–2: max fps > high, min fps < low, and the max occurs before the
/// min (a genuine downward move).
fn framerate_down(fps: impl Iterator<Item = f64>, th: &Thresholds) -> bool {
    let vals: Vec<f64> = fps.collect();
    let (mut max_i, mut max_v) = (0usize, f64::NEG_INFINITY);
    let (mut min_i, mut min_v) = (0usize, f64::INFINITY);
    for (i, &x) in vals.iter().enumerate() {
        if x > max_v {
            max_v = x;
            max_i = i;
        }
        if x < min_v {
            min_v = x;
            min_i = i;
        }
    }
    max_v > th.framerate_high && min_v < th.framerate_low && max_i < min_i
}

fn windowed_means(values: impl Iterator<Item = f64>, sub: usize) -> Vec<f64> {
    let vals: Vec<f64> = values.collect();
    vals.chunks(sub.max(1))
        .filter(|c| c.len() == sub.max(1))
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// Rows 11–12: uptrend in windowed packet delay plus a sample above the
/// floor. `rtcp` selects the feedback path; otherwise media packets.
fn delay_uptrend(packets: &[PacketRecord], dir: Direction, rtcp: bool, th: &Thresholds) -> bool {
    let delays: Vec<f64> = packets
        .iter()
        .filter(|p| p.direction == dir && (p.stream == StreamKind::Rtcp) == rtcp)
        .filter_map(|p| p.one_way_delay())
        .map(|d| d.as_millis_f64())
        .collect();
    if delays.len() < 2 * th.trend_subwindow {
        return false;
    }
    let any_high = delays.iter().any(|&d| d > th.delay_floor_ms);
    if !any_high {
        return false;
    }
    let means = windowed_means(delays.into_iter(), th.trend_subwindow);
    means.windows(2).any(|w| w[1] > w[0] * 1.05)
}

/// Row 13: min TBS < fraction × max TBS, drop happening after the peak.
fn tbs_down(dci: &[DciRecord], dir: Direction, th: &Thresholds) -> bool {
    let tbs: Vec<f64> = dci
        .iter()
        .filter(|d| d.is_target_ue && d.direction == dir && d.harq_retx_idx == 0)
        .map(|d| d.tbs_bits as f64)
        .collect();
    if tbs.len() < 4 {
        return false;
    }
    let (mut max_i, mut max_v) = (0usize, f64::NEG_INFINITY);
    let (mut min_i, mut min_v) = (0usize, f64::INFINITY);
    for (i, &x) in tbs.iter().enumerate() {
        if x > max_v {
            max_v = x;
            max_i = i;
        }
        if x < min_v {
            min_v = x;
            min_i = i;
        }
    }
    min_v < th.tbs_drop_fraction * max_v && max_i < min_i
}

/// Row 14: the app's send rate exceeds the PHY-allocated rate for more than
/// a fraction of the window (computed over 100 ms bins).
fn app_exceeds_tbs(
    packets: &[PacketRecord],
    dci: &[DciRecord],
    dir: Direction,
    from: SimTime,
    to: SimTime,
    th: &Thresholds,
) -> bool {
    const BIN_US: u64 = 100_000;
    let n_bins = ((to.as_micros() - from.as_micros()) / BIN_US).max(1) as usize;
    let mut app_bits = vec![0f64; n_bins];
    let mut tbs_bits = vec![0f64; n_bins];
    for p in packets.iter().filter(|p| p.direction == dir) {
        let bin = ((p.sent.as_micros() - from.as_micros()) / BIN_US) as usize;
        if bin < n_bins {
            app_bits[bin] += p.size_bytes as f64 * 8.0;
        }
    }
    for d in dci
        .iter()
        .filter(|d| d.is_target_ue && d.direction == dir && d.harq_retx_idx == 0)
    {
        let bin = ((d.ts.as_micros() - from.as_micros()) / BIN_US) as usize;
        if bin < n_bins {
            tbs_bits[bin] += d.tbs_bits as f64;
        }
    }
    let exceeding = app_bits
        .iter()
        .zip(&tbs_bits)
        .filter(|(a, t)| **a > 0.0 && **a > **t)
        .count();
    exceeding as f64 > th.rate_exceed_fraction * n_bins as f64
}

/// Row 15: other UEs' PRB sum exceeds a fraction of ours.
fn cross_traffic(dci: &[DciRecord], dir: Direction, th: &Thresholds) -> bool {
    let mut ours = 0u64;
    let mut others = 0u64;
    for d in dci.iter().filter(|d| d.direction == dir) {
        if d.is_target_ue {
            ours += d.n_prbs as u64;
        } else {
            others += d.n_prbs as u64;
        }
    }
    ours > 0 && others as f64 > th.cross_traffic_fraction * ours as f64
}

/// Row 16: grouped-MCS statistics indicate a degraded channel.
fn channel_degrades(dci: &[DciRecord], dir: Direction, from: SimTime, th: &Thresholds) -> bool {
    let group_us = th.mcs_group_ms * 1000;
    let mut groups: Vec<Vec<f64>> = Vec::new();
    for d in dci.iter().filter(|d| d.is_target_ue && d.direction == dir) {
        let g = ((d.ts.as_micros() - from.as_micros()) / group_us) as usize;
        if groups.len() <= g {
            groups.resize(g + 1, Vec::new());
        }
        groups[g].push(d.mcs as f64);
    }
    let mut medians: Vec<f64> = groups
        .iter()
        .filter(|g| !g.is_empty())
        .map(|g| {
            let mut s = g.clone();
            s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            s[s.len() / 2]
        })
        .collect();
    if medians.len() < 4 {
        return false;
    }
    medians.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let p90 = medians[((medians.len() - 1) as f64 * 0.9) as usize];
    let low_count = medians.iter().filter(|&&m| m < th.mcs_low_value).count();
    p90 < th.mcs_p90_below && low_count > th.mcs_low_count
}

/// Row 17: enough HARQ retransmissions in the window.
fn harq_retx(dci: &[DciRecord], dir: Direction, th: &Thresholds) -> bool {
    dci.iter()
        .filter(|d| d.is_target_ue && d.direction == dir && d.harq_retx_idx > 0)
        .count()
        > th.harq_retx_count
}

/// Row 20: the target UE's RNTI changed within the window.
fn rnti_changed(dci: &[DciRecord]) -> bool {
    let mut rntis = dci.iter().filter(|d| d.is_target_ue).map(|d| d.rnti);
    match rntis.next() {
        Some(first) => rntis.any(|r| r != first),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;
    use telemetry::{Resolution, SessionMeta};

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn sample(ms: u64) -> AppStatsRecord {
        let mut s = AppStatsRecord::baseline(t(ms));
        s.inbound_fps = 30.0;
        s.outbound_fps = 30.0;
        s.video_jitter_buffer_ms = 120.0;
        s.cwnd_bytes = 100_000;
        s
    }

    fn dci(ms: u64, dir: Direction, ours: bool, prbs: u16, mcs: u8, retx: u8) -> DciRecord {
        DciRecord {
            ts: t(ms),
            rnti: if ours { 100 } else { 999 },
            direction: dir,
            is_target_ue: ours,
            n_prbs: prbs,
            mcs,
            tbs_bits: (prbs as u32) * 1500,
            harq_id: 0,
            harq_retx_idx: retx,
            decoded_ok: true,
            proactive: false,
            used_bits: 0,
        }
    }

    fn bundle_with(
        app: Vec<AppStatsRecord>,
        packets: Vec<PacketRecord>,
        dci: Vec<DciRecord>,
    ) -> TraceBundle {
        let mut b = TraceBundle::new(SessionMeta::baseline("test", SimDuration::from_secs(5), 0));
        b.app_local = app;
        b.packets = packets;
        b.dci = dci;
        b.sort();
        b
    }

    #[test]
    fn framerate_drop_requires_order() {
        let th = Thresholds::default();
        // 30 → 20: drop.
        assert!(framerate_down([30.0, 29.0, 24.0, 20.0].into_iter(), &th));
        // 20 → 30: recovery, not a drop.
        assert!(!framerate_down([20.0, 24.0, 29.0, 30.0].into_iter(), &th));
        // Steady high: no.
        assert!(!framerate_down([30.0, 30.0, 29.0].into_iter(), &th));
    }

    #[test]
    fn jitter_buffer_drain_detected() {
        let th = Thresholds::default();
        let mut app: Vec<AppStatsRecord> = (0..100).map(|i| sample(i * 50)).collect();
        app[50].video_jitter_buffer_ms = 0.0;
        app[50].inbound_fps = 12.0;
        let b = bundle_with(app, vec![], vec![]);
        let v = extract_features(&b, t(0), t(5000), &th);
        assert!(v.get(Feature::App(ClientSide::Local, AppEvent::JitterBufferDrain)));
        assert!(!v.get(Feature::App(
            ClientSide::Remote,
            AppEvent::JitterBufferDrain
        )));
    }

    #[test]
    fn target_and_pushback_drops() {
        let th = Thresholds::default();
        let mut app: Vec<AppStatsRecord> = (0..100).map(|i| sample(i * 50)).collect();
        for s in app.iter_mut().skip(60) {
            s.target_bitrate_bps = 1_000_000.0;
            s.pushback_rate_bps = 600_000.0;
        }
        for s in app.iter_mut().take(60) {
            s.target_bitrate_bps = 2_000_000.0;
            s.pushback_rate_bps = 2_000_000.0;
        }
        let b = bundle_with(app, vec![], vec![]);
        let v = extract_features(&b, t(0), t(5000), &th);
        assert!(v.get(Feature::App(ClientSide::Local, AppEvent::TargetBitrateDown)));
        assert!(v.get(Feature::App(ClientSide::Local, AppEvent::PushbackRateDown)));
        assert!(v.get(Feature::App(ClientSide::Local, AppEvent::PushbackNeqTarget)));
    }

    #[test]
    fn delay_uptrend_needs_floor_and_trend() {
        let th = Thresholds::default();
        let mk = |ms: u64, delay: u64, stream: StreamKind| PacketRecord {
            sent: t(ms),
            received: Some(t(ms + delay)),
            direction: Direction::Uplink,
            stream,
            seq: ms,
            size_bytes: 1200,
        };
        // Rising media delay crossing 80 ms → forward path trend.
        let rising: Vec<PacketRecord> = (0..60)
            .map(|i| mk(i * 50, 20 + i * 3, StreamKind::Video))
            .collect();
        let b = bundle_with(vec![], rising, vec![]);
        let v = extract_features(&b, t(0), t(5000), &th);
        assert!(v.get(Feature::ForwardDelayUp));
        assert!(!v.get(Feature::ReverseDelayUp));
        // Rising RTCP delay, flat media → reverse path trend only.
        let mut mixed: Vec<PacketRecord> = (0..60)
            .map(|i| mk(i * 50, 20 + i * 3, StreamKind::Rtcp))
            .collect();
        mixed.extend((0..60).map(|i| mk(i * 50 + 5, 30, StreamKind::Video)));
        let b = bundle_with(vec![], mixed, vec![]);
        let v = extract_features(&b, t(0), t(5000), &th);
        assert!(v.get(Feature::ReverseDelayUp));
        assert!(!v.get(Feature::ForwardDelayUp));
        // Flat low delay: neither.
        let flat: Vec<PacketRecord> = (0..60).map(|i| mk(i * 50, 30, StreamKind::Video)).collect();
        let b = bundle_with(vec![], flat, vec![]);
        let v = extract_features(&b, t(0), t(5000), &th);
        assert!(!v.get(Feature::ForwardDelayUp));
    }

    #[test]
    fn cross_traffic_threshold() {
        let th = Thresholds::default();
        let mut recs = vec![dci(0, Direction::Downlink, true, 50, 20, 0)];
        // 5 PRBs of cross traffic: 10% of ours — below threshold.
        recs.push(dci(10, Direction::Downlink, false, 5, 16, 0));
        let b = bundle_with(vec![], vec![], recs.clone());
        let v = extract_features(&b, t(0), t(5000), &th);
        assert!(!v.get(Feature::Ran(Direction::Downlink, RanEvent::CrossTraffic)));
        // 30 PRBs: 60% — above.
        recs.push(dci(20, Direction::Downlink, false, 30, 16, 0));
        let b = bundle_with(vec![], vec![], recs);
        let v = extract_features(&b, t(0), t(5000), &th);
        assert!(v.get(Feature::Ran(Direction::Downlink, RanEvent::CrossTraffic)));
    }

    #[test]
    fn harq_and_rnti_conditions() {
        let th = Thresholds::default();
        let mut recs: Vec<DciRecord> = (0..12)
            .map(|i| dci(i * 100, Direction::Uplink, true, 20, 15, 1))
            .collect();
        let b = bundle_with(vec![], vec![], recs.clone());
        let v = extract_features(&b, t(0), t(5000), &th);
        assert!(v.get(Feature::Ran(Direction::Uplink, RanEvent::HarqRetx)));
        assert!(v.get(Feature::UlScheduling));
        assert!(!v.get(Feature::RrcStateChange));
        // RNTI change.
        let mut changed = dci(4900, Direction::Uplink, true, 20, 15, 0);
        changed.rnti = 777;
        recs.push(changed);
        let b = bundle_with(vec![], vec![], recs);
        let v = extract_features(&b, t(0), t(5000), &th);
        assert!(v.get(Feature::RrcStateChange));
    }

    #[test]
    fn channel_degrades_needs_sustained_low_mcs() {
        let th = Thresholds::default();
        // 100 groups of 50 ms with MCS 4: p90 < 20 and low-count > 10.
        let recs: Vec<DciRecord> = (0..100)
            .map(|i| dci(i * 50, Direction::Uplink, true, 20, 4, 0))
            .collect();
        let b = bundle_with(vec![], vec![], recs);
        let v = extract_features(&b, t(0), t(5000), &th);
        assert!(v.get(Feature::Ran(Direction::Uplink, RanEvent::ChannelDegrades)));
        // Healthy MCS 25: no.
        let recs: Vec<DciRecord> = (0..100)
            .map(|i| dci(i * 50, Direction::Uplink, true, 20, 25, 0))
            .collect();
        let b = bundle_with(vec![], vec![], recs);
        let v = extract_features(&b, t(0), t(5000), &th);
        assert!(!v.get(Feature::Ran(Direction::Uplink, RanEvent::ChannelDegrades)));
    }

    #[test]
    fn tbs_down_requires_peak_then_drop() {
        let th = Thresholds::default();
        let mk = |ms: u64, prbs: u16| dci(ms, Direction::Downlink, true, prbs, 20, 0);
        // High then low.
        let recs = vec![mk(0, 50), mk(100, 50), mk(200, 20), mk(300, 10)];
        let b = bundle_with(vec![], vec![], recs);
        let v = extract_features(&b, t(0), t(5000), &th);
        assert!(v.get(Feature::Ran(
            Direction::Downlink,
            RanEvent::AllocatedTbsDown
        )));
        // Low then high (recovery): no.
        let recs = vec![mk(0, 10), mk(100, 20), mk(200, 50), mk(300, 50)];
        let b = bundle_with(vec![], vec![], recs);
        let v = extract_features(&b, t(0), t(5000), &th);
        assert!(!v.get(Feature::Ran(
            Direction::Downlink,
            RanEvent::AllocatedTbsDown
        )));
    }

    #[test]
    fn resolution_drop() {
        let th = Thresholds::default();
        let mut app: Vec<AppStatsRecord> = (0..100).map(|i| sample(i * 50)).collect();
        for s in app.iter_mut().take(50) {
            s.outbound_resolution = Resolution::R540p;
        }
        for s in app.iter_mut().skip(50) {
            s.outbound_resolution = Resolution::R360p;
        }
        let b = bundle_with(app, vec![], vec![]);
        let v = extract_features(&b, t(0), t(5000), &th);
        assert!(v.get(Feature::App(
            ClientSide::Local,
            AppEvent::OutboundResolutionDown
        )));
    }

    #[test]
    fn playback_conditions() {
        let th = Thresholds::default();
        let pb = |ms: u64| {
            let mut s = telemetry::PlaybackStatsRecord::baseline(t(ms));
            s.started = true;
            s.buffer_ms = 5_000.0;
            s
        };
        // Healthy buffer, fixed rung: nothing fires.
        let mut b = bundle_with(vec![], vec![], vec![]);
        b.playback = (0..100).map(|i| pb(i * 50)).collect();
        let v = extract_features(&b, t(0), t(5000), &th);
        assert_eq!(v.count_active(), 0);
        // Draining buffer into a stall: buffer-low then stall.
        let mut b = bundle_with(vec![], vec![], vec![]);
        b.playback = (0..100)
            .map(|i| {
                let mut s = pb(i * 50);
                s.buffer_ms = (4_000.0 - i as f64 * 50.0).max(0.0);
                s.stalled = s.buffer_ms == 0.0;
                s
            })
            .collect();
        let v = extract_features(&b, t(0), t(5000), &th);
        assert!(v.get(Feature::Playback(PlaybackEvent::BufferLow)));
        assert!(v.get(Feature::Playback(PlaybackEvent::Stall)));
        assert!(!v.get(Feature::Playback(PlaybackEvent::LadderSwitchDown)));
        // Rung hunting: switch-down and oscillation.
        let mut b = bundle_with(vec![], vec![], vec![]);
        b.playback = (0..100)
            .map(|i| {
                let mut s = pb(i * 50);
                s.target_rung = if (i / 10) % 2 == 0 { 2 } else { 1 };
                s
            })
            .collect();
        let v = extract_features(&b, t(0), t(5000), &th);
        assert!(v.get(Feature::Playback(PlaybackEvent::LadderSwitchDown)));
        assert!(v.get(Feature::Playback(PlaybackEvent::LadderOscillation)));
        // A single clean down-switch is not oscillation.
        let mut b = bundle_with(vec![], vec![], vec![]);
        b.playback = (0..100)
            .map(|i| {
                let mut s = pb(i * 50);
                s.target_rung = if i < 50 { 3 } else { 2 };
                s
            })
            .collect();
        let v = extract_features(&b, t(0), t(5000), &th);
        assert!(v.get(Feature::Playback(PlaybackEvent::LadderSwitchDown)));
        assert!(!v.get(Feature::Playback(PlaybackEvent::LadderOscillation)));
    }

    #[test]
    fn empty_window_is_all_false() {
        let th = Thresholds::default();
        let b = bundle_with(vec![], vec![], vec![]);
        let v = extract_features(&b, t(0), t(5000), &th);
        assert_eq!(v.count_active(), 0);
    }
}
