//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! * `ablation-proactive` — proactive UL grants on/off (the paper's §5.2.1
//!   discussion: lower first-packet latency, but wasted capacity and little
//!   help for frame-level delay).
//! * `ablation-harq` — maximum HARQ attempts: trade per-packet delay
//!   inflation (more HARQ rounds) against expensive RLC ARQ recoveries.
//! * `ablation-window` — Domino's sliding-window length W: detection counts
//!   and attribution coverage as the window shrinks/grows around the
//!   paper's 5 s choice.

use std::fmt::Write as _;

use domino_core::{ChainStats, Domino, DominoConfig};
use simcore::{SimDuration, SimTime};
use telemetry::{Direction, StreamKind};

use domino_sweep::run_bundles;
use scenarios::{AxisPatch, ScenarioAxis, ScriptAction, SeedPolicy, SessionSpec};

use crate::util::{session_cfg, short_session_cfg};

fn t(secs: f64) -> SimTime {
    SimTime::from_micros((secs * 1e6) as u64)
}

/// Proactive grants on vs off on the Mosolabs cell.
pub fn proactive_grants() -> String {
    let mut out = String::from("Ablation — proactive UL grants (Mosolabs)\n");
    let _ = writeln!(
        out,
        "{:<12} {:>14} {:>14} {:>14} {:>16}",
        "mode", "UL p50 [ms]", "UL p90 [ms]", "UL p99 [ms]", "grant waste [%]"
    );
    // Declarative A/B: the toggle axis expands the base spec into the two
    // variants (shared seed, so they differ only in the patched field), and
    // the sweep engine runs them concurrently.
    let base = SessionSpec::cell(scenarios::mosolabs(), short_session_cfg(6001, 45));
    let specs = ScenarioAxis::toggle(
        "grants",
        "proactive",
        "bsr-only",
        vec![],
        vec![AxisPatch::ProactiveGrant(None)],
    )
    .expand(&base, SeedPolicy::Shared);
    let bundles = run_bundles(&specs, 0);
    for (spec, bundle) in specs.iter().zip(&bundles) {
        let delays = telemetry::Cdf::from_samples(
            bundle
                .packets
                .iter()
                .filter(|p| p.direction == Direction::Uplink && p.stream != StreamKind::Rtcp)
                .filter_map(|p| p.one_way_delay())
                .map(|d| d.as_millis_f64())
                .collect(),
        );
        let (mut used, mut nominal) = (0u64, 0u64);
        for d in bundle
            .dci
            .iter()
            .filter(|d| d.is_target_ue && d.direction == Direction::Uplink && d.harq_retx_idx == 0)
        {
            used += d.used_bits as u64;
            nominal += d.tbs_bits.max(d.used_bits) as u64;
        }
        let waste = if nominal == 0 {
            0.0
        } else {
            100.0 * (nominal - used) as f64 / nominal as f64
        };
        let _ = writeln!(
            out,
            "{:<12} {:>14.2} {:>14.2} {:>14.2} {:>16.1}",
            spec.label,
            delays.quantile(0.5).unwrap_or(f64::NAN),
            delays.quantile(0.9).unwrap_or(f64::NAN),
            delays.quantile(0.99).unwrap_or(f64::NAN),
            waste
        );
    }
    out.push_str(
        "\nExpectation (paper §5.2.1): proactive grants shave first-packet latency\n\
         (lower median) at the cost of wasted capacity; tail latency barely moves\n\
         because the last packet of a burst still waits for BSR-driven grants.\n",
    );
    out
}

/// Maximum HARQ attempts: delay inflation vs RLC ARQ recoveries.
pub fn harq_attempts() -> String {
    let mut out =
        String::from("Ablation — max HARQ attempts (Amarisoft, aggressive UL MCS selection)\n");
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>12} {:>14} {:>12}",
        "attempts", "p50 [ms]", "p99 [ms]", "RLC retx/min", "max [ms]"
    );
    const ATTEMPTS: [u8; 4] = [1, 2, 4, 6];
    // Aggressive MCS selection ("prioritizing rate over robustness", §5.2.2)
    // so initial transmissions fail often enough for the HARQ budget to
    // matter — patched into the base once; the axis sweeps only the budget.
    let mut base = SessionSpec::cell(scenarios::amarisoft(), short_session_cfg(6002, 45));
    scenarios::apply_patches(
        &mut base,
        &[
            AxisPatch::MarginDbUl(2.5),
            AxisPatch::McsCapUl(28),
            AxisPatch::OllaStepDb(0.0), // hold the aggressive operating point
        ],
    );
    let specs = ScenarioAxis::values("attempts", ATTEMPTS, |&a| {
        vec![AxisPatch::MaxHarqAttempts(a)]
    })
    .expand(&base, SeedPolicy::Shared);
    let bundles = run_bundles(&specs, 0);
    for (attempts, bundle) in ATTEMPTS.into_iter().zip(&bundles) {
        let delays = telemetry::Cdf::from_samples(
            bundle
                .packets
                .iter()
                .filter(|p| p.direction == Direction::Uplink && p.stream != StreamKind::Rtcp)
                .filter_map(|p| p.one_way_delay())
                .map(|d| d.as_millis_f64())
                .collect(),
        );
        let rlc_retx = bundle
            .gnb
            .iter()
            .filter(|g| matches!(g.event, telemetry::GnbEvent::RlcRetx { .. }))
            .count();
        let minutes = bundle.meta.duration.as_secs_f64() / 60.0;
        let _ = writeln!(
            out,
            "{:<10} {:>12.2} {:>12.2} {:>14.2} {:>12.2}",
            attempts,
            delays.quantile(0.5).unwrap_or(f64::NAN),
            delays.quantile(0.99).unwrap_or(f64::NAN),
            rlc_retx as f64 / minutes,
            delays.max().unwrap_or(f64::NAN),
        );
    }
    out.push_str(
        "\nExpectation: fewer HARQ attempts push recovery to RLC ARQ (≈105 ms each);\n\
         more attempts keep recoveries at the ≈10 ms HARQ timescale.\n",
    );
    out
}

/// Domino window length W around the paper's 5 s choice.
pub fn window_length() -> String {
    let mut out =
        String::from("Ablation — Domino sliding-window length W (T-Mobile FDD session)\n");
    // Both sessions (the main sweep trace and the scripted check) run as one
    // parallel sweep; analyses below use the streaming fast path.
    let specs = [
        SessionSpec::cell(scenarios::tmobile_fdd_15mhz(), session_cfg(6003)),
        SessionSpec::cell(
            scenarios::tmobile_fdd_15mhz_quiet(),
            short_session_cfg(6004, 20),
        )
        .with_script(ScriptAction::CrossTraffic {
            dir: Direction::Downlink,
            from: t(10.0),
            to: t(13.0),
            prb_fraction: 0.97,
        }),
    ];
    let mut bundles = run_bundles(&specs, 0);
    let scripted = bundles.pop().expect("two specs");
    let bundle = bundles.pop().expect("two specs");
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>14} {:>18} {:>16}",
        "W [s]", "windows", "chain windows", "consequence wins", "unknown frac"
    );
    for w_secs in [2u64, 5, 10, 20] {
        let domino = Domino::new(
            domino_core::default_graph(),
            DominoConfig {
                window: SimDuration::from_secs(w_secs),
                ..Default::default()
            },
        );
        let analysis = domino.analyze_streaming(&bundle);
        let stats = ChainStats::compute(domino.graph(), &analysis);
        let cons_windows: usize = stats.consequence_windows.values().sum();
        let unknown: usize = stats.unknown_windows.values().sum();
        let frac = if cons_windows == 0 {
            0.0
        } else {
            unknown as f64 / cons_windows as f64
        };
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>14} {:>18} {:>16.2}",
            w_secs,
            analysis.windows.len(),
            stats.total_chain_windows,
            cons_windows,
            frac
        );
    }
    out.push_str(
        "\nExpectation: short windows miss the cause-to-consequence lag (higher\n\
         unknown fraction); very long windows blur distinct events together\n\
         (attribution inflates). The paper's W = 5 s balances the two.\n",
    );
    let _ = writeln!(
        out,
        "\n(scripted check at W = 5 s: cause at t≈10 s is attributed)"
    );
    let domino = Domino::with_defaults();
    let analysis = domino.analyze_streaming(&scripted);
    let attributed = analysis.windows.iter().flat_map(|w| &w.chains).count();
    let _ = writeln!(out, "chains detected: {attributed}");
    out
}
