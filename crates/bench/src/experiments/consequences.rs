//! Consequence trace figures (paper §6): Figs. 20–22.

use std::fmt::Write as _;

use simcore::{SimDuration, SimTime};
use telemetry::Direction;

use scenarios::SessionRun;

use crate::util::{mean_delay_in, short_session_cfg, time_bins};

fn t(secs: f64) -> SimTime {
    SimTime::from_micros((secs * 1e6) as u64)
}

/// Fig. 20 — a delay surge drains the jitter buffer, freezing video and
/// dropping the rendered frame rate.
pub fn fig20() -> String {
    let mut cfg = short_session_cfg(5020, 22);
    cfg.wired_sender.start_bps = 2_500_000.0;
    let bundle = SessionRun::cell(scenarios::tmobile_fdd_15mhz_quiet(), &cfg)
        .script(|cell| {
            // Severe DL capacity loss for ~2 s → a delay surge (paper: ≈280 ms)
            // on the media the local client receives.
            cell.script_cross_traffic(Direction::Downlink, t(10.0), t(12.0), 0.985);
        })
        .run();
    let mut out = String::from(
        "Fig. 20 — delay surge → jitter buffer drains → freeze → fps drop (local client)\n\
         t[s]  dl_delay[ms]  jb[ms]  min_jb[ms]  frozen  freeze_total[ms]  in_fps\n",
    );
    for (center, _) in time_bins(t(8.0), t(18.0), SimDuration::from_millis(500), |_, _| 0.0) {
        let from = t(center - 0.25);
        let to = t(center + 0.25);
        let delay = mean_delay_in(&bundle, Direction::Downlink, from, to);
        let s = bundle.app_local_window(from, to).last().cloned();
        match s {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "{center:>5.2} {delay:>12.1} {:>7.1} {:>10.1} {:>7} {:>16.1} {:>7.1}",
                    s.video_jitter_buffer_ms,
                    s.min_jitter_buffer_ms,
                    if s.freeze_active { "yes" } else { "no" },
                    s.total_freeze_ms,
                    s.inbound_fps
                );
            }
            None => {
                let _ = writeln!(out, "{center:>5.2} {delay:>12.1}  (no stats)");
            }
        }
    }
    out
}

/// Figs. 21 & 22 — GCC's two rate controls reacting to delay:
///
/// * Fig. 21: forward (media) delay rise → trendline slope crosses the
///   adaptive threshold → overuse → multiplicative target-rate decrease →
///   frame-rate/resolution drop.
/// * Fig. 22: stable forward path but delayed RTCP feedback → outstanding
///   bytes exceed the congestion window → pushback-rate drop with the
///   target rate intact.
pub fn fig21_22() -> String {
    let mut out = String::new();

    // ---- Fig. 21: UL media path delay (affects the local sender's GCC).
    let cfg = short_session_cfg(5021, 25);
    let bundle = SessionRun::cell(scenarios::tmobile_fdd_15mhz_quiet(), &cfg)
        .script(|cell| {
            cell.script_cross_traffic(Direction::Uplink, t(10.0), t(12.0), 0.95);
        })
        .run();
    out.push_str(
        "Fig. 21 — media-path delay → GCC overuse → target-rate drop (local sender)\n\
         t[s]  ul_delay[ms]  slope[ms]  threshold  state     target[Mbps]  pushback[Mbps]  out_fps  res\n",
    );
    for (center, _) in time_bins(t(8.0), t(20.0), SimDuration::from_millis(500), |_, _| 0.0) {
        let from = t(center - 0.25);
        let to = t(center + 0.25);
        let delay = mean_delay_in(&bundle, Direction::Uplink, from, to);
        if let Some(s) = bundle.app_local_window(from, to).last() {
            let _ = writeln!(
                out,
                "{center:>5.2} {delay:>12.1} {:>10.2} {:>10.2} {:>9} {:>13.2} {:>15.2} {:>8.1} {:>5}",
                s.trendline_slope,
                s.trendline_threshold,
                format!("{:?}", s.gcc_state),
                s.target_bitrate_bps / 1e6,
                s.pushback_rate_bps / 1e6,
                s.outbound_fps,
                s.outbound_resolution.label()
            );
        }
    }

    // ---- Fig. 22: RTCP reverse-path delay only (remote sender's view:
    // its media flows DL intact? No — we need the *local* sender with its
    // feedback path (DL) impaired while its media path (UL) is clean).
    let mut cfg = short_session_cfg(5022, 25);
    cfg.wired_sender.start_bps = 2_000_000.0;
    let bundle = SessionRun::cell(scenarios::tmobile_fdd_15mhz_quiet(), &cfg)
        .script(|cell| {
            cell.script_cross_traffic(Direction::Downlink, t(10.0), t(12.5), 0.99);
        })
        .run();
    out.push_str(
        "\nFig. 22 — RTCP (reverse-path) delay → outstanding > cwnd → pushback drop (local sender)\n\
         t[s]  ul_media_delay[ms]  dl_rtcp_delay[ms]  outstanding[kB]  cwnd[kB]  target[Mbps]  pushback[Mbps]  out_fps\n",
    );
    for (center, _) in time_bins(t(8.0), t(20.0), SimDuration::from_millis(500), |_, _| 0.0) {
        let from = t(center - 0.25);
        let to = t(center + 0.25);
        let media = mean_delay_in(&bundle, Direction::Uplink, from, to);
        // RTCP toward the local sender travels on the downlink.
        let rtcp: Vec<f64> = bundle
            .packets_window(from, to)
            .iter()
            .filter(|p| {
                p.direction == Direction::Downlink && p.stream == telemetry::StreamKind::Rtcp
            })
            .filter_map(|p| p.one_way_delay())
            .map(|d| d.as_millis_f64())
            .collect();
        let rtcp = if rtcp.is_empty() {
            f64::NAN
        } else {
            rtcp.iter().sum::<f64>() / rtcp.len() as f64
        };
        if let Some(s) = bundle.app_local_window(from, to).last() {
            let _ = writeln!(
                out,
                "{center:>5.2} {media:>18.1} {rtcp:>18.1} {:>16.1} {:>9.1} {:>13.2} {:>15.2} {:>8.1}",
                s.outstanding_bytes as f64 / 1e3,
                s.cwnd_bytes as f64 / 1e3,
                s.target_bitrate_bps / 1e6,
                s.pushback_rate_bps / 1e6,
                s.outbound_fps
            );
        }
    }
    out
}
