//! Longitudinal experiments (paper §3): Fig. 8 and Table 3 (Appendix B).

use std::fmt::Write as _;

use domino_core::Domino;
use telemetry::{Direction, Resolution, TraceBundle};

use domino_sweep::{run_sweep_with_progress, AnalysisMode, SweepOptions, SweepProgress};
use scenarios::{all_cells, ScenarioAxis, SeedPolicy, SessionSpec};

use crate::util::{delay_samples, print_cdf, session_cfg};

fn run_all_cells() -> Vec<TraceBundle> {
    // One spec per cell, declared as a cell axis (sequential seeds preserve
    // the sequential harness's 3000+i numbering), fanned across cores by the
    // sweep engine; bundles come back in spec order. These are the longest
    // sessions the harness runs, so they exercise the operator-scale path:
    // Domino analysis runs *inline* during each simulation
    // (`AnalysisMode::Live`; no early exit, so the bundles the figures read
    // are untouched) and throughput/ETA goes to stderr, keeping the figure
    // text on stdout byte-stable.
    let base = SessionSpec::cell(all_cells().remove(0), session_cfg(3000));
    let specs =
        ScenarioAxis::cells("cell", all_cells()).expand(&base, SeedPolicy::Sequential(3000));
    let domino = Domino::with_defaults();
    let opts = SweepOptions {
        analysis: AnalysisMode::Live,
        keep_bundles: true,
        ..Default::default()
    };
    let progress = |p: SweepProgress| {
        eprintln!(
            "[longitudinal] {}/{} sessions, {} in flight ({:.2}/s, ETA {:.0} s, \
             arena peak {} elems)",
            p.completed,
            p.total,
            p.in_flight,
            p.sessions_per_sec,
            p.eta_secs,
            p.arena_footprint_peak
        );
    };
    run_sweep_with_progress(&specs, &domino, &opts, &progress)
        .outcomes
        .into_iter()
        .map(|o| o.bundle.expect("keep_bundles set"))
        .collect()
}

/// Fig. 8 — per-cell CDFs: one-way delay, target bitrate, frame rate,
/// jitter-buffer delay (UL and DL streams).
pub fn fig8() -> String {
    let bundles = run_all_cells();
    let mut out = String::from("Fig. 8 — WebRTC performance metrics across four 5G cells\n");
    for b in &bundles {
        let cell = &b.meta.cell_name;
        let _ = writeln!(out, "==== {cell} ====");
        // (a)-(d) one-way delay.
        print_cdf(
            &mut out,
            &format!("{cell} / delay UL [ms]"),
            delay_samples(b, Direction::Uplink, true),
        );
        print_cdf(
            &mut out,
            &format!("{cell} / delay DL [ms]"),
            delay_samples(b, Direction::Downlink, true),
        );
        // (e)-(h) target bitrate: UL stream = local sender, DL = remote.
        print_cdf(
            &mut out,
            &format!("{cell} / target bitrate UL [Mbps]"),
            b.app_local
                .iter()
                .map(|s| s.target_bitrate_bps / 1e6)
                .collect(),
        );
        print_cdf(
            &mut out,
            &format!("{cell} / target bitrate DL [Mbps]"),
            b.app_remote
                .iter()
                .map(|s| s.target_bitrate_bps / 1e6)
                .collect(),
        );
        // (i)-(l) receiver-side frame rate: UL stream rendered at remote.
        print_cdf(
            &mut out,
            &format!("{cell} / framerate UL [fps]"),
            b.app_remote.iter().map(|s| s.inbound_fps).collect(),
        );
        print_cdf(
            &mut out,
            &format!("{cell} / framerate DL [fps]"),
            b.app_local.iter().map(|s| s.inbound_fps).collect(),
        );
        // (m)-(p) jitter-buffer delay at the receiver.
        print_cdf(
            &mut out,
            &format!("{cell} / jitter buffer UL video [ms]"),
            b.app_remote
                .iter()
                .map(|s| s.min_jitter_buffer_ms)
                .collect(),
        );
        print_cdf(
            &mut out,
            &format!("{cell} / jitter buffer DL video [ms]"),
            b.app_local.iter().map(|s| s.min_jitter_buffer_ms).collect(),
        );
        print_cdf(
            &mut out,
            &format!("{cell} / jitter buffer UL audio [ms]"),
            b.app_remote
                .iter()
                .map(|s| s.audio_jitter_buffer_ms)
                .collect(),
        );
        print_cdf(
            &mut out,
            &format!("{cell} / jitter buffer DL audio [ms]"),
            b.app_local
                .iter()
                .map(|s| s.audio_jitter_buffer_ms)
                .collect(),
        );
    }
    out
}

/// Table 3 — video resolution distribution of UL and DL streams per cell.
pub fn table3() -> String {
    let bundles = run_all_cells();
    let mut out = String::from("Table 3 — video resolution distribution (UL | DL)\n");
    let _ = write!(out, "{:<8}", "res");
    for b in &bundles {
        let _ = write!(out, " {:>26}", b.meta.cell_name);
    }
    out.push('\n');
    for res in Resolution::ALL {
        let _ = write!(out, "{:<8}", res.label());
        for b in &bundles {
            // UL stream resolution = local sender's outbound; DL = remote's.
            let frac = |samples: &[telemetry::AppStatsRecord]| {
                if samples.is_empty() {
                    return 0.0;
                }
                samples
                    .iter()
                    .filter(|s| s.outbound_resolution == res)
                    .count() as f64
                    / samples.len() as f64
            };
            let _ = write!(
                out,
                " {:>12.1}% {:>11.1}%",
                100.0 * frac(&b.app_local),
                100.0 * frac(&b.app_remote)
            );
        }
        out.push('\n');
    }
    out
}
